package ftvm_test

// Golden execution test for the decode-once pipeline: the observable
// behaviour of the interpreter — console output, the Stats counters, and the
// §4.2 per-bytecode progress checksums — is pinned to testdata captured from
// the pre-predecode interpreter. Any resolved-IR rewrite must reproduce it
// bit-for-bit; regenerate with `go test -run TestExecGolden -update` only
// when the observable semantics deliberately change.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/fuzzgen"
	"repro/internal/programs"
	"repro/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/exec_golden.json from the current interpreter")

// execCapture is everything the golden test pins per program.
type execCapture struct {
	Console []string          `json:"console"`
	Stats   vm.Stats          `json:"stats"`
	Chks    map[string]uint64 `json:"chks"` // VTID -> final rolling control-path checksum
}

// captureRun executes prog standalone with progress tracking on and fixed
// seeds, returning the observables.
func captureRun(t *testing.T, prog *ftvm.Program) *execCapture {
	t.Helper()
	environ := env.New(20030622)
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     vm.NewDefaultCoordinator(vm.NewSeededPolicy(1, 1024, 8192)),
		MaxInstructions: 400_000_000,
		TrackProgress:   true,
	})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	cap := &execCapture{
		Console: environ.Console().Lines(),
		Stats:   machine.Stats(),
		Chks:    make(map[string]uint64),
	}
	for _, th := range machine.Threads() {
		cap.Chks[th.VTID] = th.Progress.Chk
	}
	return cap
}

// goldenCases builds the program set: every internal/programs benchmark at
// scale 1 plus a deterministic slice of the fuzzgen corpus.
func goldenCases(t *testing.T) map[string]*ftvm.Program {
	t.Helper()
	cases := make(map[string]*ftvm.Program)
	for _, name := range programs.Names() {
		prog, err := programs.Compile(name, 1)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		cases["bench/"+name] = prog
	}
	for seed := uint64(1); seed <= 20; seed++ {
		src := fuzzgen.Generate(seed, fuzzgen.SizeSmall).Render()
		name := fmt.Sprintf("fuzz/small-%d", seed)
		prog, err := ftvm.CompileSource(name, src)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		cases[name] = prog
	}
	for seed := uint64(1); seed <= 5; seed++ {
		src := fuzzgen.Generate(seed, fuzzgen.SizeMedium).Render()
		name := fmt.Sprintf("fuzz/medium-%d", seed)
		prog, err := ftvm.CompileSource(name, src)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		cases[name] = prog
	}
	return cases
}

func TestExecGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not -short")
	}
	path := filepath.Join("testdata", "exec_golden.json")
	cases := goldenCases(t)

	got := make(map[string]*execCapture, len(cases))
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got[name] = captureRun(t, cases[name])
	}

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d programs)", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	want := make(map[string]*execCapture)
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d programs, current run has %d", len(want), len(got))
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (run -update?)", name)
			continue
		}
		g := got[name]
		if !reflect.DeepEqual(g.Console, w.Console) {
			t.Errorf("%s: console output diverged\n got: %q\nwant: %q", name, g.Console, w.Console)
		}
		if g.Stats != w.Stats {
			t.Errorf("%s: stats diverged\n got: %+v\nwant: %+v", name, g.Stats, w.Stats)
		}
		if !reflect.DeepEqual(g.Chks, w.Chks) {
			t.Errorf("%s: progress checksums diverged\n got: %v\nwant: %v", name, g.Chks, w.Chks)
		}
	}
}
