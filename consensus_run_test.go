package ftvm

// API-level exercises of the consensus coordination path: the same facade
// program and assertions as the pair tests, with Options.Backend flipped to
// BackendConsensus. Exactly-once across a leader+VM kill is the §3.4/§4
// guarantee restated for majority commit.

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/env"
	"repro/internal/replication"
)

func TestRunReplicatedConsensusClean(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		prog, err := CompileSource("facade", facadeProgram)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReplicated(prog, mode, Options{EnvSeed: 5, Backend: BackendConsensus})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Outcome != replication.OutcomePrimaryCompleted {
			t.Fatalf("%v outcome = %v", mode, res.Outcome)
		}
		if res.Primary.RecordsLogged == 0 || res.Backup.RecordsLogged == 0 {
			t.Fatalf("%v: nothing logged (%d/%d)", mode, res.Primary.RecordsLogged, res.Backup.RecordsLogged)
		}
		if res.Console[len(res.Console)-1] != "done 900" {
			t.Fatalf("%v console = %v", mode, res.Console)
		}
		if len(res.Consensus) != 3 {
			t.Fatalf("%v: %d replica stats, want 3", mode, len(res.Consensus))
		}
		leaders, termed := 0, 0
		for _, s := range res.Consensus {
			if s.Role == consensus.Leader {
				leaders++
			}
			if s.Term > 0 {
				termed++
			}
		}
		if leaders != 1 {
			t.Fatalf("%v: %d leaders at completion, want 1", mode, leaders)
		}
		// The election quorum — leader plus at least one voter — has the
		// term; the last follower may lag on a wall clock.
		if termed < 2 {
			t.Fatalf("%v: only %d replicas saw a term, want quorum", mode, termed)
		}
	}
}

func TestRunWithFailoverConsensus(t *testing.T) {
	prog, err := CompileSource("facade", facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithFailover(prog, ModeLock, KillAfterRecords(40), Options{
		EnvSeed:    5,
		FlushEvery: 8,
		MinQuantum: 64,
		MaxQuantum: 256,
		Backend:    BackendConsensus,
		AckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Log("primary finished before the kill fired (timing); still validating output")
	} else if res.Recovery == nil && res.Outcome != replication.OutcomePrimaryCompleted {
		t.Fatal("killed run produced no recovery report")
	}
	if got := res.Console[len(res.Console)-1]; got != "done 900" {
		t.Fatalf("console = %v", res.Console)
	}
	sent := res.Env.Messages().Sent()
	if len(sent) != 1 || sent[0] != "result:900" {
		t.Fatalf("sent = %v (exactly-once violated?)", sent)
	}
	data, err := res.Env.FileContents("out.dat")
	if err != nil || string(data) != "n=900" {
		t.Fatalf("file = %q (%v)", data, err)
	}
}

func TestMeasureReplayConsensus(t *testing.T) {
	prog, err := CompileSource("facade", facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() *env.Env { return env.New(5) }
	primary, replay, err := MeasureReplay(prog, ModeLock, Options{Backend: BackendConsensus}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if primary.Outcome != replication.OutcomePrimaryCompleted {
		t.Fatalf("outcome = %v", primary.Outcome)
	}
	if replay.Report == nil || replay.Report.RecordsInLog == 0 {
		t.Fatalf("replay = %+v", replay)
	}
	if replay.Elapsed <= 0 {
		t.Fatal("no replay timing")
	}
}
