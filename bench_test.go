package ftvm

// Benchmark harness entry points: one testing.B benchmark per table/figure
// of the paper's evaluation (§5). These wrap the same measurement paths the
// ftvm-bench command uses, sized down so `go test -bench=.` completes in
// minutes; run `go run ./cmd/ftvm-bench -all` for the full calibrated
// reproduction with the simulated testbed network.
//
//	BenchmarkTable2/*     — per-benchmark event counts (Table 2 rows)
//	BenchmarkFig2/*       — baseline, lock/sched primary, lock/sched replay
//	BenchmarkFig3/*       — lock-mode primary (overhead decomposition source)
//	BenchmarkFig4/*       — sched-mode primary (overhead decomposition source)

import (
	"testing"

	"repro/internal/env"
	"repro/internal/programs"
)

// benchWorkloads are the table/figure columns (paper order).
var benchWorkloads = []string{"jess", "jack", "compress", "db", "mpegaudio", "mtrt"}

func compileBench(b *testing.B, name string) *Program {
	b.Helper()
	prog, err := programs.Compile(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkTable2 regenerates the Table 2 event counts: each iteration runs
// the lock-mode primary (whose counters are the table's rows) and reports
// them as benchmark metrics.
func BenchmarkTable2(b *testing.B) {
	for _, name := range benchWorkloads {
		b.Run(name, func(b *testing.B) {
			prog := compileBench(b, name)
			for i := 0; i < b.N; i++ {
				res, err := RunReplicated(prog, ModeLock, Options{EnvSeed: 20030622})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.NMIntercepted), "NM")
				b.ReportMetric(float64(res.Stats.NMOutputCommits), "NMcommits")
				b.ReportMetric(float64(res.Primary.RecordsLogged), "logged")
				b.ReportMetric(float64(res.Stats.LocksAcquired), "locks")
				b.ReportMetric(float64(res.Stats.ObjectsLocked), "objects")
				b.ReportMetric(float64(res.Stats.LargestLASN), "maxlasn")
				b.ReportMetric(float64(res.Stats.Reschedules), "resched")
			}
		})
	}
}

// BenchmarkFig2 measures the five Figure 2 configurations per workload:
// the unreplicated baseline, both primaries, and both backup replays.
func BenchmarkFig2(b *testing.B) {
	type cfg struct {
		name string
		run  func(b *testing.B, prog *Program)
	}
	baseline := func(b *testing.B, prog *Program) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(prog, Options{EnvSeed: 20030622}); err != nil {
				b.Fatal(err)
			}
		}
	}
	primary := func(mode Mode) func(*testing.B, *Program) {
		return func(b *testing.B, prog *Program) {
			for i := 0; i < b.N; i++ {
				if _, err := RunReplicated(prog, mode, Options{EnvSeed: 20030622}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	replay := func(mode Mode) func(*testing.B, *Program) {
		return func(b *testing.B, prog *Program) {
			// The full pipeline (primary run + log capture + replay) is
			// timed; the isolated replay cost — MeasureReplay times it
			// separately — is reported as the replay-s metric.
			for i := 0; i < b.N; i++ {
				factory := func() *env.Env { return env.New(20030622) }
				_, rep, err := MeasureReplay(prog, mode, Options{}, factory)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Elapsed.Seconds(), "replay-s")
			}
		}
	}
	cfgs := []cfg{
		{"baseline", baseline},
		{"lock-primary", primary(ModeLock)},
		{"sched-primary", primary(ModeSched)},
		{"lock-replay", replay(ModeLock)},
		{"sched-replay", replay(ModeSched)},
	}
	for _, name := range benchWorkloads {
		prog := compileBench(b, name)
		for _, c := range cfgs {
			b.Run(name+"/"+c.name, func(b *testing.B) { c.run(b, prog) })
		}
	}
}

// BenchmarkFig3 runs the lock-replication primary and reports the overhead
// decomposition components (Figure 3) as metrics.
func BenchmarkFig3(b *testing.B) {
	for _, name := range benchWorkloads {
		b.Run(name, func(b *testing.B) {
			prog := compileBench(b, name)
			for i := 0; i < b.N; i++ {
				res, err := RunReplicated(prog, ModeLock, Options{EnvSeed: 20030622})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Primary.Communication.Seconds(), "comm-s")
				b.ReportMetric(res.Primary.Record.Seconds(), "lockacq-s")
				b.ReportMetric(res.Primary.Pessimism.Seconds(), "pessim-s")
			}
		})
	}
}

// BenchmarkFig4 runs the thread-scheduling primary and reports the overhead
// decomposition components (Figure 4) as metrics.
func BenchmarkFig4(b *testing.B) {
	for _, name := range benchWorkloads {
		b.Run(name, func(b *testing.B) {
			prog := compileBench(b, name)
			for i := 0; i < b.N; i++ {
				res, err := RunReplicated(prog, ModeSched, Options{EnvSeed: 20030622})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Primary.Communication.Seconds(), "comm-s")
				b.ReportMetric(res.Primary.Record.Seconds(), "resched-s")
				b.ReportMetric(res.Primary.Pessimism.Seconds(), "pessim-s")
			}
		})
	}
}

// benchSpin measures raw interpreter throughput on the given engine
// (instructions per op reported) — the substrate number everything else
// normalizes against.
func benchSpin(b *testing.B, d Dispatch) {
	prog, err := CompileSource("spin", `
func main() {
	var x int = 0;
	for (var i int = 0; i < 2000000; i = i + 1) {
		x = (x * 31 + i) & 1048575;
	}
	print(x);
}`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, Options{EnvSeed: 1, Dispatch: d})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Instructions), "instrs")
	}
}

// BenchmarkInterpreter is the default (threaded) engine; its before/after
// ratio against BENCH_PR3.json is the tentpole acceptance number for the
// threaded tier (BENCH_PR9.json).
func BenchmarkInterpreter(b *testing.B) { benchSpin(b, DispatchThreaded) }

// BenchmarkInterpreterSwitch is the same workload on the reference switch
// engine, so bench-smoke exercises both dispatch tiers every run and the
// threaded speedup is the ratio of the two.
func BenchmarkInterpreterSwitch(b *testing.B) { benchSpin(b, DispatchSwitch) }
