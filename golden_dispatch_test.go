package ftvm_test

// Dual-mode golden gate for the threaded interpreter tier: the entire golden
// program suite (every benchmark at scale 1 plus the deterministic fuzzgen
// slice — the same 31 programs TestExecGolden pins) is executed under both
// dispatch engines and every observable — console output, the Stats
// counters, and the §4.2 per-bytecode rolling progress checksums — must be
// identical between DispatchSwitch and DispatchThreaded. TestExecGolden pins
// the default engine against testdata; this gate pins the two engines
// against each other, so a divergence is attributed to the engine and not to
// a stale golden file.

import (
	"reflect"
	"sort"
	"testing"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/vm"
)

// captureRunDispatch is captureRun with an explicit engine selection;
// everything else (seeds, policy, budget, tracking) matches the golden
// capture configuration exactly.
func captureRunDispatch(t *testing.T, prog *ftvm.Program, d vm.Dispatch) *execCapture {
	t.Helper()
	environ := env.New(20030622)
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             environ,
		Coordinator:     vm.NewDefaultCoordinator(vm.NewSeededPolicy(1, 1024, 8192)),
		MaxInstructions: 400_000_000,
		TrackProgress:   true,
		Dispatch:        d,
	})
	if err != nil {
		t.Fatalf("vm.New (%v): %v", d, err)
	}
	if err := machine.Run(); err != nil {
		t.Fatalf("run (%v): %v", d, err)
	}
	cap := &execCapture{
		Console: environ.Console().Lines(),
		Stats:   machine.Stats(),
		Chks:    make(map[string]uint64),
	}
	for _, th := range machine.Threads() {
		cap.Chks[th.VTID] = th.Progress.Chk
	}
	return cap
}

func TestDispatchDualModeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-mode golden sweep is not -short")
	}
	cases := goldenCases(t)
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sw := captureRunDispatch(t, cases[name], vm.DispatchSwitch)
			th := captureRunDispatch(t, cases[name], vm.DispatchThreaded)
			if !reflect.DeepEqual(th.Console, sw.Console) {
				t.Errorf("console diverged between engines\nthreaded: %q\n  switch: %q", th.Console, sw.Console)
			}
			if th.Stats != sw.Stats {
				t.Errorf("stats diverged between engines\nthreaded: %+v\n  switch: %+v", th.Stats, sw.Stats)
			}
			if !reflect.DeepEqual(th.Chks, sw.Chks) {
				t.Errorf("progress checksums diverged between engines\nthreaded: %v\n  switch: %v", th.Chks, sw.Chks)
			}
		})
	}
}
