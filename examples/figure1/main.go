// Figure 1: the paper's motivating data race. A guard on shared static data
// is read without holding a monitor, so two replicas that schedule threads
// differently can acquire the initialization lock a different number of
// times — replicated lock acquisition then cannot line the logs up (the
// backup detects divergence), while replicated thread scheduling reproduces
// the primary's interleaving exactly and recovers despite the race (the
// R4A vs R4B trade-off of §3.3).
package main

import (
	"errors"
	"fmt"
	"log"

	ftvm "repro"
	"repro/internal/replication"
)

// The guard read (shared.init == 0) happens OUTSIDE the monitor — the data
// race of the paper's Figure 1. How many times initFormatter runs depends on
// the thread interleaving.
const src = `
class Formatter { init int; uses int; }
var shared Formatter;
var initCount int = 0;

func initFormatter() {
	lock (shared) {
		initCount = initCount + 1;
		shared.init = 1;
	}
}

func user(rounds int) {
	for (var i int = 0; i < rounds; i = i + 1) {
		if (shared.init == 0) {   // racy guard, not protected by a monitor!
			initFormatter();
		}
		lock (shared) { shared.uses = shared.uses + 1; }
		yield;
	}
}

func main() {
	shared = new Formatter;
	var a thread = spawn user(300);
	var b thread = spawn user(300);
	join(a);
	join(b);
	print("uses=" + itoa(shared.uses) + " inits=" + itoa(initCount));
}
`

func main() {
	prog, err := ftvm.CompileSource("figure1", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— replicated LOCK ACQUISITION on a racy program (violates R4A) —")
	// Use tiny scheduling quanta so the racy guard is actually exposed to
	// different interleavings at primary and backup.
	_, err = ftvm.RunWithFailover(prog, ftvm.ModeLock, ftvm.KillAfterRecords(100), ftvm.Options{
		EnvSeed:    3,
		MinQuantum: 16,
		MaxQuantum: 64,
	})
	switch {
	case err == nil:
		fmt.Println("  recovery happened to succeed (the race did not bite this schedule —")
		fmt.Println("  rerun with another seed; divergence is schedule-dependent)")
	case errors.Is(err, replication.ErrDivergence):
		fmt.Printf("  backup detected divergence, exactly as §3.3 predicts:\n    %v\n", err)
	default:
		fmt.Printf("  recovery failed: %v\n", err)
	}

	fmt.Println()
	fmt.Println("— replicated THREAD SCHEDULING on the same program (R4B holds) —")
	res, err := ftvm.RunWithFailover(prog, ftvm.ModeSched, ftvm.KillAfterRecords(100), ftvm.Options{
		EnvSeed:    3,
		MinQuantum: 16,
		MaxQuantum: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range res.Console {
		fmt.Println("  " + line)
	}
	fmt.Println("  recovered correctly: the backup reproduced the primary's exact")
	fmt.Println("  interleaving, so the data race resolved identically (§3.3, R4B).")
}
