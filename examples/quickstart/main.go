// Quickstart: compile a minilang program, run it standalone, then run it
// under primary-backup replication with an injected primary failure — the
// backup recovers from the log and finishes the program with exactly-once
// output.
package main

import (
	"fmt"
	"log"

	ftvm "repro"
)

const src = `
class Counter { n int; }
var c Counter;

func worker(rounds int) {
	for (var i int = 0; i < rounds; i = i + 1) {
		lock (c) { c.n = c.n + 1; }
	}
}

func main() {
	c = new Counter;
	print("spawning workers");
	var a thread = spawn worker(4000);
	var b thread = spawn worker(4000);
	join(a);
	join(b);
	print("count = " + itoa(c.n));
	print("clock parity = " + itoa(clock() % 2));
}
`

func main() {
	prog, err := ftvm.CompileSource("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Standalone run.
	res, err := ftvm.Run(prog, ftvm.Options{EnvSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— standalone —")
	for _, line := range res.Console {
		fmt.Println(" ", line)
	}
	fmt.Printf("  (%d instructions, %d lock acquisitions)\n\n",
		res.Stats.Instructions, res.Stats.LocksAcquired)

	// 2. Replicated with a failure: the primary is killed once the backup
	// has logged 1000 records; the cold backup re-executes the program
	// gated by the log and finishes as the new primary.
	res2, err := ftvm.RunWithFailover(prog, ftvm.ModeLock, ftvm.KillAfterRecords(1000), ftvm.Options{EnvSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— replicated, primary killed mid-run, backup recovered —")
	for _, line := range res2.Console {
		fmt.Println(" ", line)
	}
	if res2.Recovery != nil {
		fmt.Printf("  (recovery replayed %d logged records, %d gated wakeups, %d native results fed)\n",
			res2.Recovery.RecordsInLog, res2.Recovery.GatedWakeups, res2.Recovery.FedResults)
	}
	fmt.Println("\nNote the output lines appear exactly once despite the failover,")
	fmt.Println("and the count is identical — the backup adopted the primary's")
	fmt.Println("logged lock order and native results (clock included).")
}
