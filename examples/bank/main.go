// Bank: a multi-threaded account server with durable (file) state, driven by
// requests arriving on the message channel — the class of application the
// paper's fault-tolerant JVM targets. Three teller threads process transfer
// requests concurrently under per-account monitors, append an audit trail to
// a file, and send receipts on the channel. The primary is killed mid-run;
// the backup recovers: file offsets are restored by the file side-effect
// handler, receipts stay exactly-once via the channel handler's test method,
// and the final balances match a failure-free run.
package main

import (
	"fmt"
	"log"

	ftvm "repro"
	"repro/internal/env"
)

const src = `
class Account { id int; balance int; }
class Bank { done int; processed int; }

var accounts []Account;
var bank Bank;
var auditFd int = 0 - 1;

func transfer(from int, to int, amount int) int {
	// Lock ordering by account id prevents deadlock (R4A-compliant).
	var a Account = accounts[from];
	var b Account = accounts[to];
	if (from == to) { return 0; }
	var first Account = a;
	var second Account = b;
	if (to < from) { first = b; second = a; }
	lock (first) {
		lock (second) {
			if (a.balance < amount) { return 0; }
			a.balance = a.balance - amount;
			b.balance = b.balance + amount;
		}
	}
	lock (bank) {
		fwrite(auditFd, "xfer " + itoa(from) + "->" + itoa(to) + " " + itoa(amount) + "\n");
		bank.processed = bank.processed + 1;
	}
	return 1;
}

func teller(id int) {
	while (true) {
		var req str = "";
		lock (bank) {
			if (bank.done == 1) { break; }
			req = recv();
			if (req == null) { req = ""; }
			if (req == "stop") {
				bank.done = 1;
				break;
			}
		}
		if (req == "") { yield; continue; }
		// Request format: "from to amount" as fixed 2-digit fields.
		var from int = atoi(substr(req, 0, 2));
		var to int = atoi(substr(req, 3, 5));
		var amount int = atoi(substr(req, 6, len(req)));
		var ok int = transfer(from, to, amount);
		send("receipt " + req + " ok=" + itoa(ok) + " teller=" + itoa(id));
	}
}

func main() {
	bank = new Bank;
	accounts = new [10]Account;
	var total int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		accounts[i] = new Account;
		accounts[i].id = i;
		accounts[i].balance = 1000;
		total = total + 1000;
	}
	auditFd = fopen("audit.log", 1);
	var t1 thread = spawn teller(1);
	var t2 thread = spawn teller(2);
	var t3 thread = spawn teller(3);
	join(t1);
	join(t2);
	join(t3);
	fclose(auditFd);
	var sum int = 0;
	for (var i int = 0; i < 10; i = i + 1) { sum = sum + accounts[i].balance; }
	print("processed=" + itoa(bank.processed) + " conserved=" + itoa(sum == total)
		+ " audit_bytes=" + itoa(fsize("audit.log")));
}
`

func main() {
	prog, err := ftvm.CompileSource("bank", src)
	if err != nil {
		log.Fatal(err)
	}

	// The environment carries the inbound request stream (stable world
	// state): 120 transfer requests then a stop marker per teller.
	buildEnv := func() *env.Env {
		e := env.New(99)
		rng := int64(12345)
		for i := 0; i < 120; i++ {
			rng = (rng*1103515245 + 12345) & 0x7fffffff
			from := (rng >> 16) % 10
			to := (rng >> 8) % 10
			amount := rng%90 + 10
			e.Messages().Inject(fmt.Sprintf("%02d %02d %d", from, to, amount))
		}
		for i := 0; i < 3; i++ {
			e.Messages().Inject("stop")
		}
		return e
	}

	// Failure-free reference run.
	ref := buildEnv()
	refRes, err := ftvm.Run(prog, ftvm.Options{Env: ref})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— reference (no failure) —")
	fmt.Println(" ", refRes.Console[len(refRes.Console)-1])
	fmt.Printf("  receipts sent: %d\n\n", len(ref.Messages().Sent()))

	// Replicated run with the primary killed mid-stream.
	e := buildEnv()
	res, err := ftvm.RunWithFailover(prog, ftvm.ModeLock, ftvm.KillAfterRecords(400), ftvm.Options{Env: e})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— replicated, primary killed mid-run —")
	fmt.Println(" ", res.Console[len(res.Console)-1])
	fmt.Printf("  receipts sent: %d (exactly-once across the failover)\n", len(e.Messages().Sent()))
	if res.Recovery != nil {
		fmt.Printf("  recovery: %d records replayed, %d outputs tested, %d skipped, %d natives fed\n",
			res.Recovery.RecordsInLog, res.Recovery.TestedOutputs,
			res.Recovery.SkippedOutputs, res.Recovery.FedResults)
	}
	audit, err := e.FileContents("audit.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  audit trail: %d bytes on stable storage, recovered offsets intact\n", len(audit))
}
