// Raytracer: a two-worker ray tracer (the mtrt-style workload) rendering an
// ASCII image under replicated thread scheduling. The primary is killed
// mid-render; the backup replays the logged scheduling records — reproducing
// the exact thread interleaving — and completes the image. The recovered
// image is byte-identical to a failure-free run.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	ftvm "repro"
)

const src = `
class Queue { next int; }
class Image { rows int; }

var queue Queue;
var img Image;
var canvas [] str;

var W int = 64;
var H int = 20;

func shade(px int, py int) int {
	var dx float = (float(px) / float(W) - 0.5) * 2.4;
	var dy float = (float(py) / float(H) - 0.5) * 1.4;
	var dz float = 1.0;
	var dl float = sqrt(dx*dx + dy*dy + dz*dz);
	dx = dx / dl; dy = dy / dl; dz = dz / dl;
	// One sphere at (0, 0, 4), radius 1.6; a smaller one offset.
	var best float = 0.0 - 1.0;
	var b float = dz * 4.0;
	var disc float = b*b - (16.0 - 2.56);
	if (disc > 0.0) { best = b - sqrt(disc); }
	var b2 float = dx * 1.8 + dy * 0.9 + dz * 5.5;
	var disc2 float = b2*b2 - (1.8*1.8 + 0.9*0.9 + 5.5*5.5 - 1.0);
	if (disc2 > 0.0) {
		var t2 float = b2 - sqrt(disc2);
		if (best < 0.0 || t2 < best) { best = t2; }
	}
	if (best < 0.0) { return 0; }
	var lum float = 8.0 / best;
	if (lum > 9.0) { lum = 9.0; }
	return int(lum);
}

func worker(id int) {
	while (true) {
		var row int = 0 - 1;
		lock (queue) {
			row = queue.next;
			if (row < H) { queue.next = queue.next + 1; }
		}
		if (row >= H) { break; }
		var line str = "";
		for (var px int = 0; px < W; px = px + 1) {
			var s int = shade(px, row);
			if (s == 0) { line = line + "."; }
			else { line = line + substr(" -:=+*#%@", s - 1, s); }
		}
		lock (img) {
			canvas[row] = line;
			img.rows = img.rows + 1;
		}
		print("row " + itoa(row) + " done by worker " + itoa(id));
	}
}

func main() {
	queue = new Queue;
	img = new Image;
	canvas = new [H] str;
	var a thread = spawn worker(1);
	var b thread = spawn worker(2);
	join(a);
	join(b);
	for (var r int = 0; r < H; r = r + 1) {
		print("| " + canvas[r]);
	}
	print("rendered " + itoa(img.rows) + " rows");
}
`

func render(kill bool) ([]string, *ftvm.ReplicatedResult, error) {
	prog, err := ftvm.CompileSource("raytracer", src)
	if err != nil {
		return nil, nil, err
	}
	if !kill {
		res, err := ftvm.Run(prog, ftvm.Options{EnvSeed: 5})
		if err != nil {
			return nil, nil, err
		}
		return res.Console, nil, nil
	}
	res, err := ftvm.RunWithFailover(prog, ftvm.ModeSched, ftvm.KillAfterRecords(60), ftvm.Options{EnvSeed: 5})
	if err != nil {
		return nil, nil, err
	}
	return res.Console, res, nil
}

func image(console []string) string {
	var rows []string
	for _, l := range console {
		if strings.HasPrefix(l, "| ") {
			rows = append(rows, l)
		}
	}
	sort.Strings(rows) // row order is deterministic; sort defends the diff
	return strings.Join(rows, "\n")
}

func main() {
	ref, _, err := render(false)
	if err != nil {
		log.Fatal(err)
	}
	recovered, res, err := render(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(image(recovered))
	fmt.Println()
	if res != nil && res.Recovery != nil {
		fmt.Printf("primary killed mid-render; backup replayed %d scheduling records and finished\n",
			res.Recovery.ReplayedSwitches)
	}
	if image(ref) == image(recovered) {
		fmt.Println("recovered image is byte-identical to the failure-free render ✓")
	} else {
		fmt.Println("IMAGE MISMATCH — replication bug!")
	}
}
