package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simtest/clock"
)

// The pipe under a virtual clock: every blocking wait must park clock-visibly
// (so the simulation can advance through it) and every Recv timeout must fire
// in simulated, not wall, time. Actors are joined with a plain WaitGroup from
// the detached test goroutine — a clock-side wait from outside the actor set
// would corrupt the blocked-actor accounting.

// TestPipeClockVirtualTimeout: a Recv on an empty pipe expires after exactly
// the simulated timeout, without any wall-clock sleeping.
func TestPipeClockVirtualTimeout(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	a, _ := PipeClock(1, clk)
	clk.Attach()
	start := clk.Now()
	_, err := a.Recv(250 * time.Millisecond)
	elapsed := clk.Now().Sub(start)
	clk.Detach()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed != 250*time.Millisecond {
		t.Fatalf("virtual elapsed = %v, want exactly 250ms", elapsed)
	}
}

// TestPipeClockActorHandoff: a sender and a receiver running as clock actors
// exchange messages across simulated delays; the receiver's long timeout
// never fires because the sends arrive first in virtual time.
func TestPipeClockActorHandoff(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	a, b := PipeClock(2, clk)

	got := make([]string, 0, 3)
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Attach()
	clk.Go(func() {
		defer wg.Done()
		for _, m := range []string{"one", "two", "three"} {
			clk.Sleep(10 * time.Millisecond)
			if err := a.Send([]byte(m)); err != nil {
				t.Errorf("send %q: %v", m, err)
			}
		}
	})
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			msg, err := b.Recv(time.Hour)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, string(msg))
		}
	})
	clk.Detach()
	wg.Wait()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Fatalf("received %v", got)
	}
	if clk.Elapsed() == 0 {
		t.Fatal("virtual time never advanced")
	}
}

// TestPipeClockFullBufferParks: a sender blocked on a full pipe parks until
// the receiver drains a slot — and the park is clock-visible, so the
// receiver's deliberate simulated delay passes before the send completes.
func TestPipeClockFullBufferParks(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	a, b := PipeClock(1, clk)

	var sendDone, recvAt time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Attach()
	clk.Go(func() {
		defer wg.Done()
		_ = a.Send([]byte("fill"))
		_ = a.Send([]byte("blocked")) // parks: capacity 1
		sendDone = clk.Now()
	})
	clk.Go(func() {
		defer wg.Done()
		clk.Sleep(40 * time.Millisecond)
		recvAt = clk.Now()
		if _, err := b.Recv(time.Second); err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	clk.Detach()
	wg.Wait()
	if sendDone.Before(recvAt) {
		t.Fatalf("blocked send completed at %v, before the receiver freed a slot at %v", sendDone, recvAt)
	}
}

// TestPipeClockCloseDrains: the drain-after-close contract holds under the
// virtual clock, and a Recv parked at close time wakes with ErrClosed instead
// of waiting out its timeout.
func TestPipeClockCloseDrains(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	a, b := PipeClock(4, clk)

	clk.Attach()
	_ = a.Send([]byte("buffered"))
	if err := a.Close(); err != nil {
		clk.Detach()
		t.Fatal(err)
	}
	if msg, err := b.Recv(time.Second); err != nil || string(msg) != "buffered" {
		clk.Detach()
		t.Fatalf("drain = %q (%v)", msg, err)
	}
	if _, err := b.Recv(time.Second); !errors.Is(err, ErrClosed) {
		clk.Detach()
		t.Fatalf("after drain: %v, want ErrClosed", err)
	}
	if err := b.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		clk.Detach()
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}

	// A receiver already parked when the close lands wakes immediately (in
	// virtual time) rather than timing out.
	c, d := PipeClock(1, clk)
	var recvErr error
	var woke time.Duration
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Go(func() {
		defer wg.Done()
		_, recvErr = d.Recv(time.Hour)
		woke = clk.Elapsed()
	})
	clk.Go(func() {
		defer wg.Done()
		clk.Sleep(5 * time.Millisecond)
		_ = c.Close()
	})
	clk.Detach()
	wg.Wait()
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("parked recv woke with %v, want ErrClosed", recvErr)
	}
	if woke >= time.Hour {
		t.Fatal("parked recv waited out its timeout instead of waking on close")
	}
}
