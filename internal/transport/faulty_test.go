package transport

import (
	"errors"
	"testing"
	"time"
)

func TestFaultyDropSend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultDropSend, At: 2}, 1)
	for i := byte(1); i <= 3; i++ {
		if err := fa.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []byte{1, 3} {
		msg, err := b.Recv(time.Second)
		if err != nil || len(msg) != 1 || msg[0] != want {
			t.Fatalf("recv = %v (%v), want [%d]", msg, err, want)
		}
	}
	if _, err := b.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped frame delivered anyway: %v", err)
	}
	if st := fa.Stats(); st.Sends != 3 || st.Injected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultyDuplicateSend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultDuplicateSend, At: 2}, 1)
	for i := byte(1); i <= 3; i++ {
		if err := fa.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []byte{1, 2, 2, 3} {
		msg, err := b.Recv(time.Second)
		if err != nil || len(msg) != 1 || msg[0] != want {
			t.Fatalf("recv = %v (%v), want [%d]", msg, err, want)
		}
	}
}

func TestFaultyDelaySend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultDelaySend, At: 1, Delay: 20 * time.Millisecond}, 1)
	start := time.Now()
	if err := fa.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("delay not applied: %v", el)
	}
	if msg, err := b.Recv(time.Second); err != nil || string(msg) != "late" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
}

func TestFaultyPartialSend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultPartialSend, At: 1}, 1)
	if err := fa.Send([]byte("0123456789")); !errors.Is(err, ErrClosed) {
		t.Fatalf("partial send err = %v, want ErrClosed", err)
	}
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "01234" {
		t.Fatalf("truncated delivery = %q (%v)", msg, err)
	}
	if _, err := b.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after partial write, got %v", err)
	}
}

func TestFaultyCloseAtSend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultCloseAtSend, At: 2}, 1)
	if err := fa.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send([]byte("never")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send err = %v, want ErrClosed", err)
	}
	if msg, err := b.Recv(time.Second); err != nil || string(msg) != "ok" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if _, err := b.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestFaultyCloseAtRecv(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultCloseAtRecv, At: 1}, 1)
	if _, err := fa.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv err = %v, want ErrClosed", err)
	}
	if err := b.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send err = %v, want ErrClosed", err)
	}
}

func TestFaultyPartitionSend(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultPartitionSend, At: 2}, 1)
	for i := byte(1); i <= 4; i++ {
		if err := fa.Send([]byte{i}); err != nil {
			t.Fatalf("partitioned send must look successful, got %v", err)
		}
	}
	if msg, err := b.Recv(time.Second); err != nil || msg[0] != 1 {
		t.Fatalf("recv = %v (%v)", msg, err)
	}
	if _, err := b.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partition leaked a message: %v", err)
	}
	// The reverse direction still flows.
	if err := b.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if msg, err := fa.Recv(time.Second); err != nil || string(msg) != "back" {
		t.Fatalf("reverse recv = %q (%v)", msg, err)
	}
}

func TestFaultyPartitionRecv(t *testing.T) {
	a, b := Pipe(8)
	fa := NewFaulty(a, FaultPlan{Kind: FaultPartitionRecv, At: 2}, 1)
	if err := b.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if msg, err := fa.Recv(time.Second); err != nil || string(msg) != "first" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if err := b.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := fa.Recv(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("partitioned recv returned before the timeout elapsed")
	}
	// Outgoing direction still works.
	if err := fa.Send([]byte("out")); err != nil {
		t.Fatal(err)
	}
	if msg, err := b.Recv(time.Second); err != nil || string(msg) != "out" {
		t.Fatalf("peer recv = %q (%v)", msg, err)
	}
}

// TestFaultySeededDeterminism: with the same plan and seed, two wrappers
// observe identical injection points (the sweep's reproducibility contract).
func TestFaultySeededDeterminism(t *testing.T) {
	run := func() FaultyStats {
		a, b := Pipe(8)
		fa := NewFaulty(a, FaultPlan{Kind: FaultDropSend, At: 3}, 42)
		for i := 0; i < 5; i++ {
			_ = fa.Send([]byte{byte(i)})
		}
		got := 0
		for {
			if _, err := b.Recv(10 * time.Millisecond); err != nil {
				break
			}
			got++
		}
		if got != 4 {
			t.Fatalf("delivered %d messages, want 4", got)
		}
		return fa.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("stats diverge across identical runs: %+v vs %+v", a, b)
	}
}
