package transport

import (
	"runtime"
	"sync"
	"time"
)

// Latency wraps an endpoint with a calibrated send cost: a fixed per-message
// overhead plus a per-KB transmission time. It simulates the paper's
// testbed — two machines on 100 Mbps Ethernet, where shipping the log and
// waiting for output-commit acknowledgements dominate the replication
// overhead — on a single host where the raw in-process pipe would otherwise
// make communication artificially free. Send blocks for the simulated
// transmission time (the sender's CPU/NIC occupancy); Recv is untouched
// (propagation is covered by the sender-side cost of the peer's messages).
type Latency struct {
	inner  Endpoint
	perMsg time.Duration
	perKB  time.Duration

	mu        sync.Mutex
	sentBytes uint64
	sentMsgs  uint64
	simulated time.Duration
}

var _ Endpoint = (*Latency)(nil)

// WithLatency wraps ep. A 100 Mbps link costs ~80µs/KB; a LAN round trip in
// 2003 was a few hundred µs, modelled by perMsg on each direction.
func WithLatency(ep Endpoint, perMsg, perKB time.Duration) *Latency {
	return &Latency{inner: ep, perMsg: perMsg, perKB: perKB}
}

// Send implements Endpoint, charging the simulated transmission time. The
// wait spins with scheduler yields rather than sleeping: time.Sleep
// quantizes to roughly a millisecond, far coarser than the tens of
// microseconds a frame costs, and yielding lets the peer's goroutine run
// during the "transmission" (as the real NIC would allow).
func (l *Latency) Send(msg []byte) error {
	d := l.perMsg + time.Duration(len(msg))*l.perKB/1024
	if d > 0 {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	l.mu.Lock()
	l.sentBytes += uint64(len(msg))
	l.sentMsgs++
	l.simulated += d
	l.mu.Unlock()
	return l.inner.Send(msg)
}

// Recv implements Endpoint.
func (l *Latency) Recv(timeout time.Duration) ([]byte, error) { return l.inner.Recv(timeout) }

// Close implements Endpoint.
func (l *Latency) Close() error { return l.inner.Close() }

// Simulated returns the total simulated transmission time charged so far.
func (l *Latency) Simulated() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.simulated
}
