package transport

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/simtest/clock"
)

// Latency wraps an endpoint with a calibrated send cost: a fixed per-message
// overhead plus a per-KB transmission time. It simulates the paper's
// testbed — two machines on 100 Mbps Ethernet, where shipping the log and
// waiting for output-commit acknowledgements dominate the replication
// overhead — on a single host where the raw in-process pipe would otherwise
// make communication artificially free. Send blocks for the simulated
// transmission time (the sender's CPU/NIC occupancy); Recv is untouched
// (propagation is covered by the sender-side cost of the peer's messages).
type Latency struct {
	inner  Endpoint
	perMsg time.Duration
	perKB  time.Duration
	clk    clock.Clock

	mu        sync.Mutex
	sentBytes uint64
	sentMsgs  uint64
	simulated time.Duration
}

var _ Endpoint = (*Latency)(nil)

// WithLatency wraps ep. A 100 Mbps link costs ~80µs/KB; a LAN round trip in
// 2003 was a few hundred µs, modelled by perMsg on each direction.
func WithLatency(ep Endpoint, perMsg, perKB time.Duration) *Latency {
	return WithLatencyClock(ep, perMsg, perKB, nil)
}

// WithLatencyClock is WithLatency with an injected clock: under a virtual
// clock the transmission charge advances simulated time instead of occupying
// the CPU.
func WithLatencyClock(ep Endpoint, perMsg, perKB time.Duration, clk clock.Clock) *Latency {
	return &Latency{inner: ep, perMsg: perMsg, perKB: perKB, clk: clock.Or(clk)}
}

// Send implements Endpoint, charging the simulated transmission time. On the
// wall clock the wait spins with scheduler yields rather than sleeping:
// time.Sleep quantizes to roughly a millisecond, far coarser than the tens
// of microseconds a frame costs, and yielding lets the peer's goroutine run
// during the "transmission" (as the real NIC would allow). Under an injected
// virtual clock the charge is a clock-visible sleep instead.
func (l *Latency) Send(msg []byte) error {
	d := l.perMsg + time.Duration(len(msg))*l.perKB/1024
	if d > 0 {
		if _, wall := l.clk.(clock.RealClock); wall {
			deadline := clock.Real.Now().Add(d)
			for clock.Real.Now().Before(deadline) {
				runtime.Gosched()
			}
		} else {
			l.clk.Sleep(d)
		}
	}
	l.mu.Lock()
	l.sentBytes += uint64(len(msg))
	l.sentMsgs++
	l.simulated += d
	l.mu.Unlock()
	return l.inner.Send(msg)
}

// Recv implements Endpoint.
func (l *Latency) Recv(timeout time.Duration) ([]byte, error) { return l.inner.Recv(timeout) }

// Close implements Endpoint.
func (l *Latency) Close() error { return l.inner.Close() }

// Simulated returns the total simulated transmission time charged so far.
func (l *Latency) Simulated() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.simulated
}
