// Package transport carries the replication log between primary and backup:
// a message-oriented, ordered, reliable duplex channel. Two implementations
// are provided — an in-process pipe (the default for tests, examples and the
// benchmark harness) and TCP (the deployment the paper used between two
// machines). A closed or timed-out endpoint is how the backup's failure
// detector observes the primary's fail-stop crash.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/simtest/clock"
)

// Errors surfaced by endpoints.
var (
	ErrClosed  = errors.New("transport closed")
	ErrTimeout = errors.New("transport receive timeout")
)

// Endpoint is one end of a duplex message channel.
type Endpoint interface {
	// Send transmits one message (never blocks indefinitely on a live
	// peer; returns ErrClosed after Close of either end). Send must not
	// retain msg after it returns: callers reuse the backing array for the
	// next frame.
	Send(msg []byte) error
	// Recv blocks for the next message. timeout <= 0 means no timeout.
	// Returns ErrClosed when the peer closed, ErrTimeout on expiry.
	Recv(timeout time.Duration) ([]byte, error)
	// Close tears the endpoint down; pending and future Recv calls on the
	// peer return ErrClosed.
	Close() error
}

// pipeEnd is one side of an in-process pipe.
type pipeEnd struct {
	in, out chan []byte
	mu      sync.Mutex
	closed  chan struct{}
	peer    *pipeEnd
}

// Pipe returns the two ends of an in-process duplex channel with capacity
// cap messages per direction (a small buffer decouples the primary's log
// sender from the backup's consumer, like a socket buffer).
func Pipe(capacity int) (Endpoint, Endpoint) {
	if capacity < 1 {
		capacity = 64
	}
	ab := make(chan []byte, capacity)
	ba := make(chan []byte, capacity)
	a := &pipeEnd{in: ba, out: ab, closed: make(chan struct{})}
	b := &pipeEnd{in: ab, out: ba, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Endpoint.
func (p *pipeEnd) Send(msg []byte) error {
	// Check closure first: a buffered select could otherwise still accept
	// the message after either end closed.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.out <- cp:
		return nil
	}
}

// Recv implements Endpoint. The pipe is the wall-clock transport (simulated
// clusters use simnet instead), so its timeout deliberately runs on real
// time via the explicit clock.Real opt-in.
func (p *pipeEnd) Recv(timeout time.Duration) ([]byte, error) {
	var timer *time.Timer
	var expire <-chan time.Time
	if timeout > 0 {
		timer = clock.Real.Timer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case msg := <-p.in:
		return msg, nil
	case <-expire:
		return nil, ErrTimeout
	case <-p.closed:
		// Drain anything already buffered before reporting closure — the
		// same contract as the peer-closed branch below. Closing an end
		// stops new traffic; it must not discard messages that had already
		// been delivered into the channel buffer.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-p.peer.closed:
		// Drain anything already buffered before reporting closure.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close implements Endpoint.
func (p *pipeEnd) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		return nil
	default:
		close(p.closed)
	}
	return nil
}

// tcpEndpoint speaks length-prefixed messages over a net.Conn. Receives are
// resumable: a timeout mid-frame (after a partial read of the length prefix
// or the payload) parks the partial state and the next Recv continues where
// the previous one stopped, so short timeouts never desynchronize the stream.
type tcpEndpoint struct {
	conn   net.Conn
	sendMu sync.Mutex
	lenBuf [4]byte

	// Receive state, guarded by recvMu: a buffered reader plus the
	// partially-assembled in-flight frame.
	recvMu  sync.Mutex
	br      *bufio.Reader
	rLenBuf [4]byte
	hdrGot  int    // bytes of the length prefix read so far
	payload []byte // allocated once the prefix completes
	payGot  int    // bytes of the payload read so far

	closed bool
	mu     sync.Mutex
}

// NewTCP wraps an established connection.
func NewTCP(conn net.Conn) Endpoint {
	return &tcpEndpoint{conn: conn, br: bufio.NewReader(conn)}
}

// DialTCP connects to a listening backup.
func DialTCP(addr string) (Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewTCP(conn), nil
}

// ListenTCP accepts exactly one peer on addr and returns the endpoint plus
// the bound address (useful with ":0").
func ListenTCP(addr string) (Endpoint, string, error) {
	return ListenTCPAnnounce(addr, nil)
}

// ListenTCPAnnounce is ListenTCP, but reports the bound address through
// ready before blocking in Accept — needed when listening on ":0" and the
// dialer must learn the chosen port.
func ListenTCPAnnounce(addr string, ready func(bound string)) (Endpoint, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("listen %s: %w", addr, err)
	}
	bound := l.Addr().String()
	if ready != nil {
		ready(bound)
	}
	conn, err := l.Accept()
	closeErr := l.Close()
	if err != nil {
		return nil, bound, fmt.Errorf("accept on %s: %w", bound, err)
	}
	if closeErr != nil {
		_ = conn.Close()
		return nil, bound, fmt.Errorf("close listener: %w", closeErr)
	}
	return NewTCP(conn), bound, nil
}

// Send implements Endpoint.
func (t *tcpEndpoint) Send(msg []byte) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if t.isClosed() {
		return ErrClosed
	}
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(msg)))
	if _, err := t.conn.Write(t.lenBuf[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.conn.Write(msg); err != nil {
		return t.mapErr(err)
	}
	return nil
}

// Recv implements Endpoint.
func (t *tcpEndpoint) Recv(timeout time.Duration) ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if t.isClosed() {
		return nil, ErrClosed
	}
	// Socket deadlines are inherently wall-clock: the kernel, not the
	// process, enforces them. Explicit clock.Real opt-in.
	var deadline time.Time
	if timeout > 0 {
		deadline = clock.Real.Now().Add(timeout)
	}
	if err := t.conn.SetReadDeadline(deadline); err != nil {
		return nil, t.mapErr(err)
	}
	// Resume (or start) the length prefix. Progress is kept across calls: a
	// timeout after a partial read must not discard the bytes already
	// consumed, or the next Recv would interpret payload bytes as a length.
	for t.hdrGot < len(t.rLenBuf) {
		n, err := t.br.Read(t.rLenBuf[t.hdrGot:])
		t.hdrGot += n
		if err != nil {
			return nil, t.mapErr(err)
		}
	}
	if t.payload == nil {
		n := binary.LittleEndian.Uint32(t.rLenBuf[:])
		if n > 1<<28 {
			return nil, fmt.Errorf("implausible message length %d", n)
		}
		t.payload = make([]byte, n)
		t.payGot = 0
	}
	for t.payGot < len(t.payload) {
		n, err := t.br.Read(t.payload[t.payGot:])
		t.payGot += n
		if err != nil {
			return nil, t.mapErr(err)
		}
	}
	msg := t.payload
	t.payload, t.payGot, t.hdrGot = nil, 0, 0
	return msg, nil
}

// Close implements Endpoint.
func (t *tcpEndpoint) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

func (t *tcpEndpoint) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *tcpEndpoint) mapErr(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	if t.isClosed() {
		return ErrClosed
	}
	return err
}
