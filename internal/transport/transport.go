// Package transport carries the replication log between primary and backup:
// a message-oriented, ordered, reliable duplex channel. Two implementations
// are provided — an in-process pipe (the default for tests, examples and the
// benchmark harness) and TCP (the deployment the paper used between two
// machines). A closed or timed-out endpoint is how the backup's failure
// detector observes the primary's fail-stop crash.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/simtest/clock"
)

// Errors surfaced by endpoints.
var (
	ErrClosed  = errors.New("transport closed")
	ErrTimeout = errors.New("transport receive timeout")
)

// Endpoint is one end of a duplex message channel.
type Endpoint interface {
	// Send transmits one message (never blocks indefinitely on a live
	// peer; returns ErrClosed after Close of either end). Send must not
	// retain msg after it returns: callers reuse the backing array for the
	// next frame.
	Send(msg []byte) error
	// Recv blocks for the next message. timeout <= 0 means no timeout.
	// Returns ErrClosed when the peer closed, ErrTimeout on expiry.
	Recv(timeout time.Duration) ([]byte, error)
	// Close tears the endpoint down; pending and future Recv calls on the
	// peer return ErrClosed.
	Close() error
}

// pipeShared is the state behind both ends of an in-process pipe: two
// bounded queues (one per direction) plus the parked senders/receivers
// waiting on them. All waits go through clock.WaitSlot on the pipe's
// injected clock, so a pipe created with PipeClock is fully visible to a
// virtual clock — its Recv timeouts fire in simulated time and its blocked
// endpoints count as parked actors instead of stalling the simulation. (The
// earlier implementation waited on bare channels with a real timer: exactly
// the kind of wall-clock wait the clock lint cannot see, because the timer
// came from the sanctioned clock.Real escape hatch.)
type pipeShared struct {
	clk clock.Clock
	mu  sync.Mutex
	dir [2]pipeDir // dir[i] carries traffic sent by end i
	// closed[i] reports end i closed. Either closure stops new traffic in
	// both directions; already-buffered messages remain drainable.
	closed [2]bool
}

// pipeDir is one direction's queue and its waiters.
type pipeDir struct {
	capacity int
	queue    [][]byte
	sendWait []clock.WaitSlot // senders parked on a full queue
	recvWait []clock.WaitSlot // receivers parked on an empty queue
}

// wake signals and forgets every parked waiter in list; woken parties
// re-evaluate their condition and re-park with a fresh slot if needed.
func wake(list *[]clock.WaitSlot) {
	for _, s := range *list {
		s.Signal()
	}
	*list = (*list)[:0]
}

// pipeEnd is one side of an in-process pipe.
type pipeEnd struct {
	s   *pipeShared
	idx int // 0 or 1; sends into s.dir[idx], receives from s.dir[1-idx]
}

// Pipe returns the two ends of an in-process duplex channel with capacity
// cap messages per direction (a small buffer decouples the primary's log
// sender from the backup's consumer, like a socket buffer). Waits run on
// the wall clock; simulation code uses PipeClock.
func Pipe(capacity int) (Endpoint, Endpoint) {
	return PipeClock(capacity, nil)
}

// PipeClock is Pipe with an injected clock: under a virtual clock every
// blocking Send/Recv parks clock-visibly and every Recv timeout fires in
// simulated time, which is what keeps harness runs that use the in-process
// pipe (ftvm.RunReplicated and friends) deterministic under simulation.
func PipeClock(capacity int, clk clock.Clock) (Endpoint, Endpoint) {
	if capacity < 1 {
		capacity = 64
	}
	s := &pipeShared{clk: clock.Or(clk)}
	s.dir[0].capacity = capacity
	s.dir[1].capacity = capacity
	return &pipeEnd{s: s, idx: 0}, &pipeEnd{s: s, idx: 1}
}

// Send implements Endpoint. It blocks (clock-visibly) while the direction's
// buffer is full, and fails once either end has closed — a buffered queue
// must not keep accepting traffic for a torn-down channel.
func (p *pipeEnd) Send(msg []byte) error {
	s := p.s
	s.mu.Lock()
	d := &s.dir[p.idx]
	for {
		if s.closed[0] || s.closed[1] {
			s.mu.Unlock()
			return ErrClosed
		}
		if len(d.queue) < d.capacity {
			break
		}
		slot := s.clk.NewWaitSlot()
		d.sendWait = append(d.sendWait, slot)
		s.mu.Unlock()
		slot.Park(0)
		s.mu.Lock()
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	d.queue = append(d.queue, cp)
	wake(&d.recvWait)
	s.mu.Unlock()
	return nil
}

// Recv implements Endpoint. Buffered messages are drained even after either
// end closes (closing stops new traffic; it must not discard messages that
// were already delivered into the buffer); only an empty queue reports
// ErrClosed.
func (p *pipeEnd) Recv(timeout time.Duration) ([]byte, error) {
	s := p.s
	s.mu.Lock()
	d := &s.dir[1-p.idx]
	for {
		if len(d.queue) > 0 {
			msg := d.queue[0]
			d.queue = d.queue[1:]
			wake(&d.sendWait)
			s.mu.Unlock()
			return msg, nil
		}
		if s.closed[0] || s.closed[1] {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		slot := s.clk.NewWaitSlot()
		d.recvWait = append(d.recvWait, slot)
		s.mu.Unlock()
		timedOut := slot.Park(timeout)
		s.mu.Lock()
		// Drop our slot if it is still registered (a timeout leaves it in
		// the list; a wake already cleared it). A stale entry would only
		// accumulate, never misbehave, but keep the list exact.
		for i, ws := range d.recvWait {
			if ws == slot {
				d.recvWait = append(d.recvWait[:i], d.recvWait[i+1:]...)
				break
			}
		}
		if timedOut && len(d.queue) == 0 {
			if s.closed[0] || s.closed[1] {
				s.mu.Unlock()
				return nil, ErrClosed
			}
			s.mu.Unlock()
			return nil, ErrTimeout
		}
	}
}

// Close implements Endpoint. Idempotent; wakes every parked sender and
// receiver on both directions so nothing stays parked on a dead channel.
func (p *pipeEnd) Close() error {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed[p.idx] {
		return nil
	}
	s.closed[p.idx] = true
	for i := range s.dir {
		wake(&s.dir[i].sendWait)
		wake(&s.dir[i].recvWait)
	}
	return nil
}

// tcpEndpoint speaks length-prefixed messages over a net.Conn. Receives are
// resumable: a timeout mid-frame (after a partial read of the length prefix
// or the payload) parks the partial state and the next Recv continues where
// the previous one stopped, so short timeouts never desynchronize the stream.
type tcpEndpoint struct {
	conn   net.Conn
	sendMu sync.Mutex
	lenBuf [4]byte

	// Receive state, guarded by recvMu: a buffered reader plus the
	// partially-assembled in-flight frame.
	recvMu  sync.Mutex
	br      *bufio.Reader
	rLenBuf [4]byte
	hdrGot  int    // bytes of the length prefix read so far
	payload []byte // allocated once the prefix completes
	payGot  int    // bytes of the payload read so far

	closed bool
	mu     sync.Mutex
}

// NewTCP wraps an established connection.
func NewTCP(conn net.Conn) Endpoint {
	return &tcpEndpoint{conn: conn, br: bufio.NewReader(conn)}
}

// DialTCP connects to a listening backup.
func DialTCP(addr string) (Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewTCP(conn), nil
}

// ListenTCP accepts exactly one peer on addr and returns the endpoint plus
// the bound address (useful with ":0").
func ListenTCP(addr string) (Endpoint, string, error) {
	return ListenTCPAnnounce(addr, nil)
}

// ListenTCPAnnounce is ListenTCP, but reports the bound address through
// ready before blocking in Accept — needed when listening on ":0" and the
// dialer must learn the chosen port.
func ListenTCPAnnounce(addr string, ready func(bound string)) (Endpoint, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("listen %s: %w", addr, err)
	}
	bound := l.Addr().String()
	if ready != nil {
		ready(bound)
	}
	conn, err := l.Accept()
	closeErr := l.Close()
	if err != nil {
		return nil, bound, fmt.Errorf("accept on %s: %w", bound, err)
	}
	if closeErr != nil {
		_ = conn.Close()
		return nil, bound, fmt.Errorf("close listener: %w", closeErr)
	}
	return NewTCP(conn), bound, nil
}

// Send implements Endpoint.
func (t *tcpEndpoint) Send(msg []byte) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if t.isClosed() {
		return ErrClosed
	}
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(msg)))
	if _, err := t.conn.Write(t.lenBuf[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.conn.Write(msg); err != nil {
		return t.mapErr(err)
	}
	return nil
}

// Recv implements Endpoint.
func (t *tcpEndpoint) Recv(timeout time.Duration) ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if t.isClosed() {
		return nil, ErrClosed
	}
	// Socket deadlines are inherently wall-clock: the kernel, not the
	// process, enforces them. Explicit clock.Real opt-in.
	var deadline time.Time
	if timeout > 0 {
		deadline = clock.Real.Now().Add(timeout)
	}
	if err := t.conn.SetReadDeadline(deadline); err != nil {
		return nil, t.mapErr(err)
	}
	// Resume (or start) the length prefix. Progress is kept across calls: a
	// timeout after a partial read must not discard the bytes already
	// consumed, or the next Recv would interpret payload bytes as a length.
	for t.hdrGot < len(t.rLenBuf) {
		n, err := t.br.Read(t.rLenBuf[t.hdrGot:])
		t.hdrGot += n
		if err != nil {
			return nil, t.mapErr(err)
		}
	}
	if t.payload == nil {
		n := binary.LittleEndian.Uint32(t.rLenBuf[:])
		if n > 1<<28 {
			return nil, fmt.Errorf("implausible message length %d", n)
		}
		t.payload = make([]byte, n)
		t.payGot = 0
	}
	for t.payGot < len(t.payload) {
		n, err := t.br.Read(t.payload[t.payGot:])
		t.payGot += n
		if err != nil {
			return nil, t.mapErr(err)
		}
	}
	msg := t.payload
	t.payload, t.payGot, t.hdrGot = nil, 0, 0
	return msg, nil
}

// Close implements Endpoint.
func (t *tcpEndpoint) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

func (t *tcpEndpoint) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *tcpEndpoint) mapErr(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	if t.isClosed() {
		return ErrClosed
	}
	return err
}
