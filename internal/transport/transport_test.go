package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func testEndpointPair(t *testing.T, a, b Endpoint) {
	t.Helper()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "ping" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	msg, err = a.Recv(time.Second)
	if err != nil || string(msg) != "pong" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	// Ordering holds under load.
	go func() {
		for i := 0; i < 100; i++ {
			_ = a.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < 100; i++ {
		msg, err := b.Recv(time.Second)
		if err != nil || len(msg) != 1 || msg[0] != byte(i) {
			t.Fatalf("message %d = %v (%v)", i, msg, err)
		}
	}
}

func TestPipeBasics(t *testing.T) {
	a, b := Pipe(4)
	testEndpointPair(t, a, b)
}

func TestPipeCloseSignalsPeer(t *testing.T) {
	a, b := Pipe(4)
	_ = a.Send([]byte("buffered"))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered data drains before closure is reported.
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "buffered" {
		t.Fatalf("drain = %q (%v)", msg, err)
	}
	if _, err := b.Recv(100 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := b.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed: %v", err)
	}
}

func TestPipeTimeout(t *testing.T) {
	a, _ := Pipe(1)
	start := time.Now()
	_, err := a.Recv(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned too early")
	}
}

func TestPipeMessageIsolation(t *testing.T) {
	a, b := Pipe(1)
	payload := []byte("mutate-me")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Send(payload)
	}()
	<-done
	payload[0] = 'X' // sender mutating after Send must not affect receiver
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "mutate-me" {
		t.Fatalf("message aliased: %q (%v)", msg, err)
	}
}

func TestTCPEndpoint(t *testing.T) {
	type acceptResult struct {
		ep  Endpoint
		err error
	}
	resCh := make(chan acceptResult, 1)
	addrCh := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep, bound, err := listenTCPAsync(addrCh)
		resCh <- acceptResult{ep, err}
		_ = bound
	}()
	addr := <-addrCh
	dialer, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	wg.Wait()
	testEndpointPair(t, dialer, res.ep)

	big := bytes.Repeat([]byte("z"), 1<<16)
	if err := dialer.Send(big); err != nil {
		t.Fatal(err)
	}
	msg, err := res.ep.Recv(time.Second)
	if err != nil || !bytes.Equal(msg, big) {
		t.Fatalf("big message: %d bytes (%v)", len(msg), err)
	}

	if _, err := res.ep.Recv(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	_ = dialer.Close()
	if _, err := res.ep.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("want closed, got %v", err)
	}
}

// listenTCPAsync is ListenTCPAnnounce adapted so the test can learn the
// bound address before Accept blocks.
func listenTCPAsync(addrCh chan<- string) (Endpoint, string, error) {
	return ListenTCPAnnounce("127.0.0.1:0", func(bound string) { addrCh <- bound })
}

func TestLatencyWrapper(t *testing.T) {
	a, b := Pipe(4)
	la := WithLatency(a, 2*time.Millisecond, 0)
	start := time.Now()
	if err := la.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("send too fast: %v", el)
	}
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "slow" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if la.Simulated() < 2*time.Millisecond {
		t.Fatalf("simulated = %v", la.Simulated())
	}
	// Per-KB component scales with size.
	lb := WithLatency(a, 0, 1024*time.Microsecond) // ~1µs per byte
	start = time.Now()
	_ = lb.Send(make([]byte, 4096))
	if el := time.Since(start); el < 3*time.Millisecond {
		t.Fatalf("per-KB cost not charged: %v", el)
	}
}
