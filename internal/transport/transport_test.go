package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func testEndpointPair(t *testing.T, a, b Endpoint) {
	t.Helper()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "ping" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	msg, err = a.Recv(time.Second)
	if err != nil || string(msg) != "pong" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	// Ordering holds under load.
	go func() {
		for i := 0; i < 100; i++ {
			_ = a.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < 100; i++ {
		msg, err := b.Recv(time.Second)
		if err != nil || len(msg) != 1 || msg[0] != byte(i) {
			t.Fatalf("message %d = %v (%v)", i, msg, err)
		}
	}
}

func TestPipeBasics(t *testing.T) {
	a, b := Pipe(4)
	testEndpointPair(t, a, b)
}

func TestPipeCloseSignalsPeer(t *testing.T) {
	a, b := Pipe(4)
	_ = a.Send([]byte("buffered"))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered data drains before closure is reported.
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "buffered" {
		t.Fatalf("drain = %q (%v)", msg, err)
	}
	if _, err := b.Recv(100 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := b.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed: %v", err)
	}
}

// TestPipeLocalCloseDrains: buffered messages survive the *local* end
// closing, symmetric with the peer-close drain above — closing stops new
// traffic but must not discard what was already delivered.
func TestPipeLocalCloseDrains(t *testing.T) {
	a, b := Pipe(4)
	if err := b.Send([]byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// Ensure the message is buffered before the close.
	time.Sleep(time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	msg, err := a.Recv(time.Second)
	if err != nil || string(msg) != "in-flight" {
		t.Fatalf("drain after local close = %q (%v)", msg, err)
	}
	if _, err := a.Recv(50 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

func TestPipeTimeout(t *testing.T) {
	a, _ := Pipe(1)
	start := time.Now()
	_, err := a.Recv(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned too early")
	}
}

func TestPipeMessageIsolation(t *testing.T) {
	a, b := Pipe(1)
	payload := []byte("mutate-me")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Send(payload)
	}()
	<-done
	payload[0] = 'X' // sender mutating after Send must not affect receiver
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "mutate-me" {
		t.Fatalf("message aliased: %q (%v)", msg, err)
	}
}

func TestTCPEndpoint(t *testing.T) {
	type acceptResult struct {
		ep  Endpoint
		err error
	}
	resCh := make(chan acceptResult, 1)
	addrCh := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep, bound, err := listenTCPAsync(addrCh)
		resCh <- acceptResult{ep, err}
		_ = bound
	}()
	addr := <-addrCh
	dialer, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	wg.Wait()
	testEndpointPair(t, dialer, res.ep)

	big := bytes.Repeat([]byte("z"), 1<<16)
	if err := dialer.Send(big); err != nil {
		t.Fatal(err)
	}
	msg, err := res.ep.Recv(time.Second)
	if err != nil || !bytes.Equal(msg, big) {
		t.Fatalf("big message: %d bytes (%v)", len(msg), err)
	}

	if _, err := res.ep.Recv(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	_ = dialer.Close()
	if _, err := res.ep.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("want closed, got %v", err)
	}
}

// listenTCPAsync is ListenTCPAnnounce adapted so the test can learn the
// bound address before Accept blocks.
func listenTCPAsync(addrCh chan<- string) (Endpoint, string, error) {
	return ListenTCPAnnounce("127.0.0.1:0", func(bound string) { addrCh <- bound })
}

// TestTCPRecvResumesAfterTimeout: a Recv timeout mid-frame (after a partial
// read of the length prefix or payload) must not desynchronize the stream —
// the next Recv resumes the partial frame and later traffic still parses.
func TestTCPRecvResumesAfterTimeout(t *testing.T) {
	cc, sc := net.Pipe()
	ep := NewTCP(sc)
	defer ep.Close()
	defer cc.Close()

	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}

	// Dribble the first frame byte by byte with pauses longer than the
	// receiver's timeout, so Recv times out mid-prefix and mid-payload.
	writeErr := make(chan error, 1)
	go func() {
		b := frame([]byte("slow-frame"))
		for i := range b {
			if _, err := cc.Write(b[i : i+1]); err != nil {
				writeErr <- err
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
		// Then immediately follow with live traffic, written whole.
		_, err := cc.Write(append(frame([]byte("second")), frame([]byte("third"))...))
		writeErr <- err
	}()

	var msg []byte
	var err error
	timeouts := 0
	for {
		msg, err = ep.Recv(2 * time.Millisecond)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("recv: %v", err)
		}
		timeouts++
		if timeouts > 1000 {
			t.Fatal("frame never completed")
		}
	}
	if string(msg) != "slow-frame" {
		t.Fatalf("resumed frame = %q", msg)
	}
	if timeouts == 0 {
		t.Fatal("test never exercised a mid-frame timeout")
	}
	for _, want := range []string{"second", "third"} {
		deadline := time.Now().Add(2 * time.Second)
		for {
			msg, err = ep.Recv(5 * time.Millisecond)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrTimeout) || time.Now().After(deadline) {
				t.Fatalf("recv after resume: %v", err)
			}
		}
		if string(msg) != want {
			t.Fatalf("post-resume frame = %q, want %q", msg, want)
		}
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestLatencyWrapper(t *testing.T) {
	a, b := Pipe(4)
	la := WithLatency(a, 2*time.Millisecond, 0)
	start := time.Now()
	if err := la.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("send too fast: %v", el)
	}
	msg, err := b.Recv(time.Second)
	if err != nil || string(msg) != "slow" {
		t.Fatalf("recv = %q (%v)", msg, err)
	}
	if la.Simulated() < 2*time.Millisecond {
		t.Fatalf("simulated = %v", la.Simulated())
	}
	// Per-KB component scales with size.
	lb := WithLatency(a, 0, 1024*time.Microsecond) // ~1µs per byte
	start = time.Now()
	_ = lb.Send(make([]byte, 4096))
	if el := time.Since(start); el < 3*time.Millisecond {
		t.Fatalf("per-KB cost not charged: %v", el)
	}
}
