package transport

import (
	"sync"
	"time"

	frand "repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
)

// FaultKind enumerates the injectable channel failures. Each models a way a
// real primary↔backup link can misbehave short of (or including) a clean
// close: frames vanishing, arriving late or twice, a connection torn down
// mid-write, and one-way partitions where only one direction keeps flowing.
type FaultKind int

// Fault kinds.
const (
	// FaultNone injects nothing; the wrapper is transparent.
	FaultNone FaultKind = iota
	// FaultDropSend silently discards the Nth outgoing message.
	FaultDropSend
	// FaultDelaySend delays the Nth outgoing message (Delay, or a seeded
	// 1–5 ms jitter when zero) before delivering it.
	FaultDelaySend
	// FaultDuplicateSend delivers the Nth outgoing message twice.
	FaultDuplicateSend
	// FaultPartialSend delivers a truncated prefix of the Nth outgoing
	// message, then closes the endpoint — a connection dying mid-write.
	FaultPartialSend
	// FaultCloseAtSend closes the endpoint instead of performing the Nth send.
	FaultCloseAtSend
	// FaultCloseAtRecv closes the endpoint at the Nth receive.
	FaultCloseAtRecv
	// FaultPartitionSend cuts the outgoing direction from the Nth send on:
	// sends appear to succeed but nothing is delivered (one-way partition).
	FaultPartitionSend
	// FaultPartitionRecv cuts the incoming direction from the Nth receive on:
	// receives see only silence (timeout) while sends still flow.
	FaultPartitionRecv
	// FaultCorruptRecv garbles the Nth received message: a seeded byte is
	// flipped and seeded garbage appended, modeling in-flight mangling the
	// transport checksum missed. The receiver's decoder must reject it (a
	// corrupt ack satisfying an output commit was a real bug — see
	// wire.DecodeAck).
	FaultCorruptRecv
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropSend:
		return "drop-send"
	case FaultDelaySend:
		return "delay-send"
	case FaultDuplicateSend:
		return "dup-send"
	case FaultPartialSend:
		return "partial-send"
	case FaultCloseAtSend:
		return "close-at-send"
	case FaultCloseAtRecv:
		return "close-at-recv"
	case FaultPartitionSend:
		return "partition-send"
	case FaultPartitionRecv:
		return "partition-recv"
	case FaultCorruptRecv:
		return "corrupt-recv"
	default:
		return "invalid"
	}
}

// FaultPlan schedules one fault: Kind fires at the At-th matching operation
// (1-based; sends for send faults, receives for receive faults). Delay tunes
// FaultDelaySend; zero draws a seeded jitter so sweeps stay reproducible.
type FaultPlan struct {
	Kind  FaultKind
	At    int
	Delay time.Duration
}

// FaultyStats counts the wrapper's activity.
type FaultyStats struct {
	Sends    int // Send calls observed (including dropped/partitioned ones)
	Recvs    int // Recv calls observed
	Injected int // fault activations (partitions count every suppressed op)
}

// Faulty wraps an Endpoint with deterministic, seeded fault injection. It is
// the adversary for the replication channel-fault sweep: the same plan and
// seed always produce the same failure, so a failing (mode × fault ×
// position) cell reproduces exactly.
type Faulty struct {
	inner Endpoint
	plan  FaultPlan
	clk   clock.Clock

	mu           sync.Mutex
	rng          *frand.RNG
	stats        FaultyStats
	partitionOut bool
	partitionIn  bool
}

var _ Endpoint = (*Faulty)(nil)

// NewFaulty wraps ep with plan; seed derives any randomized fault parameters
// (currently the FaultDelaySend jitter when plan.Delay is zero). Delays and
// partition silences run on the wall clock; use NewFaultyClock to put them
// on a simulated clock.
func NewFaulty(ep Endpoint, plan FaultPlan, seed int64) *Faulty {
	return NewFaultyClock(ep, plan, seed, nil)
}

// NewFaultyClock is NewFaulty with an injected clock: under a virtual clock
// the injected delays and partition silences advance simulated time instead
// of sleeping, making whole fault schedules deterministic and instant.
func NewFaultyClock(ep Endpoint, plan FaultPlan, seed int64, clk clock.Clock) *Faulty {
	return &Faulty{inner: ep, plan: plan, rng: frand.New(uint64(seed)), clk: clock.Or(clk)}
}

// Stats returns a copy of the activity counters.
func (f *Faulty) Stats() FaultyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Send implements Endpoint, injecting the planned send-side fault.
func (f *Faulty) Send(msg []byte) error {
	f.mu.Lock()
	f.stats.Sends++
	n := f.stats.Sends
	if f.partitionOut {
		f.stats.Injected++
		f.mu.Unlock()
		return nil // swallowed by the partition; the sender cannot tell
	}
	kind := FaultNone
	if n == f.plan.At {
		kind = f.plan.Kind
	}
	var delay time.Duration
	switch kind {
	case FaultDropSend:
		f.stats.Injected++
		f.mu.Unlock()
		return nil
	case FaultDelaySend:
		delay = f.plan.Delay
		if delay <= 0 {
			delay = time.Duration(1+f.rng.Intn(4)) * time.Millisecond
		}
		f.stats.Injected++
	case FaultDuplicateSend:
		f.stats.Injected++
		f.mu.Unlock()
		if err := f.inner.Send(msg); err != nil {
			return err
		}
		return f.inner.Send(msg)
	case FaultPartialSend:
		f.stats.Injected++
		f.mu.Unlock()
		_ = f.inner.Send(msg[:len(msg)/2])
		_ = f.inner.Close()
		return ErrClosed
	case FaultCloseAtSend:
		f.stats.Injected++
		f.mu.Unlock()
		_ = f.inner.Close()
		return ErrClosed
	case FaultPartitionSend:
		f.partitionOut = true
		f.stats.Injected++
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	if delay > 0 {
		f.clk.Sleep(delay)
	}
	return f.inner.Send(msg)
}

// Recv implements Endpoint, injecting the planned receive-side fault.
func (f *Faulty) Recv(timeout time.Duration) ([]byte, error) {
	f.mu.Lock()
	f.stats.Recvs++
	n := f.stats.Recvs
	if f.plan.Kind == FaultPartitionRecv && n >= f.plan.At {
		f.partitionIn = true
	}
	if f.partitionIn {
		f.stats.Injected++
		f.mu.Unlock()
		// Silence: nothing arrives. With no timeout the caller would block
		// forever; surface the timeout immediately instead of hanging tests.
		if timeout > 0 {
			f.clk.Sleep(timeout)
		}
		return nil, ErrTimeout
	}
	if f.plan.Kind == FaultCloseAtRecv && n == f.plan.At {
		f.stats.Injected++
		f.mu.Unlock()
		_ = f.inner.Close()
		return nil, ErrClosed
	}
	if f.plan.Kind == FaultCorruptRecv && n == f.plan.At {
		f.stats.Injected++
		flip := byte(1 + f.rng.Intn(255))
		tail := byte(f.rng.Intn(256))
		f.mu.Unlock()
		msg, err := f.inner.Recv(timeout)
		if err != nil {
			return msg, err
		}
		// Mangle a copy: flip one seeded byte and append a garbage byte, so
		// both "wrong value" and "trailing bytes" decoder paths are hit.
		bad := make([]byte, len(msg)+1)
		copy(bad, msg)
		if len(msg) > 0 {
			bad[len(msg)/2] ^= flip
		}
		bad[len(msg)] = tail
		return bad, nil
	}
	f.mu.Unlock()
	return f.inner.Recv(timeout)
}

// Close implements Endpoint.
func (f *Faulty) Close() error { return f.inner.Close() }
