// Package viewsvc tracks replica-set membership as a sequence of numbered
// views and decides who replaces whom when a replica dies. A view names one
// primary and (when a node is available) one backup; every configuration
// change — primary failure, backup failure, recruitment — advances the view
// number, and the number doubles as the replication epoch stamped on every
// wire frame (see internal/replication): receivers reject traffic from older
// epochs, which is what closes the split-brain window where a deposed primary
// and its successor both believe their outputs commit.
//
// The service is deliberately not itself replicated — in the paper's
// deployment (§2) the pair runs under an external management layer; here the
// service plays that layer for the simulation harness and tests. It is fully
// clock-injected: failure detection reads the injected clock.Clock, so whole
// cluster lifetimes replay deterministically under a virtual clock.
package viewsvc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simtest/clock"
)

// Errors returned by the promotion guard and membership calls.
var (
	// ErrUnknownNode: the named node never joined.
	ErrUnknownNode = errors.New("viewsvc: unknown node")
	// ErrStaleView: the caller is acting on a view that has been superseded
	// (e.g. acquiring a promotion for view 2 when the service is at view 3).
	ErrStaleView = errors.New("viewsvc: view superseded")
	// ErrNotPrimary: the caller is not the primary of the view it names, so
	// it has no business taking over.
	ErrNotPrimary = errors.New("viewsvc: node is not the primary of this view")
	// ErrAlreadyPromoted: the view's promotion was already acquired — a
	// second concurrent takeover must not also count for output commit.
	ErrAlreadyPromoted = errors.New("viewsvc: promotion already acquired for this view")
	// ErrDead: the node was declared failed; dead nodes cannot act.
	ErrDead = errors.New("viewsvc: node is declared dead")
)

// View is one replica-set configuration. Num is the epoch: strictly
// increasing, never reused. Backup is empty when no idle node was available
// to recruit (the pair runs degraded until one joins).
type View struct {
	Num     uint64
	Primary string
	Backup  string
}

// Config configures the service.
type Config struct {
	// Clock supplies time for the failure detector (nil = wall clock).
	Clock clock.Clock
	// FailTimeout: a member silent for longer than this is declared dead by
	// Tick (0 disables ping-based detection; ReportFailure still works).
	FailTimeout time.Duration
}

type member struct {
	name     string
	lastPing time.Time
	dead     bool
}

// Service is the membership tracker / view manager.
type Service struct {
	clk     clock.Clock
	timeout time.Duration

	mu      sync.Mutex
	members map[string]*member
	order   []string // join order: deterministic recruitment preference
	view    View
	claimed map[uint64]string // view num -> node that acquired its promotion
	waiters []*viewWaiter
}

type viewWaiter struct {
	num  uint64
	slot clock.WaitSlot
}

// New builds a service with no members and view 0 (no configuration yet).
func New(cfg Config) *Service {
	return &Service{
		clk:     clock.Or(cfg.Clock),
		timeout: cfg.FailTimeout,
		members: make(map[string]*member),
		claimed: make(map[uint64]string),
	}
}

// Join registers a node (idempotent; re-joining refreshes its ping). Joining
// does not change the current view — a new node waits idle until Form or a
// failure recruits it.
func (s *Service) Join(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.members[name]; ok {
		m.lastPing = s.clk.Now()
		m.dead = false
		return
	}
	s.members[name] = &member{name: name, lastPing: s.clk.Now()}
	s.order = append(s.order, name)
}

// Form establishes view 1 from the two oldest live members (or one, running
// degraded). It errors if no live member exists or a view is already formed.
func (s *Service) Form() (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view.Num != 0 {
		return s.view, fmt.Errorf("viewsvc: view %d already formed", s.view.Num)
	}
	pri := s.nextLiveLocked(nil)
	if pri == "" {
		return View{}, errors.New("viewsvc: no live members to form a view")
	}
	bak := s.nextLiveLocked(map[string]bool{pri: true})
	s.installLocked(View{Num: 1, Primary: pri, Backup: bak})
	return s.view, nil
}

// Ping records a heartbeat from name. Unknown nodes are ignored (a deposed
// node's stray ping must not resurrect it under a new identity).
func (s *Service) Ping(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.members[name]; ok && !m.dead {
		m.lastPing = s.clk.Now()
	}
}

// Tick runs the ping-based failure detector once: members silent for longer
// than FailTimeout are declared dead, and the view advances if one of them
// held a seat. It returns the (possibly new) current view. Call it from a
// periodic loop (see Watch) or explicitly in deterministic tests.
func (s *Service) Tick() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.timeout <= 0 {
		return s.view
	}
	now := s.clk.Now()
	for _, name := range s.order {
		m := s.members[name]
		if !m.dead && now.Sub(m.lastPing) > s.timeout {
			m.dead = true
			s.reseatLocked(name)
		}
	}
	return s.view
}

// ReportFailure lets a replica surface a failure its own detector found (a
// closed transport, heartbeat silence on the replication channel): dead is
// declared failed immediately and the view advances if it held a seat. The
// reporter must be a live member — a node that was itself deposed cannot vote
// its successor dead.
func (s *Service) ReportFailure(reporter, dead string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.members[reporter]
	if !ok {
		return s.view, fmt.Errorf("%w: %s", ErrUnknownNode, reporter)
	}
	if r.dead {
		return s.view, fmt.Errorf("%w: %s", ErrDead, reporter)
	}
	m, ok := s.members[dead]
	if !ok {
		return s.view, fmt.Errorf("%w: %s", ErrUnknownNode, dead)
	}
	if !m.dead {
		m.dead = true
		s.reseatLocked(dead)
	}
	return s.view, nil
}

// View returns the current view.
func (s *Service) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// WaitView blocks until the view number reaches at least num and returns the
// view that got it there. Each caller parks on its own clock wait slot, so
// the wait is visible to a virtual clock.
func (s *Service) WaitView(num uint64) View {
	s.mu.Lock()
	if s.view.Num >= num {
		v := s.view
		s.mu.Unlock()
		return v
	}
	w := &viewWaiter{num: num, slot: s.clk.NewWaitSlot()}
	s.waiters = append(s.waiters, w)
	for s.view.Num < num {
		s.mu.Unlock()
		w.slot.Park(0)
		s.mu.Lock()
	}
	v := s.view
	s.mu.Unlock()
	return v
}

// AcquirePromotion is the takeover guard: the primary of view num calls it
// before it starts counting outputs as committed in that view. Exactly one
// acquisition per view succeeds — a second takeover attempt (the double-
// takeover race: two replicas both concluding they should lead) gets
// ErrAlreadyPromoted instead of a second license to commit. Acting on a
// superseded view is ErrStaleView; acting from the wrong seat is
// ErrNotPrimary. Acquiring the same view twice *from the same node* is also
// an error: promotion is an edge, not a state, and a caller that lost track
// must rejoin the protocol rather than re-commit.
func (s *Service) AcquirePromotion(node string, num uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[node]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	if m.dead {
		return fmt.Errorf("%w: %s", ErrDead, node)
	}
	if num != s.view.Num {
		return fmt.Errorf("%w: acquiring view %d, current is %d", ErrStaleView, num, s.view.Num)
	}
	if s.view.Primary != node {
		return fmt.Errorf("%w: %s acquiring view %d led by %s", ErrNotPrimary, node, num, s.view.Primary)
	}
	if by, dup := s.claimed[num]; dup {
		return fmt.Errorf("%w: view %d already acquired by %s", ErrAlreadyPromoted, num, by)
	}
	s.claimed[num] = node
	return nil
}

// reseatLocked advances the view after name died, if it held a seat: a dead
// primary is replaced by the backup (promotion), a dead backup by a recruited
// idle node. Either way the epoch moves, so the old configuration's frames
// and acks become rejectable everywhere.
func (s *Service) reseatLocked(name string) {
	v := s.view
	if v.Num == 0 || (name != v.Primary && name != v.Backup) {
		return
	}
	taken := map[string]bool{name: true}
	next := View{Num: v.Num + 1}
	if name == v.Primary {
		next.Primary = v.Backup
	} else {
		next.Primary = v.Primary
	}
	if next.Primary == "" {
		// The primary died with no backup to promote: the replica set is
		// gone. Record the terminal, empty view so waiters still wake.
		s.installLocked(next)
		return
	}
	taken[next.Primary] = true
	next.Backup = s.nextLiveLocked(taken)
	s.installLocked(next)
}

// nextLiveLocked returns the oldest-joined live member not in taken ("" if
// none) — deterministic recruitment order.
func (s *Service) nextLiveLocked(taken map[string]bool) string {
	for _, name := range s.order {
		if taken[name] {
			continue
		}
		if m := s.members[name]; !m.dead {
			return name
		}
	}
	return ""
}

// installLocked publishes a new view and wakes satisfied waiters.
func (s *Service) installLocked(v View) {
	s.view = v
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if v.Num >= w.num {
			w.slot.Signal()
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
}
