package viewsvc

import (
	"sync/atomic"
	"time"

	"repro/internal/simtest/clock"
)

// loop is the shared stoppable periodic actor: it parks on a clock wait slot
// with the period as timeout (so a virtual clock sees and advances the wait)
// and runs fn on every period expiry until stopped. Signal-without-stop
// wakeups just re-park, mirroring the primary's heartbeat loop.
type loop struct {
	slot    clock.WaitSlot
	stopped atomic.Bool
	done    chan struct{}
}

func startLoop(clk clock.Clock, every time.Duration, fn func()) *loop {
	l := &loop{slot: clk.NewWaitSlot(), done: make(chan struct{})}
	clk.Go(func() {
		defer close(l.done)
		for {
			timedOut := l.slot.Park(every)
			if l.stopped.Load() {
				return
			}
			if !timedOut {
				continue
			}
			fn()
		}
	})
	return l
}

// Stop halts the loop and waits for it to exit. The loop needs no further
// clock advance once signalled, so the bare channel wait is virtual-clock
// safe.
func (l *loop) Stop() {
	if l.stopped.CompareAndSwap(false, true) {
		l.slot.Signal()
	}
	<-l.done
}

// Pinger heartbeats one node's membership to the service on a fixed period —
// the node-side half of ping-based failure detection. Stop it when the node
// dies (or to simulate its death).
type Pinger struct{ l *loop }

// NewPinger starts pinging s as name every period.
func NewPinger(s *Service, name string, every time.Duration) *Pinger {
	return &Pinger{l: startLoop(s.clk, every, func() { s.Ping(name) })}
}

// Stop halts the pinger; the service will declare the node dead one
// FailTimeout later.
func (p *Pinger) Stop() { p.l.Stop() }

// Watcher drives the service's failure detector periodically — the
// service-side half. One Watcher per service suffices.
type Watcher struct{ l *loop }

// NewWatcher ticks s every period.
func NewWatcher(s *Service, every time.Duration) *Watcher {
	return &Watcher{l: startLoop(s.clk, every, func() { s.Tick() })}
}

// Stop halts the watcher.
func (w *Watcher) Stop() { w.l.Stop() }
