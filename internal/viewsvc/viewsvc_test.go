package viewsvc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simtest/clock"
)

func newSvc(t *testing.T, clk clock.Clock, timeout time.Duration, nodes ...string) *Service {
	t.Helper()
	s := New(Config{Clock: clk, FailTimeout: timeout})
	for _, n := range nodes {
		s.Join(n)
	}
	return s
}

func wantView(t *testing.T, got View, num uint64, pri, bak string) {
	t.Helper()
	if got.Num != num || got.Primary != pri || got.Backup != bak {
		t.Fatalf("view = %+v, want {Num:%d Primary:%q Backup:%q}", got, num, pri, bak)
	}
}

func TestFormAndReportFailurePromotes(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "n1", "n2", "n3")
	v, err := s.Form()
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 1, "n1", "n2")
	if _, err := s.Form(); err == nil {
		t.Fatal("second Form should fail")
	}

	// Primary dies: backup promoted, idle node recruited.
	v, err = s.ReportFailure("n2", "n1")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 2, "n2", "n3")

	// New primary dies: last node leads, degraded (no backup left).
	v, err = s.ReportFailure("n3", "n2")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 3, "n3", "")

	// Reporting an already-dead node does not advance the view again.
	v, err = s.ReportFailure("n3", "n1")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 3, "n3", "")
}

func TestBackupFailureRecruitsAndAdvancesEpoch(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	// Backup dies: primary keeps its seat but the epoch still advances (the
	// new pair is a new configuration) and the idle node fills in.
	v, err := s.ReportFailure("n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 2, "n1", "n3")
}

func TestDeadReporterAndUnknownNodes(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "n1", "n2")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportFailure("n2", "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportFailure("n1", "n2"); !errors.Is(err, ErrDead) {
		t.Fatalf("dead reporter: err = %v, want ErrDead", err)
	}
	if _, err := s.ReportFailure("ghost", "n2"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown reporter: err = %v, want ErrUnknownNode", err)
	}
	if _, err := s.ReportFailure("n2", "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown dead: err = %v, want ErrUnknownNode", err)
	}
}

func TestAcquirePromotionGuard(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportFailure("n2", "n1"); err != nil {
		t.Fatal(err)
	}

	// Wrong seat, wrong view, then the real one, then the double takeover.
	if err := s.AcquirePromotion("n3", 2); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("backup acquiring: err = %v, want ErrNotPrimary", err)
	}
	if err := s.AcquirePromotion("n2", 1); !errors.Is(err, ErrStaleView) {
		t.Fatalf("old view: err = %v, want ErrStaleView", err)
	}
	if err := s.AcquirePromotion("n2", 2); err != nil {
		t.Fatalf("legitimate acquisition failed: %v", err)
	}
	if err := s.AcquirePromotion("n2", 2); !errors.Is(err, ErrAlreadyPromoted) {
		t.Fatalf("double takeover: err = %v, want ErrAlreadyPromoted", err)
	}
	if err := s.AcquirePromotion("ghost", 2); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: err = %v, want ErrUnknownNode", err)
	}
}

func TestTickDeclaresSilentNodesDead(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	s := newSvc(t, clk, 100*time.Millisecond, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}

	// n2 and n3 keep pinging; n1 goes silent. Under the virtual clock the
	// detection instant is exact: at +100ms n1 is still within timeout, just
	// past it the Tick declares it dead and promotes n2. The test goroutine
	// stays attached during setup so the clock cannot free-run between actor
	// launches.
	clk.Attach()
	p2 := NewPinger(s, "n2", 20*time.Millisecond)
	p3 := NewPinger(s, "n3", 20*time.Millisecond)
	defer p2.Stop()
	defer p3.Stop()

	var wg sync.WaitGroup
	wg.Add(1)
	var got View
	var detectedAt time.Duration
	clk.Go(func() {
		defer wg.Done()
		got = s.WaitView(2)
		// Read the instant while this actor still runs (the clock cannot
		// advance under it); by the time the detached test goroutine resumes,
		// the surviving pingers have already pushed virtual time further.
		detectedAt = clk.Elapsed()
	})

	w := NewWatcher(s, 30*time.Millisecond)
	defer w.Stop()
	clk.Detach()
	wg.Wait()
	wantView(t, got, 2, "n2", "n3")
	if detectedAt <= 100*time.Millisecond || detectedAt > 200*time.Millisecond {
		t.Fatalf("detection at %v, want within (100ms, 200ms]", detectedAt)
	}
	// The dead node's late ping must not resurrect it.
	s.Ping("n1")
	if v := s.Tick(); v.Num != 2 {
		t.Fatalf("late ping resurrected n1: view %+v", v)
	}
}

func TestWaitViewAlreadySatisfiedAndMultipleWaiters(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	s := newSvc(t, clk, 0, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	wantView(t, s.WaitView(1), 1, "n1", "n2") // already satisfied: no block

	var wg sync.WaitGroup
	views := make([]View, 2)
	for i := range views {
		wg.Add(1)
		i := i
		clk.Go(func() {
			defer wg.Done()
			views[i] = s.WaitView(2)
		})
	}
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		_, _ = s.ReportFailure("n2", "n1")
	})
	wg.Wait()
	for i, v := range views {
		if v.Num != 2 {
			t.Fatalf("waiter %d got view %+v", i, v)
		}
	}
}

func TestFormDegradedSingleNode(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "only")
	v, err := s.Form()
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 1, "only", "")
	if _, err := New(Config{Clock: clock.NewVirtual()}).Form(); err == nil {
		t.Fatal("forming with no members should fail")
	}
}
