package viewsvc

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simtest/clock"
)

func newDir(t *testing.T, timeout time.Duration, nodes ...string) (*ShardDirectory, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual()
	d := NewShardDirectory(Config{Clock: clk, FailTimeout: timeout})
	for _, n := range nodes {
		d.Join(n)
	}
	return d, clk
}

func TestFormShardsRoundRobin(t *testing.T) {
	d, _ := newDir(t, 0, "n1", "n2", "n3")
	views, err := d.Form(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 6 || d.NumShards() != 6 {
		t.Fatalf("formed %d shards", len(views))
	}
	wantPri := []string{"n1", "n2", "n3", "n1", "n2", "n3"}
	wantBak := []string{"n2", "n3", "n1", "n2", "n3", "n1"}
	for i, v := range views {
		if v.Primary != wantPri[i] || v.Backup != wantBak[i] {
			t.Fatalf("shard %d = %+v, want {%s %s}", i, v, wantPri[i], wantBak[i])
		}
		if v.Num != uint64(i+1) {
			t.Fatalf("shard %d epoch %d, want %d (global sequence)", i, v.Num, i+1)
		}
	}
	if _, err := d.Form(2); err == nil {
		t.Fatal("second Form should fail")
	}
	names, pris, baks := d.SeatCounts()
	if len(names) != 3 {
		t.Fatalf("seat counts over %v", names)
	}
	for i := range names {
		if pris[i] != 2 || baks[i] != 2 {
			t.Fatalf("uneven seats for %s: %d primaries, %d backups", names[i], pris[i], baks[i])
		}
	}
}

// TestNodeDeathReseatsEveryAffectedShard: killing one node reconfigures
// exactly the shards where it held a seat, each under a fresh globally-unique
// epoch, with promotions where it was primary and recruitment where it was
// backup.
func TestNodeDeathReseatsEveryAffectedShard(t *testing.T) {
	d, _ := newDir(t, 0, "n1", "n2", "n3", "n4")
	if _, err := d.Form(8); err != nil {
		t.Fatal(err)
	}
	before := d.Shards()
	epochBefore := d.Epoch()

	changes, err := d.ReportFailure("n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	affected := 0
	for i, v := range before {
		if v.Primary == "n2" || v.Backup == "n2" {
			affected++
			now := d.Shard(i)
			if now.Num <= epochBefore {
				t.Fatalf("shard %d epoch %d not advanced past %d", i, now.Num, epochBefore)
			}
			if now.Primary == "n2" || now.Backup == "n2" {
				t.Fatalf("shard %d still seats dead node: %+v", i, now)
			}
			if v.Primary == "n2" && now.Primary != v.Backup {
				t.Fatalf("shard %d promotion went to %s, want old backup %s", i, now.Primary, v.Backup)
			}
			if v.Backup == "n2" && now.Primary != v.Primary {
				t.Fatalf("shard %d backup death moved the primary: %+v -> %+v", i, v, now)
			}
		} else if got := d.Shard(i); got != v {
			t.Fatalf("unaffected shard %d changed: %+v -> %+v", i, v, got)
		}
	}
	if len(changes) != affected {
		t.Fatalf("%d changes for %d affected shards", len(changes), affected)
	}
	// Epochs issued by the reseat are unique and consecutive.
	seen := map[uint64]bool{}
	for _, ch := range changes {
		if seen[ch.New.Num] {
			t.Fatalf("epoch %d issued twice", ch.New.Num)
		}
		seen[ch.New.Num] = true
	}
	// Reporting the same death again is a no-op.
	changes, err = d.ReportFailure("n1", "n2")
	if err != nil || len(changes) != 0 {
		t.Fatalf("second report: %v, %d changes", err, len(changes))
	}
}

// TestRecruitmentIsLeastLoaded: after a death the vacancies go to the live
// node with the fewest seats, deterministically.
func TestRecruitmentIsLeastLoaded(t *testing.T) {
	d, _ := newDir(t, 0, "n1", "n2", "n3", "n4", "n5")
	if _, err := d.Form(10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReportFailure("n1", "n3"); err != nil {
		t.Fatal(err)
	}
	names, pris, baks := d.SeatCounts()
	total := 0
	min, max := 1<<30, 0
	for i := range names {
		seats := pris[i] + baks[i]
		total += seats
		if seats < min {
			min = seats
		}
		if seats > max {
			max = seats
		}
	}
	if total != 20 {
		t.Fatalf("seat total %d, want 20 (10 shards x 2 seats)", total)
	}
	if max-min > 2 {
		t.Fatalf("seats unbalanced after recruitment: min %d max %d (%v %v %v)", min, max, names, pris, baks)
	}

	// Determinism: replaying the same join + failure sequence reproduces the
	// identical shard table.
	d2, _ := newDir(t, 0, "n1", "n2", "n3", "n4", "n5")
	if _, err := d2.Form(10); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.ReportFailure("n1", "n3"); err != nil {
		t.Fatal(err)
	}
	a, b := d.Shards(), d2.Shards()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs across identical histories: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShardPromotionGuard: per-shard epochs draw from one global sequence,
// and exactly one license is issued per epoch.
func TestShardPromotionGuard(t *testing.T) {
	d, _ := newDir(t, 0, "n1", "n2", "n3")
	if _, err := d.Form(4); err != nil {
		t.Fatal(err)
	}
	changes, err := d.ReportFailure("n2", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("no shards reseated")
	}
	ch := changes[0]
	newPri, epoch := ch.New.Primary, ch.New.Num
	if err := d.AcquirePromotion(newPri, ch.Shard, epoch); err != nil {
		t.Fatalf("first acquisition: %v", err)
	}
	if err := d.AcquirePromotion(newPri, ch.Shard, epoch); !errors.Is(err, ErrAlreadyPromoted) {
		t.Fatalf("second acquisition: %v, want ErrAlreadyPromoted", err)
	}
	if err := d.AcquirePromotion(newPri, ch.Shard, epoch-1000); !errors.Is(err, ErrStaleView) {
		t.Fatalf("stale epoch: %v, want ErrStaleView", err)
	}
	if err := d.AcquirePromotion(ch.New.Backup, ch.Shard, epoch); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("backup acquiring: %v, want ErrNotPrimary", err)
	}
	if err := d.AcquirePromotion("n1", ch.Shard, epoch); !errors.Is(err, ErrDead) {
		t.Fatalf("dead node acquiring: %v, want ErrDead", err)
	}
	if err := d.AcquirePromotion("nope", ch.Shard, epoch); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node acquiring: %v, want ErrUnknownNode", err)
	}
	if err := d.AcquirePromotion(newPri, 99, epoch); err == nil {
		t.Fatal("acquiring a nonexistent shard succeeded")
	}
}

// TestDirectoryTickDetection: the ping-based detector reseats shards when a
// node goes silent on the virtual clock.
func TestDirectoryTickDetection(t *testing.T) {
	d, clk := newDir(t, 50*time.Millisecond, "n1", "n2", "n3")
	if _, err := d.Form(4); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			clk.Sleep(20 * time.Millisecond)
			d.Ping("n2")
			d.Ping("n3") // n1 never pings after formation
			if chs := d.Tick(); len(chs) != 0 {
				return
			}
		}
	})
	<-done
	for i := 0; i < 4; i++ {
		v := d.Shard(i)
		if v.Primary == "n1" || v.Backup == "n1" {
			t.Fatalf("shard %d still seats silent node n1: %+v", i, v)
		}
	}
}
