package viewsvc

import (
	"errors"
	"fmt"
	"time"
)

// ShardDirectory scales the view service from one replica set to a sharded
// fleet: every shard is its own primary/backup pair drawn from a single
// member pool, and every shard's view number is issued from one directory-
// global epoch sequence. Global issuance makes epochs unique across the
// whole fleet — a frame or ack stamped with an epoch names exactly one
// (shard, configuration), so the split-brain gate needs no shard id on the
// wire — while staying strictly increasing per shard, which is all the
// receivers' staleness checks require.
//
// A node death is a *batch* reconfiguration: every shard where the dead node
// held a seat reseats in one step (primary dead → backup promotes and a new
// backup is recruited; backup dead → a new backup is recruited), each under
// a freshly issued epoch. Recruitment is deterministic least-loaded: the
// live node holding the fewest seats takes the vacancy, ties broken by join
// order — so shard placement, and therefore the whole fleet simulation, is a
// pure function of the join sequence and the failure schedule.
//
// Like Service, the directory is clock-injected and deliberately not itself
// replicated: it plays the external management layer of the paper's §2 for
// the fleet harness. Promotion licenses are per issued epoch (unique fleet-
// wide), so the exactly-one-takeover guarantee holds per shard view.
type ShardDirectory struct {
	svc    *Service
	epoch  uint64 // last issued epoch, shared by every shard
	shards []View
}

// ShardChange describes one shard's reconfiguration after a node death.
type ShardChange struct {
	Shard    int
	Old, New View
}

// NewShardDirectory builds an empty directory.
func NewShardDirectory(cfg Config) *ShardDirectory {
	return &ShardDirectory{svc: New(cfg)}
}

// Join registers a node (idempotent), as Service.Join. Joining after shards
// are formed does not move any seats; the node waits as recruitable spare
// capacity.
func (d *ShardDirectory) Join(name string) { d.svc.Join(name) }

// Ping records a heartbeat from name.
func (d *ShardDirectory) Ping(name string) { d.svc.Ping(name) }

// NumShards returns the shard count (0 before Form).
func (d *ShardDirectory) NumShards() int {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	return len(d.shards)
}

// Form establishes n shards over the current live members, round-robin:
// shard i's primary is the i-th live member (mod live count) and its backup
// the next one. With m members each node starts with ~n/m primary seats and
// ~n/m backup seats — the even spread that keeps a single node kill's blast
// radius near 1/m of the fleet.
func (d *ShardDirectory) Form(n int) ([]View, error) {
	if n < 1 {
		return nil, errors.New("viewsvc: shard count must be positive")
	}
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	if len(d.shards) != 0 {
		return nil, fmt.Errorf("viewsvc: %d shards already formed", len(d.shards))
	}
	var live []string
	for _, name := range d.svc.order {
		if m := d.svc.members[name]; !m.dead {
			live = append(live, name)
		}
	}
	if len(live) < 2 {
		return nil, fmt.Errorf("viewsvc: forming shards needs >= 2 live members, have %d", len(live))
	}
	d.shards = make([]View, n)
	for i := range d.shards {
		d.epoch++
		d.shards[i] = View{
			Num:     d.epoch,
			Primary: live[i%len(live)],
			Backup:  live[(i+1)%len(live)],
		}
	}
	return d.copyShardsLocked(), nil
}

// Shard returns shard i's current view.
func (d *ShardDirectory) Shard(i int) View {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	if i < 0 || i >= len(d.shards) {
		return View{}
	}
	return d.shards[i]
}

// Shards returns a copy of the full shard table.
func (d *ShardDirectory) Shards() []View {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	return d.copyShardsLocked()
}

func (d *ShardDirectory) copyShardsLocked() []View {
	out := make([]View, len(d.shards))
	copy(out, d.shards)
	return out
}

// ReportFailure declares dead failed (reporter must be a live member, as in
// Service.ReportFailure) and reseats every shard where it held a seat. The
// returned changes list every reconfiguration in shard order; an already-
// dead node yields no changes.
func (d *ShardDirectory) ReportFailure(reporter, dead string) ([]ShardChange, error) {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	r, ok := d.svc.members[reporter]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, reporter)
	}
	if r.dead {
		return nil, fmt.Errorf("%w: %s", ErrDead, reporter)
	}
	m, ok := d.svc.members[dead]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, dead)
	}
	if m.dead {
		return nil, nil
	}
	m.dead = true
	return d.reseatShardsLocked(dead), nil
}

// Tick runs the ping-based failure detector once (Config.FailTimeout),
// returning every reconfiguration it caused.
func (d *ShardDirectory) Tick() []ShardChange {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	if d.svc.timeout <= 0 {
		return nil
	}
	now := d.svc.clk.Now()
	var changes []ShardChange
	for _, name := range d.svc.order {
		m := d.svc.members[name]
		if !m.dead && now.Sub(m.lastPing) > d.svc.timeout {
			m.dead = true
			changes = append(changes, d.reseatShardsLocked(name)...)
		}
	}
	return changes
}

// reseatShardsLocked reconfigures every shard where name held a seat.
func (d *ShardDirectory) reseatShardsLocked(name string) []ShardChange {
	var changes []ShardChange
	for i := range d.shards {
		old := d.shards[i]
		if old.Primary != name && old.Backup != name {
			continue
		}
		d.epoch++
		next := View{Num: d.epoch}
		if old.Primary == name {
			next.Primary = old.Backup // promotion
		} else {
			next.Primary = old.Primary
		}
		if next.Primary != "" {
			next.Backup = d.recruitLocked(next.Primary)
		}
		d.shards[i] = next
		changes = append(changes, ShardChange{Shard: i, Old: old, New: next})
	}
	return changes
}

// recruitLocked picks the live node (other than exclude) currently holding
// the fewest seats; ties break toward the oldest join. Returns "" when no
// live node remains — the shard runs without a backup until one joins.
func (d *ShardDirectory) recruitLocked(exclude string) string {
	loads := make(map[string]int, len(d.svc.members))
	for _, v := range d.shards {
		if v.Primary != "" {
			loads[v.Primary]++
		}
		if v.Backup != "" {
			loads[v.Backup]++
		}
	}
	best := ""
	bestLoad := 0
	for _, name := range d.svc.order {
		if name == exclude {
			continue
		}
		if m := d.svc.members[name]; m.dead {
			continue
		}
		if best == "" || loads[name] < bestLoad {
			best, bestLoad = name, loads[name]
		}
	}
	return best
}

// AcquirePromotion is the per-shard takeover guard: the primary of shard's
// current view calls it with the epoch it believes it leads before counting
// any output as committed under that epoch. Exactly one acquisition per
// issued epoch succeeds; the error taxonomy matches Service.AcquirePromotion.
func (d *ShardDirectory) AcquirePromotion(node string, shard int, epoch uint64) error {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	m, ok := d.svc.members[node]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	if m.dead {
		return fmt.Errorf("%w: %s", ErrDead, node)
	}
	if shard < 0 || shard >= len(d.shards) {
		return fmt.Errorf("viewsvc: no shard %d", shard)
	}
	v := d.shards[shard]
	if epoch != v.Num {
		return fmt.Errorf("%w: acquiring shard %d epoch %d, current is %d", ErrStaleView, shard, epoch, v.Num)
	}
	if v.Primary != node {
		return fmt.Errorf("%w: %s acquiring shard %d led by %s", ErrNotPrimary, node, shard, v.Primary)
	}
	if by, dup := d.svc.claimed[epoch]; dup {
		return fmt.Errorf("%w: shard %d epoch %d already acquired by %s", ErrAlreadyPromoted, shard, epoch, by)
	}
	d.svc.claimed[epoch] = node
	return nil
}

// SeatCounts returns, per live node in join order, how many primary and
// backup seats it holds — the balance the fleet's blast-radius report reads.
func (d *ShardDirectory) SeatCounts() (names []string, primaries, backups []int) {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	pc := make(map[string]int)
	bc := make(map[string]int)
	for _, v := range d.shards {
		pc[v.Primary]++
		bc[v.Backup]++
	}
	for _, name := range d.svc.order {
		if m := d.svc.members[name]; m.dead {
			continue
		}
		names = append(names, name)
		primaries = append(primaries, pc[name])
		backups = append(backups, bc[name])
	}
	return names, primaries, backups
}

// Epoch returns the last issued epoch.
func (d *ShardDirectory) Epoch() uint64 {
	d.svc.mu.Lock()
	defer d.svc.mu.Unlock()
	return d.epoch
}

// FailTimeout returns the configured ping timeout (0 = disabled); the fleet
// simulation schedules its detection events from it.
func (d *ShardDirectory) FailTimeout() time.Duration { return d.svc.timeout }
