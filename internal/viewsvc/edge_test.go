package viewsvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simtest/clock"
)

// Edge cases around the membership/promotion protocol, all on the virtual
// clock so every interleaving is deterministic.

// TestPingFromDeadNodeIgnored: a node declared dead cannot refresh itself
// with a heartbeat — not via Ping, not via a Tick after pinging, and its
// seat stays reassigned. Only an explicit re-Join resurrects.
func TestPingFromDeadNodeIgnored(t *testing.T) {
	clk := clock.NewVirtual()
	s := newSvc(t, clk, 50*time.Millisecond, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportFailure("n2", "n1"); err != nil {
		t.Fatal(err)
	}
	wantView(t, s.View(), 2, "n2", "n3")

	// The deposed primary keeps pinging from the grave: neither the pings
	// nor a detector pass after them may resurrect it or move the view.
	for i := 0; i < 5; i++ {
		s.Ping("n1")
	}
	wantView(t, s.Tick(), 2, "n2", "n3")

	// A re-Join, by contrast, does resurrect: n1 returns as recruitable and
	// takes the backup seat when n3 dies.
	s.Join("n1")
	if _, err := s.ReportFailure("n2", "n3"); err != nil {
		t.Fatal(err)
	}
	wantView(t, s.View(), 3, "n2", "n1")
}

// TestReportFailureOnStaleView: a straggling report about a node that was
// already reseated away must not advance the view again — the failure was
// consumed by the first report, and re-reporting is idempotent.
func TestReportFailureOnStaleView(t *testing.T) {
	s := newSvc(t, clock.NewVirtual(), 0, "n1", "n2", "n3")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReportFailure("n2", "n1")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 2, "n2", "n3")

	// n3's late, independent report of the same death: view unchanged.
	v, err = s.ReportFailure("n3", "n1")
	if err != nil {
		t.Fatal(err)
	}
	wantView(t, v, 2, "n2", "n3")

	// The dead node itself reporting the new primary dead: rejected — a
	// deposed node cannot vote its successor out.
	if _, err := s.ReportFailure("n1", "n2"); !errors.Is(err, ErrDead) {
		t.Fatalf("dead reporter: err = %v, want ErrDead", err)
	}
	wantView(t, s.View(), 2, "n2", "n3")
}

// TestWaitViewWakeupOrdering: waiters parked on different view numbers wake
// exactly when their number is reached, in deterministic order — the waiter
// for view 2 wakes on the first reseat, the waiter for view 3 only on the
// second, and a view jump wakes every waiter it satisfies.
func TestWaitViewWakeupOrdering(t *testing.T) {
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	s := newSvc(t, clk, 0, "n1", "n2", "n3", "n4")
	if _, err := s.Form(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	clk.Attach() // hold the clock while actors launch
	for _, want := range []uint64{3, 2, 3, 2} {
		want := want
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			v := s.WaitView(want)
			mu.Lock()
			order = append(order, fmt.Sprintf("want%d@%d", want, v.Num))
			mu.Unlock()
		})
	}
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		_, _ = s.ReportFailure("n2", "n1") // view 2
		clk.Sleep(10 * time.Millisecond)
		_, _ = s.ReportFailure("n3", "n2") // view 3
	})
	clk.Detach()
	wg.Wait()

	// The two view-2 waiters woke at view 2 (before the second reseat ran at
	// +20ms they had already resumed — virtual wakeups happen one at a time,
	// and both record Num=2), the view-3 waiters at view 3; within a view the
	// park order (registration order) is preserved by the waiter list.
	want := []string{"want2@2", "want2@2", "want3@3", "want3@3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wakeup order = %v, want %v", order, want)
		}
	}

	// Re-running the identical schedule reproduces the identical order.
	// (Determinism of the wakeup path itself, not just the final views.)
}

// TestConcurrentAcquirePromotionThreeClaimants: three replicas race to claim
// the same view's promotion concurrently on the virtual clock. Exactly one
// license is issued; the losers see ErrAlreadyPromoted (same node again) or
// ErrNotPrimary (wrong seat), and the outcome is deterministic across runs.
func TestConcurrentAcquirePromotionThreeClaimants(t *testing.T) {
	run := func() (winner string, errs map[string]error) {
		clk := clock.NewVirtual()
		s := newSvc(t, clk, 0, "n1", "n2", "n3", "n4")
		if _, err := s.Form(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReportFailure("n2", "n1"); err != nil {
			t.Fatal(err)
		}
		// View 2: {n2, n3}. Claimants: n2 (rightful), n3 (backup), n4 (idle),
		// plus a second n2 claim racing the first from another goroutine.
		var mu sync.Mutex
		errs = make(map[string]error)
		var wg sync.WaitGroup
		clk.Attach()
		for i, claim := range []struct {
			node  string
			delay time.Duration
		}{
			{"n2", 5 * time.Millisecond},
			{"n3", 5 * time.Millisecond},
			{"n4", 5 * time.Millisecond},
			{"n2", 6 * time.Millisecond},
		} {
			claim := claim
			key := fmt.Sprintf("%s#%d", claim.node, i)
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				clk.Sleep(claim.delay)
				err := s.AcquirePromotion(claim.node, 2)
				mu.Lock()
				errs[key] = err
				if err == nil {
					winner = key
				}
				mu.Unlock()
			})
		}
		clk.Detach()
		wg.Wait()
		return winner, errs
	}

	winner, errs := run()
	if winner != "n2#0" {
		t.Fatalf("winner = %q, want the first n2 claim (virtual clock wakes same-deadline parks in schedule order)", winner)
	}
	nilCount := 0
	for key, err := range errs {
		switch {
		case err == nil:
			nilCount++
		case key == "n2#3":
			if !errors.Is(err, ErrAlreadyPromoted) {
				t.Fatalf("second n2 claim: %v, want ErrAlreadyPromoted", err)
			}
		default:
			if !errors.Is(err, ErrNotPrimary) {
				t.Fatalf("claim %s: %v, want ErrNotPrimary", key, err)
			}
		}
	}
	if nilCount != 1 {
		t.Fatalf("%d licenses issued, want exactly 1 (%v)", nilCount, errs)
	}

	// Deterministic: the same schedule yields the same winner and the same
	// error taxonomy on every run.
	winner2, errs2 := run()
	if winner2 != winner || len(errs2) != len(errs) {
		t.Fatalf("nondeterministic race: %q vs %q", winner, winner2)
	}
	for k, e := range errs {
		e2 := errs2[k]
		if (e == nil) != (e2 == nil) || (e != nil && e2 != nil && !errors.Is(e2, errorsUnwrapTarget(e))) {
			t.Fatalf("claim %s differed across runs: %v vs %v", k, e, e2)
		}
	}
}

// errorsUnwrapTarget maps a wrapped guard error to its sentinel for cross-run
// comparison.
func errorsUnwrapTarget(err error) error {
	for _, sentinel := range []error{ErrAlreadyPromoted, ErrNotPrimary, ErrStaleView, ErrDead, ErrUnknownNode} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}
