// Package sehandler implements side-effect handlers (§4.4): the interface
// through which the replicated VM stores and recovers volatile environment
// state created by native methods, and ensures exactly-once semantics for
// output commands. A handler provides the five methods of the paper —
// register, log (primary), receive (backup), test (uncertain outputs) and
// restore (volatile-state recovery) — plus the state installation hook that
// lets natives translate volatile identifiers (e.g. file descriptors).
package sehandler

import (
	"errors"
	"fmt"

	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/wire"
)

// Ctx gives handlers access to the replica they serve.
type Ctx struct {
	Heap *heap.Heap
	Env  *env.Env
	Proc *env.Process
}

// Handler manages the volatile side effects of a related set of native
// methods (e.g. all file I/O).
type Handler interface {
	// Name identifies the handler; natives reference it via Def.Handler.
	Name() string

	// Register validates that every native this handler manages is present
	// in the registry with the expected annotations (the paper's register
	// method, run at system startup).
	Register(reg *native.Registry) error

	// Log runs at the primary after an intercepted native managed by this
	// handler executed; it returns the opaque recovery state to append to
	// the native's log record (the paper's log method).
	Log(ctx Ctx, def *native.Def, args, results []heap.Value) ([]byte, error)

	// Receive runs at the backup when a log record carrying handler data is
	// consumed; the handler may compress state (e.g. fold successive file
	// writes into a single offset — the paper's receive method).
	Receive(data []byte) error

	// Test runs at the backup for an uncertain output command (the final
	// record in the log): it queries the environment to decide whether the
	// output completed before the failure (the paper's test method).
	// Commands whose handler reports performed=false are re-executed.
	Test(ctx Ctx, def *native.Def, args []heap.Value, intent *wire.OutputIntent) (performed bool, err error)

	// Restore runs once at the backup when recovery completes: it rebuilds
	// the volatile environment state (e.g. reopens files at their recovered
	// offsets — the paper's restore method).
	Restore(ctx Ctx) error

	// State returns the value to install as the VM's handler state (visible
	// to natives via native.Ctx.HandlerState), or nil.
	State() any
}

// Set is the collection of handlers active at one replica, keyed by name.
type Set struct {
	handlers map[string]Handler
	order    []string
}

// NewSet builds a handler set, rejecting duplicates.
func NewSet(handlers ...Handler) (*Set, error) {
	s := &Set{handlers: make(map[string]Handler, len(handlers))}
	for _, h := range handlers {
		if _, dup := s.handlers[h.Name()]; dup {
			return nil, fmt.Errorf("duplicate side-effect handler %q", h.Name())
		}
		s.handlers[h.Name()] = h
		s.order = append(s.order, h.Name())
	}
	return s, nil
}

// DefaultSet returns the handlers for the FTVM standard library: file I/O
// and the message channel. They are added automatically during startup, as
// the paper's handlers for the standard JRE libraries are; applications
// register additional handlers alongside (same mechanism).
func DefaultSet() *Set {
	s, err := NewSet(NewFileHandler(), NewChannelHandler(), NewDevicesHandler())
	if err != nil {
		panic(err) // unreachable: static names differ
	}
	return s
}

// Get looks a handler up by name.
func (s *Set) Get(name string) (Handler, bool) {
	h, ok := s.handlers[name]
	return h, ok
}

// ForDef returns the handler managing def (nil if none).
func (s *Set) ForDef(def *native.Def) Handler {
	if def.Handler == "" {
		return nil
	}
	return s.handlers[def.Handler]
}

// RegisterAll runs every handler's Register against reg.
func (s *Set) RegisterAll(reg *native.Registry) error {
	for _, name := range s.order {
		if err := s.handlers[name].Register(reg); err != nil {
			return fmt.Errorf("register handler %q: %w", name, err)
		}
	}
	return nil
}

// RestoreAll runs every handler's Restore (end of recovery).
func (s *Set) RestoreAll(ctx Ctx) error {
	for _, name := range s.order {
		if err := s.handlers[name].Restore(ctx); err != nil {
			return fmt.Errorf("restore handler %q: %w", name, err)
		}
	}
	return nil
}

// Names returns the handler names in registration order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// ErrHandlerData is wrapped by handler-data decoding failures.
var ErrHandlerData = errors.New("bad side-effect handler data")
