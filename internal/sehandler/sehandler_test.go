package sehandler

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/wire"
)

func fileCtx(t *testing.T) (Ctx, *env.Env) {
	t.Helper()
	e := env.New(1)
	return Ctx{Heap: heap.New(), Env: e, Proc: e.Attach()}, e
}

func def(t *testing.T, sig string) *native.Def {
	t.Helper()
	d, ok := native.StdLib().Lookup(sig)
	if !ok {
		t.Fatalf("no native %s", sig)
	}
	return d
}

func strVal(t *testing.T, h *heap.Heap, s string) heap.Value {
	t.Helper()
	r, err := h.AllocString(s)
	if err != nil {
		t.Fatal(err)
	}
	return heap.RefVal(r)
}

func TestDefaultSetRegisters(t *testing.T) {
	s := DefaultSet()
	if err := s.RegisterAll(native.StdLib()); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	if h := s.ForDef(def(t, "fs.open")); h == nil || h.Name() != native.HandlerFile {
		t.Fatal("fs.open not routed to file handler")
	}
	if h := s.ForDef(def(t, "chan.send")); h == nil || h.Name() != native.HandlerChannel {
		t.Fatal("chan.send not routed to channel handler")
	}
	if h := s.ForDef(def(t, "sys.clock")); h == nil || h.Name() != native.HandlerDevices {
		t.Fatal("sys.clock not routed to devices handler")
	}
	if h := s.ForDef(def(t, "sys.rand")); h == nil || h.Name() != native.HandlerDevices {
		t.Fatal("sys.rand not routed to devices handler")
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	if _, err := NewSet(NewFileHandler(), NewFileHandler()); err == nil {
		t.Fatal("duplicate handlers accepted")
	}
}

// TestFileHandlerLifecycle walks the full primary→backup flow by hand:
// log at a "primary", receive the data at a "backup", restore, translate.
func TestFileHandlerLifecycle(t *testing.T) {
	primaryCtx, e := fileCtx(t)
	ph := NewFileHandler()

	// Primary: open, write, write, seek.
	fd, err := primaryCtx.Proc.Open("data", true)
	if err != nil {
		t.Fatal(err)
	}
	openData, err := ph.Log(primaryCtx, def(t, "fs.open"),
		[]heap.Value{strVal(t, primaryCtx.Heap, "data"), heap.IntVal(1)},
		[]heap.Value{heap.IntVal(fd)})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = primaryCtx.Proc.Write(fd, []byte("hello "))
	w1, err := ph.Log(primaryCtx, def(t, "fs.write"),
		[]heap.Value{heap.IntVal(fd), strVal(t, primaryCtx.Heap, "hello ")},
		[]heap.Value{heap.IntVal(6)})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = primaryCtx.Proc.Write(fd, []byte("world"))
	w2, err := ph.Log(primaryCtx, def(t, "fs.write"),
		[]heap.Value{heap.IntVal(fd), strVal(t, primaryCtx.Heap, "world")},
		[]heap.Value{heap.IntVal(5)})
	if err != nil {
		t.Fatal(err)
	}

	// Backup: receive (compresses offsets), then the primary "fails"; a
	// fresh process restores.
	bh := NewFileHandler()
	for _, data := range [][]byte{openData, w1, w2} {
		if err := bh.Receive(data); err != nil {
			t.Fatal(err)
		}
	}
	backupCtx := Ctx{Heap: heap.New(), Env: e, Proc: e.Attach()}
	if err := bh.Restore(backupCtx); err != nil {
		t.Fatal(err)
	}
	// The logged descriptor translates to a live one positioned at the
	// recovered offset (end of "hello world").
	tr, ok := bh.State().(native.FDTranslator)
	if !ok {
		t.Fatal("file handler state is not a translator")
	}
	real, err := tr.Real(fd)
	if err != nil {
		t.Fatal(err)
	}
	if real == fd {
		t.Fatalf("descriptor not rebased: %d", real)
	}
	pos, err := backupCtx.Proc.Tell(real)
	if err != nil || pos != 11 {
		t.Fatalf("restored offset = %d (%v), want 11", pos, err)
	}
	// Untracked descriptors pass through.
	if got, err := tr.Real(9999); err != nil || got != 9999 {
		t.Fatalf("passthrough = %d (%v)", got, err)
	}
}

func TestFileHandlerTestMethod(t *testing.T) {
	ctx, e := fileCtx(t)
	e.PutFile("f", []byte("0123456789"))
	h := NewFileHandler()
	// Log+receive an open and a write ending at offset 6.
	fd := int64(3)
	openData := encodeFileOp(fileOpOpen, fd, 0, "f")
	writeData := encodeFileOp(fileOpWrite, fd, 6, "")
	if err := h.Receive(openData); err != nil {
		t.Fatal(err)
	}
	if err := h.Receive(writeData); err != nil {
		t.Fatal(err)
	}
	// Uncertain final write of "6789" at offset 6: present → performed.
	args := []heap.Value{heap.IntVal(fd), strVal(t, ctx.Heap, "6789")}
	performed, err := h.Test(ctx, def(t, "fs.write"), args, &wire.OutputIntent{})
	if err != nil || !performed {
		t.Fatalf("performed = %v (%v), want true", performed, err)
	}
	// Uncertain write of different content: not performed.
	args2 := []heap.Value{heap.IntVal(fd), strVal(t, ctx.Heap, "XXXX")}
	performed, err = h.Test(ctx, def(t, "fs.write"), args2, &wire.OutputIntent{})
	if err != nil || performed {
		t.Fatalf("performed = %v (%v), want false", performed, err)
	}
	// Uncertain write past EOF: not performed.
	longData := strVal(t, ctx.Heap, strings.Repeat("z", 32))
	performed, err = h.Test(ctx, def(t, "fs.write"), []heap.Value{heap.IntVal(fd), longData}, &wire.OutputIntent{})
	if err != nil || performed {
		t.Fatalf("performed = %v (%v), want false", performed, err)
	}
}

// encodeFileOp mirrors FileHandler.Log's wire format for direct tests
// (op byte, varint fd, varint aux, uvarint name length, name bytes).
func encodeFileOp(op byte, fd, aux int64, name string) []byte {
	var buf []byte
	buf = append(buf, op)
	buf = appendVarint(buf, fd)
	buf = appendVarint(buf, aux)
	buf = appendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	return buf
}

func appendVarint(b []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return appendUvarint(b, uv)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestChannelHandlerTest(t *testing.T) {
	ctx, e := fileCtx(t)
	h := NewChannelHandler()
	if err := h.Register(native.StdLib()); err != nil {
		t.Fatal(err)
	}
	e.Messages().Send("0.1", 3, "already sent")
	performed, err := h.Test(ctx, def(t, "chan.send"), nil, &wire.OutputIntent{TID: "0.1", OutSeq: 3})
	if err != nil || !performed {
		t.Fatalf("seq 3 performed = %v (%v), want true", performed, err)
	}
	performed, err = h.Test(ctx, def(t, "chan.send"), nil, &wire.OutputIntent{TID: "0.1", OutSeq: 4})
	if err != nil || performed {
		t.Fatalf("seq 4 performed = %v (%v), want false", performed, err)
	}
	performed, err = h.Test(ctx, def(t, "chan.send"), nil, &wire.OutputIntent{TID: "0.9", OutSeq: 1})
	if err != nil || performed {
		t.Fatalf("other writer performed = %v (%v), want false", performed, err)
	}
}

func TestFileHandlerRejectsGarbageData(t *testing.T) {
	h := NewFileHandler()
	if err := h.Receive([]byte{fileOpWrite}); err == nil {
		t.Fatal("truncated data accepted")
	}
	if err := h.Receive(encodeFileOp(99, 1, 2, "")); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := h.Receive(encodeFileOp(fileOpWrite, 42, 7, "")); err == nil {
		t.Fatal("write on unknown fd accepted")
	}
	if err := h.Receive(nil); err != nil {
		t.Fatalf("empty data should be a no-op: %v", err)
	}
}
