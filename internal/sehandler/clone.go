package sehandler

import "fmt"

// Cloner is implemented by handlers whose accumulated receive-state can be
// snapshotted. The debugger's checkpoint cache clones a paused replay —
// including its handler set, because handlers hold mutable recovery state
// (descriptor tables, device draw counters) that the resumed copy keeps
// mutating. A clone must behave identically to the original from the
// snapshot point on; it must NOT be Restored again (restore runs exactly
// once per replay, and the clone inherits the already-restored state).
type Cloner interface {
	CloneHandler() Handler
}

// CloneHandler implements Cloner: a deep copy of the descriptor table. The
// clone's process binding is cleared — the caller rebinds it (Bind) to the
// cloned process, against which the materialised realFD values remain valid
// because the process clone preserves its descriptor table verbatim.
func (h *FileHandler) CloneHandler() Handler {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &FileHandler{fds: make(map[int64]*fdState, len(h.fds)), maxFD: h.maxFD}
	for fd, st := range h.fds {
		cp := *st
		c.fds[fd] = &cp
	}
	return c
}

// CloneHandler implements Cloner: the channel handler holds no state.
func (h *ChannelHandler) CloneHandler() Handler { return NewChannelHandler() }

// CloneHandler implements Cloner: copy the per-device draw counters.
func (h *DevicesHandler) CloneHandler() Handler {
	return &DevicesHandler{rands: h.rands, clocks: h.clocks}
}

// Clone deep-copies the set. It fails if any handler does not support
// cloning, so a checkpoint can never silently share mutable handler state.
func (s *Set) Clone() (*Set, error) {
	out := &Set{handlers: make(map[string]Handler, len(s.handlers))}
	for _, name := range s.order {
		c, ok := s.handlers[name].(Cloner)
		if !ok {
			return nil, fmt.Errorf("side-effect handler %q is not cloneable", name)
		}
		out.handlers[name] = c.CloneHandler()
		out.order = append(out.order, name)
	}
	return out, nil
}
