package sehandler

import (
	"testing"

	"repro/internal/env"
	"repro/internal/heap"
)

// TestDevicesRestoreRepositionsStreams is the regression for the recovery
// divergence the kill-point sweep exposed: the primary dies having drawn
// entropy/clock values whose result records never reached the backup, so the
// recovered execution must NOT continue the streams from wherever the dead
// primary left them — it must continue from the end of the logged prefix.
func TestDevicesRestoreRepositionsStreams(t *testing.T) {
	e := env.New(1234)
	ctx := Ctx{Heap: heap.New(), Env: e, Proc: e.Attach()}
	h := NewDevicesHandler()

	// Reference: the values a failure-free run would observe.
	var wantRand [8]int64
	var wantClock [4]int64
	for i := range wantRand {
		wantRand[i] = e.Entropy().Next()
	}
	for i := range wantClock {
		wantClock[i] = e.Clock().Now()
	}

	// "Primary" consumed 8 rand draws and 4 clock reads, but only 5 and 2
	// result records made it into the log before the crash.
	for i := 0; i < 5; i++ {
		if err := h.Receive([]byte{devRand}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := h.Receive([]byte{devClock}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Restore(ctx); err != nil {
		t.Fatal(err)
	}

	// Post-restore live draws must continue exactly after the logged prefix.
	for i := 5; i < 8; i++ {
		if got := e.Entropy().Next(); got != wantRand[i] {
			t.Fatalf("rand draw %d after restore = %d, want %d", i, got, wantRand[i])
		}
	}
	for i := 2; i < 4; i++ {
		if got := e.Clock().Now(); got != wantClock[i] {
			t.Fatalf("clock read %d after restore = %d, want %d", i, got, wantClock[i])
		}
	}
}

func TestDevicesLogMarkers(t *testing.T) {
	h := NewDevicesHandler()
	ctx := Ctx{}
	data, err := h.Log(ctx, def(t, "sys.rand"), nil, nil)
	if err != nil || len(data) != 1 || data[0] != devRand {
		t.Fatalf("sys.rand marker = %q, %v", data, err)
	}
	data, err = h.Log(ctx, def(t, "sys.clock"), nil, nil)
	if err != nil || len(data) != 1 || data[0] != devClock {
		t.Fatalf("sys.clock marker = %q, %v", data, err)
	}
	if err := h.Receive([]byte{'x'}); err == nil {
		t.Fatal("unknown marker accepted")
	}
}
