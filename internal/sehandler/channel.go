package sehandler

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/wire"
)

// ChannelHandler manages chan.send: message sends are the paper's example of
// output that is neither naturally idempotent nor testable — an extra layer
// (per-writer sequence numbers) makes them testable (§3.4). During recovery
// the backup skips sends that certainly completed and uses Test to decide
// the uncertain final one.
type ChannelHandler struct{}

var _ Handler = (*ChannelHandler)(nil)

// NewChannelHandler returns the channel handler.
func NewChannelHandler() *ChannelHandler { return &ChannelHandler{} }

// Name implements Handler.
func (h *ChannelHandler) Name() string { return native.HandlerChannel }

// Register implements Handler.
func (h *ChannelHandler) Register(reg *native.Registry) error {
	def, ok := reg.Lookup("chan.send")
	if !ok {
		return fmt.Errorf("chan.send missing from registry")
	}
	if !def.Output || !def.UsesOutputSeq {
		return fmt.Errorf("chan.send must be a sequence-numbered output")
	}
	return nil
}

// Log implements Handler: the intent record's thread id and output sequence
// number are all Test needs, so no extra state is logged.
func (h *ChannelHandler) Log(Ctx, *native.Def, []heap.Value, []heap.Value) ([]byte, error) {
	return nil, nil
}

// Receive implements Handler.
func (h *ChannelHandler) Receive([]byte) error { return nil }

// Test implements Handler: a send completed iff the channel has performed
// the writer's sequence number.
func (h *ChannelHandler) Test(ctx Ctx, _ *native.Def, _ []heap.Value, intent *wire.OutputIntent) (bool, error) {
	return ctx.Env.Messages().LastSeq(intent.TID) >= intent.OutSeq, nil
}

// Restore implements Handler: channels hold no volatile state to rebuild.
func (h *ChannelHandler) Restore(Ctx) error { return nil }

// State implements Handler.
func (h *ChannelHandler) State() any { return nil }
