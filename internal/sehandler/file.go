package sehandler

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/wire"
)

// file-handler ops encoded at the head of handler data.
const (
	fileOpOpen byte = iota + 1
	fileOpWrite
	fileOpRead
	fileOpSeek
	fileOpClose
)

// fdState is the backup's compressed view of one logged descriptor: the
// paper's receive method folds every write/read/seek on a descriptor into a
// single (name, offset) pair.
type fdState struct {
	name   string
	offset int64
	open   bool
	// realFD is the descriptor materialised at the backup (valid when
	// materialised is true).
	realFD       int64
	materialised bool
}

// FileHandler is the side-effect handler for the fs.* natives (§4.4's file
// I/O example). At the primary it logs, per operation, the descriptor and
// the post-operation offset. At the backup it compresses those records into
// per-descriptor offsets (receive), answers whether an uncertain final write
// completed by inspecting stable file contents (test), and re-opens
// descriptors at their recovered offsets (restore) — installing a descriptor
// translation map so that descriptor values logged by the dead primary keep
// working in the program's state.
type FileHandler struct {
	mu    sync.Mutex
	fds   map[int64]*fdState
	maxFD int64
	// boundProc is the backup process descriptors are materialised into
	// (bound via Bind before replay, or by Restore).
	boundProc *env.Process
}

var _ Handler = (*FileHandler)(nil)

// NewFileHandler returns a fresh file handler.
func NewFileHandler() *FileHandler {
	return &FileHandler{fds: make(map[int64]*fdState)}
}

// Name implements Handler.
func (h *FileHandler) Name() string { return native.HandlerFile }

// Register implements Handler: every fs native it manages must exist and be
// annotated as handler-managed.
func (h *FileHandler) Register(reg *native.Registry) error {
	for _, sig := range []string{"fs.open", "fs.write", "fs.read", "fs.seek", "fs.tell", "fs.close"} {
		def, ok := reg.Lookup(sig)
		if !ok {
			return fmt.Errorf("%s missing from registry", sig)
		}
		if def.Handler != native.HandlerFile {
			return fmt.Errorf("%s not managed by the file handler", sig)
		}
	}
	return nil
}

// Log implements Handler (primary side).
func (h *FileHandler) Log(ctx Ctx, def *native.Def, args, results []heap.Value) ([]byte, error) {
	var buf []byte
	put := func(op byte, fd int64, aux int64, name string) {
		var tmp [binary.MaxVarintLen64]byte
		buf = append(buf, op)
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], fd)]...)
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], aux)]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(name)))]...)
		buf = append(buf, name...)
	}
	fdOf := func(i int) int64 {
		if i < len(args) && args[i].Kind == heap.KindInt {
			return args[i].I
		}
		return -1
	}
	resInt := func() int64 {
		if len(results) == 1 && results[0].Kind == heap.KindInt {
			return results[0].I
		}
		return -1
	}
	switch def.Sig {
	case "fs.open":
		name, err := ctx.Heap.StringAt(args[0].R)
		if err != nil {
			return nil, fmt.Errorf("fs.open log: %w", err)
		}
		put(fileOpOpen, resInt(), 0, name)
	case "fs.write":
		fd := fdOf(0)
		off, err := ctx.Proc.Tell(fd)
		if err != nil {
			off = -1
		}
		put(fileOpWrite, fd, off, "")
	case "fs.read":
		fd := fdOf(0)
		off, err := ctx.Proc.Tell(fd)
		if err != nil {
			off = -1
		}
		put(fileOpRead, fd, off, "")
	case "fs.seek":
		put(fileOpSeek, fdOf(0), resInt(), "")
	case "fs.close":
		put(fileOpClose, fdOf(0), 0, "")
	case "fs.tell":
		// Pure volatile-state query: nothing to recover.
		return nil, nil
	default:
		return nil, fmt.Errorf("file handler asked to log %s", def.Sig)
	}
	return buf, nil
}

// Receive implements Handler (backup side): fold the logged operation into
// the per-descriptor state.
func (h *FileHandler) Receive(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	op := data[0]
	rest := data[1:]
	fd, n := binary.Varint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: file fd", ErrHandlerData)
	}
	rest = rest[n:]
	aux, n := binary.Varint(rest)
	if n <= 0 {
		return fmt.Errorf("%w: file aux", ErrHandlerData)
	}
	rest = rest[n:]
	nameLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < nameLen {
		return fmt.Errorf("%w: file name", ErrHandlerData)
	}
	name := string(rest[n : n+int(nameLen)])

	h.mu.Lock()
	defer h.mu.Unlock()
	if fd > h.maxFD {
		h.maxFD = fd
	}
	switch op {
	case fileOpOpen:
		if fd >= 0 {
			h.fds[fd] = &fdState{name: name, open: true}
		}
	case fileOpWrite, fileOpRead, fileOpSeek:
		st, ok := h.fds[fd]
		if !ok {
			return fmt.Errorf("%w: op %d on unknown fd %d", ErrHandlerData, op, fd)
		}
		// aux is the post-operation offset; successive operations compress
		// to the latest one (the paper's receive-side compression).
		if aux >= 0 {
			st.offset = aux
		}
	case fileOpClose:
		if st, ok := h.fds[fd]; ok {
			st.open = false
		}
	default:
		return fmt.Errorf("%w: unknown file op %d", ErrHandlerData, op)
	}
	return nil
}

// Test implements Handler: an uncertain final fs.write completed iff the
// stable file already contains the data at the recovered offset.
func (h *FileHandler) Test(ctx Ctx, def *native.Def, args []heap.Value, intent *wire.OutputIntent) (bool, error) {
	if def.Sig != "fs.write" {
		// Other fs outputs (none today) default to not-performed → re-run.
		return false, nil
	}
	if len(args) != 2 || args[0].Kind != heap.KindInt || args[1].Kind != heap.KindRef {
		return false, fmt.Errorf("fs.write test: malformed args")
	}
	data, err := ctx.Heap.StringAt(args[1].R)
	if err != nil {
		return false, fmt.Errorf("fs.write test: %w", err)
	}
	h.mu.Lock()
	st, ok := h.fds[args[0].I]
	h.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("fs.write test: unknown fd %d", args[0].I)
	}
	contents, err := ctx.Env.FileContents(st.name)
	if err != nil {
		return false, nil // file missing: write certainly did not complete
	}
	end := st.offset + int64(len(data))
	if int64(len(contents)) < end {
		return false, nil
	}
	return string(contents[st.offset:end]) == data, nil
}

// Restore implements Handler: reopen every still-open descriptor at its
// recovered offset and reserve the logged descriptor range so live opens
// cannot collide with logged descriptor values.
func (h *FileHandler) Restore(ctx Ctx) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.boundProc = ctx.Proc
	ctx.Proc.ReserveFDs(h.maxFD + 1)
	for fd, st := range h.fds {
		if !st.open || st.materialised {
			continue
		}
		real, err := ctx.Proc.OpenAt(st.name, st.offset, true)
		if err != nil {
			return fmt.Errorf("restore fd %d (%s): %w", fd, st.name, err)
		}
		st.realFD = real
		st.materialised = true
	}
	return nil
}

// State implements Handler: the FDTranslator natives consult.
func (h *FileHandler) State() any { return (*fileTranslator)(h) }

// fileTranslator adapts FileHandler to native.FDTranslator.
type fileTranslator FileHandler

var _ native.FDTranslator = (*fileTranslator)(nil)

// Real translates a logged descriptor, materialising it on first use (the
// lazy half of restore; needed when the uncertain final output is re-run
// before recovery formally completes).
func (t *fileTranslator) Real(logged int64) (int64, error) {
	h := (*FileHandler)(t)
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.fds[logged]
	if !ok {
		return logged, nil // not a logged descriptor: pass through
	}
	if st.materialised {
		return st.realFD, nil
	}
	if h.boundProc == nil {
		return logged, fmt.Errorf("file handler: descriptor %d used before a process was bound", logged)
	}
	real, err := h.boundProc.OpenAt(st.name, st.offset, true)
	if err != nil {
		return logged, fmt.Errorf("materialise fd %d (%s): %w", logged, st.name, err)
	}
	st.realFD = real
	st.materialised = true
	return real, nil
}

// Bind attaches the backup process used for materialisation before replay
// begins (Restore also binds it).
func (h *FileHandler) Bind(proc *env.Process) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.boundProc = proc
	if h.maxFD > 0 {
		proc.ReserveFDs(h.maxFD + 1)
	}
}
