package sehandler

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/wire"
)

// DevicesHandler manages the seeded input devices (sys.rand, sys.clock).
// Both draw from sequential seed-derived streams in the environment, which
// makes them the simplest case of volatile device state (§4.4): the stream
// position. The primary can die with drawn-but-unshipped result records
// (records batch FlushEvery at a time), leaving the device advanced past the
// logged prefix; and a backup's own devices sit at position zero while
// logged results are substituted without touching them. Either way, a
// recovered execution that runs past the log would continue the stream from
// the wrong position and diverge from the failure-free execution. The
// handler logs a one-byte device marker per draw, counts the markers as
// records arrive (receive), and on restore rewinds each device to its
// initial state and replays the counted draws — leaving the stream exactly
// at the end of the logged prefix, on a reused primary environment and on a
// fresh backup one alike.
type DevicesHandler struct {
	rands  uint64 // logged sys.rand draws
	clocks uint64 // logged sys.clock reads
}

var _ Handler = (*DevicesHandler)(nil)

// Device markers carried as handler data on rand/clock result records.
const (
	devRand  byte = 'r'
	devClock byte = 'c'
)

// NewDevicesHandler returns the seeded-devices handler.
func NewDevicesHandler() *DevicesHandler { return &DevicesHandler{} }

// Name implements Handler.
func (h *DevicesHandler) Name() string { return native.HandlerDevices }

// Register implements Handler.
func (h *DevicesHandler) Register(reg *native.Registry) error {
	for _, sig := range []string{"sys.rand", "sys.clock"} {
		def, ok := reg.Lookup(sig)
		if !ok {
			return fmt.Errorf("%s missing from registry", sig)
		}
		if !def.NonDeterministic {
			return fmt.Errorf("%s must be non-deterministic", sig)
		}
	}
	return nil
}

// Log implements Handler: record which device the draw consumed.
func (h *DevicesHandler) Log(_ Ctx, def *native.Def, _, _ []heap.Value) ([]byte, error) {
	switch def.Sig {
	case "sys.rand":
		return []byte{devRand}, nil
	case "sys.clock":
		return []byte{devClock}, nil
	default:
		return nil, fmt.Errorf("devices handler does not manage %s", def.Sig)
	}
}

// Receive implements Handler: count logged draws per device.
func (h *DevicesHandler) Receive(data []byte) error {
	if len(data) != 1 {
		return fmt.Errorf("devices handler: bad state length %d", len(data))
	}
	switch data[0] {
	case devRand:
		h.rands++
	case devClock:
		h.clocks++
	default:
		return fmt.Errorf("devices handler: unknown device marker %q", data[0])
	}
	return nil
}

// Test implements Handler: the managed natives are inputs, never outputs.
func (h *DevicesHandler) Test(Ctx, *native.Def, []heap.Value, *wire.OutputIntent) (bool, error) {
	return false, fmt.Errorf("devices handler manages no output commands")
}

// Restore implements Handler: rewind each device and replay the logged
// draws, positioning the stream at the end of the logged prefix.
func (h *DevicesHandler) Restore(ctx Ctx) error {
	ent := ctx.Env.Entropy()
	ent.Reset()
	for i := uint64(0); i < h.rands; i++ {
		ent.Next()
	}
	clk := ctx.Env.Clock()
	clk.Reset()
	for i := uint64(0); i < h.clocks; i++ {
		clk.Now()
	}
	return nil
}

// State implements Handler.
func (h *DevicesHandler) State() any { return nil }
