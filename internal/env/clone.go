package env

// Cloning support for the debugger's checkpoint cache: a snapshot of a
// paused replay must include the environment (stable files, device stream
// positions, exactly-once sequence tables), because resuming the clone will
// keep reading and writing it. Clones share nothing with the original.

// Clone returns a deep copy of the environment.
func (e *Env) Clone() *Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &Env{
		files:   make(map[string]*storedFile, len(e.files)),
		console: e.console.clone(),
		msgs:    e.msgs.clone(),
		clock:   e.clock.clone(),
		entropy: e.entropy.clone(),
	}
	for n, f := range e.files {
		d := make([]byte, len(f.data))
		copy(d, f.data)
		c.files[n] = &storedFile{data: d}
	}
	return c
}

// CloneInto returns a copy of the process (descriptor table and next-fd
// counter) attached to env — the cloned environment the snapshot carries.
func (p *Process) CloneInto(env *Env) *Process {
	c := &Process{env: env, fds: make(map[int64]*openFile, len(p.fds)), nextFD: p.nextFD}
	for fd, of := range p.fds {
		c.fds[fd] = &openFile{name: of.name, offset: of.offset}
	}
	return c
}

func (d *SeqDevice) clone() *SeqDevice {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &SeqDevice{lastSeq: make(map[string]uint64, len(d.lastSeq))}
	for w, s := range d.lastSeq {
		c.lastSeq[w] = s
	}
	c.lines = append([]string(nil), d.lines...)
	return c
}

func (ch *SeqChannel) clone() *SeqChannel {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	c := &SeqChannel{lastSeq: make(map[string]uint64, len(ch.lastSeq))}
	for w, s := range ch.lastSeq {
		c.lastSeq[w] = s
	}
	c.queue = append([]string(nil), ch.queue...)
	c.sent = append([]string(nil), ch.sent...)
	return c
}

func (c *Clock) clone() *Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Clock{now: c.now, seed: c.seed, rng: &splitMix{state: c.rng.state}}
}

func (e *Entropy) clone() *Entropy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Entropy{seed: e.seed, rng: &splitMix{state: e.rng.state}}
}
