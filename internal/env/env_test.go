package env

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFileLifecycle(t *testing.T) {
	e := New(1)
	p := e.Attach()
	if _, err := p.Open("missing", false); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("open missing: %v", err)
	}
	fd, err := p.Open("f.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p.Write(fd, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write: %d, %v", n, err)
	}
	if pos, _ := p.Tell(fd); pos != 11 {
		t.Fatalf("tell = %d", pos)
	}
	if _, err := p.SeekTo(fd, 6, SeekAbs); err != nil {
		t.Fatal(err)
	}
	b, err := p.Read(fd, 100)
	if err != nil || string(b) != "world" {
		t.Fatalf("read = %q (%v)", b, err)
	}
	if _, err := p.SeekTo(fd, -2, SeekEnd); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.Read(fd, 2); string(b) != "ld" {
		t.Fatalf("seek-end read = %q", b)
	}
	if _, err := p.SeekTo(fd, -100, SeekRel); !errors.Is(err, ErrNegativeSeek) {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := p.SeekTo(fd, 0, 9); !errors.Is(err, ErrBadWhence) {
		t.Fatalf("bad whence: %v", err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write after close: %v", err)
	}
	if sz, _ := e.FileSize("f.txt"); sz != 11 {
		t.Fatalf("size = %d", sz)
	}
}

func TestWriteExtendsAndOverwrites(t *testing.T) {
	e := New(1)
	p := e.Attach()
	fd, _ := p.Open("f", true)
	_, _ = p.Write(fd, []byte("aaaa"))
	_, _ = p.SeekTo(fd, 2, SeekAbs)
	_, _ = p.Write(fd, []byte("bbbb"))
	data, _ := e.FileContents("f")
	if string(data) != "aabbbb" {
		t.Fatalf("contents = %q", data)
	}
}

func TestVolatileDescriptorsStableContents(t *testing.T) {
	e := New(1)
	p1 := e.Attach()
	fd, _ := p1.Open("persist", true)
	_, _ = p1.Write(fd, []byte("survives"))
	// p1 is "lost" with its VM; a new attachment sees the stable bytes but
	// not the descriptor.
	p2 := e.Attach()
	if _, err := p2.Read(fd, 1); !errors.Is(err, ErrBadFD) {
		t.Fatalf("descriptor leaked across processes: %v", err)
	}
	fd2, err := p2.OpenAt("persist", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p2.Read(fd2, 100)
	if string(b) != "vives" {
		t.Fatalf("read = %q", b)
	}
}

func TestReserveFDs(t *testing.T) {
	e := New(1)
	p := e.Attach()
	p.ReserveFDs(100)
	fd, _ := p.Open("f", true)
	if fd != 100 {
		t.Fatalf("fd = %d, want 100", fd)
	}
	p.ReserveFDs(50) // never lowers
	fd2, _ := p.Open("g", true)
	if fd2 != 101 {
		t.Fatalf("fd2 = %d, want 101", fd2)
	}
}

func TestSeqDeviceExactlyOnce(t *testing.T) {
	d := NewSeqDevice()
	if !d.Write("0", 1, "a") {
		t.Fatal("first write dropped")
	}
	if d.Write("0", 1, "a-dup") {
		t.Fatal("duplicate performed")
	}
	if d.Write("0", 0, "stale") {
		t.Fatal("stale performed")
	}
	if !d.Write("0.1", 1, "b") {
		t.Fatal("other writer dropped")
	}
	if !d.Write("0", 2, "c") {
		t.Fatal("next write dropped")
	}
	lines := d.Lines()
	if len(lines) != 3 || lines[0] != "a" || lines[1] != "b" || lines[2] != "c" {
		t.Fatalf("lines = %v", lines)
	}
	if d.LastSeq("0") != 2 || d.LastSeq("0.1") != 1 || d.LastSeq("nope") != 0 {
		t.Fatal("LastSeq wrong")
	}
}

func TestSeqChannel(t *testing.T) {
	c := NewSeqChannel()
	c.Inject("inbound1")
	c.Inject("inbound2")
	if msg, ok := c.Recv(); !ok || msg != "inbound1" {
		t.Fatalf("recv = %q %v", msg, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if !c.Send("0", 1, "out") || c.Send("0", 1, "out-dup") {
		t.Fatal("send dedup broken")
	}
	if got := c.Sent(); len(got) != 1 || got[0] != "out" {
		t.Fatalf("sent = %v", got)
	}
	_, _ = c.Recv()
	if _, ok := c.Recv(); ok {
		t.Fatal("recv on empty should fail")
	}
}

func TestClockMonotoneNondeterministic(t *testing.T) {
	c := NewClock(7)
	prev := int64(0)
	for i := 0; i < 100; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("clock not strictly increasing: %d after %d", now, prev)
		}
		prev = now
	}
	// Different seeds drift apart (the non-determinism the primary logs).
	c1, c2 := NewClock(1), NewClock(2)
	same := true
	for i := 0; i < 10; i++ {
		if c1.Now() != c2.Now() {
			same = false
		}
	}
	if same {
		t.Fatal("differently-seeded clocks should diverge")
	}
}

func TestEntropyDeterministicPerSeed(t *testing.T) {
	a, b := NewEntropy(5), NewEntropy(5)
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed should replay")
		}
	}
}

// Property: per-writer sequence dedup never performs the same (writer, seq)
// twice regardless of interleaving.
func TestSeqDeviceProperty(t *testing.T) {
	prop := func(seqs []uint8) bool {
		d := NewSeqDevice()
		performed := make(map[uint8]bool)
		count := 0
		for _, s := range seqs {
			seq := uint64(s%16) + 1
			did := d.Write("w", seq, "x")
			key := uint8(seq)
			if did {
				if performed[key] {
					return false // duplicate performed
				}
				performed[key] = true
				count++
			}
		}
		return d.WriteCount() == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestListAndDelete(t *testing.T) {
	e := New(1)
	e.PutFile("b", []byte("1"))
	e.PutFile("a", []byte("2"))
	names := e.ListFiles()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if !e.FileExists("a") {
		t.Fatal("a should exist")
	}
	if err := e.DeleteFile("a"); err != nil {
		t.Fatal(err)
	}
	if e.FileExists("a") {
		t.Fatal("a should be gone")
	}
	if err := e.DeleteFile("a"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("double delete: %v", err)
	}
}
