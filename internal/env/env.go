// Package env simulates the operating-system environment underneath the
// replicated VM: a file store whose contents are stable (they survive a
// primary failure), per-process volatile state (descriptor tables and
// offsets), a console and a message channel with sequence-numbered
// exactly-once output, a virtual clock, and an entropy source.
//
// The environment is shared between the primary and backup VMs — it is "the
// outside world" of §3.4. Volatile state (a Process) is lost when the VM
// holding it is killed; stable state persists. Sequence-numbered devices are
// the paper's "extra layer" that turns message sends into testable outputs.
package env

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by environment operations.
var (
	ErrBadFD        = errors.New("bad file descriptor")
	ErrNoSuchFile   = errors.New("no such file")
	ErrBadWhence    = errors.New("bad seek whence")
	ErrNegativeSeek = errors.New("negative seek offset")
)

// Whence values for Process.Seek.
const (
	SeekAbs = 0 // absolute (idempotent output)
	SeekRel = 1 // relative to current offset (testable via Tell)
	SeekEnd = 2 // relative to end of file
)

// storedFile is stable environment state.
type storedFile struct {
	data []byte
}

// Env is a simulated operating system instance.
type Env struct {
	mu      sync.Mutex
	files   map[string]*storedFile
	console *SeqDevice
	msgs    *SeqChannel
	clock   *Clock
	entropy *Entropy
}

// New creates an environment whose clock jitter and entropy derive from seed.
func New(seed int64) *Env {
	return &Env{
		files:   make(map[string]*storedFile),
		console: NewSeqDevice(),
		msgs:    NewSeqChannel(),
		clock:   NewClock(seed),
		entropy: NewEntropy(seed ^ 0x1e3779b97f4a7c15),
	}
}

// Console returns the sequence-numbered console device.
func (e *Env) Console() *SeqDevice { return e.console }

// Messages returns the sequence-numbered message channel.
func (e *Env) Messages() *SeqChannel { return e.msgs }

// Clock returns the virtual clock.
func (e *Env) Clock() *Clock { return e.clock }

// Entropy returns the entropy source.
func (e *Env) Entropy() *Entropy { return e.entropy }

// FileSize returns the size of a stable file, or an error if absent.
func (e *Env) FileSize(name string) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	return int64(len(f.data)), nil
}

// FileExists reports whether a stable file exists.
func (e *Env) FileExists(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.files[name]
	return ok
}

// FileContents returns a copy of a stable file's bytes.
func (e *Env) FileContents(name string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// PutFile creates or replaces a stable file (test setup helper).
func (e *Env) PutFile(name string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := make([]byte, len(data))
	copy(d, data)
	e.files[name] = &storedFile{data: d}
}

// DeleteFile removes a stable file.
func (e *Env) DeleteFile(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	delete(e.files, name)
	return nil
}

// ListFiles returns the sorted stable file names.
func (e *Env) ListFiles() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.files))
	for n := range e.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Attach creates a new process: a fresh (volatile) descriptor table bound to
// this environment. Killing the owning VM discards the Process, modelling
// the loss of the primary's volatile OS state.
func (e *Env) Attach() *Process {
	return &Process{env: e, fds: make(map[int64]*openFile), nextFD: 3}
}

type openFile struct {
	name   string
	offset int64
}

// Process is the volatile per-VM view of the environment.
type Process struct {
	env    *Env
	fds    map[int64]*openFile
	nextFD int64
}

// Open opens (or with create, creates) a stable file and returns a
// descriptor. Descriptor values are volatile environment state — the
// canonical example of a native return value that reflects volatile state
// and needs a side-effect handler (§4.1).
func (p *Process) Open(name string, create bool) (int64, error) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	if _, ok := p.env.files[name]; !ok {
		if !create {
			return -1, fmt.Errorf("%w: %q", ErrNoSuchFile, name)
		}
		p.env.files[name] = &storedFile{}
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &openFile{name: name}
	return fd, nil
}

// OpenAt opens name and positions the descriptor at offset (used by the file
// side-effect handler's restore during recovery).
func (p *Process) OpenAt(name string, offset int64, create bool) (int64, error) {
	fd, err := p.Open(name, create)
	if err != nil {
		return -1, err
	}
	p.fds[fd].offset = offset
	return fd, nil
}

func (p *Process) file(fd int64) (*openFile, *storedFile, error) {
	of, ok := p.fds[fd]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	sf, ok := p.env.files[of.name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchFile, of.name)
	}
	return of, sf, nil
}

// Write appends b at the descriptor's offset (extending the file as needed)
// and advances the offset. Returns bytes written.
func (p *Process) Write(fd int64, b []byte) (int64, error) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	of, sf, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	end := of.offset + int64(len(b))
	if int64(len(sf.data)) < end {
		grown := make([]byte, end)
		copy(grown, sf.data)
		sf.data = grown
	}
	copy(sf.data[of.offset:end], b)
	of.offset = end
	return int64(len(b)), nil
}

// Read reads up to n bytes from the descriptor's offset.
func (p *Process) Read(fd int64, n int64) ([]byte, error) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	of, sf, err := p.file(fd)
	if err != nil {
		return nil, err
	}
	if of.offset >= int64(len(sf.data)) || n <= 0 {
		return nil, nil
	}
	end := of.offset + n
	if end > int64(len(sf.data)) {
		end = int64(len(sf.data))
	}
	out := make([]byte, end-of.offset)
	copy(out, sf.data[of.offset:end])
	of.offset = end
	return out, nil
}

// SeekTo repositions the descriptor and returns the new offset.
func (p *Process) SeekTo(fd, off int64, whence int) (int64, error) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	of, sf, err := p.file(fd)
	if err != nil {
		return 0, err
	}
	var target int64
	switch whence {
	case SeekAbs:
		target = off
	case SeekRel:
		target = of.offset + off
	case SeekEnd:
		target = int64(len(sf.data)) + off
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadWhence, whence)
	}
	if target < 0 {
		return 0, ErrNegativeSeek
	}
	of.offset = target
	return target, nil
}

// Tell returns the descriptor's current offset (makes relative seeks
// testable, §3.4).
func (p *Process) Tell(fd int64) (int64, error) {
	of, ok := p.fds[fd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return of.offset, nil
}

// Name returns the file name behind a descriptor.
func (p *Process) Name(fd int64) (string, error) {
	of, ok := p.fds[fd]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return of.name, nil
}

// Close releases a descriptor.
func (p *Process) Close(fd int64) error {
	if _, ok := p.fds[fd]; !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	delete(p.fds, fd)
	return nil
}

// ReserveFDs raises the next-descriptor counter to at least n, so that
// descriptors allocated from now on never collide with a recovering
// program's logged descriptor values.
func (p *Process) ReserveFDs(n int64) {
	if p.nextFD < n {
		p.nextFD = n
	}
}

// OpenFDs returns the open descriptors with name and offset, sorted by fd
// (used by the file side-effect handler's log method).
func (p *Process) OpenFDs() []FDInfo {
	out := make([]FDInfo, 0, len(p.fds))
	for fd, of := range p.fds {
		out = append(out, FDInfo{FD: fd, Name: of.name, Offset: of.offset})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FD < out[j].FD })
	return out
}

// FDInfo describes one open descriptor.
type FDInfo struct {
	FD     int64
	Name   string
	Offset int64
}
