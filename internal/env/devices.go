package env

import "sync"

// SeqDevice is an output device with per-writer sequence-numbered
// exactly-once writes: a write carries the writer's identity (the virtual
// thread id, which is stable across replicas) and that writer's output
// sequence number, and is performed only if it has not been seen before.
// LastSeq makes the device testable (§3.4): during recovery the backup can
// ask whether a given output completed before the primary failed.
//
// Sequencing is per writer because, under replicated lock acquisition, the
// interleaving of independent threads may legitimately differ between the
// primary and the recovering backup; per the paper, applications for which
// cross-thread output order matters must serialise output with a monitor.
type SeqDevice struct {
	mu      sync.Mutex
	lastSeq map[string]uint64
	lines   []string
}

// NewSeqDevice returns an empty device.
func NewSeqDevice() *SeqDevice {
	return &SeqDevice{lastSeq: make(map[string]uint64)}
}

// Write performs output seq from writer with payload line; duplicate and
// stale sequence numbers are dropped. It reports whether the write was
// performed.
func (d *SeqDevice) Write(writer string, seq uint64, line string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if seq <= d.lastSeq[writer] {
		return false
	}
	d.lastSeq[writer] = seq
	d.lines = append(d.lines, line)
	return true
}

// LastSeq returns the highest sequence number performed by writer.
func (d *SeqDevice) LastSeq(writer string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSeq[writer]
}

// Lines returns a copy of everything written so far.
func (d *SeqDevice) Lines() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.lines))
	copy(out, d.lines)
	return out
}

// WriteCount returns the number of performed writes.
func (d *SeqDevice) WriteCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.lines)
}

// SeqChannel is a reliable message channel: sends are sequence-numbered per
// writer and exactly-once (like SeqDevice); receives dequeue in order.
// Receiving is an environment *input*, so its result is non-deterministic
// and must be logged by the primary.
type SeqChannel struct {
	mu      sync.Mutex
	lastSeq map[string]uint64
	queue   []string
	sent    []string
}

// NewSeqChannel returns an empty channel.
func NewSeqChannel() *SeqChannel {
	return &SeqChannel{lastSeq: make(map[string]uint64)}
}

// Send enqueues msg under writer's sequence number seq; duplicates are
// dropped. It reports whether the send was performed.
func (c *SeqChannel) Send(writer string, seq uint64, msg string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq <= c.lastSeq[writer] {
		return false
	}
	c.lastSeq[writer] = seq
	c.sent = append(c.sent, msg)
	return true
}

// LastSeq returns the highest send sequence number performed by writer.
func (c *SeqChannel) LastSeq(writer string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq[writer]
}

// Sent returns a copy of every message sent so far.
func (c *SeqChannel) Sent() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.sent))
	copy(out, c.sent)
	return out
}

// Recv dequeues the next inbound message; ok is false if the channel is
// empty.
func (c *SeqChannel) Recv() (msg string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return "", false
	}
	msg = c.queue[0]
	c.queue = c.queue[1:]
	return msg, true
}

// Inject enqueues an inbound message from the outside world (tests and
// examples simulating a remote peer).
func (c *SeqChannel) Inject(msg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue = append(c.queue, msg)
}

// Len returns the queued inbound message count.
func (c *SeqChannel) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Clock is a virtual wall clock: every read advances it by a pseudo-random
// step, so repeated reads observe strictly increasing, non-reproducible
// values — the canonical non-deterministic input native (§3.2).
type Clock struct {
	mu   sync.Mutex
	now  int64
	seed int64
	rng  *splitMix
}

// NewClock returns a clock starting at zero whose jitter derives from seed.
func NewClock(seed int64) *Clock {
	return &Clock{seed: seed, rng: newSplitMix(uint64(seed))}
}

// Reset rewinds the clock to its initial (seed-derived) state. Used by
// volatile-state recovery (§4.4) to re-position the device at the logged
// prefix before a recovered execution continues reading it live.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
	c.rng = newSplitMix(uint64(c.seed))
}

// Now reads the clock, advancing it 1–16 virtual milliseconds.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += 1 + int64(c.rng.next()&0xf)
	return c.now
}

// Entropy is a seeded random source exposed to programs through the
// non-deterministic `rand` native.
type Entropy struct {
	mu   sync.Mutex
	seed int64
	rng  *splitMix
}

// NewEntropy returns an entropy source derived from seed.
func NewEntropy(seed int64) *Entropy {
	return &Entropy{seed: seed, rng: newSplitMix(uint64(seed))}
}

// Reset rewinds the source to its initial (seed-derived) state. Used by
// volatile-state recovery (§4.4) to re-position the device at the logged
// prefix before a recovered execution continues drawing from it live.
func (e *Entropy) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rng = newSplitMix(uint64(e.seed))
}

// Next returns the next random 63-bit value.
func (e *Entropy) Next() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(e.rng.next() >> 1)
}

// splitMix is a SplitMix64 PRNG (stdlib-only, deterministic from seed).
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
