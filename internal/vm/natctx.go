package vm

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
)

// nativeCtx adapts the VM to the native.Ctx interface for one invocation.
type nativeCtx struct {
	vm *VM
	t  *Thread
}

var _ native.Ctx = (*nativeCtx)(nil)

func (c *nativeCtx) Heap() *heap.Heap             { return c.vm.hp }
func (c *nativeCtx) Process() *env.Process        { return c.vm.proc }
func (c *nativeCtx) Environment() *env.Env        { return c.vm.environ }
func (c *nativeCtx) ThreadID() string             { return c.t.VTID }
func (c *nativeCtx) HandlerState(name string) any { return c.vm.handlerState[name] }

func (c *nativeCtx) NextOutputSeq() uint64 {
	c.t.OutSeq++
	return c.t.OutSeq
}

func (c *nativeCtx) MonitorEnter(r heap.Ref) error { return c.vm.nativeMonEnter(c.t, r) }
func (c *nativeCtx) MonitorExit(r heap.Ref) error  { return c.vm.monExit(c.t, r) }

func (c *nativeCtx) RunGC() {
	// GC from a native is safe: sys.gc takes no reference arguments, so no
	// unrooted values are live in the native frame.
	_ = c.vm.runGC(c.t)
}

// DirectNative invokes def for thread t without replica coordination. It is
// the execution primitive coordinators build on.
func (vm *VM) DirectNative(t *Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	if len(args) != def.Arity {
		return nil, fmt.Errorf("%w: %s: %d args, want %d", native.ErrBadArgs, def.Sig, len(args), def.Arity)
	}
	ctx := nativeCtx{vm: vm, t: t}
	results, err := def.Fn(&ctx, args)
	if err != nil {
		return nil, fmt.Errorf("native %s: %w", def.Sig, err)
	}
	return results, nil
}

// ConsumeOutputSeq advances t's output sequence number without invoking a
// native — used by backup coordinators when they skip an already-performed
// output whose native consumes a sequence number (def.UsesOutputSeq).
func (vm *VM) ConsumeOutputSeq(t *Thread) uint64 {
	t.OutSeq++
	return t.OutSeq
}
