package vm

// Epoch-counter edge tests: the threaded engine checks kill/budget/preemption
// only at block boundaries, so the places where that epoch approximation
// must collapse back to per-instruction precision — an instruction budget
// running out in the middle of a fused group, a preemption target landing
// exactly on a block edge — are pinned here by running both engines over the
// same inputs and requiring identical observables. The replication-level
// variants (a replay cut between two progress flushes, kills on block edges
// under a live backup) live in the internal/simtest replay-seed table.

import (
	"errors"
	"testing"

	"repro/internal/env"
)

// epochLoop compiles into pair- and wide-fused groups (load+const compare
// branches, load+const+alu+store chains), so small instruction budgets land
// at every offset inside fused groups across the sweep.
const epochLoop = `
method main 0 void
  iconst 0
  store 0
  iconst 0
  store 1
loop:
  load 1
  iconst 300
  icmp
  jz done
  load 0
  iconst 31
  imul
  load 1
  iadd
  store 0
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
`

// TestBudgetEdgeAcrossEngines sweeps MaxInstructions through every offset of
// the loop's first iterations — including values that exhaust the budget in
// the middle of a fused pair or wide group — and requires both engines to
// fault identically: same error, same instruction count at the fault, same
// progress checksum when tracking.
func TestBudgetEdgeAcrossEngines(t *testing.T) {
	p := buildProgram(t, epochLoop)
	for _, track := range []bool{false, true} {
		for budget := uint64(1); budget <= 150; budget++ {
			type outcome struct {
				budgetErr bool
				otherErr  bool
				stats     Stats
				chk       uint64
			}
			run := func(d Dispatch) outcome {
				v, err := New(Config{
					Program: p, Env: env.New(1),
					MaxInstructions: budget,
					TrackProgress:   track,
					Dispatch:        d,
				})
				if err != nil {
					t.Fatalf("new vm (%v): %v", d, err)
				}
				runErr := v.Run()
				o := outcome{
					budgetErr: errors.Is(runErr, ErrInstrBudget),
					otherErr:  runErr != nil && !errors.Is(runErr, ErrInstrBudget),
					stats:     v.Stats(),
				}
				for _, th := range v.Threads() {
					o.chk ^= th.Progress.Chk
				}
				return o
			}
			sw, th := run(DispatchSwitch), run(DispatchThreaded)
			if sw != th {
				t.Fatalf("track=%v budget=%d: engines diverged\n  switch: %+v\nthreaded: %+v",
					track, budget, sw, th)
			}
			if sw.otherErr {
				t.Fatalf("track=%v budget=%d: unexpected non-budget error", track, budget)
			}
		}
	}
}

// TestQuantumSweepAcrossEngines drives a two-thread lock workload under
// degenerate scheduling quanta — quantum 1 preempts at every single branch,
// so every slice boundary is a block edge — and requires both engines to
// produce the same console, counters, and per-thread progress checksums.
func TestQuantumSweepAcrossEngines(t *testing.T) {
	src := printNative + `
static Main.lock
static Main.counter
class Lock dummy
method worker 1 void
  iconst 0
  store 1
wloop:
  load 1
  iconst 50
  icmp
  jz wdone
  gets Main.lock
  menter
  gets Main.counter
  iconst 1
  iadd
  puts Main.counter
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp wloop
wdone:
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.counter
  iconst 0
  spawn worker 1
  store 0
  iconst 1
  spawn worker 1
  store 1
  load 0
  join
  load 1
  join
  gets Main.counter
  i2s
  call print
  ret
end
`
	p := buildProgram(t, src)
	quanta := []struct{ lo, hi uint64 }{{1, 1}, {2, 2}, {3, 7}, {16, 16}, {64, 512}}
	for _, q := range quanta {
		type outcome struct {
			console string
			stats   Stats
			chk     uint64
		}
		run := func(d Dispatch) outcome {
			e := env.New(7)
			v, err := New(Config{
				Program: p, Env: e,
				Coordinator:     NewDefaultCoordinator(NewSeededPolicy(11, q.lo, q.hi)),
				MaxInstructions: 10_000_000,
				TrackProgress:   true,
				Dispatch:        d,
			})
			if err != nil {
				t.Fatalf("new vm (%v): %v", d, err)
			}
			if err := v.Run(); err != nil {
				t.Fatalf("quantum %d-%d (%v): %v", q.lo, q.hi, d, err)
			}
			var o outcome
			for _, ln := range e.Console().Lines() {
				o.console += ln + "\n"
			}
			o.stats = v.Stats()
			for _, th := range v.Threads() {
				o.chk ^= th.Progress.Chk
			}
			return o
		}
		sw, th := run(DispatchSwitch), run(DispatchThreaded)
		if sw != th {
			t.Fatalf("quantum %d-%d: engines diverged\n  switch: %+v\nthreaded: %+v", q.lo, q.hi, sw, th)
		}
		if sw.console != "100\n" {
			t.Fatalf("quantum %d-%d: console %q, want 100", q.lo, q.hi, sw.console)
		}
	}
}
