package vm

import (
	"errors"
	"math"

	fuzzrand "repro/internal/fuzzgen/rand"
	"repro/internal/heap"
	"repro/internal/native"
)

// NoPreempt is the branch-count target meaning "run until blocked or done".
const NoPreempt = math.MaxUint64

// SliceTarget tells the scheduler where to stop the next slice. A plain
// branch-count target (Exact=false) preempts at the first instruction
// boundary where BrCnt reaches Br — how quanta expire. A replayed switch
// point (Exact=true) additionally names the method/pc offset: br_cnt alone
// under-specifies positions because blocking operations switch at non-branch
// instructions, which is exactly why the paper's scheduling records carry
// pc_off (§4.2). The slice then runs until BrCnt == Br AND the thread sits
// at (Method, PC); within one branch interval a position cannot repeat, so
// the stop point is unique.
type SliceTarget struct {
	Br     uint64
	Exact  bool
	Method int32
	PC     int32
	// StopRunnable stops the slice when the position is reached while the
	// thread is still runnable (a replayed preemption). When false, an
	// exact target replays a switch caused by blocking: the slice runs
	// until the thread leaves the runnable state on its own, because
	// blocking instructions execute in phases at a single (br_cnt, pc).
	StopRunnable bool
}

// RunUntilBlocked is the target for "no preemption".
func RunUntilBlocked() SliceTarget { return SliceTarget{Br: NoPreempt} }

// BudgetTarget preempts after the thread executes the given additional
// branch budget.
func BudgetTarget(t *Thread, quantum uint64) SliceTarget {
	return SliceTarget{Br: t.BrCnt + quantum}
}

// Coordinator is the replica-coordination hook surface. The VM calls it for
// every decision the paper identifies as a source of non-determinism:
// scheduling (which thread runs next and for how many branches), lock
// acquisition order, virtual lock-id assignment, and native-method
// invocation. The baseline VM uses DefaultCoordinator; the replication
// package provides primary- and backup-side implementations.
type Coordinator interface {
	// PickNext chooses the next thread among runnable (never empty) and the
	// slice target at which to preempt it (RunUntilBlocked for none). cur is
	// the previously running thread (possibly no longer runnable, nil at
	// first dispatch). Returning a nil thread (with nil error) asks the
	// scheduler to idle: no dispatch is currently allowed (warm backups
	// waiting for the primary's next scheduling record) — OnIdle decides
	// whether to keep waiting.
	PickNext(vm *VM, runnable []*Thread, cur *Thread) (*Thread, SliceTarget, error)

	// OnDescheduled fires when the dispatched thread differs from cur: prev
	// was descheduled (its progress counters are final for this slice) and
	// next is about to run. prev is nil at first dispatch.
	OnDescheduled(vm *VM, prev, next *Thread) error

	// BeforeAcquire is consulted on every real (non-reentrant) acquisition
	// attempt of m by t. Returning false gates the thread (it will retry
	// when the coordinator makes it runnable again via Poll).
	BeforeAcquire(vm *VM, t *Thread, m *Monitor) (bool, error)

	// AssignLID produces the virtual lock id when t performs the first-ever
	// acquisition of m. Returning granted=false gates the thread (recovery:
	// the id map for this lock has not been matched yet, §4.2).
	AssignLID(vm *VM, t *Thread, m *Monitor) (lid int64, granted bool, err error)

	// OnAcquired fires after every real lock acquisition, with the
	// pre-increment sequence numbers still in place (t.TASN, m.LASN).
	OnAcquired(vm *VM, t *Thread, m *Monitor) error

	// NativeReady reports whether t's next intercepted native call may
	// proceed now. Returning false gates the thread before the call
	// instruction executes (warm backups waiting for the primary's record);
	// Poll re-admits it. Args are not yet popped and the pc is unchanged.
	NativeReady(vm *VM, t *Thread, def *native.Def) bool

	// InvokeNative performs an intercepted native call (def.Intercepted).
	// t.NatSeq has already been incremented past this call (1-based).
	InvokeNative(vm *VM, t *Thread, def *native.Def, args []heap.Value) ([]heap.Value, error)

	// Poll runs once per scheduler iteration; replay coordinators use it to
	// admit gated threads whose recorded turn has arrived. It reports
	// whether it made progress (woke at least one thread).
	Poll(vm *VM) (bool, error)

	// OnIdle fires when no thread is runnable but some are alive. Returning
	// retry=true makes the scheduler poll again (replay progress possible);
	// false is a genuine deadlock.
	OnIdle(vm *VM) (retry bool, err error)

	// OnHalt fires once when the VM terminates (normally or not).
	OnHalt(vm *VM, runErr error) error
}

// ErrDeadlock is returned when no thread can make progress.
var ErrDeadlock = errors.New("vm deadlock: no runnable threads")

// SchedPolicy decides baseline/primary scheduling: the order threads run in
// and the quantum (in branch count) each slice gets. Implementations must be
// deterministic functions of their own state so a run is reproducible from
// its seed.
type SchedPolicy interface {
	// Next picks from runnable (never empty); cur may be nil or dead.
	Next(runnable []*Thread, cur *Thread) *Thread
	// Quantum returns the branch-count budget for the next slice.
	Quantum() uint64
}

// RoundRobinPolicy cycles threads in slot order with a fixed quantum.
type RoundRobinPolicy struct {
	Q uint64
}

// Next implements SchedPolicy.
func (p *RoundRobinPolicy) Next(runnable []*Thread, cur *Thread) *Thread {
	if cur == nil {
		return runnable[0]
	}
	// First runnable with slot greater than cur's, wrapping.
	var best, wrap *Thread
	for _, t := range runnable {
		if t.Slot > cur.Slot && (best == nil || t.Slot < best.Slot) {
			best = t
		}
		if wrap == nil || t.Slot < wrap.Slot {
			wrap = t
		}
	}
	if best != nil {
		return best
	}
	return wrap
}

// Quantum implements SchedPolicy.
func (p *RoundRobinPolicy) Quantum() uint64 {
	if p.Q == 0 {
		return 4096
	}
	return p.Q
}

// SeededPolicy picks pseudo-randomly among runnable threads with a jittered
// quantum — the stand-in for timer-interrupt-driven preemption. Two replicas
// given different seeds genuinely interleave differently, which is what
// makes replicated lock acquisition (rather than luck) necessary for
// convergence.
type SeededPolicy struct {
	rng        *fuzzrand.RNG
	MinQ, MaxQ uint64
}

// NewSeededPolicy returns a policy seeded with seed. The XOR fold keeps the
// decision sequence byte-identical to the historical inlined SplitMix64.
func NewSeededPolicy(seed int64, minQ, maxQ uint64) *SeededPolicy {
	if minQ == 0 {
		minQ = 512
	}
	if maxQ < minQ {
		maxQ = minQ * 4
	}
	return &SeededPolicy{rng: fuzzrand.New(uint64(seed) ^ 0x9e3779b97f4a7c15), MinQ: minQ, MaxQ: maxQ}
}

// Next implements SchedPolicy.
func (p *SeededPolicy) Next(runnable []*Thread, cur *Thread) *Thread {
	return runnable[p.rng.Next()%uint64(len(runnable))]
}

// Quantum implements SchedPolicy.
func (p *SeededPolicy) Quantum() uint64 {
	span := p.MaxQ - p.MinQ + 1
	return p.MinQ + p.rng.Next()%span
}

// PolicyCloner is implemented by scheduling policies that can produce an
// independent copy whose future decision sequence is identical. Checkpoint
// snapshots (the time-travel debugger) require it: a resumed copy must draw
// the same thread picks and quanta the original would have.
type PolicyCloner interface {
	ClonePolicy() SchedPolicy
}

// ClonePolicy implements PolicyCloner (a round-robin policy is stateless
// apart from its configuration).
func (p *RoundRobinPolicy) ClonePolicy() SchedPolicy { return &RoundRobinPolicy{Q: p.Q} }

// ClonePolicy implements PolicyCloner: the copy's PRNG sits at the same
// stream position.
func (p *SeededPolicy) ClonePolicy() SchedPolicy {
	return &SeededPolicy{rng: p.rng.Clone(), MinQ: p.MinQ, MaxQ: p.MaxQ}
}

// DefaultCoordinator runs the VM standalone (no replication): scheduling
// comes from a policy, every acquisition is granted immediately, lock ids
// are a counter, and natives are invoked directly.
type DefaultCoordinator struct {
	Policy SchedPolicy
	nextID int64
}

var _ Coordinator = (*DefaultCoordinator)(nil)

// NewDefaultCoordinator returns a coordinator with the given policy
// (round-robin if nil).
func NewDefaultCoordinator(p SchedPolicy) *DefaultCoordinator {
	if p == nil {
		p = &RoundRobinPolicy{}
	}
	return &DefaultCoordinator{Policy: p}
}

// PickNext implements Coordinator.
func (c *DefaultCoordinator) PickNext(_ *VM, runnable []*Thread, cur *Thread) (*Thread, SliceTarget, error) {
	t := c.Policy.Next(runnable, cur)
	return t, BudgetTarget(t, c.Policy.Quantum()), nil
}

// OnDescheduled implements Coordinator.
func (c *DefaultCoordinator) OnDescheduled(*VM, *Thread, *Thread) error { return nil }

// BeforeAcquire implements Coordinator.
func (c *DefaultCoordinator) BeforeAcquire(*VM, *Thread, *Monitor) (bool, error) { return true, nil }

// AssignLID implements Coordinator.
func (c *DefaultCoordinator) AssignLID(*VM, *Thread, *Monitor) (int64, bool, error) {
	c.nextID++
	return c.nextID, true, nil
}

// OnAcquired implements Coordinator.
func (c *DefaultCoordinator) OnAcquired(*VM, *Thread, *Monitor) error { return nil }

// NativeReady implements Coordinator.
func (c *DefaultCoordinator) NativeReady(*VM, *Thread, *native.Def) bool { return true }

// InvokeNative implements Coordinator.
func (c *DefaultCoordinator) InvokeNative(vm *VM, t *Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	return vm.DirectNative(t, def, args)
}

// Poll implements Coordinator.
func (c *DefaultCoordinator) Poll(*VM) (bool, error) { return false, nil }

// OnIdle implements Coordinator.
func (c *DefaultCoordinator) OnIdle(*VM) (bool, error) { return false, nil }

// OnHalt implements Coordinator.
func (c *DefaultCoordinator) OnHalt(*VM, error) error { return nil }
