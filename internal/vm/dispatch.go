package vm

import "fmt"

// Dispatch selects the interpreter engine. The zero value is the threaded
// engine: every caller that does not opt out runs (and therefore gates) the
// fast tier, while DispatchSwitch keeps the historical switch loop available
// as the bit-identity reference for the dual-mode golden and differential
// suites.
type Dispatch uint8

const (
	// DispatchThreaded is the subroutine-threaded engine: per-method arrays
	// of specialized closures over wide-fused superinstructions, with the
	// epoch-based branch counter (threaded.go).
	DispatchThreaded Dispatch = iota
	// DispatchSwitch is the historical decode-once switch loop (interp.go).
	DispatchSwitch
)

func (d Dispatch) String() string {
	switch d {
	case DispatchThreaded:
		return "threaded"
	case DispatchSwitch:
		return "switch"
	default:
		return fmt.Sprintf("dispatch(%d)", uint8(d))
	}
}

// ParseDispatch parses the -dispatch / FTVM_DISPATCH spelling of a Dispatch.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "threaded", "":
		return DispatchThreaded, nil
	case "switch":
		return DispatchSwitch, nil
	default:
		return 0, fmt.Errorf("unknown dispatch %q (want switch|threaded)", s)
	}
}

// Dispatch returns the engine this VM executes with.
func (vm *VM) Dispatch() Dispatch { return vm.dispatch }

// runSliceDispatch routes a slice to the configured engine. Pair-frequency
// profiling always runs the switch slow path: the dynamic pair stream must
// see original opcodes, not superinstructions.
func (vm *VM) runSliceDispatch(t *Thread, target SliceTarget) error {
	if vm.dispatch == DispatchSwitch || vm.pairs != nil {
		return vm.runSlice(t, target)
	}
	return vm.runThreaded(t, target)
}
