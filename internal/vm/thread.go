// Package vm implements the FTVM execution core: the set of bytecode
// execution engines (BEEs, §3) — one per application thread — driven by a
// cooperative green-thread scheduler on a single goroutine, with Java-style
// monitors (reentrant locks, wait sets, notify), virtual thread ids, branch
// counting, and the event/control interfaces (Coordinator) that the
// replication layer plugs into.
package vm

import (
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/heap"
)

// ThreadState is the scheduling state of a thread.
type ThreadState uint8

// Thread states.
const (
	// StateRunnable threads may be scheduled.
	StateRunnable ThreadState = iota + 1
	// StateBlocked threads are contending for a monitor; they become
	// runnable again when it is released and then re-execute the acquire.
	StateBlocked
	// StateWaiting threads sit in a monitor's wait set until notified.
	StateWaiting
	// StateGated threads are held back by the replay coordinator until
	// their recorded turn arrives (§4.2 recovery).
	StateGated
	// StateDead threads have finished.
	StateDead
)

func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateWaiting:
		return "waiting"
	case StateGated:
		return "gated"
	case StateDead:
		return "dead"
	default:
		return "invalid"
	}
}

// Frame is one activation record of a BEE.
type Frame struct {
	Method int32
	PC     int32
	Locals []heap.Value
	Stack  []heap.Value
	// finalizer marks frames pushed to run an object finalizer after GC.
	finalizer bool
}

func (f *Frame) push(v heap.Value) { f.Stack = append(f.Stack, v) }

func (f *Frame) pop() heap.Value {
	v := f.Stack[len(f.Stack)-1]
	f.Stack = f.Stack[:len(f.Stack)-1]
	return v
}

func (f *Frame) top() *heap.Value { return &f.Stack[len(f.Stack)-1] }

// Thread is one BEE: a virtual thread id, a frame stack, scheduling state,
// and the progress counters replica coordination needs (br_cnt, mon_cnt,
// t_asn, per-thread native and output sequence numbers).
type Thread struct {
	// Slot is the index in the VM's thread table (not stable across
	// replicas — use VTID for cross-replica identity).
	Slot int32
	// VTID is the virtual thread id: the parent's id plus the relative
	// order of creation among siblings ("0", "0.1", "0.1.2", …), which is
	// identical at primary and backup regardless of scheduling (§4.2).
	VTID string
	// Ref is the heap thread-handle object.
	Ref heap.Ref

	childCount int

	frames []Frame
	state  ThreadState

	// blockedOn is the monitor this thread contends for (StateBlocked),
	// waits on (StateWaiting) or is gated on (StateGated, may be nil when
	// gated on an id-map assignment).
	blockedOn *Monitor
	// reacquiring marks a thread resuming from wait: the re-executed OpWait
	// acquires the monitor and restores savedEntries instead of waiting.
	reacquiring  bool
	savedEntries int
	// waitLASN is the monitor's acquire sequence number observed when this
	// thread blocked (cross-checked against scheduling records).
	waitLASN uint64

	// finishing marks that the synthetic $finish method has been pushed.
	finishing bool
	// logicallyDead is set by OpMarkDead inside $finish (under the thread
	// object's monitor), making OpAlive race-free.
	logicallyDead bool
	// finalizerDepth counts active finalizer frames; while positive the
	// thread must not use monitors, spawn threads or call intercepted
	// natives (the deterministic-finalizer assumption of §4.3, enforced).
	finalizerDepth int

	yielded bool

	// Progress is the per-bytecode snapshot published when the VM runs
	// with TrackProgress (replicated thread scheduling).
	Progress ProgressSnapshot

	// Progress counters (§4.2).
	BrCnt  uint64 // control-flow changes executed
	MonCnt uint64 // monitor acquisitions + releases
	TASN   uint64 // locks acquired so far (thread acquire sequence number)
	NatSeq uint64 // intercepted native invocations so far
	OutSeq uint64 // output sequence number (per-thread, deterministic)
}

// State returns the scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Top returns the active frame (nil when the thread has no frames).
func (t *Thread) Top() *Frame {
	if len(t.frames) == 0 {
		return nil
	}
	return &t.frames[len(t.frames)-1]
}

// Depth returns the call depth.
func (t *Thread) Depth() int { return len(t.frames) }

// BlockedOn returns the monitor the thread is blocked/waiting/gated on.
func (t *Thread) BlockedOn() *Monitor { return t.blockedOn }

// pushFrame activates m with args as its leading locals. Popped frame slots
// keep their Locals/Stack arrays so a call following a return reuses them
// instead of allocating; args may alias the caller's operand stack — it is
// fully copied before this returns. The GC only scans live frames, so the
// retained arrays never keep garbage alive past the next push.
func (t *Thread) pushFrame(m *bytecode.Method, method int32, args []heap.Value) {
	n := len(t.frames)
	if n < cap(t.frames) {
		t.frames = t.frames[:n+1]
	} else {
		t.frames = append(t.frames, Frame{})
	}
	f := &t.frames[n]
	f.Method = method
	f.PC = 0
	f.finalizer = false
	if cap(f.Locals) >= m.NLocals {
		f.Locals = f.Locals[:m.NLocals]
	} else {
		f.Locals = make([]heap.Value, m.NLocals)
	}
	filled := copy(f.Locals, args)
	for i := filled; i < m.NLocals; i++ {
		f.Locals[i] = heap.Null()
	}
	if f.Stack == nil {
		f.Stack = make([]heap.Value, 0, 8)
	} else {
		f.Stack = f.Stack[:0]
	}
}

func (t *Thread) popFrame() Frame {
	f := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	return f
}

func childVTID(parent *Thread) string {
	parent.childCount++
	return parent.VTID + "." + strconv.Itoa(parent.childCount)
}

// ProgressSnapshot is the thread-object progress record maintained after
// every bytecode under TrackProgress (§4.2). Chk is a rolling checksum of
// the thread's control path (every pc visited); the backup cross-checks it
// at each replayed switch, so divergence anywhere inside a scheduling
// interval is caught, not just divergence of the interval endpoints.
type ProgressSnapshot struct {
	Method int32
	PC     int32
	BrCnt  uint64
	MonCnt uint64
	Chk    uint64
}
