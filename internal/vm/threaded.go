package vm

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/heap"
)

// The subroutine-threaded engine (Options.Dispatch = threaded, the default).
//
// Each predecoded method is compiled once, at VM construction, into an array
// of per-slot closures (tmethod.code): one specialized closure per resolved
// instruction, indexed by pc exactly like the RInstr stream it was compiled
// from. The driver (runThreaded) executes a basic block as
//
//	for code[c.pc](c) {}
//
// so straight-line code pays one indirect call per superinstruction group and
// nothing else: no opcode switch, no per-instruction kill/budget/replay
// checks. A closure returns true to stay in the block and false at a
// boundary — a branch was executed, the op needs the outer loop (frame
// change, blocking, possible GC), or it faulted.
//
// Two compilations exist per method. tcode is built from Resolved.Wide (the
// wide-fusion superinstruction stream) and runs untracked fast slices; tslow
// is built from Resolved.Methods (the faithful one-op-per-bytecode stream)
// and runs progress-tracked and exact-replay slices, publishing the §4.2
// progress snapshot and checksum after every bytecode exactly like the
// switch loop's slow path.
//
// Epoch-based branch counter. The kill flag, the preemption target and the
// instruction budget are checked only at block boundaries (every loop
// contains a branch, so the latency is bounded), even in progress-tracked
// mode. Within a block br_cnt cannot change (only branch-flagged
// instructions bump it, and every branch ends its block), and budget targets
// lie strictly above the entry br_cnt, so the block-boundary check stops the
// slice at exactly the same instruction as the historical per-instruction
// check. Two cases genuinely need per-instruction resolution, and both are
// delegated to the reference switch engine (runSlice) at a boundary, which
// makes them bit-identical by construction:
//
//   - exact replay epochs: while t.BrCnt < target.Br no stop position can
//     match, so the threaded engine runs freely; the boundary that reaches
//     the recorded branch count hands the slice tail to runSlice, which does
//     the per-instruction (method, pc) stop checks;
//   - budget exhaustion: when fewer than one method body's worth of budget
//     remains (tmethod.margin), the slice tail runs under runSlice, whose
//     per-dispatch check faults at exactly the historical instruction — even
//     mid-fused-pair.
//
// Fault identity. A wide group that faults materializes the unfused state
// first — the lead pushes it folded, the pc of the faulting instruction, the
// instructions completed before the fault — so a fatal error reports the
// same position and counters as the faithful stream. (The pair tier keeps
// the switch engine's pair fault behavior: the folded push is counted but
// not materialized.)

// tclosure executes one resolved instruction (or superinstruction group).
// It returns true to continue the current basic block, false at a boundary.
type tclosure func(c *tctx) bool

// tmethod is one method's threaded compilation.
type tmethod struct {
	code []tclosure
	// margin is the near-budget delegation threshold: one straight-line pass
	// cannot execute more than len(code) instructions, so while
	// icnt+margin <= cap the block cannot exhaust the budget.
	margin uint64
}

// tctx is the threaded execution state, cached in registers by the closure
// bodies the same way runSlice caches the frame. One per VM, reused across
// slices (the hot loop allocates nothing).
type tctx struct {
	vm     *VM
	t      *Thread
	f      *Frame
	locals []heap.Value
	stack  []heap.Value
	pc     int32
	icnt   uint64
	err    error
	// brk: leave the inner loop after this boundary (frame change, blocking,
	// allocation that tripped the GC threshold, yield, halt).
	brk bool
	// flushed: the frame already holds the truth; the driver must not write
	// the cached pc/stack back (they may be stale after a frame change).
	flushed bool
	// branch: the boundary was caused by a branch-counted instruction.
	branch bool
	// brTarget/icap are the slice's epoch limits, hoisted so pure branch
	// closures can stay inside the dispatch loop: brTarget is target.Br, icap
	// the near-budget delegation threshold (cap minus the method margin).
	brTarget uint64
	icap     uint64
}

// branchTick counts a branch exactly like the switch loop's dispatch header.
func (c *tctx) branchTick() {
	c.t.BrCnt++
	c.vm.stats.Branches++
	c.branch = true
}

// step finishes a successfully executed single instruction: count it and, in
// tracked mode, publish the §4.2 progress indicators. exit=true ends the
// block (branch or brk op).
func (c *tctx) step(exit bool) bool {
	c.icnt++
	if c.vm.trackProgress {
		c.publish()
	}
	return !exit
}

// contBr is the epoch check at a pure branch boundary. Nothing outside the
// interpreter can observe state between branches unless the slice target or
// the budget epoch arrived, or a kill was requested — so when none of those
// hold, execution stays inside the dispatch loop and the whole check costs
// two compares and the kill poll. Ops that change frames, block, allocate or
// fault always exit to the driver instead.
func (c *tctx) contBr() bool {
	return c.t.BrCnt < c.brTarget && c.icnt <= c.icap && !c.vm.killed.Load()
}

// stepBr finishes a successfully executed single branch instruction.
func (c *tctx) stepBr() bool {
	c.icnt++
	if c.vm.trackProgress {
		c.publish()
	}
	return c.contBr()
}

// publish mirrors the switch loop's slow-path bookkeeping: flush the frame
// (unless an op that handed the frame to a helper already did), then publish
// the progress snapshot and fold the position into the control-path checksum.
func (c *tctx) publish() {
	if !c.flushed {
		c.f.PC, c.f.Stack = c.pc, c.stack
	}
	t := c.t
	if tf := t.Top(); tf != nil {
		t.Progress.Method = tf.Method
		t.Progress.PC = tf.PC
	} else {
		t.Progress.Method = -1
		t.Progress.PC = -1
	}
	t.Progress.BrCnt = t.BrCnt
	t.Progress.MonCnt = t.MonCnt
	t.Progress.Chk = t.Progress.Chk*1099511628211 ^
		(uint64(uint32(t.Progress.Method))<<32 | uint64(uint32(t.Progress.PC)))
}

// runThreaded executes one scheduling slice on the threaded engine. The
// boundary checks run in the switch loop's historical order (error, kill,
// preemption target, yield, brk), so every stop lands on the same
// instruction with the same flushed state.
func (vm *VM) runThreaded(t *Thread, target SliceTarget) error {
	capv := vm.instrCap
	if capv == 0 {
		capv = ^uint64(0)
	}
	streams := vm.tcode
	if vm.trackProgress || target.Exact {
		streams = vm.tslow
	}
	c := &vm.tc
	c.vm = vm
	c.t = t
	c.icnt = vm.stats.Instructions
	c.brTarget = target.Br
	for {
		if vm.halted || t.state != StateRunnable || vm.killed.Load() {
			vm.stats.Instructions = c.icnt
			return nil
		}
		if target.Exact && t.BrCnt >= target.Br {
			// Inside the stop epoch (or past it): the slice tail needs
			// per-instruction stop-position checks. Delegate to the
			// reference engine.
			vm.stats.Instructions = c.icnt
			return vm.runSlice(t, target)
		}
		if vm.hp.NeedsGC() {
			if err := vm.runGC(t); err != nil {
				vm.stats.Instructions = c.icnt
				return vm.fatal(t, err)
			}
		}
		f := &t.frames[len(t.frames)-1]
		tm := &streams[f.Method]
		if c.icnt+tm.margin > capv {
			// Near the instruction budget: the reference engine's
			// per-dispatch check decides the exact faulting instruction.
			vm.stats.Instructions = c.icnt
			return vm.runSlice(t, target)
		}
		c.icap = capv - tm.margin
		c.f = f
		c.locals = f.Locals
		c.stack = f.Stack
		c.pc = f.PC
		code := tm.code
	inner:
		for {
			for code[c.pc](c) {
			}
			flushed, brk, branch := c.flushed, c.brk, c.branch
			c.flushed, c.brk, c.branch = false, false, false
			if c.err != nil {
				vm.stats.Instructions = c.icnt
				if !flushed {
					f.PC, f.Stack = c.pc, c.stack
				}
				err := c.err
				c.err = nil
				return vm.fatal(t, err)
			}
			if vm.killed.Load() {
				vm.stats.Instructions = c.icnt
				if !flushed {
					f.PC, f.Stack = c.pc, c.stack
				}
				return nil
			}
			if target.Exact {
				if t.BrCnt >= target.Br {
					vm.stats.Instructions = c.icnt
					if !flushed {
						f.PC, f.Stack = c.pc, c.stack
					}
					return vm.runSlice(t, target)
				}
			} else if branch && t.BrCnt >= target.Br {
				vm.stats.Instructions = c.icnt
				if !flushed {
					f.PC, f.Stack = c.pc, c.stack
				}
				return nil
			}
			if t.yielded {
				t.yielded = false
				vm.stats.Instructions = c.icnt
				if !flushed {
					f.PC, f.Stack = c.pc, c.stack
				}
				return nil
			}
			if brk {
				if !flushed {
					f.PC, f.Stack = c.pc, c.stack
				}
				break inner
			}
			if c.icnt+tm.margin > capv {
				f.PC, f.Stack = c.pc, c.stack
				vm.stats.Instructions = c.icnt
				return vm.runSlice(t, target)
			}
		}
	}
}

// compileThreaded compiles one resolved stream set (per-method, index-aligned
// with prog.Methods; nil for natives) into closure arrays.
func (vm *VM) compileThreaded(streams [][]bytecode.RInstr) []tmethod {
	out := make([]tmethod, len(streams))
	for mi, code := range streams {
		if code == nil {
			continue
		}
		cl := make([]tclosure, len(code))
		for pc := range code {
			cl[pc] = vm.compileOp(code[pc])
		}
		out[mi] = tmethod{code: cl, margin: uint64(len(code)) + 16}
	}
	return out
}

// aluFn returns the integer ALU function of a base opcode (wide-fusion set).
func aluFn(op bytecode.Opcode) func(a, b int64) int64 {
	switch op {
	case bytecode.OpIAdd:
		return func(a, b int64) int64 { return a + b }
	case bytecode.OpISub:
		return func(a, b int64) int64 { return a - b }
	case bytecode.OpIMul:
		return func(a, b int64) int64 { return a * b }
	case bytecode.OpIAnd:
		return func(a, b int64) int64 { return a & b }
	case bytecode.OpIOr:
		return func(a, b int64) int64 { return a | b }
	case bytecode.OpIXor:
		return func(a, b int64) int64 { return a ^ b }
	case bytecode.OpIShl:
		return func(a, b int64) int64 { return a << (uint64(b) & 63) }
	case bytecode.OpIShr:
		return func(a, b int64) int64 { return a >> (uint64(b) & 63) }
	default:
		panic("threaded: not a wide ALU op: " + op.String())
	}
}

// pairALU lists the pair-fusion tier's ALU set in fuseDelta allocation order
// (OpIAddC+d / OpIAddL+d): add, sub, mul, div, rem, and, or, xor, shl, shr,
// icmp. div marks the divide-by-zero fault path.
var pairALU = [...]struct {
	fn  func(a, b int64) int64
	div bool
}{
	{func(a, b int64) int64 { return a + b }, false},
	{func(a, b int64) int64 { return a - b }, false},
	{func(a, b int64) int64 { return a * b }, false},
	{func(a, b int64) int64 { return a / b }, true},
	{func(a, b int64) int64 { return a % b }, true},
	{func(a, b int64) int64 { return a & b }, false},
	{func(a, b int64) int64 { return a | b }, false},
	{func(a, b int64) int64 { return a ^ b }, false},
	{func(a, b int64) int64 { return a << (uint64(b) & 63) }, false},
	{func(a, b int64) int64 { return a >> (uint64(b) & 63) }, false},
	{cmpInt, false},
}

// relFn returns the boolean relation a compare idiom computes: the unfused
// icmp + arithmetic epilogue pushes exactly 1 when the relation holds and 0
// otherwise, so evaluating it directly is bit-identical.
func relFn(rel bytecode.WideRel) func(a, b int64) bool {
	switch rel {
	case bytecode.RelLt:
		return func(a, b int64) bool { return a < b }
	case bytecode.RelGe:
		return func(a, b int64) bool { return a >= b }
	case bytecode.RelGt:
		return func(a, b int64) bool { return a > b }
	case bytecode.RelLe:
		return func(a, b int64) bool { return a <= b }
	case bytecode.RelEq:
		return func(a, b int64) bool { return a == b }
	case bytecode.RelNe:
		return func(a, b int64) bool { return a != b }
	default:
		panic("threaded: no relation")
	}
}

// compileOp builds the closure for one resolved instruction.
func (vm *VM) compileOp(in bytecode.RInstr) tclosure {
	if wi, ok := bytecode.WideOpInfo(in.Op); ok {
		return vm.compileWide(in, wi)
	}
	if in.Op >= bytecode.OpIAddC && in.Op <= bytecode.OpICmpL {
		return compilePair(in)
	}
	return vm.compileBase(in)
}

// compilePair builds the pair-fusion tier closures (iconst/load + ALU in one
// dispatch). Fault accounting matches the switch engine's pair cases: the
// folded push is counted (icnt+1) before any error.
func compilePair(in bytecode.RInstr) tclosure {
	if in.Op >= bytecode.OpIAddL {
		p := pairALU[in.Op-bytecode.OpIAddL]
		slot := in.A
		fn, div := p.fn, p.div
		return func(c *tctx) bool {
			n := len(c.stack)
			a, b := c.stack[n-1], c.locals[slot]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.icnt++
				c.err = intOpErr(a, b)
				return false
			}
			if div && b.I == 0 {
				c.icnt++
				c.err = errDivByZero
				return false
			}
			c.stack[n-1] = heap.IntVal(fn(a.I, b.I))
			c.pc += 2
			c.icnt += 2
			return true
		}
	}
	p := pairALU[in.Op-bytecode.OpIAddC]
	k := in.I
	fn, div := p.fn, p.div
	return func(c *tctx) bool {
		n := len(c.stack)
		a := c.stack[n-1]
		if a.Kind != heap.KindInt {
			c.icnt++
			c.err = notInt(a)
			return false
		}
		if div && k == 0 {
			c.icnt++
			c.err = errDivByZero
			return false
		}
		c.stack[n-1] = heap.IntVal(fn(a.I, k))
		c.pc += 2
		c.icnt += 2
		return true
	}
}

// compileWide builds the wide superinstruction closures. Success paths fold
// the whole group into one dispatch and count its full width; fault paths
// materialize the unfused state (lead pushes, faulting pc, completed count)
// so fatal errors are indistinguishable from the faithful stream's.
func (vm *VM) compileWide(in bytecode.RInstr, wi bytecode.WideInfo) tclosure {
	w := uint64(wi.Width)
	switch wi.Shape {
	case bytecode.WShapeLC:
		slot, k := in.A, heap.IntVal(in.I)
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.locals[slot], k)
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeLL:
		sa, sb := in.A, in.B
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.locals[sa], c.locals[sb])
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeGetsL:
		gs, slot := in.A, in.B
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.vm.statics[gs], c.locals[slot])
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeLGets:
		slot, gs := in.A, in.B
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.locals[slot], c.vm.statics[gs])
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeStL:
		st, ld := in.A, in.B
		return func(c *tctx) bool {
			n := len(c.stack) - 1
			c.locals[st] = c.stack[n]
			c.stack[n] = c.locals[ld]
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeStJmp:
		st, tgt := in.A, in.B
		return func(c *tctx) bool {
			n := len(c.stack) - 1
			c.locals[st] = c.stack[n]
			c.stack = c.stack[:n]
			c.branchTick()
			c.pc = tgt
			c.icnt += 2
			return c.contBr()
		}
	case bytecode.WShapeAluSt:
		fn, st := aluFn(wi.ALU), in.A
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			c.locals[st] = heap.IntVal(fn(a.I, b.I))
			c.stack = c.stack[:n-2]
			c.pc += 2
			c.icnt += 2
			return true
		}
	case bytecode.WShapeLCAlu:
		fn, slot, k := aluFn(wi.ALU), in.A, in.I
		kv := heap.IntVal(k)
		return func(c *tctx) bool {
			a := c.locals[slot]
			if a.Kind != heap.KindInt {
				c.stack = append(c.stack, a, kv)
				c.pc += 2
				c.icnt += 2
				c.err = notInt(a)
				return false
			}
			c.stack = append(c.stack, heap.IntVal(fn(a.I, k)))
			c.pc += 3
			c.icnt += 3
			return true
		}
	case bytecode.WShapeLLAlu:
		fn, sa, sb := aluFn(wi.ALU), in.A, in.B
		return func(c *tctx) bool {
			a, b := c.locals[sa], c.locals[sb]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.stack = append(c.stack, a, b)
				c.pc += 2
				c.icnt += 2
				c.err = intOpErr(a, b)
				return false
			}
			c.stack = append(c.stack, heap.IntVal(fn(a.I, b.I)))
			c.pc += 3
			c.icnt += 3
			return true
		}
	case bytecode.WShapeCAluSt:
		fn, k, st := aluFn(wi.ALU), in.I, in.A
		kv := heap.IntVal(k)
		return func(c *tctx) bool {
			n := len(c.stack)
			a := c.stack[n-1]
			if a.Kind != heap.KindInt {
				c.stack = append(c.stack, kv)
				c.pc++
				c.icnt++
				c.err = notInt(a)
				return false
			}
			c.locals[st] = heap.IntVal(fn(a.I, k))
			c.stack = c.stack[:n-1]
			c.pc += 3
			c.icnt += 3
			return true
		}
	case bytecode.WShapeLAluSt:
		fn, ld, st := aluFn(wi.ALU), in.B, in.A
		return func(c *tctx) bool {
			n := len(c.stack)
			a, b := c.stack[n-1], c.locals[ld]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.stack = append(c.stack, b)
				c.pc++
				c.icnt++
				c.err = intOpErr(a, b)
				return false
			}
			c.stack[n-1] = heap.IntVal(fn(a.I, b.I))
			c.locals[st] = c.stack[n-1]
			c.stack = c.stack[:n-1]
			c.pc += 3
			c.icnt += 3
			return true
		}
	case bytecode.WShapeLCAluSt:
		fn, slot, k, st := aluFn(wi.ALU), in.A, in.I, in.B
		kv := heap.IntVal(k)
		return func(c *tctx) bool {
			a := c.locals[slot]
			if a.Kind != heap.KindInt {
				c.stack = append(c.stack, a, kv)
				c.pc += 2
				c.icnt += 2
				c.err = notInt(a)
				return false
			}
			c.locals[st] = heap.IntVal(fn(a.I, k))
			c.pc += 4
			c.icnt += 4
			return true
		}
	case bytecode.WShapeLLAluSt:
		fn, sa, sb, st := aluFn(wi.ALU), in.A, in.B, int32(in.I)
		return func(c *tctx) bool {
			a, b := c.locals[sa], c.locals[sb]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.stack = append(c.stack, a, b)
				c.pc += 2
				c.icnt += 2
				c.err = intOpErr(a, b)
				return false
			}
			c.locals[st] = heap.IntVal(fn(a.I, b.I))
			c.pc += 4
			c.icnt += 4
			return true
		}
	case bytecode.WShapeCmpBr:
		rel, jnz, tgt := relFn(wi.Rel), wi.JmpNZ, in.A
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			c.stack = c.stack[:n-2]
			c.branchTick()
			if rel(a.I, b.I) == jnz {
				c.pc = tgt
			} else {
				c.pc += int32(w)
			}
			c.icnt += w
			return c.contBr()
		}
	case bytecode.WShapeCmpV:
		rel := relFn(wi.Rel)
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			c.stack[n-2] = heap.BoolVal(rel(a.I, b.I))
			c.stack = c.stack[:n-1]
			c.pc += int32(w)
			c.icnt += w
			return true
		}
	case bytecode.WShapeLCCmpBr:
		rel, jnz, slot, k, tgt := relFn(wi.Rel), wi.JmpNZ, in.A, in.I, in.B
		kv := heap.IntVal(k)
		return func(c *tctx) bool {
			a := c.locals[slot]
			if a.Kind != heap.KindInt {
				c.stack = append(c.stack, a, kv)
				c.pc += 2
				c.icnt += 2
				c.err = notInt(a)
				return false
			}
			c.branchTick()
			if rel(a.I, k) == jnz {
				c.pc = tgt
			} else {
				c.pc += int32(w)
			}
			c.icnt += w
			return c.contBr()
		}
	case bytecode.WShapeLLCmpBr:
		rel, jnz, sa, sb, tgt := relFn(wi.Rel), wi.JmpNZ, in.A, in.B, int32(in.I)
		return func(c *tctx) bool {
			a, b := c.locals[sa], c.locals[sb]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.stack = append(c.stack, a, b)
				c.pc += 2
				c.icnt += 2
				c.err = intOpErr(a, b)
				return false
			}
			c.branchTick()
			if rel(a.I, b.I) == jnz {
				c.pc = tgt
			} else {
				c.pc += int32(w)
			}
			c.icnt += w
			return c.contBr()
		}
	default:
		panic(fmt.Sprintf("threaded: unhandled wide shape %d", wi.Shape))
	}
}

// compileBase builds the closure for a base (unfused) opcode. Each body is a
// direct transcription of the corresponding runSlice case; step() supplies
// the shared post-instruction bookkeeping (count, tracked-mode publication).
func (vm *VM) compileBase(in bytecode.RInstr) tclosure {
	switch in.Op {
	case bytecode.OpNop:
		return func(c *tctx) bool {
			c.pc++
			return c.step(false)
		}
	case bytecode.OpIConst:
		v := heap.IntVal(in.I)
		return func(c *tctx) bool {
			c.stack = append(c.stack, v)
			c.pc++
			return c.step(false)
		}
	case bytecode.OpFConst:
		v := heap.FloatVal(in.F)
		return func(c *tctx) bool {
			c.stack = append(c.stack, v)
			c.pc++
			return c.step(false)
		}
	case bytecode.OpSConst:
		// Pre-interned at load time (compileThreaded runs after interning):
		// the ref is captured here, so executing sconst never allocates.
		v := heap.RefVal(vm.interned[in.A])
		return func(c *tctx) bool {
			c.stack = append(c.stack, v)
			c.pc++
			return c.step(false)
		}
	case bytecode.OpNull:
		return func(c *tctx) bool {
			c.stack = append(c.stack, heap.Null())
			c.pc++
			return c.step(false)
		}
	case bytecode.OpPop:
		return func(c *tctx) bool {
			c.stack = c.stack[:len(c.stack)-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpDup:
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.stack[len(c.stack)-1])
			c.pc++
			return c.step(false)
		}
	case bytecode.OpSwap:
		return func(c *tctx) bool {
			n := len(c.stack)
			c.stack[n-1], c.stack[n-2] = c.stack[n-2], c.stack[n-1]
			c.pc++
			return c.step(false)
		}

	case bytecode.OpLoad:
		slot := in.A
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.locals[slot])
			c.pc++
			return c.step(false)
		}
	case bytecode.OpStore:
		slot := in.A
		return func(c *tctx) bool {
			n := len(c.stack) - 1
			c.locals[slot] = c.stack[n]
			c.stack = c.stack[:n]
			c.pc++
			return c.step(false)
		}

	case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul, bytecode.OpIAnd,
		bytecode.OpIOr, bytecode.OpIXor, bytecode.OpIShl, bytecode.OpIShr:
		fn := aluFn(in.Op)
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			c.stack[n-2] = heap.IntVal(fn(a.I, b.I))
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpIDiv, bytecode.OpIRem:
		rem := in.Op == bytecode.OpIRem
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			if b.I == 0 {
				c.err = errDivByZero
				return false
			}
			if rem {
				c.stack[n-2] = heap.IntVal(a.I % b.I)
			} else {
				c.stack[n-2] = heap.IntVal(a.I / b.I)
			}
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpINeg:
		return func(c *tctx) bool {
			n := len(c.stack)
			a := c.stack[n-1]
			if a.Kind != heap.KindInt {
				c.err = notInt(a)
				return false
			}
			c.stack[n-1] = heap.IntVal(-a.I)
			c.pc++
			return c.step(false)
		}

	case bytecode.OpFAdd, bytecode.OpFSub, bytecode.OpFMul, bytecode.OpFDiv:
		op := in.Op
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
				c.err = floatOpErr(a, b)
				return false
			}
			var r float64
			switch op {
			case bytecode.OpFAdd:
				r = a.F + b.F
			case bytecode.OpFSub:
				r = a.F - b.F
			case bytecode.OpFMul:
				r = a.F * b.F
			default:
				r = a.F / b.F
			}
			c.stack[n-2] = heap.FloatVal(r)
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpFNeg:
		return func(c *tctx) bool {
			n := len(c.stack)
			a := c.stack[n-1]
			if a.Kind != heap.KindFloat {
				c.err = notFloat(a)
				return false
			}
			c.stack[n-1] = heap.FloatVal(-a.F)
			c.pc++
			return c.step(false)
		}

	case bytecode.OpI2F:
		return func(c *tctx) bool {
			n := len(c.stack)
			a := c.stack[n-1]
			if a.Kind != heap.KindInt {
				c.err = notInt(a)
				return false
			}
			c.stack[n-1] = heap.FloatVal(float64(a.I))
			c.pc++
			return c.step(false)
		}
	case bytecode.OpF2I:
		return func(c *tctx) bool {
			n := len(c.stack)
			a := c.stack[n-1]
			if a.Kind != heap.KindFloat {
				c.err = notFloat(a)
				return false
			}
			c.stack[n-1] = heap.IntVal(int64(a.F))
			c.pc++
			return c.step(false)
		}

	case bytecode.OpICmp:
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
				c.err = intOpErr(a, b)
				return false
			}
			c.stack[n-2] = heap.IntVal(cmpInt(a.I, b.I))
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpFCmp:
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
				c.err = floatOpErr(a, b)
				return false
			}
			var res int64
			switch {
			case a.F < b.F:
				res = -1
			case a.F > b.F:
				res = 1
			}
			c.stack[n-2] = heap.IntVal(res)
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpSCmp:
		return func(c *tctx) bool {
			n := len(c.stack)
			sb, serr := c.vm.strAt(c.stack[n-1])
			if serr != nil {
				c.err = serr
				return false
			}
			sa, serr := c.vm.strAt(c.stack[n-2])
			if serr != nil {
				c.err = serr
				return false
			}
			var res int64
			switch {
			case sa < sb:
				res = -1
			case sa > sb:
				res = 1
			}
			c.stack[n-2] = heap.IntVal(res)
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpRefEq:
		return func(c *tctx) bool {
			n := len(c.stack)
			b, a := c.stack[n-1], c.stack[n-2]
			if b.Kind != heap.KindRef {
				c.err = notRef(b)
				return false
			}
			if a.Kind != heap.KindRef {
				c.err = notRef(a)
				return false
			}
			c.stack[n-2] = heap.BoolVal(a.R == b.R)
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}

	case bytecode.OpJmp:
		tgt := in.A
		return func(c *tctx) bool {
			c.branchTick()
			c.pc = tgt
			return c.stepBr()
		}
	case bytecode.OpJz, bytecode.OpJnz:
		tgt, nz := in.A, in.Op == bytecode.OpJnz
		return func(c *tctx) bool {
			c.branchTick()
			n := len(c.stack)
			v := c.stack[n-1]
			if v.Kind != heap.KindInt {
				c.err = notInt(v)
				return false
			}
			c.stack = c.stack[:n-1]
			if (v.I != 0) == nz {
				c.pc = tgt
			} else {
				c.pc++
			}
			return c.stepBr()
		}

	case bytecode.OpCall:
		mi := in.A
		return func(c *tctx) bool {
			c.branchTick()
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			if err := c.vm.doCall(c.t, f, mi); err != nil {
				c.err = err
				return false
			}
			return c.step(true)
		}
	case bytecode.OpRet, bytecode.OpRetV:
		hasVal := in.Op == bytecode.OpRetV
		return func(c *tctx) bool {
			c.branchTick()
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			if err := c.vm.doReturn(c.t, hasVal); err != nil {
				c.err = err
				return false
			}
			return c.step(true)
		}

	case bytecode.OpNew:
		cls, nf, fin := in.A, int(in.I), in.B != 0
		return func(c *tctx) bool {
			r, aerr := c.vm.hp.AllocRecord(cls, nf, fin)
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack = append(c.stack, heap.RefVal(r))
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpGetF:
		fld := int(in.A)
		return func(c *tctx) bool {
			n := len(c.stack)
			rv := c.stack[n-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			v, gerr := c.vm.hp.GetField(rv.R, fld)
			if gerr != nil {
				c.err = gerr
				return false
			}
			c.stack[n-1] = v
			c.pc++
			return c.step(false)
		}
	case bytecode.OpPutF:
		fld := int(in.A)
		return func(c *tctx) bool {
			n := len(c.stack)
			v, rv := c.stack[n-1], c.stack[n-2]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			if serr := c.vm.hp.SetField(rv.R, fld, v); serr != nil {
				c.err = serr
				return false
			}
			c.stack = c.stack[:n-2]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpGetS:
		slot := in.A
		return func(c *tctx) bool {
			c.stack = append(c.stack, c.vm.statics[slot])
			c.pc++
			return c.step(false)
		}
	case bytecode.OpPutS:
		slot := in.A
		return func(c *tctx) bool {
			n := len(c.stack) - 1
			c.vm.statics[slot] = c.stack[n]
			c.stack = c.stack[:n]
			c.pc++
			return c.step(false)
		}

	case bytecode.OpNewArr:
		kind := in.A
		return func(c *tctx) bool {
			n := len(c.stack)
			nv := c.stack[n-1]
			if nv.Kind != heap.KindInt {
				c.err = notInt(nv)
				return false
			}
			var r heap.Ref
			var aerr error
			switch kind {
			case bytecode.ElemInt:
				r, aerr = c.vm.hp.AllocIntArr(int(nv.I))
			case bytecode.ElemFloat:
				r, aerr = c.vm.hp.AllocFloatArr(int(nv.I))
			default:
				r, aerr = c.vm.hp.AllocRefArr(int(nv.I))
			}
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-1] = heap.RefVal(r)
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpALoad:
		return func(c *tctx) bool {
			n := len(c.stack)
			iv, rv := c.stack[n-1], c.stack[n-2]
			if iv.Kind != heap.KindInt {
				c.err = notInt(iv)
				return false
			}
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			v, gerr := c.vm.hp.ArrGet(rv.R, int(iv.I))
			if gerr != nil {
				c.err = gerr
				return false
			}
			c.stack[n-2] = v
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpAStore:
		return func(c *tctx) bool {
			n := len(c.stack)
			v, iv, rv := c.stack[n-1], c.stack[n-2], c.stack[n-3]
			if iv.Kind != heap.KindInt {
				c.err = notInt(iv)
				return false
			}
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			if serr := c.vm.hp.ArrSet(rv.R, int(iv.I), v); serr != nil {
				c.err = serr
				return false
			}
			c.stack = c.stack[:n-3]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpALen:
		return func(c *tctx) bool {
			n := len(c.stack)
			rv := c.stack[n-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			ln, gerr := c.vm.hp.ArrLen(rv.R)
			if gerr != nil {
				c.err = gerr
				return false
			}
			c.stack[n-1] = heap.IntVal(int64(ln))
			c.pc++
			return c.step(false)
		}

	default:
		return vm.compileBaseMisc(in)
	}
}

// compileBaseMisc continues compileBase: string, monitor, thread and
// lifecycle opcodes (cold relative to the ALU/control tier).
func (vm *VM) compileBaseMisc(in bytecode.RInstr) tclosure {
	switch in.Op {
	case bytecode.OpSLen:
		return func(c *tctx) bool {
			n := len(c.stack)
			s, serr := c.vm.strAt(c.stack[n-1])
			if serr != nil {
				c.err = serr
				return false
			}
			c.stack[n-1] = heap.IntVal(int64(len(s)))
			c.pc++
			return c.step(false)
		}
	case bytecode.OpSCat:
		return func(c *tctx) bool {
			n := len(c.stack)
			sb, serr := c.vm.strAt(c.stack[n-1])
			if serr != nil {
				c.err = serr
				return false
			}
			sa, serr := c.vm.strAt(c.stack[n-2])
			if serr != nil {
				c.err = serr
				return false
			}
			r, aerr := c.vm.hp.AllocString(sa + sb)
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-2] = heap.RefVal(r)
			c.stack = c.stack[:n-1]
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpSIdx:
		return func(c *tctx) bool {
			n := len(c.stack)
			iv := c.stack[n-1]
			if iv.Kind != heap.KindInt {
				c.err = notInt(iv)
				return false
			}
			s, serr := c.vm.strAt(c.stack[n-2])
			if serr != nil {
				c.err = serr
				return false
			}
			if iv.I < 0 || iv.I >= int64(len(s)) {
				c.err = fmt.Errorf("string index %d of %d: %w", iv.I, len(s), heap.ErrIndexOOB)
				return false
			}
			c.stack[n-2] = heap.IntVal(int64(s[iv.I]))
			c.stack = c.stack[:n-1]
			c.pc++
			return c.step(false)
		}
	case bytecode.OpSSub:
		return func(c *tctx) bool {
			n := len(c.stack)
			ev, sv := c.stack[n-1], c.stack[n-2]
			if ev.Kind != heap.KindInt {
				c.err = notInt(ev)
				return false
			}
			if sv.Kind != heap.KindInt {
				c.err = notInt(sv)
				return false
			}
			s, serr := c.vm.strAt(c.stack[n-3])
			if serr != nil {
				c.err = serr
				return false
			}
			start, end := sv.I, ev.I
			if start < 0 || end < start || end > int64(len(s)) {
				c.err = fmt.Errorf("substring [%d,%d) of %d: %w", start, end, len(s), heap.ErrIndexOOB)
				return false
			}
			r, aerr := c.vm.hp.AllocString(s[start:end])
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-3] = heap.RefVal(r)
			c.stack = c.stack[:n-2]
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpI2S:
		return func(c *tctx) bool {
			n := len(c.stack)
			av := c.stack[n-1]
			if av.Kind != heap.KindInt {
				c.err = notInt(av)
				return false
			}
			r, aerr := c.vm.hp.AllocString(strconv.FormatInt(av.I, 10))
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-1] = heap.RefVal(r)
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpF2S:
		return func(c *tctx) bool {
			n := len(c.stack)
			av := c.stack[n-1]
			if av.Kind != heap.KindFloat {
				c.err = notFloat(av)
				return false
			}
			r, aerr := c.vm.hp.AllocString(strconv.FormatFloat(av.F, 'g', -1, 64))
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-1] = heap.RefVal(r)
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpS2I:
		return func(c *tctx) bool {
			n := len(c.stack)
			s, serr := c.vm.strAt(c.stack[n-1])
			if serr != nil {
				c.err = serr
				return false
			}
			nv, perr := strconv.ParseInt(s, 10, 64)
			if perr != nil {
				nv = 0
			}
			c.stack[n-1] = heap.IntVal(nv)
			c.pc++
			return c.step(false)
		}
	case bytecode.OpChr:
		return func(c *tctx) bool {
			n := len(c.stack)
			av := c.stack[n-1]
			if av.Kind != heap.KindInt {
				c.err = notInt(av)
				return false
			}
			r, aerr := c.vm.hp.AllocString(string([]byte{byte(av.I)}))
			if aerr != nil {
				c.err = aerr
				return false
			}
			c.stack[n-1] = heap.RefVal(r)
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(c.brk)
		}
	case bytecode.OpHashStr:
		return func(c *tctx) bool {
			n := len(c.stack)
			s, serr := c.vm.strAt(c.stack[n-1])
			if serr != nil {
				c.err = serr
				return false
			}
			c.stack[n-1] = heap.IntVal(fnv64(s))
			c.pc++
			return c.step(false)
		}

	case bytecode.OpMEnter:
		return func(c *tctx) bool {
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			rv := c.stack[len(c.stack)-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			done, merr := c.vm.monEnter(c.t, rv.R)
			if merr != nil {
				c.err = merr
				return false
			}
			if done {
				f.Stack = f.Stack[:len(f.Stack)-1]
				f.PC = c.pc + 1
			}
			// Blocked or gated: PC unchanged, re-execute on resume.
			return c.step(true)
		}
	case bytecode.OpMExit:
		return func(c *tctx) bool {
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			rv := c.stack[len(c.stack)-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			f.Stack = f.Stack[:len(f.Stack)-1]
			if merr := c.vm.monExit(c.t, rv.R); merr != nil {
				c.err = merr
				return false
			}
			f.PC = c.pc + 1
			return c.step(true)
		}
	case bytecode.OpWait:
		return func(c *tctx) bool {
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			rv := c.stack[len(c.stack)-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			if c.t.reacquiring {
				done, rerr := c.vm.reacquireAfterWait(c.t, rv.R)
				if rerr != nil {
					c.err = rerr
					return false
				}
				if done {
					f.Stack = f.Stack[:len(f.Stack)-1] // wait completed
					f.PC = c.pc + 1
				}
			} else {
				c.vm.stats.WaitOps++
				if werr := c.vm.monWait(c.t, rv.R); werr != nil {
					c.err = werr
					return false
				}
				// Now waiting; PC unchanged.
			}
			return c.step(true)
		}
	case bytecode.OpNotify, bytecode.OpNotifyAll:
		nn := 1
		if in.Op == bytecode.OpNotifyAll {
			nn = -1
		}
		return func(c *tctx) bool {
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			rv := c.stack[len(c.stack)-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			f.Stack = f.Stack[:len(f.Stack)-1]
			c.vm.stats.NotifyOps++
			if merr := c.vm.monNotify(c.t, rv.R, nn); merr != nil {
				c.err = merr
				return false
			}
			f.PC = c.pc + 1
			return c.step(true)
		}

	case bytecode.OpSpawn:
		mi, nargs := in.A, int(in.B)
		return func(c *tctx) bool {
			c.branchTick()
			if c.t.finalizerDepth > 0 {
				c.err = errFinalizerSpawn()
				return false
			}
			base := len(c.stack) - nargs
			child, serr := c.vm.newThread(c.t, mi, c.stack[base:])
			if serr != nil {
				c.err = serr
				return false
			}
			c.stack = append(c.stack[:base], heap.RefVal(child.Ref))
			c.pc++
			c.brk = c.vm.hp.NeedsGC()
			return c.step(true)
		}
	case bytecode.OpJoin:
		return func(c *tctx) bool {
			c.branchTick()
			f := c.f
			f.PC, f.Stack = c.pc, c.stack
			c.flushed, c.brk = true, true
			rv := c.stack[len(c.stack)-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			if _, gerr := c.vm.hp.GetKind(rv.R, heap.ObjThread); gerr != nil {
				c.err = fmt.Errorf("join: %w", gerr)
				return false
			}
			f.Stack = f.Stack[:len(f.Stack)-1]
			f.PC = c.pc + 1 // return past the join
			c.t.pushFrame(c.vm.prog.Methods[c.vm.joinIdx], c.vm.joinIdx, []heap.Value{heap.RefVal(rv.R)})
			return c.step(true)
		}
	case bytecode.OpYield:
		return func(c *tctx) bool {
			c.t.yielded = true
			c.brk = true
			c.pc++
			return c.step(true)
		}
	case bytecode.OpAlive:
		return func(c *tctx) bool {
			n := len(c.stack)
			rv := c.stack[n-1]
			if rv.Kind != heap.KindRef {
				c.err = notRef(rv)
				return false
			}
			obj, gerr := c.vm.hp.GetKind(rv.R, heap.ObjThread)
			if gerr != nil {
				c.err = fmt.Errorf("alive: %w", gerr)
				return false
			}
			c.stack[n-1] = heap.BoolVal(!c.vm.threads[obj.Class].logicallyDead)
			c.pc++
			return c.step(false)
		}
	case bytecode.OpMarkDead:
		return func(c *tctx) bool {
			c.t.logicallyDead = true
			c.pc++
			return c.step(false)
		}

	case bytecode.OpHalt:
		return func(c *tctx) bool {
			c.pc++
			c.vm.halted = true
			c.brk = true
			return c.step(true)
		}

	default:
		err := fmt.Errorf("unimplemented opcode %s", in.Op)
		return func(c *tctx) bool {
			c.err = err
			return false
		}
	}
}

// errFinalizerSpawn is the cold-path error for OpSpawn inside a finalizer.
func errFinalizerSpawn() error {
	return errors.New("finalizer spawned a thread (violates §4.3 determinism assumption)")
}
