package vm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/heap"
)

// Inspection: a deterministic, human-readable rendering of the machine
// state — threads with their frame stacks, monitors with their owners and
// queues, statics, heap occupancy, and the console written so far. The
// debugger prints it at any replay position; the dual-engine equivalence
// gate compares it (and its checksum) between interpreter engines, so the
// rendering must be a pure function of VM state with a fixed iteration
// order everywhere.

// InspectReport is the rendered state plus its checksum.
type InspectReport struct {
	// Text is the full deterministic rendering.
	Text string
	// Checksum is FNV-1a over Text: a position fingerprint. Two replays of
	// the same log are at identical states iff their checksums match.
	Checksum uint64
	// Branches is the global position: the sum of every thread's branch
	// count (dead threads included; branch counts are never reset).
	Branches uint64
}

// Inspect renders the current state. The VM must be paused (between
// scheduler iterations) or halted.
func (vm *VM) Inspect() InspectReport {
	var b strings.Builder

	var global uint64
	for _, t := range vm.threads {
		global += t.BrCnt
	}
	fmt.Fprintf(&b, "position %d branches, %d threads, halted=%v\n", global, len(vm.threads), vm.halted)

	for _, t := range vm.threads {
		fmt.Fprintf(&b, "thread %s slot=%d state=%s br=%d mon=%d tasn=%d nat=%d out=%d",
			t.VTID, t.Slot, t.state, t.BrCnt, t.MonCnt, t.TASN, t.NatSeq, t.OutSeq)
		if t.blockedOn != nil {
			fmt.Fprintf(&b, " blockedOn=lid:%d", t.blockedOn.LID)
		}
		b.WriteByte('\n')
		for i := len(t.frames) - 1; i >= 0; i-- {
			f := &t.frames[i]
			fmt.Fprintf(&b, "  frame %d %s pc=%d", len(t.frames)-1-i, vm.methodName(f.Method), f.PC)
			if len(f.Locals) > 0 {
				b.WriteString(" locals=[")
				writeValues(&b, vm.hp, f.Locals)
				b.WriteByte(']')
			}
			if len(f.Stack) > 0 {
				b.WriteString(" stack=[")
				writeValues(&b, vm.hp, f.Stack)
				b.WriteByte(']')
			}
			b.WriteByte('\n')
		}
	}

	// Monitors in ascending heap-ref order; only interesting ones (assigned
	// an id, held, contended or waited on) — an unlocked never-used monitor
	// is not state.
	refs := make([]heap.Ref, 0, len(vm.monitors))
	for r, m := range vm.monitors {
		if m.LID >= 0 || m.owner != nil || len(m.queue) > 0 || len(m.waitSet) > 0 {
			refs = append(refs, r)
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, r := range refs {
		m := vm.monitors[r]
		fmt.Fprintf(&b, "monitor lid=%d lasn=%d", m.LID, m.LASN)
		if m.owner != nil {
			fmt.Fprintf(&b, " owner=%s entries=%d", m.owner.VTID, m.entries)
		}
		if len(m.queue) > 0 {
			b.WriteString(" queue=[")
			for i, t := range m.queue {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t.VTID)
			}
			b.WriteByte(']')
		}
		if len(m.waitSet) > 0 {
			b.WriteString(" waiters=[")
			for i, t := range m.waitSet {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(t.VTID)
			}
			b.WriteByte(']')
		}
		b.WriteByte('\n')
	}

	if len(vm.statics) > 0 {
		b.WriteString("statics=[")
		writeValues(&b, vm.hp, vm.statics)
		b.WriteString("]\n")
	}

	hs := vm.hp.Stats()
	fmt.Fprintf(&b, "heap live=%d allocs=%d frees=%d gcs=%d\n", vm.hp.Size(), hs.Allocs, hs.Frees, hs.GCs)

	for _, line := range vm.environ.Console().Lines() {
		fmt.Fprintf(&b, "console %q\n", line)
	}

	text := b.String()
	return InspectReport{Text: text, Checksum: fnv1a(text), Branches: global}
}

// GlobalBranches returns the machine's global position: the sum of all
// thread branch counts.
func (vm *VM) GlobalBranches() uint64 {
	var g uint64
	for _, t := range vm.threads {
		g += t.BrCnt
	}
	return g
}

func (vm *VM) methodName(idx int32) string {
	if int(idx) < len(vm.prog.Methods) {
		return vm.prog.Methods[idx].Name
	}
	return fmt.Sprintf("m%d", idx)
}

// writeValues renders a value list. Heap references render as the referent's
// shape — not its ref number, which is allocation-order dependent and may
// legitimately differ between two executions being diffed (the paper's
// motivation for virtual lock ids). Strings render their contents; other
// objects render kind and payload sizes.
func writeValues(b *strings.Builder, hp *heap.Heap, vals []heap.Value) {
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		writeValue(b, hp, v)
	}
}

func writeValue(b *strings.Builder, hp *heap.Heap, v heap.Value) {
	switch v.Kind {
	case heap.KindInt:
		fmt.Fprintf(b, "%d", v.I)
	case heap.KindFloat:
		fmt.Fprintf(b, "%g", v.F)
	case heap.KindRef:
		if v.R == heap.NullRef {
			b.WriteString("null")
			return
		}
		o, err := hp.Get(v.R)
		if err != nil {
			b.WriteString("ref?")
			return
		}
		switch o.Kind {
		case heap.ObjString:
			fmt.Fprintf(b, "%q", o.Str)
		case heap.ObjRecord:
			fmt.Fprintf(b, "rec/%d", len(o.Fields))
		case heap.ObjIntArr:
			fmt.Fprintf(b, "ints/%d", len(o.Ints))
		case heap.ObjFloatArr:
			fmt.Fprintf(b, "floats/%d", len(o.Floats))
		case heap.ObjRefArr:
			fmt.Fprintf(b, "refs/%d", len(o.Refs))
		default:
			fmt.Fprintf(b, "obj/%d", o.Kind)
		}
	default:
		b.WriteString("invalid")
	}
}

// fnv1a is the 64-bit FNV-1a hash (matches the rolling-checksum constant
// used by ProgressSnapshot.Chk).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
