package vm

import "repro/internal/heap"

// CloneSuspended deep-copies a VM that is paused between scheduler
// iterations (no thread mid-slice), producing an independent machine that
// will execute identically from the pause point when resumed. It is the
// substrate of the debugger's checkpoint cache: replay to position k once,
// snapshot, and every later visit to k..k+N resumes from the snapshot
// instead of replaying from zero.
//
// Shared (immutable after construction): the program, the resolved and
// fused code, the threaded compilations, the interned-string table, the
// native registry, and the static method indexes. Deep-copied: the heap
// (Ref numbering preserved, so the shared interned table stays valid), the
// environment and process, statics, threads (frames, locals, stacks,
// progress counters), and monitors (owner/queue/waitSet remapped to the
// cloned threads). The clone gets the supplied coordinator — the caller
// clones its replay coordinator alongside — and an empty handler-state
// table the caller refills from its cloned handler set.
//
// The clone is marked ran: it cannot be started with Run. Resume it with
// ResumeSuspended, which re-enters the scheduler loop exactly where the
// original stood (the loop recomputes runnable from thread states, and
// coordinator Poll is idempotent, so re-entering the iteration is
// equivalent to continuing it).
func (vm *VM) CloneSuspended(coord Coordinator) *VM {
	environ := vm.environ.Clone()
	c := &VM{
		prog:    vm.prog,
		hp:      vm.hp.Clone(),
		environ: environ,
		proc:    vm.proc.CloneInto(environ),
		natives: vm.natives,
		coord:   coord,

		statics:  append([]heap.Value(nil), vm.statics...),
		monitors: make(map[heap.Ref]*Monitor, len(vm.monitors)),

		joinIdx:   vm.joinIdx,
		finishIdx: vm.finishIdx,

		handlerState: make(map[string]any),

		rcode:    vm.rcode,
		rfused:   vm.rfused,
		interned: vm.interned,

		halted:        vm.halted,
		ran:           true,
		trackProgress: vm.trackProgress,
		runErr:        nil,
		instrCap:      vm.instrCap,
		stats:         vm.stats,

		dispatch: vm.dispatch,
		tcode:    vm.tcode,
		tslow:    vm.tslow,
		pairs:    vm.pairs,
	}
	// Threads first (monitor remapping needs them); blockedOn is patched
	// after monitors exist.
	c.threads = make([]*Thread, len(vm.threads))
	for i, t := range vm.threads {
		nt := &Thread{
			Slot:           t.Slot,
			VTID:           t.VTID,
			Ref:            t.Ref,
			childCount:     t.childCount,
			state:          t.state,
			reacquiring:    t.reacquiring,
			savedEntries:   t.savedEntries,
			waitLASN:       t.waitLASN,
			finishing:      t.finishing,
			logicallyDead:  t.logicallyDead,
			finalizerDepth: t.finalizerDepth,
			yielded:        t.yielded,
			Progress:       t.Progress,
			BrCnt:          t.BrCnt,
			MonCnt:         t.MonCnt,
			TASN:           t.TASN,
			NatSeq:         t.NatSeq,
			OutSeq:         t.OutSeq,
		}
		nt.frames = make([]Frame, len(t.frames))
		for j := range t.frames {
			f := &t.frames[j]
			nt.frames[j] = Frame{
				Method:    f.Method,
				PC:        f.PC,
				Locals:    append([]heap.Value(nil), f.Locals...),
				Stack:     append([]heap.Value(nil), f.Stack...),
				finalizer: f.finalizer,
			}
		}
		c.threads[i] = nt
	}
	remap := func(t *Thread) *Thread {
		if t == nil {
			return nil
		}
		return c.threads[t.Slot]
	}
	for r, m := range vm.monitors {
		nm := &Monitor{
			Ref:     m.Ref,
			LID:     m.LID,
			LASN:    m.LASN,
			owner:   remap(m.owner),
			entries: m.entries,
		}
		for _, q := range m.queue {
			nm.queue = append(nm.queue, remap(q))
		}
		for _, w := range m.waitSet {
			nm.waitSet = append(nm.waitSet, remap(w))
		}
		c.monitors[r] = nm
	}
	for i, t := range vm.threads {
		if t.blockedOn != nil {
			c.threads[i].blockedOn = c.monitors[t.blockedOn.Ref]
		}
	}
	c.cur = remap(vm.cur)
	return c
}

// ResumeSuspended continues a machine produced by CloneSuspended: it runs
// the scheduler loop from the suspension point to completion (or until the
// coordinator aborts it) and fires OnHalt, exactly as the tail of Run does.
func (vm *VM) ResumeSuspended() error {
	vm.runErr = vm.loop()
	if cerr := vm.coord.OnHalt(vm, vm.runErr); cerr != nil && vm.runErr == nil {
		vm.runErr = cerr
	}
	return vm.runErr
}
