package vm

import (
	"errors"
	"fmt"

	"repro/internal/heap"
)

// Monitor is the lock + condition variable associated with a heap object
// (Java's per-object monitor). Monitors are created lazily on first use.
type Monitor struct {
	// Ref is the heap object this monitor belongs to (not stable across
	// replicas).
	Ref heap.Ref
	// LID is the virtual lock id (§4.2): a replica-independent identity
	// assigned on first acquisition. -1 until assigned.
	LID int64
	// LASN is the lock acquire sequence number: how many times this lock
	// has been acquired so far.
	LASN uint64

	owner   *Thread
	entries int
	queue   []*Thread // threads contending for the lock (bookkeeping/GC)
	waitSet []*Thread // threads in wait(), FIFO
}

// Errors raised by monitor misuse (fatal run-time errors under R0).
var (
	ErrNotOwner        = errors.New("monitor not owned by current thread")
	ErrMonitorContends = errors.New("native-held monitor would contend")
)

// Owner returns the owning thread (nil when free).
func (m *Monitor) Owner() *Thread { return m.owner }

// Entries returns the reentrancy count.
func (m *Monitor) Entries() int { return m.entries }

// WaitSetLen returns the number of waiting threads.
func (m *Monitor) WaitSetLen() int { return len(m.waitSet) }

func (m *Monitor) removeFromQueue(t *Thread) {
	for i, q := range m.queue {
		if q == t {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// monitorOf returns (creating if needed) the monitor for object r.
func (vm *VM) monitorOf(r heap.Ref) *Monitor {
	if m, ok := vm.monitors[r]; ok {
		return m
	}
	m := &Monitor{Ref: r, LID: -1}
	vm.monitors[r] = m
	return m
}

// monEnter attempts to acquire r's monitor for t. On contention or replay
// gating the thread blocks and the caller must NOT advance the PC (the
// acquire is re-executed when the thread is rescheduled). Returns whether
// the acquisition completed.
func (vm *VM) monEnter(t *Thread, r heap.Ref) (bool, error) {
	if r == heap.NullRef {
		return false, fmt.Errorf("monitorenter: %w", heap.ErrNullRef)
	}
	if t.finalizerDepth > 0 {
		return false, errors.New("finalizer used a monitor (violates the deterministic-finalizer assumption, §4.3)")
	}
	m := vm.monitorOf(r)
	if m.owner == t {
		m.entries++
		t.MonCnt++
		return true, nil
	}
	// A real (non-reentrant) acquisition: the coordinator may gate it so the
	// backup reproduces the primary's acquisition order (§4.2).
	grant, err := vm.coord.BeforeAcquire(vm, t, m)
	if err != nil {
		return false, err
	}
	if !grant {
		t.state = StateGated
		t.blockedOn = m
		t.waitLASN = m.LASN
		return false, nil
	}
	if m.owner != nil {
		t.state = StateBlocked
		t.blockedOn = m
		t.waitLASN = m.LASN
		m.queue = append(m.queue, t)
		return false, nil
	}
	return true, vm.completeAcquire(t, m)
}

// completeAcquire finalises a granted, uncontended acquisition: assigns the
// virtual lock id if needed (which may itself gate the thread during
// recovery), bumps sequence numbers and emits the acquisition event.
func (vm *VM) completeAcquire(t *Thread, m *Monitor) error {
	if m.LID < 0 {
		lid, granted, err := vm.coord.AssignLID(vm, t, m)
		if err != nil {
			return err
		}
		if !granted {
			t.state = StateGated
			t.blockedOn = m
			return nil
		}
		m.LID = lid
		vm.stats.ObjectsLocked++
	}
	m.owner = t
	m.entries = 1
	t.blockedOn = nil
	// Record values are the pre-increment sequence numbers ("number of
	// locks acquired so far", §4.2).
	if err := vm.coord.OnAcquired(vm, t, m); err != nil {
		return err
	}
	m.LASN++
	t.TASN++
	t.MonCnt++
	vm.stats.LocksAcquired++
	if m.LASN > vm.stats.LargestLASN {
		vm.stats.LargestLASN = m.LASN
	}
	return nil
}

// monExit releases one entry of r's monitor held by t.
func (vm *VM) monExit(t *Thread, r heap.Ref) error {
	if r == heap.NullRef {
		return fmt.Errorf("monitorexit: %w", heap.ErrNullRef)
	}
	m, ok := vm.monitors[r]
	if !ok || m.owner != t {
		return fmt.Errorf("monitorexit @%d: %w", r, ErrNotOwner)
	}
	m.entries--
	t.MonCnt++
	if m.entries > 0 {
		return nil
	}
	vm.releaseMonitor(m)
	return nil
}

// releaseMonitor frees m and makes every contender runnable again; they
// re-execute their acquire (barging is resolved deterministically by the
// scheduler/coordinator).
func (vm *VM) releaseMonitor(m *Monitor) {
	m.owner = nil
	if len(m.queue) == 0 {
		return
	}
	for _, q := range m.queue {
		if q.state == StateBlocked {
			q.state = StateRunnable
		}
	}
	m.queue = m.queue[:0]
}

// monWait implements Object.wait(): full release, join the wait set. The PC
// is not advanced; when notified the thread re-executes OpWait with
// reacquiring set, which turns it into a monitor acquisition that restores
// the saved reentrancy count.
func (vm *VM) monWait(t *Thread, r heap.Ref) error {
	if r == heap.NullRef {
		return fmt.Errorf("wait: %w", heap.ErrNullRef)
	}
	m, ok := vm.monitors[r]
	if !ok || m.owner != t {
		return fmt.Errorf("wait @%d: %w", r, ErrNotOwner)
	}
	t.savedEntries = m.entries
	t.reacquiring = true
	t.state = StateWaiting
	t.blockedOn = m
	t.waitLASN = m.LASN
	m.entries = 0
	t.MonCnt++ // the release half of the wait
	m.waitSet = append(m.waitSet, t)
	vm.releaseMonitor(m)
	return nil
}

// monNotify wakes up to n waiters (n < 0 means all) of r's monitor, FIFO.
// Woken threads contend for the monitor like ordinary acquirers.
func (vm *VM) monNotify(t *Thread, r heap.Ref, n int) error {
	if r == heap.NullRef {
		return fmt.Errorf("notify: %w", heap.ErrNullRef)
	}
	m, ok := vm.monitors[r]
	if !ok || m.owner != t {
		return fmt.Errorf("notify @%d: %w", r, ErrNotOwner)
	}
	if n < 0 || n > len(m.waitSet) {
		n = len(m.waitSet)
	}
	for i := 0; i < n; i++ {
		w := m.waitSet[i]
		// The waiter stays logically blocked on the monitor until the
		// owner releases it; it re-executes OpWait (reacquiring) then.
		w.state = StateBlocked
		m.queue = append(m.queue, w)
	}
	m.waitSet = m.waitSet[n:]
	return nil
}

// reacquireAfterWait is the second half of OpWait: acquire the monitor and
// restore the saved reentrancy count. Returns whether it completed.
func (vm *VM) reacquireAfterWait(t *Thread, r heap.Ref) (bool, error) {
	m := vm.monitorOf(r)
	if m.owner == t {
		// Cannot happen: a waiting thread does not own the monitor.
		return false, fmt.Errorf("wait reacquire @%d: already owner", r)
	}
	grant, err := vm.coord.BeforeAcquire(vm, t, m)
	if err != nil {
		return false, err
	}
	if !grant {
		t.state = StateGated
		t.blockedOn = m
		return false, nil
	}
	if m.owner != nil {
		t.state = StateBlocked
		t.blockedOn = m
		m.queue = append(m.queue, t)
		return false, nil
	}
	if err := vm.completeAcquire(t, m); err != nil {
		return false, err
	}
	if t.state == StateGated {
		return false, nil
	}
	m.entries = t.savedEntries
	t.savedEntries = 0
	t.reacquiring = false
	return true, nil
}

// nativeMonEnter is the native-method callback for acquiring a monitor from
// inside native code (§4.2: lock operations transfer control back into the
// VM even when they originate in a native method, keeping mon_cnt correct).
// On contention — or a replay gate — it parks the thread exactly like a
// bytecode monitorenter and returns ErrMonitorContends; the interpreter then
// rolls the call back so the whole native re-executes when the thread is
// readmitted (which is why AcquiresLocks natives must be side-effect-free
// before their first acquisition).
func (vm *VM) nativeMonEnter(t *Thread, r heap.Ref) error {
	if r == heap.NullRef {
		return fmt.Errorf("native monitorenter: %w", heap.ErrNullRef)
	}
	m := vm.monitorOf(r)
	if m.owner == t {
		m.entries++
		t.MonCnt++
		return nil
	}
	grant, err := vm.coord.BeforeAcquire(vm, t, m)
	if err != nil {
		return err
	}
	if !grant {
		t.state = StateGated
		t.blockedOn = m
		t.waitLASN = m.LASN
		return ErrMonitorContends
	}
	if m.owner != nil {
		t.state = StateBlocked
		t.blockedOn = m
		t.waitLASN = m.LASN
		m.queue = append(m.queue, t)
		return ErrMonitorContends
	}
	if err := vm.completeAcquire(t, m); err != nil {
		return err
	}
	if t.state == StateGated {
		return ErrMonitorContends
	}
	return nil
}
