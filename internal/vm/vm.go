package vm

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/bytecode/pairfreq"
	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
)

// Stats are the per-run counters the experiment harness reports (Table 2).
type Stats struct {
	Instructions    uint64 // bytecodes executed
	Branches        uint64 // control-flow changes (br_cnt total)
	LocksAcquired   uint64 // real (non-reentrant) monitor acquisitions
	ObjectsLocked   uint64 // unique objects whose monitor was ever acquired
	LargestLASN     uint64 // max lock acquire sequence number
	Reschedules     uint64 // context switches (different thread dispatched)
	NativeCalls     uint64 // all native invocations
	NMIntercepted   uint64 // intercepted native invocations (§4.1)
	NMOutputCommits uint64 // output-commit events (§3.4)
	ThreadsSpawned  uint64
	WaitOps         uint64
	NotifyOps       uint64
	GCs             uint64
	FinalizersRun   uint64
}

// Config configures a VM.
type Config struct {
	// Program is the verified program to execute (required).
	Program *bytecode.Program
	// Env is the simulated environment (required).
	Env *env.Env
	// Natives is the native-method registry (native.StdLib() if nil).
	Natives *native.Registry
	// Coordinator supplies replica coordination (standalone default if nil).
	Coordinator Coordinator
	// GCThreshold triggers automatic collection at this live-object count
	// (default 1<<20; negative disables automatic GC).
	GCThreshold int
	// MaxInstructions aborts runaway programs (0 = unlimited).
	MaxInstructions uint64
	// SoftRefsCollectable lets GC clear soft references under memory
	// pressure. The fault-tolerant default is false: soft references are
	// treated as strong so replicas cannot diverge on cache hits (§4.3).
	SoftRefsCollectable bool
	// TrackProgress makes the interpreter publish each thread's progress
	// indicators (method, pc offset, br_cnt, mon_cnt) into the thread
	// object after every bytecode — the bookkeeping replicated thread
	// scheduling requires ("this requires an update to the thread object
	// after executing every bytecode", §4.2). This per-instruction cost is
	// what dominates the Misc overhead in Figure 4.
	TrackProgress bool
	// Dispatch selects the interpreter engine: DispatchThreaded (default)
	// runs the subroutine-threaded engine with wide superinstruction fusion
	// and the epoch-based branch counter; DispatchSwitch runs the historical
	// switch loop. Both engines are bit-identical on every replication-
	// visible surface (see threaded.go).
	Dispatch Dispatch
	// PairCounter, when non-nil, records every executed opcode pair into the
	// counter. Counting runs on the unfused switch slow path regardless of
	// Dispatch (the dynamic pair stream feeds the fusion table, so it must
	// see original opcodes), making it a profiling mode, not a serving mode.
	PairCounter *pairfreq.Counter
}

// Errors returned by Run.
var (
	ErrHalted        = errors.New("vm already ran")
	ErrInstrBudget   = errors.New("instruction budget exhausted")
	ErrBadNativeBind = errors.New("native method binding mismatch")
)

// FatalError is a fatal run-time-environment error (R0): it aborts the VM
// and is deliberately NOT replicated to the backup.
type FatalError struct {
	TID string
	PC  int32
	Err error
}

func (e *FatalError) Error() string {
	return fmt.Sprintf("fatal vm error (thread %s, pc %d): %v", e.TID, e.PC, e.Err)
}

func (e *FatalError) Unwrap() error { return e.Err }

// VM is one replica: a set of BEEs over a shared heap, statics, monitors and
// an environment attachment.
type VM struct {
	prog    *bytecode.Program
	hp      *heap.Heap
	environ *env.Env
	proc    *env.Process
	natives *native.Registry
	coord   Coordinator

	statics  []heap.Value
	threads  []*Thread
	monitors map[heap.Ref]*Monitor

	joinIdx   int32
	finishIdx int32

	handlerState map[string]any

	// rcode is the decode-once form of prog: per-method resolved code,
	// index-aligned with prog.Methods (nil for natives). rfused is the same
	// code with superinstruction fusion applied, used by slices that need no
	// per-bytecode observation. interned holds the pre-allocated heap string
	// for every StrPool entry, so executing sconst never allocates.
	rcode    [][]bytecode.RInstr
	rfused   [][]bytecode.RInstr
	interned []heap.Ref

	cur           *Thread
	halted        bool
	ran           bool
	trackProgress bool
	killed        atomic.Bool
	runErr        error
	instrCap      uint64
	stats         Stats

	// dispatch selects the engine; tcode/tslow are the subroutine-threaded
	// compilations (wide-fused and faithful unfused) built when dispatch is
	// DispatchThreaded. tc is the reusable threaded execution context.
	dispatch Dispatch
	tcode    []tmethod
	tslow    []tmethod
	tc       tctx

	// pairs, when set, forces the counting slow path (see Config.PairCounter).
	pairs *pairfreq.Counter
}

// New builds a VM for cfg. The program is augmented with the synthetic
// $joinwait/$finish methods that route thread join and death through
// ordinary monitors, so they replicate exactly like application
// synchronization.
func New(cfg Config) (*VM, error) {
	if cfg.Program == nil {
		return nil, errors.New("vm: nil program")
	}
	if cfg.Env == nil {
		return nil, errors.New("vm: nil environment")
	}
	reg := cfg.Natives
	if reg == nil {
		reg = native.StdLib()
	}
	coord := cfg.Coordinator
	if coord == nil {
		coord = NewDefaultCoordinator(nil)
	}
	prog, joinIdx, finishIdx := augment(cfg.Program)
	if err := bindNatives(prog, reg); err != nil {
		return nil, err
	}
	threshold := cfg.GCThreshold
	if threshold == 0 {
		threshold = 1 << 20
	}
	if threshold < 0 {
		threshold = 0
	}
	v := &VM{
		prog:         prog,
		hp:           heap.New(heap.WithGCThreshold(threshold)),
		environ:      cfg.Env,
		proc:         cfg.Env.Attach(),
		natives:      reg,
		coord:        coord,
		monitors:     make(map[heap.Ref]*Monitor),
		joinIdx:      joinIdx,
		finishIdx:    finishIdx,
		handlerState: make(map[string]any),
		instrCap:     cfg.MaxInstructions,
	}
	v.trackProgress = cfg.TrackProgress
	v.dispatch = cfg.Dispatch
	v.pairs = cfg.PairCounter
	v.hp.SoftAsStrong = !cfg.SoftRefsCollectable
	v.statics = make([]heap.Value, len(prog.Statics))
	for i := range v.statics {
		v.statics[i] = heap.Null()
	}
	res, err := bytecode.Predecode(prog)
	if err != nil {
		return nil, err
	}
	v.rcode = res.Methods
	v.rfused = res.Fused
	// Pre-intern the string pool: one allocation per program string at load
	// time, zero per sconst execution. The interned objects are permanent GC
	// roots (see runGC).
	v.interned = make([]heap.Ref, len(prog.StrPool))
	for i, s := range prog.StrPool {
		ref, err := v.hp.AllocString(s)
		if err != nil {
			return nil, err
		}
		v.interned[i] = ref
	}
	if v.dispatch == DispatchThreaded {
		// Compile both threaded streams after interning: sconst closures
		// capture the interned refs directly. tcode executes the wide-fused
		// variant (fast slices), tslow the faithful per-bytecode variant
		// (progress tracking and exact replay).
		v.tcode = v.compileThreaded(res.Wide)
		v.tslow = v.compileThreaded(res.Methods)
	}
	return v, nil
}

// augment clones p and appends the synthetic methods.
func augment(p *bytecode.Program) (*bytecode.Program, int32, int32) {
	clone := *p
	clone.Methods = make([]*bytecode.Method, len(p.Methods), len(p.Methods)+2)
	copy(clone.Methods, p.Methods)

	joinIdx := int32(len(clone.Methods))
	clone.Methods = append(clone.Methods, &bytecode.Method{
		Name: "$joinwait", NArgs: 1, NLocals: 1,
		Code: []bytecode.Instr{
			{Op: bytecode.OpLoad, A: 0}, // 0
			{Op: bytecode.OpMEnter},     // 1
			{Op: bytecode.OpLoad, A: 0}, // 2: check
			{Op: bytecode.OpAlive},      // 3
			{Op: bytecode.OpJz, A: 8},   // 4 -> exit
			{Op: bytecode.OpLoad, A: 0}, // 5
			{Op: bytecode.OpWait},       // 6
			{Op: bytecode.OpJmp, A: 2},  // 7 -> check
			{Op: bytecode.OpLoad, A: 0}, // 8: exit
			{Op: bytecode.OpMExit},      // 9
			{Op: bytecode.OpRet},        // 10
		},
	})
	finishIdx := int32(len(clone.Methods))
	clone.Methods = append(clone.Methods, &bytecode.Method{
		Name: "$finish", NArgs: 1, NLocals: 1,
		Code: []bytecode.Instr{
			{Op: bytecode.OpLoad, A: 0},
			{Op: bytecode.OpMEnter},
			{Op: bytecode.OpMarkDead},
			{Op: bytecode.OpLoad, A: 0},
			{Op: bytecode.OpNotifyAll},
			{Op: bytecode.OpLoad, A: 0},
			{Op: bytecode.OpMExit},
			{Op: bytecode.OpRet},
		},
	})
	return &clone, joinIdx, finishIdx
}

// bindNatives checks every native stub against the registry.
func bindNatives(p *bytecode.Program, reg *native.Registry) error {
	for _, m := range p.Methods {
		if !m.Native {
			continue
		}
		def, ok := reg.Lookup(m.NativeSig)
		if !ok {
			return fmt.Errorf("%w: %s: %v %q", ErrBadNativeBind, m.Name, native.ErrUnknownNative, m.NativeSig)
		}
		if def.Arity != m.NArgs {
			return fmt.Errorf("%w: %s: arity %d vs native %d", ErrBadNativeBind, m.Name, m.NArgs, def.Arity)
		}
		want := 0
		if m.Returns {
			want = 1
		}
		if def.Returns != want {
			return fmt.Errorf("%w: %s: returns %d vs native %d", ErrBadNativeBind, m.Name, want, def.Returns)
		}
		if def.AcquiresLocks && reg.Intercepted(def.Sig) {
			return fmt.Errorf("%w: %s: a native cannot be both intercepted and lock-acquiring", ErrBadNativeBind, m.Name)
		}
	}
	return nil
}

// TrackingProgress reports whether per-bytecode progress publication is on.
func (vm *VM) TrackingProgress() bool { return vm.trackProgress }

// Program returns the (augmented) program under execution.
func (vm *VM) Program() *bytecode.Program { return vm.prog }

// Heap returns the object heap.
func (vm *VM) Heap() *heap.Heap { return vm.hp }

// Environment returns the shared environment.
func (vm *VM) Environment() *env.Env { return vm.environ }

// Process returns the volatile environment attachment.
func (vm *VM) Process() *env.Process { return vm.proc }

// Natives returns the native registry.
func (vm *VM) Natives() *native.Registry { return vm.natives }

// Stats returns a copy of the run counters.
func (vm *VM) Stats() Stats { return vm.stats }

// Threads returns the thread table (live view; do not mutate).
func (vm *VM) Threads() []*Thread { return vm.threads }

// ThreadByVTID resolves a virtual thread id.
func (vm *VM) ThreadByVTID(vtid string) *Thread {
	for _, t := range vm.threads {
		if t.VTID == vtid {
			return t
		}
	}
	return nil
}

// Statics returns the static slot values (live view).
func (vm *VM) Statics() []heap.Value { return vm.statics }

// Monitors returns the monitor table (live view).
func (vm *VM) Monitors() map[heap.Ref]*Monitor { return vm.monitors }

// Ungate makes a replay-gated thread runnable again; it re-executes its
// pending acquisition, re-consulting the coordinator.
func (vm *VM) Ungate(t *Thread) {
	if t.state == StateGated {
		t.state = StateRunnable
	}
}

// SetHandlerState installs side-effect-handler state visible to natives.
func (vm *VM) SetHandlerState(name string, state any) { vm.handlerState[name] = state }

// Kill simulates a fail-stop failure: the VM stops executing at the next
// instruction boundary and its volatile environment state is discarded.
// It is safe to call from another goroutine.
func (vm *VM) Kill() { vm.killed.Store(true) }

// Killed reports whether Kill was called.
func (vm *VM) Killed() bool { return vm.killed.Load() }

// newThread creates and registers a thread executing method with args.
func (vm *VM) newThread(parent *Thread, method int32, args []heap.Value) (*Thread, error) {
	slot := int32(len(vm.threads))
	vtid := "0"
	if parent != nil {
		vtid = childVTID(parent)
	}
	ref, err := vm.hp.AllocThread(slot)
	if err != nil {
		return nil, err
	}
	t := &Thread{Slot: slot, VTID: vtid, Ref: ref, state: StateRunnable}
	t.pushFrame(vm.prog.Methods[method], method, args)
	vm.threads = append(vm.threads, t)
	if parent != nil {
		vm.stats.ThreadsSpawned++
	}
	return t, nil
}

// Run executes the program to completion (all threads dead or OpHalt) and
// returns the first fatal error, if any. A VM can run only once.
func (vm *VM) Run() error {
	if vm.ran {
		return ErrHalted
	}
	vm.ran = true
	if _, err := vm.newThread(nil, vm.prog.Entry, nil); err != nil {
		return fmt.Errorf("spawn main: %w", err)
	}
	vm.runErr = vm.loop()
	if cerr := vm.coord.OnHalt(vm, vm.runErr); cerr != nil && vm.runErr == nil {
		vm.runErr = cerr
	}
	return vm.runErr
}

func (vm *VM) loop() error {
	var runnable []*Thread
	for !vm.halted && !vm.killed.Load() {
		if _, err := vm.coord.Poll(vm); err != nil {
			return err
		}
		runnable = runnable[:0]
		allDead := true
		for _, t := range vm.threads {
			switch t.state {
			case StateRunnable:
				runnable = append(runnable, t)
				allDead = false
			case StateDead:
			default:
				allDead = false
			}
		}
		if allDead {
			return nil
		}
		if len(runnable) == 0 {
			retry, err := vm.coord.OnIdle(vm)
			if err != nil {
				return err
			}
			if !retry {
				return vm.deadlockError()
			}
			continue
		}
		next, target, err := vm.coord.PickNext(vm, runnable, vm.cur)
		if err != nil {
			return err
		}
		if next == nil {
			// No dispatch allowed right now (replay waiting for records).
			retry, err := vm.coord.OnIdle(vm)
			if err != nil {
				return err
			}
			if !retry {
				return vm.deadlockError()
			}
			continue
		}
		if next != vm.cur {
			if err := vm.coord.OnDescheduled(vm, vm.cur, next); err != nil {
				return err
			}
			if vm.cur != nil {
				vm.stats.Reschedules++
			}
		}
		vm.cur = next
		if err := vm.runSliceDispatch(next, target); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) deadlockError() error {
	var detail strings.Builder
	for _, t := range vm.threads {
		if t.state != StateDead {
			fmt.Fprintf(&detail, " [%s %s", t.VTID, t.state)
			if t.blockedOn != nil {
				fmt.Fprintf(&detail, " on lid=%d @%d", t.blockedOn.LID, t.blockedOn.Ref)
			}
			detail.WriteByte(']')
		}
	}
	return fmt.Errorf("%w:%s", ErrDeadlock, detail.String())
}

func (vm *VM) fatal(t *Thread, err error) error {
	vm.halted = true
	var pc int32 = -1
	if f := t.Top(); f != nil {
		pc = f.PC
	}
	return &FatalError{TID: t.VTID, PC: pc, Err: err}
}

// RunGC is the synchronous collection entry point used by the sys.gc native.
func (vm *VM) RunGC(t *Thread) error { return vm.runGC(t) }

// runGC collects garbage and schedules pending finalizers on t.
func (vm *VM) runGC(t *Thread) error {
	vm.stats.GCs++
	vm.hp.GC(func(mark func(heap.Ref)) {
		for _, r := range vm.interned {
			mark(r)
		}
		for _, s := range vm.statics {
			if s.Kind == heap.KindRef {
				mark(s.R)
			}
		}
		for _, th := range vm.threads {
			mark(th.Ref)
			for fi := range th.frames {
				f := &th.frames[fi]
				for _, v := range f.Locals {
					if v.Kind == heap.KindRef {
						mark(v.R)
					}
				}
				for _, v := range f.Stack {
					if v.Kind == heap.KindRef {
						mark(v.R)
					}
				}
			}
		}
		for ref, m := range vm.monitors {
			if m.owner != nil || len(m.queue) > 0 || len(m.waitSet) > 0 {
				mark(ref)
			}
		}
	})
	// Drop monitors of collected, inactive objects.
	for ref, m := range vm.monitors {
		if m.owner == nil && len(m.queue) == 0 && len(m.waitSet) == 0 {
			if _, err := vm.hp.Get(ref); err != nil {
				delete(vm.monitors, ref)
			}
		}
	}
	// Run finalizers on the triggering thread, in deterministic queue order
	// (frames are LIFO, so push in reverse).
	queue := vm.hp.DrainFinalizeQueue()
	for i := len(queue) - 1; i >= 0; i-- {
		ref := queue[i]
		obj, err := vm.hp.Get(ref)
		if err != nil {
			return fmt.Errorf("finalize @%d: %w", ref, err)
		}
		if obj.Kind != heap.ObjRecord || obj.Class < 0 {
			continue
		}
		fin := vm.prog.Classes[obj.Class].Finalizer
		if fin < 0 {
			continue
		}
		t.pushFrame(vm.prog.Methods[fin], fin, []heap.Value{heap.RefVal(ref)})
		t.frames[len(t.frames)-1].finalizer = true
		t.finalizerDepth++
		vm.stats.FinalizersRun++
	}
	return nil
}
