package vm

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/env"
	"repro/internal/heap"
)

// buildProgram assembles src, failing the test on error.
func buildProgram(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := bytecode.AssembleString(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func runProgram(t *testing.T, src string) (*VM, *env.Env) {
	t.Helper()
	p := buildProgram(t, src)
	e := env.New(1)
	v, err := New(Config{Program: p, Env: e, MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, e
}

const printNative = "native print io.print 1 void\n"

func TestArithmeticLoop(t *testing.T) {
	_, e := runProgram(t, printNative+`
method main 0 void
  iconst 0
  store 0
  iconst 0
  store 1
loop:
  load 0
  iconst 10
  icmp
  jz done
  load 1
  load 0
  iadd
  store 1
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
done:
  load 1
  i2s
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "45" {
		t.Fatalf("console = %q, want [45]", lines)
	}
}

func TestFloatsStringsObjects(t *testing.T) {
	_, e := runProgram(t, printNative+`
class Point x y
method main 0 void
  new Point
  store 0
  load 0
  fconst 1.5
  putf Point.x
  load 0
  fconst 2.25
  putf Point.y
  load 0
  getf Point.x
  load 0
  getf Point.y
  fadd
  f2s
  sconst "sum="
  swap
  scat
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "sum=3.75" {
		t.Fatalf("console = %q, want [sum=3.75]", lines)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	_, e := runProgram(t, printNative+`
method fib 1 value
  load 0
  iconst 2
  icmp
  iconst 1
  iadd
  jz base
  load 0
  iconst 1
  isub
  call fib
  load 0
  iconst 2
  isub
  call fib
  iadd
  retv
base:
  load 0
  retv
end
method main 0 void
  iconst 15
  call fib
  i2s
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "610" {
		t.Fatalf("console = %q, want [610]", lines)
	}
}

func TestSpawnJoinMonitors(t *testing.T) {
	v, e := runProgram(t, printNative+`
static Main.counter
static Main.lock
class Lock dummy
method worker 1 void
  iconst 0
  store 1
loop:
  load 1
  iconst 1000
  icmp
  jz done
  gets Main.lock
  menter
  gets Main.counter
  iconst 1
  iadd
  puts Main.counter
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.counter
  iconst 0
  spawn worker 1
  store 0
  iconst 1
  spawn worker 1
  store 1
  load 0
  join
  load 1
  join
  gets Main.counter
  i2s
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "2000" {
		t.Fatalf("console = %q, want [2000]", lines)
	}
	st := v.Stats()
	if st.LocksAcquired < 2000 {
		t.Fatalf("LocksAcquired = %d, want >= 2000", st.LocksAcquired)
	}
	if st.ThreadsSpawned != 2 {
		t.Fatalf("ThreadsSpawned = %d, want 2", st.ThreadsSpawned)
	}
}

func TestWaitNotify(t *testing.T) {
	_, e := runProgram(t, printNative+`
static Main.flag
static Main.cond
class Cond dummy
method producer 0 void
  gets Main.cond
  menter
  iconst 1
  puts Main.flag
  gets Main.cond
  notifyall
  gets Main.cond
  mexit
  ret
end
method main 0 void
  new Cond
  puts Main.cond
  iconst 0
  puts Main.flag
  spawn producer 0
  store 0
  gets Main.cond
  menter
check:
  gets Main.flag
  jnz ok
  gets Main.cond
  wait
  jmp check
ok:
  gets Main.cond
  mexit
  load 0
  join
  sconst "done"
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "done" {
		t.Fatalf("console = %q, want [done]", lines)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := buildProgram(t, `
class Lock dummy
static Main.l
method main 0 void
  new Lock
  puts Main.l
  gets Main.l
  menter
  gets Main.l
  wait
  ret
end
`)
	v, err := New(Config{Program: p, Env: env.New(1)})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	err = v.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	p := buildProgram(t, `
class Node next
method main 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 5000
  icmp
  jz done
  new Node
  pop
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
done:
  ret
end
`)
	v, err := New(Config{Program: p, Env: env.New(1), GCThreshold: 1000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if v.Stats().GCs == 0 {
		t.Fatal("expected at least one GC")
	}
	if v.Heap().Size() > 2100 {
		t.Fatalf("heap size = %d, want garbage collected", v.Heap().Size())
	}
}

func TestFinalizerRuns(t *testing.T) {
	// Finalizers may only perform deterministic local actions (§4.3):
	// intercepted natives are forbidden, so the finalizer records its run
	// in a static that main prints afterwards.
	_, e := runProgram(t, printNative+`
class Res tag
static Main.finCount
finalizer Res fin
native gc sys.gc 0 void
method fin 1 void
  gets Main.finCount
  iconst 1
  iadd
  puts Main.finCount
  ret
end
method main 0 void
  iconst 0
  puts Main.finCount
  new Res
  pop
  call gc
  call gc
  gets Main.finCount
  i2s
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "1" {
		t.Fatalf("console = %q, want [1]", lines)
	}
}

func TestNativeClockAndRand(t *testing.T) {
	_, e := runProgram(t, printNative+`
native clock sys.clock 0 value
method main 0 void
  call clock
  store 0
  call clock
  load 0
  icmp
  jnz increasing
  sconst "broken"
  call print
  ret
increasing:
  sconst "increasing"
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "increasing" {
		t.Fatalf("console = %q, want [increasing]", lines)
	}
}

func TestDeterministicRerun(t *testing.T) {
	src := printNative + `
static Main.counter
static Main.lock
class Lock dummy
method worker 1 void
  iconst 0
  store 1
loop:
  load 1
  iconst 500
  icmp
  jz done
  gets Main.lock
  menter
  gets Main.counter
  load 0
  iadd
  puts Main.counter
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.counter
  iconst 1
  spawn worker 1
  store 0
  iconst 2
  spawn worker 1
  store 1
  load 0
  join
  load 1
  join
  gets Main.counter
  i2s
  call print
  ret
end
`
	run := func(seed int64) (string, Stats) {
		p := buildProgram(t, src)
		e := env.New(7)
		v, err := New(Config{
			Program:     p,
			Env:         e,
			Coordinator: NewDefaultCoordinator(NewSeededPolicy(seed, 64, 256)),
		})
		if err != nil {
			t.Fatalf("new vm: %v", err)
		}
		if err := v.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		lines := e.Console().Lines()
		return strings.Join(lines, "\n"), v.Stats()
	}
	out1, st1 := run(42)
	out2, st2 := run(42)
	if out1 != out2 {
		t.Fatalf("same seed, different output: %q vs %q", out1, out2)
	}
	if st1.Instructions != st2.Instructions {
		t.Fatalf("same seed, different instruction counts: %d vs %d", st1.Instructions, st2.Instructions)
	}
	out3, _ := run(43)
	if out3 != out1 {
		t.Fatalf("different interleaving should not change the final sum: %q vs %q", out1, out3)
	}
}

func TestSoftRefSurvivesInFTMode(t *testing.T) {
	_, e := runProgram(t, printNative+`
class Obj tag
native soft ref.soft 1 value
native softget ref.softget 1 value
native gc sys.gc 0 void
method main 0 void
  new Obj
  store 0
  load 0
  call soft
  store 1
  null
  store 0
  call gc
  load 1
  call softget
  null
  refeq
  jnz cleared
  sconst "alive"
  call print
  ret
cleared:
  sconst "cleared"
  call print
  ret
end
`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "alive" {
		t.Fatalf("console = %q, want [alive] (soft refs treated as strong in FT mode)", lines)
	}
}

func TestThreadVTIDs(t *testing.T) {
	v, _ := runProgram(t, `
method worker 0 void
  ret
end
method main 0 void
  spawn worker 0
  store 0
  spawn worker 0
  store 1
  load 0
  join
  load 1
  join
  ret
end
`)
	threads := v.Threads()
	if len(threads) != 3 {
		t.Fatalf("threads = %d, want 3", len(threads))
	}
	want := []string{"0", "0.1", "0.2"}
	for i, w := range want {
		if threads[i].VTID != w {
			t.Fatalf("thread %d vtid = %q, want %q", i, threads[i].VTID, w)
		}
	}
}

func TestHeapValueHelpers(t *testing.T) {
	if !heap.BoolVal(true).Truthy() || heap.BoolVal(false).Truthy() {
		t.Fatal("BoolVal/Truthy broken")
	}
	if !heap.Null().IsNull() {
		t.Fatal("Null not null")
	}
}
