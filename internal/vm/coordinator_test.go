package vm

import (
	"testing"

	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
)

// gateCoordinator wraps the default coordinator and gates the first N
// intercepted native calls / first M lock acquisitions, releasing them via
// Poll — exercising the replay-style gating machinery without replication.
type gateCoordinator struct {
	*DefaultCoordinator
	nativeHoldoffs int
	lockHoldoffs   int
	nativeGated    int
	lockGated      int
	polls          int
}

func (g *gateCoordinator) NativeReady(_ *VM, _ *Thread, _ *native.Def) bool {
	if g.nativeHoldoffs > 0 {
		g.nativeGated++
		return false
	}
	return true
}

func (g *gateCoordinator) BeforeAcquire(_ *VM, _ *Thread, _ *Monitor) (bool, error) {
	if g.lockHoldoffs > 0 {
		g.lockGated++
		return false, nil
	}
	return true, nil
}

func (g *gateCoordinator) Poll(v *VM) (bool, error) {
	g.polls++
	progress := false
	if g.nativeHoldoffs > 0 {
		g.nativeHoldoffs--
		if g.nativeHoldoffs == 0 {
			progress = true
		}
	}
	if g.lockHoldoffs > 0 {
		g.lockHoldoffs--
		if g.lockHoldoffs == 0 {
			progress = true
		}
	}
	for _, t := range v.Threads() {
		if t.State() == StateGated {
			if (t.BlockedOn() == nil && g.nativeHoldoffs == 0) ||
				(t.BlockedOn() != nil && g.lockHoldoffs == 0) {
				v.Ungate(t)
				progress = true
			}
		}
	}
	return progress, nil
}

// OnIdle keeps the scheduler retrying while holdoffs remain (Poll counts
// down one per iteration).
func (g *gateCoordinator) OnIdle(*VM) (bool, error) {
	return g.nativeHoldoffs > 0 || g.lockHoldoffs > 0, nil
}

func TestNativeGatingAndRelease(t *testing.T) {
	p := buildProgram(t, printNative+`
method main 0 void
  sconst "hello"
  call print
  ret
end`)
	g := &gateCoordinator{DefaultCoordinator: NewDefaultCoordinator(nil), nativeHoldoffs: 3}
	e := env.New(1)
	v, err := New(Config{Program: p, Env: e, Coordinator: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if g.nativeGated == 0 {
		t.Fatal("native gate never engaged")
	}
	if lines := e.Console().Lines(); len(lines) != 1 || lines[0] != "hello" {
		t.Fatalf("console = %v (call must execute exactly once after gating)", lines)
	}
	// br_cnt must count the gated-then-retried call exactly once: compare
	// with an ungated run.
	v2, _ := New(Config{Program: buildProgram(t, printNative+`
method main 0 void
  sconst "hello"
  call print
  ret
end`), Env: env.New(1)})
	if err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Branches != v2.Stats().Branches {
		t.Fatalf("gated run counted %d branches, ungated %d", v.Stats().Branches, v2.Stats().Branches)
	}
}

func TestLockGatingAndRelease(t *testing.T) {
	p := buildProgram(t, `
class L d
method main 0 void
  new L
  store 0
  load 0
  menter
  load 0
  mexit
  ret
end`)
	g := &gateCoordinator{DefaultCoordinator: NewDefaultCoordinator(nil), lockHoldoffs: 2}
	v, err := New(Config{Program: p, Env: env.New(1), Coordinator: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if g.lockGated == 0 {
		t.Fatal("lock gate never engaged")
	}
	if v.Stats().LocksAcquired < 2 { // program lock + $finish thread lock
		t.Fatalf("locks = %d", v.Stats().LocksAcquired)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	p := &RoundRobinPolicy{Q: 7}
	threads := []*Thread{{Slot: 0}, {Slot: 1}, {Slot: 2}}
	if got := p.Next(threads, nil); got != threads[0] {
		t.Fatalf("first pick = slot %d", got.Slot)
	}
	if got := p.Next(threads, threads[0]); got != threads[1] {
		t.Fatalf("after 0 = slot %d", got.Slot)
	}
	if got := p.Next(threads, threads[2]); got != threads[0] {
		t.Fatalf("wrap = slot %d", got.Slot)
	}
	// Skips non-runnable entries (the caller only passes runnable ones).
	if got := p.Next([]*Thread{threads[0], threads[2]}, threads[0]); got != threads[2] {
		t.Fatalf("gap skip = slot %d", got.Slot)
	}
	if p.Quantum() != 7 {
		t.Fatalf("quantum = %d", p.Quantum())
	}
	if (&RoundRobinPolicy{}).Quantum() == 0 {
		t.Fatal("default quantum must be positive")
	}
}

func TestSeededPolicyDeterminism(t *testing.T) {
	threads := []*Thread{{Slot: 0}, {Slot: 1}, {Slot: 2}}
	a := NewSeededPolicy(9, 10, 100)
	b := NewSeededPolicy(9, 10, 100)
	for i := 0; i < 50; i++ {
		if a.Next(threads, nil) != b.Next(threads, nil) {
			t.Fatal("same seed diverged on Next")
		}
		qa, qb := a.Quantum(), b.Quantum()
		if qa != qb {
			t.Fatal("same seed diverged on Quantum")
		}
		if qa < 10 || qa > 100 {
			t.Fatalf("quantum %d outside [10,100]", qa)
		}
	}
}

// progressChecker verifies, at every context switch, that the per-bytecode
// published snapshot agrees with the thread's live state — the invariant the
// scheduling records depend on.
type progressChecker struct {
	*DefaultCoordinator
	t        *testing.T
	switches int
}

func (p *progressChecker) OnDescheduled(v *VM, prev, next *Thread) error {
	if prev == nil {
		return nil
	}
	p.switches++
	snap := prev.Progress
	if snap.BrCnt != prev.BrCnt {
		p.t.Errorf("snapshot br %d != live %d", snap.BrCnt, prev.BrCnt)
	}
	if snap.MonCnt != prev.MonCnt {
		p.t.Errorf("snapshot mon %d != live %d", snap.MonCnt, prev.MonCnt)
	}
	if f := prev.Top(); f != nil {
		if snap.Method != f.Method || snap.PC != f.PC {
			p.t.Errorf("snapshot pos (%d,%d) != live (%d,%d)", snap.Method, snap.PC, f.Method, f.PC)
		}
	} else if snap.Method != -1 || snap.PC != -1 {
		p.t.Errorf("dead thread snapshot pos (%d,%d), want (-1,-1)", snap.Method, snap.PC)
	}
	return nil
}

func TestProgressSnapshotConsistency(t *testing.T) {
	p := buildProgram(t, printNative+`
static M.l
class L d
method worker 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 200
  icmp
  jz out
  gets M.l
  menter
  gets M.l
  mexit
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
out:
  ret
end
method main 0 void
  new L
  puts M.l
  spawn worker 0
  store 0
  spawn worker 0
  store 1
  load 0
  join
  load 1
  join
  ret
end`)
	pc := &progressChecker{DefaultCoordinator: NewDefaultCoordinator(NewSeededPolicy(3, 32, 128)), t: t}
	v, err := New(Config{Program: p, Env: env.New(1), Coordinator: pc, TrackProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if pc.switches < 5 {
		t.Fatalf("only %d switches; the checker barely ran", pc.switches)
	}
	// The rolling control-path checksum must be non-zero and differ across
	// threads (they executed different interleavings of the same code).
	chks := map[uint64]bool{}
	for _, th := range v.Threads() {
		if th.Progress.Chk == 0 {
			t.Errorf("thread %s has zero checksum", th.VTID)
		}
		chks[th.Progress.Chk] = true
	}
	if len(chks) < 2 {
		t.Error("checksums should differ across threads")
	}
	_ = heap.NullRef
}
