package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/env"
)

// runExpectFatal runs src and asserts a fatal error containing wantSub.
func runExpectFatal(t *testing.T, src, wantSub string) {
	t.Helper()
	p := buildProgram(t, src)
	v, err := New(Config{Program: p, Env: env.New(1), MaxInstructions: 1_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	err = v.Run()
	var fe *FatalError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FatalError containing %q", err, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q missing %q", err, wantSub)
	}
}

func TestFatalDivisionByZero(t *testing.T) {
	runExpectFatal(t, `
method main 0 void
  iconst 1
  iconst 0
  idiv
  pop
  ret
end`, "division by zero")
}

func TestFatalNullFieldAccess(t *testing.T) {
	runExpectFatal(t, `
class C x
method main 0 void
  null
  getf C.x
  pop
  ret
end`, "null reference")
}

func TestFatalArrayOOB(t *testing.T) {
	runExpectFatal(t, `
method main 0 void
  iconst 3
  newarr int
  iconst 9
  aload
  pop
  ret
end`, "out of bounds")
}

func TestFatalKindMismatch(t *testing.T) {
	runExpectFatal(t, `
method main 0 void
  fconst 1.5
  iconst 1
  iadd
  pop
  ret
end`, "not an int")
}

func TestFatalMonitorExitWithoutOwnership(t *testing.T) {
	runExpectFatal(t, `
class L d
method main 0 void
  new L
  mexit
  ret
end`, "not owned")
}

func TestFatalWaitWithoutMonitor(t *testing.T) {
	runExpectFatal(t, `
class L d
method main 0 void
  new L
  wait
  ret
end`, "not owned")
}

func TestFatalNotifyWithoutMonitor(t *testing.T) {
	runExpectFatal(t, `
class L d
method main 0 void
  new L
  notify
  ret
end`, "not owned")
}

func TestFatalInstructionBudget(t *testing.T) {
	p := buildProgram(t, `
method main 0 void
loop:
  jmp loop
end`)
	v, err := New(Config{Program: p, Env: env.New(1), MaxInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); !errors.Is(err, ErrInstrBudget) {
		t.Fatalf("err = %v, want budget", err)
	}
}

func TestReentrantMonitor(t *testing.T) {
	_, e := runProgram(t, printNative+`
class L d
static M.l
method inner 0 void
  gets M.l
  menter
  sconst "inner"
  call print
  gets M.l
  mexit
  ret
end
method main 0 void
  new L
  puts M.l
  gets M.l
  menter
  call inner
  gets M.l
  mexit
  sconst "done"
  call print
  ret
end`)
	lines := e.Console().Lines()
	if len(lines) != 2 || lines[0] != "inner" || lines[1] != "done" {
		t.Fatalf("console = %v", lines)
	}
}

func TestHaltStopsAllThreads(t *testing.T) {
	v, e := runProgram(t, printNative+`
method spinner 0 void
loop:
  yield
  jmp loop
end
method main 0 void
  spawn spinner 0
  pop
  sconst "halting"
  call print
  halt
end`)
	lines := e.Console().Lines()
	if len(lines) != 1 || lines[0] != "halting" {
		t.Fatalf("console = %v", lines)
	}
	_ = v
}

func TestKillFromAnotherGoroutine(t *testing.T) {
	p := buildProgram(t, `
method main 0 void
loop:
  jmp loop
end`)
	v, err := New(Config{Program: p, Env: env.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- v.Run() }()
	v.Kill()
	if err := <-done; err != nil {
		t.Fatalf("killed run returned %v", err)
	}
	if !v.Killed() {
		t.Fatal("Killed() false")
	}
}

func TestVMRunsOnlyOnce(t *testing.T) {
	p := buildProgram(t, "method main 0 void\n  ret\nend")
	v, _ := New(Config{Program: p, Env: env.New(1)})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); !errors.Is(err, ErrHalted) {
		t.Fatalf("second run: %v", err)
	}
}

func TestNotifyWakesFIFO(t *testing.T) {
	// Two waiters; notify wakes exactly one (the first), notifyall the rest.
	_, e := runProgram(t, printNative+`
class L d
static M.l
static M.count
method waiter 1 void
  gets M.l
  menter
  gets M.count
  iconst 1
  iadd
  puts M.count
  gets M.l
  wait
  load 0
  i2s
  sconst "woke "
  swap
  scat
  call print
  gets M.l
  mexit
  ret
end
method main 0 void
  new L
  puts M.l
  iconst 0
  puts M.count
  iconst 1
  spawn waiter 1
  store 0
  iconst 2
  spawn waiter 1
  store 1
wait_ready:
  gets M.count
  iconst 2
  icmp
  jnz spin
  jmp ready
spin:
  yield
  jmp wait_ready
ready:
  gets M.l
  menter
  gets M.l
  notifyall
  gets M.l
  mexit
  load 0
  join
  load 1
  join
  sconst "all joined"
  call print
  ret
end`)
	lines := e.Console().Lines()
	if len(lines) != 3 || lines[2] != "all joined" {
		t.Fatalf("console = %v", lines)
	}
	woke := map[string]bool{lines[0]: true, lines[1]: true}
	if !woke["woke 1"] || !woke["woke 2"] {
		t.Fatalf("wrong wakers: %v", lines)
	}
}

func TestStringOpcodes(t *testing.T) {
	_, e := runProgram(t, printNative+`
method main 0 void
  sconst "hello"
  slen
  i2s
  call print
  sconst "abc"
  sconst "abd"
  scmp
  i2s
  call print
  iconst 88
  chr
  call print
  sconst "hash me"
  hashstr
  sconst "hash me"
  hashstr
  icmp
  i2s
  call print
  fconst 1.5
  f2s
  call print
  sconst "42"
  s2i
  iconst 1
  iadd
  i2s
  call print
  ret
end`)
	want := []string{"5", "-1", "X", "0", "1.5", "43"}
	lines := e.Console().Lines()
	if len(lines) != len(want) {
		t.Fatalf("console = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestBinaryImageExecution(t *testing.T) {
	// A program survives a binary round trip and still runs.
	p1 := buildProgram(t, printNative+`
method main 0 void
  iconst 6
  iconst 7
  imul
  i2s
  call print
  ret
end`)
	img, err := bytecode.EncodeBytes(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bytecode.DecodeBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	e := env.New(1)
	v, err := New(Config{Program: p2, Env: e})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if lines := e.Console().Lines(); len(lines) != 1 || lines[0] != "42" {
		t.Fatalf("console = %v", lines)
	}
}

func TestDeterministicStatsAcrossReruns(t *testing.T) {
	src := printNative + `
method worker 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 100
  icmp
  jz out
  load 0
  iconst 1
  iadd
  store 0
  yield
  jmp loop
out:
  ret
end
method main 0 void
  spawn worker 0
  store 0
  spawn worker 0
  store 1
  load 0
  join
  load 1
  join
  ret
end`
	run := func() Stats {
		p := buildProgram(t, src)
		v, err := New(Config{
			Program:     p,
			Env:         env.New(3),
			Coordinator: NewDefaultCoordinator(NewSeededPolicy(77, 32, 128)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return v.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
}
