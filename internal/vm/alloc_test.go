package vm

import (
	"runtime"
	"testing"

	"repro/internal/env"
)

// mallocsDuring returns the number of Go heap allocations performed by f.
func mallocsDuring(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSConstAllocFree pins the decode-once property that pushing a string
// constant is allocation-free: the pool is interned into the VM heap once at
// load time, so a loop that executes sconst 100k times must allocate a
// bounded (setup-only) amount, not one string object per push.
func TestSConstAllocFree(t *testing.T) {
	src := `
method main 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 100000
  icmp
  jz done
  sconst "the quick brown fox jumps over the lazy dog"
  pop
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
done:
  ret
end
`
	p := buildProgram(t, src)
	e := env.New(1)
	v, err := New(Config{Program: p, Env: e, MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	n := mallocsDuring(func() {
		if err := v.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	// 100k sconst executions: the pre-interning interpreter allocated ≥100k
	// string objects here. Allow generous slack for scheduler/runtime noise.
	if n > 10_000 {
		t.Errorf("sconst loop performed %d allocations, want bounded setup-only (<10000)", n)
	}
}

// TestThreadedHotLoopAllocFree pins the threaded engine's zero-allocation
// property: the execution context (tctx) is one reusable struct per VM and
// the compiled closure streams are built at construction, so a multi-million
// instruction arithmetic loop must not allocate per iteration — only the
// bounded setup (runtime noise, the odd GC bookkeeping) is allowed.
func TestThreadedHotLoopAllocFree(t *testing.T) {
	src := `
method main 0 void
  iconst 0
  store 0
  iconst 0
  store 1
loop:
  load 1
  iconst 300000
  icmp
  jz done
  load 0
  iconst 31
  imul
  load 1
  iadd
  store 0
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
`
	p := buildProgram(t, src)
	for _, d := range []Dispatch{DispatchThreaded, DispatchSwitch} {
		v, err := New(Config{Program: p, Env: env.New(1), MaxInstructions: 50_000_000, Dispatch: d})
		if err != nil {
			t.Fatalf("new vm (%v): %v", d, err)
		}
		n := mallocsDuring(func() {
			if err := v.Run(); err != nil {
				t.Fatalf("run (%v): %v", d, err)
			}
		})
		// ~3.9M executed instructions: one allocation per iteration (or per
		// block) would show up as hundreds of thousands.
		if n > 1000 {
			t.Errorf("%v: hot loop performed %d allocations, want bounded setup-only (<1000)", d, n)
		}
	}
}
