package vm

import (
	"runtime"
	"testing"

	"repro/internal/env"
)

// mallocsDuring returns the number of Go heap allocations performed by f.
func mallocsDuring(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSConstAllocFree pins the decode-once property that pushing a string
// constant is allocation-free: the pool is interned into the VM heap once at
// load time, so a loop that executes sconst 100k times must allocate a
// bounded (setup-only) amount, not one string object per push.
func TestSConstAllocFree(t *testing.T) {
	src := `
method main 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 100000
  icmp
  jz done
  sconst "the quick brown fox jumps over the lazy dog"
  pop
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
done:
  ret
end
`
	p := buildProgram(t, src)
	e := env.New(1)
	v, err := New(Config{Program: p, Env: e, MaxInstructions: 50_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	n := mallocsDuring(func() {
		if err := v.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	// 100k sconst executions: the pre-interning interpreter allocated ≥100k
	// string objects here. Allow generous slack for scheduler/runtime noise.
	if n > 10_000 {
		t.Errorf("sconst loop performed %d allocations, want bounded setup-only (<10000)", n)
	}
}
