package vm

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/native"
)

// Interpreter kind-mismatch errors are fatal (R0): FTVM traps them rather
// than modelling catchable exceptions.
var (
	errWantInt   = errors.New("operand is not an int")
	errWantFloat = errors.New("operand is not a float")
	errWantRef   = errors.New("operand is not a ref")
	errDivByZero = errors.New("integer division by zero")
)

func wantInt(v heap.Value) (int64, error) {
	if v.Kind != heap.KindInt {
		return 0, fmt.Errorf("%w: %s", errWantInt, v)
	}
	return v.I, nil
}

func wantFloat(v heap.Value) (float64, error) {
	if v.Kind != heap.KindFloat {
		return 0, fmt.Errorf("%w: %s", errWantFloat, v)
	}
	return v.F, nil
}

func wantRef(v heap.Value) (heap.Ref, error) {
	if v.Kind != heap.KindRef {
		return 0, fmt.Errorf("%w: %s", errWantRef, v)
	}
	return v.R, nil
}

// step executes one instruction of t. Blocking operations (monitorenter,
// wait) leave the PC unchanged so the instruction re-executes when the
// thread is rescheduled; all other paths advance the PC.
func (vm *VM) step(t *Thread) error {
	f := &t.frames[len(t.frames)-1]
	m := vm.prog.Methods[f.Method]
	in := m.Code[f.PC]
	if vm.isBranch[in.Op] {
		t.BrCnt++
		vm.stats.Branches++
	}
	switch in.Op {
	case bytecode.OpNop:

	case bytecode.OpIConst:
		f.push(heap.IntVal(int64(in.A)))
	case bytecode.OpLConst:
		f.push(heap.IntVal(vm.prog.IntPool[in.A]))
	case bytecode.OpFConst:
		f.push(heap.FloatVal(vm.prog.FloatPool[in.A]))
	case bytecode.OpSConst:
		r, err := vm.hp.AllocString(vm.prog.StrPool[in.A])
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpNull:
		f.push(heap.Null())
	case bytecode.OpPop:
		f.pop()
	case bytecode.OpDup:
		f.push(*f.top())
	case bytecode.OpSwap:
		n := len(f.Stack)
		f.Stack[n-1], f.Stack[n-2] = f.Stack[n-2], f.Stack[n-1]

	case bytecode.OpLoad:
		f.push(f.Locals[in.A])
	case bytecode.OpStore:
		f.Locals[in.A] = f.pop()

	case bytecode.OpIAdd, bytecode.OpISub, bytecode.OpIMul, bytecode.OpIDiv,
		bytecode.OpIRem, bytecode.OpIAnd, bytecode.OpIOr, bytecode.OpIXor,
		bytecode.OpIShl, bytecode.OpIShr:
		b, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		var res int64
		switch in.Op {
		case bytecode.OpIAdd:
			res = a + b
		case bytecode.OpISub:
			res = a - b
		case bytecode.OpIMul:
			res = a * b
		case bytecode.OpIDiv:
			if b == 0 {
				return errDivByZero
			}
			res = a / b
		case bytecode.OpIRem:
			if b == 0 {
				return errDivByZero
			}
			res = a % b
		case bytecode.OpIAnd:
			res = a & b
		case bytecode.OpIOr:
			res = a | b
		case bytecode.OpIXor:
			res = a ^ b
		case bytecode.OpIShl:
			res = a << (uint64(b) & 63)
		case bytecode.OpIShr:
			res = a >> (uint64(b) & 63)
		}
		f.push(heap.IntVal(res))
	case bytecode.OpINeg:
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.IntVal(-a))

	case bytecode.OpFAdd, bytecode.OpFSub, bytecode.OpFMul, bytecode.OpFDiv:
		b, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		a, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		var res float64
		switch in.Op {
		case bytecode.OpFAdd:
			res = a + b
		case bytecode.OpFSub:
			res = a - b
		case bytecode.OpFMul:
			res = a * b
		case bytecode.OpFDiv:
			res = a / b
		}
		f.push(heap.FloatVal(res))
	case bytecode.OpFNeg:
		a, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.FloatVal(-a))

	case bytecode.OpI2F:
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.FloatVal(float64(a)))
	case bytecode.OpF2I:
		a, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.IntVal(int64(a)))

	case bytecode.OpICmp:
		b, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.IntVal(cmpInt(a, b)))
	case bytecode.OpFCmp:
		b, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		a, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		switch {
		case a < b:
			f.push(heap.IntVal(-1))
		case a > b:
			f.push(heap.IntVal(1))
		default:
			f.push(heap.IntVal(0))
		}
	case bytecode.OpSCmp:
		sb, err := vm.popStr(f)
		if err != nil {
			return err
		}
		sa, err := vm.popStr(f)
		if err != nil {
			return err
		}
		switch {
		case sa < sb:
			f.push(heap.IntVal(-1))
		case sa > sb:
			f.push(heap.IntVal(1))
		default:
			f.push(heap.IntVal(0))
		}
	case bytecode.OpRefEq:
		b, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		a, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		f.push(heap.BoolVal(a == b))

	case bytecode.OpJmp:
		f.PC = in.A
		return nil
	case bytecode.OpJz, bytecode.OpJnz:
		c, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		if (c == 0) == (in.Op == bytecode.OpJz) {
			f.PC = in.A
			return nil
		}

	case bytecode.OpCall:
		return vm.doCall(t, f, in.A)
	case bytecode.OpRet, bytecode.OpRetV:
		return vm.doReturn(t, in.Op == bytecode.OpRetV)

	case bytecode.OpNew:
		cls := &vm.prog.Classes[in.A]
		r, err := vm.hp.AllocRecord(in.A, len(cls.Fields), cls.Finalizer >= 0)
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpGetF:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		v, err := vm.hp.GetField(r, int(in.A))
		if err != nil {
			return err
		}
		f.push(v)
	case bytecode.OpPutF:
		v := f.pop()
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		if err := vm.hp.SetField(r, int(in.A), v); err != nil {
			return err
		}
	case bytecode.OpGetS:
		f.push(vm.statics[in.A])
	case bytecode.OpPutS:
		vm.statics[in.A] = f.pop()

	case bytecode.OpNewArr:
		n, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		var r heap.Ref
		switch in.A {
		case bytecode.ElemInt:
			r, err = vm.hp.AllocIntArr(int(n))
		case bytecode.ElemFloat:
			r, err = vm.hp.AllocFloatArr(int(n))
		default:
			r, err = vm.hp.AllocRefArr(int(n))
		}
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpALoad:
		i, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		v, err := vm.hp.ArrGet(r, int(i))
		if err != nil {
			return err
		}
		f.push(v)
	case bytecode.OpAStore:
		v := f.pop()
		i, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		if err := vm.hp.ArrSet(r, int(i), v); err != nil {
			return err
		}
	case bytecode.OpALen:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		n, err := vm.hp.ArrLen(r)
		if err != nil {
			return err
		}
		f.push(heap.IntVal(int64(n)))

	case bytecode.OpSLen:
		s, err := vm.popStr(f)
		if err != nil {
			return err
		}
		f.push(heap.IntVal(int64(len(s))))
	case bytecode.OpSCat:
		sb, err := vm.popStr(f)
		if err != nil {
			return err
		}
		sa, err := vm.popStr(f)
		if err != nil {
			return err
		}
		r, err := vm.hp.AllocString(sa + sb)
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpSIdx:
		i, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		s, err := vm.popStr(f)
		if err != nil {
			return err
		}
		if i < 0 || i >= int64(len(s)) {
			return fmt.Errorf("string index %d of %d: %w", i, len(s), heap.ErrIndexOOB)
		}
		f.push(heap.IntVal(int64(s[i])))
	case bytecode.OpSSub:
		end, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		start, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		s, err := vm.popStr(f)
		if err != nil {
			return err
		}
		if start < 0 || end < start || end > int64(len(s)) {
			return fmt.Errorf("substring [%d,%d) of %d: %w", start, end, len(s), heap.ErrIndexOOB)
		}
		r, err := vm.hp.AllocString(s[start:end])
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpI2S:
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		r, err := vm.hp.AllocString(strconv.FormatInt(a, 10))
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpF2S:
		a, err := wantFloat(f.pop())
		if err != nil {
			return err
		}
		r, err := vm.hp.AllocString(strconv.FormatFloat(a, 'g', -1, 64))
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpS2I:
		s, err := vm.popStr(f)
		if err != nil {
			return err
		}
		n, perr := strconv.ParseInt(s, 10, 64)
		if perr != nil {
			n = 0
		}
		f.push(heap.IntVal(n))
	case bytecode.OpChr:
		a, err := wantInt(f.pop())
		if err != nil {
			return err
		}
		r, err := vm.hp.AllocString(string([]byte{byte(a)}))
		if err != nil {
			return err
		}
		f.push(heap.RefVal(r))
	case bytecode.OpHashStr:
		s, err := vm.popStr(f)
		if err != nil {
			return err
		}
		f.push(heap.IntVal(fnv64(s)))

	case bytecode.OpMEnter:
		r, err := wantRef(*f.top())
		if err != nil {
			return err
		}
		done, err := vm.monEnter(t, r)
		if err != nil {
			return err
		}
		if !done {
			return nil // blocked or gated: re-execute on resume
		}
		f.pop()
	case bytecode.OpMExit:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		if err := vm.monExit(t, r); err != nil {
			return err
		}
	case bytecode.OpWait:
		r, err := wantRef(*f.top())
		if err != nil {
			return err
		}
		if t.reacquiring {
			done, rerr := vm.reacquireAfterWait(t, r)
			if rerr != nil {
				return rerr
			}
			if !done {
				return nil
			}
			f.pop() // wait completed
		} else {
			vm.stats.WaitOps++
			if werr := vm.monWait(t, r); werr != nil {
				return werr
			}
			return nil // now waiting; PC unchanged
		}
	case bytecode.OpNotify, bytecode.OpNotifyAll:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		n := 1
		if in.Op == bytecode.OpNotifyAll {
			n = -1
		}
		vm.stats.NotifyOps++
		if err := vm.monNotify(t, r, n); err != nil {
			return err
		}

	case bytecode.OpSpawn:
		if t.finalizerDepth > 0 {
			return errors.New("finalizer spawned a thread (violates §4.3 determinism assumption)")
		}
		nargs := int(in.B)
		args := make([]heap.Value, nargs)
		for i := nargs - 1; i >= 0; i-- {
			args[i] = f.pop()
		}
		child, err := vm.newThread(t, in.A, args)
		if err != nil {
			return err
		}
		f.push(heap.RefVal(child.Ref))
	case bytecode.OpJoin:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		if _, err := vm.hp.GetKind(r, heap.ObjThread); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		f.PC++ // return past the join
		t.pushFrame(vm.prog.Methods[vm.joinIdx], vm.joinIdx, []heap.Value{heap.RefVal(r)})
		return nil
	case bytecode.OpYield:
		t.yielded = true
	case bytecode.OpAlive:
		r, err := wantRef(f.pop())
		if err != nil {
			return err
		}
		obj, err := vm.hp.GetKind(r, heap.ObjThread)
		if err != nil {
			return fmt.Errorf("alive: %w", err)
		}
		target := vm.threads[obj.Class]
		f.push(heap.BoolVal(!target.logicallyDead))
	case bytecode.OpMarkDead:
		t.logicallyDead = true

	case bytecode.OpHalt:
		f.PC++
		vm.halted = true
		return nil

	default:
		return fmt.Errorf("unimplemented opcode %s", in.Op)
	}
	f.PC++
	return nil
}

func cmpInt(a, b int64) int64 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func fnv64(s string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h >> 1) // keep it non-negative for program convenience
}

func (vm *VM) popStr(f *Frame) (string, error) {
	r, err := wantRef(f.pop())
	if err != nil {
		return "", err
	}
	return vm.hp.StringAt(r)
}

// doCall handles OpCall for both bytecode and native callees.
func (vm *VM) doCall(t *Thread, f *Frame, methodIdx int32) error {
	callee := vm.prog.Methods[methodIdx]
	if callee.Native {
		if def, ok := vm.natives.Lookup(callee.NativeSig); ok && vm.natives.Intercepted(def.Sig) {
			if !vm.coord.NativeReady(vm, t, def) {
				// Gate before popping args or advancing the pc: the call
				// re-executes when the coordinator re-admits the thread.
				// Undo this OpCall's branch tick so br_cnt counts the call
				// exactly once.
				t.BrCnt--
				vm.stats.Branches--
				t.state = StateGated
				t.blockedOn = nil
				return nil
			}
		}
	}
	nargs := callee.NArgs
	args := make([]heap.Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	f.PC++ // resume after the call
	if !callee.Native {
		t.pushFrame(callee, methodIdx, args)
		return nil
	}
	def, ok := vm.natives.Lookup(callee.NativeSig)
	if !ok {
		return fmt.Errorf("%v %q", native.ErrUnknownNative, callee.NativeSig)
	}
	vm.stats.NativeCalls++
	var results []heap.Value
	var err error
	if vm.natives.Intercepted(def.Sig) {
		if t.finalizerDepth > 0 {
			return fmt.Errorf("finalizer called intercepted native %s (violates §4.3 determinism assumption)", def.Sig)
		}
		t.NatSeq++
		vm.stats.NMIntercepted++
		if def.Output {
			vm.stats.NMOutputCommits++
		}
		results, err = vm.coord.InvokeNative(vm, t, def, args)
	} else {
		results, err = vm.DirectNative(t, def, args)
		if err != nil && def.AcquiresLocks && errors.Is(err, ErrMonitorContends) {
			// The native hit a contended (or replay-gated) monitor and the
			// thread is parked. Roll the call back — restore the operand
			// stack and pc, and undo this attempt's counters — so the whole
			// native re-executes when the thread is readmitted
			// (AcquiresLocks natives are side-effect-free up to their first
			// acquisition).
			f.PC--
			for _, a := range args {
				f.push(a)
			}
			t.BrCnt--
			vm.stats.Branches--
			vm.stats.NativeCalls--
			return nil
		}
	}
	if err != nil {
		return err
	}
	if len(results) != def.Returns {
		return fmt.Errorf("native %s returned %d values, want %d", def.Sig, len(results), def.Returns)
	}
	for _, v := range results {
		f.push(v)
	}
	return nil
}

// doReturn pops the current frame; when the last frame returns, the thread
// runs its death sequence ($finish) and then dies.
func (vm *VM) doReturn(t *Thread, hasValue bool) error {
	var ret heap.Value
	if hasValue {
		ret = t.frames[len(t.frames)-1].pop()
	}
	done := t.popFrame()
	if done.finalizer {
		t.finalizerDepth--
	}
	if len(t.frames) > 0 {
		if hasValue {
			t.frames[len(t.frames)-1].push(ret)
		}
		return nil
	}
	if !t.finishing {
		t.finishing = true
		t.pushFrame(vm.prog.Methods[vm.finishIdx], vm.finishIdx, []heap.Value{heap.RefVal(t.Ref)})
		return nil
	}
	t.state = StateDead
	return nil
}
