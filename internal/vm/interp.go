package vm

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/heap"
	"repro/internal/native"
)

// Interpreter kind-mismatch errors are fatal (R0): FTVM traps them rather
// than modelling catchable exceptions.
var (
	errWantInt   = errors.New("operand is not an int")
	errWantFloat = errors.New("operand is not a float")
	errWantRef   = errors.New("operand is not a ref")
	errDivByZero = errors.New("integer division by zero")
)

// Cold-path error constructors, kept out of the case bodies so the hot loop
// only carries a branch to them.

func notInt(v heap.Value) error { return fmt.Errorf("%w: %s", errWantInt, v) }

func notFloat(v heap.Value) error { return fmt.Errorf("%w: %s", errWantFloat, v) }

func notRef(v heap.Value) error { return fmt.Errorf("%w: %s", errWantRef, v) }

// intOpErr reports the mismatched operand of a binary int op, right operand
// first (the historical pop order).
func intOpErr(a, b heap.Value) error {
	if b.Kind != heap.KindInt {
		return notInt(b)
	}
	return notInt(a)
}

func floatOpErr(a, b heap.Value) error {
	if b.Kind != heap.KindFloat {
		return notFloat(b)
	}
	return notFloat(a)
}

func wantInt(v heap.Value) (int64, error) {
	if v.Kind != heap.KindInt {
		return 0, notInt(v)
	}
	return v.I, nil
}

func wantFloat(v heap.Value) (float64, error) {
	if v.Kind != heap.KindFloat {
		return 0, notFloat(v)
	}
	return v.F, nil
}

func wantRef(v heap.Value) (heap.Ref, error) {
	if v.Kind != heap.KindRef {
		return 0, notRef(v)
	}
	return v.R, nil
}

// strAt resolves a string operand (ref to a heap string object).
func (vm *VM) strAt(v heap.Value) (string, error) {
	if v.Kind != heap.KindRef {
		return "", notRef(v)
	}
	return vm.hp.StringAt(v.R)
}

// runSlice interprets t until preemption, blocking, death or halt. With an
// exact target (replay), the slice stops only when the thread reaches the
// recorded (br_cnt, method, pc) position; reaching the branch count at a
// different position keeps executing the (branch-free, hence br_cnt-stable)
// tail until the position matches.
//
// This is the decode-once hot loop. The resolved code of the active frame,
// the pc, and the operand stack are cached in locals so straight-line
// bytecodes run without touching the frame, and the dispatch-boundary work
// (GC trigger, replay position checks, frame re-cache) is hoisted out of the
// inner loop. Ops that change the frame stack, block the thread, or allocate
// (and may therefore trip the GC threshold) leave the inner loop; everything
// else stays in it. The cached pc/stack are written back to the frame
// (`flushed`) at every exit, so the frame is always current whenever anything
// outside the loop — GC root scan, fatal-error reporting, coordinator
// callbacks, progress publication — can observe it. When per-bytecode
// progress publication is on (§4.2) or the slice replays an exact target,
// every instruction takes the boundary path so the published
// snapshot/checksum sequence and stop points are bit-identical to the
// historical per-instruction scheduler loop.
//
// Instruction and branch counters, the instruction budget, and the §4.2
// progress checksum are maintained after every executed instruction exactly
// as before; the Kill flag is (still) sampled at each instruction boundary,
// and the GC trigger is re-checked after every allocating instruction — the
// only instructions that can flip it. Within a slice br_cnt only changes on
// branch-flagged instructions, and budget targets always lie strictly above
// the entry br_cnt (quantum ≥ 1), so checking the budget only after branches
// stops the slice at exactly the same instruction as the historical
// every-instruction check.
func (vm *VM) runSlice(t *Thread, target SliceTarget) error {
	slow := vm.trackProgress || target.Exact || vm.pairs != nil
	capv := vm.instrCap
	if capv == 0 {
		capv = ^uint64(0)
	}
	// prevOp threads the dynamic opcode-pair profile (Config.PairCounter)
	// through the slice: consecutive executed instructions, reset per slice.
	prevOp := bytecode.OpInvalid
	// The instruction counter is kept in a register (icnt) and written back
	// at every exit; nothing reads vm.stats.Instructions while a slice is
	// mid-flight.
	icnt := vm.stats.Instructions
	for {
		// Dispatch-boundary checks, in the historical per-instruction order.
		if vm.halted || t.state != StateRunnable || vm.killed.Load() {
			vm.stats.Instructions = icnt
			return nil
		}
		if target.Exact && target.StopRunnable && t.BrCnt == target.Br {
			if f := t.Top(); f != nil && f.Method == target.Method && f.PC == target.PC {
				vm.stats.Instructions = icnt
				return nil
			}
		}
		if vm.hp.NeedsGC() {
			if err := vm.runGC(t); err != nil {
				vm.stats.Instructions = icnt
				return vm.fatal(t, err)
			}
		}
		f := &t.frames[len(t.frames)-1]
		code := vm.rcode[f.Method]
		if !slow {
			code = vm.rfused[f.Method]
		}
		pc := f.PC
		stack := f.Stack
		locals := f.Locals
	inner:
		for {
			in := &code[pc]
			if in.Branch {
				t.BrCnt++
				vm.stats.Branches++
			}
			var err error
			// flushed: the frame already holds the truth (set by ops that
			// hand the frame to helpers). brk: leave the inner loop after
			// this instruction's bookkeeping.
			flushed := false
			brk := false
			switch in.Op {
			case bytecode.OpNop:
				pc++

			case bytecode.OpIConst:
				stack = append(stack, heap.IntVal(in.I))
				pc++
			case bytecode.OpFConst:
				stack = append(stack, heap.FloatVal(in.F))
				pc++
			case bytecode.OpSConst:
				// Pre-interned at load time: pushing the program string is
				// allocation-free (and therefore cannot trip the GC).
				stack = append(stack, heap.RefVal(vm.interned[in.A]))
				pc++
			case bytecode.OpNull:
				stack = append(stack, heap.Null())
				pc++
			case bytecode.OpPop:
				stack = stack[:len(stack)-1]
				pc++
			case bytecode.OpDup:
				stack = append(stack, stack[len(stack)-1])
				pc++
			case bytecode.OpSwap:
				n := len(stack)
				stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
				pc++

			case bytecode.OpLoad:
				stack = append(stack, locals[in.A])
				pc++
			case bytecode.OpStore:
				n := len(stack) - 1
				locals[in.A] = stack[n]
				stack = stack[:n]
				pc++

			case bytecode.OpIAdd:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I + b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpISub:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I - b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIMul:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I * b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIDiv:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				if b.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-2] = heap.IntVal(a.I / b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIRem:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				if b.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-2] = heap.IntVal(a.I % b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIAnd:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I & b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIOr:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I | b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIXor:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I ^ b.I)
				stack = stack[:n-1]
				pc++
			case bytecode.OpIShl:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I << (uint64(b.I) & 63))
				stack = stack[:n-1]
				pc++
			case bytecode.OpIShr:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(a.I >> (uint64(b.I) & 63))
				stack = stack[:n-1]
				pc++
			case bytecode.OpINeg:
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(-a.I)
				pc++

			// Fused superinstructions (fast path only): an iconst (constant
			// in in.I) or load (slot in in.A) plus the following ALU op in
			// one dispatch. Each counts the folded push (icnt++) before any
			// error so a type fault charges exactly the instructions the
			// unfused pair would have.
			case bytecode.OpIAddC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I + in.I)
				pc += 2
			case bytecode.OpISubC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I - in.I)
				pc += 2
			case bytecode.OpIMulC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I * in.I)
				pc += 2
			case bytecode.OpIDivC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				if in.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-1] = heap.IntVal(a.I / in.I)
				pc += 2
			case bytecode.OpIRemC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				if in.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-1] = heap.IntVal(a.I % in.I)
				pc += 2
			case bytecode.OpIAndC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I & in.I)
				pc += 2
			case bytecode.OpIOrC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I | in.I)
				pc += 2
			case bytecode.OpIXorC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I ^ in.I)
				pc += 2
			case bytecode.OpIShlC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I << (uint64(in.I) & 63))
				pc += 2
			case bytecode.OpIShrC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(a.I >> (uint64(in.I) & 63))
				pc += 2
			case bytecode.OpICmpC:
				icnt++
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.IntVal(cmpInt(a.I, in.I))
				pc += 2
			case bytecode.OpIAddL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I + b.I)
				pc += 2
			case bytecode.OpISubL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I - b.I)
				pc += 2
			case bytecode.OpIMulL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I * b.I)
				pc += 2
			case bytecode.OpIDivL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				if b.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-1] = heap.IntVal(a.I / b.I)
				pc += 2
			case bytecode.OpIRemL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				if b.I == 0 {
					err = errDivByZero
					break
				}
				stack[n-1] = heap.IntVal(a.I % b.I)
				pc += 2
			case bytecode.OpIAndL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I & b.I)
				pc += 2
			case bytecode.OpIOrL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I | b.I)
				pc += 2
			case bytecode.OpIXorL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I ^ b.I)
				pc += 2
			case bytecode.OpIShlL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I << (uint64(b.I) & 63))
				pc += 2
			case bytecode.OpIShrL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(a.I >> (uint64(b.I) & 63))
				pc += 2
			case bytecode.OpICmpL:
				icnt++
				n := len(stack)
				a, b := stack[n-1], locals[in.A]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-1] = heap.IntVal(cmpInt(a.I, b.I))
				pc += 2

			case bytecode.OpFAdd:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
					err = floatOpErr(a, b)
					break
				}
				stack[n-2] = heap.FloatVal(a.F + b.F)
				stack = stack[:n-1]
				pc++
			case bytecode.OpFSub:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
					err = floatOpErr(a, b)
					break
				}
				stack[n-2] = heap.FloatVal(a.F - b.F)
				stack = stack[:n-1]
				pc++
			case bytecode.OpFMul:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
					err = floatOpErr(a, b)
					break
				}
				stack[n-2] = heap.FloatVal(a.F * b.F)
				stack = stack[:n-1]
				pc++
			case bytecode.OpFDiv:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
					err = floatOpErr(a, b)
					break
				}
				stack[n-2] = heap.FloatVal(a.F / b.F)
				stack = stack[:n-1]
				pc++
			case bytecode.OpFNeg:
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindFloat {
					err = notFloat(a)
					break
				}
				stack[n-1] = heap.FloatVal(-a.F)
				pc++

			case bytecode.OpI2F:
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindInt {
					err = notInt(a)
					break
				}
				stack[n-1] = heap.FloatVal(float64(a.I))
				pc++
			case bytecode.OpF2I:
				n := len(stack)
				a := stack[n-1]
				if a.Kind != heap.KindFloat {
					err = notFloat(a)
					break
				}
				stack[n-1] = heap.IntVal(int64(a.F))
				pc++

			case bytecode.OpICmp:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindInt || b.Kind != heap.KindInt {
					err = intOpErr(a, b)
					break
				}
				stack[n-2] = heap.IntVal(cmpInt(a.I, b.I))
				stack = stack[:n-1]
				pc++
			case bytecode.OpFCmp:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if a.Kind != heap.KindFloat || b.Kind != heap.KindFloat {
					err = floatOpErr(a, b)
					break
				}
				var res int64
				switch {
				case a.F < b.F:
					res = -1
				case a.F > b.F:
					res = 1
				}
				stack[n-2] = heap.IntVal(res)
				stack = stack[:n-1]
				pc++
			case bytecode.OpSCmp:
				n := len(stack)
				sb, serr := vm.strAt(stack[n-1])
				if serr != nil {
					err = serr
					break
				}
				sa, serr := vm.strAt(stack[n-2])
				if serr != nil {
					err = serr
					break
				}
				var res int64
				switch {
				case sa < sb:
					res = -1
				case sa > sb:
					res = 1
				}
				stack[n-2] = heap.IntVal(res)
				stack = stack[:n-1]
				pc++
			case bytecode.OpRefEq:
				n := len(stack)
				b, a := stack[n-1], stack[n-2]
				if b.Kind != heap.KindRef {
					err = notRef(b)
					break
				}
				if a.Kind != heap.KindRef {
					err = notRef(a)
					break
				}
				stack[n-2] = heap.BoolVal(a.R == b.R)
				stack = stack[:n-1]
				pc++

			case bytecode.OpJmp:
				pc = in.A
			case bytecode.OpJz:
				n := len(stack)
				c := stack[n-1]
				if c.Kind != heap.KindInt {
					err = notInt(c)
					break
				}
				stack = stack[:n-1]
				if c.I == 0 {
					pc = in.A
				} else {
					pc++
				}
			case bytecode.OpJnz:
				n := len(stack)
				c := stack[n-1]
				if c.Kind != heap.KindInt {
					err = notInt(c)
					break
				}
				stack = stack[:n-1]
				if c.I != 0 {
					pc = in.A
				} else {
					pc++
				}

			case bytecode.OpCall:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				err = vm.doCall(t, f, in.A)
			case bytecode.OpRet, bytecode.OpRetV:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				err = vm.doReturn(t, in.Op == bytecode.OpRetV)

			case bytecode.OpNew:
				// Field count and finalizer flag were folded in at predecode.
				r, aerr := vm.hp.AllocRecord(in.A, int(in.I), in.B != 0)
				if aerr != nil {
					err = aerr
					break
				}
				stack = append(stack, heap.RefVal(r))
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpGetF:
				n := len(stack)
				rv := stack[n-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				v, gerr := vm.hp.GetField(rv.R, int(in.A))
				if gerr != nil {
					err = gerr
					break
				}
				stack[n-1] = v
				pc++
			case bytecode.OpPutF:
				n := len(stack)
				v, rv := stack[n-1], stack[n-2]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				if serr := vm.hp.SetField(rv.R, int(in.A), v); serr != nil {
					err = serr
					break
				}
				stack = stack[:n-2]
				pc++
			case bytecode.OpGetS:
				stack = append(stack, vm.statics[in.A])
				pc++
			case bytecode.OpPutS:
				n := len(stack) - 1
				vm.statics[in.A] = stack[n]
				stack = stack[:n]
				pc++

			case bytecode.OpNewArr:
				n := len(stack)
				nv := stack[n-1]
				if nv.Kind != heap.KindInt {
					err = notInt(nv)
					break
				}
				var r heap.Ref
				var aerr error
				switch in.A {
				case bytecode.ElemInt:
					r, aerr = vm.hp.AllocIntArr(int(nv.I))
				case bytecode.ElemFloat:
					r, aerr = vm.hp.AllocFloatArr(int(nv.I))
				default:
					r, aerr = vm.hp.AllocRefArr(int(nv.I))
				}
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-1] = heap.RefVal(r)
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpALoad:
				n := len(stack)
				iv, rv := stack[n-1], stack[n-2]
				if iv.Kind != heap.KindInt {
					err = notInt(iv)
					break
				}
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				v, gerr := vm.hp.ArrGet(rv.R, int(iv.I))
				if gerr != nil {
					err = gerr
					break
				}
				stack[n-2] = v
				stack = stack[:n-1]
				pc++
			case bytecode.OpAStore:
				n := len(stack)
				v, iv, rv := stack[n-1], stack[n-2], stack[n-3]
				if iv.Kind != heap.KindInt {
					err = notInt(iv)
					break
				}
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				if serr := vm.hp.ArrSet(rv.R, int(iv.I), v); serr != nil {
					err = serr
					break
				}
				stack = stack[:n-3]
				pc++
			case bytecode.OpALen:
				n := len(stack)
				rv := stack[n-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				ln, gerr := vm.hp.ArrLen(rv.R)
				if gerr != nil {
					err = gerr
					break
				}
				stack[n-1] = heap.IntVal(int64(ln))
				pc++

			case bytecode.OpSLen:
				n := len(stack)
				s, serr := vm.strAt(stack[n-1])
				if serr != nil {
					err = serr
					break
				}
				stack[n-1] = heap.IntVal(int64(len(s)))
				pc++
			case bytecode.OpSCat:
				n := len(stack)
				sb, serr := vm.strAt(stack[n-1])
				if serr != nil {
					err = serr
					break
				}
				sa, serr := vm.strAt(stack[n-2])
				if serr != nil {
					err = serr
					break
				}
				r, aerr := vm.hp.AllocString(sa + sb)
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-2] = heap.RefVal(r)
				stack = stack[:n-1]
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpSIdx:
				n := len(stack)
				iv := stack[n-1]
				if iv.Kind != heap.KindInt {
					err = notInt(iv)
					break
				}
				s, serr := vm.strAt(stack[n-2])
				if serr != nil {
					err = serr
					break
				}
				if iv.I < 0 || iv.I >= int64(len(s)) {
					err = fmt.Errorf("string index %d of %d: %w", iv.I, len(s), heap.ErrIndexOOB)
					break
				}
				stack[n-2] = heap.IntVal(int64(s[iv.I]))
				stack = stack[:n-1]
				pc++
			case bytecode.OpSSub:
				n := len(stack)
				ev, sv := stack[n-1], stack[n-2]
				if ev.Kind != heap.KindInt {
					err = notInt(ev)
					break
				}
				if sv.Kind != heap.KindInt {
					err = notInt(sv)
					break
				}
				s, serr := vm.strAt(stack[n-3])
				if serr != nil {
					err = serr
					break
				}
				start, end := sv.I, ev.I
				if start < 0 || end < start || end > int64(len(s)) {
					err = fmt.Errorf("substring [%d,%d) of %d: %w", start, end, len(s), heap.ErrIndexOOB)
					break
				}
				r, aerr := vm.hp.AllocString(s[start:end])
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-3] = heap.RefVal(r)
				stack = stack[:n-2]
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpI2S:
				n := len(stack)
				av := stack[n-1]
				if av.Kind != heap.KindInt {
					err = notInt(av)
					break
				}
				r, aerr := vm.hp.AllocString(strconv.FormatInt(av.I, 10))
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-1] = heap.RefVal(r)
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpF2S:
				n := len(stack)
				av := stack[n-1]
				if av.Kind != heap.KindFloat {
					err = notFloat(av)
					break
				}
				r, aerr := vm.hp.AllocString(strconv.FormatFloat(av.F, 'g', -1, 64))
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-1] = heap.RefVal(r)
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpS2I:
				n := len(stack)
				s, serr := vm.strAt(stack[n-1])
				if serr != nil {
					err = serr
					break
				}
				nv, perr := strconv.ParseInt(s, 10, 64)
				if perr != nil {
					nv = 0
				}
				stack[n-1] = heap.IntVal(nv)
				pc++
			case bytecode.OpChr:
				n := len(stack)
				av := stack[n-1]
				if av.Kind != heap.KindInt {
					err = notInt(av)
					break
				}
				r, aerr := vm.hp.AllocString(string([]byte{byte(av.I)}))
				if aerr != nil {
					err = aerr
					break
				}
				stack[n-1] = heap.RefVal(r)
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpHashStr:
				n := len(stack)
				s, serr := vm.strAt(stack[n-1])
				if serr != nil {
					err = serr
					break
				}
				stack[n-1] = heap.IntVal(fnv64(s))
				pc++

			case bytecode.OpMEnter:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				rv := stack[len(stack)-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				done, merr := vm.monEnter(t, rv.R)
				if merr != nil {
					err = merr
					break
				}
				if done {
					f.Stack = f.Stack[:len(f.Stack)-1]
					f.PC = pc + 1
				}
				// Blocked or gated: PC unchanged, re-execute on resume.
			case bytecode.OpMExit:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				rv := stack[len(stack)-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				f.Stack = f.Stack[:len(f.Stack)-1]
				if merr := vm.monExit(t, rv.R); merr != nil {
					err = merr
					break
				}
				f.PC = pc + 1
			case bytecode.OpWait:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				rv := stack[len(stack)-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				if t.reacquiring {
					done, rerr := vm.reacquireAfterWait(t, rv.R)
					if rerr != nil {
						err = rerr
						break
					}
					if done {
						f.Stack = f.Stack[:len(f.Stack)-1] // wait completed
						f.PC = pc + 1
					}
				} else {
					vm.stats.WaitOps++
					if werr := vm.monWait(t, rv.R); werr != nil {
						err = werr
						break
					}
					// Now waiting; PC unchanged.
				}
			case bytecode.OpNotify, bytecode.OpNotifyAll:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				rv := stack[len(stack)-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				f.Stack = f.Stack[:len(f.Stack)-1]
				nn := 1
				if in.Op == bytecode.OpNotifyAll {
					nn = -1
				}
				vm.stats.NotifyOps++
				if merr := vm.monNotify(t, rv.R, nn); merr != nil {
					err = merr
					break
				}
				f.PC = pc + 1

			case bytecode.OpSpawn:
				if t.finalizerDepth > 0 {
					err = errors.New("finalizer spawned a thread (violates §4.3 determinism assumption)")
					break
				}
				base := len(stack) - int(in.B)
				child, serr := vm.newThread(t, in.A, stack[base:])
				if serr != nil {
					err = serr
					break
				}
				stack = append(stack[:base], heap.RefVal(child.Ref))
				pc++
				brk = vm.hp.NeedsGC()
			case bytecode.OpJoin:
				f.PC, f.Stack = pc, stack
				flushed, brk = true, true
				rv := stack[len(stack)-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				if _, gerr := vm.hp.GetKind(rv.R, heap.ObjThread); gerr != nil {
					err = fmt.Errorf("join: %w", gerr)
					break
				}
				f.Stack = f.Stack[:len(f.Stack)-1]
				f.PC = pc + 1 // return past the join
				t.pushFrame(vm.prog.Methods[vm.joinIdx], vm.joinIdx, []heap.Value{heap.RefVal(rv.R)})
			case bytecode.OpYield:
				t.yielded = true
				brk = true
				pc++
			case bytecode.OpAlive:
				n := len(stack)
				rv := stack[n-1]
				if rv.Kind != heap.KindRef {
					err = notRef(rv)
					break
				}
				obj, gerr := vm.hp.GetKind(rv.R, heap.ObjThread)
				if gerr != nil {
					err = fmt.Errorf("alive: %w", gerr)
					break
				}
				stack[n-1] = heap.BoolVal(!vm.threads[obj.Class].logicallyDead)
				pc++
			case bytecode.OpMarkDead:
				t.logicallyDead = true
				pc++

			case bytecode.OpHalt:
				pc++
				vm.halted = true
				brk = true

			default:
				err = fmt.Errorf("unimplemented opcode %s", in.Op)
			}
			if err != nil {
				vm.stats.Instructions = icnt
				if !flushed {
					f.PC, f.Stack = pc, stack
				}
				return vm.fatal(t, err)
			}
			// Post-instruction bookkeeping, in the historical order.
			if slow {
				if vm.pairs != nil {
					if prevOp != bytecode.OpInvalid {
						vm.pairs.Add(prevOp, in.Op)
					}
					prevOp = in.Op
				}
				if !flushed {
					f.PC, f.Stack = pc, stack
					flushed = true
				}
				brk = true
				if vm.trackProgress {
					// Publish the progress indicators into the thread object
					// after every bytecode (§4.2) — the scheduling records
					// read them — and fold the position into the control-path
					// checksum.
					if tf := t.Top(); tf != nil {
						t.Progress.Method = tf.Method
						t.Progress.PC = tf.PC
					} else {
						t.Progress.Method = -1
						t.Progress.PC = -1
					}
					t.Progress.BrCnt = t.BrCnt
					t.Progress.MonCnt = t.MonCnt
					t.Progress.Chk = t.Progress.Chk*1099511628211 ^
						(uint64(uint32(t.Progress.Method))<<32 | uint64(uint32(t.Progress.PC)))
				}
			}
			icnt++
			if icnt > capv {
				vm.stats.Instructions = icnt
				if !flushed {
					f.PC, f.Stack = pc, stack
				}
				return vm.fatal(t, ErrInstrBudget)
			}
			// Straight-line fast path: nothing below can fire unless the
			// instruction was a branch, a boundary op (brk set — includes
			// yield) or the slice runs in slow mode (brk is set too). The
			// kill flag is polled here rather than per instruction: every
			// loop contains a branch, so kill latency stays bounded.
			if brk || in.Branch {
				if vm.killed.Load() {
					vm.stats.Instructions = icnt
					if !flushed {
						f.PC, f.Stack = pc, stack
					}
					return nil
				}
				if target.Exact {
					if t.BrCnt > target.Br {
						// Ran past the recorded switch point: let the
						// coordinator diagnose the divergence at the next
						// dispatch.
						vm.stats.Instructions = icnt
						return nil
					}
				} else if in.Branch && t.BrCnt >= target.Br {
					vm.stats.Instructions = icnt
					if !flushed {
						f.PC, f.Stack = pc, stack
					}
					return nil
				}
				if t.yielded {
					t.yielded = false
					vm.stats.Instructions = icnt
					if !flushed {
						f.PC, f.Stack = pc, stack
					}
					return nil
				}
				if brk {
					if !flushed {
						f.PC, f.Stack = pc, stack
					}
					break inner
				}
			}
		}
	}
}

func cmpInt(a, b int64) int64 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func fnv64(s string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h >> 1) // keep it non-negative for program convenience
}

// doCall handles OpCall for both bytecode and native callees. The caller has
// flushed the frame (f.PC at the call instruction, operands on f.Stack).
func (vm *VM) doCall(t *Thread, f *Frame, methodIdx int32) error {
	callee := vm.prog.Methods[methodIdx]
	if !callee.Native {
		// The argument values are copied into the callee's locals by
		// pushFrame, so the operand-stack tail can be passed as a view —
		// no per-call argument slice. Truncate before pushFrame: it may grow
		// t.frames and leave f dangling.
		base := len(f.Stack) - callee.NArgs
		args := f.Stack[base:]
		f.Stack = f.Stack[:base]
		f.PC++ // resume after the call
		t.pushFrame(callee, methodIdx, args)
		return nil
	}
	if def, ok := vm.natives.Lookup(callee.NativeSig); ok && vm.natives.Intercepted(def.Sig) {
		if !vm.coord.NativeReady(vm, t, def) {
			// Gate before popping args or advancing the pc: the call
			// re-executes when the coordinator re-admits the thread.
			// Undo this OpCall's branch tick so br_cnt counts the call
			// exactly once.
			t.BrCnt--
			vm.stats.Branches--
			t.state = StateGated
			t.blockedOn = nil
			return nil
		}
	}
	nargs := callee.NArgs
	args := make([]heap.Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	f.PC++ // resume after the call
	def, ok := vm.natives.Lookup(callee.NativeSig)
	if !ok {
		return fmt.Errorf("%v %q", native.ErrUnknownNative, callee.NativeSig)
	}
	vm.stats.NativeCalls++
	var results []heap.Value
	var err error
	if vm.natives.Intercepted(def.Sig) {
		if t.finalizerDepth > 0 {
			return fmt.Errorf("finalizer called intercepted native %s (violates §4.3 determinism assumption)", def.Sig)
		}
		t.NatSeq++
		vm.stats.NMIntercepted++
		if def.Output {
			vm.stats.NMOutputCommits++
		}
		results, err = vm.coord.InvokeNative(vm, t, def, args)
	} else {
		results, err = vm.DirectNative(t, def, args)
		if err != nil && def.AcquiresLocks && errors.Is(err, ErrMonitorContends) {
			// The native hit a contended (or replay-gated) monitor and the
			// thread is parked. Roll the call back — restore the operand
			// stack and pc, and undo this attempt's counters — so the whole
			// native re-executes when the thread is readmitted
			// (AcquiresLocks natives are side-effect-free up to their first
			// acquisition).
			f.PC--
			for _, a := range args {
				f.push(a)
			}
			t.BrCnt--
			vm.stats.Branches--
			vm.stats.NativeCalls--
			return nil
		}
	}
	if err != nil {
		return err
	}
	if len(results) != def.Returns {
		return fmt.Errorf("native %s returned %d values, want %d", def.Sig, len(results), def.Returns)
	}
	for _, v := range results {
		f.push(v)
	}
	return nil
}

// doReturn pops the current frame; when the last frame returns, the thread
// runs its death sequence ($finish) and then dies.
func (vm *VM) doReturn(t *Thread, hasValue bool) error {
	var ret heap.Value
	if hasValue {
		ret = t.frames[len(t.frames)-1].pop()
	}
	done := t.popFrame()
	if done.finalizer {
		t.finalizerDepth--
	}
	if len(t.frames) > 0 {
		if hasValue {
			t.frames[len(t.frames)-1].push(ret)
		}
		return nil
	}
	if !t.finishing {
		t.finishing = true
		t.pushFrame(vm.prog.Methods[vm.finishIdx], vm.finishIdx, []heap.Value{heap.RefVal(t.Ref)})
		return nil
	}
	t.state = StateDead
	return nil
}
