package harness

import (
	"strings"
	"testing"
)

// TestRunBenchmarkPipeline runs the full measurement pipeline (baseline,
// lock primary + full-log replay, sched primary + full-log replay) on the
// two cheapest workloads, without the simulated network.
func TestRunBenchmarkPipeline(t *testing.T) {
	for _, name := range []string{"mtrt", "jess"} {
		r, err := RunBenchmark(name, Config{NoNetwork: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Baseline <= 0 || r.Lock.PrimaryElapsed <= 0 || r.Sched.PrimaryElapsed <= 0 {
			t.Fatalf("%s: missing timings %+v", name, r)
		}
		if r.Lock.Metrics.LockRecords == 0 {
			t.Errorf("%s: no lock records logged", name)
		}
		if r.Lock.Replay == nil || r.Sched.Replay == nil {
			t.Fatalf("%s: missing replay reports", name)
		}
		if r.Lock.Replay.FedResults == 0 {
			t.Errorf("%s: lock replay fed no native results", name)
		}
		t.Logf("%s: base=%v lockP=%v lockB=%v tsP=%v tsB=%v lockRecs=%d switchRecs=%d",
			name, r.Baseline, r.Lock.PrimaryElapsed, r.Lock.ReplayElapsed,
			r.Sched.PrimaryElapsed, r.Sched.ReplayElapsed,
			r.Lock.Metrics.LockRecords, r.Sched.Metrics.SwitchRecords)
	}
}

func TestReportsRender(t *testing.T) {
	results, err := RunAll(Config{NoNetwork: true, Benchmarks: []string{"mtrt"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{Table2(results), Figure2(results), Figure3(results), Figure4(results), Summary(results)} {
		if !strings.Contains(s, "mtrt") && !strings.Contains(s, "benchmark") {
			t.Errorf("report missing content:\n%s", s)
		}
		t.Log("\n" + s)
	}
}
