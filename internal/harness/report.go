package harness

import (
	"fmt"
	"strings"
)

// Table2 renders the per-benchmark event counts in the layout of the
// paper's Table 2: for both implementations the intercepted native methods
// and output commits, then the lock-replication rows (logged messages, locks
// acquired, objects locked, largest l_asn) and the thread-scheduling rows
// (logged messages, reschedules).
func Table2(results []*BenchResult) string {
	var sb strings.Builder
	names := make([]string, len(results))
	for i, r := range results {
		names[i] = r.Name
	}
	w := colWidths(names)

	writeRow := func(impl, event string, vals []uint64) {
		fmt.Fprintf(&sb, "%-28s %-22s", impl, event)
		for i, v := range vals {
			fmt.Fprintf(&sb, " %*d", w[i], v)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-28s %-22s", "Implementation", "Event Intercepted")
	for i, n := range names {
		fmt.Fprintf(&sb, " %*s", w[i], n)
	}
	sb.WriteByte('\n')

	get := func(f func(*BenchResult) uint64) []uint64 {
		out := make([]uint64, len(results))
		for i, r := range results {
			out[i] = f(r)
		}
		return out
	}

	writeRow("Both", "NM", get(func(r *BenchResult) uint64 { return r.Lock.PrimaryStats.NMIntercepted }))
	writeRow("", "NM Output Commits", get(func(r *BenchResult) uint64 { return r.Lock.PrimaryStats.NMOutputCommits }))
	writeRow("Replicated Lock Acq.", "Logged Messages", get(func(r *BenchResult) uint64 { return r.Lock.Metrics.RecordsLogged }))
	writeRow("", "Locks Acquired", get(func(r *BenchResult) uint64 { return r.Lock.PrimaryStats.LocksAcquired }))
	writeRow("", "Objects Locked", get(func(r *BenchResult) uint64 { return r.Lock.PrimaryStats.ObjectsLocked }))
	writeRow("", "Largest l_asn", get(func(r *BenchResult) uint64 { return r.Lock.PrimaryStats.LargestLASN }))
	writeRow("Replicated Thread Sched.", "Logged Messages", get(func(r *BenchResult) uint64 { return r.Sched.Metrics.RecordsLogged }))
	writeRow("", "Sched. Records", get(func(r *BenchResult) uint64 { return r.Sched.Metrics.SwitchRecords }))
	writeRow("", "Reschedules", get(func(r *BenchResult) uint64 { return r.Sched.PrimaryStats.Reschedules }))
	return sb.String()
}

func colWidths(names []string) []int {
	w := make([]int, len(names))
	for i, n := range names {
		w[i] = len(n)
		if w[i] < 9 {
			w[i] = 9
		}
	}
	return w
}

// Figure2 renders the normalized execution times (TS primary/backup, Lock
// primary/backup) per benchmark, as text bars.
func Figure2(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: execution time normalized to the unreplicated VM\n")
	sb.WriteString(fmt.Sprintf("%-10s %12s %12s %12s %12s   (baseline)\n",
		"benchmark", "TS primary", "TS backup", "Lock primary", "Lock backup"))
	for _, r := range results {
		lockP, lockB, tsP, tsB := r.Normalized()
		sb.WriteString(fmt.Sprintf("%-10s %12.2f %12.2f %12.2f %12.2f   (%s)\n",
			r.Name, tsP, tsB, lockP, lockB, r.Baseline.Round(1_000_000)))
	}
	sb.WriteString("\n")
	for _, r := range results {
		lockP, lockB, tsP, tsB := r.Normalized()
		sb.WriteString(fmt.Sprintf("%-10s TSp  %s\n", r.Name, bar(tsP)))
		sb.WriteString(fmt.Sprintf("%-10s TSb  %s\n", "", bar(tsB)))
		sb.WriteString(fmt.Sprintf("%-10s Lkp  %s\n", "", bar(lockP)))
		sb.WriteString(fmt.Sprintf("%-10s Lkb  %s\n", "", bar(lockB)))
	}
	return sb.String()
}

// Figure3 renders the lock-replication overhead decomposition.
func Figure3(results []*BenchResult) string {
	return figureBreakdown(results, true)
}

// Figure4 renders the thread-scheduling overhead decomposition.
func Figure4(results []*BenchResult) string {
	return figureBreakdown(results, false)
}

func figureBreakdown(results []*BenchResult, lockMode bool) string {
	var sb strings.Builder
	recordLabel := "Lock Acquire"
	title := "Figure 3: normalized overhead, replicated lock acquisition"
	if !lockMode {
		recordLabel = "Rescheduling"
		title = "Figure 4: normalized overhead, replicated thread scheduling"
	}
	sb.WriteString(title + "\n")
	sb.WriteString(fmt.Sprintf("%-10s %9s %14s %12s %9s %9s\n",
		"benchmark", "Comm.", recordLabel, "Pessimistic", "Misc", "Total"))
	for _, r := range results {
		m := r.Lock
		if !lockMode {
			m = r.Sched
		}
		ov := m.Decompose(r.Baseline)
		total := 1 + ov.Communication + ov.Record + ov.Pessimism + ov.Misc
		sb.WriteString(fmt.Sprintf("%-10s %8.0f%% %13.0f%% %11.0f%% %8.0f%% %8.2fx\n",
			r.Name, ov.Communication*100, ov.Record*100, ov.Pessimism*100, ov.Misc*100, total))
	}
	return sb.String()
}

func bar(x float64) string {
	n := int(x*12 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 90 {
		n = 90
	}
	return strings.Repeat("#", n) + fmt.Sprintf(" %.2f", x)
}

// Summary reports the headline numbers the paper quotes in §5: the average
// overhead of each technique across the suite.
func Summary(results []*BenchResult) string {
	var lockSum, schedSum float64
	for _, r := range results {
		lockP, _, tsP, _ := r.Normalized()
		lockSum += lockP - 1
		schedSum += tsP - 1
	}
	n := float64(len(results))
	if n == 0 {
		return "no results"
	}
	return fmt.Sprintf(
		"Average overhead across %d benchmarks: replicated lock acquisition %.0f%%, replicated thread scheduling %.0f%%\n(paper: 140%% and 60%%)",
		len(results), lockSum/n*100, schedSum/n*100)
}
