package harness

import (
	"testing"
	"time"

	"repro/internal/replication"
)

func TestDecompose(t *testing.T) {
	base := 100 * time.Millisecond
	m := ModeResult{
		PrimaryElapsed: 250 * time.Millisecond,
		Metrics: replication.PrimaryMetrics{
			Communication: 60 * time.Millisecond,
			Record:        20 * time.Millisecond,
			Pessimism:     30 * time.Millisecond,
		},
	}
	ov := m.Decompose(base)
	if ov.Communication != 0.6 || ov.Record != 0.2 || ov.Pessimism != 0.3 {
		t.Fatalf("components = %+v", ov)
	}
	// total delta 150ms - 110ms accounted = 40ms misc.
	if ov.Misc < 0.39 || ov.Misc > 0.41 {
		t.Fatalf("misc = %v, want ~0.4", ov.Misc)
	}
}

func TestDecomposeClampsNegativeMisc(t *testing.T) {
	// Measured components can exceed the wall-clock delta (overlap on a
	// single core); Misc clamps at zero rather than going negative.
	m := ModeResult{
		PrimaryElapsed: 110 * time.Millisecond,
		Metrics: replication.PrimaryMetrics{
			Communication: 50 * time.Millisecond,
		},
	}
	ov := m.Decompose(100 * time.Millisecond)
	if ov.Misc != 0 {
		t.Fatalf("misc = %v, want 0", ov.Misc)
	}
}

func TestDecomposeZeroBaseline(t *testing.T) {
	var m ModeResult
	if ov := m.Decompose(0); ov != (Overheads{}) {
		t.Fatalf("zero baseline should yield zero overheads: %+v", ov)
	}
}

func TestNormalized(t *testing.T) {
	r := &BenchResult{
		Baseline: 100 * time.Millisecond,
		Lock:     ModeResult{PrimaryElapsed: 240 * time.Millisecond, ReplayElapsed: 120 * time.Millisecond},
		Sched:    ModeResult{PrimaryElapsed: 160 * time.Millisecond, ReplayElapsed: 110 * time.Millisecond},
	}
	lockP, lockB, tsP, tsB := r.Normalized()
	if lockP != 2.4 || lockB != 1.2 || tsP != 1.6 || tsB != 1.1 {
		t.Fatalf("normalized = %v %v %v %v", lockP, lockB, tsP, tsB)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Scale != 1 || c.Repeats != 2 || c.FlushEvery != 512 {
		t.Fatalf("defaults = %+v", c)
	}
	if len(c.Benchmarks) != 6 {
		t.Fatalf("benchmarks = %v", c.Benchmarks)
	}
	if c.NetPerKB == 0 || c.NetPerMsg == 0 {
		t.Fatal("network defaults missing")
	}
	var n Config
	n.NoNetwork = true
	n.fill()
	if n.NetPerKB != 0 || n.NetPerMsg != 0 {
		t.Fatal("NoNetwork should clear link costs")
	}
}
