package harness

import (
	"strings"
	"testing"
)

func TestMeasureTakeover(t *testing.T) {
	r, err := MeasureTakeover("mtrt", 0.5, Config{NoNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.KillAfter < 1 {
		t.Fatalf("kill point = %d", r.KillAfter)
	}
	if r.ColdTakeover <= 0 || r.WarmTakeover < 0 {
		t.Fatalf("takeover times: cold %v warm %v", r.ColdTakeover, r.WarmTakeover)
	}
	report := TakeoverReport([]*TakeoverResult{r})
	if !strings.Contains(report, "mtrt") || !strings.Contains(report, "cold takeover") {
		t.Fatalf("report:\n%s", report)
	}
	t.Logf("\n%s", report)
}
