package harness

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/replication"
)

// modeMetricsJSON is the machine-readable projection of one mode's
// measurement: elapsed times plus the full replication metrics snapshot.
// Durations are emitted in nanoseconds (Go's native time.Duration unit) with
// human-readable mirrors, so downstream tooling can consume either.
type modeMetricsJSON struct {
	PrimaryElapsedNS int64                       `json:"primary_elapsed_ns"`
	PrimaryElapsed   string                      `json:"primary_elapsed"`
	ReplayElapsedNS  int64                       `json:"replay_elapsed_ns"`
	ReplayElapsed    string                      `json:"replay_elapsed"`
	Metrics          replication.PrimaryMetrics  `json:"metrics"`
	Replay           *replication.RecoveryReport `json:"replay,omitempty"`
}

type benchMetricsJSON struct {
	Name       string          `json:"name"`
	BaselineNS int64           `json:"baseline_ns"`
	Baseline   string          `json:"baseline"`
	Lock       modeMetricsJSON `json:"lock"`
	Sched      modeMetricsJSON `json:"sched"`
}

func modeJSON(m *ModeResult) modeMetricsJSON {
	return modeMetricsJSON{
		PrimaryElapsedNS: int64(m.PrimaryElapsed),
		PrimaryElapsed:   m.PrimaryElapsed.Round(time.Microsecond).String(),
		ReplayElapsedNS:  int64(m.ReplayElapsed),
		ReplayElapsed:    m.ReplayElapsed.Round(time.Microsecond).String(),
		Metrics:          m.Metrics,
		Replay:           m.Replay,
	}
}

// MetricsJSON renders the benchmark results as an indented JSON document —
// the raw numbers behind the Table 2 / Figure 2-4 reports, for scripting and
// regression tracking (ftvm-bench -metrics).
func MetricsJSON(results []*BenchResult) (string, error) {
	out := make([]benchMetricsJSON, 0, len(results))
	for _, r := range results {
		out = append(out, benchMetricsJSON{
			Name:       r.Name,
			BaselineNS: int64(r.Baseline),
			Baseline:   r.Baseline.Round(time.Microsecond).String(),
			Lock:       modeJSON(&r.Lock),
			Sched:      modeJSON(&r.Sched),
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", fmt.Errorf("marshal metrics: %w", err)
	}
	return string(b), nil
}
