package harness

import (
	"fmt"
	"strings"
	"time"

	ftvm "repro"
	"repro/internal/programs"
)

// TakeoverResult compares failover latency between the paper's cold backup
// (store the log; on failure re-execute from the initial state) and the
// warm-backup extension (execute concurrently; on failure just keep going).
type TakeoverResult struct {
	Benchmark string
	// KillAfter is the number of logged records after which the primary
	// was killed.
	KillAfter int
	// ColdTakeover is the time from failure detection until the cold
	// backup finished the program (full gated replay + live tail).
	ColdTakeover time.Duration
	// WarmTakeover is the time from failure detection until the warm
	// backup finished the program (it was already mid-execution).
	WarmTakeover time.Duration
	// WarmCaughtUp reports whether the warm backup had consumed the whole
	// log at the moment of failure.
	WarmCaughtUp bool
}

// MeasureTakeover runs the benchmark twice with the same failure point: once
// with a cold backup, once with a warm backup, and reports both takeover
// latencies. The kill point is a fraction (0..1) of the benchmark's total
// log length (measured by a probe run).
func MeasureTakeover(name string, killFraction float64, cfg Config) (*TakeoverResult, error) {
	cfg.fill()
	prog, err := programs.Compile(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	opts := func() ftvm.Options {
		return ftvm.Options{
			EnvSeed:    cfg.EnvSeed,
			PolicySeed: cfg.PolicySeed,
			FlushEvery: 64, // fine batches so kill points are precise
			NetPerMsg:  cfg.NetPerMsg,
			NetPerKB:   cfg.NetPerKB,
			Dispatch:   cfg.Dispatch,
			Clock:      cfg.Clock,
		}
	}

	// Probe: total log length of a clean run.
	probe, err := ftvm.RunReplicated(prog, ftvm.ModeLock, opts())
	if err != nil {
		return nil, fmt.Errorf("probe: %w", err)
	}
	total := int(probe.Primary.RecordsLogged)
	killAt := int(float64(total) * killFraction)
	if killAt < 1 {
		killAt = 1
	}
	res := &TakeoverResult{Benchmark: name, KillAfter: killAt}

	// Cold: RunWithFailover's recovery time is the takeover latency.
	for attempt := 0; ; attempt++ {
		cold, err := ftvm.RunWithFailover(prog, ftvm.ModeLock, ftvm.KillAfterRecords(killAt), opts())
		if err != nil {
			return nil, fmt.Errorf("cold failover: %w", err)
		}
		if cold.Killed && cold.Recovery != nil {
			res.ColdTakeover = cold.RecoveryElapsed
			break
		}
		if attempt > 10 {
			return nil, fmt.Errorf("cold kill never landed")
		}
	}

	// Warm: takeover latency is the time between the primary's death and
	// the warm backup finishing — approximated as warm total wall time
	// minus the primary's portion (the warm backup runs concurrently, so
	// we time the residual tail directly).
	for attempt := 0; ; attempt++ {
		start := cfg.Clock.Now()
		warm, err := ftvm.RunWarmReplicated(prog, ftvm.ModeLock, ftvm.KillAfterRecords(killAt), opts())
		if err != nil {
			return nil, fmt.Errorf("warm failover: %w", err)
		}
		if warm.Killed && warm.Warm != nil {
			elapsedTotal := cfg.Clock.Since(start)
			// The primary died at PrimaryElapsed; everything after is the
			// warm backup finishing alone.
			res.WarmTakeover = elapsedTotal - warm.PrimaryElapsed
			if res.WarmTakeover < 0 {
				res.WarmTakeover = 0
			}
			res.WarmCaughtUp = warm.Warm.CaughtUpAtClose
			break
		}
		if attempt > 10 {
			return nil, fmt.Errorf("warm kill never landed")
		}
	}
	return res, nil
}

// TakeoverReport renders takeover measurements.
func TakeoverReport(results []*TakeoverResult) string {
	var sb strings.Builder
	sb.WriteString("Takeover latency after a mid-run primary failure (extension experiment)\n")
	sb.WriteString(fmt.Sprintf("%-10s %10s %15s %15s %10s\n",
		"benchmark", "kill@rec", "cold takeover", "warm takeover", "caught up"))
	for _, r := range results {
		sb.WriteString(fmt.Sprintf("%-10s %10d %15s %15s %10v\n",
			r.Benchmark, r.KillAfter,
			r.ColdTakeover.Round(time.Millisecond),
			r.WarmTakeover.Round(time.Millisecond),
			r.WarmCaughtUp))
	}
	sb.WriteString("\nThe cold backup replays the whole log before going live; the warm\nbackup executed alongside the primary and only finishes the tail.\n")
	return sb.String()
}
