// Package harness drives the paper's experiments (§5): for every benchmark
// it measures the unreplicated baseline, the replicated-lock-acquisition and
// replicated-thread-scheduling primaries (with the overhead decomposition of
// Figures 3 and 4), and the backup's log-replay time (the backup columns of
// Figure 2), and collects the per-benchmark event counts of Table 2.
package harness

import (
	"fmt"
	"time"

	ftvm "repro"
	"repro/internal/bytecode/pairfreq"
	"repro/internal/env"
	"repro/internal/programs"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/vm"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies every workload (default 1, the paper-shaped sizes).
	Scale int
	// EnvSeed seeds the environments (all runs of one benchmark share it).
	EnvSeed int64
	// PolicySeed seeds the primary scheduling policy.
	PolicySeed int64
	// FlushEvery batches log records per frame (default 512).
	FlushEvery int
	// NetPerMsg/NetPerKB simulate the testbed network, calibrated so the
	// per-record shipping cost relative to our interpreter's speed matches
	// the paper's testbed (100 Mbps Ethernet + 2003-era protocol stacks
	// against a 400 MHz interpreted JVM): 150µs per message plus 450µs per
	// KB. Set NoNetwork for a raw in-process pipe.
	NetPerMsg time.Duration
	NetPerKB  time.Duration
	NoNetwork bool
	// Benchmarks restricts the set (nil = all six, paper order).
	Benchmarks []string
	// Dispatch selects the interpreter engine for every measured VM
	// (default: the threaded fast tier).
	Dispatch vm.Dispatch
	// Repeats measures each configuration this many times and keeps the
	// fastest (default 2; the first run pays allocator/cache warm-up).
	Repeats int
	// Clock is the time source for the runs and the takeover latency
	// measurements. Nil means wall time; internal/simtest supplies a
	// virtual clock for deterministic takeover tests.
	Clock clock.Clock
}

func (c *Config) fill() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.EnvSeed == 0 {
		c.EnvSeed = 20030622 // DSN 2003
	}
	if c.PolicySeed == 0 {
		c.PolicySeed = 42
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 512
	}
	if c.NoNetwork {
		c.NetPerMsg, c.NetPerKB = 0, 0
	} else {
		if c.NetPerMsg == 0 {
			c.NetPerMsg = 150 * time.Microsecond
		}
		if c.NetPerKB == 0 {
			c.NetPerKB = 450 * time.Microsecond
		}
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = programs.Names()
	}
	if c.Repeats < 1 {
		c.Repeats = 2
	}
	c.Clock = clock.Or(c.Clock)
}

// ModeResult holds one replication mode's measurements for a benchmark.
type ModeResult struct {
	PrimaryElapsed time.Duration
	ReplayElapsed  time.Duration
	Metrics        replication.PrimaryMetrics
	Replay         *replication.RecoveryReport
	PrimaryStats   vm.Stats
}

// Overheads decomposes the primary's slowdown relative to the baseline, as
// in Figures 3/4 (fractions of the baseline execution time).
type Overheads struct {
	Communication float64
	Record        float64 // lock-acquire (Fig 3) or rescheduling (Fig 4)
	Pessimism     float64
	Misc          float64
}

// Decompose computes the overhead fractions against baseline.
func (m *ModeResult) Decompose(baseline time.Duration) Overheads {
	if baseline <= 0 {
		return Overheads{}
	}
	total := m.PrimaryElapsed - baseline
	comm := m.Metrics.Communication
	rec := m.Metrics.Record
	pess := m.Metrics.Pessimism
	misc := total - comm - rec - pess
	if misc < 0 {
		misc = 0
	}
	b := float64(baseline)
	return Overheads{
		Communication: float64(comm) / b,
		Record:        float64(rec) / b,
		Pessimism:     float64(pess) / b,
		Misc:          float64(misc) / b,
	}
}

// BenchResult is one benchmark's full measurement set.
type BenchResult struct {
	Name          string
	Baseline      time.Duration
	BaselineStats vm.Stats
	Lock          ModeResult
	Sched         ModeResult
}

// Normalized returns the Figure 2 bars: lock-primary, lock-backup,
// ts-primary, ts-backup execution times normalized to the baseline.
func (r *BenchResult) Normalized() (lockP, lockB, tsP, tsB float64) {
	b := float64(r.Baseline)
	if b <= 0 {
		return 0, 0, 0, 0
	}
	return float64(r.Lock.PrimaryElapsed) / b,
		float64(r.Lock.ReplayElapsed) / b,
		float64(r.Sched.PrimaryElapsed) / b,
		float64(r.Sched.ReplayElapsed) / b
}

// RunBenchmark measures one benchmark under baseline, lock and sched modes.
func RunBenchmark(name string, cfg Config) (*BenchResult, error) {
	cfg.fill()
	prog, err := programs.Compile(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &BenchResult{Name: name}

	// Interleave baseline/lock/sched measurements across rounds and keep
	// the fastest of each; round 0 is warm-up and discarded (process
	// performance drifts, so ordering must not bias any configuration).
	for round := 0; round <= cfg.Repeats; round++ {
		record := round > 0
		base, err := ftvm.Run(prog, ftvm.Options{
			EnvSeed:    cfg.EnvSeed,
			PolicySeed: cfg.PolicySeed,
			Dispatch:   cfg.Dispatch,
		})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", name, err)
		}
		if record && (res.Baseline == 0 || base.Elapsed < res.Baseline) {
			res.Baseline = base.Elapsed
		}
		res.BaselineStats = base.Stats

		for _, mode := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched} {
			mr := &res.Lock
			if mode == ftvm.ModeSched {
				mr = &res.Sched
			}
			envFactory := func() *env.Env { return env.New(cfg.EnvSeed) }
			primary, replay, err := ftvm.MeasureReplay(prog, mode, ftvm.Options{
				EnvSeed:    cfg.EnvSeed,
				PolicySeed: cfg.PolicySeed,
				FlushEvery: cfg.FlushEvery,
				NetPerMsg:  cfg.NetPerMsg,
				NetPerKB:   cfg.NetPerKB,
				Dispatch:   cfg.Dispatch,
			}, envFactory)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", name, mode, err)
			}
			if !record {
				continue
			}
			if mr.PrimaryElapsed == 0 || primary.Elapsed < mr.PrimaryElapsed {
				mr.PrimaryElapsed = primary.Elapsed
				mr.Metrics = primary.Primary
			}
			if mr.ReplayElapsed == 0 || replay.Elapsed < mr.ReplayElapsed {
				mr.ReplayElapsed = replay.Elapsed
			}
			mr.Replay = replay.Report
			mr.PrimaryStats = primary.Stats
		}
	}
	return res, nil
}

// PairFreq runs every configured benchmark once (baseline, unreplicated)
// under the pair-frequency profiler and returns the merged dynamic
// (executed-pair) and static (adjacent-slot) counters. The dynamic counter is
// what sizes the superinstruction fusion table: profiling forces the unfused
// switch slow path so the stream is base opcodes only.
func PairFreq(cfg Config) (dynamic, static *pairfreq.Counter, err error) {
	cfg.fill()
	dynamic, static = &pairfreq.Counter{}, &pairfreq.Counter{}
	for _, name := range cfg.Benchmarks {
		prog, err := programs.Compile(name, cfg.Scale)
		if err != nil {
			return nil, nil, err
		}
		static.AddProgram(prog)
		machine, err := vm.New(vm.Config{
			Program:     prog,
			Env:         env.New(cfg.EnvSeed),
			Coordinator: vm.NewDefaultCoordinator(vm.NewSeededPolicy(cfg.PolicySeed, 1024, 8192)),
			PairCounter: dynamic,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := machine.Run(); err != nil {
			return nil, nil, fmt.Errorf("%s pairfreq run: %w", name, err)
		}
	}
	return dynamic, static, nil
}

// RunAll measures every configured benchmark.
func RunAll(cfg Config) ([]*BenchResult, error) {
	cfg.fill()
	out := make([]*BenchResult, 0, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		r, err := RunBenchmark(name, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
