package programs

import "fmt"

// jessSource is the SPEC _202_jess analog: a forward-chaining production
// system. Facts (directed edges over a universe of nodes) live in a
// monitor-protected working memory; rules fire off an agenda until fixpoint,
// asserting derived facts (transitive closure plus a "reachable pair"
// aggregation rule), over progressively larger rule sets like the original.
// Synchronization profile: a hot working-memory lock acquired per match
// probe and per assertion (third-most acquisitions in Table 2), with a
// rand() native per agenda pop.
func jessSource(scale int) string {
	return fmt.Sprintf(jessTemplate, scale)
}

const jessTemplate = `
var ROUNDS int = %d * 2;
var NODES int = 56;

class WorkingMemory { count int; fires int; }
class Activation { fact int; }

var wm WorkingMemory;
var adj []int;      // adjacency matrix, NODES*NODES
var agenda []int;   // pending (a,b) facts encoded a*NODES+b
var agHead int = 0;
var agTail int = 0;

var seed int = 7;
func lcg() int {
	// Return the high bits: the low bits of an LCG cycle with tiny periods,
	// which would stratify consecutive (a,b) draws into disjoint residue
	// classes and kill all transitivity.
	seed = (seed * 1103515245 + 12345) & 2147483647;
	return seed / 65536;
}

// assertFact adds edge (a,b) to working memory and the agenda if new.
func assertFact(a int, b int) int {
	lock (wm) {
		if (adj[a * NODES + b] == 1) { return 0; }
		adj[a * NODES + b] = 1;
		wm.count = wm.count + 1;
		agenda[agTail] = a * NODES + b;
		agTail = (agTail + 1) %% len(agenda);
		return 1;
	}
}

// hasFact probes working memory under its monitor (synchronized container
// access, as in the original).
func hasFact(a int, b int) int {
	lock (wm) { return adj[a * NODES + b]; }
}

var derivedBuf []int;

// fireTransitivity: for new fact (a,b), derive (a,c) for each (b,c) and
// (c,b) for each (c,a). The match scan runs as one synchronized batch over
// working memory; each derived fact is then asserted (locking again).
func fireTransitivity(a int, b int) int {
	// Each rule firing allocates an activation record and synchronizes on
	// it (jess's per-activation locking gives it thousands of unique locked
	// objects in Table 2).
	var act Activation = new Activation;
	lock (act) { act.fact = a * NODES + b; }
	lock (wm) { wm.fires = wm.fires + 1; }
	var nd int = 0;
	for (var c0 int = 0; c0 < NODES; c0 = c0 + 14) {
		// Working memory is probed in synchronized four-node batches (the
		// rete match in the original holds container monitors per probe).
		lock (wm) {
			for (var c int = c0; c < c0 + 14 && c < NODES; c = c + 1) {
				if (adj[b * NODES + c] == 1 && adj[a * NODES + c] == 0) {
					derivedBuf[nd] = a * NODES + c;
					nd = nd + 1;
				}
				if (adj[c * NODES + a] == 1 && adj[c * NODES + b] == 0) {
					derivedBuf[nd] = c * NODES + b;
					nd = nd + 1;
				}
			}
		}
	}
	var derived int = 0;
	for (var i int = 0; i < nd; i = i + 1) {
		derived = derived + assertFact(derivedBuf[i] / NODES, derivedBuf[i] %% NODES);
	}
	return derived;
}

// closure drains the agenda to fixpoint, returning facts derived.
func closure() int {
	var derived int = 0;
	while (agHead != agTail) {
		// The paper's jess consults non-deterministic salience; model it
		// with a periodic rand() native (it does not affect the result
		// set, only exploration order within this pop).
		var salience int = 0;
		if (agHead & 31 == 0) { salience = rand() %% 2; }
		if (wm.fires %% 15 == 14) { print("agenda fire " + itoa(wm.fires)); }
		var enc int = agenda[agHead];
		agHead = (agHead + 1) %% len(agenda);
		var a int = enc / NODES;
		var b int = enc %% NODES;
		if (salience == 0) {
			derived = derived + fireTransitivity(a, b);
		} else {
			derived = derived + fireTransitivity(a, b);
		}
	}
	return derived;
}

func main() {
	wm = new WorkingMemory;
	adj = new [NODES * NODES]int;
	agenda = new [NODES * NODES + 8]int;
	derivedBuf = new [NODES * 2]int;
	var check int = 0;
	for (var round int = 0; round < ROUNDS; round = round + 1) {
		// Reset and seed a sparse random graph; later rounds are denser
		// ("progressively larger rule sets").
		lock (wm) {
			for (var i int = 0; i < NODES * NODES; i = i + 1) { adj[i] = 0; }
			wm.count = 0;
		}
		agHead = 0;
		agTail = 0;
		var seeds int = NODES * 2 + round * 12;
		for (var s int = 0; s < seeds; s = s + 1) {
			var a int = lcg() %% NODES;
			var b int = lcg() %% NODES;
			if (a != b) { assertFact(a, b); }
		}
		var derived int = closure();
		check = (check + wm.count * 31 + derived) & 1073741823;
		print("round " + itoa(round) + " facts " + itoa(wm.count));
	}
	print("jess checksum " + itoa(check) + " fires " + itoa(wm.fires));
}
`
