// Package programs contains the benchmark workloads: six minilang programs
// whose compute kernels and synchronization profiles mirror the SPEC JVM98
// suite the paper evaluates (§5) — jess (rule engine), jack (parser
// generator run on its own grammar), compress (Lempel-Ziv), db
// (memory-resident database), mpegaudio (subband filter kernel) and mtrt
// (the only multi-threaded one: a two-worker ray tracer).
//
// Workloads are scaled so a baseline run takes fractions of a second of
// interpretation while preserving the paper's *relative* profiles: db ≫ jack
// > jess > mtrt ≫ mpegaudio > compress in lock acquisitions; jack locks the
// most unique objects; acquisition counts are skewed onto few hot locks; and
// only mtrt reschedules threads.
package programs

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/minilang"
)

// Benchmark is one workload generator.
type Benchmark struct {
	// Name is the SPEC JVM98-analog benchmark name.
	Name string
	// Description summarises the kernel.
	Description string
	// MultiThreaded marks workloads that spawn application threads.
	MultiThreaded bool
	// Source produces minilang source at the given scale (1 = the default
	// used by the experiment harness; larger values grow the workload
	// roughly linearly).
	Source func(scale int) string
}

// registry in paper order (Table 2 column order).
var registry = []Benchmark{
	{
		Name:        "jess",
		Description: "forward-chaining rule engine computing transitive closures over a fact base",
		Source:      jessSource,
	},
	{
		Name:        "jack",
		Description: "parser generator tokenizing and regenerating its own grammar",
		Source:      jackSource,
	},
	{
		Name:        "compress",
		Description: "LZW compression and decompression of a synthetic corpus",
		Source:      compressSource,
	},
	{
		Name:        "db",
		Description: "memory-resident database: synchronized lookups, inserts, deletes and scans",
		Source:      dbSource,
	},
	{
		Name:        "mpegaudio",
		Description: "polyphase subband synthesis filter over synthetic audio frames",
		Source:      mpegaudioSource,
	},
	{
		Name:          "mtrt",
		Description:   "two-worker ray tracer rendering a sphere scene from a shared work queue",
		MultiThreaded: true,
		Source:        mtrtSource,
	},
}

// Names returns the benchmark names in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// All returns the benchmarks in paper order.
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// ByName resolves a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return Benchmark{}, fmt.Errorf("unknown benchmark %q (have %v)", name, names)
}

// Compile builds a benchmark program at the given scale.
func Compile(name string, scale int) (*bytecode.Program, error) {
	b, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	prog, err := minilang.Compile(name, b.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", name, err)
	}
	return prog, nil
}
