package programs

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/vm"
)

// runBench executes a benchmark standalone and returns console + stats.
func runBench(t *testing.T, name string, scale int, seed int64) ([]string, vm.Stats) {
	t.Helper()
	prog, err := Compile(name, scale)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	e := env.New(11)
	v, err := vm.New(vm.Config{
		Program:         prog,
		Env:             e,
		Coordinator:     vm.NewDefaultCoordinator(vm.NewSeededPolicy(seed, 1024, 8192)),
		MaxInstructions: 2_000_000_000,
	})
	if err != nil {
		t.Fatalf("vm %s: %v", name, err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return e.Console().Lines(), v.Stats()
}

func TestAllBenchmarksRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			lines, st := runBench(t, b.Name, 1, 1)
			if len(lines) == 0 {
				t.Fatal("no console output")
			}
			final := lines[len(lines)-1]
			if !strings.Contains(final, b.Name) && !strings.Contains(final, "checksum") &&
				!strings.Contains(final, "energy") {
				t.Fatalf("unexpected final line %q", final)
			}
			t.Logf("%s: %d instrs, %d locks, %d objects, largest l_asn %d, %d natives, %d resched",
				b.Name, st.Instructions, st.LocksAcquired, st.ObjectsLocked,
				st.LargestLASN, st.NMIntercepted, st.Reschedules)
			if b.MultiThreaded && st.ThreadsSpawned == 0 {
				t.Error("multithreaded benchmark spawned no threads")
			}
			if !b.MultiThreaded && st.ThreadsSpawned != 0 {
				t.Error("single-threaded benchmark spawned threads")
			}
		})
	}
}

// TestChecksumsScheduleInvariant: the final checksum line must not depend on
// the scheduling seed (a prerequisite for the replication experiments).
func TestChecksumsScheduleInvariant(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			l1, _ := runBench(t, b.Name, 1, 1)
			l2, _ := runBench(t, b.Name, 1, 999)
			f1, f2 := l1[len(l1)-1], l2[len(l2)-1]
			if f1 != f2 {
				t.Fatalf("final line depends on schedule:\n seed 1:   %q\n seed 999: %q", f1, f2)
			}
		})
	}
}

// TestRelativeLockProfile pins the Table 2 shape: db ≫ jack > jess > mtrt ≫
// mpegaudio > compress in lock acquisitions; jack locks the most unique
// objects; only mtrt reschedules.
func TestRelativeLockProfile(t *testing.T) {
	stats := make(map[string]vm.Stats)
	for _, b := range All() {
		_, st := runBench(t, b.Name, 1, 1)
		stats[b.Name] = st
	}
	order := []string{"db", "jack", "jess", "mtrt", "mpegaudio", "compress"}
	for i := 0; i+1 < len(order); i++ {
		a, b := order[i], order[i+1]
		if stats[a].LocksAcquired <= stats[b].LocksAcquired {
			t.Errorf("locks(%s)=%d should exceed locks(%s)=%d",
				a, stats[a].LocksAcquired, b, stats[b].LocksAcquired)
		}
	}
	for name, st := range stats {
		if name == "mtrt" {
			if st.Reschedules == 0 {
				t.Error("mtrt should reschedule")
			}
			continue
		}
		// Single-threaded workloads never switch threads (only the main
		// thread exists), hence zero reschedules as in Table 2.
		if st.Reschedules != 0 {
			t.Errorf("%s rescheduled %d times, want 0", name, st.Reschedules)
		}
	}
	if stats["jack"].ObjectsLocked <= stats["db"].ObjectsLocked {
		t.Errorf("jack should lock the most unique objects: jack=%d db=%d",
			stats["jack"].ObjectsLocked, stats["db"].ObjectsLocked)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	_, s1 := runBench(t, "compress", 1, 1)
	_, s2 := runBench(t, "compress", 2, 1)
	if s2.Instructions <= s1.Instructions {
		t.Fatalf("scale 2 (%d instrs) should exceed scale 1 (%d)", s2.Instructions, s1.Instructions)
	}
}
