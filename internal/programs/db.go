package programs

import "fmt"

// dbSource is the SPEC _209_db analog: a memory-resident database of string
// records behind synchronized operations. A driver issues a randomized mix
// of lookups, inserts, deletes, updates and small scans; every operation
// acquires the global database monitor and the touched record's monitor —
// by far the most lock acquisitions of the suite, heavily skewed onto the
// database lock (the paper's "largest l_asn" shape), with one
// non-deterministic native (rand) per operation like the original's
// query-driven profile.
func dbSource(scale int) string {
	return fmt.Sprintf(dbTemplate, scale)
}

const dbTemplate = `
var OPS int = %d * 70000;
var PROBECAP int = 32;  // bound probe chains through tombstone runs
var CAP int = 2048;        // record slots (power of two)

class Record { key int; name str; balance int; alive int; }
class Database { size int; ops int; }

var db Database;
var records []Record;

var seed int = 0;
var drawn int = 0;
func nextRand() int {
	// Periodic non-deterministic natives (the original's query stream);
	// a local LCG supplies the per-op details in between.
	drawn = drawn + 1;
	if (drawn & 7 == 0) {
		seed = (seed ^ rand()) & 2147483647;
	}
	seed = (seed * 1103515245 + 12345) & 2147483647;
	return seed / 256;
}

func slotOf(key int) int { return (key * 2654435761) & (CAP - 1); }

// probe returns the slot holding key, or -1 (probe chains are bounded, so
// long tombstone runs degrade to misses instead of full-table scans). Every
// record inspection synchronizes on the record — the Vector.elementAt
// analog that makes db the most lock-hungry benchmark in Table 2.
func probe(key int) int {
	var h int = slotOf(key);
	for (var i int = 0; i < PROBECAP; i = i + 1) {
		var r Record = records[h];
		if (r == null) { return 0 - 1; }
		lock (r) {
			if (r.alive == 1 && r.key == key) { return h; }
		}
		h = (h + 1) & (CAP - 1);
	}
	return 0 - 1;
}

// freeSlot finds an insertion slot for key, or -1 when full.
func freeSlot(key int) int {
	var h int = slotOf(key);
	for (var i int = 0; i < PROBECAP; i = i + 1) {
		var r Record = records[h];
		if (r == null) { return h; }
		if (r.alive == 0) { return h; }
		h = (h + 1) & (CAP - 1);
	}
	return 0 - 1;
}

func doInsert(key int) int {
	lock (db) {
		db.ops = db.ops + 1;
		if (probe(key) >= 0) { return 0; }
		var s int = freeSlot(key);
		if (s < 0) { return 0; }
		var r Record = records[s];
		if (r == null) {
			r = new Record;
			records[s] = r;
		}
		lock (r) {
			r.key = key;
			r.name = "cust-" + itoa(key);
			r.balance = key %% 1000;
			r.alive = 1;
		}
		db.size = db.size + 1;
		return 1;
	}
}

func doLookup(key int) int {
	lock (db) {
		db.ops = db.ops + 1;
		var s int = probe(key);
		if (s < 0) { return 0; }
		var r Record = records[s];
		lock (r) { return r.balance; }
	}
}

func doUpdate(key int, delta int) int {
	lock (db) {
		db.ops = db.ops + 1;
		var s int = probe(key);
		if (s < 0) { return 0; }
		var r Record = records[s];
		lock (r) {
			r.balance = r.balance + delta;
			return r.balance;
		}
	}
}

func doDelete(key int) int {
	lock (db) {
		db.ops = db.ops + 1;
		var s int = probe(key);
		if (s < 0) { return 0; }
		var r Record = records[s];
		lock (r) { r.alive = 0; }
		db.size = db.size - 1;
		return 1;
	}
}

// doScan sums balances of a short key range (a sorted-scan stand-in).
func doScan(from int, n int) int {
	var total int = 0;
	lock (db) {
		db.ops = db.ops + 1;
		for (var k int = from; k < from + n; k = k + 1) {
			var s int = probe(k);
			if (s >= 0) {
				var r Record = records[s];
				lock (r) { total = total + r.balance; }
			}
		}
	}
	return total;
}

func main() {
	db = new Database;
	records = new [CAP]Record;
	seed = 424242;
	// Preload half the capacity.
	for (var k int = 0; k < CAP / 2; k = k + 1) {
		doInsert(k * 3);
	}
	var check int = 0;
	for (var op int = 0; op < OPS; op = op + 1) {
		var r int = nextRand();
		var key int = r %% (CAP * 3);
		var kind int = r %% 100;
		// Key digest / index maintenance: unsynchronized per-query compute
		// (the original shell-sorts and string-compares between queries).
		var digest int = key;
		for (var j int = 0; j < 24; j = j + 1) {
			digest = (digest * 31 + j) & 1073741823;
		}
		check = (check + (digest & 7)) & 1073741823;
		if (kind < 55) {
			check = (check + doLookup(key)) & 1073741823;
		} else if (kind < 68) {
			if (db.size < (CAP * 9) / 16) {
				check = (check + doInsert(key)) & 1073741823;
			}
		} else if (kind < 85) {
			check = (check + doUpdate(key, kind - 77)) & 1073741823;
		} else if (kind < 95) {
			check = (check + doDelete(key)) & 1073741823;
		} else {
			check = (check + doScan(key, 8)) & 1073741823;
		}
		if (op %% 100 == 0) { print("op " + itoa(op) + " size " + itoa(db.size)); }
	}
	print("db checksum " + itoa(check) + " ops " + itoa(db.ops) + " size " + itoa(db.size));
}
`
