package programs

import "fmt"

// jackSource is the SPEC _228_jack analog: a parser generator run on its own
// grammar. Each pass tokenizes the grammar, parses productions, emits parser
// source into per-production synchronized output buffers, and then
// re-tokenizes its own output (jack famously generates a parser for itself).
// Synchronization profile: second-most lock acquisitions, and by far the
// most *unique* locked objects (a fresh synchronized buffer per production
// per pass, like the original's per-object stream locks in Table 2).
func jackSource(scale int) string {
	return fmt.Sprintf(jackTemplate, scale)
}

const jackTemplate = `
var PASSES int = %d * 170;

// A synchronized output buffer (java.io stream analog): every append locks.
class Buf { data str; appends int; }

class Stats { tokens int; prods int; appends int; }
var stats Stats;

var grammar str = "";

func makeGrammar() {
	grammar = ""
		+ "prod expr   : term expr_t ;\n"
		+ "prod expr_t : PLUS term expr_t | MINUS term expr_t | EPS ;\n"
		+ "prod term   : factor term_t ;\n"
		+ "prod term_t : STAR factor term_t | SLASH factor term_t | EPS ;\n"
		+ "prod factor : NUMBER | IDENT | LPAREN expr RPAREN ;\n"
		+ "prod stmt   : IDENT ASSIGN expr SEMI | PRINT expr SEMI ;\n"
		+ "prod block  : LBRACE stmts RBRACE ;\n"
		+ "prod stmts  : stmt stmts | EPS ;\n"
		+ "prod unit   : block unit | EPS ;\n";
}

func append(b Buf, s str) {
	// A fresh stream wrapper per operation (the original wraps writes in
	// short-lived synchronized stream objects — this is what makes jack
	// lock the most unique objects in Table 2).
	var line Buf = new Buf;
	lock (line) { line.data = s; line.appends = 1; }
	lock (b) {
		b.data = b.data + line.data;
		b.appends = b.appends + 1;
	}
	lock (stats) { stats.appends = stats.appends + 1; }
}

func isAlpha(c int) int {
	return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
}

// nextToken scans src from position pos[0], advancing it; returns the token
// text ("" at end of input).
var pos []int;
func nextToken(src str) str {
	var n int = len(src);
	var i int = pos[0];
	while (i < n) {
		var c int = charat(src, i);
		if (c == 32 || c == 10 || c == 9) { i = i + 1; continue; }
		break;
	}
	if (i >= n) { pos[0] = i; return ""; }
	var c int = charat(src, i);
	if (isAlpha(c) == 1) {
		var j int = i;
		while (j < n && isAlpha(charat(src, j)) == 1) { j = j + 1; }
		pos[0] = j;
		return substr(src, i, j);
	}
	pos[0] = i + 1;
	return substr(src, i, i + 1);
}

// tokenize returns the token count of src and mixes tokens into a checksum.
var tokChecksum int = 0;
func tokenize(src str) int {
	pos[0] = 0;
	var count int = 0;
	while (true) {
		var t str = nextToken(src);
		if (t == "") { break; }
		count = count + 1;
		// Per-token synchronized stream accounting (the original reads its
		// input through synchronized streams).
		lock (stats) { stats.tokens = stats.tokens + 1; }
		tokChecksum = (tokChecksum * 31 + hash(t)) & 1073741823;
	}
	return count;
}

// generate parses the grammar (prod NAME : alt | alt ;) and emits a
// recursive-descent parser function per production into a fresh
// synchronized buffer; returns the concatenated output.
func generate() str {
	pos[0] = 0;
	var out str = "";
	var nprods int = 0;
	while (true) {
		var kw str = nextToken(grammar);
		if (kw == "") { break; }
		if (kw != "prod") { continue; }
		var name str = nextToken(grammar);
		nextToken(grammar); // ':'
		// A fresh synchronized buffer per production per pass: many unique
		// locked objects, as in the original.
		var b Buf = new Buf;
		b.data = "";
		append(b, "func parse_" + name + "() {\n");
		var alt int = 0;
		append(b, "  alt" + itoa(alt) + ":");
		while (true) {
			var t str = nextToken(grammar);
			if (t == ";") { break; }
			if (t == "|") {
				alt = alt + 1;
				append(b, "\n  alt" + itoa(alt) + ":");
				continue;
			}
			if (t == "EPS") {
				append(b, " accept()");
				continue;
			}
			// Upper-case tokens are terminals, lower-case nonterminals.
			var c int = charat(t, 0);
			if (c >= 65 && c <= 90) {
				append(b, " expect(" + t + ")");
			} else {
				append(b, " parse_" + t + "()");
			}
		}
		append(b, "\n}\n");
		out = out + b.data;
		nprods = nprods + 1;
	}
	lock (stats) { stats.prods = stats.prods + nprods; }
	return out;
}

func main() {
	stats = new Stats;
	pos = new [1]int;
	makeGrammar();
	var check int = 0;
	for (var pass int = 0; pass < PASSES; pass = pass + 1) {
		// Nondeterministic input arrival in the original shows up as
		// intercepted natives; model with one clock() per pass.
		var t0 int = clock();
		var generated str = generate();
		// Run the generated parser "on itself": re-tokenize the output.
		var toks int = tokenize(generated);
		check = (check + toks * 31 + len(generated) + (t0 - t0)) & 1073741823;
		if (pass %% 5 == 0) { print("pass " + itoa(pass) + " toks " + itoa(toks)); }
	}
	print("jack checksum " + itoa(check) + " tokens " + itoa(stats.tokens)
		+ " prods " + itoa(stats.prods) + " appends " + itoa(stats.appends));
}
`
