package programs

import "fmt"

// mpegaudioSource is the SPEC _222_mpegaudio analog: the polyphase subband
// synthesis filter at the heart of MPEG-1 Layer 3 decoding — a 512-tap
// windowed FIR over a shifting sample FIFO plus a 32×64 cosine-modulation
// matrixing step, run over synthetic frames. Float-heavy with almost no
// synchronization or natives (Table 2: 21 objects locked, tiny log).
func mpegaudioSource(scale int) string {
	return fmt.Sprintf(mpegaudioTemplate, scale)
}

const mpegaudioTemplate = `
var FRAMES int = %d * 530;
var SUBBANDS int = 32;

class Meter { frames int; }
var meter Meter;

var window []float;   // 512-tap synthesis window
var cosTab []float;   // 32x64 cosine modulation matrix
var fifo []float;     // 1024-sample shifting buffer
var samples []float;  // 32 subband samples per frame
var pcm []float;      // 32 output samples per frame

func buildTables() {
	window = new [512]float;
	for (var i int = 0; i < 512; i = i + 1) {
		var x float = float(i) * 0.01227184630308513;  // pi/256
		window[i] = sin(x) * exp(0.0 - float(i) / 256.0);
	}
	cosTab = new [SUBBANDS * 64]float;
	for (var k int = 0; k < SUBBANDS; k = k + 1) {
		for (var n int = 0; n < 64; n = n + 1) {
			var ang float = (2.0 * float(k) + 1.0) * float(n) * 0.04908738521234052; // pi/64
			cosTab[k * 64 + n] = cos(ang);
		}
	}
	fifo = new [1024]float;
	samples = new [SUBBANDS]float;
	pcm = new [SUBBANDS]float;
}

// genFrame synthesises deterministic subband samples for frame f.
func genFrame(f int) {
	for (var k int = 0; k < SUBBANDS; k = k + 1) {
		var t float = float(f * 37 + k * 11);
		samples[k] = sin(t * 0.031) * 0.7 + cos(t * 0.017) * 0.3;
	}
}

// matrixing expands 32 subband samples into 64 intermediate values through
// the cosine table and pushes them into the FIFO.
func matrixing() {
	// Shift the FIFO by 64 (newest at the front).
	for (var i int = 1023; i >= 64; i = i - 1) { fifo[i] = fifo[i - 64]; }
	for (var n int = 0; n < 64; n = n + 1) {
		var v float = 0.0;
		for (var k int = 0; k < SUBBANDS; k = k + 1) {
			v = v + cosTab[k * 64 + n] * samples[k];
		}
		fifo[n] = v;
	}
}

// windowing computes the 32 PCM outputs as the 512-tap windowed sum.
func windowing() {
	for (var j int = 0; j < SUBBANDS; j = j + 1) {
		var s float = 0.0;
		for (var i int = 0; i < 16; i = i + 1) {
			s = s + window[j + 32 * i] * fifo[j + 32 * i];
		}
		pcm[j] = s;
	}
}

func main() {
	meter = new Meter;
	buildTables();
	var energy float = 0.0;
	for (var f int = 0; f < FRAMES; f = f + 1) {
		genFrame(f);
		matrixing();
		windowing();
		for (var j int = 0; j < SUBBANDS; j = j + 1) {
			energy = energy + pcm[j] * pcm[j];
		}
		if (f %% 50 == 0) { print("frame " + itoa(f)); }
		if (f %% 8 == 0) {
			// Frame-sync bookkeeping under a monitor, with a clock read —
			// the original's sparse native/lock profile.
			var now int = clock();
			lock (meter) { meter.frames = meter.frames + 8 + (now - now); }
		}
	}
	var scaled int = int(energy * 1000.0);
	print("mpegaudio energy " + itoa(scaled) + " frames " + itoa(FRAMES));
}
`
