package programs

import "fmt"

// compressSource is the SPEC _201_compress analog: Lempel-Ziv-Welch
// compression and decompression of a synthetic, compressible corpus, with a
// round-trip integrity check. CPU-bound integer/array work; almost no
// synchronization or native calls (like the original: it has the fewest
// lock acquisitions and intercepted natives in Table 2).
func compressSource(scale int) string {
	return fmt.Sprintf(compressTemplate, scale)
}

const compressTemplate = `
// LZW over int arrays. The dictionary is an open-addressed hash table in
// parallel arrays; decode rebuilds sequences through prefix links.

var ITERS int = %d * 9;
var CORPUS int = 20000;
var HASHCAP int = 16384;   // power of two
var MAXCODE int = 4096;

class Gate { uses int; }
var gate Gate;

var corpus []int;

func lcg(x int) int { return (x * 1103515245 + 12345) & 2147483647; }

func makeCorpus() {
	corpus = new [CORPUS]int;
	var x int = 987654321;
	for (var i int = 0; i < CORPUS; i = i + 1) {
		x = lcg(x);
		var r int = x %% 100;
		if (r < 25) { corpus[i] = 32; }               // spaces make it compressible
		else if (r < 80) { corpus[i] = 97 + (x %% 8); }  // small alphabet
		else { corpus[i] = 65 + (x %% 20); }
	}
}

// dictionary: code -> (prefix, ch); hash table maps (prefix<<9|ch) -> code
var prefixOf []int;
var charOf []int;
var hashKey []int;
var hashVal []int;
var nextCode int;

func dictReset() {
	for (var i int = 0; i < HASHCAP; i = i + 1) { hashKey[i] = 0 - 1; }
	nextCode = 256;
}

func dictFind(prefix int, ch int) int {
	var key int = prefix * 512 + ch;
	var h int = (key * 2654435761) & (HASHCAP - 1);
	if (h < 0) { h = 0 - h; }
	while (true) {
		if (hashKey[h] == 0 - 1) { return 0 - 1; }
		if (hashKey[h] == key) { return hashVal[h]; }
		h = (h + 1) & (HASHCAP - 1);
	}
	return 0 - 1;
}

func dictAdd(prefix int, ch int) {
	if (nextCode >= MAXCODE) { return; }
	var key int = prefix * 512 + ch;
	var h int = (key * 2654435761) & (HASHCAP - 1);
	if (h < 0) { h = 0 - h; }
	while (hashKey[h] != 0 - 1) { h = (h + 1) & (HASHCAP - 1); }
	hashKey[h] = key;
	hashVal[h] = nextCode;
	prefixOf[nextCode] = prefix;
	charOf[nextCode] = ch;
	nextCode = nextCode + 1;
}

// compress corpus into out; returns the number of codes emitted.
func compress(out []int) int {
	dictReset();
	var n int = 0;
	var w int = corpus[0];
	for (var i int = 1; i < CORPUS; i = i + 1) {
		var c int = corpus[i];
		var code int = dictFind(w, c);
		if (code >= 0) {
			w = code;
		} else {
			out[n] = w;
			n = n + 1;
			if (n %% 384 == 0) { print("codes " + itoa(n)); }
			dictAdd(w, c);
			w = c;
		}
	}
	out[n] = w;
	return n + 1;
}

// expand one code into buf (reversed walk through prefix links); returns
// its length and leaves the first symbol in firstSym[0].
var firstSym []int;
func expand(code int, buf []int) int {
	var depth int = 0;
	var c int = code;
	while (c >= 256) {
		buf[depth] = charOf[c];
		depth = depth + 1;
		c = prefixOf[c];
	}
	buf[depth] = c;
	firstSym[0] = c;
	return depth + 1;
}

// decompress codes[0..n) and return a checksum of the output; verifies
// length against the corpus.
func decompress(codes []int, n int) int {
	// Rebuild the dictionary incrementally, mirroring the encoder.
	dictReset();
	var buf []int = new [MAXCODE]int;
	var sum int = 0;
	var outLen int = 0;
	var prev int = codes[0];
	var lenp int = expand(prev, buf);
	for (var k int = lenp - 1; k >= 0; k = k - 1) {
		sum = (sum * 31 + buf[k]) & 1073741823;
		outLen = outLen + 1;
	}
	for (var i int = 1; i < n; i = i + 1) {
		var cur int = codes[i];
		var l int = 0;
		if (cur < nextCode) {
			l = expand(cur, buf);
		} else {
			// KwKwK case: cur == nextCode
			l = expand(prev, buf);
			// output = expand(prev) + first(prev): emit below specially
			for (var k int = l - 1; k >= 0; k = k - 1) {
				sum = (sum * 31 + buf[k]) & 1073741823;
				outLen = outLen + 1;
			}
			sum = (sum * 31 + firstSym[0]) & 1073741823;
			outLen = outLen + 1;
			dictAdd(prev, firstSym[0]);
			prev = cur;
			continue;
		}
		for (var k int = l - 1; k >= 0; k = k - 1) {
			sum = (sum * 31 + buf[k]) & 1073741823;
			outLen = outLen + 1;
		}
		dictAdd(prev, firstSym[0]);
		prev = cur;
	}
	if (outLen != CORPUS) { print("LENGTH MISMATCH " + itoa(outLen)); }
	return sum;
}

func main() {
	gate = new Gate;
	makeCorpus();
	prefixOf = new [MAXCODE]int;
	charOf = new [MAXCODE]int;
	hashKey = new [HASHCAP]int;
	hashVal = new [HASHCAP]int;
	firstSym = new [1]int;
	var codes []int = new [CORPUS + 1]int;
	var check int = 0;
	var totalCodes int = 0;
	for (var it int = 0; it < ITERS; it = it + 1) {
		var n int = compress(codes);
		totalCodes = totalCodes + n;
		lock (gate) { gate.uses = gate.uses + 1; }
		check = (check + decompress(codes, n)) & 1073741823;
		print("iter " + itoa(it) + " codes " + itoa(n));
	}
	print("compress checksum " + itoa(check) + " codes " + itoa(totalCodes));
}
`
