package programs

import "fmt"

// mtrtSource is the SPEC _227_mtrt analog: the suite's only multi-threaded
// benchmark. Two worker threads render a sphere scene, pulling row chunks
// from a monitor-protected work queue and folding per-chunk results into a
// shared accumulator — so it is the only workload that produces thread
// reschedules and scheduling records (Table 2's last row), while its lock
// count stays moderate.
func mtrtSource(scale int) string {
	return fmt.Sprintf(mtrtTemplate, scale)
}

const mtrtTemplate = `
var WIDTH int = %d * 320;
var HEIGHT int = 160;
var NSPHERES int = 6;
var WORKERS int = 2;

class Queue { next int; grabs int; }
class Accum { sum int; rows int; }

var queue Queue;
var accum Accum;

// Scene: spheres as parallel arrays plus one light.
var cx []float;
var cy []float;
var cz []float;
var rad []float;
var shade []float;
var lightX float = 0.0;
var lightY float = 0.0;
var lightZ float = 0.0;

func buildScene() {
	cx = new [NSPHERES]float;
	cy = new [NSPHERES]float;
	cz = new [NSPHERES]float;
	rad = new [NSPHERES]float;
	shade = new [NSPHERES]float;
	for (var i int = 0; i < NSPHERES; i = i + 1) {
		var fi float = float(i);
		cx[i] = sin(fi * 1.7) * 3.0;
		cy[i] = cos(fi * 2.3) * 2.0;
		cz[i] = 8.0 + fi * 2.0;
		rad[i] = 1.0 + 0.3 * float(i %% 3);
		shade[i] = 0.3 + 0.1 * fi;
	}
	lightX = 0.0 - 5.0;
	lightY = 5.0;
	lightZ = 0.0;
}

// traceRay casts a primary ray through pixel (px,py) and returns a shaded
// intensity in [0,255] (0 = background).
func traceRay(px int, py int) int {
	// Camera at origin looking down +z; simple pinhole projection.
	var dx float = (float(px) / float(WIDTH) - 0.5) * 2.0;
	var dy float = (float(py) / float(HEIGHT) - 0.5) * 1.5;
	var dz float = 1.0;
	var dlen float = sqrt(dx*dx + dy*dy + dz*dz);
	dx = dx / dlen;
	dy = dy / dlen;
	dz = dz / dlen;

	var bestT float = 1000000.0;
	var bestI int = 0 - 1;
	for (var i int = 0; i < NSPHERES; i = i + 1) {
		// Ray-sphere: |o + t d - c|^2 = r^2 with o = 0.
		var b float = dx*cx[i] + dy*cy[i] + dz*cz[i];
		var cc float = cx[i]*cx[i] + cy[i]*cy[i] + cz[i]*cz[i] - rad[i]*rad[i];
		var disc float = b*b - cc;
		if (disc > 0.0) {
			var t float = b - sqrt(disc);
			if (t > 0.001 && t < bestT) {
				bestT = t;
				bestI = i;
			}
		}
	}
	if (bestI < 0) { return 0; }
	// Lambert shading from the point light.
	var hx float = dx * bestT;
	var hy float = dy * bestT;
	var hz float = dz * bestT;
	var nx float = (hx - cx[bestI]) / rad[bestI];
	var ny float = (hy - cy[bestI]) / rad[bestI];
	var nz float = (hz - cz[bestI]) / rad[bestI];
	var lx float = lightX - hx;
	var ly float = lightY - hy;
	var lz float = lightZ - hz;
	var ll float = sqrt(lx*lx + ly*ly + lz*lz);
	var lambert float = (nx*lx + ny*ly + nz*lz) / ll;
	if (lambert < 0.0) { lambert = 0.0; }
	var v float = (shade[bestI] + lambert * 0.7) * 255.0;
	if (v > 255.0) { v = 255.0; }
	return int(v);
}

// worker pulls rows off the shared queue until it is drained.
func worker(id int) {
	while (true) {
		var row int = 0 - 1;
		lock (queue) {
			row = queue.next;
			if (row < HEIGHT) { queue.next = queue.next + 1; }
			queue.grabs = queue.grabs + 1;
		}
		if (row >= HEIGHT) { break; }
		var rowSum int = 0;
		for (var px int = 0; px < WIDTH; px = px + 1) {
			rowSum = (rowSum + traceRay(px, row)) & 1073741823;
			// Per-pixel progress tick on the shared accumulator — the
			// fine-grained synchronized access that gives mtrt its lock
			// volume in the original.
			if (px %% 8 == 0) {
				lock (accum) { accum.sum = accum.sum; }
			}
		}
		lock (accum) {
			accum.sum = (accum.sum + rowSum) & 1073741823;
			accum.rows = accum.rows + 1;
		}
		print("row " + itoa(row) + " by " + itoa(id));
	}
}

func main() {
	buildScene();
	queue = new Queue;
	accum = new Accum;
	// One rand() per run seeds nothing visible (scene is deterministic) but
	// reproduces the sparse native profile.
	var nonce int = rand() %% 2;
	var t1 thread = spawn worker(1);
	var t2 thread = spawn worker(2);
	join(t1);
	join(t2);
	print("mtrt checksum " + itoa(accum.sum + nonce - nonce)
		+ " rows " + itoa(accum.rows) + " grabs " + itoa(queue.grabs));
}
`
