package replication

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/transport"
	"repro/internal/vm"
)

// faultProgram is the channel-fault workload: like testProgram it spawns two
// workers that contend on a monitor and draw from the non-deterministic rand
// native (so lock-acquisition records AND native-result records flow over the
// channel), but every observable output is a pure function of the program
// text — the rand values are drawn and discarded, and the accumulator adds a
// constant. That makes the reference output valid for *any* surviving log
// prefix: however much of the run the backup replays versus re-executes live
// (with fresh entropy), the console must come out identical. The kill-sweep's
// program cannot give that guarantee, because its final sum adopts whatever
// entropy the primary consumed past the last logged record.
const faultProgram = `
static Main.sum
static Main.lock
class Lock dummy
native print io.print 1 void
native rand sys.rand 0 value
method worker 1 void
  iconst 0
  store 1
loop:
  load 1
  iconst 150
  icmp
  jz done
  call rand
  store 2
  gets Main.lock
  menter
  gets Main.sum
  iconst 3
  iadd
  puts Main.sum
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  load 0
  i2s
  sconst "done-"
  swap
  scat
  call print
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.sum
  sconst "start"
  call print
  iconst 1
  spawn worker 1
  store 0
  iconst 2
  spawn worker 1
  store 1
  load 0
  join
  load 1
  join
  gets Main.sum
  i2s
  sconst "sum="
  swap
  scat
  call print
  ret
end
`

// TestChannelFaultSweep is the channel-failure property test, complementing
// TestKillPointSweep (which crashes the *process*): here the process is
// healthy and the *channel* misbehaves — frames dropped, duplicated, delayed,
// truncated mid-write, the transport closed under either side, or a one-way
// partition in each direction — at several protocol positions, in every
// replication mode. The invariant is the paper's: whatever the channel does,
// either the pair completes with the reference output, or both sides detect
// the failure in bounded time and the backup's recovery reproduces the
// reference output exactly once.
func TestChannelFaultSweep(t *testing.T) {
	prog := mustAssemble(t, faultProgram)
	seeds := sweepSeedsFromEnv(t)

	// Failure-free reference run.
	refEnv := env.New(seeds.env)
	refVM, err := vm.New(vm.Config{
		Program:     prog,
		Env:         refEnv,
		Coordinator: vm.NewDefaultCoordinator(vm.NewSeededPolicy(seeds.policy, 64, 512)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := refVM.Run(); err != nil {
		t.Fatal(err)
	}
	want := canonicalize(refEnv.Console().Lines())
	if len(refEnv.Console().Lines()) != 4 {
		t.Fatalf("reference output = %q, want 4 lines", refEnv.Console().Lines())
	}

	type faultCase struct {
		kind transport.FaultKind
		at   int
	}
	var cases []faultCase
	// Send-side faults, positioned by frame count: early (first batches),
	// mid lock-heavy phase, and deep into the run.
	for _, k := range []transport.FaultKind{
		transport.FaultDropSend, transport.FaultDuplicateSend, transport.FaultDelaySend,
		transport.FaultPartialSend, transport.FaultCloseAtSend, transport.FaultPartitionSend,
	} {
		for _, at := range []int{2, 9, 33} {
			cases = append(cases, faultCase{k, at})
		}
	}
	// Recv-side faults, positioned by ack count: the primary only receives
	// during output commits, of which this program has a handful.
	for _, k := range []transport.FaultKind{transport.FaultCloseAtRecv, transport.FaultPartitionRecv} {
		for _, at := range []int{1, 2, 4} {
			cases = append(cases, faultCase{k, at})
		}
	}

	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		for _, fc := range cases {
			name := fmt.Sprintf("%v/%v@%d", mode, fc.kind, fc.at)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				environ := env.New(seeds.env)
				pa, pb := transport.Pipe(4096)
				faulty := transport.NewFaulty(pa, transport.FaultPlan{Kind: fc.kind, At: fc.at}, seeds.faulty)
				primary, err := NewPrimary(PrimaryConfig{
					Mode:       mode,
					Endpoint:   faulty,
					Policy:     vm.NewSeededPolicy(seeds.policy, 64, 512),
					FlushEvery: 4, // tiny batches: many frames, mid-protocol faults
					AckTimeout: 150 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				pvm, err := vm.New(vm.Config{
					Program: prog, Env: environ, Coordinator: primary,
					TrackProgress: mode == ModeSched,
				})
				if err != nil {
					t.Fatal(err)
				}
				backup, err := NewBackup(BackupConfig{
					Mode:           mode,
					Endpoint:       pb,
					FailureTimeout: 150 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				var outcome ServeOutcome
				go func() {
					defer close(done)
					outcome, _ = backup.Serve()
					if outcome.Failed() {
						// A real failover tears the channel down; this also
						// unblocks a primary still waiting on an ack.
						_ = pb.Close()
					}
				}()
				start := time.Now()
				runErr := pvm.Run()
				<-done
				// Two-sided detection must bound every wait: with 150ms
				// timeouts on both sides nothing may take seconds.
				if el := time.Since(start); el > 5*time.Second {
					t.Fatalf("pair took %v; failure detection did not bound the wait", el)
				}

				if outcome == OutcomePrimaryCompleted {
					// Last-ack window: a fault can eat the final halt-sync ack,
					// so the backup sees a clean halt while the primary reports
					// the backup lost. The console is complete on both sides
					// (the halt marker only ships after every output commit),
					// so only *other* primary errors are failures here.
					if runErr != nil && !errors.Is(runErr, ErrBackupLost) {
						t.Fatalf("backup saw clean halt but primary failed: %v", runErr)
					}
					if got := canonicalize(environ.Console().Lines()); got != want {
						t.Fatalf("completed-run output mismatch:\n%s\nvs want\n%s", got, want)
					}
					return
				}
				// The channel fault surfaced as a primary failure (closure,
				// gap, corruption, or silence): recover on the backup, with a
				// deliberately different scheduling policy.
				if _, _, err := backup.Recover(RecoverConfig{
					Program: prog,
					Env:     environ,
					Policy:  vm.NewSeededPolicy(seeds.recover, 100, 900),
				}); err != nil {
					t.Fatalf("recover after %v: %v", outcome, err)
				}
				if got := canonicalize(environ.Console().Lines()); got != want {
					t.Fatalf("recovered output mismatch after %v:\n%s\nvs want\n%s", outcome, got, want)
				}
			})
		}
	}
}
