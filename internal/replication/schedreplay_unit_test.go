package replication

import (
	"errors"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/env"
	"repro/internal/sehandler"
	"repro/internal/simtest/clock"
	"repro/internal/vm"
	"repro/internal/wire"
)

// schedVM builds a tiny two-thread VM whose threads exist but have not run,
// for driving PickNext directly.
func schedVM(t *testing.T) *vm.VM {
	t.Helper()
	prog, err := bytecode.AssembleString(`
method worker 0 void
loop:
  yield
  jmp loop
end
method main 0 void
  spawn worker 0
  pop
loop:
  yield
  jmp loop
end`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{Program: prog, Env: env.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func schedReplayFor(t *testing.T, switches []*wire.Switch) *schedReplay {
	t.Helper()
	var recs []wire.Record
	for _, s := range switches {
		recs = append(recs, s)
	}
	a, err := analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	return newSchedReplay(a, sehandler.DefaultSet(), vm.NewSeededPolicy(1, 64, 256))
}

func TestSchedReplayChainBreakIsDivergence(t *testing.T) {
	// The chain must start with main ("0"); a record descheduling an
	// unexpected thread is divergence.
	c := schedReplayFor(t, []*wire.Switch{
		{TID: "0.1", BrCnt: 10, MethodIdx: 0, PCOff: 0, Reason: uint8(vm.StateRunnable), NextTID: "0"},
	})
	v := schedVM(t)
	// Spawn main thread state by running zero slices: drive PickNext with a
	// fabricated runnable list.
	main := &vm.Thread{VTID: "0"}
	_, _, err := c.PickNext(v, []*vm.Thread{main}, nil)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("err = %v, want divergence", err)
	}
}

func TestSchedReplayUnknownThreadIsDivergence(t *testing.T) {
	c := schedReplayFor(t, []*wire.Switch{
		{TID: "0", BrCnt: 10, Reason: uint8(vm.StateRunnable), NextTID: "0.9"},
	})
	v := schedVM(t)
	// The VM has no threads yet, so "0" is unknown to it.
	main := &vm.Thread{VTID: "0"}
	_, _, err := c.PickNext(v, []*vm.Thread{main}, nil)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("err = %v, want divergence (unknown thread)", err)
	}
}

func TestSchedReplayAnalysisKeepsSwitches(t *testing.T) {
	// Overshoot/position divergence is covered end-to-end by the failover
	// and checksum tests; here pin that analysis preserves switch records
	// in order for the coordinator.
	a, err := analyze([]wire.Record{
		&wire.Switch{TID: "0", BrCnt: 5, Reason: uint8(vm.StateRunnable), NextTID: "0.1"},
		&wire.Switch{TID: "0.1", BrCnt: 9, Reason: uint8(vm.StateWaiting), NextTID: "0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newSchedReplay(a, sehandler.DefaultSet(), nil)
	if len(c.a.switches) != 2 || c.a.switches[0].BrCnt != 5 || c.a.switches[1].NextTID != "0" {
		t.Fatalf("switch records = %+v", c.a.switches)
	}
}

func TestSchedReplayWaitsWhileOpen(t *testing.T) {
	// A warm (open) log with no records yet: PickNext must return nil
	// (idle) rather than dispatching or failing.
	a := newAnalysis()
	c := newSchedReplay(a, sehandler.DefaultSet(), nil)
	v := schedVM(t)
	main := &vm.Thread{VTID: "0"}
	picked, _, err := c.PickNext(v, []*vm.Thread{main}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if picked != nil {
		t.Fatalf("picked %v while the chain is empty and open", picked.VTID)
	}
	// Closing the (empty) log flips to live scheduling.
	a.close()
	picked, _, err = c.PickNext(v, []*vm.Thread{main}, nil)
	if err != nil || picked != main {
		t.Fatalf("post-close pick = %v (%v)", picked, err)
	}
}

func TestAnalyzeCleanHalt(t *testing.T) {
	a, err := analyze([]wire.Record{&wire.Halt{}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.cleanHalt {
		t.Fatal("halt marker not recorded")
	}
}

func TestWarmFeedCounts(t *testing.T) {
	f := newWarmFeed(sehandler.DefaultSet(), clock.Real)
	if f.Fed() != 0 {
		t.Fatal("fresh feed non-empty")
	}
	err := f.append([]wire.Record{
		&wire.LockAcq{TID: "0", LASN: 0, LID: 1},
		&wire.NativeResult{TID: "0", NatSeq: 1, Sig: "sys.clock"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Fed() != 2 {
		t.Fatalf("fed = %d", f.Fed())
	}
	if !f.a.open {
		t.Fatal("feed closed prematurely")
	}
	if err := f.close(); err != nil {
		t.Fatal(err)
	}
	if f.a.open {
		t.Fatal("feed still open after close")
	}
}
