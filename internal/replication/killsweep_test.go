package replication

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/transport"
	"repro/internal/vm"
)

// TestKillPointSweep is the failure-injection property test: for every
// replication mode, kill the primary at many different points in the run and
// verify the recovered execution always produces the same observable outputs
// as a failure-free reference (exactly-once, identical final state). This
// sweeps the crash through all protocol phases — before any output, between
// output commits, during lock-heavy phases, near completion.
func TestKillPointSweep(t *testing.T) {
	prog := mustAssemble(t, testProgram)
	seeds := sweepSeedsFromEnv(t)

	// Reference run (unreplicated, same env seed and primary policy seed):
	// the final sum adopts the primary's entropy stream, so it is the
	// ground truth for every recovered execution.
	refEnv := env.New(seeds.env)
	refVM, err := vm.New(vm.Config{
		Program:     prog,
		Env:         refEnv,
		Coordinator: vm.NewDefaultCoordinator(vm.NewSeededPolicy(seeds.policy, 64, 512)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := refVM.Run(); err != nil {
		t.Fatal(err)
	}
	wantFinal := canonicalize(refEnv.Console().Lines())

	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		for _, killAt := range []int{1, 5, 20, 80, 200, 800} {
			name := fmt.Sprintf("%v/kill%d", mode, killAt)
			t.Run(name, func(t *testing.T) {
				environ := env.New(seeds.env)
				pa, pb := transport.Pipe(4096)
				primary, err := NewPrimary(PrimaryConfig{
					Mode:       mode,
					Endpoint:   pa,
					Policy:     vm.NewSeededPolicy(seeds.policy, 64, 512),
					FlushEvery: 4, // tiny batches: expose mid-protocol kills
				})
				if err != nil {
					t.Fatal(err)
				}
				pvm, err := vm.New(vm.Config{
					Program: prog, Env: environ, Coordinator: primary,
					TrackProgress: mode == ModeSched,
				})
				if err != nil {
					t.Fatal(err)
				}
				backup, err := NewBackup(BackupConfig{Mode: mode, Endpoint: pb})
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				var outcome ServeOutcome
				go func() { defer close(done); outcome, _ = backup.Serve() }()
				go func() {
					for backup.Store().Len() < killAt {
						select {
						case <-done:
							return
						default:
							time.Sleep(50 * time.Microsecond)
						}
					}
					pvm.Kill()
				}()
				_ = pvm.Run()
				<-done

				if outcome == OutcomePrimaryCompleted {
					// The primary beat the kill trigger; output is complete
					// already — still must match the reference.
					if got := canonicalize(environ.Console().Lines()); got != wantFinal {
						t.Fatalf("completed run output mismatch:\n%s\nvs\n%s", got, wantFinal)
					}
					return
				}
				_, _, err = backup.Recover(RecoverConfig{
					Program: prog,
					Env:     environ,
					Policy:  vm.NewSeededPolicy(seeds.recover, 100, 900),
				})
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if got := canonicalize(environ.Console().Lines()); got != wantFinal {
					t.Fatalf("recovered output mismatch:\n%s\nvs\n%s", got, wantFinal)
				}
			})
		}
	}
}

// canonicalize sorts console lines (cross-thread print order may legally
// differ between schedules under lock replication) and joins them.
func canonicalize(lines []string) string {
	cp := make([]string, len(lines))
	copy(cp, lines)
	sort.Strings(cp)
	return strings.Join(cp, "\n")
}
