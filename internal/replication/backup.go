package replication

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/env"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// ServeOutcome is why the backup's serve loop ended.
type ServeOutcome int

// Serve outcomes.
const (
	// OutcomePrimaryCompleted: the primary shut down cleanly (halt marker).
	OutcomePrimaryCompleted ServeOutcome = iota + 1
	// OutcomePrimaryFailed: the transport to the primary failed (closed, or
	// the frame stream became untrustworthy: a sequence gap or a corrupt
	// frame) — recovery is required.
	OutcomePrimaryFailed
	// OutcomePrimaryTimedOut: the primary went silent for FailureTimeout —
	// no frames and no heartbeats — without the transport closing. The
	// failure detector declares it dead; recovery is required. Kept distinct
	// from OutcomePrimaryFailed because silence is a *suspicion* (under R0's
	// fail-stop assumption it is treated as death) while closure is a fact.
	OutcomePrimaryTimedOut
)

func (o ServeOutcome) String() string {
	switch o {
	case OutcomePrimaryCompleted:
		return "primary completed"
	case OutcomePrimaryFailed:
		return "primary failed"
	case OutcomePrimaryTimedOut:
		return "primary timed out"
	default:
		return "invalid"
	}
}

// Failed reports whether the outcome requires recovery (any detector firing,
// whether by transport closure or by heartbeat silence).
func (o ServeOutcome) Failed() bool {
	return o == OutcomePrimaryFailed || o == OutcomePrimaryTimedOut
}

// ErrNoRecoveryNeeded is returned by Recover when the log ends with a clean
// halt marker.
var ErrNoRecoveryNeeded = errors.New("primary completed cleanly; nothing to recover")

// BackupConfig configures the backup replica.
type BackupConfig struct {
	// Mode must match the primary's.
	Mode Mode
	// Endpoint receives log frames and sends acks (required).
	Endpoint transport.Endpoint
	// Handlers are the side-effect handlers (sehandler.DefaultSet if nil);
	// must be the same set the primary runs.
	Handlers *sehandler.Set
	// Natives maps record signatures to definitions for handler routing
	// (native.StdLib if nil).
	Natives *native.Registry
	// FailureTimeout: receiving nothing for this long counts as a primary
	// failure (0 = rely on transport closure only).
	FailureTimeout time.Duration
	// Clock supplies time for the warm backup's feed waits and serve
	// goroutine (nil = wall clock). The cold backup needs no clock of its
	// own — its only timed wait is the endpoint's Recv — but the simulation
	// harness sets this so warm replicas are fully clock-visible.
	Clock clock.Clock
	// Epoch is the view number this backup serves in. Frames stamped with an
	// older epoch are from a deposed primary and are dropped *without* an
	// acknowledgement — acking them would let a stale sender believe its
	// outputs committed against a configuration that has moved on (the
	// split-brain window the view service closes). A plain pair runs in
	// epoch 0.
	Epoch uint64
}

// BackupStats counts serve-loop activity.
type BackupStats struct {
	FramesReceived  uint64
	RecordsLogged   uint64
	AcksSent        uint64
	Heartbeats      uint64
	ReceiveRoutings uint64 // handler.Receive calls (the paper's receive)
	DuplicateFrames uint64 // frames re-delivered by a faulty channel (dropped, re-acked)
	SeqGaps         uint64 // frames lost by the channel (declares the primary failed)
	CorruptFrames   uint64 // undecodable frames (declares the primary failed)
	StaleEpochs     uint64 // frames from a deposed primary's epoch (dropped, never acked)
}

// Backup is the cold backup: during normal operation it logs records (and
// routes handler state to side-effect handlers); on primary failure it
// re-executes the program gated by the log.
type Backup struct {
	mode     Mode
	ep       transport.Endpoint
	handlers *sehandler.Set
	natives  *native.Registry
	timeout  time.Duration
	epoch    uint64
	clk      clock.Clock

	store *LogStore
	stats BackupStats
}

// NewBackup builds a backup replica.
func NewBackup(cfg BackupConfig) (*Backup, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("backup: nil endpoint")
	}
	if cfg.Mode != ModeLock && cfg.Mode != ModeSched && cfg.Mode != ModeLockInterval {
		return nil, fmt.Errorf("backup: bad mode %d", cfg.Mode)
	}
	h := cfg.Handlers
	if h == nil {
		h = sehandler.DefaultSet()
	}
	reg := cfg.Natives
	if reg == nil {
		reg = native.StdLib()
	}
	return &Backup{
		mode:     cfg.Mode,
		ep:       cfg.Endpoint,
		handlers: h,
		natives:  reg,
		timeout:  cfg.FailureTimeout,
		epoch:    cfg.Epoch,
		clk:      clock.Or(cfg.Clock),
		store:    NewLogStore(),
	}, nil
}

// Epoch returns the view number this backup serves in.
func (b *Backup) Epoch() uint64 { return b.epoch }

// Store exposes the logged records (tests, diagnostics).
func (b *Backup) Store() *LogStore { return b.store }

// Stats returns a copy of the serve-loop counters.
func (b *Backup) Stats() BackupStats { return b.stats }

// Serve runs the logging loop until the primary completes or fails. It is
// the "cold" half of the backup: records are stored (and side-effect
// handler state accumulated via receive), nothing is executed.
//
// The loop distinguishes how the primary was lost. Transport closure or a
// corrupted/ gapped frame stream is OutcomePrimaryFailed; heartbeat silence
// (nothing received for FailureTimeout on a still-open channel) is
// OutcomePrimaryTimedOut. Both demand recovery — the logged prefix stays
// consistent in every case, because no record past a gap or a corrupt frame
// is ever appended.
func (b *Backup) Serve() (ServeOutcome, error) {
	var gate wire.SeqGate
	for {
		msg, err := b.ep.Recv(b.timeout)
		if errors.Is(err, transport.ErrClosed) {
			return OutcomePrimaryFailed, nil
		}
		if errors.Is(err, transport.ErrTimeout) {
			return OutcomePrimaryTimedOut, nil
		}
		if err != nil {
			return 0, fmt.Errorf("backup receive: %w", err)
		}
		frame, err := wire.DecodeFrame(msg)
		if err != nil {
			// A frame that does not parse means the channel mangled data in
			// flight; nothing after it can be trusted.
			b.stats.CorruptFrames++
			return OutcomePrimaryFailed, nil
		}
		if frame.Epoch < b.epoch {
			// A deposed primary is still shipping frames from an older view.
			// Drop them without acknowledging — an ack here would let the
			// stale sender count an output as committed against a
			// configuration that has already moved on. Checked before the
			// sequence gate: stale frames belong to another epoch's numbering
			// and must not poison this view's dup/gap accounting.
			b.stats.StaleEpochs++
			continue
		}
		if frame.Epoch > b.epoch {
			// The configuration moved past us while we were logging — a
			// primary from a future view exists. This replica's log is no
			// longer authoritative; surface it as a failed primary so the
			// caller re-enters the view machinery rather than acking records
			// it cannot place.
			return OutcomePrimaryFailed, nil
		}
		if dup, gap := gate.Admit(frame.Seq); dup {
			// Re-delivered frame: its records are already in the log. Drop
			// them, but re-acknowledge so a primary waiting on this seq is
			// not stranded by a lost ack.
			b.stats.DuplicateFrames++
			if frame.AckWanted {
				if err := b.ep.Send(wire.EncodeAck(b.epoch, frame.Seq)); err != nil {
					return OutcomePrimaryFailed, nil
				}
				b.stats.AcksSent++
			}
			continue
		} else if gap {
			// At least one frame is gone for good: log records are missing
			// and the channel is no longer trustworthy. Declare failure while
			// the logged prefix is still consistent.
			b.stats.SeqGaps++
			return OutcomePrimaryFailed, nil
		}
		b.stats.FramesReceived++
		records, err := wire.DecodeAll(frame.Payload)
		if err != nil {
			b.stats.CorruptFrames++
			return OutcomePrimaryFailed, nil
		}
		halted := false
		for _, r := range records {
			switch rec := r.(type) {
			case *wire.Heartbeat:
				b.stats.Heartbeats++
				continue
			case *wire.Halt:
				halted = true
			case *wire.NativeResult:
				if err := b.routeReceive(rec); err != nil {
					return 0, err
				}
			}
			b.store.Append(r)
			b.stats.RecordsLogged++
		}
		if frame.AckWanted {
			if err := b.ep.Send(wire.EncodeAck(b.epoch, frame.Seq)); err != nil {
				if errors.Is(err, transport.ErrClosed) {
					return OutcomePrimaryFailed, nil
				}
				return 0, fmt.Errorf("send ack %d: %w", frame.Seq, err)
			}
			b.stats.AcksSent++
		}
		if halted {
			return OutcomePrimaryCompleted, nil
		}
	}
}

// LoadRecords feeds records into the backup as if they had arrived over the
// transport (handler state is routed through receive); clean-halt markers
// are dropped so a subsequent Recover treats the log as a crash at its end.
// It is used to stand up an offline replay backup from a captured log.
func (b *Backup) LoadRecords(records []wire.Record) error {
	for _, r := range records {
		switch rec := r.(type) {
		case *wire.Halt, *wire.Heartbeat:
			continue
		case *wire.NativeResult:
			if err := b.routeReceive(rec); err != nil {
				return err
			}
		}
		b.store.Append(r)
		b.stats.RecordsLogged++
	}
	return nil
}

// routeReceive delivers handler state to the managing side-effect handler as
// it arrives (the paper's receive method, which may compress it).
func (b *Backup) routeReceive(rec *wire.NativeResult) error {
	if len(rec.HandlerData) == 0 {
		return nil
	}
	def, ok := b.natives.Lookup(rec.Sig)
	if !ok {
		return fmt.Errorf("log references unknown native %q", rec.Sig)
	}
	h := b.handlers.ForDef(def)
	if h == nil {
		return fmt.Errorf("native %q logged handler data but has no handler", rec.Sig)
	}
	b.stats.ReceiveRoutings++
	return h.Receive(rec.HandlerData)
}

// RecoverConfig configures the recovery execution.
type RecoverConfig struct {
	// Program is the same program the primary ran (required).
	Program *bytecode.Program
	// Env is the shared environment (required).
	Env *env.Env
	// Policy drives the backup's own scheduling during and after recovery
	// (deliberately independent of the primary's; defaults per mode).
	Policy vm.SchedPolicy
	// GCThreshold / MaxInstructions are passed to the VM.
	GCThreshold     int
	MaxInstructions uint64
	// Dispatch selects the recovery VM's interpreter engine. Replay is
	// engine-agnostic (both engines produce bit-identical logs), so any
	// log can be recovered under either engine.
	Dispatch vm.Dispatch
	// OnVM, when set, receives the recovery VM right after construction and
	// before it runs. The simulation harness uses it to install kill handles
	// so a promoted primary can die at an exact frame position.
	OnVM func(*vm.VM)
	// Tail, when set, makes the recovering replica a *promoted* primary: every
	// event past the recovered log — live lock acquisitions, scheduling
	// decisions, native results, and the re-committed uncertain output — is
	// teed through this outgoing Primary to a freshly recruited backup, whose
	// log (snapshot prefix + tail) becomes a faithful continuation of the old
	// one. Nil for a plain standalone recovery.
	Tail *Primary
}

// RecoveryReport summarises what recovery did.
type RecoveryReport struct {
	RecordsInLog     int
	FedResults       uint64
	Reinvoked        uint64
	SkippedOutputs   uint64
	TestedOutputs    uint64
	LiveInvokes      uint64
	GatedWakeups     uint64
	ReplayedSwitches uint64
	VMStats          vm.Stats
}

// Recover re-executes the program from the initial state, gated by the log,
// recovers volatile environment state through the side-effect handlers, and
// continues as the live machine until the program completes. It returns the
// recovered VM and a report.
func (b *Backup) Recover(cfg RecoverConfig) (*vm.VM, *RecoveryReport, error) {
	if cfg.Program == nil || cfg.Env == nil {
		return nil, nil, errors.New("recover: nil program or environment")
	}
	a, err := analyze(b.store.Records())
	if err != nil {
		return nil, nil, fmt.Errorf("analyze log: %w", err)
	}
	if a.cleanHalt {
		return nil, nil, ErrNoRecoveryNeeded
	}
	var coord vm.Coordinator
	var nr *nativeReplay
	var lr *lockReplay
	var sr *schedReplay
	var ir *intervalReplay
	switch b.mode {
	case ModeLock:
		lr = newLockReplay(a, b.handlers, cfg.Policy)
		lr.tail = cfg.Tail
		nr = lr.nr
		coord = lr
	case ModeSched:
		sr = newSchedReplay(a, b.handlers, cfg.Policy)
		sr.tail = cfg.Tail
		nr = sr.nr
		coord = sr
	case ModeLockInterval:
		ir = newIntervalReplay(a, b.handlers, cfg.Policy)
		ir.tail = cfg.Tail
		nr = ir.nr
		coord = ir
	}
	nr.tail = cfg.Tail
	v, err := vm.New(vm.Config{
		Program:         cfg.Program,
		Env:             cfg.Env,
		Natives:         b.natives,
		Coordinator:     coord,
		GCThreshold:     cfg.GCThreshold,
		MaxInstructions: cfg.MaxInstructions,
		// The replaying backup maintains the same per-bytecode progress
		// bookkeeping the primary did (it must detect the recorded switch
		// points and, after recovery, act as the new primary).
		TrackProgress: b.mode == ModeSched,
		Dispatch:      cfg.Dispatch,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("recovery vm: %w", err)
	}
	if cfg.OnVM != nil {
		cfg.OnVM(v)
	}
	// Install handler state so natives can translate volatile identifiers,
	// then rebuild volatile environment state (restore, run exactly once).
	for _, name := range b.handlers.Names() {
		h, _ := b.handlers.Get(name)
		if st := h.State(); st != nil {
			v.SetHandlerState(name, st)
		}
	}
	if err := b.handlers.RestoreAll(sehandler.Ctx{Heap: v.Heap(), Env: cfg.Env, Proc: v.Process()}); err != nil {
		return nil, nil, fmt.Errorf("restore volatile state: %w", err)
	}
	runErr := v.Run()
	report := &RecoveryReport{
		RecordsInLog:   b.store.Len(),
		FedResults:     nr.FedResults,
		Reinvoked:      nr.Reinvoked,
		SkippedOutputs: nr.SkippedOuts,
		TestedOutputs:  nr.TestedOuts,
		LiveInvokes:    nr.LiveInvokes,
		VMStats:        v.Stats(),
	}
	if lr != nil {
		report.GatedWakeups = lr.GatedWakeups
	}
	if sr != nil {
		report.ReplayedSwitches = sr.Replayed
	}
	if ir != nil {
		report.GatedWakeups = ir.GatedWakeups
	}
	if runErr != nil {
		return v, report, fmt.Errorf("recovery execution: %w", runErr)
	}
	return v, report, nil
}
