package replication

import (
	"errors"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Table tests for the log store and promotion helpers at the
// CoordinationBackend boundary (PR 8): what a backend delivers is a record
// stream, and these are the pieces that index, filter, and re-ship it.

func TestLogStoreAppendLenRecords(t *testing.T) {
	s := NewLogStore()
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	s.Append(&wire.LockAcq{TID: "t1", TASN: 1, LID: 7, LASN: 1})
	s.Append(&wire.IDMap{LID: 7, TID: "t1", TASN: 1}, &wire.Halt{})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Records()
	if len(got) != 3 {
		t.Fatalf("Records len = %d, want 3", len(got))
	}
	// The returned slice is a copy: appending through it must not alias the
	// store's backing array.
	got[0] = &wire.Halt{}
	if _, ok := s.Records()[0].(*wire.LockAcq); !ok {
		t.Fatal("Records() exposed the store's backing array")
	}
}

func TestAnalyzeTable(t *testing.T) {
	intent := &wire.OutputIntent{TID: "t1", NatSeq: 1, Sig: "sys.print"}
	cases := []struct {
		name      string
		records   []wire.Record
		uncertain bool
		cleanHalt bool
		maxLID    int64
		wantErr   bool
	}{
		{name: "empty"},
		{
			name:      "trailing intent is uncertain",
			records:   []wire.Record{&wire.LockAcq{TID: "t1", LID: 2}, intent},
			uncertain: true,
			maxLID:    2,
		},
		{
			name:    "intent followed by result is certain",
			records: []wire.Record{intent, &wire.NativeResult{TID: "t1", NatSeq: 1, Sig: "sys.rand"}},
		},
		{
			// Heartbeats are liveness-only: one arriving after the intent must
			// not hide that the output's completion is unknown.
			name:      "trailing heartbeat does not mask uncertainty",
			records:   []wire.Record{intent, &wire.Heartbeat{Seq: 9}},
			uncertain: true,
		},
		{
			name:      "clean halt",
			records:   []wire.Record{&wire.IDMap{LID: 5, TID: "t1", TASN: 1}, &wire.Halt{}},
			cleanHalt: true,
			maxLID:    5,
		},
		{
			name: "duplicate id map rejected",
			records: []wire.Record{
				&wire.IDMap{LID: 1, TID: "t1", TASN: 3},
				&wire.IDMap{LID: 2, TID: "t1", TASN: 3},
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := analyze(tc.records)
			if tc.wantErr {
				if err == nil {
					t.Fatal("analyze accepted a malformed log")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := a.uncertain != nil; got != tc.uncertain {
				t.Fatalf("uncertain = %v, want %v", got, tc.uncertain)
			}
			if a.cleanHalt != tc.cleanHalt {
				t.Fatalf("cleanHalt = %v, want %v", a.cleanHalt, tc.cleanHalt)
			}
			if a.maxLID != tc.maxLID {
				t.Fatalf("maxLID = %d, want %d", a.maxLID, tc.maxLID)
			}
		})
	}
}

func TestSnapshotRecordsTable(t *testing.T) {
	acq := &wire.LockAcq{TID: "t1", LID: 1}
	intent := &wire.OutputIntent{TID: "t1", NatSeq: 2, Sig: "sys.print"}
	cases := []struct {
		name string
		in   []wire.Record
		want int
	}{
		{name: "empty", in: nil, want: 0},
		{name: "halt and heartbeat dropped", in: []wire.Record{acq, &wire.Heartbeat{Seq: 1}, &wire.Halt{}}, want: 1},
		{name: "trailing intent withheld", in: []wire.Record{acq, intent}, want: 1},
		{name: "mid-log intent kept", in: []wire.Record{intent, acq}, want: 2},
		{
			// A heartbeat after the intent must not shield it: the *filtered*
			// tail decides, or a stale heartbeat would re-ship an output whose
			// certainty belongs to the promoted replica.
			name: "intent before trailing heartbeat still withheld",
			in:   []wire.Record{acq, intent, &wire.Heartbeat{Seq: 3}},
			want: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := snapshotRecords(tc.in)
			if len(out) != tc.want {
				t.Fatalf("snapshotRecords kept %d records, want %d", len(out), tc.want)
			}
			for _, r := range out {
				switch r.(type) {
				case *wire.Halt, *wire.Heartbeat:
					t.Fatalf("snapshot leaked a %s record", r.Type())
				}
			}
		})
	}
}

// TestPreparePromotionBackendEpoch pins the promotion hook at the backend
// boundary: the epoch that gates a takeover is the one the tail will
// actually stamp — the config field for an implicit pair backend, the
// backend's own epoch when one is supplied explicitly.
func TestPreparePromotionBackendEpoch(t *testing.T) {
	mkBackup := func(epoch uint64) *Backup {
		_, bEnd := transport.Pipe(4)
		b, err := NewBackup(BackupConfig{Mode: ModeLock, Endpoint: bEnd, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	mkPairBackend := func(epoch uint64) *PairBackend {
		pEnd, _ := transport.Pipe(4)
		pb, err := NewPairBackend(PairBackendConfig{Endpoint: pEnd, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		return pb
	}
	endpointCfg := func(epoch uint64) PrimaryConfig {
		pEnd, _ := transport.Pipe(4)
		return PrimaryConfig{Mode: ModeLock, Endpoint: pEnd, Epoch: epoch}
	}

	t.Run("config epoch must exceed view", func(t *testing.T) {
		if _, err := PreparePromotion(mkBackup(3), RecoverConfig{}, endpointCfg(3)); err == nil {
			t.Fatal("equal epoch accepted")
		}
		p, err := PreparePromotion(mkBackup(3), RecoverConfig{}, endpointCfg(4))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Tail().Epoch(); got != 4 {
			t.Fatalf("tail epoch = %d, want 4", got)
		}
	})
	t.Run("explicit backend epoch wins", func(t *testing.T) {
		// Backend at epoch 9 with a zero config epoch: allowed, because the
		// backend owns what gets stamped.
		cfg := PrimaryConfig{Mode: ModeLock, Backend: mkPairBackend(9)}
		p, err := PreparePromotion(mkBackup(3), RecoverConfig{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Tail().Epoch(); got != 9 {
			t.Fatalf("tail epoch = %d, want 9", got)
		}
		// Backend at a stale epoch with a high config epoch: rejected — the
		// config field would never reach the wire.
		cfg = PrimaryConfig{Mode: ModeLock, Backend: mkPairBackend(2), Epoch: 99}
		if _, err := PreparePromotion(mkBackup(3), RecoverConfig{}, cfg); err == nil {
			t.Fatal("stale backend epoch accepted because of the ignored config field")
		}
	})
	t.Run("mode mismatch", func(t *testing.T) {
		cfg := endpointCfg(5)
		cfg.Mode = ModeSched
		if _, err := PreparePromotion(mkBackup(1), RecoverConfig{}, cfg); err == nil {
			t.Fatal("mode mismatch accepted")
		}
	})
}

// TestPrimaryRequiresEndpointOrBackend pins NewPrimary's construction rule.
func TestPrimaryRequiresEndpointOrBackend(t *testing.T) {
	if _, err := NewPrimary(PrimaryConfig{Mode: ModeLock}); err == nil {
		t.Fatal("NewPrimary accepted neither endpoint nor backend")
	}
	pEnd, _ := transport.Pipe(4)
	pb, err := NewPairBackend(PairBackendConfig{Endpoint: pEnd})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Mode: ModeLock, Backend: pb})
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend() != CoordinationBackend(pb) {
		t.Fatal("explicit backend not adopted")
	}
	if errors.Is(err, ErrBackupLost) {
		t.Fatal("unexpected loss")
	}
}
