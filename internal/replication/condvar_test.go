package replication

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/minilang"
	"repro/internal/transport"
	"repro/internal/vm"
)

// condvarProgram is a bounded-buffer producer/consumer system: one producer,
// two consumers, wait/notifyAll condition synchronization — the
// wait-reacquisition paths (§4.2's "threads can also perform wait operations
// on a monitor ... we need to guarantee that they will acquire the monitor
// in the same order") under replication.
const condvarProgram = `
class Buf {
	items []int;
	head int;
	tail int;
	count int;
	produced int;
	consumed int;
	sum int;
	done int;
}
var buf Buf;
var CAP int = 4;
var TOTAL int = 120;

func produce() {
	for (var i int = 1; i <= TOTAL; i = i + 1) {
		lock (buf) {
			while (buf.count == CAP) { wait(buf); }
			buf.items[buf.tail] = i;
			buf.tail = (buf.tail + 1) % CAP;
			buf.count = buf.count + 1;
			buf.produced = buf.produced + 1;
			notifyall(buf);
		}
	}
	lock (buf) {
		buf.done = 1;
		notifyall(buf);
	}
}

func consume(id int) {
	while (true) {
		lock (buf) {
			while (buf.count == 0 && buf.done == 0) { wait(buf); }
			if (buf.count == 0 && buf.done == 1) { break; }
			var v int = buf.items[buf.head];
			buf.head = (buf.head + 1) % CAP;
			buf.count = buf.count - 1;
			buf.consumed = buf.consumed + 1;
			buf.sum = buf.sum + v;
			notifyall(buf);
		}
	}
}

func main() {
	buf = new Buf;
	buf.items = new [CAP]int;
	var p thread = spawn produce();
	var c1 thread = spawn consume(1);
	var c2 thread = spawn consume(2);
	join(p);
	join(c1);
	join(c2);
	print("sum=" + itoa(buf.sum) + " consumed=" + itoa(buf.consumed));
}
`

// TestCondvarFailoverSweep kills the primary at several points during the
// producer/consumer run, in every mode, and requires the recovered output to
// match the failure-free result (sum of 1..120 = 7260, consumed = 120).
func TestCondvarFailoverSweep(t *testing.T) {
	prog, err := minilang.Compile("condvar", condvarProgram)
	if err != nil {
		t.Fatal(err)
	}
	const want = "sum=7260 consumed=120"

	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		for _, killAt := range []int{3, 15, 60, 200} {
			t.Run(fmt.Sprintf("%v/kill%d", mode, killAt), func(t *testing.T) {
				environ := env.New(77)
				pa, pb := transport.Pipe(4096)
				primary, err := NewPrimary(PrimaryConfig{
					Mode:       mode,
					Endpoint:   pa,
					Policy:     vm.NewSeededPolicy(31, 48, 300),
					FlushEvery: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				pvm, err := vm.New(vm.Config{
					Program: prog, Env: environ, Coordinator: primary,
					TrackProgress: mode == ModeSched,
				})
				if err != nil {
					t.Fatal(err)
				}
				backup, err := NewBackup(BackupConfig{Mode: mode, Endpoint: pb})
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				var outcome ServeOutcome
				go func() { defer close(done); outcome, _ = backup.Serve() }()
				go func() {
					for backup.Store().Len() < killAt {
						select {
						case <-done:
							return
						default:
							time.Sleep(50 * time.Microsecond)
						}
					}
					pvm.Kill()
				}()
				_ = pvm.Run()
				<-done

				if outcome.Failed() {
					if _, _, err := backup.Recover(RecoverConfig{
						Program: prog,
						Env:     environ,
						Policy:  vm.NewSeededPolicy(9001, 64, 512),
					}); err != nil {
						t.Fatalf("recover: %v", err)
					}
				}
				lines := environ.Console().Lines()
				found := 0
				for _, l := range lines {
					if strings.Contains(l, "sum=") {
						found++
						if l != want {
							t.Fatalf("final line %q, want %q", l, want)
						}
					}
				}
				if found != 1 {
					t.Fatalf("sum line appeared %d times in %v", found, lines)
				}
			})
		}
	}
}
