package replication

import (
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/vm"
)

// intervalReplay is the backup-side coordinator for interval-compressed lock
// replication (§6, the DejaVu-style optimization): the log is a global
// sequence of (thread, count) logical intervals. Only the thread owning the
// current interval may perform real monitor acquisitions; after it performs
// its recorded count, the next interval takes over. Because each thread's
// program is deterministic, the interval sequence totally orders all
// acquisitions without per-acquisition records, lock ids, or id maps.
type intervalReplay struct {
	policy   vm.SchedPolicy
	nr       *nativeReplay
	a        *analysis
	idx      int
	consumed uint64
	lidNext  int64
	tail     *Primary // promotion: live events tee to the new backup

	// GatedWakeups counts threads admitted by Poll.
	GatedWakeups uint64
}

var _ vm.Coordinator = (*intervalReplay)(nil)

func newIntervalReplay(a *analysis, handlers *sehandler.Set, policy vm.SchedPolicy) *intervalReplay {
	if policy == nil {
		policy = vm.NewSeededPolicy(0x696e74, 1024, 8192)
	}
	return &intervalReplay{
		policy: policy,
		nr:     newNativeReplay(a, handlers),
		a:      a,
	}
}

func (c *intervalReplay) drained() bool {
	return c.idx >= len(c.a.intervals) && !c.a.open
}

// turnOf reports whether t holds the current interval (or the log is done).
func (c *intervalReplay) turnOf(t *vm.Thread) (bool, error) {
	if c.idx >= len(c.a.intervals) {
		// Past the last logged interval: free once the log is closed,
		// otherwise wait for the primary's next interval record.
		return !c.a.open, nil
	}
	cur := c.a.intervals[c.idx]
	if cur.TID != t.VTID {
		return false, nil
	}
	want := cur.StartTASN + c.consumed
	if t.TASN > want {
		return false, divergence("thread %s at t_asn %d overshot interval position %d", t.VTID, t.TASN, want)
	}
	return t.TASN == want, nil
}

// PickNext implements vm.Coordinator (free scheduling, like lock mode).
func (c *intervalReplay) PickNext(_ *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	t := c.policy.Next(runnable, cur)
	return t, vm.BudgetTarget(t, c.policy.Quantum()), nil
}

// OnDescheduled implements vm.Coordinator.
func (c *intervalReplay) OnDescheduled(*vm.VM, *vm.Thread, *vm.Thread) error { return nil }

// BeforeAcquire implements vm.Coordinator.
func (c *intervalReplay) BeforeAcquire(_ *vm.VM, t *vm.Thread, _ *vm.Monitor) (bool, error) {
	return c.turnOf(t)
}

// AssignLID implements vm.Coordinator: ids are purely local in this mode.
func (c *intervalReplay) AssignLID(*vm.VM, *vm.Thread, *vm.Monitor) (int64, bool, error) {
	c.lidNext++
	return c.lidNext, true, nil
}

// OnAcquired implements vm.Coordinator: advance within the interval.
func (c *intervalReplay) OnAcquired(v *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	if c.idx >= len(c.a.intervals) {
		// Past the recovered log: live acquisitions open/extend intervals in
		// the new backup's log through the tail primary.
		if c.tail != nil {
			return c.tail.OnAcquired(v, t, m)
		}
		return nil
	}
	cur := c.a.intervals[c.idx]
	if cur.TID != t.VTID || t.TASN != cur.StartTASN+c.consumed {
		return divergence("thread %s acquired at t_asn %d outside interval (%s,%d,+%d)",
			t.VTID, t.TASN, cur.TID, cur.StartTASN, cur.Count)
	}
	c.consumed++
	if c.consumed == cur.Count {
		c.idx++
		c.consumed = 0
	}
	return nil
}

// NativeReady implements vm.Coordinator: gate intercepted natives whose
// records have not arrived yet (warm backup).
func (c *intervalReplay) NativeReady(_ *vm.VM, t *vm.Thread, _ *native.Def) bool {
	return c.nr.ready(t)
}

// InvokeNative implements vm.Coordinator.
func (c *intervalReplay) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	return c.nr.invoke(v, t, def, args)
}

// Poll implements vm.Coordinator: admit the gated thread whose turn arrived.
func (c *intervalReplay) Poll(v *vm.VM) (bool, error) {
	progress := false
	for _, t := range v.Threads() {
		if t.State() != vm.StateGated {
			continue
		}
		var ok bool
		var err error
		if t.BlockedOn() == nil {
			// Gated before an intercepted native call (warm backup).
			ok = c.nr.ready(t)
		} else {
			ok, err = c.turnOf(t)
		}
		if err != nil {
			return false, err
		}
		if ok {
			v.Ungate(t)
			c.GatedWakeups++
			progress = true
		}
	}
	return progress, nil
}

// OnIdle implements vm.Coordinator.
func (c *intervalReplay) OnIdle(*vm.VM) (bool, error) { return false, nil }

// OnHalt implements vm.Coordinator.
func (c *intervalReplay) OnHalt(v *vm.VM, runErr error) error {
	if c.tail != nil {
		return c.tail.OnHalt(v, runErr)
	}
	return nil
}
