package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// WarmBackup is the "keeping the backup updated would require only minor
// modifications" variant (§1): instead of merely storing the log, the backup
// executes the program *while* the primary runs, consuming records as they
// arrive — semi-active replication. Threads gate at every coordination point
// whose record has not arrived yet (lock acquisitions, scheduling switches,
// intercepted natives, and the newest still-uncertain output); when the
// primary fails, the warm backup is already mid-execution and simply runs
// past the end of the log, so takeover latency is the remaining replay gap
// rather than a full re-execution.
type WarmBackup struct {
	mode     Mode
	ep       transport.Endpoint
	handlers *sehandler.Set
	natives  *native.Registry
	timeout  time.Duration
	epoch    uint64
	clk      clock.Clock

	feed  *warmFeed
	stats BackupStats
}

// warmFeed is the shared, incrementally-fed log view: the serve goroutine
// appends under mu; the replay VM's coordinator methods run under the same
// mutex (the VM itself interprets outside it). The replay side waits for
// feed changes on a clock WaitSlot rather than a condition variable so that
// the wait is visible to a virtual clock (the slot has exactly one waiter:
// the warm VM goroutine, idling in OnIdle).
type warmFeed struct {
	mu   sync.Mutex
	slot clock.WaitSlot
	a    *analysis
	fed  int

	vmachine *vm.VM
	handlers *sehandler.Set
	restored bool
}

func newWarmFeed(handlers *sehandler.Set, clk clock.Clock) *warmFeed {
	return &warmFeed{a: newAnalysis(), handlers: handlers, slot: clk.NewWaitSlot()}
}

// append indexes records and wakes the replay side.
func (f *warmFeed) append(records []wire.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range records {
		if err := f.a.add(r); err != nil {
			return err
		}
		f.fed++
	}
	f.slot.Signal()
	return nil
}

// Fed returns the number of records fed so far (kill triggers, tests).
func (f *warmFeed) Fed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fed
}

// close seals the log (primary halted or failed) and rebuilds volatile
// environment state exactly once (the handlers' restore, §4.4) before the
// replay side is allowed to go live.
func (f *warmFeed) close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.a.close()
	var err error
	if !f.restored && f.vmachine != nil {
		f.restored = true
		err = f.handlers.RestoreAll(sehandler.Ctx{
			Heap: f.vmachine.Heap(), Env: f.vmachine.Environment(), Proc: f.vmachine.Process(),
		})
	}
	f.slot.Signal()
	return err
}

// warmCoordinator serialises an inner replay coordinator against the feed:
// every decision point runs under the feed mutex, and idling waits on the
// feed's condition variable until new records (or closure) arrive.
type warmCoordinator struct {
	feed  *warmFeed
	inner vm.Coordinator
}

var _ vm.Coordinator = (*warmCoordinator)(nil)

func (w *warmCoordinator) PickNext(v *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.PickNext(v, runnable, cur)
}

func (w *warmCoordinator) OnDescheduled(v *vm.VM, prev, next *vm.Thread) error {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.OnDescheduled(v, prev, next)
}

func (w *warmCoordinator) BeforeAcquire(v *vm.VM, t *vm.Thread, m *vm.Monitor) (bool, error) {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.BeforeAcquire(v, t, m)
}

func (w *warmCoordinator) AssignLID(v *vm.VM, t *vm.Thread, m *vm.Monitor) (int64, bool, error) {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.AssignLID(v, t, m)
}

func (w *warmCoordinator) OnAcquired(v *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.OnAcquired(v, t, m)
}

func (w *warmCoordinator) NativeReady(v *vm.VM, t *vm.Thread, def *native.Def) bool {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.NativeReady(v, t, def)
}

func (w *warmCoordinator) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.InvokeNative(v, t, def, args)
}

func (w *warmCoordinator) Poll(v *vm.VM) (bool, error) {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.Poll(v)
}

// OnIdle blocks until the feed changes (new records or closure) while the
// log is open; once closed, idling means genuine deadlock. The park happens
// outside the mutex; the slot's latching makes a change between the unlock
// and the park a wakeup rather than a lost signal, and a stale latched
// wakeup only costs one spurious retry (the VM re-checks and idles again).
func (w *warmCoordinator) OnIdle(v *vm.VM) (bool, error) {
	w.feed.mu.Lock()
	if retry, err := w.inner.OnIdle(v); retry || err != nil {
		w.feed.mu.Unlock()
		return retry, err
	}
	if !w.feed.a.open {
		w.feed.mu.Unlock()
		return false, nil
	}
	w.feed.mu.Unlock()
	w.feed.slot.Park(0)
	return true, nil
}

func (w *warmCoordinator) OnHalt(v *vm.VM, runErr error) error {
	w.feed.mu.Lock()
	defer w.feed.mu.Unlock()
	return w.inner.OnHalt(v, runErr)
}

// NewWarmBackup builds a warm backup replica.
func NewWarmBackup(cfg BackupConfig) (*WarmBackup, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("warm backup: nil endpoint")
	}
	if cfg.Mode != ModeLock && cfg.Mode != ModeSched && cfg.Mode != ModeLockInterval {
		return nil, fmt.Errorf("warm backup: bad mode %d", cfg.Mode)
	}
	h := cfg.Handlers
	if h == nil {
		h = sehandler.DefaultSet()
	}
	reg := cfg.Natives
	if reg == nil {
		reg = native.StdLib()
	}
	clk := clock.Or(cfg.Clock)
	return &WarmBackup{
		mode:     cfg.Mode,
		ep:       cfg.Endpoint,
		handlers: h,
		natives:  reg,
		timeout:  cfg.FailureTimeout,
		epoch:    cfg.Epoch,
		clk:      clk,
		feed:     newWarmFeed(h, clk),
	}, nil
}

// Logged returns the number of records fed to the replay so far (kill
// triggers and tests poll it).
func (w *WarmBackup) Logged() int { return w.feed.Fed() }

// WarmResult describes a warm-backup run.
type WarmResult struct {
	Outcome ServeOutcome
	Serve   BackupStats
	Replay  *RecoveryReport
	// CaughtUpAtClose reports whether the replay had consumed the entire
	// log when the primary ended (takeover gap ≈ zero).
	CaughtUpAtClose bool
}

// Run serves the log and executes the program concurrently, returning when
// both the primary has ended (halt or failure) and the backup's execution
// has completed. On primary failure the execution continues live (the warm
// backup *is* the new primary); on clean halt it finishes replaying, leaving
// the backup hot with the program's full final state (all external outputs
// deduplicated by the exactly-once machinery).
func (w *WarmBackup) Run(cfg RecoverConfig) (*vm.VM, *WarmResult, error) {
	if cfg.Program == nil || cfg.Env == nil {
		return nil, nil, errors.New("warm backup: nil program or environment")
	}
	var coord vm.Coordinator
	var nr *nativeReplay
	var lr *lockReplay
	var sr *schedReplay
	var ir *intervalReplay
	switch w.mode {
	case ModeLock:
		lr = newLockReplay(w.feed.a, w.handlers, cfg.Policy)
		nr = lr.nr
		coord = lr
	case ModeSched:
		sr = newSchedReplay(w.feed.a, w.handlers, cfg.Policy)
		nr = sr.nr
		coord = sr
	case ModeLockInterval:
		ir = newIntervalReplay(w.feed.a, w.handlers, cfg.Policy)
		nr = ir.nr
		coord = ir
	}
	machine, err := vm.New(vm.Config{
		Program:         cfg.Program,
		Env:             cfg.Env,
		Natives:         w.natives,
		Coordinator:     &warmCoordinator{feed: w.feed, inner: coord},
		GCThreshold:     cfg.GCThreshold,
		MaxInstructions: cfg.MaxInstructions,
		TrackProgress:   w.mode == ModeSched,
		Dispatch:        cfg.Dispatch,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("warm vm: %w", err)
	}
	for _, name := range w.handlers.Names() {
		h, _ := w.handlers.Get(name)
		if st := h.State(); st != nil {
			machine.SetHandlerState(name, st)
		}
	}
	w.feed.vmachine = machine

	// The serve goroutine is spawned through the clock (it blocks in
	// Endpoint.Recv, which a simulated transport parks clock-visibly), and
	// the join below is a clock Flag rather than a channel receive: after
	// the replay VM finishes, serve may still be waiting out its
	// FailureTimeout, which under a virtual clock only expires if this
	// goroutine's wait is visible too.
	type serveRes struct {
		outcome ServeOutcome
		err     error
	}
	var sr2 serveRes
	serveDone := clock.NewFlag(w.clk)
	w.clk.Go(func() {
		defer serveDone.Set()
		outcome, err := w.serve()
		if cerr := w.feed.close(); cerr != nil && err == nil {
			err = cerr
		}
		sr2 = serveRes{outcome, err}
	})

	caughtUp := false
	runErr := machine.Run()
	serveDone.Wait()
	if sr2.err != nil {
		return machine, nil, fmt.Errorf("warm serve: %w", sr2.err)
	}
	w.feed.mu.Lock()
	caughtUp = w.feed.a.nativePending == 0 && w.feed.a.lockPending == 0
	w.feed.mu.Unlock()

	report := &RecoveryReport{
		RecordsInLog:   int(w.stats.RecordsLogged),
		FedResults:     nr.FedResults,
		Reinvoked:      nr.Reinvoked,
		SkippedOutputs: nr.SkippedOuts,
		TestedOutputs:  nr.TestedOuts,
		LiveInvokes:    nr.LiveInvokes,
		VMStats:        machine.Stats(),
	}
	if lr != nil {
		report.GatedWakeups = lr.GatedWakeups
	}
	if sr != nil {
		report.ReplayedSwitches = sr.Replayed
	}
	if ir != nil {
		report.GatedWakeups = ir.GatedWakeups
	}
	res := &WarmResult{
		Outcome:         sr2.outcome,
		Serve:           w.stats,
		Replay:          report,
		CaughtUpAtClose: caughtUp,
	}
	if runErr != nil {
		return machine, res, fmt.Errorf("warm execution: %w", runErr)
	}
	return machine, res, nil
}

// serve is the warm logging loop: like Backup.Serve but feeding the live
// analysis (and the side-effect handlers) as records arrive. It applies the
// same two-sided failure discrimination: closure / gap / corruption is
// OutcomePrimaryFailed, heartbeat silence is OutcomePrimaryTimedOut.
func (w *WarmBackup) serve() (ServeOutcome, error) {
	var gate wire.SeqGate
	for {
		msg, err := w.ep.Recv(w.timeout)
		if errors.Is(err, transport.ErrClosed) {
			return OutcomePrimaryFailed, nil
		}
		if errors.Is(err, transport.ErrTimeout) {
			return OutcomePrimaryTimedOut, nil
		}
		if err != nil {
			return 0, fmt.Errorf("warm receive: %w", err)
		}
		frame, err := wire.DecodeFrame(msg)
		if err != nil {
			w.stats.CorruptFrames++
			return OutcomePrimaryFailed, nil
		}
		if frame.Epoch < w.epoch {
			// Deposed primary's traffic: drop without acking (see
			// Backup.Serve — an ack would commit outputs against a
			// configuration that has moved on).
			w.stats.StaleEpochs++
			continue
		}
		if frame.Epoch > w.epoch {
			return OutcomePrimaryFailed, nil
		}
		if dup, gap := gate.Admit(frame.Seq); dup {
			w.stats.DuplicateFrames++
			if frame.AckWanted {
				if err := w.ep.Send(wire.EncodeAck(w.epoch, frame.Seq)); err != nil {
					return OutcomePrimaryFailed, nil
				}
				w.stats.AcksSent++
			}
			continue
		} else if gap {
			w.stats.SeqGaps++
			return OutcomePrimaryFailed, nil
		}
		w.stats.FramesReceived++
		records, err := wire.DecodeAll(frame.Payload)
		if err != nil {
			w.stats.CorruptFrames++
			return OutcomePrimaryFailed, nil
		}
		halted := false
		keep := records[:0]
		for _, r := range records {
			switch rec := r.(type) {
			case *wire.Heartbeat:
				w.stats.Heartbeats++
				continue
			case *wire.Halt:
				halted = true
				continue
			case *wire.NativeResult:
				if len(rec.HandlerData) > 0 {
					if err := w.routeReceive(rec); err != nil {
						return 0, err
					}
				}
			}
			keep = append(keep, r)
			w.stats.RecordsLogged++
		}
		if err := w.feed.append(keep); err != nil {
			return 0, err
		}
		if frame.AckWanted {
			if err := w.ep.Send(wire.EncodeAck(w.epoch, frame.Seq)); err != nil {
				if errors.Is(err, transport.ErrClosed) {
					return OutcomePrimaryFailed, nil
				}
				return 0, fmt.Errorf("warm ack %d: %w", frame.Seq, err)
			}
			w.stats.AcksSent++
		}
		if halted {
			return OutcomePrimaryCompleted, nil
		}
	}
}

func (w *WarmBackup) routeReceive(rec *wire.NativeResult) error {
	def, ok := w.natives.Lookup(rec.Sig)
	if !ok {
		return fmt.Errorf("log references unknown native %q", rec.Sig)
	}
	h := w.handlers.ForDef(def)
	if h == nil {
		return fmt.Errorf("native %q logged handler data but has no handler", rec.Sig)
	}
	w.stats.ReceiveRoutings++
	return h.Receive(rec.HandlerData)
}
