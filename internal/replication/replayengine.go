package replication

import (
	"fmt"

	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// ReplayEngine packages the backup's replay machinery for offline use: the
// indexed log analysis, the mode-specific coordinator, and the side-effect
// handler set with the receive-state already folded in. Recover builds the
// same pieces internally and then runs to completion; the debugger instead
// needs them as a value it can hand to a VM, pause, clone for a checkpoint,
// and resume — so the engine exposes exactly that.
type ReplayEngine struct {
	mode     Mode
	natives  *native.Registry
	handlers *sehandler.Set
	a        *analysis
	nr       *nativeReplay
	coord    vm.Coordinator
}

// NewReplayEngine indexes a captured record stream and builds the replay
// coordinator for it. handlers defaults to sehandler.DefaultSet and natives
// to native.StdLib; policy drives the replay's own scheduling (per-mode
// seeded default if nil). Halt and heartbeat records are dropped, exactly
// as LoadRecords drops them, so a log captured from a clean run replays as
// a crash at its end rather than refusing to replay at all.
func NewReplayEngine(mode Mode, records []wire.Record, handlers *sehandler.Set, natives *native.Registry, policy vm.SchedPolicy) (*ReplayEngine, error) {
	if mode != ModeLock && mode != ModeSched && mode != ModeLockInterval {
		return nil, fmt.Errorf("replay engine: invalid mode %d", mode)
	}
	if handlers == nil {
		handlers = sehandler.DefaultSet()
	}
	if natives == nil {
		natives = native.StdLib()
	}
	if err := handlers.RegisterAll(natives); err != nil {
		return nil, err
	}
	a := newAnalysis()
	for _, r := range records {
		switch rec := r.(type) {
		case *wire.Halt, *wire.Heartbeat:
			continue
		case *wire.NativeResult:
			// The paper's receive method: handler state folds into the
			// managing handler as it arrives.
			if len(rec.HandlerData) > 0 {
				def, ok := natives.Lookup(rec.Sig)
				if !ok {
					return nil, fmt.Errorf("log references unknown native %q", rec.Sig)
				}
				h := handlers.ForDef(def)
				if h == nil {
					return nil, fmt.Errorf("native %q logged handler data but has no handler", rec.Sig)
				}
				if err := h.Receive(rec.HandlerData); err != nil {
					return nil, err
				}
			}
		}
		if err := a.add(r); err != nil {
			return nil, fmt.Errorf("analyze log: %w", err)
		}
	}
	a.close()
	e := &ReplayEngine{mode: mode, natives: natives, handlers: handlers, a: a}
	e.buildCoord(policy)
	return e, nil
}

func (e *ReplayEngine) buildCoord(policy vm.SchedPolicy) {
	switch e.mode {
	case ModeLock:
		lr := newLockReplay(e.a, e.handlers, policy)
		e.nr = lr.nr
		e.coord = lr
	case ModeSched:
		sr := newSchedReplay(e.a, e.handlers, policy)
		e.nr = sr.nr
		e.coord = sr
	case ModeLockInterval:
		ir := newIntervalReplay(e.a, e.handlers, policy)
		e.nr = ir.nr
		e.coord = ir
	}
}

// Coordinator returns the replay coordinator to install in the VM.
func (e *ReplayEngine) Coordinator() vm.Coordinator { return e.coord }

// Handlers returns the engine's side-effect handler set (receive-state
// folded in; Restore-able against the replay VM's environment).
func (e *ReplayEngine) Handlers() *sehandler.Set { return e.handlers }

// Mode returns the replication mode the log was captured under.
func (e *ReplayEngine) Mode() Mode { return e.mode }

// Natives returns the registry the engine's handlers registered into; the
// replay VM must execute against the same registry.
func (e *ReplayEngine) Natives() *native.Registry { return e.natives }

// TrackProgress reports whether the replay VM needs per-bytecode progress
// bookkeeping (scheduling replay cross-checks recorded switch positions).
func (e *ReplayEngine) TrackProgress() bool { return e.mode == ModeSched }

// Clone deep-copies the engine mid-replay: the partially-consumed analysis,
// the coordinator's cursor state, and the handler set. A VM cloned at the
// same instant, driven by the cloned coordinator, replays the remaining log
// identically — the checkpoint-cache property. The clone and the original
// share the (immutable) record values but no mutable indexing state.
func (e *ReplayEngine) Clone() (*ReplayEngine, error) {
	handlers, err := e.handlers.Clone()
	if err != nil {
		return nil, err
	}
	a := e.a.clone()
	c := &ReplayEngine{mode: e.mode, natives: e.natives, handlers: handlers, a: a}
	switch cur := e.coord.(type) {
	case *lockReplay:
		lr := &lockReplay{
			policy:       clonePolicy(cur.policy),
			nr:           cur.nr.cloneWith(a, handlers),
			a:            a,
			lidNext:      cur.lidNext,
			GatedWakeups: cur.GatedWakeups,
		}
		c.nr = lr.nr
		c.coord = lr
	case *schedReplay:
		sr := &schedReplay{
			nr:            cur.nr.cloneWith(a, handlers),
			a:             a,
			idx:           cur.idx,
			expect:        cur.expect,
			forced:        cur.forced,
			livePolicy:    clonePolicy(cur.livePolicy),
			lidNext:       cur.lidNext,
			strict:        cur.strict,
			pendingSwitch: cur.pendingSwitch,
			Replayed:      cur.Replayed,
		}
		c.nr = sr.nr
		c.coord = sr
	case *intervalReplay:
		ir := &intervalReplay{
			policy:       clonePolicy(cur.policy),
			nr:           cur.nr.cloneWith(a, handlers),
			a:            a,
			idx:          cur.idx,
			consumed:     cur.consumed,
			lidNext:      cur.lidNext,
			GatedWakeups: cur.GatedWakeups,
		}
		c.nr = ir.nr
		c.coord = ir
	default:
		return nil, fmt.Errorf("replay engine: cannot clone coordinator %T", e.coord)
	}
	return c, nil
}

// clonePolicy copies a scheduling policy at its current decision position.
// Every in-repo policy implements vm.PolicyCloner; a foreign stateless
// policy may be shared as-is.
func clonePolicy(p vm.SchedPolicy) vm.SchedPolicy {
	if pc, ok := p.(vm.PolicyCloner); ok {
		return pc.ClonePolicy()
	}
	return p
}

// clone copies the analysis mid-consumption. Record values are immutable
// and shared (preserving the pointer identities the uncertain-output check
// relies on); the queue maps are copied as slice headers — consumption only
// re-slices, and a closed log never appends — and the id maps are copied
// deeply because AssignLID deletes from them.
func (a *analysis) clone() *analysis {
	c := &analysis{
		open:          a.open,
		last:          a.last,
		nativeQ:       make(map[string][]wire.Record, len(a.nativeQ)),
		lockQ:         make(map[string][]*wire.LockAcq, len(a.lockQ)),
		idmaps:        make(map[string]map[uint64]*wire.IDMap, len(a.idmaps)),
		intervals:     a.intervals,
		switches:      a.switches,
		uncertain:     a.uncertain,
		nativePending: a.nativePending,
		lockPending:   a.lockPending,
		idmapPending:  a.idmapPending,
		maxLID:        a.maxLID,
		cleanHalt:     a.cleanHalt,
	}
	for k, v := range a.nativeQ {
		c.nativeQ[k] = v
	}
	for k, v := range a.lockQ {
		c.lockQ[k] = v
	}
	for k, inner := range a.idmaps {
		m := make(map[uint64]*wire.IDMap, len(inner))
		for kk, vv := range inner {
			m[kk] = vv
		}
		c.idmaps[k] = m
	}
	return c
}

// cloneWith copies the native-replay machinery against a cloned analysis
// and handler set. The tail is never carried over: a debugger clone is not
// a promoted primary.
func (nr *nativeReplay) cloneWith(a *analysis, handlers *sehandler.Set) *nativeReplay {
	return &nativeReplay{
		handlers:    handlers,
		a:           a,
		FedResults:  nr.FedResults,
		Reinvoked:   nr.Reinvoked,
		SkippedOuts: nr.SkippedOuts,
		TestedOuts:  nr.TestedOuts,
		LiveInvokes: nr.LiveInvokes,
	}
}
