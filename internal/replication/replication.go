// Package replication implements the paper's primary contribution: a
// primary-backup fault-tolerant VM built on the state machine approach.
//
// The primary runs the program under one of two replica-coordination
// techniques — replicated lock acquisition (log every monitor acquisition as
// a (t_id, t_asn, l_id, l_asn) record plus (l_id, t_id, t_asn) id maps,
// §4.2) or replicated thread scheduling (log every context switch as a
// (br_cnt, pc_off, mon_cnt, l_asn, t_id) record, §4.2) — and additionally
// logs the results of non-deterministic native methods (§4.1) and output
// commit points (§3.4). The cold backup stores the log; when the failure
// detector fires it re-executes the program from the initial state, gated by
// the log, recovers volatile environment state through side-effect handlers
// (§4.4), and continues live.
package replication

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Mode selects the multi-threading replica-coordination technique.
type Mode int

// Modes.
const (
	// ModeLock replicates the sequence of monitor acquisitions (works on
	// multiprocessors; requires race-free programs, R4A).
	ModeLock Mode = iota + 1
	// ModeSched replicates thread scheduling decisions (uniprocessor green
	// threads; tolerates data races, R4B).
	ModeSched
	// ModeLockInterval is ModeLock with DejaVu-style logical-interval
	// compression (§6): runs of acquisitions by one thread collapse into a
	// single record, shrinking the log by orders of magnitude.
	ModeLockInterval
)

func (m Mode) String() string {
	switch m {
	case ModeLock:
		return "lock"
	case ModeSched:
		return "sched"
	case ModeLockInterval:
		return "lockint"
	default:
		return "invalid"
	}
}

// Errors shared across the package.
var (
	ErrDivergence = errors.New("replica divergence detected")
	ErrBadResult  = errors.New("native result not representable on the wire")
)

// toWire flattens native results into replica-independent wire values. Only
// ints, floats, null and string objects may cross (other references would be
// meaningless at the backup).
func toWire(h *heap.Heap, results []heap.Value) ([]wire.WireValue, error) {
	out := make([]wire.WireValue, len(results))
	for i, v := range results {
		switch v.Kind {
		case heap.KindInt:
			out[i] = wire.WireValue{Kind: wire.WireInt, I: v.I}
		case heap.KindFloat:
			out[i] = wire.WireValue{Kind: wire.WireFloat, F: v.F}
		case heap.KindRef:
			if v.R == heap.NullRef {
				out[i] = wire.WireValue{Kind: wire.WireNull}
				continue
			}
			s, err := h.StringAt(v.R)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadResult, err)
			}
			out[i] = wire.WireValue{Kind: wire.WireStr, S: s}
		default:
			return nil, fmt.Errorf("%w: invalid value kind", ErrBadResult)
		}
	}
	return out, nil
}

// fromWire materialises logged results in the backup's heap.
func fromWire(h *heap.Heap, values []wire.WireValue) ([]heap.Value, error) {
	out := make([]heap.Value, len(values))
	for i, v := range values {
		switch v.Kind {
		case wire.WireInt:
			out[i] = heap.IntVal(v.I)
		case wire.WireFloat:
			out[i] = heap.FloatVal(v.F)
		case wire.WireNull:
			out[i] = heap.Null()
		case wire.WireStr:
			r, err := h.AllocString(v.S)
			if err != nil {
				return nil, err
			}
			out[i] = heap.RefVal(r)
		default:
			return nil, fmt.Errorf("%w: wire kind %d", ErrBadResult, v.Kind)
		}
	}
	return out, nil
}

func divergence(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrDivergence, fmt.Sprintf(format, args...))
}

// snapshotProgress captures a thread's progress indicators for a scheduling
// record (§4.2): cumulative br_cnt, the method/pc offset of the last
// executed position, mon_cnt, and the acquire sequence number of the
// monitor it waits on, if any.
func snapshotProgress(t *vm.Thread) (brCnt uint64, methodIdx, pcOff int32, monCnt, lasn uint64) {
	brCnt = t.BrCnt
	monCnt = t.MonCnt
	methodIdx, pcOff = -1, -1
	if f := t.Top(); f != nil {
		methodIdx = f.Method
		pcOff = f.PC
	}
	if m := t.BlockedOn(); m != nil {
		lasn = m.LASN
	}
	return brCnt, methodIdx, pcOff, monCnt, lasn
}
