package replication

import (
	"sync/atomic"
	"time"
)

// PrimaryMetrics is a point-in-time snapshot of the primary's replication
// overhead decomposition, mirroring Figures 3 and 4: Communication is time
// spent shipping log frames, Pessimism is time spent waiting for
// output-commit acknowledgements, and Record is time spent building/storing
// lock-acquisition or thread-scheduling records ("Lock Acquire Overhead" /
// "Rescheduling Overhead").
type PrimaryMetrics struct {
	Communication time.Duration
	Pessimism     time.Duration
	Record        time.Duration

	RecordsLogged   uint64 // "Logged Messages" in Table 2
	LockRecords     uint64
	IDMapRecords    uint64
	SwitchRecords   uint64
	NativeRecords   uint64
	OutputIntents   uint64
	FramesSent      uint64
	BytesSent       uint64
	AcksAwaited     uint64
	HeartbeatsSent  uint64
	AckTimeouts     uint64
	StaleAcks       uint64 // acks from another epoch, skipped
	Desyncs         uint64 // undecodable acks / acks for unsent frames
	LargestFrameLen int
	BackupLost      bool
}

// primaryMetrics is the live counterpart of PrimaryMetrics. The VM goroutine
// and the heartbeat goroutine both write to it, and Metrics() may be polled
// from any goroutine, so every field is atomic; Snapshot assembles a plain
// read-only copy. (Individual fields are read independently — the snapshot is
// not a single linearization point, which is fine for monitoring counters.)
type primaryMetrics struct {
	communicationNS atomic.Int64
	pessimismNS     atomic.Int64
	recordNS        atomic.Int64

	recordsLogged  atomic.Uint64
	lockRecords    atomic.Uint64
	idMapRecords   atomic.Uint64
	switchRecords  atomic.Uint64
	nativeRecords  atomic.Uint64
	outputIntents  atomic.Uint64
	framesSent     atomic.Uint64
	bytesSent      atomic.Uint64
	acksAwaited    atomic.Uint64
	heartbeatsSent atomic.Uint64
	ackTimeouts    atomic.Uint64
	staleAcks      atomic.Uint64
	desyncs        atomic.Uint64
	largestFrame   atomic.Int64
	backupLost     atomic.Bool
}

func (m *primaryMetrics) addCommunication(d time.Duration) { m.communicationNS.Add(int64(d)) }
func (m *primaryMetrics) addPessimism(d time.Duration)     { m.pessimismNS.Add(int64(d)) }
func (m *primaryMetrics) addRecord(d time.Duration)        { m.recordNS.Add(int64(d)) }

// observeFrame accounts one shipped frame of n bytes.
func (m *primaryMetrics) observeFrame(n int) {
	m.framesSent.Add(1)
	m.bytesSent.Add(uint64(n))
	for {
		cur := m.largestFrame.Load()
		if int64(n) <= cur || m.largestFrame.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Snapshot returns a consistent-enough copy for reporting.
func (m *primaryMetrics) Snapshot() PrimaryMetrics {
	return PrimaryMetrics{
		Communication:   time.Duration(m.communicationNS.Load()),
		Pessimism:       time.Duration(m.pessimismNS.Load()),
		Record:          time.Duration(m.recordNS.Load()),
		RecordsLogged:   m.recordsLogged.Load(),
		LockRecords:     m.lockRecords.Load(),
		IDMapRecords:    m.idMapRecords.Load(),
		SwitchRecords:   m.switchRecords.Load(),
		NativeRecords:   m.nativeRecords.Load(),
		OutputIntents:   m.outputIntents.Load(),
		FramesSent:      m.framesSent.Load(),
		BytesSent:       m.bytesSent.Load(),
		AcksAwaited:     m.acksAwaited.Load(),
		HeartbeatsSent:  m.heartbeatsSent.Load(),
		AckTimeouts:     m.ackTimeouts.Load(),
		StaleAcks:       m.staleAcks.Load(),
		Desyncs:         m.desyncs.Load(),
		LargestFrameLen: int(m.largestFrame.Load()),
		BackupLost:      m.backupLost.Load(),
	}
}
