package replication

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// encodeRecords packs records into one backend payload (what Primary.flush
// hands to Ship).
func encodeRecords(t *testing.T, recs ...wire.Record) []byte {
	t.Helper()
	var buf wire.Buffer
	for _, r := range recs {
		if err := buf.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

// TestPairBackendShipCommit drives the extracted pair backend directly
// against a cold backup: async ship, then a committing ship that must block
// until the backup logged everything.
func TestPairBackendShipCommit(t *testing.T) {
	pEnd, bEnd := transport.Pipe(64)
	pb, err := NewPairBackend(PairBackendConfig{Endpoint: pEnd})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(BackupConfig{Mode: ModeLock, Endpoint: bEnd})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var outcome ServeOutcome
	go func() {
		defer close(done)
		outcome, _ = backup.Serve()
	}()

	if err := pb.Ship(encodeRecords(t, &wire.IDMap{LID: 1, TID: "t1", TASN: 1}), false); err != nil {
		t.Fatalf("async ship: %v", err)
	}
	if err := pb.Ship(encodeRecords(t, &wire.LockAcq{TID: "t1", TASN: 1, LID: 1, LASN: 1}), true); err != nil {
		t.Fatalf("committing ship: %v", err)
	}
	// The commit returned, so both batches are durably logged — no races, no
	// sleeps: that is the §3.4 guarantee itself.
	if got := backup.Store().Len(); got != 2 {
		t.Fatalf("backup logged %d records at commit time, want 2", got)
	}
	if pb.Lost() {
		t.Fatal("healthy backend reports Lost")
	}
	if err := pb.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if outcome != OutcomePrimaryFailed {
		t.Fatalf("outcome = %v, want primary failed (closed without halt)", outcome)
	}
}

// TestPairBackendLostLatch: a dead channel latches Lost and every later Ship
// fails fast with ErrBackupLost.
func TestPairBackendLostLatch(t *testing.T) {
	pEnd, bEnd := transport.Pipe(4)
	pb, err := NewPairBackend(PairBackendConfig{Endpoint: pEnd})
	if err != nil {
		t.Fatal(err)
	}
	_ = bEnd.Close()
	// The pipe may accept a buffered send after the peer closed; the commit
	// wait cannot succeed, so Lost latches by the second ship at the latest.
	err = pb.Ship(encodeRecords(t, &wire.Halt{}), true)
	if !errors.Is(err, ErrBackupLost) {
		t.Fatalf("ship into closed channel: %v, want ErrBackupLost", err)
	}
	if !pb.Lost() {
		t.Fatal("loss not latched")
	}
	if err := pb.Ship([]byte{}, false); !errors.Is(err, ErrBackupLost) {
		t.Fatalf("post-loss ship: %v, want fast ErrBackupLost", err)
	}
	pb.Quiesce() // no heartbeat loop configured: must be a safe no-op
}

// fakeBackend is a scripted CoordinationBackend for exercising the
// backend-generic half of Primary.
type fakeBackend struct {
	ships   [][]byte
	commits int
	fail    error
	lost    atomic.Bool
	epoch   uint64
	closed  bool
}

func (f *fakeBackend) Ship(payload []byte, commit bool) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	f.ships = append(f.ships, cp)
	if commit {
		f.commits++
	}
	if f.fail != nil {
		f.lost.Store(true)
		return f.fail
	}
	return nil
}
func (f *fakeBackend) Epoch() uint64 { return f.epoch }
func (f *fakeBackend) Lost() bool    { return f.lost.Load() }
func (f *fakeBackend) Quiesce()      {}
func (f *fakeBackend) Close() error  { f.closed = true; return nil }

// TestPrimaryExternalBackend drives Primary's generic flush path through a
// scripted backend: batching by FlushEvery, commit flushes, metric
// accounting, epoch passthrough, and loss propagation.
func TestPrimaryExternalBackend(t *testing.T) {
	fb := &fakeBackend{epoch: 42}
	p, err := NewPrimary(PrimaryConfig{Mode: ModeLock, Backend: fb, FlushEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 42 {
		t.Fatalf("Epoch() = %d, want backend's 42", p.Epoch())
	}
	// Two appends hit FlushEvery and ship one async batch.
	if err := p.append(&wire.IDMap{LID: 1, TID: "t1", TASN: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.append(&wire.LockAcq{TID: "t1", TASN: 1, LID: 1, LASN: 1}); err != nil {
		t.Fatal(err)
	}
	if len(fb.ships) != 1 || fb.commits != 0 {
		t.Fatalf("ships=%d commits=%d after batch, want 1/0", len(fb.ships), fb.commits)
	}
	recs, err := wire.DecodeAll(fb.ships[0])
	if err != nil || len(recs) != 2 {
		t.Fatalf("shipped batch decode: %d records, err %v", len(recs), err)
	}
	// A commit flush ships the (empty) buffer with the commit flag and is
	// accounted as awaited pessimism.
	if err := p.flush(true); err != nil {
		t.Fatal(err)
	}
	if fb.commits != 1 {
		t.Fatalf("commits = %d, want 1", fb.commits)
	}
	m := p.Metrics()
	if m.AcksAwaited != 1 || m.FramesSent != 2 || m.RecordsLogged != 2 {
		t.Fatalf("metrics AcksAwaited=%d FramesSent=%d RecordsLogged=%d, want 1/2/2",
			m.AcksAwaited, m.FramesSent, m.RecordsLogged)
	}

	// Loss: the backend latches, the append path surfaces ErrBackupLost, and
	// the metrics mirror the verdict.
	fb.fail = ErrBackupLost
	if err := p.flush(true); !errors.Is(err, ErrBackupLost) {
		t.Fatalf("flush after backend failure: %v", err)
	}
	if !p.BackupLost() {
		t.Fatal("BackupLost() false after backend latched")
	}
	if err := p.append(&wire.Halt{}); !errors.Is(err, ErrBackupLost) {
		t.Fatalf("append after loss: %v", err)
	}
	if !p.Metrics().BackupLost {
		t.Fatal("metrics did not mirror the loss")
	}
}

// TestPrimaryExternalBackendDegrade: with DegradeOnBackupLoss the generic
// path swallows the loss exactly like the pair path does.
func TestPrimaryExternalBackendDegrade(t *testing.T) {
	fb := &fakeBackend{fail: ErrBackupLost}
	p, err := NewPrimary(PrimaryConfig{Mode: ModeLock, Backend: fb, DegradeOnBackupLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.squelch(p.flush(true)); err != nil {
		t.Fatalf("degraded commit flush surfaced %v", err)
	}
	// Post-loss appends vanish silently (unreplicated continuation).
	if err := p.append(&wire.Halt{}); err != nil {
		t.Fatalf("degraded append surfaced %v", err)
	}
}
