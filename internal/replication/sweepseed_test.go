package replication

import (
	"os"
	"strconv"
	"testing"

	frand "repro/internal/fuzzgen/rand"
)

// sweepSeeds collects every seed the failure-injection sweeps draw on: the
// environment entropy stream (shared by the reference run and the pair, so
// recovered output is comparable), the primary scheduling policy, the
// deliberately-different recovery policy, and the fault-injection RNG.
//
// The zero configuration is the historical fixed set (env 1234, policy 77,
// recovery 4242, faulty 7). Setting FTVM_FUZZ_SEED=<n> re-derives all four
// from n via splitmix64 so a soak loop can sweep fresh schedules and fault
// timings; on any failure the full derived set is logged so the run can be
// reproduced exactly.
type sweepSeeds struct {
	source  string // "default" or the FTVM_FUZZ_SEED value
	env     int64
	policy  int64
	recover int64
	faulty  int64
}

func sweepSeedsFromEnv(t *testing.T) sweepSeeds {
	t.Helper()
	s := sweepSeeds{source: "default", env: 1234, policy: 77, recover: 4242, faulty: 7}
	if v := os.Getenv("FTVM_FUZZ_SEED"); v != "" {
		base, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			t.Fatalf("bad FTVM_FUZZ_SEED %q: %v", v, err)
		}
		rng := frand.New(base)
		s.source = v
		s.env = int64(rng.Next() >> 2)
		// Policy seeds are forced odd (so never zero), matching the fuzzgen
		// harness derivation in internal/fuzzgen.
		s.policy = int64(rng.Next()>>2) | 1
		s.recover = int64(rng.Next()>>2) | 1
		s.faulty = int64(rng.Next() >> 2)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("sweep seeds (FTVM_FUZZ_SEED=%s): env=%d policy=%d recover=%d faulty=%d",
				s.source, s.env, s.policy, s.recover, s.faulty)
			if s.source != "default" {
				t.Logf("re-run: FTVM_FUZZ_SEED=%s go test -run %s ./internal/replication", s.source, t.Name())
			}
		}
	})
	return s
}
