package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// PrimaryMetrics decomposes the primary's replication overhead, mirroring
// Figures 3 and 4: Communication is time spent shipping log frames,
// Pessimism is time spent waiting for output-commit acknowledgements, and
// Record is time spent building/storing lock-acquisition or thread-
// scheduling records ("Lock Acquire Overhead" / "Rescheduling Overhead").
type PrimaryMetrics struct {
	Communication time.Duration
	Pessimism     time.Duration
	Record        time.Duration

	RecordsLogged   uint64 // "Logged Messages" in Table 2
	LockRecords     uint64
	IDMapRecords    uint64
	SwitchRecords   uint64
	NativeRecords   uint64
	OutputIntents   uint64
	FramesSent      uint64
	BytesSent       uint64
	AcksAwaited     uint64
	HeartbeatsSent  uint64
	LargestFrameLen int
}

// PrimaryConfig configures the primary-side coordinator.
type PrimaryConfig struct {
	// Mode selects lock-acquisition or thread-scheduling replication.
	Mode Mode
	// Endpoint ships log frames to the backup and receives acks (required).
	Endpoint transport.Endpoint
	// Handlers are the side-effect handlers (sehandler.DefaultSet if nil).
	Handlers *sehandler.Set
	// Policy drives scheduling (seeded random if nil). The backup replays
	// with its own, different policy — only the log makes them agree.
	Policy vm.SchedPolicy
	// FlushEvery batches this many records per frame between output commits
	// (default 512; the paper buffers small 36-byte messages the same way).
	FlushEvery int
	// HeartbeatEvery enables a liveness heartbeat to the backup (0 = off;
	// with the in-process pipe, endpoint closure already signals failure).
	HeartbeatEvery time.Duration
}

// Primary is the vm.Coordinator that turns a VM into the primary replica.
type Primary struct {
	mode       Mode
	ep         transport.Endpoint
	handlers   *sehandler.Set
	policy     vm.SchedPolicy
	flushEvery int

	buf      wire.Buffer
	frameSeq uint64
	sendMu   sync.Mutex

	hbStop  chan struct{}
	hbDone  chan struct{}
	hbEvery time.Duration

	lidCounter int64
	metrics    PrimaryMetrics
	closedDown bool

	// Open logical interval (ModeLockInterval): the thread currently
	// accumulating consecutive acquisitions, where its run started, and how
	// many it has performed.
	intTID   string
	intStart uint64
	intCount uint64
}

var _ vm.Coordinator = (*Primary)(nil)

// NewPrimary builds a primary coordinator.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("primary: nil endpoint")
	}
	if cfg.Mode != ModeLock && cfg.Mode != ModeSched && cfg.Mode != ModeLockInterval {
		return nil, fmt.Errorf("primary: bad mode %d", cfg.Mode)
	}
	h := cfg.Handlers
	if h == nil {
		h = sehandler.DefaultSet()
	}
	pol := cfg.Policy
	if pol == nil {
		pol = vm.NewSeededPolicy(1, 1024, 8192)
	}
	fe := cfg.FlushEvery
	if fe <= 0 {
		fe = 512
	}
	p := &Primary{
		mode:       cfg.Mode,
		ep:         cfg.Endpoint,
		handlers:   h,
		policy:     pol,
		flushEvery: fe,
		hbEvery:    cfg.HeartbeatEvery,
	}
	if p.hbEvery > 0 {
		p.hbStop = make(chan struct{})
		p.hbDone = make(chan struct{})
		go p.heartbeatLoop()
	}
	return p, nil
}

// Metrics returns a copy of the overhead decomposition.
func (p *Primary) Metrics() PrimaryMetrics { return p.metrics }

// Handlers returns the side-effect handler set.
func (p *Primary) Handlers() *sehandler.Set { return p.handlers }

func (p *Primary) heartbeatLoop() {
	defer close(p.hbDone)
	ticker := time.NewTicker(p.hbEvery)
	defer ticker.Stop()
	var buf wire.Buffer
	seq := uint64(0)
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
			seq++
			buf.Reset()
			if err := buf.Append(&wire.Heartbeat{Seq: seq}); err != nil {
				return
			}
			if err := p.sendFrame(buf.Bytes(), false); err != nil {
				return
			}
			p.metrics.HeartbeatsSent++
		}
	}
}

// sendFrame transmits one frame (thread-safe vs heartbeats).
func (p *Primary) sendFrame(payload []byte, ackWanted bool) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.frameSeq++
	b := wire.EncodeFrame(&wire.Frame{Seq: p.frameSeq, AckWanted: ackWanted, Payload: payload})
	t0 := time.Now()
	err := p.ep.Send(b)
	p.metrics.Communication += time.Since(t0)
	if err != nil {
		return fmt.Errorf("ship log frame %d: %w", p.frameSeq, err)
	}
	p.metrics.FramesSent++
	p.metrics.BytesSent += uint64(len(b))
	if len(b) > p.metrics.LargestFrameLen {
		p.metrics.LargestFrameLen = len(b)
	}
	return nil
}

// flush ships buffered records; with ack it blocks until the backup has
// logged everything up to this point (the output-commit pessimism, §3.4).
func (p *Primary) flush(ack bool) error {
	if p.buf.Count() == 0 && !ack {
		return nil
	}
	wantSeq := p.frameSeq + 1
	if err := p.sendFrame(p.buf.Bytes(), ack); err != nil {
		return err
	}
	p.buf.Reset()
	if !ack {
		return nil
	}
	p.metrics.AcksAwaited++
	t0 := time.Now()
	msg, err := p.ep.Recv(0)
	p.metrics.Pessimism += time.Since(t0)
	if err != nil {
		return fmt.Errorf("await ack: %w", err)
	}
	seq, err := wire.DecodeAck(msg)
	if err != nil {
		return err
	}
	if seq < wantSeq {
		return fmt.Errorf("stale ack %d, want >= %d", seq, wantSeq)
	}
	return nil
}

func (p *Primary) append(r wire.Record) error {
	return p.appendTimed(r, nil)
}

// appendTimed buffers a record, charging only the encode/store cost to
// bucket; a batch flush triggered here is communication, not record time.
func (p *Primary) appendTimed(r wire.Record, bucket *time.Duration) error {
	t0 := time.Now()
	err := p.buf.Append(r)
	if bucket != nil {
		*bucket += time.Since(t0)
	}
	if err != nil {
		return err
	}
	p.metrics.RecordsLogged++
	if p.buf.Count() >= p.flushEvery {
		return p.flush(false)
	}
	return nil
}

// PickNext implements vm.Coordinator.
func (p *Primary) PickNext(_ *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	t := p.policy.Next(runnable, cur)
	return t, vm.BudgetTarget(t, p.policy.Quantum()), nil
}

// OnDescheduled implements vm.Coordinator: in sched mode, log a thread
// scheduling record (br_cnt, pc_off, mon_cnt, l_asn, next t_id).
func (p *Primary) OnDescheduled(v *vm.VM, prev, next *vm.Thread) error {
	if p.mode != ModeSched || prev == nil {
		return nil
	}
	br, methodIdx, pcOff, mon, lasn := snapshotProgress(prev)
	var chk uint64
	if v != nil && v.TrackingProgress() {
		// Read the snapshot the interpreter published after the last
		// bytecode (the paper's per-bytecode thread-object update).
		br = prev.Progress.BrCnt
		methodIdx = prev.Progress.Method
		pcOff = prev.Progress.PC
		mon = prev.Progress.MonCnt
		chk = prev.Progress.Chk
	}
	rec := &wire.Switch{
		TID: prev.VTID, BrCnt: br, MethodIdx: methodIdx, PCOff: pcOff,
		MonCnt: mon, LASN: lasn, Reason: uint8(prev.State()), Chk: chk, NextTID: next.VTID,
	}
	err := p.appendTimed(rec, &p.metrics.Record)
	p.metrics.SwitchRecords++
	return err
}

// BeforeAcquire implements vm.Coordinator (the primary never gates).
func (p *Primary) BeforeAcquire(*vm.VM, *vm.Thread, *vm.Monitor) (bool, error) { return true, nil }

// AssignLID implements vm.Coordinator: fresh counter, plus an id map record
// in lock mode so the backup can reproduce the assignment (§4.2). Interval
// mode needs no id maps: the interval sequence alone determines the
// acquisition order.
func (p *Primary) AssignLID(_ *vm.VM, t *vm.Thread, _ *vm.Monitor) (int64, bool, error) {
	p.lidCounter++
	lid := p.lidCounter
	if p.mode != ModeLock {
		return lid, true, nil
	}
	err := p.appendTimed(&wire.IDMap{LID: lid, TID: t.VTID, TASN: t.TASN}, &p.metrics.Record)
	p.metrics.IDMapRecords++
	return lid, true, err
}

// OnAcquired implements vm.Coordinator: in lock mode, log the acquisition
// record with the pre-increment sequence numbers; in interval mode, extend
// or roll the open logical interval.
func (p *Primary) OnAcquired(_ *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	switch p.mode {
	case ModeLock:
		err := p.appendTimed(&wire.LockAcq{TID: t.VTID, TASN: t.TASN, LID: m.LID, LASN: m.LASN}, &p.metrics.Record)
		p.metrics.LockRecords++
		return err
	case ModeLockInterval:
		t0 := time.Now()
		defer func() { p.metrics.Record += time.Since(t0) }()
		if p.intCount > 0 && p.intTID == t.VTID {
			p.intCount++
			return nil
		}
		if err := p.closeInterval(); err != nil {
			return err
		}
		p.intTID = t.VTID
		p.intStart = t.TASN
		p.intCount = 1
		return nil
	default:
		return nil
	}
}

// closeInterval flushes the open logical interval into the log. It must run
// before any output commit (so recovery can reach the commit point) and at
// clean shutdown.
func (p *Primary) closeInterval() error {
	if p.intCount == 0 {
		return nil
	}
	rec := &wire.LockInterval{TID: p.intTID, StartTASN: p.intStart, Count: p.intCount}
	p.intCount = 0
	p.metrics.LockRecords++
	return p.append(rec)
}

// NativeReady implements vm.Coordinator (the primary never waits).
func (p *Primary) NativeReady(*vm.VM, *vm.Thread, *native.Def) bool { return true }

// InvokeNative implements vm.Coordinator (§4.1/§3.4): output commit before
// outputs; log results of non-deterministic commands, with handler state.
func (p *Primary) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	if def.Output {
		if p.mode == ModeLockInterval {
			if err := p.closeInterval(); err != nil {
				return nil, err
			}
		}
		seq := t.OutSeq
		if def.UsesOutputSeq {
			seq++
		}
		intent := &wire.OutputIntent{TID: t.VTID, NatSeq: t.NatSeq, Sig: def.Sig, OutSeq: seq}
		if err := p.append(intent); err != nil {
			return nil, err
		}
		p.metrics.OutputIntents++
		// "On performing an output, the primary waits until the backup
		// acknowledges having logged all events up to the output event."
		if err := p.flush(true); err != nil {
			return nil, err
		}
	}
	results, err := v.DirectNative(t, def, args)
	if err != nil {
		return nil, err
	}
	if def.NonDeterministic {
		wv, err := toWire(v.Heap(), results)
		if err != nil {
			return nil, fmt.Errorf("log %s: %w", def.Sig, err)
		}
		rec := &wire.NativeResult{TID: t.VTID, NatSeq: t.NatSeq, Sig: def.Sig, Results: wv}
		if h := p.handlers.ForDef(def); h != nil {
			data, err := h.Log(sehandler.Ctx{Heap: v.Heap(), Env: v.Environment(), Proc: v.Process()}, def, args, results)
			if err != nil {
				return nil, fmt.Errorf("handler log %s: %w", def.Sig, err)
			}
			rec.HandlerData = data
		}
		if err := p.append(rec); err != nil {
			return nil, err
		}
		p.metrics.NativeRecords++
	}
	return results, nil
}

// Poll implements vm.Coordinator.
func (p *Primary) Poll(*vm.VM) (bool, error) { return false, nil }

// OnIdle implements vm.Coordinator.
func (p *Primary) OnIdle(*vm.VM) (bool, error) { return false, nil }

// OnHalt implements vm.Coordinator: on clean completion, ship the halt
// marker and synchronise with the backup; on a kill or fatal error, crash
// silently — buffered records are lost with the primary, and the backup's
// failure detector takes over (fail-stop, R0).
func (p *Primary) OnHalt(v *vm.VM, runErr error) error {
	p.stopHeartbeat()
	if p.closedDown {
		return nil
	}
	p.closedDown = true
	if v.Killed() || runErr != nil {
		return p.ep.Close()
	}
	if p.mode == ModeLockInterval {
		if err := p.closeInterval(); err != nil {
			return err
		}
	}
	if err := p.append(&wire.Halt{}); err != nil {
		return err
	}
	if err := p.flush(true); err != nil {
		return err
	}
	return p.ep.Close()
}

func (p *Primary) stopHeartbeat() {
	if p.hbStop == nil {
		return
	}
	select {
	case <-p.hbStop:
	default:
		close(p.hbStop)
		<-p.hbDone
	}
}
