package replication

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// ErrBackupLost is the coordination backend's failure detector firing: for
// the pair, an output-commit acknowledgement did not arrive within AckTimeout
// or the transport to the backup failed; for the consensus backend, the
// quorum (or this replica's leadership) is gone. The coordination substrate
// is lost; depending on DegradeOnBackupLoss the primary either aborts
// (surfacing this error) or continues executing unreplicated.
var ErrBackupLost = errors.New("backup lost: ack timeout or transport failure")

// ErrProtocolDesync means the acknowledgement stream itself is broken: the
// primary received an ack for a frame it never sent, or bytes that do not
// parse as an ack at all. Either way the channel (or whoever is on the other
// end of it) cannot be trusted to have logged what the primary shipped, so
// treating any future ack as an output commit would be unsound. The error
// always accompanies ErrBackupLost — a desynced backup is a lost backup.
//
// Historically the ack loop accepted any ack with seq >= wantSeq, so a
// corrupt ack (or one from a stale pre-takeover sender) could silently
// satisfy an output commit; this error is the fix's visible half.
var ErrProtocolDesync = errors.New("replication protocol desync: acknowledgement for a frame never sent")

// PrimaryConfig configures the primary-side coordinator.
type PrimaryConfig struct {
	// Mode selects lock-acquisition or thread-scheduling replication.
	Mode Mode
	// Backend, when set, supplies the coordination path explicitly (e.g. the
	// consensus-backed replicated log, internal/consensus); the transport
	// fields below (Endpoint, HeartbeatEvery, AckTimeout, Epoch) are then
	// ignored — the backend owns transport, liveness, and epochs. When nil, a
	// PairBackend is built from those fields (the paper's pair path).
	Backend CoordinationBackend
	// Endpoint ships log frames to the backup and receives acks (required
	// unless Backend is set).
	Endpoint transport.Endpoint
	// Handlers are the side-effect handlers (sehandler.DefaultSet if nil).
	Handlers *sehandler.Set
	// Policy drives scheduling (seeded random if nil). The backup replays
	// with its own, different policy — only the log makes them agree.
	Policy vm.SchedPolicy
	// FlushEvery batches this many records per frame between output commits
	// (default 512; the paper buffers small 36-byte messages the same way).
	FlushEvery int
	// HeartbeatEvery enables a liveness heartbeat to the backup (0 = off;
	// with the in-process pipe, endpoint closure already signals failure).
	HeartbeatEvery time.Duration
	// AckTimeout bounds the wait for an output-commit acknowledgement
	// (0 = wait forever, the original pessimism). When it expires the backup
	// is declared lost (ErrBackupLost) instead of blocking the output path
	// of a healthy primary behind a dead backup.
	AckTimeout time.Duration
	// DegradeOnBackupLoss makes the primary continue executing unreplicated
	// after the backend is declared lost: pending and future records are
	// discarded and outputs proceed without commit. When false (default),
	// the loss surfaces as ErrBackupLost and aborts the run.
	DegradeOnBackupLoss bool
	// Clock supplies time for ack deadlines, heartbeat pacing, and metrics
	// buckets (nil = wall clock). The deterministic simulation harness
	// injects a virtual clock here.
	Clock clock.Clock
	// Epoch is the view number this primary holds office in, stamped on
	// every frame and required on every ack. A plain pair runs in epoch 0;
	// the view service hands out higher epochs on promotion so receivers can
	// reject traffic from deposed primaries (see internal/viewsvc).
	Epoch uint64
}

// Primary is the vm.Coordinator that turns a VM into the primary replica.
// It owns the backend-generic half of coordination — record buffering and
// scratch encoding, flush batching, output-commit points, interval state —
// and delegates "how a batch reaches a durable committed log" to its
// CoordinationBackend (the pair path by default).
type Primary struct {
	mode       Mode
	be         CoordinationBackend
	handlers   *sehandler.Set
	policy     vm.SchedPolicy
	flushEvery int
	degrade    bool
	clk        clock.Clock

	// beSelfTimed marks the internally-adopted pair backend, which accounts
	// its own communication/pessimism metrics (verbatim pre-split placement,
	// keeping the Figure 3/4 decomposition byte-stable). External backends
	// are timed generically around Ship.
	beSelfTimed bool

	buf wire.Buffer

	// Scratch records for the per-event log appends. Coordinator callbacks
	// run on the VM goroutine one at a time and Buffer.Append fully encodes
	// the record before returning, so reusing one struct per type makes the
	// steady-state record path allocation-free.
	recSwitch   wire.Switch
	recLock     wire.LockAcq
	recIDMap    wire.IDMap
	recInterval wire.LockInterval

	lidCounter int64
	metrics    primaryMetrics
	closedDown bool

	// Open logical interval (ModeLockInterval): the thread currently
	// accumulating consecutive acquisitions, where its run started, and how
	// many it has performed.
	intTID   string
	intStart uint64
	intCount uint64
}

var _ vm.Coordinator = (*Primary)(nil)

// NewPrimary builds a primary coordinator.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.Mode != ModeLock && cfg.Mode != ModeSched && cfg.Mode != ModeLockInterval {
		return nil, fmt.Errorf("primary: bad mode %d", cfg.Mode)
	}
	h := cfg.Handlers
	if h == nil {
		h = sehandler.DefaultSet()
	}
	pol := cfg.Policy
	if pol == nil {
		pol = vm.NewSeededPolicy(1, 1024, 8192)
	}
	fe := cfg.FlushEvery
	if fe <= 0 {
		fe = 512
	}
	p := &Primary{
		mode:       cfg.Mode,
		handlers:   h,
		policy:     pol,
		flushEvery: fe,
		degrade:    cfg.DegradeOnBackupLoss,
		clk:        clock.Or(cfg.Clock),
	}
	be := cfg.Backend
	if be == nil {
		pb, err := NewPairBackend(PairBackendConfig{
			Endpoint:       cfg.Endpoint,
			AckTimeout:     cfg.AckTimeout,
			HeartbeatEvery: cfg.HeartbeatEvery,
			Clock:          cfg.Clock,
			Epoch:          cfg.Epoch,
		})
		if err != nil {
			return nil, fmt.Errorf("primary: %w", err)
		}
		be = pb
	}
	if pb, ok := be.(*PairBackend); ok {
		// The pair backend reports into the owning primary's counters and
		// starts heartbeating only once adopted.
		pb.adopt(&p.metrics)
		p.beSelfTimed = true
	}
	p.be = be
	return p, nil
}

// Metrics returns a snapshot of the overhead decomposition. Safe to call
// from any goroutine while the primary runs.
func (p *Primary) Metrics() PrimaryMetrics { return p.metrics.Snapshot() }

// BackupLost reports whether the backend's failure detector has declared the
// coordination substrate (backup, quorum) dead.
func (p *Primary) BackupLost() bool { return p.be.Lost() }

// Handlers returns the side-effect handler set.
func (p *Primary) Handlers() *sehandler.Set { return p.handlers }

// Epoch returns the view number (pair) or term (consensus) the backend
// currently ships under.
func (p *Primary) Epoch() uint64 { return p.be.Epoch() }

// Backend returns the coordination backend (tests, diagnostics).
func (p *Primary) Backend() CoordinationBackend { return p.be }

// squelch filters replication errors for a primary configured to outlive its
// backend: once the backend is declared lost and DegradeOnBackupLoss is set,
// loss errors vanish and execution continues unreplicated. All other errors
// (and any error in the default abort-on-loss configuration) pass through
// untouched.
func (p *Primary) squelch(err error) error {
	if err != nil && p.degrade && errors.Is(err, ErrBackupLost) {
		return nil
	}
	return err
}

// flush ships buffered records; with ack it blocks until the backend's
// commit rule holds for everything up to this point (the output-commit
// pessimism, §3.4) — for the pair, the backup's acknowledgement bounded by
// AckTimeout; for consensus, majority commit.
func (p *Primary) flush(ack bool) error {
	if p.be.Lost() {
		// Degraded: nothing ships any more; drop the batch so the buffer
		// cannot grow without bound.
		p.buf.Reset()
		return fmt.Errorf("flush: %w", ErrBackupLost)
	}
	if p.buf.Count() == 0 && !ack {
		return nil
	}
	var err error
	if p.beSelfTimed {
		err = p.be.Ship(p.buf.Bytes(), ack)
	} else {
		payload := p.buf.Bytes()
		t0 := p.clk.Now()
		err = p.be.Ship(payload, ack)
		d := p.clk.Since(t0)
		if ack {
			p.metrics.acksAwaited.Add(1)
			p.metrics.addPessimism(d)
		} else {
			p.metrics.addCommunication(d)
		}
		p.metrics.observeFrame(len(payload))
		if err != nil && p.be.Lost() {
			p.metrics.backupLost.Store(true)
		}
	}
	p.buf.Reset()
	return err
}

func (p *Primary) append(r wire.Record) error {
	return p.appendTimed(r, false)
}

// appendTimed buffers a record; with timed, the encode/store cost is charged
// to the Record bucket (a batch flush triggered here is communication, not
// record time).
func (p *Primary) appendTimed(r wire.Record, timed bool) error {
	if p.be.Lost() {
		if p.degrade {
			return nil // unreplicated: the log is gone with the backup
		}
		return fmt.Errorf("append %s: %w", r.Type(), ErrBackupLost)
	}
	t0 := p.clk.Now()
	err := p.buf.Append(r)
	if timed {
		p.metrics.addRecord(p.clk.Since(t0))
	}
	if err != nil {
		return err
	}
	p.metrics.recordsLogged.Add(1)
	if p.buf.Count() >= p.flushEvery {
		return p.flush(false)
	}
	return nil
}

// PickNext implements vm.Coordinator.
func (p *Primary) PickNext(_ *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	t := p.policy.Next(runnable, cur)
	return t, vm.BudgetTarget(t, p.policy.Quantum()), nil
}

// OnDescheduled implements vm.Coordinator: in sched mode, log a thread
// scheduling record (br_cnt, pc_off, mon_cnt, l_asn, next t_id).
func (p *Primary) OnDescheduled(v *vm.VM, prev, next *vm.Thread) error {
	if p.mode != ModeSched || prev == nil {
		return nil
	}
	br, methodIdx, pcOff, mon, lasn := snapshotProgress(prev)
	var chk uint64
	if v != nil && v.TrackingProgress() {
		// Read the snapshot the interpreter published after the last
		// bytecode (the paper's per-bytecode thread-object update).
		br = prev.Progress.BrCnt
		methodIdx = prev.Progress.Method
		pcOff = prev.Progress.PC
		mon = prev.Progress.MonCnt
		chk = prev.Progress.Chk
	}
	p.recSwitch = wire.Switch{
		TID: prev.VTID, BrCnt: br, MethodIdx: methodIdx, PCOff: pcOff,
		MonCnt: mon, LASN: lasn, Reason: uint8(prev.State()), Chk: chk, NextTID: next.VTID,
	}
	err := p.appendTimed(&p.recSwitch, true)
	p.metrics.switchRecords.Add(1)
	return p.squelch(err)
}

// BeforeAcquire implements vm.Coordinator (the primary never gates).
func (p *Primary) BeforeAcquire(*vm.VM, *vm.Thread, *vm.Monitor) (bool, error) { return true, nil }

// AssignLID implements vm.Coordinator: fresh counter, plus an id map record
// in lock mode so the backup can reproduce the assignment (§4.2). Interval
// mode needs no id maps: the interval sequence alone determines the
// acquisition order.
func (p *Primary) AssignLID(_ *vm.VM, t *vm.Thread, _ *vm.Monitor) (int64, bool, error) {
	p.lidCounter++
	lid := p.lidCounter
	if p.mode != ModeLock {
		return lid, true, nil
	}
	p.recIDMap = wire.IDMap{LID: lid, TID: t.VTID, TASN: t.TASN}
	err := p.appendTimed(&p.recIDMap, true)
	p.metrics.idMapRecords.Add(1)
	return lid, true, p.squelch(err)
}

// OnAcquired implements vm.Coordinator: in lock mode, log the acquisition
// record with the pre-increment sequence numbers; in interval mode, extend
// or roll the open logical interval.
func (p *Primary) OnAcquired(_ *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	switch p.mode {
	case ModeLock:
		p.recLock = wire.LockAcq{TID: t.VTID, TASN: t.TASN, LID: m.LID, LASN: m.LASN}
		err := p.appendTimed(&p.recLock, true)
		p.metrics.lockRecords.Add(1)
		return p.squelch(err)
	case ModeLockInterval:
		t0 := p.clk.Now()
		defer func() { p.metrics.addRecord(p.clk.Since(t0)) }()
		if p.intCount > 0 && p.intTID == t.VTID {
			p.intCount++
			return nil
		}
		if err := p.closeInterval(); err != nil {
			return p.squelch(err)
		}
		p.intTID = t.VTID
		p.intStart = t.TASN
		p.intCount = 1
		return nil
	default:
		return nil
	}
}

// closeInterval flushes the open logical interval into the log. It must run
// before any output commit (so recovery can reach the commit point) and at
// clean shutdown.
func (p *Primary) closeInterval() error {
	if p.intCount == 0 {
		return nil
	}
	p.recInterval = wire.LockInterval{TID: p.intTID, StartTASN: p.intStart, Count: p.intCount}
	p.intCount = 0
	p.metrics.lockRecords.Add(1)
	return p.append(&p.recInterval)
}

// NativeReady implements vm.Coordinator (the primary never waits).
func (p *Primary) NativeReady(*vm.VM, *vm.Thread, *native.Def) bool { return true }

// InvokeNative implements vm.Coordinator (§4.1/§3.4): output commit before
// outputs; log results of non-deterministic commands, with handler state.
// When the output-commit wait establishes that the backup is gone, the
// behaviour forks: by default the loss aborts the run (ErrBackupLost) with
// the output unperformed, so a restarted pair cannot duplicate it; with
// DegradeOnBackupLoss the primary performs the output exactly once and
// continues unreplicated.
func (p *Primary) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	if def.Output {
		if err := p.CommitOutput(t, def); err != nil {
			return nil, err
		}
	}
	results, err := v.DirectNative(t, def, args)
	if err != nil {
		return nil, err
	}
	if def.NonDeterministic {
		if err := p.LogNativeResult(v, t, def, args, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// CommitOutput logs an output intent for the invocation t is about to
// perform and runs the output commit: the log is flushed and the call blocks
// until the backend's commit rule holds for everything up to the intent.
// It is the first half of the primary's output path, exposed so a promoted
// backup replaying toward its own new backup (the state-transfer tail) can
// commit the log's uncertain final output against the new configuration
// before re-deciding whether to perform it.
func (p *Primary) CommitOutput(t *vm.Thread, def *native.Def) error {
	if p.be.Lost() {
		return nil // degraded (or aborting): outputs proceed uncommitted
	}
	if p.mode == ModeLockInterval {
		if err := p.squelch(p.closeInterval()); err != nil {
			return err
		}
	}
	seq := t.OutSeq
	if def.UsesOutputSeq {
		seq++
	}
	intent := &wire.OutputIntent{TID: t.VTID, NatSeq: t.NatSeq, Sig: def.Sig, OutSeq: seq}
	if err := p.squelch(p.append(intent)); err != nil {
		return err
	}
	p.metrics.outputIntents.Add(1)
	// "On performing an output, the primary waits until the backup
	// acknowledges having logged all events up to the output event."
	return p.squelch(p.flush(true))
}

// LogNativeResult logs the results (and managing-handler state) of a
// non-deterministic native the caller just invoked — the second half of the
// primary's output path, reusable by the promotion tail for natives that go
// live during replay.
func (p *Primary) LogNativeResult(v *vm.VM, t *vm.Thread, def *native.Def, args, results []heap.Value) error {
	if p.be.Lost() {
		return nil
	}
	wv, err := toWire(v.Heap(), results)
	if err != nil {
		return fmt.Errorf("log %s: %w", def.Sig, err)
	}
	rec := &wire.NativeResult{TID: t.VTID, NatSeq: t.NatSeq, Sig: def.Sig, Results: wv}
	if h := p.handlers.ForDef(def); h != nil {
		data, err := h.Log(sehandler.Ctx{Heap: v.Heap(), Env: v.Environment(), Proc: v.Process()}, def, args, results)
		if err != nil {
			return fmt.Errorf("handler log %s: %w", def.Sig, err)
		}
		rec.HandlerData = data
	}
	if err := p.squelch(p.append(rec)); err != nil {
		return err
	}
	p.metrics.nativeRecords.Add(1)
	return nil
}

// LogIDMap logs an id-map record for a lock id the caller (a replay
// coordinator running past its log) just assigned, keeping the primary's own
// lid counter ahead of every externally minted id. No-op outside lock mode —
// interval mode derives acquisition order without id maps.
func (p *Primary) LogIDMap(t *vm.Thread, lid int64) error {
	if lid > p.lidCounter {
		p.lidCounter = lid
	}
	if p.mode != ModeLock {
		return nil
	}
	p.recIDMap = wire.IDMap{LID: lid, TID: t.VTID, TASN: t.TASN}
	err := p.appendTimed(&p.recIDMap, true)
	p.metrics.idMapRecords.Add(1)
	return p.squelch(err)
}

// ShipSnapshot transfers a recovered log prefix to the backend as ordinary
// log records and blocks until the backend commits the whole batch (the
// state-transfer handshake: a recruit holds the promoted primary's complete
// history before it may count for output commit). The caller pre-filters
// records that must not be re-shipped (halt markers, heartbeats, and the
// trailing uncertain output intent, which the replay re-commits itself).
func (p *Primary) ShipSnapshot(records []wire.Record) error {
	for _, r := range records {
		if err := p.append(r); err != nil {
			return fmt.Errorf("snapshot transfer: %w", err)
		}
	}
	if err := p.flush(true); err != nil {
		return fmt.Errorf("snapshot transfer: %w", err)
	}
	return nil
}

// Poll implements vm.Coordinator.
func (p *Primary) Poll(*vm.VM) (bool, error) { return false, nil }

// OnIdle implements vm.Coordinator.
func (p *Primary) OnIdle(*vm.VM) (bool, error) { return false, nil }

// OnHalt implements vm.Coordinator: on clean completion, ship the halt
// marker and synchronise with the backend; on a kill, fatal error or lost
// backend, crash silently — buffered records are lost with the primary, and
// the backup's failure detector takes over (fail-stop, R0).
func (p *Primary) OnHalt(v *vm.VM, runErr error) error {
	p.be.Quiesce()
	if p.closedDown {
		return nil
	}
	p.closedDown = true
	if v.Killed() || runErr != nil || p.be.Lost() {
		return p.be.Close()
	}
	if p.mode == ModeLockInterval {
		if err := p.squelch(p.closeInterval()); err != nil {
			return err
		}
	}
	if err := p.squelch(p.append(&wire.Halt{})); err != nil {
		return err
	}
	if err := p.squelch(p.flush(true)); err != nil {
		return err
	}
	return p.be.Close()
}
