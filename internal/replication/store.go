package replication

import (
	"fmt"
	"sync"

	"repro/internal/wire"
)

// LogStore accumulates the records the backup logs during normal operation
// (the cold backup "simply logs the recovery information provided by the
// primary"). It is written by the backup's serve loop and read — after the
// primary fails — by the replay coordinators.
type LogStore struct {
	mu      sync.Mutex
	records []wire.Record
}

// NewLogStore returns an empty store.
func NewLogStore() *LogStore { return &LogStore{} }

// Append adds records in arrival order.
func (s *LogStore) Append(recs ...wire.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, recs...)
}

// Len returns the number of stored records.
func (s *LogStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Records returns the stored records (the caller must not mutate them).
func (s *LogStore) Records() []wire.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.Record, len(s.records))
	copy(out, s.records)
	return out
}

// analysis is the indexed view of a log used during recovery. A cold
// backup builds it once from the stored records; a warm backup feeds it
// incrementally while the primary runs (open stays true until the primary
// halts or fails, and gating predicates treat a temporarily-empty queue as
// "wait", not "end of recovery").
type analysis struct {
	// open reports that more records may still arrive (warm backup).
	open bool
	// last is the most recently added record: if it is an output intent
	// when the log closes, that output's completion is uncertain.
	last wire.Record

	// Per-thread native-event queues (NativeResult and OutputIntent), in
	// log order.
	nativeQ map[string][]wire.Record
	// Per-thread lock acquisition record queues (lock mode).
	lockQ map[string][]*wire.LockAcq
	// Id maps indexed by (t_id, t_asn) (lock mode).
	idmaps map[string]map[uint64]*wire.IDMap
	// Logical interval records in log order (lock-interval mode).
	intervals []*wire.LockInterval
	// Scheduling records in log order (sched mode).
	switches []*wire.Switch
	// uncertain is the final record if it is an output intent: whether that
	// output completed is unknown (§3.4 / §4.4 test).
	uncertain *wire.OutputIntent

	nativePending int
	lockPending   int
	idmapPending  int
	maxLID        int64
	cleanHalt     bool
}

// newAnalysis returns an empty, open analysis ready for feeding.
func newAnalysis() *analysis {
	return &analysis{
		open:    true,
		nativeQ: make(map[string][]wire.Record),
		lockQ:   make(map[string][]*wire.LockAcq),
		idmaps:  make(map[string]map[uint64]*wire.IDMap),
	}
}

// add indexes one record.
func (a *analysis) add(r wire.Record) error {
	switch rec := r.(type) {
	case *wire.IDMap:
		byTASN, ok := a.idmaps[rec.TID]
		if !ok {
			byTASN = make(map[uint64]*wire.IDMap)
			a.idmaps[rec.TID] = byTASN
		}
		if _, dup := byTASN[rec.TASN]; dup {
			return fmt.Errorf("duplicate id map for (%s,%d)", rec.TID, rec.TASN)
		}
		byTASN[rec.TASN] = rec
		a.idmapPending++
		if rec.LID > a.maxLID {
			a.maxLID = rec.LID
		}
	case *wire.LockAcq:
		a.lockQ[rec.TID] = append(a.lockQ[rec.TID], rec)
		a.lockPending++
		if rec.LID > a.maxLID {
			a.maxLID = rec.LID
		}
	case *wire.LockInterval:
		a.intervals = append(a.intervals, rec)
	case *wire.Switch:
		a.switches = append(a.switches, rec)
	case *wire.NativeResult:
		a.nativeQ[rec.TID] = append(a.nativeQ[rec.TID], rec)
		a.nativePending++
	case *wire.OutputIntent:
		a.nativeQ[rec.TID] = append(a.nativeQ[rec.TID], rec)
		a.nativePending++
	case *wire.Heartbeat:
		return nil // liveness only
	case *wire.Halt:
		a.cleanHalt = true
	default:
		return fmt.Errorf("unexpected record type %T in log", r)
	}
	a.last = r
	return nil
}

// close marks the log complete: no more records will arrive, and a trailing
// output intent becomes the uncertain output (§3.4).
func (a *analysis) close() {
	a.open = false
	if intent, ok := a.last.(*wire.OutputIntent); ok {
		a.uncertain = intent
	}
}

// analyze indexes a complete log for cold recovery.
func analyze(records []wire.Record) (*analysis, error) {
	a := newAnalysis()
	for _, r := range records {
		if err := a.add(r); err != nil {
			return nil, err
		}
	}
	a.close()
	return a, nil
}
