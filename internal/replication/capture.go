package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"repro/internal/atomicio"
	"repro/internal/bytecode"
	"repro/internal/vm"
	"repro/internal/wire"
)

// The .ftlog capture format: a durable copy of the replication event stream
// plus everything needed to re-create the primary's initial conditions, so
// the time-travel debugger can reconstruct any intermediate machine state
// offline. Layout:
//
//	magic "FTLOG\x01"
//	header varints: ProgHash, EnvSeed, PolicySeed, MinQuantum, MaxQuantum,
//	                Mode, Dispatch, Epoch, MaxInstructions, GCThreshold
//	uvarint program length, then the bytecode.EncodeBytes image
//	zero or more wire frames, one logged record per frame (Seq contiguous
//	from 1, Epoch = header epoch)
//
// Reusing the replication channel's frame format means a reader exercises
// the exact DecodeFramePrefix tail-boundary paths the backup uses, and a
// log truncated by a crash mid-write is detected (ErrShortFrame) rather
// than silently shortened.
//
// Halt and heartbeat records are stripped at capture time: heartbeats are
// liveness noise, and a clean run's halt marker would make the log refuse
// to replay (analysis treats a halted log as needing no recovery). The
// capture of a clean run therefore replays as a crash at its final record,
// which is exactly the debugger's model — run the log out, then inspect.

// logMagic identifies an .ftlog file; the final byte is the format version.
var logMagic = []byte("FTLOG\x01")

// ErrNotLog reports that a file is not an .ftlog capture.
var ErrNotLog = errors.New("not an ftlog capture file")

// LogHeader records the initial conditions of the captured run.
type LogHeader struct {
	// ProgHash fingerprints the embedded program (FNV-1a over its encoded
	// image); readers verify it so a corrupted embed fails loudly.
	ProgHash uint64
	// EnvSeed seeds the environment (clock, entropy) the run started with.
	EnvSeed int64
	// PolicySeed seeds the scheduling policy a replay of this log uses —
	// the recovery policy seed, already folded the way the capturing path
	// folds it, so replayers pass it to NewSeededPolicy verbatim.
	PolicySeed int64
	// MinQuantum and MaxQuantum bound the replay policy's slice budgets.
	MinQuantum, MaxQuantum uint64
	// Mode is the replication mode the log was recorded under.
	Mode Mode
	// Dispatch is the interpreter engine the primary ran.
	Dispatch vm.Dispatch
	// Epoch is the view epoch the records were sent in.
	Epoch uint64
	// MaxInstructions caps replay execution (0 = none).
	MaxInstructions uint64
	// GCThreshold is the heap GC trigger the run used (0 = default).
	GCThreshold int64
}

// Log is a decoded .ftlog capture.
type Log struct {
	Header  LogHeader
	Prog    *bytecode.Program
	Records []wire.Record
}

// HashProgram fingerprints a program image with 64-bit FNV-1a.
func HashProgram(img []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range img {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// EncodeLog serialises a capture. The header's ProgHash is computed here;
// halt and heartbeat records are stripped (see the format comment).
func EncodeLog(hdr LogHeader, prog *bytecode.Program, records []wire.Record) ([]byte, error) {
	img, err := bytecode.EncodeBytes(prog)
	if err != nil {
		return nil, fmt.Errorf("encode program: %w", err)
	}
	hdr.ProgHash = HashProgram(img)

	out := append([]byte(nil), logMagic...)
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) { out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	sv := func(v int64) { out = append(out, tmp[:binary.PutVarint(tmp[:], v)]...) }

	uv(hdr.ProgHash)
	sv(hdr.EnvSeed)
	sv(hdr.PolicySeed)
	uv(hdr.MinQuantum)
	uv(hdr.MaxQuantum)
	uv(uint64(hdr.Mode))
	uv(uint64(hdr.Dispatch))
	uv(hdr.Epoch)
	uv(hdr.MaxInstructions)
	sv(hdr.GCThreshold)
	uv(uint64(len(img)))
	out = append(out, img...)

	var seq uint64
	var payload wire.Buffer
	for _, r := range records {
		switch r.(type) {
		case *wire.Halt, *wire.Heartbeat:
			continue
		}
		payload.Reset()
		if err := payload.Append(r); err != nil {
			return nil, err
		}
		seq++
		out = wire.AppendFrame(out, &wire.Frame{
			Seq:     seq,
			Epoch:   hdr.Epoch,
			Payload: payload.Bytes(),
		})
	}
	return out, nil
}

// DecodeLog parses a capture produced by EncodeLog. A tail cut mid-frame
// (crash during append) is reported as a truncation error naming the last
// complete record, so partial captures fail loudly instead of replaying a
// silently shortened history.
func DecodeLog(b []byte) (*Log, error) {
	if len(b) < len(logMagic) || string(b[:len(logMagic)]) != string(logMagic) {
		return nil, ErrNotLog
	}
	c := logCursor{b: b, off: len(logMagic)}

	var hdr LogHeader
	var err error
	read := func(dst *uint64, what string) {
		if err == nil {
			*dst, err = c.uv(what)
		}
	}
	readS := func(dst *int64, what string) {
		if err == nil {
			*dst, err = c.sv(what)
		}
	}
	var mode, dispatch uint64
	read(&hdr.ProgHash, "program hash")
	readS(&hdr.EnvSeed, "env seed")
	readS(&hdr.PolicySeed, "policy seed")
	read(&hdr.MinQuantum, "min quantum")
	read(&hdr.MaxQuantum, "max quantum")
	read(&mode, "mode")
	read(&dispatch, "dispatch")
	read(&hdr.Epoch, "epoch")
	read(&hdr.MaxInstructions, "instruction cap")
	readS(&hdr.GCThreshold, "gc threshold")
	if err != nil {
		return nil, err
	}
	hdr.Mode = Mode(mode)
	hdr.Dispatch = vm.Dispatch(dispatch)

	plen, err := c.uv("program length")
	if err != nil {
		return nil, err
	}
	img, err := c.take(int(plen), "program image")
	if err != nil {
		return nil, err
	}
	if got := HashProgram(img); got != hdr.ProgHash {
		return nil, fmt.Errorf("ftlog: program hash mismatch: header %#x, embedded %#x", hdr.ProgHash, got)
	}
	prog, err := bytecode.DecodeBytes(img)
	if err != nil {
		return nil, fmt.Errorf("ftlog: decode program: %w", err)
	}

	var records []wire.Record
	tail := b[c.off:]
	var seq uint64
	for len(tail) > 0 {
		f, rest, ferr := wire.DecodeFramePrefix(tail)
		if ferr != nil {
			if errors.Is(ferr, wire.ErrShortFrame) {
				return nil, fmt.Errorf("ftlog: truncated after record %d: %w", seq, ferr)
			}
			return nil, fmt.Errorf("ftlog: record %d: %w", seq+1, ferr)
		}
		if f.Seq != seq+1 {
			return nil, fmt.Errorf("ftlog: record sequence gap: want %d, got %d", seq+1, f.Seq)
		}
		seq = f.Seq
		recs, derr := wire.DecodeAll(f.Payload)
		if derr != nil {
			return nil, fmt.Errorf("ftlog: record %d payload: %w", seq, derr)
		}
		if len(recs) != 1 {
			return nil, fmt.Errorf("ftlog: record %d: frame holds %d records, want 1", seq, len(recs))
		}
		records = append(records, recs[0])
		tail = rest
	}

	return &Log{Header: hdr, Prog: prog, Records: records}, nil
}

// WriteLogFile writes a capture atomically (temp file + rename), so a crash
// mid-write never leaves a half-log under the target name.
func WriteLogFile(path string, hdr LogHeader, prog *bytecode.Program, records []wire.Record) error {
	data, err := EncodeLog(hdr, prog, records)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// ReadLogFile reads and parses a capture.
func ReadLogFile(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l, err := DecodeLog(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// logCursor walks the header region with bounds checking.
type logCursor struct {
	b   []byte
	off int
}

func (c *logCursor) uv(what string) (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ftlog: header %s malformed", what)
	}
	c.off += n
	return v, nil
}

func (c *logCursor) sv(what string) (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ftlog: header %s malformed", what)
	}
	c.off += n
	return v, nil
}

func (c *logCursor) take(n int, what string) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("ftlog: header %s cut short", what)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}
