package replication

import (
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// schedReplay is the backup-side coordinator for replicated thread
// scheduling (§4.2): the logged switch records form a chain — each record
// names the thread being descheduled (with its progress indicators) and the
// thread scheduled next. The backup dispatches exactly that chain, running
// each thread until its branch count reaches the recorded value, and
// cross-checks pc offset and mon_cnt at every switch. After the final record
// the backup must still schedule the thread the primary intended to run next
// (it may have interacted with the environment); once its logged native
// events are reproduced the VM continues under a live policy.
type schedReplay struct {
	nr         *nativeReplay
	a          *analysis
	idx        int
	expect     string // vtid that should be running per the chain
	forced     bool   // the final record's NextTID was dispatched post-drain
	livePolicy vm.SchedPolicy
	lidNext    int64
	strict     bool
	tail       *Primary // promotion: live events tee to the new backup
	// pendingSwitch suppresses one tail tee: consuming the final switch
	// record leaves idx == len(switches), but the VM's OnDescheduled call for
	// that very switch arrives *after* PickNext consumed it — the record is
	// already in the snapshot and must not be logged twice.
	pendingSwitch bool

	// Replayed counts consumed switch records.
	Replayed uint64
}

var _ vm.Coordinator = (*schedReplay)(nil)

func newSchedReplay(a *analysis, handlers *sehandler.Set, policy vm.SchedPolicy) *schedReplay {
	if policy == nil {
		policy = vm.NewSeededPolicy(0x7363686564, 1024, 8192)
	}
	return &schedReplay{
		nr:         newNativeReplay(a, handlers),
		a:          a,
		expect:     "0", // the chain starts at the main thread
		livePolicy: policy,
		strict:     true,
	}
}

// PickNext implements vm.Coordinator: walk the switch-record chain. A nil
// thread with no error means "no dispatch possible yet" (warm backup waiting
// for the next scheduling record).
func (c *schedReplay) PickNext(v *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	var none vm.SliceTarget
	for c.idx < len(c.a.switches) {
		head := c.a.switches[c.idx]
		if head.TID != c.expect {
			return nil, none, divergence("switch chain broken: record %d deschedules %s, chain expects %s",
				c.idx, head.TID, c.expect)
		}
		t := v.ThreadByVTID(c.expect)
		if t == nil {
			return nil, none, divergence("switch record %d names unknown thread %s", c.idx, c.expect)
		}
		atSwitch := t.BrCnt == head.BrCnt && atPosition(t, head) &&
			uint8(t.State()) == head.Reason
		switch {
		case t.BrCnt > head.BrCnt:
			return nil, none, divergence("thread %s overshot: br_cnt %d past recorded %d",
				t.VTID, t.BrCnt, head.BrCnt)
		case atSwitch:
			if c.strict {
				if err := c.verifySwitch(t, head); err != nil {
					return nil, none, err
				}
			}
			c.idx++
			c.Replayed++
			c.expect = head.NextTID
			if c.tail != nil && c.idx == len(c.a.switches) && !c.a.open {
				c.pendingSwitch = true
			}
		default:
			if t.State() == vm.StateGated && c.a.open {
				// Waiting for a native record (warm backup): idle.
				return nil, none, nil
			}
			// Run (or keep running) the thread to the recorded switch point.
			if t.State() != vm.StateRunnable {
				return nil, none, divergence("thread %s is %s at br_cnt %d but the log runs it to %d",
					t.VTID, t.State(), t.BrCnt, head.BrCnt)
			}
			return t, vm.SliceTarget{
				Br: head.BrCnt, Exact: true, Method: head.MethodIdx, PC: head.PCOff,
				StopRunnable: vm.ThreadState(head.Reason) == vm.StateRunnable,
			}, nil
		}
	}
	if c.a.open {
		// Warm backup: caught up with the primary's scheduling log. The
		// expected thread may not run ahead of the primary's decisions;
		// idle until the next record (or closure) arrives.
		return nil, none, nil
	}
	// Log drained and closed. Schedule the thread the primary intended
	// next, once ("the backup must schedule t'"); then live policy.
	if !c.forced && c.Replayed > 0 {
		c.forced = true
		if t := v.ThreadByVTID(c.expect); t != nil && t.State() == vm.StateRunnable {
			return t, vm.BudgetTarget(t, c.livePolicy.Quantum()), nil
		}
	}
	t := c.livePolicy.Next(runnable, cur)
	return t, vm.BudgetTarget(t, c.livePolicy.Quantum()), nil
}

// atPosition reports whether t sits exactly at the recorded switch position
// (a dead/frameless thread matches the -1/-1 sentinel).
func atPosition(t *vm.Thread, rec *wire.Switch) bool {
	f := t.Top()
	if f == nil {
		return rec.MethodIdx == -1 && rec.PCOff == -1
	}
	return f.Method == rec.MethodIdx && f.PC == rec.PCOff
}

func (c *schedReplay) verifySwitch(t *vm.Thread, rec *wire.Switch) error {
	br, methodIdx, pcOff, mon, lasn := snapshotProgress(t)
	if br != rec.BrCnt {
		return divergence("thread %s br_cnt %d != recorded %d", t.VTID, br, rec.BrCnt)
	}
	if mon != rec.MonCnt {
		return divergence("thread %s mon_cnt %d != recorded %d", t.VTID, mon, rec.MonCnt)
	}
	if methodIdx != rec.MethodIdx || pcOff != rec.PCOff {
		return divergence("thread %s at method %d pc %d, log says method %d pc %d",
			t.VTID, methodIdx, pcOff, rec.MethodIdx, rec.PCOff)
	}
	if lasn != rec.LASN {
		return divergence("thread %s waits at l_asn %d, log says %d", t.VTID, lasn, rec.LASN)
	}
	// Chk is zero when the primary ran without per-bytecode progress
	// tracking (legacy logs); otherwise every pc the thread visited must
	// fold to the same checksum.
	if rec.Chk != 0 && t.Progress.Chk != rec.Chk {
		return divergence("thread %s control-path checksum %x != recorded %x",
			t.VTID, t.Progress.Chk, rec.Chk)
	}
	return nil
}

// OnDescheduled implements vm.Coordinator: replayed switches are already in
// the log; once the chain is drained, every further deschedule is a fresh
// scheduling decision the new backup (if any) must learn about.
func (c *schedReplay) OnDescheduled(v *vm.VM, prev, next *vm.Thread) error {
	if c.tail == nil || c.idx < len(c.a.switches) || c.a.open {
		return nil
	}
	if c.pendingSwitch {
		c.pendingSwitch = false
		return nil
	}
	return c.tail.OnDescheduled(v, prev, next)
}

// BeforeAcquire implements vm.Coordinator: under identical scheduling the
// acquisition order reproduces itself; no gating needed (R4B).
func (c *schedReplay) BeforeAcquire(*vm.VM, *vm.Thread, *vm.Monitor) (bool, error) { return true, nil }

// AssignLID implements vm.Coordinator.
func (c *schedReplay) AssignLID(*vm.VM, *vm.Thread, *vm.Monitor) (int64, bool, error) {
	c.lidNext++
	return c.lidNext, true, nil
}

// OnAcquired implements vm.Coordinator.
func (c *schedReplay) OnAcquired(*vm.VM, *vm.Thread, *vm.Monitor) error { return nil }

// NativeReady implements vm.Coordinator: gate intercepted natives whose
// records have not arrived yet (warm backup).
func (c *schedReplay) NativeReady(_ *vm.VM, t *vm.Thread, _ *native.Def) bool {
	return c.nr.ready(t)
}

// InvokeNative implements vm.Coordinator.
func (c *schedReplay) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	return c.nr.invoke(v, t, def, args)
}

// Poll implements vm.Coordinator: admit native-gated threads whose records
// arrived (warm backup; the dispatch chain still controls who runs).
func (c *schedReplay) Poll(v *vm.VM) (bool, error) {
	progress := false
	for _, t := range v.Threads() {
		if t.State() == vm.StateGated && t.BlockedOn() == nil && c.nr.ready(t) {
			v.Ungate(t)
			progress = true
		}
	}
	return progress, nil
}

// OnIdle implements vm.Coordinator.
func (c *schedReplay) OnIdle(*vm.VM) (bool, error) { return false, nil }

// OnHalt implements vm.Coordinator.
func (c *schedReplay) OnHalt(v *vm.VM, runErr error) error {
	if c.tail != nil {
		return c.tail.OnHalt(v, runErr)
	}
	return nil
}
