package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// CoordinationBackend abstracts how a batch of encoded records reaches a
// durable, ordered, committed log. The primary's execution half (record
// buffering, output-commit points, scratch encoding) is backend-generic; what
// differs between coordination schemes is the commit rule — when a shipped
// batch may be considered logged for the purposes of releasing an output
// (§3.4's pessimism).
//
// Two implementations exist: the paper's primary/backup pair (PairBackend,
// extracted verbatim from the pre-PR8 monolithic primary: frame sequencing,
// the ack loop, heartbeats, and the two-sided failure detector), and the
// 3-replica consensus-backed replicated log (internal/consensus), whose
// commit rule is majority replication in the leader's term.
//
// Contract:
//
//   - Ship transmits one batch of encoded records (may be empty). With commit
//     set it blocks until the backend's commit rule holds for everything
//     shipped so far — pair: the backup acknowledged this frame; consensus: a
//     majority of replicas hold the entry and it is committed in the
//     proposing leader's term. Payload bytes are only valid for the duration
//     of the call; backends that retain them must copy.
//   - A Ship failure that wraps ErrBackupLost means the backend's failure
//     detector has fired and latched: the coordination substrate is gone
//     (backup dead, quorum lost, leadership lost). Lost() reports the latch.
//     The Primary's degrade-on-loss policy applies uniformly to every
//     backend.
//   - Epoch is the view/term the backend currently ships under (promotion
//     hooks: PreparePromotion requires a strictly newer epoch; consensus
//     advances it on election).
//   - Quiesce stops background liveness traffic (pair heartbeats) so the
//     final halt flush is not interleaved with it; Close additionally
//     releases the transport. Both are idempotent.
type CoordinationBackend interface {
	Ship(payload []byte, commit bool) error
	Epoch() uint64
	Lost() bool
	Quiesce()
	Close() error
}

// PairBackendConfig configures the primary/backup pair coordination path.
// The fields mirror the transport-facing half of PrimaryConfig (which still
// accepts them directly; NewPrimary builds a PairBackend from them when no
// explicit Backend is given).
type PairBackendConfig struct {
	// Endpoint ships log frames to the backup and receives acks (required).
	Endpoint transport.Endpoint
	// AckTimeout bounds the wait for an output-commit acknowledgement
	// (0 = wait forever, the original pessimism).
	AckTimeout time.Duration
	// HeartbeatEvery enables a liveness heartbeat to the backup (0 = off).
	HeartbeatEvery time.Duration
	// Clock supplies time for ack deadlines and heartbeat pacing (nil = wall).
	Clock clock.Clock
	// Epoch is the view number stamped on every frame and required on every
	// ack (see PrimaryConfig.Epoch).
	Epoch uint64
}

// PairBackend is the paper's coordination path: frames shipped over one
// channel to a cold backup, sequenced contiguously, with output commit
// defined as "the backup acknowledged this frame" and a two-sided failure
// detector (ack timeout / transport closure → backup lost). The code is the
// pre-PR8 primary's transport half, moved verbatim.
//
// A PairBackend is passive until adopted by a Primary: heartbeats start when
// NewPrimary takes ownership (so metrics land in the owning primary's
// counters), and Ship may be called directly in tests without one.
type PairBackend struct {
	ep         transport.Endpoint
	ackTimeout time.Duration
	clk        clock.Clock
	epoch      uint64

	frameSeq uint64
	// lastSent is the highest frame sequence actually offered to the
	// endpoint; an ack above it names a frame that never existed and trips
	// ErrProtocolDesync. Written under sendMu, read by awaitAck on the VM
	// goroutine (atomically, since heartbeats send concurrently).
	lastSent atomic.Uint64
	sendMu   sync.Mutex
	// frameBuf is the reusable frame-encode scratch (guarded by sendMu);
	// every Endpoint.Send must have consumed the bytes before returning, so
	// the next frame may overwrite them.
	frameBuf []byte

	// Heartbeat loop control: the loop paces itself by parking on hbSlot
	// with the heartbeat period as timeout (clock-visible, so it works under
	// a virtual clock); Quiesce sets hbStopped and signals the slot.
	hbSlot    clock.WaitSlot
	hbStopped atomic.Bool
	hbDone    chan struct{}
	hbEvery   time.Duration

	backupLost atomic.Bool
	metrics    *primaryMetrics
}

var _ CoordinationBackend = (*PairBackend)(nil)

// NewPairBackend builds the pair coordination backend. Pass it via
// PrimaryConfig.Backend, or let NewPrimary construct one implicitly from
// PrimaryConfig's Endpoint/AckTimeout/HeartbeatEvery/Epoch fields.
func NewPairBackend(cfg PairBackendConfig) (*PairBackend, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("pair backend: nil endpoint")
	}
	return &PairBackend{
		ep:         cfg.Endpoint,
		ackTimeout: cfg.AckTimeout,
		hbEvery:    cfg.HeartbeatEvery,
		clk:        clock.Or(cfg.Clock),
		epoch:      cfg.Epoch,
		metrics:    &primaryMetrics{},
	}, nil
}

// adopt points the backend's instrumentation at the owning primary's counters
// and starts the heartbeat loop. Called once, from NewPrimary, before any
// traffic flows.
func (pb *PairBackend) adopt(m *primaryMetrics) {
	pb.metrics = m
	if pb.hbEvery > 0 && pb.hbSlot == nil {
		pb.hbSlot = pb.clk.NewWaitSlot()
		pb.hbDone = make(chan struct{})
		pb.clk.Go(pb.heartbeatLoop)
	}
}

// Epoch returns the view number this backend stamps on its frames.
func (pb *PairBackend) Epoch() uint64 { return pb.epoch }

// Lost reports whether the failure detector has declared the backup dead.
func (pb *PairBackend) Lost() bool { return pb.backupLost.Load() }

// Ship implements CoordinationBackend: one frame out; with commit, block
// until the backup has acknowledged everything up to it (§3.4), bounded by
// AckTimeout.
func (pb *PairBackend) Ship(payload []byte, commit bool) error {
	wantSeq, err := pb.sendFrame(payload, commit)
	if err != nil {
		return err
	}
	if !commit {
		return nil
	}
	pb.metrics.acksAwaited.Add(1)
	t0 := pb.clk.Now()
	err = pb.awaitAck(wantSeq)
	pb.metrics.addPessimism(pb.clk.Since(t0))
	return err
}

// Quiesce stops the heartbeat loop (idempotent; safe with no loop running).
func (pb *PairBackend) Quiesce() {
	if pb.hbSlot == nil {
		return
	}
	if pb.hbStopped.CompareAndSwap(false, true) {
		pb.hbSlot.Signal()
	}
	// The loop is already awake (signalled or mid-send) and needs no clock
	// advance to finish, so this bare channel wait is safe under a virtual
	// clock even though the waiter may itself be an actor.
	<-pb.hbDone
}

// Close stops background traffic and releases the transport.
func (pb *PairBackend) Close() error {
	pb.Quiesce()
	return pb.ep.Close()
}

func (pb *PairBackend) heartbeatLoop() {
	defer close(pb.hbDone)
	var buf wire.Buffer
	seq := uint64(0)
	for {
		timedOut := pb.hbSlot.Park(pb.hbEvery)
		if pb.hbStopped.Load() {
			return
		}
		if !timedOut {
			continue // woken for something other than the period: re-park
		}
		if pb.backupLost.Load() {
			return
		}
		seq++
		buf.Reset()
		if err := buf.Append(&wire.Heartbeat{Seq: seq}); err != nil {
			return
		}
		if _, err := pb.sendFrame(buf.Bytes(), false); err != nil {
			return
		}
		pb.metrics.heartbeatsSent.Add(1)
	}
}

// markBackupLost latches the loss and stops replicating.
func (pb *PairBackend) markBackupLost() {
	if pb.backupLost.CompareAndSwap(false, true) {
		pb.metrics.backupLost.Store(true)
	}
}

// sendFrame transmits one frame (thread-safe vs heartbeats) and returns the
// sequence number it was assigned. The sequence is read and assigned inside
// the critical section so callers awaiting an ack can never observe a stale
// expectation (a concurrent heartbeat bumping frameSeq between the read and
// the send).
func (pb *PairBackend) sendFrame(payload []byte, ackWanted bool) (uint64, error) {
	pb.sendMu.Lock()
	defer pb.sendMu.Unlock()
	if pb.backupLost.Load() {
		return 0, fmt.Errorf("ship log frame: %w", ErrBackupLost)
	}
	pb.frameSeq++
	seq := pb.frameSeq
	pb.lastSent.Store(seq)
	pb.frameBuf = wire.AppendFrame(pb.frameBuf[:0], &wire.Frame{Seq: seq, Epoch: pb.epoch, AckWanted: ackWanted, Payload: payload})
	b := pb.frameBuf
	t0 := pb.clk.Now()
	err := pb.ep.Send(b)
	pb.metrics.addCommunication(pb.clk.Since(t0))
	if err != nil {
		// The channel to the backup is gone (closed or broken mid-write):
		// that is a backup loss, not merely an I/O error.
		pb.markBackupLost()
		return seq, fmt.Errorf("ship log frame %d: %w: %w", seq, ErrBackupLost, err)
	}
	pb.metrics.observeFrame(len(b))
	return seq, nil
}

// awaitAck blocks until the backup acknowledges wantSeq or AckTimeout
// expires. Stale acknowledgements (duplicate frames re-acked by the backup,
// or late acks from an earlier commit) are skipped, not treated as failures.
//
// Two classes of ack end the wait with ErrProtocolDesync instead: bytes that
// do not decode as an ack, and an ack whose sequence exceeds the highest
// frame this primary ever sent. Both mean the channel (or a foreign sender
// on it) is fabricating acknowledgements — trusting any later ack for output
// commit would be unsound, so the backup is declared lost on the spot.
// Acks stamped with a different epoch are from another view's configuration
// and are skipped without prejudice (a late ack from before a takeover).
func (pb *PairBackend) awaitAck(wantSeq uint64) error {
	var deadline time.Time
	if pb.ackTimeout > 0 {
		deadline = pb.clk.Now().Add(pb.ackTimeout)
	}
	for {
		var timeout time.Duration
		if pb.ackTimeout > 0 {
			timeout = deadline.Sub(pb.clk.Now())
			if timeout <= 0 {
				pb.metrics.ackTimeouts.Add(1)
				pb.markBackupLost()
				return fmt.Errorf("await ack %d: %w", wantSeq, ErrBackupLost)
			}
		}
		msg, err := pb.ep.Recv(timeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				pb.metrics.ackTimeouts.Add(1)
			}
			if errors.Is(err, transport.ErrTimeout) || errors.Is(err, transport.ErrClosed) {
				pb.markBackupLost()
				return fmt.Errorf("await ack %d: %w: %w", wantSeq, ErrBackupLost, err)
			}
			return fmt.Errorf("await ack %d: %w", wantSeq, err)
		}
		epoch, seq, err := wire.DecodeAck(msg)
		if err != nil {
			pb.metrics.desyncs.Add(1)
			pb.markBackupLost()
			return fmt.Errorf("await ack %d: undecodable ack: %w: %w: %w", wantSeq, ErrProtocolDesync, ErrBackupLost, err)
		}
		if epoch != pb.epoch {
			// Another view's acknowledgement (a deposed backup's late ack, or
			// a new configuration this primary is no longer part of). It can
			// not commit anything in this epoch; keep waiting for ours.
			pb.metrics.staleAcks.Add(1)
			continue
		}
		if seq > pb.lastSent.Load() {
			pb.metrics.desyncs.Add(1)
			pb.markBackupLost()
			return fmt.Errorf("await ack %d: ack names frame %d, never sent (last %d): %w: %w",
				wantSeq, seq, pb.lastSent.Load(), ErrProtocolDesync, ErrBackupLost)
		}
		if seq >= wantSeq {
			return nil
		}
		// Stale ack: a duplicate or an earlier commit's late acknowledgement.
		// The one we want is still in flight; keep waiting.
	}
}
