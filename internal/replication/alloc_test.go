package replication

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/vm"
)

// The primary's record path (coordinator callback → scratch record →
// Buffer.Append) runs once per monitor acquisition or thread switch; pin it
// to zero steady-state allocations so the replication overhead stays in the
// encode/ship buckets, not the garbage collector.

// allocPrimary builds a primary whose flush threshold is high enough that no
// frame ships during the measured window (frame shipping is amortised over
// FlushEvery records and measured separately).
func allocPrimary(t *testing.T, mode Mode) *Primary {
	t.Helper()
	a, _ := transport.Pipe(16)
	p, err := NewPrimary(PrimaryConfig{Mode: mode, Endpoint: a, FlushEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrimaryLockRecordAllocFree(t *testing.T) {
	p := allocPrimary(t, ModeLock)
	th := &vm.Thread{VTID: "0.1", TASN: 41}
	mon := &vm.Monitor{LID: 7, LASN: 99}
	// Warm up the record buffer to steady-state capacity.
	for i := 0; i < 1024; i++ {
		if err := p.OnAcquired(nil, th, mon); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.OnAcquired(nil, th, mon); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("lock acquisition record allocs/run = %v, want 0", allocs)
	}
}

func TestPrimaryIDMapRecordAllocFree(t *testing.T) {
	p := allocPrimary(t, ModeLock)
	th := &vm.Thread{VTID: "0.1", TASN: 41}
	for i := 0; i < 1024; i++ {
		if _, _, err := p.AssignLID(nil, th, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := p.AssignLID(nil, th, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("id map record allocs/run = %v, want 0", allocs)
	}
}

func TestPrimaryIntervalRecordAllocFree(t *testing.T) {
	p := allocPrimary(t, ModeLockInterval)
	a := &vm.Thread{VTID: "0.1"}
	b := &vm.Thread{VTID: "0.2"}
	for i := 0; i < 1024; i++ {
		if err := p.OnAcquired(nil, a, nil); err != nil {
			t.Fatal(err)
		}
		if err := p.OnAcquired(nil, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating threads closes an interval (and appends its record) on
	// every call — the worst case for the interval path.
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.OnAcquired(nil, a, nil); err != nil {
			t.Fatal(err)
		}
		if err := p.OnAcquired(nil, b, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("interval record allocs/run = %v, want 0", allocs)
	}
}
