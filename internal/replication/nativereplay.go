package replication

import (
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// nativeReplay is the backup-side native-method machinery shared by both
// replay coordinators (§4.1): it feeds logged results to the program,
// re-invokes natives that must reproduce volatile output, and gives the
// uncertain final output exactly-once semantics via the handler's test
// method (§4.4). Side-effect handler state was already accumulated by the
// serve loop (the paper's receive method runs when log state arrives) and
// volatile environment state was rebuilt by restore before replay began.
type nativeReplay struct {
	handlers *sehandler.Set
	a        *analysis

	// tail, when set, is the promoted replica's own outgoing primary: every
	// native event past the recovered log — and the uncertain final output,
	// which must be re-committed against the new configuration — is routed
	// through it so the new backup's log stays a faithful continuation of the
	// old one (the state-transfer tail of a view change).
	tail *Primary

	// Recovery counters for the harness/tests.
	FedResults  uint64
	Reinvoked   uint64
	SkippedOuts uint64
	TestedOuts  uint64
	LiveInvokes uint64
}

func newNativeReplay(a *analysis, handlers *sehandler.Set) *nativeReplay {
	return &nativeReplay{handlers: handlers, a: a}
}

func (nr *nativeReplay) ctx(v *vm.VM) sehandler.Ctx {
	return sehandler.Ctx{Heap: v.Heap(), Env: v.Environment(), Proc: v.Process()}
}

// drained reports whether every logged native event has been consumed and
// no more can arrive.
func (nr *nativeReplay) drained() bool { return nr.a.nativePending == 0 && !nr.a.open }

func (nr *nativeReplay) consume(tid string) {
	nr.a.nativeQ[tid] = nr.a.nativeQ[tid][1:]
	nr.a.nativePending--
}

// ready reports whether t's next intercepted native invocation can proceed
// now. While the log is still open (warm backup), an empty queue means
// "wait for the primary's record", and the globally-newest record cannot be
// consumed if it is an output intent — its certainty is not yet known.
func (nr *nativeReplay) ready(t *vm.Thread) bool {
	q := nr.a.nativeQ[t.VTID]
	if len(q) == 0 {
		return !nr.a.open
	}
	if nr.a.open && len(q) == 1 {
		if intent, ok := q[0].(*wire.OutputIntent); ok && wire.Record(intent) == nr.a.last {
			return false
		}
	}
	return true
}

// invoke handles one intercepted native invocation during recovery or live
// post-recovery execution.
func (nr *nativeReplay) invoke(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	q := nr.a.nativeQ[t.VTID]
	if len(q) == 0 {
		// This thread has run past the primary's logged execution: live.
		nr.LiveInvokes++
		if nr.tail != nil {
			// Promoted replica: live natives take the full primary path —
			// output commit against the new backup, result logging for
			// non-deterministic commands.
			return nr.tail.InvokeNative(v, t, def, args)
		}
		return v.DirectNative(t, def, args)
	}
	switch rec := q[0].(type) {
	case *wire.OutputIntent:
		if rec.Sig != def.Sig || rec.NatSeq != t.NatSeq {
			return nil, divergence("thread %s native #%d is %s, log has %s #%d",
				t.VTID, t.NatSeq, def.Sig, rec.Sig, rec.NatSeq)
		}
		nr.consume(t.VTID)
		if rec == nr.a.uncertain {
			return nr.handleUncertain(v, t, def, args, rec)
		}
		return nr.handleCertainOutput(v, t, def, args)
	case *wire.NativeResult:
		if rec.Sig != def.Sig || rec.NatSeq != t.NatSeq {
			return nil, divergence("thread %s native #%d is %s, log has %s #%d",
				t.VTID, t.NatSeq, def.Sig, rec.Sig, rec.NatSeq)
		}
		nr.consume(t.VTID)
		return nr.useLogged(v, t, def, args, rec)
	default:
		return nil, divergence("thread %s: unexpected %s record in native queue", t.VTID, q[0].Type())
	}
}

// handleCertainOutput processes an output the primary certainly performed
// (records exist after it in the log).
func (nr *nativeReplay) handleCertainOutput(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	if def.ReinvokeOnReplay {
		// Idempotent output (e.g. sequence-numbered console writes): replay
		// it; the environment deduplicates.
		nr.Reinvoked++
		if _, err := v.DirectNative(t, def, args); err != nil {
			return nil, err
		}
	} else {
		nr.SkippedOuts++
		if def.UsesOutputSeq {
			v.ConsumeOutputSeq(t)
		}
	}
	if def.NonDeterministic {
		// The result record follows the intent in this thread's queue (the
		// VM is single-threaded between commit and result logging).
		q := nr.a.nativeQ[t.VTID]
		res, ok := headResult(q)
		if !ok || res.Sig != def.Sig || res.NatSeq != t.NatSeq {
			return nil, divergence("thread %s: output %s missing its result record", t.VTID, def.Sig)
		}
		nr.consume(t.VTID)
		return nr.useLogged(v, t, def, args, res)
	}
	return nil, nil
}

func headResult(q []wire.Record) (*wire.NativeResult, bool) {
	if len(q) == 0 {
		return nil, false
	}
	res, ok := q[0].(*wire.NativeResult)
	return res, ok
}

// handleUncertain gives the final, uncertain output exactly-once semantics:
// testable outputs are checked against the environment; idempotent ones are
// re-run (§3.4, R5).
func (nr *nativeReplay) handleUncertain(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value, intent *wire.OutputIntent) ([]heap.Value, error) {
	if nr.tail != nil {
		// The old log's trailing intent was deliberately not shipped in the
		// snapshot: re-commit it here, against the *new* configuration, before
		// deciding whether to (re)perform the output. The intent lands in the
		// same log position it held in the old epoch, so a second recovery
		// sees an identical prefix.
		if err := nr.tail.CommitOutput(t, def); err != nil {
			return nil, err
		}
	}
	performed := false
	if h := nr.handlers.ForDef(def); h != nil {
		nr.TestedOuts++
		var err error
		performed, err = h.Test(nr.ctx(v), def, args, intent)
		if err != nil {
			return nil, err
		}
	}
	if performed && def.Returns == 0 {
		nr.SkippedOuts++
		if def.UsesOutputSeq {
			v.ConsumeOutputSeq(t)
		}
		return nil, nil
	}
	// Not performed, or a value-returning output whose (idempotent, R5)
	// re-execution regenerates the result the primary never logged.
	nr.Reinvoked++
	results, err := v.DirectNative(t, def, args)
	if err != nil {
		return nil, err
	}
	if def.NonDeterministic && nr.tail != nil {
		// The old primary died before logging this result; the new backup
		// gets it from us.
		if err := nr.tail.LogNativeResult(v, t, def, args, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// useLogged adopts the primary's logged results, re-invoking first when the
// native must reproduce volatile output (discarding what it generates, §4.1).
func (nr *nativeReplay) useLogged(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value, rec *wire.NativeResult) ([]heap.Value, error) {
	if def.ReinvokeOnReplay {
		nr.Reinvoked++
		if _, err := v.DirectNative(t, def, args); err != nil {
			return nil, err
		}
	}
	nr.FedResults++
	results, err := fromWire(v.Heap(), rec.Results)
	if err != nil {
		return nil, err
	}
	if len(results) != def.Returns {
		return nil, divergence("%s: logged %d results, native returns %d", def.Sig, len(results), def.Returns)
	}
	return results, nil
}
