package replication

import (
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// lockReplay is the backup-side coordinator for replicated lock acquisition
// (§4.2): the backup's threads are scheduled by the backup's own policy (a
// different interleaving than the primary's), but every monitor acquisition
// is gated until its recorded turn — (t_id, t_asn) must match the next
// record for the thread and the lock's acquire sequence number must equal
// the recorded l_asn. Virtual lock ids are reproduced through the logged id
// maps; threads acquiring a not-yet-identified lock wait until the map is
// matched or, when no maps remain, assign a fresh id (end-of-recovery rule).
type lockReplay struct {
	policy  vm.SchedPolicy
	nr      *nativeReplay
	a       *analysis
	lidNext int64
	tail    *Primary // promotion: live events tee to the new backup

	// GatedWakeups counts threads admitted by Poll (recovery diagnostics).
	GatedWakeups uint64
}

var _ vm.Coordinator = (*lockReplay)(nil)

func newLockReplay(a *analysis, handlers *sehandler.Set, policy vm.SchedPolicy) *lockReplay {
	if policy == nil {
		policy = vm.NewSeededPolicy(0x6261636b7570, 1024, 8192) // distinct default seed
	}
	return &lockReplay{
		policy: policy,
		nr:     newNativeReplay(a, handlers),
		a:      a,
	}
}

// recoveryDone reports whether every logged event has been consumed.
func (c *lockReplay) recoveryDone() bool {
	return c.a.lockPending == 0 && c.a.idmapPending == 0 && c.nr.drained()
}

// head returns t's next recorded acquisition, if any.
func (c *lockReplay) head(t *vm.Thread) (*wire.LockAcq, bool) {
	q := c.a.lockQ[t.VTID]
	if len(q) == 0 {
		return nil, false
	}
	return q[0], true
}

// canAcquire evaluates — without consuming anything — whether t's pending
// acquisition of m may proceed now. It implements the waiting rules of §4.2.
func (c *lockReplay) canAcquire(t *vm.Thread, m *vm.Monitor) (bool, error) {
	rec, ok := c.head(t)
	if !ok {
		// No record for this acquisition: either the primary never got here
		// (cold recovery: wait for the global drain, then run free — "end
		// of recovery at the backup") or, while the log is open, the record
		// simply has not arrived yet.
		//
		// One exception on a closed log: an id map addressed to exactly
		// (t, t_asn) whose acquisition record was cut off by the log prefix.
		// The map proves this acquisition created the lock at the primary —
		// a first-ever acquisition has no cross-thread ordering to wait for,
		// so the assigner may proceed (and consume the map in AssignLID).
		// Without this, the orphaned map holds idmapPending above zero and
		// deadlocks every thread gated on the global drain.
		if !c.a.open && m.LID < 0 {
			if _, hasMap := c.a.idmaps[t.VTID][t.TASN]; hasMap {
				return true, nil
			}
		}
		return c.a.lockPending == 0 && c.a.idmapPending == 0 && !c.a.open, nil
	}
	if rec.TASN != t.TASN {
		return false, divergence("thread %s at t_asn %d, log head has t_asn %d", t.VTID, t.TASN, rec.TASN)
	}
	if m.LID < 0 {
		// The lock has no id yet at the backup.
		if im, ok := c.a.idmaps[t.VTID][t.TASN]; ok {
			// This thread performed the first-ever acquisition at the
			// primary: it may proceed and will assign im.LID itself.
			if im.LID != rec.LID {
				return false, divergence("thread %s t_asn %d: id map lid %d != record lid %d",
					t.VTID, t.TASN, im.LID, rec.LID)
			}
			return true, nil
		}
		// Another thread assigns this lock's id; wait until it does (the
		// monitor's LID becomes >= 0) or no id maps remain (and none can
		// arrive).
		return c.a.idmapPending == 0 && !c.a.open, nil
	}
	if rec.LID != m.LID {
		return false, divergence("thread %s t_asn %d: acquiring lid %d, log says lid %d",
			t.VTID, t.TASN, m.LID, rec.LID)
	}
	if m.LASN > rec.LASN {
		return false, divergence("lid %d overshoot: l_asn %d past recorded %d", m.LID, m.LASN, rec.LASN)
	}
	return m.LASN == rec.LASN, nil
}

// PickNext implements vm.Coordinator: the backup schedules with its own
// policy; only the gates make the lock order agree with the primary.
func (c *lockReplay) PickNext(_ *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	t := c.policy.Next(runnable, cur)
	return t, vm.BudgetTarget(t, c.policy.Quantum()), nil
}

// OnDescheduled implements vm.Coordinator.
func (c *lockReplay) OnDescheduled(*vm.VM, *vm.Thread, *vm.Thread) error { return nil }

// BeforeAcquire implements vm.Coordinator.
func (c *lockReplay) BeforeAcquire(_ *vm.VM, t *vm.Thread, m *vm.Monitor) (bool, error) {
	return c.canAcquire(t, m)
}

// AssignLID implements vm.Coordinator: reproduce the primary's assignment
// through the id map, or mint a fresh id once no maps remain.
func (c *lockReplay) AssignLID(_ *vm.VM, t *vm.Thread, _ *vm.Monitor) (int64, bool, error) {
	if im, ok := c.a.idmaps[t.VTID][t.TASN]; ok {
		delete(c.a.idmaps[t.VTID], t.TASN)
		c.a.idmapPending--
		return im.LID, true, nil
	}
	if c.a.idmapPending > 0 || c.a.open {
		// Defensive: BeforeAcquire should have gated this thread.
		return 0, false, nil
	}
	if c.lidNext <= c.a.maxLID {
		c.lidNext = c.a.maxLID
	}
	c.lidNext++
	if c.tail != nil {
		// A live, first-ever acquisition past the recovered log: the new
		// backup needs the id map just as the old one would have gotten it.
		if err := c.tail.LogIDMap(t, c.lidNext); err != nil {
			return 0, false, err
		}
	}
	return c.lidNext, true, nil
}

// OnAcquired implements vm.Coordinator: consume and cross-check the
// acquisition record.
func (c *lockReplay) OnAcquired(v *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	rec, ok := c.head(t)
	if !ok {
		// This thread ran past its logged acquisitions (live). Under
		// promotion the acquisition is a fresh event the new backup must log;
		// this also pairs up the orphan-id-map case, whose map came from the
		// snapshot but whose acquisition record the old log prefix cut off.
		if c.tail != nil {
			return c.tail.OnAcquired(v, t, m)
		}
		return nil
	}
	if rec.TASN != t.TASN {
		return divergence("thread %s acquired at t_asn %d, log head has t_asn %d", t.VTID, t.TASN, rec.TASN)
	}
	if rec.LID != m.LID || rec.LASN != m.LASN {
		return divergence("thread %s t_asn %d acquired lid %d l_asn %d, log says lid %d l_asn %d",
			t.VTID, t.TASN, m.LID, m.LASN, rec.LID, rec.LASN)
	}
	c.a.lockQ[t.VTID] = c.a.lockQ[t.VTID][1:]
	c.a.lockPending--
	return nil
}

// NativeReady implements vm.Coordinator: gate intercepted natives whose
// records have not arrived yet (warm backup).
func (c *lockReplay) NativeReady(_ *vm.VM, t *vm.Thread, _ *native.Def) bool {
	return c.nr.ready(t)
}

// InvokeNative implements vm.Coordinator.
func (c *lockReplay) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	return c.nr.invoke(v, t, def, args)
}

// Poll implements vm.Coordinator: admit gated threads whose recorded turn
// has arrived.
func (c *lockReplay) Poll(v *vm.VM) (bool, error) {
	progress := false
	for _, t := range v.Threads() {
		if t.State() != vm.StateGated {
			continue
		}
		m := t.BlockedOn()
		var ok bool
		var err error
		if m == nil {
			// Gated before an intercepted native call (warm backup).
			ok = c.nr.ready(t)
		} else {
			ok, err = c.canAcquire(t, m)
		}
		if err != nil {
			return false, err
		}
		if ok {
			v.Ungate(t)
			c.GatedWakeups++
			progress = true
		}
	}
	return progress, nil
}

// OnIdle implements vm.Coordinator: Poll already ran this iteration, so an
// idle scheduler means genuine deadlock (or divergence).
func (c *lockReplay) OnIdle(*vm.VM) (bool, error) { return false, nil }

// OnHalt implements vm.Coordinator.
func (c *lockReplay) OnHalt(v *vm.VM, runErr error) error {
	if c.tail != nil {
		return c.tail.OnHalt(v, runErr)
	}
	return nil
}
