package replication

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// These liveness tests run entirely on a virtual clock over the simulated
// link: the AckTimeout wait, the backup's silence, and the failure-detection
// deadline all play out in simulated time, so a 200ms detection window costs
// microseconds of wall time, the schedule is a pure function of the simnet
// seed, and there is not a single time.Sleep in the file. (They previously
// drove real transport.Pipe endpoints with wall-clock timeouts; see DESIGN.md
// §"Deterministic time" for which tests deliberately stay real-time.)

// silentBackup acks the first ackUntil ack-wanted frames, then goes silent —
// still draining frames (so the channel stays open and writable) but never
// acknowledging again. It models a backup process that wedges rather than
// crashing: only the primary's AckTimeout can detect it. The loop runs as a
// clock actor so its receive waits are visible to the virtual scheduler.
func silentBackup(t *testing.T, clk clock.Clock, ep transport.Endpoint, ackUntil int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		acked := 0
		for {
			msg, err := ep.Recv(2 * time.Second)
			if err != nil {
				return
			}
			frame, err := wire.DecodeFrame(msg)
			if err != nil {
				return
			}
			if frame.AckWanted && acked < ackUntil {
				acked++
				if err := ep.Send(wire.EncodeAck(frame.Epoch, frame.Seq)); err != nil {
					return
				}
			}
		}
	})
	return &wg
}

// TestBackupLostDuringOutputCommit: the backup stops acknowledging right
// before an output commit. The primary must not hang on the pessimistic wait
// (the pre-AckTimeout behaviour): within AckTimeout it declares the backup
// lost, surfaces ErrBackupLost, and — critically for exactly-once — the
// uncommitted output is never performed, while already-committed outputs
// stay performed exactly once. On the virtual clock the detection latency is
// asserted exactly: the run takes at least AckTimeout and at most AckTimeout
// plus a little message latency, in simulated time.
func TestBackupLostDuringOutputCommit(t *testing.T) {
	prog := mustAssemble(t, faultProgram)
	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	environ := env.New(1234)
	pEnd, bEnd := simnet.Link(clk, simnet.Config{Seed: 99})
	// Ack only the first output commit ("start"); the second commit hangs.
	wg := silentBackup(t, clk, bEnd, 1)

	const ackTimeout = 200 * time.Millisecond
	primary, err := NewPrimary(PrimaryConfig{
		Mode:       ModeLock,
		Endpoint:   pEnd,
		Policy:     vm.NewSeededPolicy(77, 64, 512),
		FlushEvery: 4,
		AckTimeout: ackTimeout,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	var elapsed time.Duration
	var done sync.WaitGroup
	done.Add(1)
	clk.Go(func() {
		defer done.Done()
		start := clk.Now()
		runErr = pvm.Run()
		elapsed = clk.Since(start)
	})
	done.Wait()
	wg.Wait()

	if !errors.Is(runErr, ErrBackupLost) {
		t.Fatalf("run error = %v, want ErrBackupLost", runErr)
	}
	if elapsed < ackTimeout {
		t.Fatalf("primary gave up after %v of virtual time, before AckTimeout %v", elapsed, ackTimeout)
	}
	if elapsed > ackTimeout+50*time.Millisecond {
		t.Fatalf("primary took %v of virtual time to notice the dead backup (AckTimeout %v)", elapsed, ackTimeout)
	}
	if !primary.BackupLost() {
		t.Fatal("BackupLost() = false after ack timeout")
	}
	m := primary.Metrics()
	if m.AckTimeouts == 0 || !m.BackupLost {
		t.Fatalf("metrics = %+v, want AckTimeouts > 0 and BackupLost", m)
	}
	// Exactly-once across the loss: "start" was committed and performed
	// once; the output whose commit timed out must NOT have been performed
	// (a restarted pair would otherwise duplicate it).
	lines := environ.Console().Lines()
	if len(lines) != 1 || lines[0] != "start" {
		t.Fatalf("console = %q, want exactly [\"start\"]", lines)
	}
}

// TestDegradeOnBackupLoss: with DegradeOnBackupLoss set, the same wedged
// backup does not kill the run — the primary detects the loss, stops
// replicating, and finishes unreplicated with the full reference output,
// every line exactly once (the timed-out output is performed by the degraded
// primary itself, not abandoned). Runs on the virtual clock: the 150ms
// detection window costs no wall time.
func TestDegradeOnBackupLoss(t *testing.T) {
	prog := mustAssemble(t, faultProgram)

	refEnv := env.New(1234)
	refVM, err := vm.New(vm.Config{
		Program: prog, Env: refEnv,
		Coordinator: vm.NewDefaultCoordinator(vm.NewSeededPolicy(77, 64, 512)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := refVM.Run(); err != nil {
		t.Fatal(err)
	}
	want := canonicalize(refEnv.Console().Lines())

	clk := clock.NewVirtual()
	defer clk.Watchdog(30 * time.Second)()
	environ := env.New(1234)
	pEnd, bEnd := simnet.Link(clk, simnet.Config{Seed: 7})
	wg := silentBackup(t, clk, bEnd, 1)
	primary, err := NewPrimary(PrimaryConfig{
		Mode:                ModeLock,
		Endpoint:            pEnd,
		Policy:              vm.NewSeededPolicy(77, 64, 512),
		FlushEvery:          4,
		AckTimeout:          150 * time.Millisecond,
		DegradeOnBackupLoss: true,
		Clock:               clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	var done sync.WaitGroup
	done.Add(1)
	clk.Go(func() {
		defer done.Done()
		runErr = pvm.Run()
	})
	done.Wait()
	wg.Wait()
	if runErr != nil {
		t.Fatalf("degraded run must complete, got %v", runErr)
	}
	if !primary.BackupLost() {
		t.Fatal("backup loss was never detected")
	}
	if got := canonicalize(environ.Console().Lines()); got != want {
		t.Fatalf("degraded output mismatch:\n%s\nvs want\n%s", got, want)
	}
}

// TestMetricsRaceUnderHeartbeat is the -race regression test for the data
// race between heartbeatLoop (writing counters from its own goroutine) and
// Metrics() (read from any goroutine): a monitor goroutine hammers Metrics()
// while the VM runs with a fast heartbeat. Before the counters became
// atomic, `go test -race` flagged this pairing.
//
// This test deliberately stays on the real clock and real pipe: its whole
// point is to make genuinely concurrent wall-clock-timed goroutines collide
// so the race detector can observe unsynchronized access. Under the virtual
// clock, goroutines run one-at-a-time between parks, which would serialize
// exactly the interleavings the test exists to provoke.
func TestMetricsRaceUnderHeartbeat(t *testing.T) {
	prog := mustAssemble(t, faultProgram)
	environ := env.New(1234)
	pEnd, bEnd := transport.Pipe(4096)
	primary, err := NewPrimary(PrimaryConfig{
		Mode:           ModeLock,
		Endpoint:       pEnd,
		Policy:         vm.NewSeededPolicy(77, 64, 512),
		FlushEvery:     4,
		HeartbeatEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(BackupConfig{Mode: ModeLock, Endpoint: bEnd})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan ServeOutcome, 1)
	go func() {
		outcome, _ := backup.Serve()
		serveDone <- outcome
	}()

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = primary.Metrics()
			}
		}
	}()

	if err := pvm.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	close(stop)
	pollWG.Wait()
	if outcome := <-serveDone; outcome != OutcomePrimaryCompleted {
		t.Fatalf("outcome = %v", outcome)
	}
	m := primary.Metrics()
	if m.FramesSent == 0 || m.RecordsLogged == 0 {
		t.Fatalf("metrics empty after run: %+v", m)
	}
}
