package replication

import (
	"errors"
	"testing"

	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Unit tests for the §4.2 replay waiting rules, driven with synthetic logs
// (the end-to-end behaviour is covered by the failover tests; these pin the
// individual predicates, including the id-map cases the paper spells out).

func lockReplayFor(t *testing.T, records []wire.Record) *lockReplay {
	t.Helper()
	a, err := analyze(records)
	if err != nil {
		t.Fatal(err)
	}
	return newLockReplay(a, sehandler.DefaultSet(), nil)
}

func TestCanAcquireFollowsRecordedTurn(t *testing.T) {
	c := lockReplayFor(t, []wire.Record{
		&wire.IDMap{LID: 1, TID: "0", TASN: 0},
		&wire.LockAcq{TID: "0", TASN: 0, LID: 1, LASN: 0},
		&wire.LockAcq{TID: "0.1", TASN: 0, LID: 1, LASN: 1},
		&wire.LockAcq{TID: "0", TASN: 1, LID: 1, LASN: 2},
	})
	main := &vm.Thread{VTID: "0"}
	child := &vm.Thread{VTID: "0.1"}
	m := &vm.Monitor{LID: -1}

	// Main holds the id map for its first acquisition: may proceed.
	ok, err := c.canAcquire(main, m)
	if err != nil || !ok {
		t.Fatalf("main first acquire: %v %v", ok, err)
	}
	// The child must wait: the lock has no id yet and the id map belongs to
	// main ("waits until t' assigns the l_id at the backup").
	ok, err = c.canAcquire(child, m)
	if err != nil || ok {
		t.Fatalf("child should wait for id assignment: %v %v", ok, err)
	}

	// Main acquires: id assigned, map and record consumed.
	lid, granted, err := c.AssignLID(nil, main, m)
	if err != nil || !granted || lid != 1 {
		t.Fatalf("assign = %d %v %v", lid, granted, err)
	}
	m.LID = lid
	if err := c.OnAcquired(nil, main, m); err != nil {
		t.Fatal(err)
	}
	m.LASN, main.TASN = 1, 1

	// Now it is the child's recorded turn (l_asn 1), not main's (l_asn 2).
	ok, err = c.canAcquire(child, m)
	if err != nil || !ok {
		t.Fatalf("child's turn: %v %v", ok, err)
	}
	ok, err = c.canAcquire(main, m)
	if err != nil || ok {
		t.Fatalf("main must wait for the child: %v %v", ok, err)
	}
	if err := c.OnAcquired(nil, child, m); err != nil {
		t.Fatal(err)
	}
	m.LASN, child.TASN = 2, 1

	ok, err = c.canAcquire(main, m)
	if err != nil || !ok {
		t.Fatalf("main's second turn: %v %v", ok, err)
	}
	if err := c.OnAcquired(nil, main, m); err != nil {
		t.Fatal(err)
	}
	if !c.recoveryDone() {
		t.Fatal("all records consumed but recovery not done")
	}
}

func TestCanAcquireWaitsForGlobalDrainWithoutRecord(t *testing.T) {
	c := lockReplayFor(t, []wire.Record{
		&wire.IDMap{LID: 1, TID: "0", TASN: 0},
		&wire.LockAcq{TID: "0", TASN: 0, LID: 1, LASN: 0},
	})
	// Thread 0.1 has no records: the primary never saw it acquire. It must
	// wait until the log holds no more lock records (end of recovery).
	child := &vm.Thread{VTID: "0.1"}
	m2 := &vm.Monitor{LID: -1}
	ok, err := c.canAcquire(child, m2)
	if err != nil || ok {
		t.Fatalf("recordless thread should wait: %v %v", ok, err)
	}
	// Drain main's acquisition.
	main := &vm.Thread{VTID: "0"}
	m := &vm.Monitor{LID: -1}
	if _, _, err := c.AssignLID(nil, main, m); err != nil {
		t.Fatal(err)
	}
	m.LID = 1
	if err := c.OnAcquired(nil, main, m); err != nil {
		t.Fatal(err)
	}
	// Log drained: the recordless thread runs free.
	ok, err = c.canAcquire(child, m2)
	if err != nil || !ok {
		t.Fatalf("post-drain acquire: %v %v", ok, err)
	}
}

func TestAssignLIDFreshAfterMapsDrained(t *testing.T) {
	// The lock was never assigned an id at the primary (crash before its
	// first acquisition): once no id maps remain, a fresh id is minted above
	// the logged range ("t can safely assign a new l_id").
	c := lockReplayFor(t, []wire.Record{
		&wire.IDMap{LID: 7, TID: "0", TASN: 0},
		&wire.LockAcq{TID: "0", TASN: 0, LID: 7, LASN: 0},
	})
	main := &vm.Thread{VTID: "0"}
	m := &vm.Monitor{LID: -1}
	if _, _, err := c.AssignLID(nil, main, m); err != nil {
		t.Fatal(err)
	}
	m.LID = 7
	if err := c.OnAcquired(nil, main, m); err != nil {
		t.Fatal(err)
	}
	main.TASN = 1
	fresh := &vm.Monitor{LID: -1}
	lid, granted, err := c.AssignLID(nil, main, fresh)
	if err != nil || !granted {
		t.Fatalf("fresh assign: %v %v", granted, err)
	}
	if lid <= 7 {
		t.Fatalf("fresh lid %d must exceed the logged range", lid)
	}
}

func TestDivergenceDetection(t *testing.T) {
	t.Run("wrong lid", func(t *testing.T) {
		c := lockReplayFor(t, []wire.Record{
			&wire.LockAcq{TID: "0", TASN: 0, LID: 3, LASN: 0},
		})
		main := &vm.Thread{VTID: "0"}
		m := &vm.Monitor{LID: 99}
		if _, err := c.canAcquire(main, m); !errors.Is(err, ErrDivergence) {
			t.Fatalf("want divergence, got %v", err)
		}
	})
	t.Run("lasn overshoot", func(t *testing.T) {
		c := lockReplayFor(t, []wire.Record{
			&wire.LockAcq{TID: "0", TASN: 0, LID: 3, LASN: 0},
		})
		main := &vm.Thread{VTID: "0"}
		m := &vm.Monitor{LID: 3, LASN: 5}
		if _, err := c.canAcquire(main, m); !errors.Is(err, ErrDivergence) {
			t.Fatalf("want divergence, got %v", err)
		}
	})
	t.Run("acquired mismatch", func(t *testing.T) {
		c := lockReplayFor(t, []wire.Record{
			&wire.LockAcq{TID: "0", TASN: 0, LID: 3, LASN: 1},
		})
		main := &vm.Thread{VTID: "0"}
		m := &vm.Monitor{LID: 3, LASN: 0}
		if err := c.OnAcquired(nil, main, m); !errors.Is(err, ErrDivergence) {
			t.Fatalf("want divergence, got %v", err)
		}
	})
}

func TestOrphanedTrailingIDMapDoesNotDeadlock(t *testing.T) {
	// Regression, found by the differential fuzzer (seed 43, failover): a
	// channel fault cut the log immediately after an id-map record, before
	// its matching acquisition record shipped. The map proves its thread's
	// (t, t_asn) acquisition was the lock's first ever, so the thread must
	// be allowed to proceed and consume the map; previously it gated on the
	// global drain, the orphaned map held idmapPending above zero, and every
	// thread deadlocked.
	c := lockReplayFor(t, []wire.Record{
		&wire.IDMap{LID: 1, TID: "0", TASN: 0},
		&wire.LockAcq{TID: "0", TASN: 0, LID: 1, LASN: 0},
		&wire.LockAcq{TID: "0.3", TASN: 0, LID: 1, LASN: 1},
		&wire.IDMap{LID: 2, TID: "0.3", TASN: 1}, // acquisition record cut off
	})
	main := &vm.Thread{VTID: "0"}
	worker := &vm.Thread{VTID: "0.3"}
	other := &vm.Thread{VTID: "0.1"} // no records at all

	// Drain the shared lock: main's acquisition, then the worker's.
	lk := &vm.Monitor{LID: -1}
	if _, _, err := c.AssignLID(nil, main, lk); err != nil {
		t.Fatal(err)
	}
	lk.LID = 1
	if err := c.OnAcquired(nil, main, lk); err != nil {
		t.Fatal(err)
	}
	lk.LASN = 1
	if ok, err := c.canAcquire(worker, lk); err != nil || !ok {
		t.Fatalf("worker's recorded turn: %v %v", ok, err)
	}
	if err := c.OnAcquired(nil, worker, lk); err != nil {
		t.Fatal(err)
	}
	worker.TASN = 1

	// Acquisition records are drained but the orphaned map remains: a
	// recordless thread must still wait...
	fresh := &vm.Monitor{LID: -1}
	if ok, err := c.canAcquire(other, fresh); err != nil || ok {
		t.Fatalf("recordless thread should wait on the pending map: %v %v", ok, err)
	}
	// ...while the map's addressee proceeds with the first-ever acquisition.
	own := &vm.Monitor{LID: -1}
	if ok, err := c.canAcquire(worker, own); err != nil || !ok {
		t.Fatalf("assigner with orphaned map must proceed: %v %v", ok, err)
	}
	lid, granted, err := c.AssignLID(nil, worker, own)
	if err != nil || !granted || lid != 2 {
		t.Fatalf("assign = %d %v %v", lid, granted, err)
	}
	own.LID = lid
	if err := c.OnAcquired(nil, worker, own); err != nil {
		t.Fatal(err)
	}

	// Map consumed: recovery drains and the recordless thread runs free.
	if !c.recoveryDone() {
		t.Fatal("orphaned map still pending after assigner consumed it")
	}
	if ok, err := c.canAcquire(other, fresh); err != nil || !ok {
		t.Fatalf("post-drain acquire: %v %v", ok, err)
	}
}

func TestAnalyzeRejectsDuplicateIDMaps(t *testing.T) {
	_, err := analyze([]wire.Record{
		&wire.IDMap{LID: 1, TID: "0", TASN: 0},
		&wire.IDMap{LID: 2, TID: "0", TASN: 0},
	})
	if err == nil {
		t.Fatal("duplicate id map accepted")
	}
}

func TestAnalyzeUncertainDetection(t *testing.T) {
	intent := &wire.OutputIntent{TID: "0", NatSeq: 1, Sig: "io.print"}
	a, err := analyze([]wire.Record{
		&wire.LockAcq{TID: "0", TASN: 0, LID: 1, LASN: 0},
		intent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.uncertain != intent {
		t.Fatal("final intent should be uncertain")
	}
	// A trailing result record makes the output certain.
	a, err = analyze([]wire.Record{
		intent,
		&wire.NativeResult{TID: "0", NatSeq: 1, Sig: "io.print"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.uncertain != nil {
		t.Fatal("output followed by records is certain")
	}
}

func TestIntervalReplayTurnPredicate(t *testing.T) {
	a, err := analyze([]wire.Record{
		&wire.LockInterval{TID: "0", StartTASN: 0, Count: 2},
		&wire.LockInterval{TID: "0.1", StartTASN: 0, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newIntervalReplay(a, sehandler.DefaultSet(), nil)
	main := &vm.Thread{VTID: "0"}
	child := &vm.Thread{VTID: "0.1"}
	if ok, _ := c.turnOf(main); !ok {
		t.Fatal("main owns the first interval")
	}
	if ok, _ := c.turnOf(child); ok {
		t.Fatal("child must wait for its interval")
	}
	if err := c.OnAcquired(nil, main, nil); err != nil {
		t.Fatal(err)
	}
	main.TASN = 1
	if ok, _ := c.turnOf(main); !ok {
		t.Fatal("main still inside its interval")
	}
	if err := c.OnAcquired(nil, main, nil); err != nil {
		t.Fatal(err)
	}
	main.TASN = 2
	// Main's interval exhausted; the child's turn.
	if ok, _ := c.turnOf(main); ok {
		t.Fatal("main's interval is over")
	}
	if ok, _ := c.turnOf(child); !ok {
		t.Fatal("child's interval")
	}
	if err := c.OnAcquired(nil, child, nil); err != nil {
		t.Fatal(err)
	}
	child.TASN = 1
	if !c.drained() {
		t.Fatal("intervals should be drained")
	}
	if ok, _ := c.turnOf(main); !ok {
		t.Fatal("post-drain everything is free")
	}
}
