package replication

import (
	"errors"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/env"
	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// replayVM builds a VM (never Run) purely as a native-execution context.
func replayVM(t *testing.T, environ *env.Env) *vm.VM {
	t.Helper()
	prog, err := bytecode.AssembleString("method main 0 void\n  ret\nend")
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{Program: prog, Env: environ})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func defOf(t *testing.T, sig string) *native.Def {
	t.Helper()
	d, ok := native.StdLib().Lookup(sig)
	if !ok {
		t.Fatal(sig)
	}
	return d
}

func strArg(t *testing.T, v *vm.VM, s string) heap.Value {
	t.Helper()
	r, err := v.Heap().AllocString(s)
	if err != nil {
		t.Fatal(err)
	}
	return heap.RefVal(r)
}

func TestUncertainChannelSendPerformed(t *testing.T) {
	environ := env.New(1)
	environ.Messages().Send("0", 1, "already delivered")
	intent := &wire.OutputIntent{TID: "0", NatSeq: 1, Sig: "chan.send", OutSeq: 1}
	a, err := analyze([]wire.Record{intent})
	if err != nil {
		t.Fatal(err)
	}
	nr := newNativeReplay(a, sehandler.DefaultSet())
	v := replayVM(t, environ)
	th := &vm.Thread{VTID: "0", NatSeq: 1}
	res, err := nr.invoke(v, th, defOf(t, "chan.send"), []heap.Value{strArg(t, v, "already delivered")})
	if err != nil || len(res) != 0 {
		t.Fatalf("res = %v (%v)", res, err)
	}
	if nr.TestedOuts != 1 || nr.SkippedOuts != 1 {
		t.Fatalf("tested=%d skipped=%d", nr.TestedOuts, nr.SkippedOuts)
	}
	if got := environ.Messages().Sent(); len(got) != 1 {
		t.Fatalf("sent = %v (must stay exactly-once)", got)
	}
	if th.OutSeq != 1 {
		t.Fatalf("OutSeq = %d (skip must consume the sequence number)", th.OutSeq)
	}
}

func TestUncertainChannelSendNotPerformed(t *testing.T) {
	environ := env.New(1)
	intent := &wire.OutputIntent{TID: "0", NatSeq: 1, Sig: "chan.send", OutSeq: 1}
	a, err := analyze([]wire.Record{intent})
	if err != nil {
		t.Fatal(err)
	}
	nr := newNativeReplay(a, sehandler.DefaultSet())
	v := replayVM(t, environ)
	th := &vm.Thread{VTID: "0", NatSeq: 1}
	if _, err := nr.invoke(v, th, defOf(t, "chan.send"), []heap.Value{strArg(t, v, "lost message")}); err != nil {
		t.Fatal(err)
	}
	if nr.Reinvoked != 1 {
		t.Fatalf("reinvoked = %d", nr.Reinvoked)
	}
	if got := environ.Messages().Sent(); len(got) != 1 || got[0] != "lost message" {
		t.Fatalf("sent = %v (send must be re-performed)", got)
	}
}

func TestUncertainFileWrite(t *testing.T) {
	environ := env.New(1)
	environ.PutFile("f", []byte("hello world"))

	runCase := func(data string, wantPerformed bool) (*nativeReplay, *vm.VM) {
		handlers := sehandler.DefaultSet()
		fh, _ := handlers.Get(native.HandlerFile)
		// The backup received open + a write ending at offset 6 earlier.
		if err := fh.Receive(encodeFileOpTest(1 /*open*/, 3, 0, "f")); err != nil {
			t.Fatal(err)
		}
		if err := fh.Receive(encodeFileOpTest(2 /*write*/, 3, 6, "")); err != nil {
			t.Fatal(err)
		}
		intent := &wire.OutputIntent{TID: "0", NatSeq: 1, Sig: "fs.write"}
		a, err := analyze([]wire.Record{intent})
		if err != nil {
			t.Fatal(err)
		}
		nr := newNativeReplay(a, handlers)
		v := replayVM(t, environ)
		v.SetHandlerState(native.HandlerFile, fh.State())
		if err := handlers.RestoreAll(sehandler.Ctx{Heap: v.Heap(), Env: environ, Proc: v.Process()}); err != nil {
			t.Fatal(err)
		}
		th := &vm.Thread{VTID: "0", NatSeq: 1}
		res, err := nr.invoke(v, th, defOf(t, "fs.write"), []heap.Value{heap.IntVal(3), strArg(t, v, data)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].I != int64(len(data)) {
			t.Fatalf("write result = %v", res)
		}
		_ = wantPerformed
		return nr, v
	}

	// The write of "world" at offset 6 already happened (content matches):
	// test says performed, but fs.write returns a value, so it is re-run
	// idempotently — content must be unchanged.
	nr, _ := runCase("world", true)
	if nr.TestedOuts != 1 {
		t.Fatalf("tested = %d", nr.TestedOuts)
	}
	data, _ := environ.FileContents("f")
	if string(data) != "hello world" {
		t.Fatalf("contents = %q", data)
	}

	// A write that never landed ("WORLD" differs): re-executed at the
	// recovered offset.
	environ.PutFile("f", []byte("hello "))
	_, _ = runCase("WORLD", false)
	data, _ = environ.FileContents("f")
	if string(data) != "hello WORLD" {
		t.Fatalf("contents after recovery write = %q", data)
	}
}

// encodeFileOpTest mirrors the file handler's wire format (op, varint fd,
// varint aux, uvarint name length, name).
func encodeFileOpTest(op byte, fd, aux int64, name string) []byte {
	var buf []byte
	buf = append(buf, op)
	buf = appendVarintT(buf, fd)
	buf = appendVarintT(buf, aux)
	buf = appendUvarintT(buf, uint64(len(name)))
	buf = append(buf, name...)
	return buf
}

func appendVarintT(b []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return appendUvarintT(b, uv)
}

func appendUvarintT(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestCertainPrintReinvokeDedups(t *testing.T) {
	environ := env.New(1)
	// The primary performed print seq 1 before crashing later.
	environ.Console().Write("0", 1, "once")
	intent := &wire.OutputIntent{TID: "0", NatSeq: 1, Sig: "io.print", OutSeq: 1}
	tail := &wire.NativeResult{TID: "0", NatSeq: 2, Sig: "sys.clock", Results: []wire.WireValue{{Kind: wire.WireInt, I: 5}}}
	a, err := analyze([]wire.Record{intent, tail})
	if err != nil {
		t.Fatal(err)
	}
	nr := newNativeReplay(a, sehandler.DefaultSet())
	v := replayVM(t, environ)
	th := &vm.Thread{VTID: "0", NatSeq: 1}
	if _, err := nr.invoke(v, th, defOf(t, "io.print"), []heap.Value{strArg(t, v, "once")}); err != nil {
		t.Fatal(err)
	}
	if lines := environ.Console().Lines(); len(lines) != 1 {
		t.Fatalf("console = %v (reinvoke must dedup)", lines)
	}
	// And the logged clock result is fed next.
	res, err := nr.invoke(v, th2(th), defOf(t, "sys.clock"), nil)
	if err != nil || len(res) != 1 || res[0].I != 5 {
		t.Fatalf("clock res = %v (%v)", res, err)
	}
}

func th2(t *vm.Thread) *vm.Thread { t.NatSeq = 2; return t }

func TestInvokeSigMismatchIsDivergence(t *testing.T) {
	environ := env.New(1)
	rec := &wire.NativeResult{TID: "0", NatSeq: 1, Sig: "sys.rand"}
	a, err := analyze([]wire.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	nr := newNativeReplay(a, sehandler.DefaultSet())
	v := replayVM(t, environ)
	th := &vm.Thread{VTID: "0", NatSeq: 1}
	if _, err := nr.invoke(v, th, defOf(t, "sys.clock"), nil); !errors.Is(err, ErrDivergence) {
		t.Fatalf("err = %v, want divergence", err)
	}
}

func TestToWireRejectsNonStringRefs(t *testing.T) {
	h := heap.New()
	arr, _ := h.AllocIntArr(2)
	if _, err := toWire(h, []heap.Value{heap.RefVal(arr)}); !errors.Is(err, ErrBadResult) {
		t.Fatalf("err = %v, want bad result", err)
	}
	// Null, ints, floats and strings all cross fine.
	s, _ := h.AllocString("x")
	wv, err := toWire(h, []heap.Value{heap.Null(), heap.IntVal(1), heap.FloatVal(2), heap.RefVal(s)})
	if err != nil || len(wv) != 4 {
		t.Fatalf("wv = %v (%v)", wv, err)
	}
	back, err := fromWire(h, wv)
	if err != nil || len(back) != 4 || !back[0].IsNull() || back[1].I != 1 || back[2].F != 2 {
		t.Fatalf("back = %v (%v)", back, err)
	}
	if got, _ := h.StringAt(back[3].R); got != "x" {
		t.Fatalf("string = %q", got)
	}
}

func TestBackupLoadRecordsRoutesHandlers(t *testing.T) {
	_, ep := transport.Pipe(4)
	b, err := NewBackup(BackupConfig{Mode: ModeLock, Endpoint: ep})
	if err != nil {
		t.Fatal(err)
	}
	recs := []wire.Record{
		&wire.Heartbeat{Seq: 1}, // dropped
		&wire.NativeResult{
			TID: "0", NatSeq: 1, Sig: "fs.open",
			Results:     []wire.WireValue{{Kind: wire.WireInt, I: 3}},
			HandlerData: encodeFileOpTest(1, 3, 0, "f"),
		},
		&wire.LockAcq{TID: "0", TASN: 0, LID: 1, LASN: 0},
		&wire.Halt{}, // dropped so replay treats the log as a crash
	}
	if err := b.LoadRecords(recs); err != nil {
		t.Fatal(err)
	}
	if b.Store().Len() != 2 {
		t.Fatalf("stored = %d, want 2 (heartbeat and halt dropped)", b.Store().Len())
	}
	if b.Stats().ReceiveRoutings != 1 {
		t.Fatalf("receive routings = %d", b.Stats().ReceiveRoutings)
	}
	if ServeOutcome(0).String() == "" || OutcomePrimaryFailed.String() != "primary failed" {
		t.Fatal("outcome strings broken")
	}
}
