package replication

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/transport"
	"repro/internal/vm"
)

// TestReplicationOverTCP runs the primary-backup pair over a real TCP
// connection (the paper's deployment shape), kills the primary, and checks
// that the backup's failure detector fires on the broken connection and
// recovery completes.
func TestReplicationOverTCP(t *testing.T) {
	prog := mustAssemble(t, testProgram)
	environ := env.New(99)

	addrCh := make(chan string, 1)
	type listenRes struct {
		ep  transport.Endpoint
		err error
	}
	lch := make(chan listenRes, 1)
	go func() {
		ep, _, err := transport.ListenTCPAnnounce("127.0.0.1:0", func(b string) { addrCh <- b })
		lch <- listenRes{ep, err}
	}()
	primaryEnd, err := transport.DialTCP(<-addrCh)
	if err != nil {
		t.Fatal(err)
	}
	lr := <-lch
	if lr.err != nil {
		t.Fatal(lr.err)
	}
	backupEnd := lr.ep

	primary, err := NewPrimary(PrimaryConfig{
		Mode:       ModeLock,
		Endpoint:   primaryEnd,
		Policy:     vm.NewSeededPolicy(11, 64, 512),
		FlushEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(BackupConfig{
		Mode:           ModeLock,
		Endpoint:       backupEnd,
		FailureTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var outcome ServeOutcome
	var serveErr error
	go func() { defer close(done); outcome, serveErr = backup.Serve() }()
	go func() {
		for backup.Store().Len() < 40 {
			time.Sleep(100 * time.Microsecond)
		}
		pvm.Kill()
	}()
	_ = pvm.Run()
	<-done
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	if outcome != OutcomePrimaryFailed {
		t.Fatalf("outcome = %v, want failed", outcome)
	}
	_, report, err := backup.Recover(RecoverConfig{Program: prog, Env: environ})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if report.RecordsInLog == 0 {
		t.Fatal("no records replayed")
	}
	checkTestProgramOutput(t, environ.Console().Lines())
}

// TestHeartbeatTimeoutDetection: a primary that stalls (neither sending nor
// closing) is detected through the receive timeout, and the outcome records
// that it was silence — not transport closure — that fired the detector.
func TestHeartbeatTimeoutDetection(t *testing.T) {
	_, bEnd := transport.Pipe(4)
	backup, err := NewBackup(BackupConfig{
		Mode:           ModeLock,
		Endpoint:       bEnd,
		FailureTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	outcome, err := backup.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomePrimaryTimedOut {
		t.Fatalf("outcome = %v, want %v", outcome, OutcomePrimaryTimedOut)
	}
	if !outcome.Failed() {
		t.Fatal("timed-out outcome must count as failed")
	}
	if time.Since(start) < 45*time.Millisecond {
		t.Fatal("detector fired too early")
	}
}

// TestHeartbeatsKeepBackupAlive: with heartbeats enabled, a slow primary is
// not falsely declared dead.
func TestHeartbeatsKeepBackupAlive(t *testing.T) {
	pEnd, bEnd := transport.Pipe(64)
	primary, err := NewPrimary(PrimaryConfig{
		Mode:           ModeLock,
		Endpoint:       pEnd,
		HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(BackupConfig{
		Mode:           ModeLock,
		Endpoint:       bEnd,
		FailureTimeout: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan ServeOutcome, 1)
	go func() {
		outcome, _ := backup.Serve()
		done <- outcome
	}()
	// The "slow primary" does nothing for several failure-timeout windows;
	// heartbeats must keep the detector quiet.
	time.Sleep(300 * time.Millisecond)
	select {
	case o := <-done:
		t.Fatalf("backup declared failure (%v) despite heartbeats", o)
	default:
	}
	// Clean shutdown: the halt marker ends the serve loop.
	prog := mustAssemble(t, "method main 0 void\n  ret\nend")
	pvm, err := vm.New(vm.Config{Program: prog, Env: env.New(1), Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	if err := pvm.Run(); err != nil {
		t.Fatal(err)
	}
	if o := <-done; o != OutcomePrimaryCompleted {
		t.Fatalf("outcome = %v", o)
	}
	if backup.Stats().Heartbeats == 0 {
		t.Fatal("no heartbeats observed")
	}
}
