package replication

import (
	"strings"
	"testing"
)

// nativeLockProgram exercises §4.2's complication: a native method that
// acquires and releases a monitor. Control transfers back into the VM on
// those operations, so they are recorded and replayed like bytecode-level
// acquisitions (and counted in mon_cnt).
const nativeLockProgram = `
static Main.obj
static Main.n
class Obj d
native locktouch sys.locktouch 1 void
native print io.print 1 void
method worker 0 void
  iconst 0
  store 0
loop:
  load 0
  iconst 5000
  icmp
  jz out
  gets Main.obj
  call locktouch
  gets Main.obj
  menter
  gets Main.n
  iconst 1
  iadd
  puts Main.n
  gets Main.obj
  mexit
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
out:
  ret
end
method main 0 void
  new Obj
  puts Main.obj
  iconst 0
  puts Main.n
  spawn worker 0
  store 0
  spawn worker 0
  store 1
  load 0
  join
  load 1
  join
  gets Main.n
  i2s
  sconst "n="
  swap
  scat
  call print
  ret
end
`

func TestNativeMonitorAcquisitionsReplicate(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched, ModeLockInterval} {
		t.Run(mode.String(), func(t *testing.T) {
			_, lines, _ := runPair(t, mode, nativeLockProgram, true)
			found := false
			for _, l := range lines {
				if strings.HasPrefix(l, "n=") {
					found = true
					if l != "n=10000" {
						t.Fatalf("final count %q, want n=10000", l)
					}
				}
			}
			if !found {
				t.Fatalf("no count line in %v", lines)
			}
		})
	}
}

// TestNativeLockRecordsLogged verifies native-originated acquisitions appear
// in the lock log (they must, or the backup's replay would drift).
func TestNativeLockRecordsLogged(t *testing.T) {
	_, _, report := runPair(t, ModeLock, nativeLockProgram, true)
	// 5000 iterations × 2 workers × 2 acquisitions (locktouch + menter) plus
	// join/finish monitors: the replay consumed all of them.
	if report.VMStats.LocksAcquired < 20000 {
		t.Fatalf("replayed VM acquired %d locks, want >= 20000", report.VMStats.LocksAcquired)
	}
}
