package replication

import (
	"fmt"

	"repro/internal/vm"
	"repro/internal/wire"
)

// Promotion is a view-change takeover with state transfer: a backup that
// survived its primary becomes the new primary of a *new* pair, recruiting an
// idle node as its backup. The recruit must hold the promoted replica's
// complete history before it may count for output commit, so Run first ships
// the recovered log prefix as ordinary frames under the new epoch (the
// recruit is a plain Backup.Serve loop and cannot tell a snapshot from live
// traffic), then replays toward the log's end with every live event — and the
// re-committed uncertain final output — teed through the outgoing tail
// primary. The recruit ends up with snapshot + tail: a log from which a
// *second* recovery reproduces the same execution, which is what lets an
// n-node cluster survive n−1 sequential failures.
type Promotion struct {
	backup *Backup
	tail   *Primary
	rcfg   RecoverConfig

	// AfterTransfer, when set, runs after the snapshot is acknowledged and
	// before replay begins — the window where the recruit holds the full
	// prefix but no live records yet. The simulation harness uses it to place
	// kill points and inject stale-epoch traffic at the worst moment.
	AfterTransfer func(tail *Primary) error
}

// PreparePromotion stages a takeover: b (whose serve loop has ended with a
// failed primary) will recover with tailCfg's endpoint as its new backup.
// The tail must run the same mode and a strictly newer epoch than the view b
// served in — handing out those epochs is the view service's job
// (internal/viewsvc); enforcing monotonicity here is what keeps a deposed
// primary's traffic rejectable everywhere.
func PreparePromotion(b *Backup, rcfg RecoverConfig, tailCfg PrimaryConfig) (*Promotion, error) {
	if tailCfg.Mode == 0 {
		tailCfg.Mode = b.mode
	}
	if tailCfg.Mode != b.mode {
		return nil, fmt.Errorf("promotion: tail mode %d != backup mode %d", tailCfg.Mode, b.mode)
	}
	epoch := tailCfg.Epoch
	if tailCfg.Backend != nil {
		// An explicit coordination backend owns its epochs; the config field
		// is ignored by NewPrimary, so validate what will actually be stamped.
		epoch = tailCfg.Backend.Epoch()
	}
	if epoch <= b.epoch {
		return nil, fmt.Errorf("promotion: tail epoch %d must exceed the old view's epoch %d",
			epoch, b.epoch)
	}
	tail, err := NewPrimary(tailCfg)
	if err != nil {
		return nil, fmt.Errorf("promotion: %w", err)
	}
	rcfg.Tail = tail
	return &Promotion{backup: b, tail: tail, rcfg: rcfg}, nil
}

// Tail returns the outgoing primary toward the recruit (metrics, tests).
func (p *Promotion) Tail() *Primary { return p.tail }

// Run performs the takeover: state transfer, then tail-teed recovery. The
// returned VM is the new primary's machine, live past the old log's end. A
// failed transfer (recruit dead, ack timeout) aborts before any replay
// side effects unless the tail is configured to degrade.
func (p *Promotion) Run() (*vm.VM, *RecoveryReport, error) {
	if err := p.tail.ShipSnapshot(snapshotRecords(p.backup.store.Records())); err != nil {
		return nil, nil, fmt.Errorf("promotion: %w", err)
	}
	if p.AfterTransfer != nil {
		if err := p.AfterTransfer(p.tail); err != nil {
			return nil, nil, fmt.Errorf("promotion after-transfer: %w", err)
		}
	}
	return p.backup.Recover(p.rcfg)
}

// snapshotRecords filters a recovered log for state transfer: halt markers
// and heartbeats carry no recovery information, and a trailing output intent
// is withheld because its certainty is the *promoted* replica's decision —
// the replay re-commits it through the tail (nativeReplay.handleUncertain),
// landing it in the same log position it held in the old epoch.
func snapshotRecords(records []wire.Record) []wire.Record {
	out := make([]wire.Record, 0, len(records))
	for _, r := range records {
		switch r.(type) {
		case *wire.Halt, *wire.Heartbeat:
			continue
		}
		out = append(out, r)
	}
	if n := len(out); n > 0 {
		if _, ok := out[n-1].(*wire.OutputIntent); ok {
			out = out[:n-1]
		}
	}
	return out
}
