package replication

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/env"
	"repro/internal/native"
	"repro/internal/sehandler"
	"repro/internal/transport"
	"repro/internal/vm"
)

// testProgram is a multi-threaded workload exercising monitors, natives
// (clock, rand, print), and shared state: two workers each add seeded
// pseudo-random values into a shared accumulator under a lock; main prints
// progress markers and the final sum mixed with a clock reading parity.
const testProgram = `
static Main.sum
static Main.lock
static Main.randvals
class Lock dummy
native print io.print 1 void
native clock sys.clock 0 value
native rand sys.rand 0 value
method worker 1 void
  iconst 0
  store 1
loop:
  load 1
  iconst 200
  icmp
  jz done
  call rand
  store 2
  gets Main.lock
  menter
  gets Main.sum
  load 2
  iconst 1000
  irem
  iadd
  puts Main.sum
  gets Main.randvals
  iconst 1
  iadd
  puts Main.randvals
  gets Main.lock
  mexit
  load 1
  iconst 1
  iadd
  store 1
  jmp loop
done:
  ret
end
method main 0 void
  new Lock
  puts Main.lock
  iconst 0
  puts Main.sum
  iconst 0
  puts Main.randvals
  sconst "start"
  call print
  iconst 1
  spawn worker 1
  store 0
  iconst 2
  spawn worker 1
  store 1
  load 0
  join
  load 1
  join
  gets Main.sum
  call clock
  iconst 2
  irem
  iadd
  i2s
  sconst "sum="
  swap
  scat
  call print
  gets Main.randvals
  i2s
  sconst "ops="
  swap
  scat
  call print
  ret
end
`

func mustAssemble(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := bytecode.AssembleString(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// runPair runs the program replicated in the given mode; if killAfter > 0,
// the primary is killed once its VM has executed at least that many
// instructions (approximated by a watcher goroutine), and the backup
// recovers. It returns the environment (shared) and the final console lines.
func runPair(t *testing.T, mode Mode, src string, kill bool) (*env.Env, []string, *RecoveryReport) {
	t.Helper()
	// The kill watcher races the (fast) program on a single core; retry
	// until a run is actually interrupted mid-flight.
	for attempt := 0; ; attempt++ {
		environ, lines, report, landed := runPairOnce(t, mode, src, kill)
		if !kill || landed || attempt >= 10 {
			if kill && !landed {
				t.Fatalf("kill never landed in %d attempts", attempt+1)
			}
			return environ, lines, report
		}
	}
}

// fuseEndpoint fires a callback after n frames have been sent — a
// deterministic way to kill the primary mid-protocol from its own goroutine.
type fuseEndpoint struct {
	transport.Endpoint
	n    int
	fire func()
}

func (f *fuseEndpoint) Send(b []byte) error {
	if f.n > 0 {
		f.n--
		if f.n == 0 {
			f.fire()
		}
	}
	return f.Endpoint.Send(b)
}

func runPairOnce(t *testing.T, mode Mode, src string, kill bool) (*env.Env, []string, *RecoveryReport, bool) {
	t.Helper()
	prog := mustAssemble(t, src)
	environ := env.New(99)
	pa, pb := transport.Pipe(1024)

	var pvm *vm.VM
	var primaryEnd transport.Endpoint = pa
	if kill {
		// The primary dies deterministically after its third log frame.
		primaryEnd = &fuseEndpoint{Endpoint: pa, n: 3, fire: func() { pvm.Kill() }}
	}
	primary, err := NewPrimary(PrimaryConfig{
		Mode:       mode,
		Endpoint:   primaryEnd,
		Policy:     vm.NewSeededPolicy(11, 64, 512),
		FlushEvery: 16, // small batches so the kill lands mid-run
	})
	if err != nil {
		t.Fatalf("new primary: %v", err)
	}
	pvm, err = vm.New(vm.Config{
		Program: prog, Env: environ, Coordinator: primary,
		MaxInstructions: 50_000_000, TrackProgress: mode == ModeSched,
	})
	if err != nil {
		t.Fatalf("primary vm: %v", err)
	}
	backup, err := NewBackup(BackupConfig{Mode: mode, Endpoint: pb})
	if err != nil {
		t.Fatalf("new backup: %v", err)
	}

	serveDone := make(chan struct{})
	var outcome ServeOutcome
	var serveErr error
	go func() {
		defer close(serveDone)
		outcome, serveErr = backup.Serve()
	}()

	runErr := pvm.Run()
	if !kill && runErr != nil {
		t.Fatalf("primary run: %v", runErr)
	}
	<-serveDone
	if serveErr != nil {
		t.Fatalf("backup serve: %v", serveErr)
	}

	if !kill {
		if outcome != OutcomePrimaryCompleted {
			t.Fatalf("outcome = %v, want completed", outcome)
		}
		return environ, environ.Console().Lines(), nil, false
	}
	if outcome == OutcomePrimaryCompleted {
		// The primary beat the kill watcher; the caller retries.
		return environ, environ.Console().Lines(), nil, false
	}
	if outcome != OutcomePrimaryFailed {
		t.Fatalf("outcome = %v, want failed", outcome)
	}
	_, report, err := backup.Recover(RecoverConfig{
		Program:         prog,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(9999, 48, 700), // deliberately different
		MaxInstructions: 50_000_000,
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return environ, environ.Console().Lines(), report, true
}

// referenceRun executes the program unreplicated and returns the console
// output with non-deterministic parts normalised away by the program itself.
func TestLockReplicationFailover(t *testing.T) {
	_, lines, report := runPair(t, ModeLock, testProgram, true)
	checkTestProgramOutput(t, lines)
	if report.FedResults == 0 {
		t.Error("expected logged native results to be fed during recovery")
	}
	if report.GatedWakeups == 0 {
		t.Error("expected lock-replay gating to admit threads")
	}
}

func TestSchedReplicationFailover(t *testing.T) {
	_, lines, report := runPair(t, ModeSched, testProgram, true)
	checkTestProgramOutput(t, lines)
	if report.FedResults == 0 {
		t.Error("expected logged native results to be fed during recovery")
	}
	if report.ReplayedSwitches == 0 {
		t.Error("expected scheduling records to be replayed")
	}
}

func TestCleanCompletionNoRecovery(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeSched} {
		prog := mustAssemble(t, testProgram)
		environ := env.New(99)
		pa, pb := transport.Pipe(1) // tiny buffer: forces real interleaving so kills land
		primary, err := NewPrimary(PrimaryConfig{Mode: mode, Endpoint: pa, Policy: vm.NewSeededPolicy(5, 64, 512)})
		if err != nil {
			t.Fatalf("new primary: %v", err)
		}
		pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
		if err != nil {
			t.Fatalf("primary vm: %v", err)
		}
		backup, err := NewBackup(BackupConfig{Mode: mode, Endpoint: pb})
		if err != nil {
			t.Fatalf("new backup: %v", err)
		}
		done := make(chan struct{})
		var outcome ServeOutcome
		go func() { defer close(done); outcome, _ = backup.Serve() }()
		if err := pvm.Run(); err != nil {
			t.Fatalf("primary run (%v): %v", mode, err)
		}
		<-done
		if outcome != OutcomePrimaryCompleted {
			t.Fatalf("mode %v outcome = %v, want completed", mode, outcome)
		}
		if _, _, err := backup.Recover(RecoverConfig{Program: prog, Env: environ}); !errors.Is(err, ErrNoRecoveryNeeded) {
			t.Fatalf("mode %v recover err = %v, want ErrNoRecoveryNeeded", mode, err)
		}
		checkTestProgramOutput(t, environ.Console().Lines())
	}
}

// checkTestProgramOutput verifies exactly-once output and a correct final
// state regardless of interleaving: "start" exactly once, ops=400 exactly
// once, and exactly one sum= line.
func checkTestProgramOutput(t *testing.T, lines []string) {
	t.Helper()
	var starts, sums, ops int
	for _, l := range lines {
		switch {
		case l == "start":
			starts++
		case strings.HasPrefix(l, "sum="):
			sums++
		case l == "ops=400":
			ops++
		}
	}
	if starts != 1 || sums != 1 || ops != 1 {
		t.Fatalf("console %q: start×%d sum×%d ops400×%d, want 1/1/1", lines, starts, sums, ops)
	}
}

func TestLockModeSumMatchesLoggedRandoms(t *testing.T) {
	// Under lock replication the backup must adopt the primary's logged
	// sys.rand results: run the same program twice with the same env seed
	// but different primary schedules; the ops count is always 400 and the
	// sum is whatever the primary's logged randoms dictate. Here we check
	// the recovered sum matches a reference run with the same env seed and
	// the same primary policy seed (log feeding ⇒ identical randoms).
	prog := mustAssemble(t, testProgram)

	// Reference: unreplicated run with the same env entropy.
	refEnv := env.New(99)
	refVM, err := vm.New(vm.Config{
		Program:     prog,
		Env:         refEnv,
		Coordinator: vm.NewDefaultCoordinator(vm.NewSeededPolicy(11, 64, 512)),
	})
	if err != nil {
		t.Fatalf("ref vm: %v", err)
	}
	if err := refVM.Run(); err != nil {
		t.Fatalf("ref run: %v", err)
	}
	refSum := extractSum(t, refEnv.Console().Lines())

	_, lines, _ := runPair(t, ModeLock, testProgram, true)
	gotSum := extractSum(t, lines)
	// The sum line mixes in a clock parity; both runs drew the same env
	// entropy sequence for rand but clock draws differ in count... they do
	// not: the program calls clock exactly once. Entropy and clock use
	// separate streams, so sums must match exactly.
	if gotSum != refSum {
		t.Fatalf("recovered sum %q != reference %q", gotSum, refSum)
	}
}

func extractSum(t *testing.T, lines []string) string {
	t.Helper()
	for _, l := range lines {
		if strings.HasPrefix(l, "sum=") {
			return l
		}
	}
	t.Fatalf("no sum line in %q", lines)
	return ""
}

func TestNonDeterministicSigsCatalog(t *testing.T) {
	reg := native.StdLib()
	sigs := reg.NonDeterministicSigs()
	if len(sigs) == 0 || len(sigs) >= 100 {
		t.Fatalf("non-deterministic natives = %d, want (0,100) as in the paper", len(sigs))
	}
	for _, want := range []string{"sys.clock", "sys.rand", "chan.recv", "fs.open"} {
		found := false
		for _, s := range sigs {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from non-deterministic catalog %v", want, sigs)
		}
	}
}

func TestHandlersRegister(t *testing.T) {
	if err := sehandler.DefaultSet().RegisterAll(native.StdLib()); err != nil {
		t.Fatalf("register handlers: %v", err)
	}
}
