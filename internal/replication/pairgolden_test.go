// Byte-identity pin for the CoordinationBackend extraction: the pair backend
// (PR 8) was split out of the primary verbatim, and these tables assert that
// the record stream a backup logs — the frame log, re-encoded byte for byte —
// matches what the pre-refactor monolithic primary produced for the
// historical sweep seeds (env 1234 / policy 77, the convention shared with
// sweepseed_test.go). The hashes below were captured at commit 40b73b1,
// immediately before the backend split; any drift means the extraction
// changed what ships, not just how.
//
// The test lives in an external package so it can generate programs through
// internal/fuzzgen (which imports the root package) without an import cycle,
// while still driving replication.NewPrimary/NewBackup directly — the exact
// boundary the backend split cuts through.
package replication_test

import (
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/fuzzgen"
	"repro/internal/replication"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Historical sweep seed convention (sweepseed_test.go).
const (
	pairGoldenEnvSeed    = 1234
	pairGoldenPolicySeed = 77
)

// pairGolden pins, for each (program seed, mode), the record count and the
// FNV-1a hash of the backup's logged record stream re-encoded through
// wire.Buffer. Captured pre-refactor; see the package comment.
var pairGolden = []struct {
	prog    uint64
	mode    ftvm.Mode
	records int
	hash    uint64
}{
	{prog: 1, mode: ftvm.ModeLock, records: 17, hash: 0x61c9442839023282},
	{prog: 1, mode: ftvm.ModeSched, records: 9, hash: 0x632f9617ab1ebcf8},
	{prog: 1, mode: ftvm.ModeLockInterval, records: 12, hash: 0xb272d0c22e626c25},
	{prog: 2, mode: ftvm.ModeLock, records: 27, hash: 0xb7a9af1d6ca3a5cc},
	{prog: 2, mode: ftvm.ModeSched, records: 17, hash: 0x779888eeab500bea},
	{prog: 2, mode: ftvm.ModeLockInterval, records: 21, hash: 0xe32376094aeeec1c},
	{prog: 3, mode: ftvm.ModeLock, records: 18, hash: 0xb1fdd2ac2b186fa4},
	{prog: 3, mode: ftvm.ModeSched, records: 14, hash: 0x2c8f7d1cbc9914b},
	{prog: 3, mode: ftvm.ModeLockInterval, records: 16, hash: 0xb65bde0233bf9fa7},
	{prog: 4, mode: ftvm.ModeLock, records: 54, hash: 0x43032e876d33ce06},
	{prog: 4, mode: ftvm.ModeSched, records: 26, hash: 0xc4770e73d0fe0e21},
	{prog: 4, mode: ftvm.ModeLockInterval, records: 36, hash: 0x4fca5f29714765ff},
}

// logDigest re-encodes records and returns (count, FNV-1a 64 of the bytes).
func logDigest(t *testing.T, records []wire.Record) (int, uint64) {
	t.Helper()
	var buf wire.Buffer
	for _, r := range records {
		if err := buf.Append(r); err != nil {
			t.Fatalf("re-encode %s: %v", r.Type(), err)
		}
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return len(records), h.Sum64()
}

// runPairToLog runs a clean primary/backup pair over an in-process pipe and
// returns the backup's logged records.
func runPairToLog(t *testing.T, progSeed uint64, mode ftvm.Mode) []wire.Record {
	t.Helper()
	src := fuzzgen.Generate(progSeed, fuzzgen.SizeSmall).Render()
	prog, err := ftvm.CompileSource(fmt.Sprintf("golden-%d", progSeed), src)
	if err != nil {
		t.Fatalf("compile seed %d: %v", progSeed, err)
	}
	pEnd, bEnd := transport.Pipe(4096)
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:       mode,
		Endpoint:   pEnd,
		Policy:     vm.NewSeededPolicy(pairGoldenPolicySeed, 64, 512),
		FlushEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             env.New(pairGoldenEnvSeed),
		Coordinator:     primary,
		MaxInstructions: 50_000_000,
		TrackProgress:   mode == ftvm.ModeSched,
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var outcome replication.ServeOutcome
	var serveErr error
	go func() {
		defer close(done)
		outcome, serveErr = backup.Serve()
	}()
	if err := machine.Run(); err != nil {
		t.Fatalf("seed %d mode %v: primary run: %v", progSeed, mode, err)
	}
	<-done
	if serveErr != nil {
		t.Fatalf("seed %d mode %v: backup serve: %v", progSeed, mode, serveErr)
	}
	if outcome != replication.OutcomePrimaryCompleted {
		t.Fatalf("seed %d mode %v: outcome %v", progSeed, mode, outcome)
	}
	return backup.Store().Records()
}

// TestPairBackendByteMatchesPreRefactorLogs is the satellite pin: the
// extracted pair backend must ship a byte-identical record stream.
func TestPairBackendByteMatchesPreRefactorLogs(t *testing.T) {
	if os.Getenv("FTVM_GOLDEN_PRINT") != "" {
		for _, seed := range []uint64{1, 2, 3, 4} {
			for _, mode := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval} {
				n, h := logDigest(t, runPairToLog(t, seed, mode))
				fmt.Printf("\t{prog: %d, mode: ftvm.%s, records: %d, hash: %#x},\n", seed, modeName(mode), n, h)
			}
		}
		return
	}
	if len(pairGolden) == 0 {
		t.Fatal("pairGolden table is empty: run with FTVM_GOLDEN_PRINT=1 and pin the output")
	}
	for _, g := range pairGolden {
		g := g
		t.Run(fmt.Sprintf("seed%d-%v", g.prog, g.mode), func(t *testing.T) {
			n, h := logDigest(t, runPairToLog(t, g.prog, g.mode))
			if n != g.records || h != g.hash {
				t.Fatalf("frame log drifted from pre-refactor capture: got %d records hash %#x, want %d records hash %#x",
					n, h, g.records, g.hash)
			}
		})
	}
}

func modeName(m ftvm.Mode) string {
	switch m {
	case ftvm.ModeLock:
		return "ModeLock"
	case ftvm.ModeSched:
		return "ModeSched"
	case ftvm.ModeLockInterval:
		return "ModeLockInterval"
	}
	return "?"
}
