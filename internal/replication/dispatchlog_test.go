// Event-log byte identity between the dispatch engines: a primary running on
// the threaded tier must ship exactly the bytes a switch-engine primary ships
// — same records, same order, same encoding — because the backup (and any
// later recovery) interprets those bytes positionally against §4.2 branch
// counts. The capture gate at the repository root (TestDispatchDualModeGolden)
// compares standalone observables; this one compares the replication wire
// itself, re-encoded from the backup's log so framing and payloads are both
// covered.
//
// The fuzz corpus (small 1-20, medium 1-5) runs under all three replication
// modes; the six benchmarks run under ModeLock (untracked, so the multi-
// million-instruction bodies stay cheap — the tracked path for the benchmarks
// is exercised by the root capture gate, and the final state snapshot in the
// log still hashes their entire heap).
package replication_test

import (
	"bytes"
	"fmt"
	"testing"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/fuzzgen"
	"repro/internal/programs"
	"repro/internal/replication"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// runPairLogBytes runs a clean primary/backup pair with the given engine and
// returns the backup's logged record stream re-encoded to bytes.
func runPairLogBytes(t *testing.T, prog *ftvm.Program, mode ftvm.Mode, d vm.Dispatch) []byte {
	t.Helper()
	pEnd, bEnd := transport.Pipe(4096)
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:       mode,
		Endpoint:   pEnd,
		Policy:     vm.NewSeededPolicy(pairGoldenPolicySeed, 64, 512),
		FlushEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(vm.Config{
		Program:         prog,
		Env:             env.New(pairGoldenEnvSeed),
		Coordinator:     primary,
		MaxInstructions: 200_000_000,
		TrackProgress:   mode == ftvm.ModeSched,
		Dispatch:        d,
	})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := replication.NewBackup(replication.BackupConfig{Mode: mode, Endpoint: bEnd})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var outcome replication.ServeOutcome
	var serveErr error
	go func() {
		defer close(done)
		outcome, serveErr = backup.Serve()
	}()
	if err := machine.Run(); err != nil {
		t.Fatalf("%v/%v: primary run: %v", mode, d, err)
	}
	<-done
	if serveErr != nil {
		t.Fatalf("%v/%v: backup serve: %v", mode, d, serveErr)
	}
	if outcome != replication.OutcomePrimaryCompleted {
		t.Fatalf("%v/%v: outcome %v", mode, d, outcome)
	}
	var buf wire.Buffer
	for _, r := range backup.Store().Records() {
		if err := buf.Append(r); err != nil {
			t.Fatalf("re-encode %s: %v", r.Type(), err)
		}
	}
	return buf.Bytes()
}

func requireSameLog(t *testing.T, prog *ftvm.Program, mode ftvm.Mode) {
	t.Helper()
	sw := runPairLogBytes(t, prog, mode, vm.DispatchSwitch)
	th := runPairLogBytes(t, prog, mode, vm.DispatchThreaded)
	if !bytes.Equal(sw, th) {
		i := 0
		for i < len(sw) && i < len(th) && sw[i] == th[i] {
			i++
		}
		t.Fatalf("event log diverged between engines: switch %d bytes, threaded %d bytes, first difference at offset %d",
			len(sw), len(th), i)
	}
}

func TestDispatchDualModeEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-mode event-log sweep is not -short")
	}
	modes := []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	type fuzzCase struct {
		size fuzzgen.Size
		tag  string
		n    uint64
	}
	for _, fc := range []fuzzCase{{fuzzgen.SizeSmall, "small", 20}, {fuzzgen.SizeMedium, "medium", 5}} {
		for seed := uint64(1); seed <= fc.n; seed++ {
			src := fuzzgen.Generate(seed, fc.size).Render()
			name := fmt.Sprintf("fuzz/%s-%d", fc.tag, seed)
			prog, err := ftvm.CompileSource(name, src)
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			for _, mode := range modes {
				mode := mode
				t.Run(fmt.Sprintf("%s/%v", name, mode), func(t *testing.T) {
					requireSameLog(t, prog, mode)
				})
			}
		}
	}
	for _, name := range programs.Names() {
		name := name
		prog, err := programs.Compile(name, 1)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		t.Run(fmt.Sprintf("bench/%s/%v", name, ftvm.ModeLock), func(t *testing.T) {
			requireSameLog(t, prog, ftvm.ModeLock)
		})
	}
}
