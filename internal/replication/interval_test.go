package replication

import (
	"testing"

	"repro/internal/env"
	"repro/internal/transport"
	"repro/internal/vm"
)

func TestIntervalReplicationFailover(t *testing.T) {
	_, lines, report := runPair(t, ModeLockInterval, testProgram, true)
	checkTestProgramOutput(t, lines)
	if report.FedResults == 0 {
		t.Error("expected logged native results to be fed during recovery")
	}
	if report.RecordsInLog == 0 {
		t.Error("expected a non-empty log")
	}
	// GatedWakeups is schedule-dependent at this kill point (the replay may
	// never need to hold a thread back); the kill-sweep test covers the
	// gating correctness across many failure points.
}

func TestIntervalCleanCompletion(t *testing.T) {
	_, lines, _ := runPair(t, ModeLockInterval, testProgram, false)
	checkTestProgramOutput(t, lines)
}

// TestIntervalCompressionRatio verifies the §6 claim: logical intervals
// shrink the lock log by orders of magnitude (the paper projected 56
// intervals instead of 700k acquisition records for mtrt).
func TestIntervalCompressionRatio(t *testing.T) {
	measure := func(mode Mode) (lockRecords uint64) {
		prog := mustAssemble(t, testProgram)
		environ := env.New(99)
		pa, pb := transport.Pipe(1024)
		primary, err := NewPrimary(PrimaryConfig{Mode: mode, Endpoint: pa, Policy: vm.NewSeededPolicy(11, 64, 512)})
		if err != nil {
			t.Fatal(err)
		}
		pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
		if err != nil {
			t.Fatal(err)
		}
		backup, err := NewBackup(BackupConfig{Mode: mode, Endpoint: pb})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { defer close(done); _, _ = backup.Serve() }()
		if err := pvm.Run(); err != nil {
			t.Fatal(err)
		}
		<-done
		return primary.Metrics().LockRecords
	}
	full := measure(ModeLock)
	compressed := measure(ModeLockInterval)
	if compressed == 0 || full == 0 {
		t.Fatalf("lock records: full=%d compressed=%d", full, compressed)
	}
	if compressed*4 > full {
		t.Fatalf("intervals should compress at least 4x: %d vs %d", compressed, full)
	}
	t.Logf("lock records: %d plain vs %d intervals (%.1fx compression)",
		full, compressed, float64(full)/float64(compressed))
}

// TestIntervalSingleThreaded: a single-threaded program is one interval per
// output-commit epoch — the degenerate case where interval mode removes the
// lock log almost entirely.
func TestIntervalSingleThreaded(t *testing.T) {
	src := `
class L d
static M.l
native print io.print 1 void
method main 0 void
  new L
  puts M.l
  iconst 0
  store 0
loop:
  load 0
  iconst 500
  icmp
  jz out
  gets M.l
  menter
  gets M.l
  mexit
  load 0
  iconst 1
  iadd
  store 0
  jmp loop
out:
  sconst "done"
  call print
  ret
end`
	prog := mustAssemble(t, src)
	environ := env.New(1)
	pa, pb := transport.Pipe(64)
	primary, err := NewPrimary(PrimaryConfig{Mode: ModeLockInterval, Endpoint: pa})
	if err != nil {
		t.Fatal(err)
	}
	pvm, err := vm.New(vm.Config{Program: prog, Env: environ, Coordinator: primary})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(BackupConfig{Mode: ModeLockInterval, Endpoint: pb})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _, _ = backup.Serve() }()
	if err := pvm.Run(); err != nil {
		t.Fatal(err)
	}
	<-done
	// 500 acquisitions + the $finish acquisition, but at most a couple of
	// interval records (one per output-commit epoch).
	if got := primary.Metrics().LockRecords; got > 4 {
		t.Fatalf("single-threaded interval records = %d, want <= 4", got)
	}
	if got := pvm.Stats().LocksAcquired; got < 500 {
		t.Fatalf("locks acquired = %d", got)
	}
}
