package consensus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/wire"
)

// scenario runs fn as a virtual-clock actor and blocks the test goroutine
// until it finishes; every cluster interaction (WaitLeader, WaitCommit,
// Sleep-polling) must happen inside fn, never on the bare test goroutine.
func scenario(t *testing.T, clk *clock.Virtual, fn func()) {
	t.Helper()
	defer clk.Watchdog(30 * time.Second)()
	var done sync.WaitGroup
	done.Add(1)
	clk.Go(func() {
		defer done.Done()
		fn()
	})
	done.Wait()
}

func recordBatch(t *testing.T, recs ...wire.Record) []byte {
	t.Helper()
	var buf wire.Buffer
	for _, r := range recs {
		if err := buf.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestElectionConverges(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			c.Stop()
			return
		}
		ready := 0
		for i := 0; i < c.Size(); i++ {
			if c.Replica(i).Ready() {
				ready++
			}
		}
		if ready != 1 {
			t.Errorf("%d ready leaders, want exactly 1", ready)
		}
		s := leader.Snapshot()
		if s.Term == 0 || s.Wins == 0 || s.CommitIndex == 0 {
			t.Errorf("leader stats %+v: want term, win, and committed barrier", s)
		}
		c.Stop()
	})
}

func TestProposeCommitRoundTrip(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []wire.Record{
		&wire.IDMap{LID: 1, TID: "t1", TASN: 1},
		&wire.LockAcq{TID: "t1", TASN: 1, LID: 1, LASN: 1},
		&wire.Halt{},
	}
	scenario(t, clk, func() {
		defer c.Stop()
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		// Two batches: an async-style one and an output commit.
		idx1, term1, err := leader.Propose(recordBatch(t, want[0], want[1]), false)
		if err != nil {
			t.Error(err)
			return
		}
		idx2, term2, err := leader.Propose(recordBatch(t, want[2]), true)
		if err != nil {
			t.Error(err)
			return
		}
		if idx2 != idx1+1 || term2 != term1 {
			t.Errorf("proposal tickets (%d,%d) (%d,%d): want consecutive same-term", idx1, term1, idx2, term2)
		}
		if err := leader.WaitCommit(idx2, term2, time.Second); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		got, err := c.CommittedRecords(leader.ID())
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != len(want) {
			t.Errorf("leader committed %d records, want %d", len(got), len(want))
			return
		}
		for i := range want {
			if got[i].Type() != want[i].Type() {
				t.Errorf("record %d: %s, want %s", i, got[i].Type(), want[i].Type())
			}
		}
		// Followers learn the commit index from the next heartbeat; their
		// committed prefix must converge to the same stream.
		for i := 0; i < c.Size(); i++ {
			if i == leader.ID() {
				continue
			}
			for c.Replica(i).Snapshot().CommitIndex < idx2 {
				clk.Sleep(time.Millisecond)
			}
			frecs, err := c.CommittedRecords(i)
			if err != nil {
				t.Error(err)
				return
			}
			if len(frecs) != len(want) {
				t.Errorf("follower %d committed %d records, want %d", i, len(frecs), len(want))
			}
		}
	})
}

func TestFollowerKillCommitsProceed(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		defer c.Stop()
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		// Kill one follower: 2 of 3 is still a majority.
		for i := 0; i < c.Size(); i++ {
			if i != leader.ID() {
				c.Kill(i)
				break
			}
		}
		idx, term, err := leader.Propose(recordBatch(t, &wire.Halt{}), true)
		if err != nil {
			t.Error(err)
			return
		}
		if err := leader.WaitCommit(idx, term, time.Second); err != nil {
			t.Errorf("commit with one dead follower: %v", err)
		}
	})
}

func TestLeaderKillFailover(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		defer c.Stop()
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		idx, term, err := leader.Propose(recordBatch(t, &wire.IDMap{LID: 9, TID: "t9", TASN: 1}), true)
		if err != nil {
			t.Error(err)
			return
		}
		if err := leader.WaitCommit(idx, term, time.Second); err != nil {
			t.Error(err)
			return
		}
		oldID, oldTerm := leader.ID(), term
		c.Kill(oldID)
		next, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Errorf("no failover leader: %v", err)
			return
		}
		if next.ID() == oldID {
			t.Errorf("dead replica %d re-elected", oldID)
		}
		if got := next.Term(); got <= oldTerm {
			t.Errorf("failover term %d not beyond %d", got, oldTerm)
		}
		// The committed entry survives the leader's death: that is the whole
		// point of majority output commit.
		recs, err := c.CommittedRecords(next.ID())
		if err != nil {
			t.Error(err)
			return
		}
		found := false
		for _, r := range recs {
			if m, ok := r.(*wire.IDMap); ok && m.LID == 9 {
				found = true
			}
		}
		if !found {
			t.Error("committed entry lost across leader failover")
		}
	})
}

func TestStaleAndMalformedInjection(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		defer c.Stop()
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		before := leader.Snapshot()
		// A frame from term 0 — strictly older than any elected term — must
		// bounce off the term gate without touching the log (the consensus
		// analogue of the pair's stale-epoch drop).
		from := (leader.ID() + 1) % c.Size()
		leader.Inject(encodeAppend(0, from, 0, 0, 0, 1, []entry{{term: 0, payload: nil}}))
		// Garbage must be counted and dropped, never acted on.
		leader.Inject([]byte{0xEE, 0x01, 0x02})
		for {
			s := leader.Snapshot()
			if s.StaleTerms > before.StaleTerms && s.Malformed > before.Malformed {
				if s.LogLen != before.LogLen {
					t.Errorf("stale/malformed injection grew the log: %d -> %d", before.LogLen, s.LogLen)
				}
				if s.Term != before.Term || s.Role != Leader {
					t.Errorf("injection moved the leader: %+v -> %+v", before, s)
				}
				return
			}
			clk.Sleep(time.Millisecond)
		}
	})
}

func TestNonLeaderRejectsProposals(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		defer c.Stop()
		c.Start()
		leader, err := c.WaitLeader(time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		follower := c.Replica((leader.ID() + 1) % c.Size())
		if _, _, err := follower.Propose([]byte{}, false); !errors.Is(err, ErrNotLeader) {
			t.Errorf("follower Propose: %v, want ErrNotLeader", err)
		}
		if err := follower.WaitCommit(99, 99, time.Second); !errors.Is(err, ErrLeadershipLost) {
			t.Errorf("follower WaitCommit: %v, want ErrLeadershipLost", err)
		}
	})
}

// TestElectionDeterminism: the same seed replays the same election — winner
// and term — which is what lets the sweep harness pin byte-identical traces.
func TestElectionDeterminism(t *testing.T) {
	run := func(seed uint64) (int, uint64) {
		clk := clock.NewVirtual()
		c, err := NewCluster(Config{Clock: clk, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var id int
		var term uint64
		scenario(t, clk, func() {
			defer c.Stop()
			c.Start()
			leader, err := c.WaitLeader(time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			id, term = leader.ID(), leader.Term()
		})
		return id, term
	}
	id1, term1 := run(21)
	id2, term2 := run(21)
	if id1 != id2 || term1 != term2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", id1, term1, id2, term2)
	}
}

// TestBackendShipAndLoss drives the CoordinationBackend adapter: committed
// ships reach the replicated log, and a dead cluster surfaces as the same
// latched ErrBackupLost the pair backend reports.
func TestBackendShipAndLoss(t *testing.T) {
	clk := clock.NewVirtual()
	c, err := NewCluster(Config{Clock: clk, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	scenario(t, clk, func() {
		c.Start()
		be, err := NewClusterBackend(c, time.Second, time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		if err := be.Ship(recordBatch(t, &wire.IDMap{LID: 2, TID: "t2", TASN: 1}), false); err != nil {
			t.Errorf("async ship: %v", err)
			return
		}
		if err := be.Ship(recordBatch(t, &wire.Halt{}), true); err != nil {
			t.Errorf("committed ship: %v", err)
			return
		}
		if be.Lost() {
			t.Error("healthy backend reports Lost")
		}
		if be.Epoch() == 0 {
			t.Error("backend epoch (term) is zero")
		}
		recs, err := c.CommittedRecords(be.Replica().ID())
		if err != nil {
			t.Error(err)
			return
		}
		if len(recs) != 2 {
			t.Errorf("committed %d records, want 2", len(recs))
		}
		// Kill a majority: the next committed ship must fail as backup loss.
		killed := 0
		for i := 0; i < c.Size() && killed < 2; i++ {
			if i != be.Replica().ID() {
				c.Kill(i)
				killed++
			}
		}
		err = be.Ship(recordBatch(t, &wire.Halt{}), true)
		if !errors.Is(err, replication.ErrBackupLost) {
			t.Errorf("ship without quorum: %v, want ErrBackupLost", err)
		}
		if !be.Lost() {
			t.Error("loss not latched")
		}
		if err := be.Close(); err != nil {
			t.Error(err)
		}
	})
}

// TestRealClockSmoke exercises the defaults on the wall clock — the path
// ftvm.RunReplicated takes when no virtual clock is injected.
func TestRealClockSmoke(t *testing.T) {
	c, err := NewCluster(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	leader, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	idx, term, err := leader.Propose([]byte{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WaitCommit(idx, term, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
