// Package consensus is the second coordination path behind
// replication.CoordinationBackend: a small fixed-membership (default
// 3-replica) Raft-style replicated log that agrees on the same frame stream
// the primary/backup pair ships.
//
// Mapping onto the existing machinery (ROADMAP item 4 / DESIGN.md §11):
//
//   - Each replicated log entry is a wire.Frame: Seq is the log index, Epoch
//     is the term it was proposed in (epoch-as-term — the same field the
//     view service stamps on pair frames), AckWanted marks output-commit
//     batches, and Payload is a batch of encoded records.
//   - Output commit (§3.4's pessimism) is majority commit: a Ship with the
//     commit flag blocks until a majority of replicas hold the entry and the
//     leader has committed it in its own term.
//   - Leader election runs entirely on the injected clock.Clock with
//     per-replica seeded randomized timeouts, so the whole cluster is
//     deterministic under internal/simtest's virtual clock.
//   - A freshly elected leader appends an empty barrier entry in its own
//     term (Raft's no-op): committing it commits every surviving entry from
//     older terms, which is what makes the committed record stream a safe
//     recovery log after a leader kill (the trailing uncertain OutputIntent
//     analysis in internal/replication applies unchanged).
//
// The package deliberately omits what the harness does not drive: no
// persistence (replicas are fail-stop, like the paper's pair), no snapshot
// compaction, no dynamic membership.
package consensus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	frand "repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Role is a replica's current protocol role.
type Role int

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "invalid"
	}
}

// Errors surfaced by Propose/WaitCommit. The Backend wraps them in
// replication.ErrBackupLost so the primary's degrade/abort policy applies
// uniformly.
var (
	// ErrNotLeader: this replica cannot accept proposals.
	ErrNotLeader = errors.New("consensus: not the leader")
	// ErrLeadershipLost: the proposing term ended before the entry committed;
	// whether it survives is the next leader's decision, so the proposer must
	// treat the output as uncommitted.
	ErrLeadershipLost = errors.New("consensus: leadership lost before commit")
	// ErrCommitTimeout: the commit wait exceeded its bound (quorum silent).
	ErrCommitTimeout = errors.New("consensus: commit wait timed out")
	// ErrStopped: the replica was killed.
	ErrStopped = errors.New("consensus: replica stopped")
)

// Config configures a cluster.
type Config struct {
	// Replicas is the cluster size (default 3; must be odd and >= 1).
	Replicas int
	// Seed drives every replica's randomized election timeouts (default 1).
	Seed uint64
	// Clock supplies all timing (nil = wall clock). Under a virtual clock
	// the whole cluster is deterministic.
	Clock clock.Clock
	// ElectionMin/ElectionMax bound the randomized election timeout
	// (defaults 15ms/30ms — in-process transports are microseconds, so the
	// window only pays once at startup).
	ElectionMin, ElectionMax time.Duration
	// Heartbeat is the leader's AppendEntries keepalive period (default 5ms).
	Heartbeat time.Duration
	// PipeCapacity sizes the default in-process links (default 1024).
	PipeCapacity int
	// Link, when set, supplies the transport between replicas i < j (the
	// simulation harness injects seeded simnet links here); the first
	// endpoint is i's, the second j's. Nil = transport.PipeClock on Clock.
	Link func(i, j int) (transport.Endpoint, transport.Endpoint)
}

func (c *Config) fill() {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ElectionMin == 0 {
		c.ElectionMin = 15 * time.Millisecond
	}
	if c.ElectionMax <= c.ElectionMin {
		c.ElectionMax = 2 * c.ElectionMin
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 5 * time.Millisecond
	}
	if c.PipeCapacity == 0 {
		c.PipeCapacity = 1024
	}
}

// entry is one replicated log slot.
type entry struct {
	term      uint64
	ackWanted bool
	payload   []byte
}

// Message kinds (first byte of every inter-replica message).
const (
	msgVote       = 1 // term, candidate, lastIndex, lastTerm
	msgVoteResp   = 2 // term, voter, granted
	msgAppend     = 3 // term, leader, prevIndex, prevTerm, commit, n, frames…
	msgAppendResp = 4 // term, follower, granted(success), hint(match)
)

// message is a decoded inter-replica message. For msgAppend, entries holds
// the batch and a/b/c are prevIndex/prevTerm/leaderCommit; for msgVote, a/b
// are lastIndex/lastTerm; for responses, ok is granted/success and a is the
// voter's id echo or the follower's match hint.
type message struct {
	kind    uint8
	term    uint64
	from    int
	a, b, c uint64
	ok      bool
	entries []entry
	// firstIndex is the absolute index of entries[0] (msgAppend; sanity
	// cross-check against a = prevIndex).
	firstIndex uint64
}

func appendUv(b []byte, vs ...uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vs {
		b = append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	return b
}

func readUv(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("truncated varint")
	}
	return v, b[n:], nil
}

func encodeVote(term uint64, candidate int, lastIndex, lastTerm uint64) []byte {
	return appendUv([]byte{msgVote}, term, uint64(candidate), lastIndex, lastTerm)
}

func encodeVoteResp(term uint64, voter int, granted bool) []byte {
	g := uint64(0)
	if granted {
		g = 1
	}
	return appendUv([]byte{msgVoteResp}, term, uint64(voter), g)
}

func encodeAppendResp(term uint64, follower int, success bool, match uint64) []byte {
	s := uint64(0)
	if success {
		s = 1
	}
	return appendUv([]byte{msgAppendResp}, term, uint64(follower), s, match)
}

// encodeAppend serialises an AppendEntries batch; each entry rides as a
// wire.Frame with Seq = absolute log index and Epoch = entry term.
func encodeAppend(term uint64, leader int, prevIndex, prevTerm, commit uint64, firstIndex uint64, entries []entry) []byte {
	b := appendUv([]byte{msgAppend}, term, uint64(leader), prevIndex, prevTerm, commit, uint64(len(entries)))
	for i, e := range entries {
		b = wire.AppendFrame(b, &wire.Frame{
			Seq:       firstIndex + uint64(i),
			Epoch:     e.term,
			AckWanted: e.ackWanted,
			Payload:   e.payload,
		})
	}
	return b
}

// decodeMessage parses one inter-replica message. Malformed messages return
// an error and are dropped by the caller (counted, never acted on — a
// consensus replica must not let a mangled message move its state).
func decodeMessage(raw []byte) (*message, error) {
	if len(raw) == 0 {
		return nil, errors.New("empty message")
	}
	m := &message{kind: raw[0]}
	b := raw[1:]
	var err error
	next := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, b, err = readUv(b)
		return v
	}
	switch m.kind {
	case msgVote:
		m.term = next()
		m.from = int(next())
		m.a = next()
		m.b = next()
	case msgVoteResp:
		m.term = next()
		m.from = int(next())
		m.ok = next() == 1
	case msgAppendResp:
		m.term = next()
		m.from = int(next())
		m.ok = next() == 1
		m.a = next()
	case msgAppend:
		m.term = next()
		m.from = int(next())
		m.a = next() // prevIndex
		m.b = next() // prevTerm
		m.c = next() // leaderCommit
		n := next()
		if err != nil {
			return nil, err
		}
		if n > 1<<16 {
			return nil, errors.New("implausible entry count")
		}
		m.entries = make([]entry, 0, n)
		for i := uint64(0); i < n; i++ {
			f, rest, ferr := wire.DecodeFramePrefix(b)
			if ferr != nil {
				return nil, ferr
			}
			if i == 0 {
				m.firstIndex = f.Seq
			} else if f.Seq != m.firstIndex+i {
				return nil, errors.New("non-contiguous entry batch")
			}
			m.entries = append(m.entries, entry{term: f.Epoch, ackWanted: f.AckWanted, payload: f.Payload})
			b = rest
		}
		if m.firstIndex != 0 && m.firstIndex != m.a+1 {
			return nil, errors.New("entry batch does not follow prevIndex")
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("%d trailing bytes after entry batch", len(b))
		}
		return m, err
	default:
		return nil, fmt.Errorf("unknown message kind %d", m.kind)
	}
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after message", len(b))
	}
	return m, nil
}

// StaleProbe returns an encoded AppendEntries carrying term 0 — guaranteed
// stale against any live cluster (terms start at 1). Harnesses inject it via
// Replica.Inject to drive the stale-term rejection path from outside the
// protocol, standing in for a straggler from before a leadership change.
func StaleProbe(from int) []byte {
	return encodeAppend(0, from, 0, 0, 0, 1, nil)
}

// electionRNG derives the per-replica timeout stream: replicas fork from the
// shared seed so one Config.Seed pins the whole cluster's election schedule.
//
// The per-replica state must come from a MIXED output of the master stream,
// never from arithmetic on the seed: SplitMix64 is a Weyl sequence, so two
// states that differ by a multiple of the golden increment emit the same
// stream at a lag. (seed ^ (id+1)*golden did exactly that — survivors of a
// leader kill whose draw counts happened to be offset by the lag drew
// identical timeouts forever, a permanent split-vote livelock.)
func electionRNG(seed uint64, id int) *frand.RNG {
	master := frand.New(seed)
	var s uint64
	for i := 0; i <= id; i++ {
		s = master.Next()
	}
	return frand.New(s)
}
