package consensus

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/replication"
)

// Backend adapts a consensus leader to replication.CoordinationBackend: the
// primary's frame batches become replicated log entries, and an output
// commit blocks until majority commit in the leader's term — the §4 output
// rule with "backup ack" generalized to "quorum durable".
//
// Failure mapping: any Propose/WaitCommit failure (deposed leader, killed
// replica, commit timeout) latches Lost and wraps replication.ErrBackupLost,
// so the primary's existing degrade/abort machinery applies unchanged. That
// is deliberately pessimistic — a deposed leader's entry may still commit
// under its successor, but the old leader cannot know, which is exactly the
// output-commit uncertainty the recovery analysis already handles.
type Backend struct {
	r             *Replica
	commitTimeout time.Duration
	lost          atomic.Bool
	// cluster, when set, is owned by the backend and stopped on Close (the
	// ftvm convenience path); a harness that owns its own cluster passes
	// only the leader replica.
	cluster *Cluster
}

var _ replication.CoordinationBackend = (*Backend)(nil)

// NewBackend wraps leader r. commitTimeout bounds each output-commit wait
// (0 = wait forever; under a virtual clock prefer a bound so a partitioned
// leader surfaces as loss instead of parking the VM).
func NewBackend(r *Replica, commitTimeout time.Duration) *Backend {
	return &Backend{r: r, commitTimeout: commitTimeout}
}

// NewClusterBackend wraps the cluster's current ready leader and transfers
// cluster ownership to the backend: Close stops all replicas.
func NewClusterBackend(c *Cluster, commitTimeout time.Duration, waitLeader time.Duration) (*Backend, error) {
	leader, err := c.WaitLeader(waitLeader)
	if err != nil {
		return nil, err
	}
	b := NewBackend(leader, commitTimeout)
	b.cluster = c
	return b, nil
}

// Replica returns the leader this backend proposes through.
func (b *Backend) Replica() *Replica { return b.r }

// Cluster returns the owned cluster, if any.
func (b *Backend) Cluster() *Cluster { return b.cluster }

// Ship implements CoordinationBackend. The payload is copied by Propose, so
// the primary's reused flush buffer is safe.
func (b *Backend) Ship(payload []byte, commit bool) error {
	if b.lost.Load() {
		return fmt.Errorf("consensus ship: %w", replication.ErrBackupLost)
	}
	index, term, err := b.r.Propose(payload, commit)
	if err != nil {
		b.lost.Store(true)
		return fmt.Errorf("consensus propose: %w: %w", replication.ErrBackupLost, err)
	}
	if !commit {
		return nil
	}
	if err := b.r.WaitCommit(index, term, b.commitTimeout); err != nil {
		b.lost.Store(true)
		return fmt.Errorf("consensus commit: %w: %w", replication.ErrBackupLost, err)
	}
	return nil
}

// Epoch implements CoordinationBackend: the leader's term, which stamps
// every replicated frame's Epoch field.
func (b *Backend) Epoch() uint64 { return b.r.Term() }

// Lost implements CoordinationBackend (latched).
func (b *Backend) Lost() bool { return b.lost.Load() || b.r.Stopped() }

// Quiesce implements CoordinationBackend. The consensus path has no primary-
// side keepalive to stop — leader heartbeats live in the replica actor and
// must keep running through the final halt flush — so this is a no-op.
func (b *Backend) Quiesce() {}

// Close implements CoordinationBackend: stops the owned cluster, if any.
func (b *Backend) Close() error {
	if b.cluster != nil {
		b.cluster.Stop()
	}
	return nil
}
