package consensus

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	frand "repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
)

// maxBatch caps entries per AppendEntries message so one catch-up cannot
// produce an unbounded frame; the remainder rides the next round trip.
const maxBatch = 64

// Stats is a snapshot of one replica's protocol counters.
type Stats struct {
	ID          int
	Role        Role
	Term        uint64
	LogLen      int
	CommitIndex uint64
	Elections   uint64 // campaigns started
	Wins        uint64 // elections won
	StaleTerms  uint64 // messages rejected for carrying an older term
	Malformed   uint64 // messages dropped as undecodable
}

// Replica is one member of the replicated log. All protocol state lives
// behind mu and is mutated only by the main actor loop (run) plus the two
// entry points Propose and Inject; per-peer receiver goroutines merely queue
// raw messages into the inbox and signal the loop.
type Replica struct {
	id  int
	n   int
	clk clock.Clock
	rng *frand.RNG

	electMin, electMax time.Duration
	hbEvery            time.Duration

	// peers[j] is the endpoint to replica j (nil at j == id).
	peers []transport.Endpoint

	mu          sync.Mutex
	term        uint64
	votedFor    int // -1 = none this term
	role        Role
	leaderID    int // last known leader, -1 = unknown
	log         []entry
	commitIndex uint64
	// Leader-only volatile state.
	nextIndex  []uint64
	matchIndex []uint64
	// sentUpTo[j]: highest index already transmitted to j since the last
	// response or heartbeat tick; gates signal-driven re-sends so an
	// unresponsive peer is retried on the heartbeat timer, not on every wake.
	sentUpTo []uint64
	votes    []bool

	electionDeadline  time.Time
	heartbeatDeadline time.Time

	inbox         [][]byte
	commitWaiters []clock.WaitSlot
	stats         Stats

	slot    clock.WaitSlot
	stopped atomic.Bool
	done    *clock.Flag
}

type outMsg struct {
	to  int
	msg []byte
}

func newReplica(id int, cfg *Config, clk clock.Clock) *Replica {
	r := &Replica{
		id:       id,
		n:        cfg.Replicas,
		clk:      clk,
		rng:      electionRNG(cfg.Seed, id),
		electMin: cfg.ElectionMin,
		electMax: cfg.ElectionMax,
		hbEvery:  cfg.Heartbeat,
		peers:    make([]transport.Endpoint, cfg.Replicas),
		votedFor: -1,
		leaderID: -1,
		slot:     clk.NewWaitSlot(),
		done:     clock.NewFlag(clk),
	}
	r.stats.ID = id
	return r
}

// ID returns the replica's cluster index.
func (r *Replica) ID() int { return r.id }

// Term returns the replica's current term.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// Snapshot returns the replica's protocol counters.
func (r *Replica) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Role = r.role
	s.Term = r.term
	s.LogLen = len(r.log)
	s.CommitIndex = r.commitIndex
	return s
}

// Ready reports whether this replica is a leader that has committed an entry
// of its own term (the post-election barrier): only then is its committed
// prefix guaranteed to include every survivable older-term entry.
func (r *Replica) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.readyLocked()
}

func (r *Replica) readyLocked() bool {
	if r.role != Leader || r.commitIndex == 0 {
		return false
	}
	return r.log[r.commitIndex-1].term == r.term
}

// Stop kills the replica: fail-stop, like machine.Kill. Only atomics, the
// lock, and slot signals — safe to call from any actor (but not from inside
// a simnet send hook; use an atomic flag plus a poller there, as the sweep
// harness does).
func (r *Replica) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	r.mu.Lock()
	r.notifyCommitWaitersLocked()
	r.mu.Unlock()
	r.slot.Signal()
}

// Stopped reports whether the replica was killed (or finished shutting down).
func (r *Replica) Stopped() bool { return r.stopped.Load() }

// Inject queues a raw pre-encoded message directly into the replica's inbox,
// bypassing the transport — the harness uses it to probe stale-term and
// malformed-frame handling without standing up a rogue replica.
func (r *Replica) Inject(msg []byte) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	r.mu.Lock()
	r.inbox = append(r.inbox, cp)
	r.mu.Unlock()
	r.slot.Signal()
}

// Propose appends payload to the leader's log and wakes replication. It
// returns the entry's (index, term) claim ticket for WaitCommit. The payload
// is copied. ackWanted is recorded in the entry (and travels in the frame's
// AckWanted bit) so a replayer can see which batches were output commits.
func (r *Replica) Propose(payload []byte, ackWanted bool) (index, term uint64, err error) {
	if r.stopped.Load() {
		return 0, 0, ErrStopped
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != Leader {
		return 0, 0, fmt.Errorf("%w (replica %d is %s in term %d)", ErrNotLeader, r.id, r.role, r.term)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	r.log = append(r.log, entry{term: r.term, ackWanted: ackWanted, payload: cp})
	index, term = uint64(len(r.log)), r.term
	r.advanceCommitLocked() // single-replica cluster commits immediately
	r.slot.Signal()
	return index, term, nil
}

// WaitCommit blocks until the entry at (index, term) is committed on this
// replica, or fails: ErrLeadershipLost if the term moved on before commit
// (the entry may or may not survive — the proposer must assume not),
// ErrCommitTimeout if timeout > 0 elapses, ErrStopped on kill.
func (r *Replica) WaitCommit(index, term uint64, timeout time.Duration) error {
	slot := r.clk.NewWaitSlot()
	r.mu.Lock()
	r.commitWaiters = append(r.commitWaiters, slot)
	r.mu.Unlock()
	defer r.dropWaiter(slot)

	var deadline time.Time
	if timeout > 0 {
		deadline = r.clk.Now().Add(timeout)
	}
	for {
		r.mu.Lock()
		if r.commitIndex >= index {
			ok := uint64(len(r.log)) >= index && r.log[index-1].term == term
			r.mu.Unlock()
			if !ok {
				return fmt.Errorf("%w (entry %d/%d overwritten)", ErrLeadershipLost, index, term)
			}
			return nil
		}
		if r.stopped.Load() {
			r.mu.Unlock()
			return ErrStopped
		}
		if r.role != Leader || r.term != term {
			role, cur := r.role, r.term
			r.mu.Unlock()
			return fmt.Errorf("%w (now %s in term %d)", ErrLeadershipLost, role, cur)
		}
		r.mu.Unlock()

		park := time.Duration(0) // forever
		if timeout > 0 {
			park = deadline.Sub(r.clk.Now())
			if park <= 0 {
				return fmt.Errorf("%w (entry %d/%d after %v)", ErrCommitTimeout, index, term, timeout)
			}
		}
		if timedOut := slot.Park(park); timedOut {
			return fmt.Errorf("%w (entry %d/%d after %v)", ErrCommitTimeout, index, term, timeout)
		}
	}
}

func (r *Replica) dropWaiter(slot clock.WaitSlot) {
	r.mu.Lock()
	for i, w := range r.commitWaiters {
		if w == slot {
			r.commitWaiters = append(r.commitWaiters[:i], r.commitWaiters[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

func (r *Replica) notifyCommitWaitersLocked() {
	for _, w := range r.commitWaiters {
		w.Signal()
	}
}

// start spawns the replica's actors: one receiver per peer link plus the
// main protocol loop.
func (r *Replica) start() {
	for j, ep := range r.peers {
		if ep == nil {
			continue
		}
		ep := ep
		r.clk.Go(func() { r.receive(ep) })
		_ = j
	}
	r.clk.Go(r.run)
}

// receive pumps one peer link into the inbox. A dead replica stops reading
// (fail-stop: the process is gone, nobody drains its sockets).
func (r *Replica) receive(ep transport.Endpoint) {
	for {
		msg, err := ep.Recv(0)
		if err != nil {
			return
		}
		if r.stopped.Load() {
			return
		}
		r.mu.Lock()
		r.inbox = append(r.inbox, msg)
		r.mu.Unlock()
		r.slot.Signal()
	}
}

// Done blocks until the main loop has exited (endpoints closed).
func (r *Replica) Done() { r.done.Wait() }

// run is the main protocol actor: single-threaded over all state, woken by
// inbox signals, proposals, and its own election/heartbeat deadlines.
func (r *Replica) run() {
	defer r.done.Set()
	r.mu.Lock()
	r.resetElectionDeadlineLocked(r.clk.Now())
	r.mu.Unlock()
	for {
		if r.stopped.Load() {
			r.shutdown()
			return
		}
		now := r.clk.Now()
		r.mu.Lock()
		var out []outMsg
		// Deadlines first: an expired election timer runs a campaign; an
		// expired heartbeat tick retransmits to every peer (empty when caught
		// up, the pending suffix when not).
		if r.role == Leader {
			if !now.Before(r.heartbeatDeadline) {
				for j := range r.peers {
					if j == r.id {
						continue
					}
					r.sentUpTo[j] = r.nextIndex[j] - 1 // force retransmit
					if m := r.appendMsgLocked(j, true); m != nil {
						out = append(out, outMsg{to: j, msg: m})
					}
				}
				r.heartbeatDeadline = now.Add(r.hbEvery)
			}
		} else if !now.Before(r.electionDeadline) {
			out = append(out, r.campaignLocked(now)...)
		}
		// Drain and handle the inbox.
		msgs := r.inbox
		r.inbox = nil
		for _, raw := range msgs {
			out = append(out, r.handleLocked(now, raw)...)
		}
		// A leader with fresh proposals pushes them without waiting for the
		// tick; sentUpTo keeps this from re-spamming unresponsive peers.
		if r.role == Leader {
			for j := range r.peers {
				if j == r.id {
					continue
				}
				if m := r.appendMsgLocked(j, false); m != nil {
					out = append(out, outMsg{to: j, msg: m})
				}
			}
		}
		var deadline time.Time
		if r.role == Leader {
			deadline = r.heartbeatDeadline
		} else {
			deadline = r.electionDeadline
		}
		r.mu.Unlock()

		for _, o := range out {
			if ep := r.peers[o.to]; ep != nil {
				_ = ep.Send(o.msg) // dead links surface via timeouts, not errors
			}
		}

		park := deadline.Sub(r.clk.Now())
		if park <= 0 {
			continue // deadline already due; Park(<=0) would mean forever
		}
		r.slot.Park(park)
	}
}

// shutdown closes the replica's endpoints from its own actor (never from a
// hook or a foreign goroutine: simnet endpoint close takes the link lock).
func (r *Replica) shutdown() {
	for _, ep := range r.peers {
		if ep != nil {
			_ = ep.Close()
		}
	}
	r.mu.Lock()
	r.notifyCommitWaitersLocked()
	r.mu.Unlock()
}

func (r *Replica) resetElectionDeadlineLocked(now time.Time) {
	span := uint64(r.electMax - r.electMin)
	d := r.electMin + time.Duration(r.rng.Next()%span)
	r.electionDeadline = now.Add(d)
}

// campaignLocked starts an election: bump term, vote for self, solicit votes.
func (r *Replica) campaignLocked(now time.Time) []outMsg {
	r.term++
	r.role = Candidate
	r.votedFor = r.id
	r.leaderID = -1
	r.votes = make([]bool, r.n)
	r.votes[r.id] = true
	r.stats.Elections++
	r.resetElectionDeadlineLocked(now)
	if r.n == 1 {
		return r.winLocked(now)
	}
	lastIndex := uint64(len(r.log))
	var lastTerm uint64
	if lastIndex > 0 {
		lastTerm = r.log[lastIndex-1].term
	}
	var out []outMsg
	for j := range r.peers {
		if j == r.id {
			continue
		}
		out = append(out, outMsg{to: j, msg: encodeVote(r.term, r.id, lastIndex, lastTerm)})
	}
	return out
}

// winLocked transitions candidate → leader: init follower cursors, append
// the empty barrier entry in the new term, and push it everywhere at once.
func (r *Replica) winLocked(now time.Time) []outMsg {
	r.role = Leader
	r.leaderID = r.id
	r.stats.Wins++
	r.nextIndex = make([]uint64, r.n)
	r.matchIndex = make([]uint64, r.n)
	r.sentUpTo = make([]uint64, r.n)
	for j := range r.nextIndex {
		r.nextIndex[j] = uint64(len(r.log)) + 1
		r.sentUpTo[j] = uint64(len(r.log))
	}
	// Barrier: committing it (majority, own term) commits the whole prefix.
	r.log = append(r.log, entry{term: r.term})
	r.heartbeatDeadline = now.Add(r.hbEvery)
	r.advanceCommitLocked() // n == 1
	var out []outMsg
	for j := range r.peers {
		if j == r.id {
			continue
		}
		if m := r.appendMsgLocked(j, true); m != nil {
			out = append(out, outMsg{to: j, msg: m})
		}
	}
	return out
}

// stepDownLocked adopts a newer term as follower. It deliberately does NOT
// reset the election deadline: only granting a vote, accepting appends from
// the leader, or starting a campaign may do that. Resetting here livelocks
// elections — a candidate with a stale log can never win, yet its term bumps
// would forever push back the timer of the up-to-date replica that could.
func (r *Replica) stepDownLocked(term uint64, _ time.Time) {
	r.term = term
	r.role = Follower
	r.votedFor = -1
	r.leaderID = -1
	r.nextIndex, r.matchIndex, r.sentUpTo, r.votes = nil, nil, nil, nil
	// A deposed leader's in-flight output commits must fail, not hang.
	r.notifyCommitWaitersLocked()
}

// appendMsgLocked builds the next AppendEntries for peer j, or nil if there
// is nothing new and force is unset. force sends even an empty heartbeat.
func (r *Replica) appendMsgLocked(j int, force bool) []byte {
	last := uint64(len(r.log))
	if !force && last <= r.sentUpTo[j] {
		return nil
	}
	prev := r.nextIndex[j] - 1
	end := last
	if end > prev+maxBatch {
		end = prev + maxBatch
	}
	var prevTerm uint64
	if prev > 0 {
		prevTerm = r.log[prev-1].term
	}
	// The whole unacknowledged window prev+1..end rides each message (capped
	// by maxBatch); duplicates are idempotent on the follower.
	ents := r.log[prev:end]
	r.sentUpTo[j] = end
	return encodeAppend(r.term, r.id, prev, prevTerm, r.commitIndex, prev+1, ents)
}

// advanceCommitLocked recomputes the leader's commit index: the largest N
// replicated on a majority with log[N].term == currentTerm (§5.4.2's
// own-term-only rule — older-term entries commit transitively).
func (r *Replica) advanceCommitLocked() {
	if r.role != Leader {
		return
	}
	last := uint64(len(r.log))
	for n := last; n > r.commitIndex; n-- {
		if r.log[n-1].term != r.term {
			break // older-term entry: only commits via a newer one
		}
		count := 1 // self
		for j := range r.peers {
			if j != r.id && r.matchIndex != nil && r.matchIndex[j] >= n {
				count++
			}
		}
		if count > r.n/2 {
			r.commitIndex = n
			r.notifyCommitWaitersLocked()
			break
		}
	}
}

// handleLocked processes one raw inbox message and returns replies to send.
func (r *Replica) handleLocked(now time.Time, raw []byte) []outMsg {
	m, err := decodeMessage(raw)
	if err != nil {
		r.stats.Malformed++
		return nil
	}
	if m.from < 0 || m.from >= r.n || m.from == r.id {
		r.stats.Malformed++
		return nil
	}
	// Universal term rules: newer term → step down first; the per-kind
	// handlers below then run in the updated state.
	if m.term > r.term {
		r.stepDownLocked(m.term, now)
	}
	switch m.kind {
	case msgVote:
		return r.handleVoteLocked(now, m)
	case msgVoteResp:
		return r.handleVoteRespLocked(now, m)
	case msgAppend:
		return r.handleAppendLocked(now, m)
	case msgAppendResp:
		return r.handleAppendRespLocked(m)
	}
	return nil
}

func (r *Replica) handleVoteLocked(now time.Time, m *message) []outMsg {
	if m.term < r.term {
		r.stats.StaleTerms++
		return []outMsg{{to: m.from, msg: encodeVoteResp(r.term, r.id, false)}}
	}
	// m.term == r.term here (newer terms already adopted above).
	lastIndex := uint64(len(r.log))
	var lastTerm uint64
	if lastIndex > 0 {
		lastTerm = r.log[lastIndex-1].term
	}
	upToDate := m.b > lastTerm || (m.b == lastTerm && m.a >= lastIndex)
	grant := (r.votedFor == -1 || r.votedFor == m.from) && upToDate && r.role == Follower
	if grant {
		r.votedFor = m.from
		r.resetElectionDeadlineLocked(now)
	}
	return []outMsg{{to: m.from, msg: encodeVoteResp(r.term, r.id, grant)}}
}

func (r *Replica) handleVoteRespLocked(now time.Time, m *message) []outMsg {
	if r.role != Candidate || m.term != r.term || !m.ok {
		if m.term < r.term {
			r.stats.StaleTerms++
		}
		return nil
	}
	r.votes[m.from] = true
	count := 0
	for _, v := range r.votes {
		if v {
			count++
		}
	}
	if count > r.n/2 {
		return r.winLocked(now) // initial barrier broadcast
	}
	return nil
}

func (r *Replica) handleAppendLocked(now time.Time, m *message) []outMsg {
	if m.term < r.term {
		r.stats.StaleTerms++
		return []outMsg{{to: m.from, msg: encodeAppendResp(r.term, r.id, false, 0)}}
	}
	// Same term: a candidate yields to the established leader.
	if r.role != Follower {
		r.role = Follower
		r.votes = nil
		r.nextIndex, r.matchIndex, r.sentUpTo = nil, nil, nil
	}
	r.leaderID = m.from
	r.resetElectionDeadlineLocked(now)

	prev, prevTerm, leaderCommit := m.a, m.b, m.c
	last := uint64(len(r.log))
	if prev > last {
		// Missing the prefix entirely: hint our last index so the leader
		// jumps nextIndex straight there.
		return []outMsg{{to: m.from, msg: encodeAppendResp(r.term, r.id, false, last)}}
	}
	if prev > 0 && r.log[prev-1].term != prevTerm {
		// Conflicting entry at prev: drop it and everything after.
		r.log = r.log[:prev-1]
		return []outMsg{{to: m.from, msg: encodeAppendResp(r.term, r.id, false, prev - 1)}}
	}
	// Append, overwriting divergent suffixes.
	for i, e := range m.entries {
		idx := prev + uint64(i) + 1
		if idx <= uint64(len(r.log)) {
			if r.log[idx-1].term == e.term {
				continue // already have it
			}
			r.log = r.log[:idx-1]
		}
		r.log = append(r.log, e)
	}
	match := prev + uint64(len(m.entries))
	if leaderCommit > r.commitIndex {
		ci := leaderCommit
		if ci > match {
			ci = match
		}
		if ci > r.commitIndex {
			r.commitIndex = ci
			r.notifyCommitWaitersLocked()
		}
	}
	return []outMsg{{to: m.from, msg: encodeAppendResp(r.term, r.id, true, match)}}
}

func (r *Replica) handleAppendRespLocked(m *message) []outMsg {
	if r.role != Leader || m.term != r.term {
		if m.term < r.term {
			r.stats.StaleTerms++
		}
		return nil
	}
	j := m.from
	if m.ok {
		if m.a > r.matchIndex[j] {
			r.matchIndex[j] = m.a
		}
		if m.a+1 > r.nextIndex[j] {
			r.nextIndex[j] = m.a + 1
		}
		if r.sentUpTo[j] < r.matchIndex[j] {
			r.sentUpTo[j] = r.matchIndex[j]
		}
		r.advanceCommitLocked()
		// More to stream? The post-handle pass in run() sends it.
		return nil
	}
	// Rejected: backtrack to the follower's hint and resend immediately.
	ni := m.a + 1
	if ni < 1 {
		ni = 1
	}
	if ni < r.nextIndex[j] {
		r.nextIndex[j] = ni
	}
	r.sentUpTo[j] = r.nextIndex[j] - 1
	if msg := r.appendMsgLocked(j, true); msg != nil {
		return []outMsg{{to: j, msg: msg}}
	}
	return nil
}
