package consensus

import (
	"fmt"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Cluster owns a fixed set of replicas and the full mesh of links between
// them. It is a harness object: production shape would place replicas in
// separate processes, but the protocol code neither knows nor cares.
type Cluster struct {
	clk      clock.Clock
	replicas []*Replica
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.fill()
	if cfg.Replicas < 1 || cfg.Replicas%2 == 0 {
		return nil, fmt.Errorf("consensus: replica count %d must be odd and positive", cfg.Replicas)
	}
	clk := clock.Or(cfg.Clock)
	c := &Cluster{clk: clk, replicas: make([]*Replica, cfg.Replicas)}
	for i := range c.replicas {
		c.replicas[i] = newReplica(i, &cfg, clk)
	}
	for i := 0; i < cfg.Replicas; i++ {
		for j := i + 1; j < cfg.Replicas; j++ {
			var ei, ej transport.Endpoint
			if cfg.Link != nil {
				ei, ej = cfg.Link(i, j)
			} else {
				ei, ej = transport.PipeClock(cfg.PipeCapacity, clk)
			}
			c.replicas[i].peers[j] = ei
			c.replicas[j].peers[i] = ej
		}
	}
	return c, nil
}

// Start spawns every replica's actors.
func (c *Cluster) Start() {
	for _, r := range c.replicas {
		r.start()
	}
}

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica returns member i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// Leader returns the current ready leader (barrier committed), if any.
func (c *Cluster) Leader() (*Replica, bool) {
	for _, r := range c.replicas {
		if !r.Stopped() && r.Ready() {
			return r, true
		}
	}
	return nil, false
}

// WaitLeader blocks until some live replica is a ready leader, polling on
// the injected clock (deterministic under the virtual clock). timeout <= 0
// waits forever.
func (c *Cluster) WaitLeader(timeout time.Duration) (*Replica, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = c.clk.Now().Add(timeout)
	}
	for {
		if r, ok := c.Leader(); ok {
			return r, nil
		}
		if timeout > 0 && !c.clk.Now().Before(deadline) {
			return nil, fmt.Errorf("consensus: no leader within %v", timeout)
		}
		c.clk.Sleep(500 * time.Microsecond)
	}
}

// Kill fail-stops replica i.
func (c *Cluster) Kill(i int) { c.replicas[i].Stop() }

// Stop kills every replica and waits for their actors to exit, so a virtual
// clock harness is left with no parked consensus goroutines.
func (c *Cluster) Stop() {
	for _, r := range c.replicas {
		r.Stop()
	}
	for _, r := range c.replicas {
		r.Done()
	}
}

// CommittedPayloads returns copies of replica i's committed entry payloads
// in (from, commitIndex] — barrier entries skipped — plus the new commit
// index, so a poller (the ftvm kill trigger) can count records incrementally
// without re-decoding the whole log each tick.
func (c *Cluster) CommittedPayloads(i int, from uint64) ([][]byte, uint64) {
	r := c.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	commit := r.commitIndex
	var out [][]byte
	for idx := from; idx < commit; idx++ {
		e := r.log[idx]
		if len(e.payload) == 0 {
			continue
		}
		cp := make([]byte, len(e.payload))
		copy(cp, e.payload)
		out = append(out, cp)
	}
	return out, commit
}

// CommittedRecords decodes replica i's committed prefix back into the record
// stream a Backup can load: each committed entry's payload is a wire record
// batch (barrier entries are empty and decode to nothing). This is the
// consensus analogue of Backup.Store().Records().
func (c *Cluster) CommittedRecords(i int) ([]wire.Record, error) {
	r := c.replicas[i]
	r.mu.Lock()
	commit := r.commitIndex
	entries := make([]entry, commit)
	copy(entries, r.log[:commit])
	r.mu.Unlock()
	var out []wire.Record
	for idx, e := range entries {
		if len(e.payload) == 0 {
			continue // election barrier
		}
		recs, err := wire.DecodeAll(e.payload)
		if err != nil {
			return nil, fmt.Errorf("consensus: committed entry %d undecodable: %w", idx+1, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}
