// Package native implements the FTVM native-method interface — the analog of
// JNI (§3.2, §4.1). Native methods are Go functions registered by signature
// and annotated with the properties replica coordination needs to know:
// whether the method is a non-deterministic command (its results must be
// logged by the primary and adopted by the backup), whether it is an output
// command (the primary must reach an output commit point first), whether it
// must be re-invoked during recovery to reproduce volatile environment
// state, and which side-effect handler manages it.
package native

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/env"
	"repro/internal/heap"
)

// Ctx is the view of the VM a native method executes against. Natives run
// outside the bytecode state machine (they are "beyond the purview of the
// JVM") but may call back in through this interface; restriction R3 requires
// such callbacks to be deterministic.
type Ctx interface {
	// Heap returns the VM's object heap.
	Heap() *heap.Heap
	// Process returns the VM's volatile environment attachment.
	Process() *env.Process
	// Environment returns the shared environment.
	Environment() *env.Env
	// ThreadID returns the calling thread's virtual id (stable across
	// replicas).
	ThreadID() string
	// NextOutputSeq returns the calling thread's next output sequence
	// number (deterministic; used for exactly-once device writes).
	NextOutputSeq() uint64
	// MonitorEnter acquires the monitor of r on behalf of the calling
	// thread from inside a native method (must not contend; used to model
	// natives that lock, exercising the mon_cnt replay path of §4.2).
	MonitorEnter(r heap.Ref) error
	// MonitorExit releases the monitor of r.
	MonitorExit(r heap.Ref) error
	// RunGC synchronously collects garbage (the System.gc analog).
	RunGC()
	// HandlerState returns mutable state installed by the named
	// side-effect handler (nil when the handler is not active, e.g. during
	// normal primary execution).
	HandlerState(name string) any
}

// Func is the implementation of a native method. A returned error is a fatal
// run-time-environment failure (R0) and aborts the VM; recoverable
// conditions (file not found, empty channel) are reported to the program
// through status return values instead, mirroring how the paper logs
// "return values and the exceptions raised" as one unit.
type Func func(ctx Ctx, args []heap.Value) ([]heap.Value, error)

// Def describes one native method.
type Def struct {
	// Sig is the method signature ("class.name" form) used as the registry
	// key — the paper's class name + method name + argument types.
	Sig string
	// Arity is the number of argument values.
	Arity int
	// Returns is the number of result values (0 or 1).
	Returns int
	// NonDeterministic marks commands whose results are not a function of
	// the read set: the primary logs results, the backup adopts them.
	NonDeterministic bool
	// Output marks output commands: the primary must flush the log and wait
	// for the backup's acknowledgement before performing them.
	Output bool
	// ReinvokeOnReplay marks methods the backup must actually invoke during
	// recovery to reproduce volatile environment state (discarding the
	// generated results in favour of the logged ones when NonDeterministic).
	ReinvokeOnReplay bool
	// Handler names the side-effect handler managing this method ("" if
	// none).
	Handler string
	// UsesOutputSeq marks output natives that consume exactly one
	// per-thread output sequence number per invocation (via
	// Ctx.NextOutputSeq). When the backup skips such an invocation during
	// recovery it must advance the sequence number symmetrically.
	UsesOutputSeq bool
	// AcquiresLocks marks natives that may acquire monitors through
	// Ctx.MonitorEnter (§4.2: lock operations transfer control back into
	// the VM even from native code). Such natives must perform no side
	// effects before their first acquisition: on contention (or a replay
	// gate) the VM blocks the thread and re-executes the whole native once
	// the monitor becomes available. They must not also be intercepted.
	AcquiresLocks bool
	// Fn is the implementation.
	Fn Func
}

// Errors returned by the registry.
var (
	ErrDuplicateNative = errors.New("duplicate native method")
	ErrUnknownNative   = errors.New("unknown native method")
	ErrBadArgs         = errors.New("native method argument mismatch")
)

// Registry is the table of native methods. The subset with NonDeterministic
// set corresponds to the paper's hash table of non-deterministic native
// signatures (§4.1).
type Registry struct {
	defs map[string]*Def
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]*Def)}
}

// Register adds a native method definition.
func (r *Registry) Register(d *Def) error {
	if d.Sig == "" || d.Fn == nil {
		return fmt.Errorf("register native: empty signature or nil fn")
	}
	if _, dup := r.defs[d.Sig]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateNative, d.Sig)
	}
	r.defs[d.Sig] = d
	return nil
}

// MustRegister registers d and panics on a duplicate (program-startup use).
func (r *Registry) MustRegister(d *Def) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup resolves a signature.
func (r *Registry) Lookup(sig string) (*Def, bool) {
	d, ok := r.defs[sig]
	return d, ok
}

// Sigs returns all registered signatures, sorted.
func (r *Registry) Sigs() []string {
	out := make([]string, 0, len(r.defs))
	for s := range r.defs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NonDeterministicSigs returns the signatures of non-deterministic natives,
// sorted — the contents of the paper's interception hash table.
func (r *Registry) NonDeterministicSigs() []string {
	var out []string
	for s, d := range r.defs {
		if d.NonDeterministic {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Intercepted reports whether sig requires interception by the replication
// machinery (non-deterministic, output, or handler-managed).
func (r *Registry) Intercepted(sig string) bool {
	d, ok := r.defs[sig]
	if !ok {
		return false
	}
	return d.NonDeterministic || d.Output || d.Handler != ""
}
