package native

import (
	"errors"
	"testing"

	"repro/internal/env"
	"repro/internal/heap"
)

// fakeCtx satisfies Ctx for direct native invocation in tests.
type fakeCtx struct {
	h   *heap.Heap
	e   *env.Env
	p   *env.Process
	seq uint64
	tid string
	st  map[string]any
	gcs int
}

func newFakeCtx() *fakeCtx {
	e := env.New(1)
	return &fakeCtx{h: heap.New(), e: e, p: e.Attach(), tid: "0", st: map[string]any{}}
}

func (c *fakeCtx) Heap() *heap.Heap            { return c.h }
func (c *fakeCtx) Process() *env.Process       { return c.p }
func (c *fakeCtx) Environment() *env.Env       { return c.e }
func (c *fakeCtx) ThreadID() string            { return c.tid }
func (c *fakeCtx) NextOutputSeq() uint64       { c.seq++; return c.seq }
func (c *fakeCtx) MonitorEnter(heap.Ref) error { return nil }
func (c *fakeCtx) MonitorExit(heap.Ref) error  { return nil }
func (c *fakeCtx) RunGC()                      { c.gcs++ }
func (c *fakeCtx) HandlerState(n string) any   { return c.st[n] }

func (c *fakeCtx) str(t *testing.T, s string) heap.Value {
	t.Helper()
	r, err := c.h.AllocString(s)
	if err != nil {
		t.Fatal(err)
	}
	return heap.RefVal(r)
}

func call(t *testing.T, c *fakeCtx, sig string, args ...heap.Value) []heap.Value {
	t.Helper()
	def, ok := StdLib().Lookup(sig)
	if !ok {
		t.Fatalf("no native %s", sig)
	}
	out, err := def.Fn(c, args)
	if err != nil {
		t.Fatalf("%s: %v", sig, err)
	}
	return out
}

func TestRegistryCatalog(t *testing.T) {
	r := StdLib()
	if len(r.Sigs()) < 20 {
		t.Fatalf("stdlib too small: %v", r.Sigs())
	}
	nd := r.NonDeterministicSigs()
	if len(nd) == 0 || len(nd) >= 100 {
		t.Fatalf("non-deterministic natives = %d (paper: fewer than 100)", len(nd))
	}
	if !r.Intercepted("io.print") || !r.Intercepted("sys.clock") || !r.Intercepted("fs.open") {
		t.Fatal("interception flags wrong")
	}
	if r.Intercepted("math.sqrt") || r.Intercepted("sys.threadid") {
		t.Fatal("deterministic natives should not be intercepted")
	}
	if err := r.Register(&Def{Sig: "io.print", Arity: 1, Fn: func(Ctx, []heap.Value) ([]heap.Value, error) { return nil, nil }}); !errors.Is(err, ErrDuplicateNative) {
		t.Fatalf("duplicate registration: %v", err)
	}
	if err := r.Register(&Def{}); err == nil {
		t.Fatal("empty def accepted")
	}
}

func TestConsoleAndChannelNatives(t *testing.T) {
	c := newFakeCtx()
	call(t, c, "io.print", c.str(t, "line1"))
	call(t, c, "io.print", c.str(t, "line2"))
	lines := c.e.Console().Lines()
	if len(lines) != 2 || lines[0] != "line1" {
		t.Fatalf("console = %v", lines)
	}
	call(t, c, "chan.send", c.str(t, "msg"))
	if sent := c.e.Messages().Sent(); len(sent) != 1 || sent[0] != "msg" {
		t.Fatalf("sent = %v", sent)
	}
	c.e.Messages().Inject("inbound")
	out := call(t, c, "chan.recv")
	s, err := c.h.StringAt(out[0].R)
	if err != nil || s != "inbound" {
		t.Fatalf("recv = %q (%v)", s, err)
	}
	out = call(t, c, "chan.recv")
	if !out[0].IsNull() {
		t.Fatalf("empty recv = %v", out[0])
	}
}

func TestFileNatives(t *testing.T) {
	c := newFakeCtx()
	out := call(t, c, "fs.open", c.str(t, "f.txt"), heap.IntVal(1))
	fd := out[0].I
	if fd < 0 {
		t.Fatalf("open failed: %d", fd)
	}
	if out := call(t, c, "fs.write", heap.IntVal(fd), c.str(t, "abcdef")); out[0].I != 6 {
		t.Fatalf("write = %v", out)
	}
	if out := call(t, c, "fs.seek", heap.IntVal(fd), heap.IntVal(2), heap.IntVal(0)); out[0].I != 2 {
		t.Fatalf("seek = %v", out)
	}
	out = call(t, c, "fs.read", heap.IntVal(fd), heap.IntVal(3))
	s, _ := c.h.StringAt(out[0].R)
	if s != "cde" {
		t.Fatalf("read = %q", s)
	}
	if out := call(t, c, "fs.tell", heap.IntVal(fd)); out[0].I != 5 {
		t.Fatalf("tell = %v", out)
	}
	if out := call(t, c, "fs.size", c.str(t, "f.txt")); out[0].I != 6 {
		t.Fatalf("size = %v", out)
	}
	if out := call(t, c, "fs.exists", c.str(t, "f.txt")); out[0].I != 1 {
		t.Fatalf("exists = %v", out)
	}
	call(t, c, "fs.close", heap.IntVal(fd))
	if out := call(t, c, "fs.delete", c.str(t, "f.txt")); out[0].I != 1 {
		t.Fatalf("delete = %v", out)
	}
	if out := call(t, c, "fs.delete", c.str(t, "f.txt")); out[0].I != 0 {
		t.Fatalf("second delete = %v (idempotent replay returns 0)", out)
	}
	// Failure paths return status values, not errors (recoverable for the
	// program; only environment/VM breakage is fatal).
	if out := call(t, c, "fs.open", c.str(t, "missing"), heap.IntVal(0)); out[0].I != -1 {
		t.Fatalf("open missing = %v", out)
	}
	if out := call(t, c, "fs.write", heap.IntVal(999), c.str(t, "x")); out[0].I != -1 {
		t.Fatalf("write bad fd = %v", out)
	}
}

func TestFDTranslationHook(t *testing.T) {
	c := newFakeCtx()
	out := call(t, c, "fs.open", c.str(t, "real.txt"), heap.IntVal(1))
	realFD := out[0].I
	call(t, c, "fs.write", heap.IntVal(realFD), c.str(t, "data"))
	// Install a translator mapping logged fd 1000 -> realFD.
	c.st[HandlerFile] = mapTranslator{1000: realFD}
	if out := call(t, c, "fs.tell", heap.IntVal(1000)); out[0].I != 4 {
		t.Fatalf("translated tell = %v", out)
	}
}

type mapTranslator map[int64]int64

func (m mapTranslator) Real(logged int64) (int64, error) {
	if r, ok := m[logged]; ok {
		return r, nil
	}
	return logged, nil
}

func TestMathNatives(t *testing.T) {
	c := newFakeCtx()
	if out := call(t, c, "math.sqrt", heap.FloatVal(16)); out[0].F != 4 {
		t.Fatalf("sqrt = %v", out)
	}
	if out := call(t, c, "math.pow", heap.FloatVal(2), heap.FloatVal(8)); out[0].F != 256 {
		t.Fatalf("pow = %v", out)
	}
	if out := call(t, c, "math.floor", heap.FloatVal(2.9)); out[0].F != 2 {
		t.Fatalf("floor = %v", out)
	}
	if _, err := mustDef(t, "math.sqrt").Fn(c, []heap.Value{heap.IntVal(4)}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("int arg: %v", err)
	}
}

func mustDef(t *testing.T, sig string) *Def {
	t.Helper()
	d, ok := StdLib().Lookup(sig)
	if !ok {
		t.Fatal(sig)
	}
	return d
}

func TestSysNatives(t *testing.T) {
	c := newFakeCtx()
	a := call(t, c, "sys.clock")[0].I
	b := call(t, c, "sys.clock")[0].I
	if b <= a {
		t.Fatalf("clock not increasing: %d, %d", a, b)
	}
	call(t, c, "sys.gc")
	if c.gcs != 1 {
		t.Fatal("sys.gc did not reach the VM")
	}
	out := call(t, c, "sys.threadid")
	s, _ := c.h.StringAt(out[0].R)
	if s != "0" {
		t.Fatalf("threadid = %q", s)
	}
}

func TestSoftWeakRefNatives(t *testing.T) {
	c := newFakeCtx()
	obj, _ := c.h.AllocIntArr(1)
	holder := call(t, c, "ref.soft", heap.RefVal(obj))[0]
	got := call(t, c, "ref.softget", holder)[0]
	if got.R != obj {
		t.Fatalf("softget = %v", got)
	}
	wholder := call(t, c, "ref.weak", heap.RefVal(obj))[0]
	if got := call(t, c, "ref.weakget", wholder)[0]; got.R != obj {
		t.Fatalf("weakget = %v", got)
	}
}
