package native

import (
	"fmt"
	"math"

	"repro/internal/heap"
)

// Handler names used by the standard library.
const (
	HandlerFile    = "file"
	HandlerChannel = "channel"
	HandlerDevices = "devices"
)

// FDTranslator translates file descriptors that a program obtained from a
// now-failed primary into descriptors live in the recovering backup's
// process. The file side-effect handler installs an implementation as
// HandlerState(HandlerFile); during normal primary execution no handler
// state exists and descriptors pass through untranslated. Translation may
// materialise the descriptor lazily (open the file and seek to the offset
// recovered from the log) — the paper's restore path (§4.4).
type FDTranslator interface {
	Real(logged int64) (int64, error)
}

func realFD(ctx Ctx, fd int64) (int64, error) {
	if st := ctx.HandlerState(HandlerFile); st != nil {
		if tr, ok := st.(FDTranslator); ok {
			return tr.Real(fd)
		}
	}
	return fd, nil
}

func argInt(args []heap.Value, i int) (int64, error) {
	if i >= len(args) || args[i].Kind != heap.KindInt {
		return 0, fmt.Errorf("%w: arg %d must be int", ErrBadArgs, i)
	}
	return args[i].I, nil
}

func argFloat(args []heap.Value, i int) (float64, error) {
	if i >= len(args) || args[i].Kind != heap.KindFloat {
		return 0, fmt.Errorf("%w: arg %d must be float", ErrBadArgs, i)
	}
	return args[i].F, nil
}

func argRef(args []heap.Value, i int) (heap.Ref, error) {
	if i >= len(args) || args[i].Kind != heap.KindRef {
		return 0, fmt.Errorf("%w: arg %d must be ref", ErrBadArgs, i)
	}
	return args[i].R, nil
}

func argStr(ctx Ctx, args []heap.Value, i int) (string, error) {
	r, err := argRef(args, i)
	if err != nil {
		return "", err
	}
	return ctx.Heap().StringAt(r)
}

func strResult(ctx Ctx, s string) ([]heap.Value, error) {
	r, err := ctx.Heap().AllocString(s)
	if err != nil {
		return nil, err
	}
	return []heap.Value{heap.RefVal(r)}, nil
}

func intResult(v int64) []heap.Value { return []heap.Value{heap.IntVal(v)} }

// StdLib returns a registry populated with the FTVM standard-library natives
// — the analog of the JRE's native methods, already categorised as in §4.1
// (the non-deterministic subset is what the interception hash table holds).
func StdLib() *Registry {
	r := NewRegistry()

	// Console output: exactly-once via per-thread sequence numbers, so
	// replaying it during recovery is idempotent.
	r.MustRegister(&Def{
		Sig: "io.print", Arity: 1, Output: true, ReinvokeOnReplay: true, UsesOutputSeq: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			s, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			ctx.Environment().Console().Write(ctx.ThreadID(), ctx.NextOutputSeq(), s)
			return nil, nil
		},
	})

	// Message channel: sends are testable outputs managed by the channel
	// side-effect handler; receives are non-deterministic inputs.
	r.MustRegister(&Def{
		Sig: "chan.send", Arity: 1, Output: true, Handler: HandlerChannel, UsesOutputSeq: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			s, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			ctx.Environment().Messages().Send(ctx.ThreadID(), ctx.NextOutputSeq(), s)
			return nil, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "chan.recv", Arity: 0, Returns: 1, NonDeterministic: true,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			msg, ok := ctx.Environment().Messages().Recv()
			if !ok {
				return []heap.Value{heap.Null()}, nil
			}
			return strResult(ctx, msg)
		},
	})
	r.MustRegister(&Def{
		Sig: "chan.len", Arity: 0, Returns: 1, NonDeterministic: true,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			return intResult(int64(ctx.Environment().Messages().Len())), nil
		},
	})

	// Clock and entropy: pure non-deterministic inputs.
	r.MustRegister(&Def{
		Sig: "sys.clock", Arity: 0, Returns: 1, NonDeterministic: true, Handler: HandlerDevices,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			return intResult(ctx.Environment().Clock().Now()), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "sys.rand", Arity: 0, Returns: 1, NonDeterministic: true, Handler: HandlerDevices,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			return intResult(ctx.Environment().Entropy().Next()), nil
		},
	})

	// Deterministic system helpers.
	r.MustRegister(&Def{
		Sig: "sys.gc", Arity: 0,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			ctx.RunGC()
			return nil, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "sys.threadid", Arity: 0, Returns: 1,
		Fn: func(ctx Ctx, _ []heap.Value) ([]heap.Value, error) {
			return strResult(ctx, ctx.ThreadID())
		},
	})
	// sys.locktouch acquires and releases a monitor from inside a native
	// method — control transfers back into the VM on monitor operations
	// even when they originate in native code, which is what makes the
	// mon_cnt bookkeeping of §4.2 possible.
	r.MustRegister(&Def{
		Sig: "sys.locktouch", Arity: 1, AcquiresLocks: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			ref, err := argRef(args, 0)
			if err != nil {
				return nil, err
			}
			if err := ctx.MonitorEnter(ref); err != nil {
				return nil, err
			}
			return nil, ctx.MonitorExit(ref)
		},
	})

	// File I/O: managed by the file side-effect handler. These natives are
	// NOT re-invoked during recovery: file contents are stable environment
	// state that survived the primary, so the handler instead feeds logged
	// results to the program, compresses write records into per-descriptor
	// offsets (receive), and re-opens descriptors at the recovered offsets
	// when they are next used (restore).
	r.MustRegister(&Def{
		Sig: "fs.open", Arity: 2, Returns: 1,
		NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			name, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			create, err := argInt(args, 1)
			if err != nil {
				return nil, err
			}
			fd, err := ctx.Process().Open(name, create != 0)
			if err != nil {
				return intResult(-1), nil
			}
			return intResult(fd), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.write", Arity: 2, Returns: 1,
		Output: true, NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			fd, err := argInt(args, 0)
			if err != nil {
				return nil, err
			}
			data, err := argStr(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			rfd, err := realFD(ctx, fd)
			if err != nil {
				return intResult(-1), nil
			}
			n, err := ctx.Process().Write(rfd, []byte(data))
			if err != nil {
				return intResult(-1), nil
			}
			return intResult(n), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.read", Arity: 2, Returns: 1,
		NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			fd, err := argInt(args, 0)
			if err != nil {
				return nil, err
			}
			n, err := argInt(args, 1)
			if err != nil {
				return nil, err
			}
			rfd, err := realFD(ctx, fd)
			if err != nil {
				return []heap.Value{heap.Null()}, nil
			}
			b, err := ctx.Process().Read(rfd, n)
			if err != nil {
				return []heap.Value{heap.Null()}, nil
			}
			return strResult(ctx, string(b))
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.seek", Arity: 3, Returns: 1,
		NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			fd, err := argInt(args, 0)
			if err != nil {
				return nil, err
			}
			off, err := argInt(args, 1)
			if err != nil {
				return nil, err
			}
			whence, err := argInt(args, 2)
			if err != nil {
				return nil, err
			}
			rfd, err := realFD(ctx, fd)
			if err != nil {
				return intResult(-1), nil
			}
			pos, err := ctx.Process().SeekTo(rfd, off, int(whence))
			if err != nil {
				return intResult(-1), nil
			}
			return intResult(pos), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.tell", Arity: 1, Returns: 1,
		NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			fd, err := argInt(args, 0)
			if err != nil {
				return nil, err
			}
			rfd, err := realFD(ctx, fd)
			if err != nil {
				return intResult(-1), nil
			}
			pos, err := ctx.Process().Tell(rfd)
			if err != nil {
				return intResult(-1), nil
			}
			return intResult(pos), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.close", Arity: 1, NonDeterministic: true, Handler: HandlerFile,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			fd, err := argInt(args, 0)
			if err != nil {
				return nil, err
			}
			rfd, err := realFD(ctx, fd)
			if err != nil {
				return nil, nil
			}
			// Closing an already-absent descriptor is harmless (replay).
			_ = ctx.Process().Close(rfd)
			return nil, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.size", Arity: 1, Returns: 1, NonDeterministic: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			name, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			n, err := ctx.Environment().FileSize(name)
			if err != nil {
				return intResult(-1), nil
			}
			return intResult(n), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.exists", Arity: 1, Returns: 1, NonDeterministic: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			name, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			return intResult(boolInt(ctx.Environment().FileExists(name))), nil
		},
	})
	r.MustRegister(&Def{
		Sig: "fs.delete", Arity: 1, Returns: 1,
		Output: true, NonDeterministic: true, ReinvokeOnReplay: true,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			name, err := argStr(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			if err := ctx.Environment().DeleteFile(name); err != nil {
				return intResult(0), nil // idempotent replay
			}
			return intResult(1), nil
		},
	})

	// Deterministic math natives (never intercepted).
	mathUnary := func(sig string, f func(float64) float64) {
		r.MustRegister(&Def{
			Sig: sig, Arity: 1, Returns: 1,
			Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
				x, err := argFloat(args, 0)
				if err != nil {
					return nil, err
				}
				return []heap.Value{heap.FloatVal(f(x))}, nil
			},
		})
	}
	mathUnary("math.sqrt", math.Sqrt)
	mathUnary("math.sin", math.Sin)
	mathUnary("math.cos", math.Cos)
	mathUnary("math.exp", math.Exp)
	mathUnary("math.log", math.Log)
	mathUnary("math.floor", math.Floor)
	mathUnary("math.abs", math.Abs)
	r.MustRegister(&Def{
		Sig: "math.pow", Arity: 2, Returns: 1,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			x, err := argFloat(args, 0)
			if err != nil {
				return nil, err
			}
			y, err := argFloat(args, 1)
			if err != nil {
				return nil, err
			}
			return []heap.Value{heap.FloatVal(math.Pow(x, y))}, nil
		},
	})

	// Soft/weak reference natives (§4.3).
	r.MustRegister(&Def{
		Sig: "ref.soft", Arity: 1, Returns: 1,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			obj, err := argRef(args, 0)
			if err != nil {
				return nil, err
			}
			holder, err := ctx.Heap().AllocRecord(-1, 0, false)
			if err != nil {
				return nil, err
			}
			ctx.Heap().RegisterSoftRef(holder, obj)
			return []heap.Value{heap.RefVal(holder)}, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "ref.softget", Arity: 1, Returns: 1,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			holder, err := argRef(args, 0)
			if err != nil {
				return nil, err
			}
			ref, ok := ctx.Heap().SoftReferent(holder)
			if !ok {
				return []heap.Value{heap.Null()}, nil
			}
			return []heap.Value{heap.RefVal(ref)}, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "ref.weak", Arity: 1, Returns: 1,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			obj, err := argRef(args, 0)
			if err != nil {
				return nil, err
			}
			holder, err := ctx.Heap().AllocRecord(-1, 0, false)
			if err != nil {
				return nil, err
			}
			ctx.Heap().RegisterWeakRef(holder, obj)
			return []heap.Value{heap.RefVal(holder)}, nil
		},
	})
	r.MustRegister(&Def{
		Sig: "ref.weakget", Arity: 1, Returns: 1,
		Fn: func(ctx Ctx, args []heap.Value) ([]heap.Value, error) {
			holder, err := argRef(args, 0)
			if err != nil {
				return nil, err
			}
			ref, ok := ctx.Heap().WeakReferent(holder)
			if !ok {
				return []heap.Value{heap.Null()}, nil
			}
			return []heap.Value{heap.RefVal(ref)}, nil
		},
	})

	return r
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
