package debug

import (
	"errors"
	"sync"

	"repro/internal/heap"
	"repro/internal/native"
	"repro/internal/vm"
)

// The stepper wraps a replay coordinator and adds position control: it
// pauses the VM goroutine inside PickNext whenever the machine's global
// branch count reaches the requested target, and clamps dispatched slice
// budgets so execution can never overshoot the target. While paused the VM
// goroutine is blocked on a condition variable, so the controller may read
// every piece of machine state (the mutex hand-off establishes the
// happens-before edge); raising the target resumes execution to the next
// stop point.
//
// Transparency is the load-bearing property: the wrapped coordinator must
// observe exactly the call sequence it would see in an unclamped replay.
// Three facts make clamping invisible:
//
//  1. A clamped slice re-dispatches the SAME thread, so OnDescheduled
//     (which fires only when the dispatched thread changes) never fires at
//     a clamp stop.
//  2. A budget target obtained from the inner coordinator is cached when
//     clamped and re-dispatched without consulting the inner coordinator
//     again, so policies that draw randomness per decision draw exactly
//     once per real decision.
//  3. Exact targets (replayed switch points) are never cached: the
//     scheduling replay's PickNext is a pure function of its cursor until
//     the switch record is consumed at the recorded position, so
//     re-consulting it after a clamp stop yields the same target.
//
// Extra Poll calls at clamp stops are harmless: all three replay
// coordinators gate admission on log-ordered sequence numbers, so Poll is
// monotone — it admits a thread exactly when its recorded turn has arrived,
// however often it is asked.
type stepper struct {
	inner vm.Coordinator

	mu   sync.Mutex
	cond *sync.Cond
	// target is the global branch position to pause at.
	target uint64
	// paused is true while the VM goroutine is blocked in PickNext.
	paused bool
	// done is true once the VM goroutine has returned from Run.
	done bool
	// aborted makes the next PickNext return errAborted.
	aborted bool

	cache stepCache
}

// stepCache is the clamped-dispatch memo; it is part of a checkpoint
// because a snapshot taken at a clamp stop must re-dispatch the cached
// target when resumed, exactly as the original would have.
type stepCache struct {
	// Valid is set when a budget target was clamped and must be
	// re-dispatched instead of consulting the inner coordinator.
	Valid bool
	// Slot identifies the clamped thread (slots are stable across clones).
	Slot int32
	// Target is the inner coordinator's original, unclamped target.
	Target vm.SliceTarget
	// ClampBr is the thread branch count the clamped slice stopped at; a
	// redispatch is only valid while the thread still stands exactly there.
	ClampBr uint64
}

// errAborted tears down an abandoned machine: Abort makes PickNext return
// it, Run propagates it out, and the session discards the goroutine.
var errAborted = errors.New("debug: machine aborted")

func newStepper(inner vm.Coordinator) *stepper {
	s := &stepper{inner: inner}
	s.cond = sync.NewCond(&s.mu)
	return s
}

var _ vm.Coordinator = (*stepper)(nil)

// PickNext implements vm.Coordinator: pause at the target, then choose a
// dispatch whose slice cannot pass it.
func (s *stepper) PickNext(v *vm.VM, runnable []*vm.Thread, cur *vm.Thread) (*vm.Thread, vm.SliceTarget, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	g := v.GlobalBranches()
	for g >= s.target && !s.aborted && !s.done {
		s.paused = true
		s.cond.Broadcast()
		s.cond.Wait()
	}
	s.paused = false
	if s.aborted {
		return nil, vm.SliceTarget{}, errAborted
	}

	// A clamp stop left a thread standing mid-decision: if it is still
	// runnable at exactly the clamp position, continue its original slice
	// (re-clamped) rather than asking the inner coordinator for a fresh
	// decision it never knew was interrupted. If the thread blocked or died
	// before reaching the clamp, the interruption never bit and the inner
	// coordinator decides as usual.
	if s.cache.Valid {
		for _, t := range runnable {
			if t.Slot == s.cache.Slot && t.State() == vm.StateRunnable && t.BrCnt == s.cache.ClampBr {
				tgt := s.cache.Target
				s.cache.Valid = false
				return t, s.clampTarget(t, tgt, g), nil
			}
		}
		s.cache.Valid = false
	}

	t, tgt, err := s.inner.PickNext(v, runnable, cur)
	if err != nil || t == nil {
		return t, tgt, err
	}
	return t, s.clampTarget(t, tgt, g), nil
}

// clampTarget bounds a slice target so the dispatched thread cannot carry
// the global branch count past the pause target, caching an interrupted
// budget decision for redispatch.
func (s *stepper) clampTarget(t *vm.Thread, tgt vm.SliceTarget, g uint64) vm.SliceTarget {
	// remaining >= 1: the pause loop guarantees g < target here.
	remaining := s.target - g
	clampBr := t.BrCnt + remaining
	if !tgt.Exact {
		if tgt.Br <= clampBr {
			return tgt
		}
		// Interrupt the budget slice at the target; remember the original
		// decision so it resumes rather than being re-made.
		s.cache = stepCache{Valid: true, Slot: t.Slot, Target: tgt, ClampBr: clampBr}
		return vm.SliceTarget{Br: clampBr}
	}
	if tgt.Br > clampBr {
		// The recorded switch lies beyond the target: stop at the target
		// with a plain budget; the switch record stays unconsumed and the
		// inner coordinator will re-issue this target after the stop.
		return vm.SliceTarget{Br: clampBr}
	}
	return tgt
}

// OnDescheduled implements vm.Coordinator.
func (s *stepper) OnDescheduled(v *vm.VM, prev, next *vm.Thread) error {
	return s.inner.OnDescheduled(v, prev, next)
}

// BeforeAcquire implements vm.Coordinator.
func (s *stepper) BeforeAcquire(v *vm.VM, t *vm.Thread, m *vm.Monitor) (bool, error) {
	return s.inner.BeforeAcquire(v, t, m)
}

// AssignLID implements vm.Coordinator.
func (s *stepper) AssignLID(v *vm.VM, t *vm.Thread, m *vm.Monitor) (int64, bool, error) {
	return s.inner.AssignLID(v, t, m)
}

// OnAcquired implements vm.Coordinator.
func (s *stepper) OnAcquired(v *vm.VM, t *vm.Thread, m *vm.Monitor) error {
	return s.inner.OnAcquired(v, t, m)
}

// NativeReady implements vm.Coordinator.
func (s *stepper) NativeReady(v *vm.VM, t *vm.Thread, def *native.Def) bool {
	return s.inner.NativeReady(v, t, def)
}

// InvokeNative implements vm.Coordinator.
func (s *stepper) InvokeNative(v *vm.VM, t *vm.Thread, def *native.Def, args []heap.Value) ([]heap.Value, error) {
	return s.inner.InvokeNative(v, t, def, args)
}

// Poll implements vm.Coordinator.
func (s *stepper) Poll(v *vm.VM) (bool, error) { return s.inner.Poll(v) }

// OnIdle implements vm.Coordinator.
func (s *stepper) OnIdle(v *vm.VM) (bool, error) { return s.inner.OnIdle(v) }

// OnHalt implements vm.Coordinator.
func (s *stepper) OnHalt(v *vm.VM, runErr error) error { return s.inner.OnHalt(v, runErr) }

// waitPaused blocks until the machine pauses at the target (true) or the
// run goroutine finishes first — halt, replayed crash end, or abort (false).
func (s *stepper) waitPaused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.paused && !s.done {
		s.cond.Wait()
	}
	return !s.done
}

// resumeTo raises the pause target and wakes the machine. Callers must hold
// the pause (waitPaused returned true) so the position only moves forward
// under their feet deliberately.
func (s *stepper) resumeTo(target uint64) {
	s.mu.Lock()
	s.target = target
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abort makes the machine's next PickNext fail with errAborted and wakes it.
func (s *stepper) abort() {
	s.mu.Lock()
	s.aborted = true
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// markDone records that the run goroutine returned, waking any waiter.
func (s *stepper) markDone() {
	s.mu.Lock()
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// cacheState snapshots the clamp memo for a checkpoint.
func (s *stepper) cacheState() stepCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache
}

// setCacheState restores a checkpoint's clamp memo (before the machine runs).
func (s *stepper) setCacheState(c stepCache) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}
