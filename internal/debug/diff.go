package debug

import "fmt"

// DiffReport locates the first divergence between two captures.
type DiffReport struct {
	// Diverged is false when the two replays agree at every common position.
	Diverged bool
	// Pos is the first global branch position whose inspection states
	// differ (valid when Diverged).
	Pos uint64
	// A and B are the differing renderings at Pos (valid when Diverged).
	A, B string
	// FinalA and FinalB are the two replays' final positions.
	FinalA, FinalB uint64
}

// Diff binary-searches two sessions for the first position at which their
// machine states differ. It assumes divergence is persistent — once the two
// executions differ they never re-converge, which holds for any state
// difference that includes a diverging event (the paper's determinism
// argument run in reverse) — so checksum inequality at k implies inequality
// at every position ≥ k and the first diverging position is the binary
// search's boundary.
func Diff(a, b *Session) (*DiffReport, error) {
	if err := a.RunToEnd(); err != nil {
		return nil, fmt.Errorf("log A: %w", err)
	}
	if err := b.RunToEnd(); err != nil {
		return nil, fmt.Errorf("log B: %w", err)
	}
	finalA, _, _ := a.Final()
	finalB, _, _ := b.Final()
	rep := &DiffReport{FinalA: finalA, FinalB: finalB}

	hi := finalA
	if finalB < hi {
		hi = finalB
	}
	same := func(pos uint64) (bool, error) {
		if err := a.Goto(pos); err != nil {
			return false, fmt.Errorf("log A position %d: %w", pos, err)
		}
		if err := b.Goto(pos); err != nil {
			return false, fmt.Errorf("log B position %d: %w", pos, err)
		}
		return a.Inspect().Checksum == b.Inspect().Checksum, nil
	}

	if ok, err := same(hi); err != nil {
		return nil, err
	} else if ok {
		// Identical over the whole common prefix; diverged only if one log
		// kept going past the other's end.
		rep.Diverged = finalA != finalB
		rep.Pos = hi
		return rep, nil
	}

	// Invariant: same at lo, different at hi.
	var lo uint64
	if ok, err := same(0); err != nil {
		return nil, err
	} else if !ok {
		rep.Diverged = true
		rep.Pos = 0
	} else {
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			ok, err := same(mid)
			if err != nil {
				return nil, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		rep.Diverged = true
		rep.Pos = hi
	}

	if err := a.Goto(rep.Pos); err != nil {
		return nil, err
	}
	if err := b.Goto(rep.Pos); err != nil {
		return nil, err
	}
	rep.A = a.Inspect().Text
	rep.B = b.Inspect().Text
	return rep, nil
}
