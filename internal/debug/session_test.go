package debug_test

import (
	"path/filepath"
	"testing"

	ftvm "repro"
	"repro/internal/debug"
	"repro/internal/replication"
	"repro/internal/vm"
)

// A program with contended locks, file output and console writes: every
// source of nondeterminism the log captures, so navigating its replay
// exercises the full stepper surface.
const dbgProgram = `
class Acc { n int; }
var acc Acc;
func worker(k int) {
	for (var i int = 0; i < 120; i = i + 1) {
		lock (acc) { acc.n = acc.n + k; }
	}
}
func main() {
	acc = new Acc;
	var fd int = fopen("out.dat", 1);
	var a thread = spawn worker(1);
	var b thread = spawn worker(2);
	join(a);
	join(b);
	fwrite(fd, "n=" + itoa(acc.n));
	fclose(fd);
	send("result:" + itoa(acc.n));
	print("done " + itoa(acc.n));
}
`

// capture runs the program replicated, kills the primary mid-run, and
// returns the path of the .ftlog the run captured.
func capture(t *testing.T, mode ftvm.Mode, envSeed, policySeed int64, kill int) string {
	t.Helper()
	prog, err := ftvm.CompileSource("dbg", dbgProgram)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run.ftlog")
	if _, err := ftvm.RunWithFailover(prog, mode, ftvm.KillAfterRecords(kill), ftvm.Options{
		EnvSeed:    envSeed,
		PolicySeed: policySeed,
		MinQuantum: 64,
		MaxQuantum: 256,
		CaptureLog: path,
	}); err != nil {
		t.Fatalf("replicated run: %v", err)
	}
	return path
}

// positionsFor builds a probe table spanning the replay: the first few
// scheduling decisions, odd interior positions (inside fused superinstruction
// groups), quantum-sized offsets (slice/epoch edges), and the final edge.
func positionsFor(final uint64) []uint64 {
	cand := []uint64{0, 1, 2, 3, 7, 17, 63, 64, 65, final / 4, final/2 - 1, final / 2, final/2 + 1, 3 * final / 4, final - 2, final - 1, final}
	var out []uint64
	seen := map[uint64]bool{}
	for _, p := range cand {
		if p <= final && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func TestGotoMatchesFreshReplay(t *testing.T) {
	for _, mode := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval} {
		t.Run(mode.String(), func(t *testing.T) {
			path := capture(t, mode, 7, 11, 40)

			nav, err := debug.Open(path, debug.Options{Every: 128})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer nav.Close()
			if err := nav.RunToEnd(); err != nil {
				t.Fatalf("run to end: %v", err)
			}
			final, _, known := nav.Final()
			if !known || final == 0 {
				t.Fatalf("final position not discovered (final=%d known=%v)", final, known)
			}

			// Ground truth: an independent session per position, replaying
			// forward from zero with no backward navigation involved.
			positions := positionsFor(final)
			want := make(map[uint64]string, len(positions))
			for _, pos := range positions {
				fresh, err := debug.Open(path, debug.Options{Every: 1 << 30})
				if err != nil {
					t.Fatalf("open fresh: %v", err)
				}
				if err := fresh.Goto(pos); err != nil {
					t.Fatalf("fresh goto %d: %v", pos, err)
				}
				if got := fresh.Pos(); got != pos {
					t.Fatalf("fresh goto %d landed at %d", pos, got)
				}
				want[pos] = fresh.Inspect().Text
				fresh.Close()
			}

			// The navigating session revisits every position backward (each
			// jump restores a checkpoint clone) and then re-steps across each
			// probe; state must be byte-identical to the fresh replays.
			for i := len(positions) - 1; i >= 0; i-- {
				pos := positions[i]
				if err := nav.Goto(pos); err != nil {
					t.Fatalf("goto %d: %v", pos, err)
				}
				if got := nav.Pos(); got != pos {
					t.Fatalf("goto %d landed at %d", pos, got)
				}
				if got := nav.Inspect().Text; got != want[pos] {
					t.Errorf("position %d: navigated state differs from fresh replay\nnavigated:\n%s\nfresh:\n%s", pos, got, want[pos])
				}
			}
			for _, pos := range []uint64{1, final / 2, final - 1} {
				if err := nav.Goto(pos); err != nil {
					t.Fatalf("goto %d: %v", pos, err)
				}
				if err := nav.Step(); err != nil {
					t.Fatalf("step from %d: %v", pos, err)
				}
				if err := nav.RStep(); err != nil {
					t.Fatalf("rstep back to %d: %v", pos, err)
				}
				if got, want := nav.Inspect().Text, want[pos]; got != want {
					t.Errorf("step/rstep around %d drifted", pos)
				}
			}
		})
	}
}

// TestDualEnginePositionEquivalence is the dual-engine gate: one captured
// log replayed to the same positions under the threaded and switch
// interpreters must expose identical inspection state everywhere — the
// engines' bit-identical contract extended to every intermediate position,
// including fused-group interiors and slice-epoch edges.
func TestDualEnginePositionEquivalence(t *testing.T) {
	for _, mode := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched} {
		t.Run(mode.String(), func(t *testing.T) {
			path := capture(t, mode, 5, 9, 40)

			open := func(d vm.Dispatch) *debug.Session {
				s, err := debug.Open(path, debug.Options{Every: 256, Dispatch: d, OverrideDispatch: true})
				if err != nil {
					t.Fatalf("open dispatch %v: %v", d, err)
				}
				return s
			}
			th := open(vm.DispatchThreaded)
			defer th.Close()
			sw := open(vm.DispatchSwitch)
			defer sw.Close()

			if err := th.RunToEnd(); err != nil {
				t.Fatalf("threaded run to end: %v", err)
			}
			if err := sw.RunToEnd(); err != nil {
				t.Fatalf("switch run to end: %v", err)
			}
			tf, _, _ := th.Final()
			sf, _, _ := sw.Final()
			if tf != sf {
				t.Fatalf("final positions differ: threaded %d, switch %d", tf, sf)
			}

			for _, pos := range positionsFor(tf) {
				if err := th.Goto(pos); err != nil {
					t.Fatalf("threaded goto %d: %v", pos, err)
				}
				if err := sw.Goto(pos); err != nil {
					t.Fatalf("switch goto %d: %v", pos, err)
				}
				a, b := th.Inspect(), sw.Inspect()
				if a.Text != b.Text || a.Checksum != b.Checksum {
					t.Errorf("position %d: engines diverge\nthreaded:\n%s\nswitch:\n%s", pos, a.Text, b.Text)
				}
			}
		})
	}
}

func TestDiffIdenticalLogs(t *testing.T) {
	path := capture(t, ftvm.ModeLock, 3, 13, 40)
	a, err := debug.Open(path, debug.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := debug.Open(path, debug.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := debug.Diff(a, b)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if rep.Diverged {
		t.Fatalf("identical logs reported diverged at %d", rep.Pos)
	}
	if rep.FinalA != rep.FinalB {
		t.Fatalf("identical logs, different finals: %d vs %d", rep.FinalA, rep.FinalB)
	}
}

func TestDiffFindsFirstDivergence(t *testing.T) {
	pa := capture(t, ftvm.ModeLock, 3, 13, 40)
	pb := capture(t, ftvm.ModeLock, 3, 14, 40)
	a, err := debug.Open(pa, debug.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := debug.Open(pb, debug.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := debug.Diff(a, b)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !rep.Diverged {
		t.Fatal("different policy seeds did not diverge")
	}
	if rep.A == rep.B {
		t.Fatalf("diverging position %d renders identically", rep.Pos)
	}
	// First divergence: states still agree one position earlier.
	if rep.Pos > 0 {
		if err := a.Goto(rep.Pos - 1); err != nil {
			t.Fatal(err)
		}
		if err := b.Goto(rep.Pos - 1); err != nil {
			t.Fatal(err)
		}
		if a.Inspect().Checksum != b.Inspect().Checksum {
			t.Fatalf("states already differ at %d; %d is not the first divergence", rep.Pos-1, rep.Pos)
		}
	}
}

// TestCaptureHeaderRoundTrip checks the .ftlog header survives the disk
// format and the program hash guards the embedded image.
func TestCaptureHeaderRoundTrip(t *testing.T) {
	path := capture(t, ftvm.ModeSched, 21, 31, 40)
	l, err := replication.ReadLogFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if l.Header.Mode != ftvm.ModeSched {
		t.Errorf("mode = %v, want %v", l.Header.Mode, ftvm.ModeSched)
	}
	if l.Header.EnvSeed != 21 {
		t.Errorf("env seed = %d, want 21", l.Header.EnvSeed)
	}
	if l.Header.MinQuantum != 64 || l.Header.MaxQuantum != 256 {
		t.Errorf("quanta = %d/%d, want 64/256", l.Header.MinQuantum, l.Header.MaxQuantum)
	}
	if len(l.Records) == 0 {
		t.Fatal("no records captured")
	}
	if l.Prog == nil || len(l.Prog.Methods) == 0 {
		t.Fatal("program not embedded")
	}
}
