package debug

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/env"
	"repro/internal/native"
	"repro/internal/replication"
	"repro/internal/sehandler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// A Session is a time-travel view over one captured .ftlog: it can place
// the replayed machine at any global branch position and expose its state
// there. Positions are global branch counts — the paper's logical clock —
// so "position k" is the instant the machine has executed exactly k branch
// instructions across all threads.
//
// Forward motion replays; backward motion restores the nearest earlier
// checkpoint (a deep machine clone taken every Every branches on first
// visit) and replays forward from it, so reverse-stepping costs at most one
// checkpoint interval of re-execution rather than a replay from zero.
type Session struct {
	log     *replication.Log
	opts    Options
	natives *native.Registry

	cur    *machine
	snaps  []*snapshot // ascending position; snaps[0] is position 0
	halted bool        // current machine ran to completion

	finalKnown bool
	finalPos   uint64
	finalErr   error
}

// Options configures a session.
type Options struct {
	// Every is the checkpoint interval in global branches (default 1024).
	Every uint64
	// Dispatch overrides the interpreter engine recorded in the log header
	// when OverrideDispatch is set — the dual-engine equivalence gate
	// replays one log under both engines and compares positions.
	Dispatch         vm.Dispatch
	OverrideDispatch bool
}

// DefaultEvery is the default checkpoint interval.
const DefaultEvery = 1024

// machine is one live replay: a VM paused (or finished) under a stepper.
type machine struct {
	v    *vm.VM
	eng  *replication.ReplayEngine
	st   *stepper
	done chan error
}

// snapshot is a reusable checkpoint: suspended clones that are themselves
// cloned again on every restore, so one checkpoint serves any number of
// backward jumps.
type snapshot struct {
	pos   uint64
	v     *vm.VM
	eng   *replication.ReplayEngine
	cache stepCache
}

// Open reads an .ftlog capture and places the machine at position 0.
func Open(path string, opts Options) (*Session, error) {
	l, err := replication.ReadLogFile(path)
	if err != nil {
		return nil, err
	}
	return OpenLog(l, opts)
}

// OpenLog opens a session over an already-decoded capture.
func OpenLog(l *replication.Log, opts Options) (*Session, error) {
	if opts.Every == 0 {
		opts.Every = DefaultEvery
	}
	s := &Session{log: l, opts: opts, natives: native.StdLib()}
	if err := s.boot(); err != nil {
		return nil, err
	}
	if err := s.takeSnapshot(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// boot builds a fresh machine from the log's initial conditions, mirroring
// the backup's recovery path: engine, VM, handler-state install, volatile
// restore, then run — pausing immediately at position 0.
func (s *Session) boot() error {
	hdr := s.log.Header
	policy := vm.NewSeededPolicy(hdr.PolicySeed, hdr.MinQuantum, hdr.MaxQuantum)
	eng, err := replication.NewReplayEngine(hdr.Mode, s.log.Records, nil, s.natives, policy)
	if err != nil {
		return err
	}
	st := newStepper(eng.Coordinator())
	dispatch := hdr.Dispatch
	if s.opts.OverrideDispatch {
		dispatch = s.opts.Dispatch
	}
	environ := env.New(hdr.EnvSeed)
	v, err := vm.New(vm.Config{
		Program:         s.log.Prog,
		Env:             environ,
		Natives:         s.natives,
		Coordinator:     st,
		GCThreshold:     int(hdr.GCThreshold),
		MaxInstructions: hdr.MaxInstructions,
		TrackProgress:   eng.TrackProgress(),
		Dispatch:        dispatch,
	})
	if err != nil {
		return fmt.Errorf("debug vm: %w", err)
	}
	installHandlers(v, eng.Handlers())
	if err := eng.Handlers().RestoreAll(sehandler.Ctx{Heap: v.Heap(), Env: environ, Proc: v.Process()}); err != nil {
		return fmt.Errorf("restore volatile state: %w", err)
	}
	s.start(&machine{v: v, eng: eng, st: st, done: make(chan error, 1)}, func() error {
		return v.Run()
	})
	return nil
}

// installHandlers mirrors recovery's handler-state install: natives consult
// the handler set's translators through the VM's handler-state table.
func installHandlers(v *vm.VM, handlers *sehandler.Set) {
	for _, name := range handlers.Names() {
		h, _ := handlers.Get(name)
		if st := h.State(); st != nil {
			v.SetHandlerState(name, st)
		}
	}
}

// start launches the machine's run goroutine (initial pause target is 0,
// stopping at the very first scheduling decision) and waits for it to
// settle — paused at the target or finished.
func (s *Session) start(m *machine, run func() error) {
	s.cur = m
	s.halted = false
	go func() {
		err := run()
		m.st.markDone()
		m.done <- err
	}()
	s.settle()
}

// settle waits until the current machine is paused or finished, recording
// the final position on completion.
func (s *Session) settle() {
	if s.cur.st.waitPaused() {
		return
	}
	s.halted = true
	err := <-s.cur.done
	if !s.finalKnown {
		s.finalKnown = true
		s.finalPos = s.cur.v.GlobalBranches()
		s.finalErr = err
	}
}

// Pos returns the machine's current global branch position.
func (s *Session) Pos() uint64 { return s.cur.v.GlobalBranches() }

// Final reports the end of the replay, once discovered: the position the
// machine finishes at, the run's outcome, and whether it is known yet (it
// becomes known the first time the session runs past the last position).
func (s *Session) Final() (pos uint64, runErr error, known bool) {
	return s.finalPos, s.finalErr, s.finalKnown
}

// Inspect renders the machine state at the current position.
func (s *Session) Inspect() vm.InspectReport { return s.cur.v.Inspect() }

// VM exposes the paused machine for read-only inspection.
func (s *Session) VM() *vm.VM { return s.cur.v }

// Header returns the log header the session replays under.
func (s *Session) Header() replication.LogHeader { return s.log.Header }

// Records returns the log's replication records (Halt/Heartbeat stripped at
// capture time).
func (s *Session) Records() []wire.Record { return s.log.Records }

// Goto places the machine at position pos: forward replay, or checkpoint
// restore + replay when pos is behind the current position. Positions past
// the end of the execution settle at the final position.
func (s *Session) Goto(pos uint64) error {
	if pos < s.Pos() {
		if err := s.restoreNearest(pos); err != nil {
			return err
		}
	}
	return s.advanceTo(pos)
}

// Step advances one branch (no-op at the end of the execution).
func (s *Session) Step() error { return s.Goto(s.Pos() + 1) }

// RStep moves one branch backward (no-op at position 0).
func (s *Session) RStep() error {
	p := s.Pos()
	if p == 0 {
		return nil
	}
	return s.Goto(p - 1)
}

// RunToEnd replays to the final position.
func (s *Session) RunToEnd() error { return s.Goto(math.MaxUint64) }

// Close aborts the live machine. The session is unusable afterwards.
func (s *Session) Close() {
	if s.cur == nil {
		return
	}
	if !s.halted {
		s.cur.st.abort()
		<-s.cur.done
		s.halted = true
	}
}

// advanceTo replays forward to pos, dropping checkpoints at every multiple
// of the checkpoint interval passed for the first time.
func (s *Session) advanceTo(pos uint64) error {
	for {
		g := s.Pos()
		if g >= pos || s.halted {
			return nil
		}
		next := pos
		if nc := (g/s.opts.Every + 1) * s.opts.Every; nc < next {
			next = nc
		}
		s.cur.st.resumeTo(next)
		s.settle()
		if s.halted {
			return nil
		}
		if p := s.Pos(); p%s.opts.Every == 0 && !s.haveSnapshot(p) {
			if err := s.takeSnapshot(); err != nil {
				return err
			}
		}
	}
}

func (s *Session) haveSnapshot(pos uint64) bool {
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].pos >= pos })
	return i < len(s.snaps) && s.snaps[i].pos == pos
}

// takeSnapshot checkpoints the paused machine: suspended VM clone plus the
// replay engine's cursor state and the stepper's clamp memo.
func (s *Session) takeSnapshot() error {
	eng, err := s.cur.eng.Clone()
	if err != nil {
		return fmt.Errorf("checkpoint engine: %w", err)
	}
	sn := &snapshot{
		pos:   s.Pos(),
		v:     s.cur.v.CloneSuspended(nil),
		eng:   eng,
		cache: s.cur.st.cacheState(),
	}
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].pos >= sn.pos })
	s.snaps = append(s.snaps, nil)
	copy(s.snaps[i+1:], s.snaps[i:])
	s.snaps[i] = sn
	return nil
}

// restoreNearest replaces the live machine with a clone of the best
// checkpoint at or before pos (position 0 always exists).
func (s *Session) restoreNearest(pos uint64) error {
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].pos > pos })
	sn := s.snaps[i-1]

	eng, err := sn.eng.Clone()
	if err != nil {
		return fmt.Errorf("restore engine: %w", err)
	}
	st := newStepper(eng.Coordinator())
	st.setCacheState(sn.cache)
	st.target = sn.pos
	v := sn.v.CloneSuspended(st)
	// Rebind cloned handlers to the cloned machine: refill the VM's
	// handler-state table and re-attach the process (Restore already ran in
	// the lineage; a clone must not restore again).
	installHandlers(v, eng.Handlers())
	for _, name := range eng.Handlers().Names() {
		h, _ := eng.Handlers().Get(name)
		if b, ok := h.(interface{ Bind(*env.Process) }); ok {
			b.Bind(v.Process())
		}
	}

	s.Close()
	s.start(&machine{v: v, eng: eng, st: st, done: make(chan error, 1)}, func() error {
		return v.ResumeSuspended()
	})
	return nil
}
