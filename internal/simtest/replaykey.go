package simtest

import (
	"fmt"
	"sort"
	"strings"
)

// ReplayKind identifies which harness a replay key string drives.
type ReplayKind int

const (
	// ReplayPair is a primary/backup pair combo (ParseCombo).
	ReplayPair ReplayKind = iota
	// ReplayView is a three-node view-change combo (ParseViewCombo).
	ReplayView
	// ReplayFleet is a sharded-fleet combo (ParseFleetCombo).
	ReplayFleet
	// ReplayConsensus is a consensus-backend combo (ParseConsensusCombo).
	ReplayConsensus
)

// String implements fmt.Stringer.
func (k ReplayKind) String() string {
	switch k {
	case ReplayPair:
		return "pair"
	case ReplayView:
		return "view"
	case ReplayFleet:
		return "fleet"
	case ReplayConsensus:
		return "consensus"
	}
	return fmt.Sprintf("ReplayKind(%d)", int(k))
}

// replayDiscriminators are the fields that appear in exactly one kind's key
// format: their presence decides the kind. Pair keys have no discriminator —
// they are the default once every field checks out.
var replayDiscriminators = map[string]ReplayKind{
	"kill1":   ReplayView,
	"clients": ReplayFleet,
	"who":     ReplayConsensus,
}

// replayFields is, per kind, the complete field set its parser accepts.
// Kept in sync with ParseCombo / ParseViewCombo / ParseFleetCombo /
// ParseConsensusCombo — TestClassifyAcceptsEveryParsedKey round-trips every
// historical replay key through both.
var replayFields = map[ReplayKind]map[string]bool{
	ReplayPair: {
		"prog": true, "size": true, "mode": true, "kill": true, "deliver": true,
		"fault": true, "net": true, "dispatch": true, "reorder": true,
	},
	ReplayView: {
		"prog": true, "size": true, "mode": true, "kill1": true, "d1": true,
		"kill2": true, "d2": true, "fault": true, "inject": true, "net": true,
		"reorder": true,
	},
	ReplayFleet: {
		"seed": true, "nodes": true, "shards": true, "clients": true, "ops": true,
		"ka": true, "kb": true, "fault": true, "inject": true,
	},
	ReplayConsensus: {
		"prog": true, "size": true, "mode": true, "who": true, "kill": true,
		"deliver": true, "part": true, "inject": true, "fault": true,
		"eseed": true, "net": true, "reorder": true,
	},
}

// ClassifyReplayKey decides which harness a replay key belongs to by parsing
// its field structure, replacing the historical substring sniffing (which
// classified by `strings.Contains(key, "kill1=")` and so mis-filed any key
// whose VALUE happened to contain a discriminator, silently dispatched
// malformed keys to the pair parser, and could not report ambiguity).
//
// The rules are strict: every comma-separated part must be key=value; a key
// may contain at most one kind-discriminating field (kill1/clients/who);
// every field must belong to the decided kind's accepted set. Anything else
// is an error naming the offending field, so a typo fails here with a
// classification error instead of deep inside the wrong parser.
func ClassifyReplayKey(key string) (ReplayKind, error) {
	if strings.TrimSpace(key) == "" {
		return 0, fmt.Errorf("empty replay key")
	}
	var fields []string
	for _, part := range strings.Split(key, ",") {
		name, _, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return 0, fmt.Errorf("replay key field %q is not key=value", part)
		}
		fields = append(fields, name)
	}

	kind := ReplayPair
	var seen []string
	for _, f := range fields {
		if k, ok := replayDiscriminators[f]; ok {
			seen = append(seen, f)
			kind = k
		}
	}
	if len(seen) > 1 {
		return 0, fmt.Errorf("replay key is ambiguous: fields %s name different harnesses", strings.Join(seen, " and "))
	}

	for _, f := range fields {
		if !replayFields[kind][f] {
			return 0, fmt.Errorf("replay key field %q is not a %s-combo field (accepts %s)",
				f, kind, strings.Join(sortedFields(kind), " "))
		}
	}
	return kind, nil
}

func sortedFields(kind ReplayKind) []string {
	out := make([]string, 0, len(replayFields[kind]))
	for f := range replayFields[kind] {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
