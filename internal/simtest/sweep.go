package simtest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	ftvm "repro"
	"repro/internal/fuzzgen"
	frand "repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
)

// Combo is one point of the sweep: a generated program, a replication mode,
// and a fault schedule (a kill position, a channel fault, a network seed, and
// a reorder chance). Its Key() round-trips through ParseCombo, so any failing
// combo replays from a single string:
//
//	go run ./cmd/ftvm-sim -replay "prog=7,size=small,mode=sched,kill=12,deliver=1,fault=none@0,net=3,reorder=1/8"
type Combo struct {
	ProgSeed    uint64
	Size        fuzzgen.Size
	Mode        ftvm.Mode
	KillAtSend  int // 0 = no kill
	KillDeliver bool
	FaultKind   transport.FaultKind
	FaultAt     int
	NetSeed     int64
	ReorderNum  int // chance a message skips FIFO clamping, as Num in Den
	ReorderDen  int
	// Dispatch selects the interpreter engine for the primary and any
	// recovery VM (default threaded). The epoch-edge regression entries pin
	// both engines against the same fault schedules.
	Dispatch ftvm.Dispatch
	// Capture, when non-empty, writes the backup's replication log to this
	// path as a .ftlog for ftvm-debug. Not part of the replay key: it never
	// changes the schedule, only what is written to disk afterwards.
	Capture string
}

// Key renders the combo as its canonical replay string.
func (cb Combo) Key() string {
	deliver := 0
	if cb.KillDeliver {
		deliver = 1
	}
	key := fmt.Sprintf("prog=%d,size=%s,mode=%s,kill=%d,deliver=%d,fault=%s@%d,net=%d,reorder=%d/%d",
		cb.ProgSeed, cb.Size, cb.Mode, cb.KillAtSend, deliver,
		cb.FaultKind, cb.FaultAt, cb.NetSeed, cb.ReorderNum, cb.ReorderDen)
	if cb.Dispatch != ftvm.DispatchThreaded {
		// Appended only when non-default, so every historical replay string
		// renders (and replays) unchanged.
		key += ",dispatch=" + cb.Dispatch.String()
	}
	return key
}

// faultKindByName inverts transport.FaultKind.String.
func faultKindByName(name string) (transport.FaultKind, error) {
	for k := transport.FaultNone; ; k++ {
		s := k.String()
		if s == "invalid" {
			return 0, fmt.Errorf("unknown fault kind %q", name)
		}
		if s == name {
			return k, nil
		}
	}
}

// modeByName inverts replication.Mode.String.
func modeByName(name string) (ftvm.Mode, error) {
	for _, m := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q (lock, sched, lockint)", name)
}

// ParseCombo parses a Key()-formatted replay string.
func ParseCombo(key string) (Combo, error) {
	var cb Combo
	for _, field := range strings.Split(key, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cb, fmt.Errorf("combo field %q is not key=value", field)
		}
		var err error
		switch k {
		case "prog":
			cb.ProgSeed, err = strconv.ParseUint(v, 0, 64)
		case "size":
			cb.Size, err = fuzzgen.SizeByName(v)
		case "mode":
			cb.Mode, err = modeByName(v)
		case "kill":
			cb.KillAtSend, err = strconv.Atoi(v)
		case "deliver":
			cb.KillDeliver = v == "1" || v == "true"
		case "fault":
			kind, at, ok := strings.Cut(v, "@")
			if !ok {
				return cb, fmt.Errorf("fault %q is not kind@index", v)
			}
			if cb.FaultKind, err = faultKindByName(kind); err == nil {
				cb.FaultAt, err = strconv.Atoi(at)
			}
		case "net":
			cb.NetSeed, err = strconv.ParseInt(v, 0, 64)
		case "dispatch":
			cb.Dispatch, err = ftvm.ParseDispatch(v)
		case "reorder":
			num, den, ok := strings.Cut(v, "/")
			if !ok {
				return cb, fmt.Errorf("reorder %q is not num/den", v)
			}
			if cb.ReorderNum, err = strconv.Atoi(num); err == nil {
				cb.ReorderDen, err = strconv.Atoi(den)
			}
		default:
			return cb, fmt.Errorf("unknown combo field %q", k)
		}
		if err != nil {
			return cb, fmt.Errorf("combo field %q: %w", field, err)
		}
	}
	return cb, nil
}

// deriveSeeds expands a program seed into the run's environment, primary
// policy, and recovery policy seeds (split from the program seed so shrunken
// or hand-picked programs keep their schedules, mirroring fuzzgen.derive).
func deriveSeeds(progSeed uint64) (envSeed, polRef, polRec int64) {
	drv := frand.New(progSeed ^ 0x51731EED)
	return int64(drv.Next()>>2) | 1, int64(drv.Next()>>2) | 1, int64(drv.Next()>>2) | 1
}

// clusterConfig expands the combo into the cluster configuration it denotes.
func (cb Combo) clusterConfig(prog *ftvm.Program) ClusterConfig {
	envSeed, polRef, polRec := deriveSeeds(cb.ProgSeed)
	return ClusterConfig{
		Program:     prog,
		Mode:        cb.Mode,
		EnvSeed:     envSeed,
		PolicySeed:  polRef,
		RecoverSeed: polRec,
		Net: simnet.Config{
			Seed:       cb.NetSeed,
			ReorderNum: cb.ReorderNum,
			ReorderDen: cb.ReorderDen,
		},
		Fault:       transport.FaultPlan{Kind: cb.FaultKind, At: cb.FaultAt},
		FaultSeed:   cb.NetSeed ^ 0x0F0F0F0F,
		KillAtSend:  cb.KillAtSend,
		KillDeliver: cb.KillDeliver,
		Dispatch:    cb.Dispatch,
		Capture:     cb.Capture,
	}
}

func (cb Combo) envSeed() int64     { e, _, _ := deriveSeeds(cb.ProgSeed); return e }
func (cb Combo) recoverSeed() int64 { _, _, r := deriveSeeds(cb.ProgSeed); return r }

// ComboOutcome is one combo's deterministic result plus the comparison
// verdict against the failure-free reference.
type ComboOutcome struct {
	Combo   Combo
	Result  *ClusterResult
	Detail  string // "" when the output matched the reference
	Err     error  // harness/contract error (already a failure)
	Ref     []string
	Console []string
}

// Failed reports whether the combo diverged or errored.
func (o *ComboOutcome) Failed() bool { return o.Err != nil || o.Detail != "" }

// TraceLine renders the combo's structural outcome. Lines contain only
// deterministic fields (virtual time, never wall time), so a whole sweep's
// trace is byte-identical across runs of the same configuration.
func (o *ComboOutcome) TraceLine() string {
	var sb strings.Builder
	sb.WriteString(o.Combo.Key())
	sb.WriteString(" -> ")
	if o.Err != nil {
		fmt.Fprintf(&sb, "ERROR %v", o.Err)
		return sb.String()
	}
	r := o.Result
	fmt.Fprintf(&sb, "outcome=%q killed=%t recovered=%t records=%d vtime=%s console=%d",
		r.Outcome, r.Killed, r.Recovered, r.RecordsLogged, r.VirtualElapsed, len(r.Console))
	if o.Detail != "" {
		fmt.Fprintf(&sb, " DIVERGE %s", o.Detail)
	} else {
		sb.WriteString(" ok")
	}
	return sb.String()
}

// ReplayCommand renders the shell command that reproduces this combo alone.
func (o *ComboOutcome) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/ftvm-sim -replay %q", o.Combo.Key())
}

// RunCombo compiles the combo's generated program, computes the failure-free
// reference output, plays the schedule on the simulated cluster, and compares
// per-writer output streams. prog/ref may be nil (computed on demand); the
// sweep passes cached values so each program compiles once.
func RunCombo(cb Combo, prog *ftvm.Program, ref []string) *ComboOutcome {
	out := &ComboOutcome{Combo: cb}
	if prog == nil {
		var err error
		prog, ref, err = comboProgram(cb)
		if err != nil {
			out.Err = err
			return out
		}
	}
	out.Ref = ref

	res, err := RunCluster(cb.clusterConfig(prog))
	out.Result = res
	if err != nil {
		out.Err = err
		return out
	}
	out.Console = res.Console
	if detail, ok := fuzzgen.CompareFrames(ref, res.Console); !ok {
		out.Detail = detail
	}
	return out
}

// comboProgram generates, compiles and reference-runs the combo's program.
func comboProgram(cb Combo) (*ftvm.Program, []string, error) {
	envSeed, polRef, _ := deriveSeeds(cb.ProgSeed)
	src := fuzzgen.Generate(cb.ProgSeed, cb.Size).Render()
	prog, err := ftvm.CompileSource(fmt.Sprintf("sim-%d", cb.ProgSeed), src)
	if err != nil {
		return nil, nil, fmt.Errorf("compile seed %d: %w", cb.ProgSeed, err)
	}
	refRes, err := ftvm.Run(prog, ftvm.Options{
		EnvSeed: envSeed, PolicySeed: polRef,
		MinQuantum: 64, MaxQuantum: 512,
		MaxInstructions: 50_000_000,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("reference run seed %d: %w", cb.ProgSeed, err)
	}
	return prog, refRes.Console, nil
}

// SweepConfig enumerates the schedule space: for every program seed ×
// replication mode × network seed, one clean run, one crash per kill
// position (alternating whether the final frame escapes), and one run per
// channel fault.
type SweepConfig struct {
	// ProgSeeds are the generated-program seeds (required).
	ProgSeeds []uint64
	// Size is the generated-program size tier (default SizeSmall).
	Size fuzzgen.Size
	// Modes defaults to all three replica-coordination modes.
	Modes []ftvm.Mode
	// KillSends are the crash positions in primary frame sends
	// (default 1, 3, 8, 20).
	KillSends []int
	// Faults are the channel-fault plans (default drop/dup/partition-send
	// early and mid-run). A FaultNone entry is a clean run and is implied.
	Faults []transport.FaultPlan
	// NetSeeds vary message latency/reordering draws (default {1}).
	NetSeeds []int64
	// ReorderNum/ReorderDen give every link its reorder chance
	// (default 1/8).
	ReorderNum, ReorderDen int
}

func (c *SweepConfig) fill() {
	if len(c.Modes) == 0 {
		c.Modes = []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	}
	if len(c.KillSends) == 0 {
		c.KillSends = []int{1, 3, 8, 20}
	}
	if len(c.Faults) == 0 {
		c.Faults = []transport.FaultPlan{
			{Kind: transport.FaultDropSend, At: 2},
			{Kind: transport.FaultDuplicateSend, At: 3},
			{Kind: transport.FaultPartitionSend, At: 5},
			{Kind: transport.FaultPartialSend, At: 4},
		}
	}
	if len(c.NetSeeds) == 0 {
		c.NetSeeds = []int64{1}
	}
	if c.ReorderDen == 0 {
		c.ReorderNum, c.ReorderDen = 1, 8
	}
}

// Combos expands the configuration into the full deterministic schedule list.
func (c *SweepConfig) Combos() []Combo {
	c.fill()
	var out []Combo
	for _, prog := range c.ProgSeeds {
		for _, mode := range c.Modes {
			for _, net := range c.NetSeeds {
				base := Combo{
					ProgSeed: prog, Size: c.Size, Mode: mode, NetSeed: net,
					ReorderNum: c.ReorderNum, ReorderDen: c.ReorderDen,
				}
				out = append(out, base) // clean run
				for i, kill := range c.KillSends {
					cb := base
					cb.KillAtSend = kill
					cb.KillDeliver = i%2 == 1
					out = append(out, cb)
				}
				for _, f := range c.Faults {
					cb := base
					cb.FaultKind, cb.FaultAt = f.Kind, f.At
					out = append(out, cb)
				}
			}
		}
	}
	return out
}

// SweepResult is the outcome of a full sweep.
type SweepResult struct {
	Combos   int
	Failures []*ComboOutcome
	Trace    []string
	Elapsed  time.Duration // wall time (reporting only; never in the trace)
}

// RunSweep plays every combo in order, emitting one trace line per combo via
// logf (nil = collect only). The trace is a pure function of the
// configuration: running the same sweep twice yields byte-identical traces.
func RunSweep(cfg SweepConfig, logf func(string)) *SweepResult {
	combos := cfg.Combos()
	res := &SweepResult{Combos: len(combos)}
	t0 := clock.Real.Now()

	type cached struct {
		prog *ftvm.Program
		ref  []string
		err  error
	}
	progs := map[uint64]*cached{}
	for _, cb := range combos {
		ca := progs[cb.ProgSeed]
		if ca == nil {
			ca = &cached{}
			ca.prog, ca.ref, ca.err = comboProgram(cb)
			progs[cb.ProgSeed] = ca
		}
		var out *ComboOutcome
		if ca.err != nil {
			out = &ComboOutcome{Combo: cb, Err: ca.err}
		} else {
			out = RunCombo(cb, ca.prog, ca.ref)
		}
		line := out.TraceLine()
		res.Trace = append(res.Trace, line)
		if logf != nil {
			logf(line)
		}
		if out.Failed() {
			res.Failures = append(res.Failures, out)
		}
	}
	res.Elapsed = clock.Real.Since(t0)
	return res
}
