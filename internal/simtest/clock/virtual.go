package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a deterministic simulated clock. Time never flows on its own:
// it jumps forward only when every attached actor goroutine is parked in a
// virtual wait, at which point the earliest scheduled event fires and wakes
// someone. Because wakeups happen one event at a time, at global quiescence,
// in (deadline, priority, schedule-order) order, a simulation driven entirely
// through one Virtual clock and its WaitSlots executes in an order that is a
// pure function of its inputs — rerunning the same seed replays the same
// interleaving, timeouts included.
//
// Rules for code running under a Virtual clock:
//
//   - Every goroutine that parks (Sleep, WaitSlot.Park) must be an actor:
//     either spawned via Go or wrapped in Attach/Detach. Parking from a
//     non-actor panics — otherwise the clock would count more sleepers than
//     it knows about and freeze.
//   - Actors must not block on anything the clock cannot see (bare channel
//     receives, sync.Cond, sync.WaitGroup) while other actors depend on time
//     advancing; such waits stall virtual time forever. Momentary mutex
//     acquisition is fine.
//   - A non-actor goroutine (e.g. a test's main goroutine) may freely wait on
//     ordinary sync primitives for actors to finish; it just cannot use
//     virtual waits itself.
type Virtual struct {
	mu       sync.Mutex
	now      time.Duration // offset from epoch
	actors   int           // goroutines participating in scheduling
	blocked  int           // actors currently parked in a virtual wait
	events   eventHeap
	seq      uint64 // schedule-order tiebreak for simultaneous events
	progress atomic.Uint64
	epoch    time.Time
}

// Event priorities: at equal deadlines, message deliveries fire before timer
// expiries so that an ack racing its own timeout wins the tie — the generous
// reading a real network gives you, and the one that keeps timeout-boundary
// sweep points exploring the interesting schedule rather than a trivial one.
const (
	priDeliver = 0
	priTimer   = 1
)

// NewVirtual returns a virtual clock at a fixed synthetic epoch with no
// actors and no scheduled events.
func NewVirtual() *Virtual {
	return &Virtual{epoch: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

var _ Clock = (*Virtual)(nil)

// Now implements Clock: the simulated time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch.Add(v.now)
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Elapsed returns total simulated time since the epoch.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock: the calling actor parks until virtual time reaches
// now+d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.NewWaitSlot().Park(d)
}

// Go implements Clock: fn runs on a new goroutine registered as an actor for
// its whole lifetime. Registration happens before Go returns, so the caller
// may immediately park without racing the child's startup.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.actors++
	v.mu.Unlock()
	go func() {
		defer v.Detach()
		fn()
	}()
}

// Attach registers the calling goroutine as an actor. Pair with Detach.
// Use it to let an existing goroutine (a test body, a driver loop) perform
// virtual waits without being spawned through Go.
func (v *Virtual) Attach() {
	v.mu.Lock()
	v.actors++
	v.mu.Unlock()
}

// Detach deregisters the calling actor. If the remaining actors are all
// parked, the departure is itself a scheduling point: the next event fires.
// No deferred unlock: advanceLocked releases the mutex itself before raising
// its deadlock panic.
func (v *Virtual) Detach() {
	v.mu.Lock()
	v.actors--
	if v.actors < 0 {
		v.mu.Unlock()
		panic("simtest/clock: Detach without matching Attach/Go")
	}
	v.progress.Add(1)
	if v.actors > 0 && v.blocked == v.actors {
		v.advanceLocked()
	}
	v.mu.Unlock()
}

// NewWaitSlot implements Clock.
func (v *Virtual) NewWaitSlot() WaitSlot { return &vslot{clk: v} }

// ScheduleSignal schedules s to be signalled when virtual time reaches at.
// It is the hook the simulated network uses to make message deliveries
// clock-visible: the payload is enqueued immediately (under the network's own
// lock), and this delivery-priority event wakes the receiver once simulated
// time catches up. s must come from this clock's NewWaitSlot.
func (v *Virtual) ScheduleSignal(at time.Time, s WaitSlot) {
	vs, ok := s.(*vslot)
	if !ok || vs.clk != v {
		panic("simtest/clock: ScheduleSignal with a foreign WaitSlot")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pushLocked(&event{
		at:  at.Sub(v.epoch),
		pri: priDeliver,
		fire: func() {
			v.signalLocked(vs, false)
		},
	})
}

// vslot is the Virtual WaitSlot.
type vslot struct {
	clk      *Virtual
	parked   bool
	latched  bool
	gen      uint64
	ch       chan struct{}
	timedOut bool
	timerEv  *event
}

// Park implements WaitSlot.
func (s *vslot) Park(timeout time.Duration) bool {
	v := s.clk
	v.mu.Lock()
	v.progress.Add(1)
	if s.latched {
		s.latched = false
		v.mu.Unlock()
		return false
	}
	if s.parked {
		v.mu.Unlock()
		panic("simtest/clock: concurrent Park on one WaitSlot")
	}
	s.gen++
	s.parked = true
	s.timedOut = false
	s.ch = make(chan struct{})
	if timeout > 0 {
		gen := s.gen
		s.timerEv = &event{
			at:  v.now + timeout,
			pri: priTimer,
			fire: func() {
				if s.parked && s.gen == gen {
					v.signalLocked(s, true)
				}
			},
		}
		v.pushLocked(s.timerEv)
	} else {
		s.timerEv = nil
	}
	v.blocked++
	if v.blocked > v.actors {
		n, b := v.actors, v.blocked
		v.mu.Unlock()
		panic(fmt.Sprintf("simtest/clock: Park from a goroutine that is not an attached actor (actors=%d blocked=%d) — spawn it with Clock.Go or wrap with Virtual.Attach", n, b))
	}
	if v.blocked == v.actors {
		v.advanceLocked()
	}
	ch := s.ch
	v.mu.Unlock()
	<-ch
	v.mu.Lock()
	out := s.timedOut
	v.mu.Unlock()
	return out
}

// Signal implements WaitSlot.
func (s *vslot) Signal() {
	v := s.clk
	v.mu.Lock()
	defer v.mu.Unlock()
	v.progress.Add(1)
	v.signalLocked(s, false)
}

// signalLocked wakes a parked slot (counting it unblocked immediately, so an
// in-progress advance never mistakes a woken-but-not-yet-resumed actor for a
// sleeper and fires a second event prematurely), or latches the signal if the
// slot is idle. Called with v.mu held — including from event fire functions
// inside advanceLocked, which is why event callbacks may only touch slot
// state.
func (v *Virtual) signalLocked(s *vslot, timedOut bool) {
	if !s.parked {
		if !timedOut {
			s.latched = true
		}
		return
	}
	s.parked = false
	s.timedOut = timedOut
	if s.timerEv != nil {
		s.timerEv.canceled = true
		s.timerEv = nil
	}
	v.blocked--
	close(s.ch)
}

// advanceLocked jumps simulated time forward while every actor is parked,
// firing events in (deadline, priority, schedule order) until one of them
// wakes an actor. All actors parked with nothing scheduled is a genuine
// deadlock: nothing can ever run again, so panic with the state dump rather
// than hang.
func (v *Virtual) advanceLocked() {
	for v.actors > 0 && v.blocked == v.actors {
		v.progress.Add(1)
		var e *event
		for {
			if len(v.events) == 0 {
				// Release the mutex before panicking so recover-based tests
				// (and deferred Detach calls) do not hang on a lock held by
				// a dead code path.
				msg := fmt.Sprintf(
					"simtest/clock: deadlock — all %d actors parked at virtual t=%s with no scheduled events (a goroutine is blocked outside the clock, or a Signal was lost)",
					v.actors, v.now)
				v.mu.Unlock()
				panic(msg)
			}
			e = heap.Pop(&v.events).(*event)
			if !e.canceled {
				break
			}
		}
		if e.at > v.now {
			v.now = e.at
		}
		e.fire()
	}
}

// pushLocked adds an event with the next schedule-order sequence number.
func (v *Virtual) pushLocked(e *event) {
	e.seq = v.seq
	v.seq++
	heap.Push(&v.events, e)
}

// Watchdog starts a wall-clock monitor that panics if the simulation makes no
// progress (no park, signal, or advance) for limit. It catches the class of
// bug the virtual clock cannot see — an actor blocked on a bare channel while
// everyone else waits for time to advance. The returned stop function ends
// the watchdog; call it when the simulation completes.
func (v *Virtual) Watchdog(limit time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := limit / 8
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := Real.Timer(tick)
		defer t.Stop()
		last := v.progress.Load()
		stale := time.Duration(0)
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			if cur := v.progress.Load(); cur != last {
				last, stale = cur, 0
			} else if stale += tick; stale >= limit {
				v.mu.Lock()
				msg := fmt.Sprintf(
					"simtest/clock: watchdog — no simulation progress for %s (virtual t=%s, actors=%d, blocked=%d, pending events=%d); an actor is likely blocked outside the clock",
					limit, v.now, v.actors, v.blocked, len(v.events))
				v.mu.Unlock()
				panic(msg)
			}
			t.Reset(tick)
		}
	}()
	return func() { close(done) }
}

// event is a scheduled occurrence in virtual time. fire runs with the clock
// mutex held and must only mutate slot/latch state (signalLocked).
type event struct {
	at       time.Duration
	pri      int
	seq      uint64
	canceled bool
	fire     func()
	index    int
}

// eventHeap orders events by (deadline, priority, schedule order).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
