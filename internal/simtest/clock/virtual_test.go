package clock

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestVirtualSleepAdvancesInstantly: with a single actor asleep, virtual time
// jumps straight to its wakeup — no wall time passes.
func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual()
	start := Real.Now()
	var done sync.WaitGroup
	done.Add(1)
	v.Go(func() {
		defer done.Done()
		v.Sleep(10 * time.Hour)
	})
	done.Wait()
	if got := v.Elapsed(); got != 10*time.Hour {
		t.Fatalf("Elapsed = %v, want 10h", got)
	}
	if wall := Real.Since(start); wall > 5*time.Second {
		t.Fatalf("10h virtual sleep took %v wall", wall)
	}
}

// TestVirtualEventOrdering: sleeps of different lengths complete in deadline
// order regardless of spawn order, and each observes the exact virtual time.
func TestVirtualEventOrdering(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []string
	var done sync.WaitGroup
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		d := d
		done.Add(1)
		v.Go(func() {
			defer done.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, fmt.Sprintf("%v@%v", d, v.Elapsed()))
			mu.Unlock()
		})
	}
	done.Wait()
	got := strings.Join(order, " ")
	want := "10ms@10ms 20ms@20ms 30ms@30ms"
	if got != want {
		t.Fatalf("wakeup order = %q, want %q", got, want)
	}
}

// TestSignalBeforeTimeout: a Signal scheduled (by another actor) before a
// park's deadline wakes the parker un-timed-out at the signaller's virtual
// time — the woken-but-not-yet-resumed actor must not be double-counted as
// blocked and fire the timeout anyway.
func TestSignalBeforeTimeout(t *testing.T) {
	v := NewVirtual()
	slot := v.NewWaitSlot()
	var done sync.WaitGroup
	done.Add(2)
	var timedOut bool
	var at time.Duration
	v.Go(func() {
		defer done.Done()
		timedOut = slot.Park(100 * time.Millisecond)
		at = v.Elapsed()
	})
	v.Go(func() {
		defer done.Done()
		v.Sleep(40 * time.Millisecond)
		slot.Signal()
	})
	done.Wait()
	if timedOut {
		t.Fatal("Park timed out despite Signal at t=40ms < deadline 100ms")
	}
	if at != 40*time.Millisecond {
		t.Fatalf("woke at %v, want 40ms", at)
	}
}

// TestDeliveryBeatsTimerAtTie: a ScheduleSignal landing exactly on a park's
// deadline wins the tie (delivery priority < timer priority), modelling an
// ack that arrives just as the timeout fires.
func TestDeliveryBeatsTimerAtTie(t *testing.T) {
	v := NewVirtual()
	slot := v.NewWaitSlot()
	v.ScheduleSignal(v.Now().Add(50*time.Millisecond), slot)
	var done sync.WaitGroup
	done.Add(1)
	var timedOut bool
	v.Go(func() {
		defer done.Done()
		timedOut = slot.Park(50 * time.Millisecond)
	})
	done.Wait()
	if timedOut {
		t.Fatal("timer beat a same-deadline delivery; deliveries must win ties")
	}
	if got := v.Elapsed(); got != 50*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 50ms", got)
	}
}

// TestLatchedSignal: a Signal with nobody parked is consumed by the next
// Park without any time passing.
func TestLatchedSignal(t *testing.T) {
	v := NewVirtual()
	slot := v.NewWaitSlot()
	slot.Signal()
	var done sync.WaitGroup
	done.Add(1)
	var timedOut bool
	v.Go(func() {
		defer done.Done()
		timedOut = slot.Park(time.Hour)
	})
	done.Wait()
	if timedOut || v.Elapsed() != 0 {
		t.Fatalf("latched signal: timedOut=%v elapsed=%v, want false, 0", timedOut, v.Elapsed())
	}
}

// TestStaleTimerIgnored: a park signalled early leaves its timer event in
// the heap; when that deadline is reached the canceled event must neither
// wake nor time out a later park on the same slot.
func TestStaleTimerIgnored(t *testing.T) {
	v := NewVirtual()
	slot := v.NewWaitSlot()
	var done sync.WaitGroup
	done.Add(2)
	var second bool
	v.Go(func() {
		defer done.Done()
		if slot.Park(30 * time.Millisecond) { // signalled at t=10ms
			t.Error("first park timed out")
		}
		second = slot.Park(100 * time.Millisecond) // crosses t=30ms, the stale deadline
	})
	v.Go(func() {
		defer done.Done()
		v.Sleep(10 * time.Millisecond)
		slot.Signal()
	})
	done.Wait()
	if !second {
		t.Fatal("second park was woken by the first park's stale timer")
	}
	if got := v.Elapsed(); got != 110*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 110ms (10ms signal + 100ms timeout)", got)
	}
}

// TestDeadlockPanics: all actors parked with an empty event heap is
// unrecoverable and must panic with diagnostics rather than hang.
func TestDeadlockPanics(t *testing.T) {
	v := NewVirtual()
	v.Attach()
	defer v.Detach()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on all-parked empty-heap deadlock")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("panic %v does not mention deadlock", r)
		}
	}()
	v.NewWaitSlot().Park(0) // sole actor, nothing scheduled
}

// TestParkFromNonActorPanics: parking without Attach/Go would desynchronize
// the blocked-actor accounting, so it must fail loudly.
func TestParkFromNonActorPanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Park from unattached goroutine")
		}
	}()
	v.NewWaitSlot().Park(time.Second)
}

// TestDetachAdvances: an actor exiting while the rest are parked is a
// scheduling point — the survivors' timers fire without further help.
func TestDetachAdvances(t *testing.T) {
	v := NewVirtual()
	var done sync.WaitGroup
	done.Add(1)
	v.Go(func() {
		defer done.Done()
		v.Sleep(5 * time.Millisecond)
	})
	v.Go(func() {
		// Exits immediately: its Detach must kick the sleeping actor's
		// timer rather than leaving virtual time frozen.
	})
	done.Wait()
	if got := v.Elapsed(); got != 5*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 5ms", got)
	}
}

// TestRealSlotLatchAndTimeout exercises the wall-clock WaitSlot: latched
// signals are consumed, and timeouts report as such.
func TestRealSlotLatchAndTimeout(t *testing.T) {
	s := Real.NewWaitSlot()
	s.Signal()
	if s.Park(time.Second) {
		t.Fatal("latched signal reported as timeout")
	}
	if !s.Park(5 * time.Millisecond) {
		t.Fatal("empty slot did not time out")
	}
}

// TestVirtualDeterminism: the same scenario run twice produces the identical
// wakeup transcript — the property every simulation test leans on.
func TestVirtualDeterminism(t *testing.T) {
	run := func() string {
		v := NewVirtual()
		var mu sync.Mutex
		var log []string
		var done sync.WaitGroup
		slot := v.NewWaitSlot()
		for i := 0; i < 4; i++ {
			i := i
			done.Add(1)
			v.Go(func() {
				defer done.Done()
				v.Sleep(time.Duration(7*(i+1)) * time.Millisecond)
				mu.Lock()
				log = append(log, fmt.Sprintf("a%d@%v", i, v.Elapsed()))
				mu.Unlock()
				if i == 2 {
					slot.Signal()
				}
			})
		}
		done.Add(1)
		v.Go(func() {
			defer done.Done()
			out := slot.Park(time.Hour)
			mu.Lock()
			log = append(log, fmt.Sprintf("w:%v@%v", out, v.Elapsed()))
			mu.Unlock()
		})
		done.Wait()
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n  first: %s\n  got:   %s", i+2, first, got)
		}
	}
}
