// Package clock is the repository's injectable time source. Everything in the
// replication stack that waits, times out, or timestamps goes through a Clock
// so that the deterministic simulation harness (internal/simtest) can replace
// wall time with a virtual clock and run whole fault schedules in microseconds
// of real time, in a reproducible order derived from one seed.
//
// The clock-injection rule (see DESIGN.md §"Deterministic time"): no naked
// time.Now / time.Sleep / time.After / time.NewTimer / time.NewTicker outside
// this subtree and main packages. Code that genuinely needs wall time (TCP
// socket deadlines, benchmark measurement) opts in explicitly through the
// concrete RealClock value (clock.Real.Now(), clock.Real.Timer(...)), which
// the lint permits and a reviewer can grep for.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts time for the replication, transport, and harness layers.
//
// Two implementations exist: Real (wall time, the default everywhere) and
// *Virtual (internal/simtest's deterministic simulated time). Code written
// against this interface runs identically under both — except that under a
// Virtual clock, waits complete in virtual time (instantly in wall terms) and
// in a deterministic order.
type Clock interface {
	// Now returns the current time. Virtual clocks report simulated time
	// anchored at a fixed synthetic epoch.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep pauses the calling goroutine for d. Under a Virtual clock the
	// caller must be an attached actor (see Virtual.Attach / Clock.Go).
	Sleep(d time.Duration)
	// NewWaitSlot returns a parking slot for condition-style waits with
	// timeouts — the primitive behind every interruptible wait in the
	// replication stack (heartbeat pacing, ack waits via the transports,
	// kill-trigger polls, the warm backup's log feed).
	NewWaitSlot() WaitSlot
	// Go runs fn on a new goroutine that participates in this clock's
	// scheduling: a Virtual clock counts it as an actor whose running state
	// inhibits time from advancing; the real clock just spawns a goroutine.
	Go(fn func())
}

// WaitSlot is a single-consumer parking slot: one goroutine Parks, any
// goroutine Signals. A Signal delivered while nobody is parked is latched and
// consumed by the next Park (so the usual "set condition under lock, then
// Signal" pattern never loses a wakeup). Spurious wakeups do not occur, but
// callers should re-check their condition in a loop regardless, because one
// latched Signal can cover several condition changes.
type WaitSlot interface {
	// Park blocks until Signal is called or timeout elapses; timeout <= 0
	// means no timeout. It reports whether the wakeup was the timeout.
	Park(timeout time.Duration) (timedOut bool)
	// Signal wakes the parked goroutine (or latches if none is parked).
	Signal()
}

// Real is the wall clock. It is the default for every configurable clock in
// the repository; passing a nil Clock means Real (see Or).
var Real RealClock

// Or returns c, or Real when c is nil — the standard default-fill for
// config structs carrying an optional Clock.
func Or(c Clock) Clock {
	if c == nil {
		return Real
	}
	return c
}

// RealClock implements Clock with package time. Beyond the interface it
// exposes the explicit wall-time escape hatches (Timer) that real-time-only
// code (TCP deadlines, latency calibration) uses to satisfy the clock lint.
type RealClock struct{}

var _ Clock = RealClock{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go implements Clock.
func (RealClock) Go(fn func()) { go fn() }

// Timer returns a real *time.Timer — the explicit, lint-sanctioned opt-in
// for code that must wait in wall time even under simulation.
func (RealClock) Timer(d time.Duration) *time.Timer { return time.NewTimer(d) }

// NewWaitSlot implements Clock.
func (RealClock) NewWaitSlot() WaitSlot { return &realSlot{ch: make(chan struct{}, 1)} }

// realSlot is the wall-clock WaitSlot: a latching one-slot channel plus a
// timer-bounded receive.
type realSlot struct{ ch chan struct{} }

// Park implements WaitSlot.
func (s *realSlot) Park(timeout time.Duration) bool {
	if timeout <= 0 {
		<-s.ch
		return false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-s.ch:
		return false
	case <-t.C:
		return true
	}
}

// Signal implements WaitSlot.
func (s *realSlot) Signal() {
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

// Flag is a clock-visible one-shot event for joining a goroutine: the worker
// calls Set when done, one waiter calls Wait. It replaces the
// close(done)/<-done channel idiom in code that must also run under a
// virtual clock, where a bare channel receive would stall simulated time.
// Set-before-Wait ordering is latched; state written before Set is visible
// after Wait (the flag's mutex carries the happens-before edge, like a
// channel close would). Single waiter only — the slot underneath wakes one
// parker.
type Flag struct {
	slot WaitSlot
	mu   sync.Mutex
	set  bool
}

// NewFlag returns an unset flag on c's clock.
func NewFlag(c Clock) *Flag { return &Flag{slot: Or(c).NewWaitSlot()} }

// Set latches the flag and wakes the waiter. Idempotent.
func (f *Flag) Set() {
	f.mu.Lock()
	f.set = true
	f.mu.Unlock()
	f.slot.Signal()
}

// IsSet reports whether Set has been called.
func (f *Flag) IsSet() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// Wait parks until Set has been called.
func (f *Flag) Wait() {
	for !f.IsSet() {
		f.slot.Park(0)
	}
}
