package simtest

import (
	"testing"
)

// replaySeeds is the regression table of fault schedules pinned to failure
// classes found (and fixed) by earlier soak runs — see CHANGES.md PR 1–3.
// Each entry is a full replay string (the same format `ftvm-sim -replay`
// takes and the sweep prints on failure), so a regression reproduces from
// the table line alone. `make replay-seeds` runs exactly this test.
//
// The schedules were chosen to drive the fixed code paths, not recorded at
// the moment of discovery (the original failures predate the deterministic
// harness): what is pinned is that each historical failure *class* stays
// green under an exact, seed-reproducible schedule.
var replaySeeds = []struct {
	class string
	key   string
}{
	{
		// PR 2: RunWithFailover kill-vs-clean-completion race (ftvm.go) —
		// the kill lands on the last frames, racing the halt marker.
		"kill racing clean completion",
		"prog=1,size=small,mode=lock,kill=5,deliver=1,fault=none@0,net=1,reorder=1/8",
	},
	{
		// PR 2: lock-replay recovery deadlock on a log cut between an
		// id-map record and its acquisition record (lockreplay.go) — an
		// early frame-boundary cut in lock mode.
		"lock-replay log cut at frame boundary",
		"prog=2,size=small,mode=lock,kill=2,deliver=1,fault=none@0,net=1,reorder=1/8",
	},
	{
		// PR 3: drawn-but-unshipped device results (devices sehandler) —
		// the primary dies mid-send, losing records for entropy already
		// consumed; recovery must reposition the seeded device streams.
		"unshipped device draws at crash",
		"prog=3,size=small,mode=sched,kill=3,deliver=0,fault=none@0,net=2,reorder=1/8",
	},
	{
		// PR 1: last-ack window — a one-way partition eats acks, so the
		// primary declares the backup lost while the backup may hold a
		// clean log (two-sided detection, exactly-once across the split).
		"ack partition in the last-ack window",
		"prog=1,size=small,mode=lockint,kill=0,deliver=0,fault=partition-recv@2,net=1,reorder=1/8",
	},
	{
		// PR 1: sequence-gap detection (wire.SeqGate) — a dropped frame
		// must surface as a failover with a consistent logged prefix.
		"frame drop forces a seq-gap failover",
		"prog=2,size=small,mode=sched,kill=0,deliver=0,fault=drop-send@3,net=1,reorder=1/8",
	},
	{
		// PR 1: duplicate frames re-acked, not re-logged — exactly-once
		// under a duplicating channel.
		"duplicated frame is dropped and re-acked",
		"prog=4,size=small,mode=lock,kill=0,deliver=0,fault=dup-send@2,net=1,reorder=1/8",
	},
	{
		// This PR: ack-loop desync — the primary's first awaited ack arrives
		// with a flipped byte and a garbage tail. The old `seq >= wantSeq`
		// loop could let a mangled ack satisfy an output commit; the fixed
		// loop aborts with ErrProtocolDesync and the backup takes over.
		"corrupt ack trips the desync guard",
		"prog=3,size=small,mode=lock,kill=0,deliver=0,fault=corrupt-recv@1,net=5,reorder=1/8",
	},
	{
		// Reorder stress: with every other message skipping the FIFO
		// clamp the backup sees heavy out-of-order delivery; the SeqGate
		// must sort real gaps from mere reordering.
		"aggressive reordering under a mid-run kill",
		"prog=3,size=small,mode=lock,kill=4,deliver=1,fault=none@0,net=6,reorder=1/2",
	},
	{
		// PR 9: epoch-based branch counter — a sched-mode kill whose log
		// cuts between two progress flushes. Recovery replays to an exact
		// (br_cnt, method, pc) target; the threaded engine must delegate
		// the stop epoch to the reference loop and land on the identical
		// instruction.
		"sched replay cut between epoch flushes (threaded)",
		"prog=5,size=small,mode=sched,kill=6,deliver=0,fault=none@0,net=1,reorder=1/8",
	},
	{
		// PR 9: the same schedule on the reference engine — the pair pins
		// the two engines against one fault schedule, so an epoch-counter
		// drift shows up as exactly one of these two lines failing.
		"sched replay cut between epoch flushes (switch)",
		"prog=5,size=small,mode=sched,kill=6,deliver=0,fault=none@0,net=1,reorder=1/8,dispatch=switch",
	},
	{
		// PR 9: kill delivered on a block edge — the final frame ships and
		// the recovery target lands exactly on a branch boundary, the case
		// where the threaded engine's block-boundary check (not a
		// per-instruction check) must stop the slice.
		"sched kill lands on a block edge (threaded)",
		"prog=6,size=small,mode=sched,kill=4,deliver=1,fault=none@0,net=2,reorder=1/8",
	},
	{
		"sched kill lands on a block edge (switch)",
		"prog=6,size=small,mode=sched,kill=4,deliver=1,fault=none@0,net=2,reorder=1/8,dispatch=switch",
	},
}

// TestReplaySeeds replays the regression table. A failure here means a
// previously-fixed failure class has reopened; the table line is the repro.
func TestReplaySeeds(t *testing.T) {
	for _, rs := range replaySeeds {
		t.Run(rs.class, func(t *testing.T) {
			cb, err := ParseCombo(rs.key)
			if err != nil {
				t.Fatalf("table entry %q: %v", rs.key, err)
			}
			out := RunCombo(cb, nil, nil)
			if out.Failed() {
				t.Fatalf("regression in %q:\n%s\nreplay: %s", rs.class, out.TraceLine(), out.ReplayCommand())
			}
			t.Logf("%s", out.TraceLine())
		})
	}
}
