package simtest

import (
	"sort"
	"strings"
	"testing"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/fuzzgen"
	"repro/internal/replication"
	"repro/internal/vm"
)

// Takeover edge cases, played out on the simulated cluster where the crash
// position is exact (the Nth frame send, not a polled approximation):
//
//   - backup promoted mid-flush: the primary dies the instant a frame hits
//     the wire, before the ack returns — the backup holds the frame but the
//     flush never completed on the primary's side;
//   - takeover with an empty log tail: the primary dies before any frame
//     escapes, so recovery replays nothing and re-executes everything live;
//   - double takeover: a promoted backup's log supports a second promotion
//     (new environment) with the same observable output.

func takeoverProgram(t *testing.T) (*ftvm.Program, []string, Combo) {
	t.Helper()
	cb := Combo{ProgSeed: 3, Size: fuzzgen.SizeSmall, Mode: ftvm.ModeLock,
		NetSeed: 5, ReorderNum: 1, ReorderDen: 8}
	prog, ref, err := comboProgram(cb)
	if err != nil {
		t.Fatal(err)
	}
	return prog, ref, cb
}

func mustAgree(t *testing.T, ref, got []string, what string) {
	t.Helper()
	if detail, ok := fuzzgen.CompareFrames(ref, got); !ok {
		t.Fatalf("%s diverged from reference: %s", what, detail)
	}
}

// TestTakeoverEmptyLogTail: the crash lands mid-send of the very first frame,
// which is lost with the process. The backup is promoted with an empty log —
// the degenerate recovery where nothing is replayed, no outputs are skipped,
// and the whole program runs live under the backup's own policy.
func TestTakeoverEmptyLogTail(t *testing.T) {
	prog, ref, cb := takeoverProgram(t)
	cb.KillAtSend = 1 // first frame dies with the primary
	res, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed || !res.Recovered {
		t.Fatalf("killed=%t recovered=%t, want both", res.Killed, res.Recovered)
	}
	if res.RecordsLogged != 0 {
		t.Fatalf("backup logged %d records, want an empty log tail", res.RecordsLogged)
	}
	if res.Recovery.FedResults != 0 || res.Recovery.SkippedOutputs != 0 {
		t.Fatalf("empty-log recovery replayed something: %+v", res.Recovery)
	}
	mustAgree(t, ref, res.Console, "empty-log takeover output")
}

// TestTakeoverMidFlush: the primary dies at the exact instant a frame
// escapes onto the wire (KillDeliver), so the backup logs records whose flush
// the primary never saw acknowledged. The promotion must treat that tail as
// committed log — replaying it, then finishing live — and still produce the
// reference output exactly once.
func TestTakeoverMidFlush(t *testing.T) {
	prog, ref, cb := takeoverProgram(t)
	cb.KillAtSend = 3
	cb.KillDeliver = true // the fatal frame reaches the backup
	res, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed || !res.Recovered {
		t.Fatalf("killed=%t recovered=%t, want both", res.Killed, res.Recovered)
	}
	if res.RecordsLogged == 0 {
		t.Fatal("mid-flush kill delivered no records; the edge case was not exercised")
	}
	rep := res.Recovery
	if rep.FedResults+rep.Reinvoked+rep.GatedWakeups+rep.ReplayedSwitches == 0 {
		t.Fatalf("recovery replayed nothing from a %d-record log: %+v", res.RecordsLogged, rep)
	}
	mustAgree(t, ref, res.Console, "mid-flush takeover output")
}

// TestDoubleTakeover: after a first promotion completes, the same backup's
// log is used to promote again over a fresh environment (the second failover
// of a restarted chain). The log is immutable and recovery is a function of
// (log, environment), so the second takeover must reproduce the reference
// output as well — and see the identical log.
func TestDoubleTakeover(t *testing.T) {
	prog, ref, cb := takeoverProgram(t)
	cb.KillAtSend = 4
	res, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("first takeover did not happen")
	}
	mustAgree(t, ref, res.Console, "first takeover output")

	env2 := env.New(cb.envSeed())
	_, report2, err := res.backup.Recover(replication.RecoverConfig{
		Program: prog,
		Env:     env2,
		Policy:  vm.NewSeededPolicy(cb.recoverSeed()^1, 100, 900),
	})
	if err != nil {
		t.Fatalf("second takeover: %v", err)
	}
	if report2.RecordsInLog != res.Recovery.RecordsInLog {
		t.Fatalf("log changed between takeovers: %d then %d records",
			res.Recovery.RecordsInLog, report2.RecordsInLog)
	}
	mustAgree(t, ref, env2.Console().Lines(), "second takeover output")
}

// TestClusterResultStable pins that a single combo's full result — console
// included — is identical across runs, which is what makes the failing-combo
// replay workflow trustworthy: the replay shows the same bytes the sweep saw.
func TestClusterResultStable(t *testing.T) {
	prog, _, cb := takeoverProgram(t)
	cb.KillAtSend = 3
	canon := func(r *ClusterResult) string {
		lines := append([]string(nil), r.Console...)
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	first, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if first.VirtualElapsed != second.VirtualElapsed ||
		first.RecordsLogged != second.RecordsLogged ||
		canon(first) != canon(second) {
		t.Fatalf("same combo, different results:\n%+v\nvs\n%+v", first, second)
	}
}
