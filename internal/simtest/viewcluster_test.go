package simtest

import (
	"errors"
	"testing"

	ftvm "repro"
	"repro/internal/replication"
	"repro/internal/transport"
	"repro/internal/viewsvc"
)

// viewProgram pins the workload the view-cluster tests share — the same
// program/net seeds as the pair takeover tests, so the two harnesses
// cross-check each other on identical executions.
func viewProgram(t *testing.T) (*ftvm.Program, []string, ViewCombo) {
	t.Helper()
	prog, ref, pairCb := takeoverProgram(t)
	cb := ViewCombo{
		ProgSeed: pairCb.ProgSeed, Size: pairCb.Size, Mode: pairCb.Mode,
		NetSeed: pairCb.NetSeed, ReorderNum: pairCb.ReorderNum, ReorderDen: pairCb.ReorderDen,
	}
	return prog, ref, cb
}

// TestViewClusterClean: no failures — the pair completes under view 1, n3 is
// never recruited, and the output matches the failure-free reference.
func TestViewClusterClean(t *testing.T) {
	prog, ref, cb := viewProgram(t)
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed1 || res.Promoted || res.SecondTakeover {
		t.Fatalf("clean run mutated the view: killed1=%t promoted=%t takeover2=%t",
			res.Killed1, res.Promoted, res.SecondTakeover)
	}
	if res.FinalView.Num != 1 {
		t.Fatalf("final view %d, want 1", res.FinalView.Num)
	}
	mustAgree(t, ref, res.Console, "clean view-cluster output")
}

// TestViewClusterPromotionRecruitsBackup: killing n1 promotes n2, which must
// recruit n3 through the snapshot + live-tail transfer before completing.
// The recruit ends the schedule holding a non-empty log under epoch 2, and
// the promoted execution's output matches the reference exactly once.
func TestViewClusterPromotionRecruitsBackup(t *testing.T) {
	prog, ref, cb := viewProgram(t)
	cb.Kill1AtSend = 4
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed1 || !res.Promoted {
		t.Fatalf("killed1=%t promoted=%t, want both", res.Killed1, res.Promoted)
	}
	if res.SecondTakeover {
		t.Fatal("no second failure was scheduled, but n3 took over")
	}
	if res.FinalView.Num != 2 {
		t.Fatalf("final view %d, want 2", res.FinalView.Num)
	}
	if res.Outcome2 != replication.OutcomePrimaryCompleted {
		t.Fatalf("recruit outcome %v, want clean completion", res.Outcome2)
	}
	if res.Records3 == 0 {
		t.Fatal("recruit logged nothing; the state transfer did not happen")
	}
	if res.Records3 < res.Records2 {
		t.Fatalf("recruit log (%d) shorter than the snapshot source (%d): transfer incomplete",
			res.Records3, res.Records2)
	}
	mustAgree(t, ref, res.Console, "promoted execution output")
}

// TestViewClusterSurvivesSequentialFailures is the n−1 claim: kill n1 (n2
// promoted, n3 recruited via state transfer), then kill the promoted n2
// mid-tail — n3, holding snapshot + tail, recovers alone under view 3 and
// the surviving output is byte-identical to the standalone reference.
func TestViewClusterSurvivesSequentialFailures(t *testing.T) {
	prog, ref, cb := viewProgram(t)
	cb.Kill1AtSend = 3
	cb.Kill2AtSend = 6
	cb.Kill2Deliver = true
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed1 || !res.Promoted || !res.Killed2 || !res.SecondTakeover {
		t.Fatalf("killed1=%t promoted=%t killed2=%t takeover2=%t, want all",
			res.Killed1, res.Promoted, res.Killed2, res.SecondTakeover)
	}
	if res.FinalView.Num != 3 || res.FinalView.Primary != nodeC {
		t.Fatalf("final view %+v, want n3 leading view 3", res.FinalView)
	}
	mustAgree(t, ref, res.Console, "n-1 survival output")
}

// TestViewClusterKillDuringTransfer: the promoted primary dies on the very
// first frame of the state transfer, so the snapshot never lands. n3 must
// still finish the job from whatever prefix it holds (possibly nothing),
// producing the reference output exactly once.
func TestViewClusterKillDuringTransfer(t *testing.T) {
	prog, ref, cb := viewProgram(t)
	cb.Kill1AtSend = 4
	cb.Kill2AtSend = 1 // the transfer's first frame dies with n2
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || !res.Killed2 || !res.SecondTakeover {
		t.Fatalf("promoted=%t killed2=%t takeover2=%t, want all", res.Promoted, res.Killed2, res.SecondTakeover)
	}
	if res.TailErr == nil || !errors.Is(res.TailErr, replication.ErrBackupLost) {
		t.Fatalf("transfer death surfaced as %v, want ErrBackupLost", res.TailErr)
	}
	mustAgree(t, ref, res.Console, "mid-transfer death output")
}

// TestViewClusterRejectsStaleEpochFrame: after the state transfer a deposed
// primary's epoch-1 frame (ack demanded) is delivered to the recruit. The
// recruit must drop it without acknowledging — the StaleEpochs counter is
// the drop's witness, and the run must still complete with reference output
// (the straggler perturbed nothing).
func TestViewClusterRejectsStaleEpochFrame(t *testing.T) {
	prog, ref, cb := viewProgram(t)
	cb.Kill1AtSend = 4
	cb.InjectStale = true
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || !res.StaleInjected {
		t.Fatalf("promoted=%t injected=%t; the probe never reached the recruit",
			res.Promoted, res.StaleInjected)
	}
	if res.StaleEpochs == 0 {
		t.Fatal("stale epoch-1 frame was not dropped by the recruit")
	}
	if res.Outcome2 != replication.OutcomePrimaryCompleted {
		t.Fatalf("recruit outcome %v after a dropped straggler, want clean completion", res.Outcome2)
	}
	mustAgree(t, ref, res.Console, "stale-injection output")
}

// TestViewClusterDoubleTakeoverGuard extends the double-takeover semantics
// of TestDoubleTakeover onto the view path: after n2's legitimate promotion,
// a second acquisition of the same view — by the same node or by the deposed
// primary — must fail explicitly rather than hand out a second license to
// commit output.
func TestViewClusterDoubleTakeoverGuard(t *testing.T) {
	prog, _, cb := viewProgram(t)
	cb.Kill1AtSend = 4
	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.FinalView.Num != 2 {
		t.Fatalf("promoted=%t view=%d, want a completed view-2 promotion", res.Promoted, res.FinalView.Num)
	}
	if err := res.svc.AcquirePromotion(nodeB, 2); !errors.Is(err, viewsvc.ErrAlreadyPromoted) {
		t.Fatalf("second takeover of view 2: err = %v, want ErrAlreadyPromoted", err)
	}
	if err := res.svc.AcquirePromotion(nodeA, 2); !errors.Is(err, viewsvc.ErrDead) {
		t.Fatalf("deposed primary taking over: err = %v, want ErrDead", err)
	}
	if err := res.svc.AcquirePromotion(nodeC, 2); !errors.Is(err, viewsvc.ErrNotPrimary) {
		t.Fatalf("recruit taking over the primary's view: err = %v, want ErrNotPrimary", err)
	}
}

// TestCorruptAckDesync is the regression test for the ack-loop desync fix:
// a fault plan corrupts the first acknowledgement the primary reads (flipped
// byte + garbage tail). The old `seq >= wantSeq` loop could let mangled acks
// satisfy an output commit; now the primary must abort with
// ErrProtocolDesync, and the backup's takeover still yields the reference
// output exactly once.
func TestCorruptAckDesync(t *testing.T) {
	prog, ref, cb := takeoverProgram(t)
	cb.FaultKind = transport.FaultCorruptRecv
	cb.FaultAt = 1
	res, err := RunCluster(cb.clusterConfig(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PrimaryErr, replication.ErrProtocolDesync) {
		t.Fatalf("primary error = %v, want ErrProtocolDesync", res.PrimaryErr)
	}
	if !res.Recovered {
		t.Fatal("backup did not take over after the desync")
	}
	mustAgree(t, ref, res.Console, "post-desync takeover output")
}
