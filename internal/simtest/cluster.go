// Package simtest is the deterministic simulation harness: it runs a complete
// primary/backup replication pair inside one process on a virtual clock
// (internal/simtest/clock) over a seeded simulated network
// (internal/simtest/simnet), so that an entire fault schedule — who crashed,
// at which exact frame, with which message delays and losses — is a pure
// function of a handful of seeds. A sweep over hundreds of kill points and
// fault schedules (see Sweep) completes in seconds of wall time, and any
// failure reproduces from the single combo string the sweep prints.
//
// The style follows FoundationDB's simulation testing: virtual time advances
// only when every participant is blocked, all nondeterminism is drawn from
// seeded PRNGs, and the assertion is the paper's exactly-once contract —
// whatever the schedule does, the recovered execution's observable output
// matches the failure-free reference.
package simtest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
	"repro/internal/vm"
)

// ClusterConfig describes one simulated primary/backup run.
type ClusterConfig struct {
	// Program is the compiled workload (required).
	Program *ftvm.Program
	// Mode is the replica-coordination mode (required).
	Mode ftvm.Mode

	// EnvSeed / PolicySeed seed the shared environment and the primary's
	// scheduling policy; RecoverSeed seeds the deliberately different
	// recovery policy (defaults 1234 / 77 / 4242, the sweep-test set).
	EnvSeed, PolicySeed, RecoverSeed int64
	// MinQuantum/MaxQuantum bound the primary's scheduling quantum
	// (defaults 64/512 — small, to stress interleavings); the recovery
	// policy uses RecoverMinQ/RecoverMaxQ (defaults 100/900).
	MinQuantum, MaxQuantum   uint64
	RecoverMinQ, RecoverMaxQ uint64
	// FlushEvery batches log records per frame (default 4: many frames, so
	// kill points land mid-protocol).
	FlushEvery int

	// Net shapes the simulated link (Net.Seed drives latency and reorder
	// draws; zero delays get simnet's defaults).
	Net simnet.Config
	// Fault optionally wraps the primary's endpoint in a transport fault
	// (drop/dup/partition/close...), injected at a deterministic operation
	// index with FaultSeed jitter — the channel-misbehaves axis.
	Fault     transport.FaultPlan
	FaultSeed int64

	// KillAtSend > 0 crashes the primary process at its KillAtSend-th
	// message offered to the link (1-based, counted below the fault wrapper)
	// — the process-dies axis, positioned exactly rather than by polling.
	// KillDeliver lets that final message escape onto the wire (a crash just
	// after the write); otherwise it dies mid-send and the frame is lost.
	KillAtSend  int
	KillDeliver bool

	// Heartbeat / AckTimeout / FailureTimeout are the liveness knobs, in
	// virtual time (defaults 0 / 10ms / 50ms — both detectors armed, so
	// every schedule terminates without real waiting).
	Heartbeat      time.Duration
	AckTimeout     time.Duration
	FailureTimeout time.Duration

	// Dispatch selects the interpreter engine for the primary and the
	// recovery VM (default threaded, like every production path).
	Dispatch ftvm.Dispatch
	// MaxInstructions bounds every execution (default 50M).
	MaxInstructions uint64
	// WallLimit is the real-time watchdog on the whole simulation
	// (default 30s): a scheduling bug panics instead of hanging the sweep.
	WallLimit time.Duration

	// Capture, when non-empty, writes the backup's replication log as a
	// durable .ftlog file (see replication.EncodeLog) after the schedule
	// plays out, seeded with the recovery-policy parameters so ftvm-debug
	// replays the exact execution the backup would reconstruct. Not part of
	// the combo key: it changes what is written to disk, never the run.
	Capture string
}

func (c *ClusterConfig) fill() error {
	if c.Program == nil {
		return errors.New("simtest: nil program")
	}
	if c.EnvSeed == 0 {
		c.EnvSeed = 1234
	}
	if c.PolicySeed == 0 {
		c.PolicySeed = 77
	}
	if c.RecoverSeed == 0 {
		c.RecoverSeed = 4242
	}
	if c.MinQuantum == 0 {
		c.MinQuantum = 64
	}
	if c.MaxQuantum < c.MinQuantum {
		c.MaxQuantum = c.MinQuantum * 8
	}
	if c.RecoverMinQ == 0 {
		c.RecoverMinQ = 100
	}
	if c.RecoverMaxQ < c.RecoverMinQ {
		c.RecoverMaxQ = c.RecoverMinQ * 9
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 4
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Millisecond
	}
	if c.FailureTimeout == 0 {
		c.FailureTimeout = 50 * time.Millisecond
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 50_000_000
	}
	if c.WallLimit == 0 {
		c.WallLimit = 30 * time.Second
	}
	return nil
}

// ClusterResult reports what one simulated schedule did. Every field is a
// deterministic function of the config (including VirtualElapsed, which is
// simulated — not wall — time), so results can be compared byte-for-byte
// across runs.
type ClusterResult struct {
	// Outcome is the backup's serve verdict; Killed whether the kill landed
	// before clean completion; Recovered whether the backup ran recovery.
	Outcome   replication.ServeOutcome
	Killed    bool
	Recovered bool
	// Console is the observable output after the schedule fully played out
	// (primary's if it completed, the recovered execution's otherwise).
	Console []string
	// RecordsLogged is the backup's log length at takeover (0 if clean).
	RecordsLogged int
	// PrimaryErr is the primary run's error verbatim (ErrBackupLost is
	// expected on many schedules and is not a harness failure).
	PrimaryErr error
	// Recovery is the backup's report when Recovered.
	Recovery *replication.RecoveryReport
	// VirtualElapsed is total simulated time from first instruction to the
	// end of recovery.
	VirtualElapsed time.Duration

	// backup and environ are retained for in-package tests that poke at the
	// promoted replica after the schedule ends (e.g. double takeover).
	backup  *replication.Backup
	environ *env.Env
}

// RunCluster plays one schedule to completion on a fresh virtual clock and
// returns the deterministic result. An error means the harness or the
// replication contract broke (e.g. the backup saw a clean halt but the
// primary failed for a reason other than a lost backup), not merely that the
// injected failure fired.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	clk := clock.NewVirtual()
	defer clk.Watchdog(cfg.WallLimit)()

	// The whole pair runs inside clock actors; the calling goroutine is not
	// an actor, so it may join with a plain WaitGroup without stalling
	// virtual time.
	var (
		res *ClusterResult
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		res, err = runCluster(clk, &cfg)
	})
	wg.Wait()
	return res, err
}

func runCluster(clk *clock.Virtual, cfg *ClusterConfig) (*ClusterResult, error) {
	environ := env.New(cfg.EnvSeed)
	pRaw, bEnd := simnet.Link(clk, cfg.Net)
	var pEnd transport.Endpoint = pRaw
	if cfg.Fault.Kind != transport.FaultNone {
		pEnd = transport.NewFaultyClock(pRaw, cfg.Fault, cfg.FaultSeed, clk)
	}

	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:           cfg.Mode,
		Endpoint:       pEnd,
		Policy:         vm.NewSeededPolicy(cfg.PolicySeed, cfg.MinQuantum, cfg.MaxQuantum),
		FlushEvery:     cfg.FlushEvery,
		HeartbeatEvery: cfg.Heartbeat,
		AckTimeout:     cfg.AckTimeout,
		Clock:          clk,
	})
	if err != nil {
		return nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         cfg.Program,
		Env:             environ,
		Coordinator:     primary,
		MaxInstructions: cfg.MaxInstructions,
		TrackProgress:   cfg.Mode == ftvm.ModeSched,
		Dispatch:        cfg.Dispatch,
	})
	if err != nil {
		return nil, err
	}
	backup, err := replication.NewBackup(replication.BackupConfig{
		Mode:           cfg.Mode,
		Endpoint:       bEnd,
		FailureTimeout: cfg.FailureTimeout,
		Clock:          clk,
	})
	if err != nil {
		return nil, err
	}

	if cfg.KillAtSend > 0 {
		deliver := cfg.KillDeliver
		at := cfg.KillAtSend
		pRaw.SetSendHook(func(n int, _ []byte) bool {
			if n < at {
				return true
			}
			if n == at {
				machine.Kill() // atomic flag; safe under the link lock
				return deliver
			}
			return false // dead processes send nothing
		})
	}

	serveDone := clock.NewFlag(clk)
	var outcome replication.ServeOutcome
	var serveErr error
	clk.Go(func() {
		defer serveDone.Set()
		outcome, serveErr = backup.Serve()
		if outcome.Failed() {
			// A real takeover tears the channel down; this also unblocks a
			// primary still parked on an ack for a swallowed frame.
			_ = bEnd.Close()
		}
	})

	t0 := clk.Now()
	runErr := machine.Run()
	serveDone.Wait()

	res := &ClusterResult{
		Outcome:       outcome,
		Killed:        machine.Killed(),
		Console:       environ.Console().Lines(),
		RecordsLogged: backup.Store().Len(),
		PrimaryErr:    runErr,
		backup:        backup,
		environ:       environ,
	}
	if cfg.Capture != "" {
		err := replication.WriteLogFile(cfg.Capture, replication.LogHeader{
			EnvSeed:         cfg.EnvSeed,
			PolicySeed:      cfg.RecoverSeed,
			MinQuantum:      cfg.RecoverMinQ,
			MaxQuantum:      cfg.RecoverMaxQ,
			Mode:            cfg.Mode,
			Dispatch:        cfg.Dispatch,
			MaxInstructions: cfg.MaxInstructions,
		}, cfg.Program, backup.Store().Records())
		if err != nil {
			return res, fmt.Errorf("capture log: %w", err)
		}
	}
	if serveErr != nil {
		return res, fmt.Errorf("backup serve: %w", serveErr)
	}
	if runErr != nil && !machine.Killed() && !errors.Is(runErr, replication.ErrBackupLost) {
		return res, fmt.Errorf("primary run: %w", runErr)
	}

	if outcome == replication.OutcomePrimaryCompleted {
		// Last-ack window: a schedule can eat the final halt-sync ack, so
		// the backup sees a clean halt while the primary reports the backup
		// lost. The console is complete either way (the halt marker only
		// ships after every output commit).
		res.VirtualElapsed = clk.Since(t0)
		return res, nil
	}
	if !outcome.Failed() {
		return res, fmt.Errorf("backup outcome %v with primary err %v", outcome, runErr)
	}

	res.Recovered = true
	_, report, err := backup.Recover(replication.RecoverConfig{
		Program:         cfg.Program,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(cfg.RecoverSeed, cfg.RecoverMinQ, cfg.RecoverMaxQ),
		MaxInstructions: cfg.MaxInstructions,
		Dispatch:        cfg.Dispatch,
	})
	res.VirtualElapsed = clk.Since(t0)
	res.Recovery = report
	res.Console = environ.Console().Lines()
	if err != nil {
		return res, fmt.Errorf("recovery after %v: %w", outcome, err)
	}
	return res, nil
}
