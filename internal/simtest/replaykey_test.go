package simtest

import (
	"strings"
	"testing"
)

// TestClassifyHistoricalReplayKeys runs the classifier over every key in all
// four regression seed tables: each must classify cleanly as its own kind
// and parse with the matching parser — the classifier can never strand a
// historical replay string.
func TestClassifyHistoricalReplayKeys(t *testing.T) {
	check := func(t *testing.T, key string, want ReplayKind) {
		t.Helper()
		got, err := ClassifyReplayKey(key)
		if err != nil {
			t.Fatalf("ClassifyReplayKey(%q): %v", key, err)
		}
		if got != want {
			t.Fatalf("ClassifyReplayKey(%q) = %v, want %v", key, got, want)
		}
		switch want {
		case ReplayPair:
			if _, err := ParseCombo(key); err != nil {
				t.Fatalf("ParseCombo(%q): %v", key, err)
			}
		case ReplayView:
			if _, err := ParseViewCombo(key); err != nil {
				t.Fatalf("ParseViewCombo(%q): %v", key, err)
			}
		case ReplayFleet:
			if _, err := ParseFleetCombo(key); err != nil {
				t.Fatalf("ParseFleetCombo(%q): %v", key, err)
			}
		case ReplayConsensus:
			if _, err := ParseConsensusCombo(key); err != nil {
				t.Fatalf("ParseConsensusCombo(%q): %v", key, err)
			}
		}
	}
	for _, rs := range replaySeeds {
		t.Run("pair/"+rs.class, func(t *testing.T) { check(t, rs.key, ReplayPair) })
	}
	for _, rs := range viewReplaySeeds {
		t.Run("view/"+rs.class, func(t *testing.T) { check(t, rs.key, ReplayView) })
	}
	for _, rs := range fleetReplaySeeds {
		t.Run("fleet/"+rs.class, func(t *testing.T) { check(t, rs.key, ReplayFleet) })
	}
	for _, rs := range consensusReplaySeeds {
		t.Run("consensus/"+rs.class, func(t *testing.T) { check(t, rs.key, ReplayConsensus) })
	}
}

// TestClassifyRoundTripsComboKeys classifies freshly-rendered Key() strings.
func TestClassifyRoundTripsComboKeys(t *testing.T) {
	keys := map[string]ReplayKind{
		Combo{ProgSeed: 7, NetSeed: 3, ReorderDen: 8}.Key():                      ReplayPair,
		ViewCombo{ProgSeed: 7, NetSeed: 3, ReorderDen: 8}.Key():                  ReplayView,
		FleetCombo{Seed: 7, Nodes: 4, Shards: 8, Clients: 100, Ops: 3}.Key():     ReplayFleet,
		ConsensusCombo{ProgSeed: 7, NetSeed: 3, ReorderDen: 8, ESeed: 1}.Key():   ReplayConsensus,
		ConsensusCombo{ProgSeed: 7, KillLeader: true, ReorderDen: 8}.Key():       ReplayConsensus,
		Combo{ProgSeed: 9, Dispatch: 1, NetSeed: 1, ReorderNum: 1, ReorderDen: 8}.Key(): ReplayPair,
	}
	for key, want := range keys {
		got, err := ClassifyReplayKey(key)
		if err != nil {
			t.Errorf("ClassifyReplayKey(%q): %v", key, err)
			continue
		}
		if got != want {
			t.Errorf("ClassifyReplayKey(%q) = %v, want %v", key, got, want)
		}
	}
}

// TestClassifyRejects covers the failure modes the substring sniffing let
// through: unknown fields, fields from the wrong kind, ambiguous keys,
// malformed parts, and discriminator names hiding inside values.
func TestClassifyRejects(t *testing.T) {
	cases := []struct {
		name, key, wantErr string
	}{
		{"empty", "", "empty replay key"},
		{"not key=value", "prog=1,size", "is not key=value"},
		{"unknown field", "prog=1,size=small,mode=lock,bogus=3", `"bogus" is not a pair-combo field`},
		{"typoed discriminator", "prog=1,size=small,mode=lock,kil1=4", `"kil1" is not a pair-combo field`},
		{"view field without discriminator", "prog=1,size=small,mode=lock,d1=0", `"d1" is not a pair-combo field`},
		{"pair field in fleet key", "seed=3,clients=10,net=4", `"net" is not a fleet-combo field`},
		{"ambiguous view+fleet", "kill1=4,clients=10", "ambiguous"},
		{"ambiguous view+consensus", "prog=1,kill1=4,who=leader", "ambiguous"},
		{"inject on pair", "prog=1,size=small,mode=lock,inject=1", `"inject" is not a pair-combo field`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ClassifyReplayKey(tc.key)
			if err == nil {
				t.Fatalf("ClassifyReplayKey(%q) accepted, want error containing %q", tc.key, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ClassifyReplayKey(%q) error %q does not contain %q", tc.key, err, tc.wantErr)
			}
		})
	}

	// A discriminator name inside a VALUE must not decide the kind — the
	// historical Contains(key, "kill1=") sniffing mis-filed such keys.
	key := `seed=3,nodes=4,shards=8,clients=10,ops=3,ka=1@250,kb=0@0,fault=kill1/13,inject=0`
	got, err := ClassifyReplayKey(key)
	if err != nil || got != ReplayFleet {
		t.Fatalf("ClassifyReplayKey(value containing kill1) = %v, %v; want fleet", got, err)
	}
	if IsViewKey(key) {
		t.Fatal("IsViewKey matched a fleet key whose fault value contains 'kill1'")
	}
}
