package simtest

import (
	"strings"
	"testing"

	ftvm "repro"
	"repro/internal/transport"
)

func TestConsensusComboKeyRoundTrip(t *testing.T) {
	cb := ConsensusCombo{
		ProgSeed: 9, Mode: ftvm.ModeSched,
		KillLeader: true, KillAtSend: 7, KillDeliver: true,
		PartAt: 3, PartLen: 4, InjectStale: true,
		FaultKind: transport.FaultCorruptRecv, FaultAt: 2,
		ESeed: 11, NetSeed: 5, ReorderNum: 1, ReorderDen: 8,
	}
	key := cb.Key()
	back, err := ParseConsensusCombo(key)
	if err != nil {
		t.Fatalf("parse %q: %v", key, err)
	}
	if back != cb {
		t.Fatalf("round trip changed the combo:\n  in  %+v\n  out %+v", cb, back)
	}
	if back.Key() != key {
		t.Fatalf("re-render changed the key: %q vs %q", back.Key(), key)
	}
}

func TestIsConsensusKeyDispatch(t *testing.T) {
	consensusKey := ConsensusCombo{ProgSeed: 1, Mode: ftvm.ModeLock}.Key()
	pairKey := Combo{ProgSeed: 1, Mode: ftvm.ModeLock}.Key()
	viewKey := ViewCombo{ProgSeed: 1, Mode: ftvm.ModeLock}.Key()
	if !IsConsensusKey(consensusKey) {
		t.Fatalf("consensus key not recognized: %q", consensusKey)
	}
	for _, other := range []string{pairKey, viewKey} {
		if IsConsensusKey(other) {
			t.Fatalf("non-consensus key misdispatched: %q", other)
		}
	}
	if IsViewKey(consensusKey) || IsFleetKey(consensusKey) {
		t.Fatalf("consensus key claimed by another harness: %q", consensusKey)
	}
}

// TestRunConsensusSweep runs a small sweep and checks both the top-level
// verdict (no divergence) and that the schedule classes actually fired:
// leader kills recovered from the committed prefix, follower kills rode out
// on the remaining majority, and stale injections were rejected.
func TestRunConsensusSweep(t *testing.T) {
	cfg := ConsensusSweepConfig{
		ProgSeeds: []uint64{1, 2},
		KillSends: []int{2, 5},
	}
	res := RunConsensusSweep(cfg, nil)
	for _, f := range res.Failures {
		t.Errorf("FAIL %s\n  replay: %s", f.TraceLine(), f.ReplayCommand())
	}
	var leaderKills, recoveries, staleSeen int
	for _, line := range res.Trace {
		if strings.Contains(line, "who=leader") && !strings.Contains(line, "kill=0,") {
			leaderKills++
			if strings.Contains(line, "recovered=true") {
				recoveries++
			}
		}
		if strings.Contains(line, "inject=1") && !strings.Contains(line, "stale=0 ") {
			staleSeen++
		}
	}
	if leaderKills == 0 || recoveries == 0 {
		t.Fatalf("sweep never exercised leader-kill recovery (%d kills, %d recoveries)", leaderKills, recoveries)
	}
	if staleSeen == 0 {
		t.Fatal("sweep never counted a rejected stale-term frame")
	}
}

// TestConsensusTraceDeterminism replays the same configuration twice and
// requires byte-identical traces — elections, kills, partitions, commit
// timing and all. This is the property that makes a printed replay string a
// real repro.
func TestConsensusTraceDeterminism(t *testing.T) {
	cfg := ConsensusSweepConfig{
		ProgSeeds: []uint64{3},
		KillSends: []int{2, 5},
		ESeeds:    []uint64{1, 7}, // 7: a contested election (simultaneous candidacies)
	}
	a := RunConsensusSweep(cfg, nil)
	b := RunConsensusSweep(cfg, nil)
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace line %d differs:\n  %s\n  %s", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestConsensusFollowerKillKeepsMajority pins the follower-kill contract
// directly: the run completes without recovery, on the leader's term,
// through the surviving majority.
func TestConsensusFollowerKillKeepsMajority(t *testing.T) {
	prog, ref, err := comboProgram(Combo{ProgSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cb := ConsensusCombo{
		ProgSeed: 2, Mode: ftvm.ModeLock,
		KillAtSend: 3, // follower's 3rd protocol send
		ESeed:      1, NetSeed: 1, ReorderNum: 1, ReorderDen: 8,
	}
	out := RunConsensusCombo(cb, prog, ref)
	if out.Failed() {
		t.Fatalf("follower kill diverged: %s", out.TraceLine())
	}
	r := out.Result
	if r.Killed || r.Recovered {
		t.Fatalf("follower kill must not kill the VM or force recovery: %+v", r)
	}
	if r.FinalTerm != 1 || r.FinalLeader != r.FirstLeader {
		t.Fatalf("leadership moved on a follower kill: term %d, leader %d->%d",
			r.FinalTerm, r.FirstLeader, r.FinalLeader)
	}
}
