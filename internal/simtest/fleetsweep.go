package simtest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/loadgen"
	"repro/internal/simtest/clock"
)

// FleetCombo is one point of the sharded-fleet sweep: a fleet shape, a seeded
// open-loop workload, up to two node kills inside the arrival window, one
// replication-hop fault plan, and optionally a stale-epoch frame probe after
// the run. Its Key() round-trips through ParseFleetCombo, so any failing
// combo replays from a single string:
//
//	go run ./cmd/ftvm-sim -replay "seed=7,nodes=4,shards=8,clients=2000,ops=3,ka=2@300,kb=0@0,fault=ackdrop/13,inject=1"
type FleetCombo struct {
	Seed    uint64
	Nodes   int
	Shards  int
	Clients int
	Ops     int
	// Kill schedule: node is a 1-based index into the fleet's join order
	// ("n<k>"), 0 = no kill; At is the offset in the arrival window.
	Kill1Node int
	Kill1At   time.Duration
	Kill2Node int
	Kill2At   time.Duration
	// Fault and FaultEvery strike every Nth replication attempt.
	Fault      string
	FaultEvery uint64
	// InjectStale probes a reseated shard with a deposed epoch's frame after
	// the workload drains; the backup must drop it unlogged.
	InjectStale bool
}

// Key renders the combo as its canonical replay string. The "clients=" field
// is what distinguishes a fleet replay from a pair or view-cluster replay.
func (cb FleetCombo) Key() string {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("seed=%d,nodes=%d,shards=%d,clients=%d,ops=%d,ka=%d@%d,kb=%d@%d,fault=%s/%d,inject=%d",
		cb.Seed, cb.Nodes, cb.Shards, cb.Clients, cb.Ops,
		cb.Kill1Node, cb.Kill1At/time.Millisecond,
		cb.Kill2Node, cb.Kill2At/time.Millisecond,
		cb.Fault, cb.FaultEvery, b2i(cb.InjectStale))
}

// IsFleetKey reports whether a replay string denotes a well-formed fleet
// combo (ParseFleetCombo) rather than a pair or view-cluster combo.
func IsFleetKey(key string) bool {
	k, err := ClassifyReplayKey(key)
	return err == nil && k == ReplayFleet
}

// ParseFleetCombo parses a Key()-formatted replay string.
func ParseFleetCombo(key string) (FleetCombo, error) {
	var cb FleetCombo
	kill := func(v string) (int, time.Duration, error) {
		node, at, ok := strings.Cut(v, "@")
		if !ok {
			return 0, 0, fmt.Errorf("kill %q is not node@ms", v)
		}
		n, err := strconv.Atoi(node)
		if err != nil {
			return 0, 0, err
		}
		ms, err := strconv.Atoi(at)
		if err != nil {
			return 0, 0, err
		}
		return n, time.Duration(ms) * time.Millisecond, nil
	}
	for _, field := range strings.Split(key, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cb, fmt.Errorf("combo field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			cb.Seed, err = strconv.ParseUint(v, 0, 64)
		case "nodes":
			cb.Nodes, err = strconv.Atoi(v)
		case "shards":
			cb.Shards, err = strconv.Atoi(v)
		case "clients":
			cb.Clients, err = strconv.Atoi(v)
		case "ops":
			cb.Ops, err = strconv.Atoi(v)
		case "ka":
			cb.Kill1Node, cb.Kill1At, err = kill(v)
		case "kb":
			cb.Kill2Node, cb.Kill2At, err = kill(v)
		case "fault":
			kind, every, ok := strings.Cut(v, "/")
			if !ok {
				return cb, fmt.Errorf("fault %q is not kind/every", v)
			}
			cb.Fault = kind
			cb.FaultEvery, err = strconv.ParseUint(every, 0, 64)
		case "inject":
			cb.InjectStale = v == "1" || v == "true"
		default:
			return cb, fmt.Errorf("unknown fleet combo field %q", k)
		}
		if err != nil {
			return cb, fmt.Errorf("fleet combo field %q: %w", field, err)
		}
	}
	return cb, nil
}

// FleetComboOutcome is one fleet combo's deterministic result plus the
// verdict of the post-run invariant checks.
type FleetComboOutcome struct {
	Combo FleetCombo
	Stats *loadgen.Stats
	// Detail is "" when every invariant held: all requests completed, the
	// model verified at-most-once execution, kills promoted, blast stayed
	// under the killed node's share, and injected stale frames were dropped.
	Detail string
	Err    error
}

// Failed reports whether the combo errored or broke an invariant.
func (o *FleetComboOutcome) Failed() bool { return o.Err != nil || o.Detail != "" }

// TraceLine renders the combo's outcome from deterministic fields only, so a
// whole sweep's trace is byte-identical across runs.
func (o *FleetComboOutcome) TraceLine() string {
	var sb strings.Builder
	sb.WriteString(o.Combo.Key())
	sb.WriteString(" -> ")
	if o.Err != nil {
		fmt.Fprintf(&sb, "ERROR %v", o.Err)
		return sb.String()
	}
	st := o.Stats
	fmt.Fprintf(&sb, "oks=%d req=%d retries=%d silent=%d unavail=%d notowner=%d exec=%d dup=%d resent=%d promos=%d transfers=%d stale=%d blast=%d/%d p50=%s p99=%s vtime=%s sum=%016x",
		st.OKs, st.Requests, st.Retries, st.Silent, st.Unavailable, st.NotOwner,
		st.Fleet.Executed, st.Fleet.DupHits, st.Fleet.Resent,
		st.Fleet.Promotions, st.Fleet.Transfers, st.Fleet.StaleFrames,
		st.TenantsBlasted, st.TenantsActive, st.P50, st.P99, st.Elapsed, st.Checksum)
	if o.Detail != "" {
		fmt.Fprintf(&sb, " FAIL %s", o.Detail)
	} else {
		sb.WriteString(" ok")
	}
	return sb.String()
}

// ReplayCommand renders the shell command that reproduces this combo alone.
func (o *FleetComboOutcome) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/ftvm-sim -replay %q", o.Combo.Key())
}

// fleetConfigs expands the combo into the fleet and workload configurations
// it denotes.
func (cb FleetCombo) fleetConfigs(clk clock.Clock) (fleet.Config, loadgen.Config) {
	nodes := make([]string, cb.Nodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i+1)
	}
	fcfg := fleet.Config{
		Clock:      clk,
		Nodes:      nodes,
		Shards:     cb.Shards,
		Fault:      cb.Fault,
		FaultEvery: cb.FaultEvery,
	}
	lcfg := loadgen.Config{
		Clients:      cb.Clients,
		OpsPerClient: cb.Ops,
		Seed:         cb.Seed,
	}
	if cb.Clients > 4096 {
		lcfg.SampleEvery = 64 // bound observation memory on large populations
	}
	if cb.Kill1Node > 0 {
		lcfg.Kills = append(lcfg.Kills, loadgen.Kill{At: cb.Kill1At, Node: fmt.Sprintf("n%d", cb.Kill1Node)})
	}
	if cb.Kill2Node > 0 {
		lcfg.Kills = append(lcfg.Kills, loadgen.Kill{At: cb.Kill2At, Node: fmt.Sprintf("n%d", cb.Kill2Node)})
	}
	return fcfg, lcfg
}

// RunFleetCombo plays the combo's workload on a fresh virtual clock and
// checks the fleet invariants the sweep exists to enforce: every request
// completes exactly once against the model (loadgen.Run verifies this), a
// kill causes promotions but blasts less than the dead node's seat share, and
// a stale-epoch frame probed at a reseated shard is dropped unlogged.
func RunFleetCombo(cb FleetCombo) *FleetComboOutcome {
	out := &FleetComboOutcome{Combo: cb}
	clk := clock.NewVirtual()
	defer clk.Watchdog(2 * time.Minute)()
	fcfg, lcfg := cb.fleetConfigs(clk)
	f, err := fleet.New(fcfg)
	if err != nil {
		out.Err = err
		return out
	}
	clk.Attach()
	defer clk.Detach()
	st, _, err := loadgen.Run(f, clk, lcfg)
	out.Stats = st
	if err != nil {
		out.Err = err
		return out
	}

	var fail []string
	if want := uint64(cb.Clients * cb.Ops); st.OKs != want {
		fail = append(fail, fmt.Sprintf("oks=%d want=%d", st.OKs, want))
	}
	if st.Fleet.Executed < st.Requests {
		fail = append(fail, fmt.Sprintf("executed=%d < requests=%d", st.Fleet.Executed, st.Requests))
	}
	kills := 0
	if cb.Kill1Node > 0 {
		kills++
	}
	if cb.Kill2Node > 0 {
		kills++
	}
	if kills > 0 {
		if st.Fleet.Promotions == 0 {
			fail = append(fail, "kill caused no promotions")
		}
		// Blast stays under the dead nodes' share of the fleet.
		if st.BlastRadius >= float64(kills)/float64(cb.Nodes) {
			fail = append(fail, fmt.Sprintf("blast=%d/%d >= %d/%d nodes",
				st.TenantsBlasted, st.TenantsActive, kills, cb.Nodes))
		}
	} else if cb.Fault == fleet.FaultNone || cb.FaultEvery == 0 {
		if st.Retries != 0 || st.Silent != 0 {
			fail = append(fail, fmt.Sprintf("clean run retried %d / silenced %d", st.Retries, st.Silent))
		}
		if st.Fleet.Executed != st.Requests {
			fail = append(fail, fmt.Sprintf("clean run executed=%d != requests=%d", st.Fleet.Executed, st.Requests))
		}
	}
	if cb.InjectStale {
		// Probe the first reseated shard with its formation epoch (Form
		// issues epochs 1..Shards in shard order); with no reseat, probe
		// shard 0 with the never-issued epoch 0. Either way the backup's
		// epoch gate must drop the frame without logging it.
		shard, stale := 0, uint64(0)
		for i := 0; i < f.NumShards(); i++ {
			if f.Shard(i).Num != uint64(i+1) {
				shard, stale = i, uint64(i+1)
				break
			}
		}
		before := f.Counters().StaleFrames
		if f.InjectStaleFrame(shard, stale) {
			fail = append(fail, fmt.Sprintf("stale-epoch frame was logged at shard %d", shard))
		}
		if f.Counters().StaleFrames == before {
			fail = append(fail, "stale-epoch frame not counted as dropped")
		}
		st.Fleet = f.Counters() // trace reflects the probe
	}
	out.Detail = strings.Join(fail, "; ")
	return out
}

// FleetSweepConfig enumerates the fleet schedule space: for every seed, one
// clean run, then for each kill schedule a kill-only run, a kill per fault
// kind, a double-kill run, and a stale-injection run.
type FleetSweepConfig struct {
	// Seeds are the workload master seeds (required).
	Seeds []uint64
	// Nodes / Shards give the fleet shape (default 4 nodes, 8 shards).
	Nodes  int
	Shards int
	// Clients / Ops give the per-combo population (default 1000 x 3).
	Clients int
	Ops     int
	// Kill1 offsets inside the arrival window (default 200ms, 600ms); the
	// killed node rotates deterministically with the schedule index.
	Kill1Ats []time.Duration
	// Kill2At is the second kill's offset for double-kill combos (default
	// 700ms).
	Kill2At time.Duration
	// FaultEvery is the replication fault stride (default 13).
	FaultEvery uint64
}

func (c *FleetSweepConfig) fill() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Clients == 0 {
		c.Clients = 1000
	}
	if c.Ops == 0 {
		c.Ops = 3
	}
	if len(c.Kill1Ats) == 0 {
		c.Kill1Ats = []time.Duration{200 * time.Millisecond, 600 * time.Millisecond}
	}
	if c.Kill2At == 0 {
		c.Kill2At = 700 * time.Millisecond
	}
	if c.FaultEvery == 0 {
		c.FaultEvery = 13
	}
}

// Combos expands the configuration into the full deterministic schedule list.
func (c *FleetSweepConfig) Combos() []FleetCombo {
	c.fill()
	var out []FleetCombo
	for _, seed := range c.Seeds {
		base := FleetCombo{
			Seed: seed, Nodes: c.Nodes, Shards: c.Shards,
			Clients: c.Clients, Ops: c.Ops, Fault: fleet.FaultNone,
		}
		out = append(out, base) // clean run
		for i, at := range c.Kill1Ats {
			v := base
			v.Kill1Node = 1 + (int(seed)+i)%c.Nodes
			v.Kill1At = at
			out = append(out, v) // kill only
			for _, kind := range []string{fleet.FaultFrameDrop, fleet.FaultAckDrop, fleet.FaultReplyDrop} {
				vf := v
				vf.Fault = kind
				vf.FaultEvery = c.FaultEvery
				out = append(out, vf) // kill x replication fault
			}
			vv := v
			vv.Kill2Node = 1 + v.Kill1Node%c.Nodes // a different node
			vv.Kill2At = c.Kill2At
			out = append(out, vv) // double kill, rebalance twice
			inj := v
			inj.InjectStale = true
			out = append(out, inj) // deposed-epoch straggler probe
		}
	}
	return out
}

// FleetSweepResult is the outcome of a full fleet sweep.
type FleetSweepResult struct {
	Combos   int
	Failures []*FleetComboOutcome
	Trace    []string
	Elapsed  time.Duration // wall time (reporting only; never in the trace)
}

// RunFleetSweep plays every combo in order, emitting one trace line per combo
// via logf (nil = collect only). The trace is a pure function of the
// configuration.
func RunFleetSweep(cfg FleetSweepConfig, logf func(string)) *FleetSweepResult {
	combos := cfg.Combos()
	res := &FleetSweepResult{Combos: len(combos)}
	t0 := clock.Real.Now()
	for _, cb := range combos {
		out := RunFleetCombo(cb)
		line := out.TraceLine()
		res.Trace = append(res.Trace, line)
		if logf != nil {
			logf(line)
		}
		if out.Failed() {
			res.Failures = append(res.Failures, out)
		}
	}
	res.Elapsed = clock.Real.Since(t0)
	return res
}
