package simtest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	ftvm "repro"
	"repro/internal/env"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
	"repro/internal/viewsvc"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Node names of the simulated three-node replica set. View 1 pairs n1
// (primary) with n2 (backup); n3 idles until a failure recruits it.
const (
	nodeA = "n1"
	nodeB = "n2"
	nodeC = "n3"
)

// ViewClusterConfig describes one simulated three-node schedule: a view
// service forms {n1 primary, n2 backup, n3 idle}; killing n1 promotes n2,
// which recruits n3 through a snapshot + live-tail state transfer under the
// next epoch; killing n2 mid-transfer or mid-tail leaves n3 to run the final
// recovery alone. Surviving the whole schedule with reference-identical
// output is the n−1 sequential-failure claim of the view-change design.
type ViewClusterConfig struct {
	// Program is the compiled workload (required).
	Program *ftvm.Program
	// Mode is the replica-coordination mode (required).
	Mode ftvm.Mode

	// Seeds and quanta, as in ClusterConfig (same defaults).
	EnvSeed, PolicySeed, RecoverSeed int64
	MinQuantum, MaxQuantum           uint64
	RecoverMinQ, RecoverMaxQ         uint64
	// FlushEvery batches log records per frame (default 4).
	FlushEvery int

	// Net shapes both simulated links; the second (n2→n3) link folds a
	// constant into the seed so the two channels draw different schedules
	// from one knob.
	Net simnet.Config
	// Fault optionally wraps the *promoted* primary's endpoint toward the
	// recruit — channel misbehaviour on the new pair, including corrupting
	// the acks the state transfer depends on (FaultCorruptRecv).
	Fault     transport.FaultPlan
	FaultSeed int64

	// Kill1AtSend crashes n1 at its Kill1AtSend-th message on the first link
	// (1-based, 0 = never); Kill1Deliver lets the final frame escape.
	Kill1AtSend  int
	Kill1Deliver bool
	// Kill2AtSend crashes the promoted n2 at its Kill2AtSend-th message on
	// the second link — snapshot frames count, so small values die
	// mid-transfer and larger ones mid-tail.
	Kill2AtSend  int
	Kill2Deliver bool

	// InjectStale, when set, delivers a stale epoch-1 frame to n3 right
	// after the state transfer — a deposed primary's straggler. The recruit
	// must drop it without acknowledging (ViewClusterResult.StaleEpochs).
	InjectStale bool

	// Liveness knobs in virtual time (defaults 0 / 10ms / 50ms).
	Heartbeat      time.Duration
	AckTimeout     time.Duration
	FailureTimeout time.Duration

	// MaxInstructions bounds every execution (default 50M); WallLimit is the
	// real-time watchdog on the whole simulation (default 30s).
	MaxInstructions uint64
	WallLimit       time.Duration
}

func (c *ViewClusterConfig) fill() error {
	if c.Program == nil {
		return errors.New("simtest: nil program")
	}
	if c.EnvSeed == 0 {
		c.EnvSeed = 1234
	}
	if c.PolicySeed == 0 {
		c.PolicySeed = 77
	}
	if c.RecoverSeed == 0 {
		c.RecoverSeed = 4242
	}
	if c.MinQuantum == 0 {
		c.MinQuantum = 64
	}
	if c.MaxQuantum < c.MinQuantum {
		c.MaxQuantum = c.MinQuantum * 8
	}
	if c.RecoverMinQ == 0 {
		c.RecoverMinQ = 100
	}
	if c.RecoverMaxQ < c.RecoverMinQ {
		c.RecoverMaxQ = c.RecoverMinQ * 9
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 4
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Millisecond
	}
	if c.FailureTimeout == 0 {
		c.FailureTimeout = 50 * time.Millisecond
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 50_000_000
	}
	if c.WallLimit == 0 {
		c.WallLimit = 30 * time.Second
	}
	return nil
}

// ViewClusterResult reports what one three-node schedule did. Every field is
// a deterministic function of the config.
type ViewClusterResult struct {
	// FinalView is the configuration the schedule ended in.
	FinalView viewsvc.View
	// Outcome1 is n2's serve verdict for view 1; Killed1 whether the first
	// kill landed before n1 completed.
	Outcome1 replication.ServeOutcome
	Killed1  bool
	// Promoted reports that n2 took over (view 2) and ran the state-transfer
	// promotion toward n3.
	Promoted bool
	// Outcome2 is n3's serve verdict for view 2 (zero value if no
	// promotion); Killed2 whether the second kill landed — during transfer
	// (no VM yet) or during the tail-teed replay.
	Outcome2 replication.ServeOutcome
	Killed2  bool
	// SecondTakeover reports that n3 ran the final recovery alone (view 3).
	SecondTakeover bool
	// Console is the observable output after the schedule fully played out.
	Console []string
	// Records2 / Records3 are n2's / n3's log lengths at their takeovers.
	Records2, Records3 int
	// StaleEpochs counts old-epoch frames n3 dropped without acking.
	StaleEpochs uint64
	// StaleInjected reports that the configured stale-epoch straggler was
	// actually delivered to n3 (the transfer can die first, or the kill can
	// swallow the probe itself — then nothing was injected to assert on).
	StaleInjected bool
	// PrimaryErr / TailErr are the n1 run's and the promotion's errors
	// verbatim (ErrBackupLost and ErrProtocolDesync are expected on many
	// schedules and are not harness failures).
	PrimaryErr error
	TailErr    error
	// VirtualElapsed is total simulated time across all phases.
	VirtualElapsed time.Duration

	// Retained for in-package tests that poke at the survivors.
	environ *env.Env
	svc     *viewsvc.Service
	backup3 *replication.Backup
}

// RunViewCluster plays one three-node schedule to completion on a fresh
// virtual clock. An error means the harness or the replication contract
// broke, not merely that an injected failure fired.
func RunViewCluster(cfg ViewClusterConfig) (*ViewClusterResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	clk := clock.NewVirtual()
	defer clk.Watchdog(cfg.WallLimit)()

	var (
		res *ViewClusterResult
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		res, err = runViewCluster(clk, &cfg)
	})
	wg.Wait()
	return res, err
}

func runViewCluster(clk *clock.Virtual, cfg *ViewClusterConfig) (*ViewClusterResult, error) {
	environ := env.New(cfg.EnvSeed)
	svc := viewsvc.New(viewsvc.Config{Clock: clk})
	svc.Join(nodeA)
	svc.Join(nodeB)
	svc.Join(nodeC)
	view1, err := svc.Form()
	if err != nil {
		return nil, err
	}
	res := &ViewClusterResult{environ: environ, svc: svc}
	finish := func() (*ViewClusterResult, error) {
		res.Console = environ.Console().Lines()
		res.FinalView = svc.View()
		return res, nil
	}

	// ---- View 1: n1 primary, n2 backup, n3 idle. ----
	p1Raw, b1End := simnet.Link(clk, cfg.Net)
	primary1, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:           cfg.Mode,
		Endpoint:       p1Raw,
		Policy:         vm.NewSeededPolicy(cfg.PolicySeed, cfg.MinQuantum, cfg.MaxQuantum),
		FlushEvery:     cfg.FlushEvery,
		HeartbeatEvery: cfg.Heartbeat,
		AckTimeout:     cfg.AckTimeout,
		Clock:          clk,
		Epoch:          view1.Num,
	})
	if err != nil {
		return nil, err
	}
	machine1, err := vm.New(vm.Config{
		Program:         cfg.Program,
		Env:             environ,
		Coordinator:     primary1,
		MaxInstructions: cfg.MaxInstructions,
		TrackProgress:   cfg.Mode == ftvm.ModeSched,
	})
	if err != nil {
		return nil, err
	}
	backup2, err := replication.NewBackup(replication.BackupConfig{
		Mode:           cfg.Mode,
		Endpoint:       b1End,
		FailureTimeout: cfg.FailureTimeout,
		Clock:          clk,
		Epoch:          view1.Num,
	})
	if err != nil {
		return nil, err
	}

	if cfg.Kill1AtSend > 0 {
		deliver := cfg.Kill1Deliver
		at := cfg.Kill1AtSend
		p1Raw.SetSendHook(func(n int, _ []byte) bool {
			if n < at {
				return true
			}
			if n == at {
				machine1.Kill()
				return deliver
			}
			return false
		})
	}

	serve1Done := clock.NewFlag(clk)
	var outcome1 replication.ServeOutcome
	var serve1Err error
	clk.Go(func() {
		defer serve1Done.Set()
		outcome1, serve1Err = backup2.Serve()
		if outcome1.Failed() {
			_ = b1End.Close()
		}
	})

	t0 := clk.Now()
	run1Err := machine1.Run()
	serve1Done.Wait()

	res.Outcome1 = outcome1
	res.Killed1 = machine1.Killed()
	res.PrimaryErr = run1Err
	if serve1Err != nil {
		return res, fmt.Errorf("n2 serve: %w", serve1Err)
	}
	if run1Err != nil && !machine1.Killed() && !errors.Is(run1Err, replication.ErrBackupLost) {
		return res, fmt.Errorf("n1 run: %w", run1Err)
	}
	if outcome1 == replication.OutcomePrimaryCompleted {
		res.VirtualElapsed = clk.Since(t0)
		return finish()
	}
	if !outcome1.Failed() {
		return res, fmt.Errorf("n2 outcome %v with n1 err %v", outcome1, run1Err)
	}

	// ---- View change: n2 reports the failure and acquires the promotion
	// before any of its outputs may count as committed in view 2. ----
	view2, err := svc.ReportFailure(nodeB, nodeA)
	if err != nil {
		return res, fmt.Errorf("report n1 failure: %w", err)
	}
	if view2.Primary != nodeB || view2.Backup != nodeC {
		return res, fmt.Errorf("view after n1 death = %+v, want {n2, n3}", view2)
	}
	if err := svc.AcquirePromotion(nodeB, view2.Num); err != nil {
		return res, fmt.Errorf("n2 promotion: %w", err)
	}
	res.Promoted = true
	res.Records2 = backup2.Store().Len()

	// ---- View 2: n2 promoted, n3 recruited via state transfer. ----
	net2 := cfg.Net
	net2.Seed ^= 0x9E3779B9
	p2Raw, b2End := simnet.Link(clk, net2)
	var tailEnd transport.Endpoint = p2Raw
	if cfg.Fault.Kind != transport.FaultNone {
		tailEnd = transport.NewFaultyClock(p2Raw, cfg.Fault, cfg.FaultSeed, clk)
	}
	backup3, err := replication.NewBackup(replication.BackupConfig{
		Mode:           cfg.Mode,
		Endpoint:       b2End,
		FailureTimeout: cfg.FailureTimeout,
		Clock:          clk,
		Epoch:          view2.Num,
	})
	if err != nil {
		return res, err
	}
	res.backup3 = backup3

	// The promoted VM is built inside Recover; the kill hook reaches it via
	// an atomic cell (heartbeat sends can run the hook off this goroutine).
	// A kill that fires before the cell is set lands mid-transfer: nothing
	// to kill yet, but subsequent sends are swallowed, which aborts the
	// snapshot on its ack and fails the promotion — the intended crash.
	var machine2 atomic.Pointer[vm.VM]
	var kill2Fired atomic.Bool
	if cfg.Kill2AtSend > 0 {
		deliver := cfg.Kill2Deliver
		at := cfg.Kill2AtSend
		p2Raw.SetSendHook(func(n int, _ []byte) bool {
			if n < at {
				return true
			}
			if n == at {
				if m := machine2.Load(); m != nil {
					m.Kill()
				}
				kill2Fired.Store(true)
				return deliver
			}
			return false
		})
	}

	serve2Done := clock.NewFlag(clk)
	var outcome2 replication.ServeOutcome
	var serve2Err error
	clk.Go(func() {
		defer serve2Done.Set()
		outcome2, serve2Err = backup3.Serve()
		if outcome2.Failed() {
			_ = b2End.Close()
		}
	})

	prom, err := replication.PreparePromotion(backup2, replication.RecoverConfig{
		Program:         cfg.Program,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(cfg.RecoverSeed, cfg.RecoverMinQ, cfg.RecoverMaxQ),
		MaxInstructions: cfg.MaxInstructions,
		OnVM:            func(v *vm.VM) { machine2.Store(v) },
	}, replication.PrimaryConfig{
		Mode:           cfg.Mode,
		Endpoint:       tailEnd,
		FlushEvery:     cfg.FlushEvery,
		HeartbeatEvery: cfg.Heartbeat,
		AckTimeout:     cfg.AckTimeout,
		Clock:          clk,
		Epoch:          view2.Num,
	})
	if err != nil {
		return res, fmt.Errorf("prepare promotion: %w", err)
	}
	if cfg.InjectStale {
		staleEpoch := view1.Num
		maxDelay := net2.MaxDelay
		if maxDelay == 0 {
			minDelay := net2.MinDelay
			if minDelay == 0 {
				minDelay = 50 * time.Microsecond // simnet's default floor
			}
			maxDelay = 10 * minDelay
		}
		prom.AfterTransfer = func(*replication.Primary) error {
			// A deposed primary's straggler arriving on the new pair's
			// channel: an epoch-1 frame, ack demanded. The recruit must
			// drop it without acknowledging — an ack would let the old
			// epoch satisfy an output commit. Sent below the fault wrapper
			// so the fault plan cannot eat the probe itself.
			var buf wire.Buffer
			if err := buf.Append(&wire.Heartbeat{Seq: 999}); err != nil {
				return err
			}
			deadBefore := kill2Fired.Load()
			err := p2Raw.Send(wire.EncodeFrame(&wire.Frame{
				Seq: 999, Epoch: staleEpoch, AckWanted: true, Payload: buf.Bytes(),
			}))
			if err != nil {
				return err
			}
			// The probe only counts if it escaped the kill hook: not after
			// the process died, and on the fatal send only with delivery.
			deadAfter := kill2Fired.Load()
			res.StaleInjected = !deadBefore && (!deadAfter || cfg.Kill2Deliver)
			if res.StaleInjected {
				// Park past the link's delay bound so the recruit has
				// provably processed (and dropped) the probe before replay
				// begins — StaleEpochs is then assertable regardless of how
				// the rest of the schedule ends.
				clk.Sleep(2 * maxDelay)
			}
			return nil
		}
	}

	vm2, _, tailErr := prom.Run()
	serve2Done.Wait()

	res.TailErr = tailErr
	res.Outcome2 = outcome2
	res.Records3 = backup3.Store().Len()
	res.StaleEpochs = backup3.Stats().StaleEpochs
	if serve2Err != nil {
		return res, fmt.Errorf("n3 serve: %w", serve2Err)
	}
	res.Killed2 = kill2Fired.Load() || (vm2 != nil && vm2.Killed())
	if tailErr != nil && !res.Killed2 && !errors.Is(tailErr, replication.ErrBackupLost) {
		return res, fmt.Errorf("promotion run: %w", tailErr)
	}
	died2 := res.Killed2 || tailErr != nil
	if !died2 || outcome2 == replication.OutcomePrimaryCompleted {
		// Either the promoted execution completed cleanly, or the kill
		// landed after the halt marker shipped — the console is complete
		// in both cases.
		res.VirtualElapsed = clk.Since(t0)
		return finish()
	}
	if !outcome2.Failed() {
		return res, fmt.Errorf("n3 outcome %v with promoted n2 err %v", outcome2, tailErr)
	}

	// ---- View 3: n3, holding snapshot + tail, recovers alone. ----
	view3, err := svc.ReportFailure(nodeC, nodeB)
	if err != nil {
		return res, fmt.Errorf("report n2 failure: %w", err)
	}
	if view3.Primary != nodeC {
		return res, fmt.Errorf("view after n2 death = %+v, want n3 primary", view3)
	}
	if err := svc.AcquirePromotion(nodeC, view3.Num); err != nil {
		return res, fmt.Errorf("n3 promotion: %w", err)
	}
	res.SecondTakeover = true
	_, _, err = backup3.Recover(replication.RecoverConfig{
		Program:         cfg.Program,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(cfg.RecoverSeed^0x5D, cfg.RecoverMinQ, cfg.RecoverMaxQ),
		MaxInstructions: cfg.MaxInstructions,
	})
	res.VirtualElapsed = clk.Since(t0)
	if err != nil {
		return res, fmt.Errorf("n3 recovery: %w", err)
	}
	return finish()
}
