package simtest

import (
	"strings"
	"testing"
)

func TestFleetComboKeyRoundTrip(t *testing.T) {
	cfg := FleetSweepConfig{Seeds: []uint64{3, 9}}
	for _, cb := range cfg.Combos() {
		key := cb.Key()
		got, err := ParseFleetCombo(key)
		if err != nil {
			t.Fatalf("parse %q: %v", key, err)
		}
		if got != cb {
			t.Fatalf("round trip %q:\n got %+v\nwant %+v", key, got, cb)
		}
		if !IsFleetKey(key) {
			t.Fatalf("IsFleetKey(%q) = false", key)
		}
		if IsViewKey(key) {
			t.Fatalf("fleet key %q also matches IsViewKey", key)
		}
	}
	// A view key must not be mistaken for a fleet key.
	viewKey := "prog=7,size=small,mode=sched,kill1=3,d1=0,kill2=5,d2=1,fault=none@0,inject=1,net=3,reorder=1/8"
	if IsFleetKey(viewKey) {
		t.Fatalf("view key %q matches IsFleetKey", viewKey)
	}
}

func TestParseFleetComboRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"clients",                  // not key=value
		"clients=x",                // not an int
		"clients=10,ka=3",          // kill missing @
		"clients=10,fault=ackdrop", // fault missing /every
		"clients=10,zebra=1",       // unknown field
	} {
		if _, err := ParseFleetCombo(bad); err == nil {
			t.Fatalf("ParseFleetCombo(%q) accepted garbage", bad)
		}
	}
}

// TestFleetSweepDeterministic: the same configuration swept twice produces a
// byte-identical trace — the property that makes any failing line a complete
// repro — and the default schedule passes every invariant.
func TestFleetSweepDeterministic(t *testing.T) {
	cfg := FleetSweepConfig{Seeds: []uint64{1}, Clients: 400, Ops: 2}
	a := RunFleetSweep(cfg, nil)
	if len(a.Failures) != 0 {
		var lines []string
		for _, f := range a.Failures {
			lines = append(lines, f.TraceLine(), "  replay: "+f.ReplayCommand())
		}
		t.Fatalf("%d/%d combos failed:\n%s", len(a.Failures), a.Combos, strings.Join(lines, "\n"))
	}
	b := RunFleetSweep(FleetSweepConfig{Seeds: []uint64{1}, Clients: 400, Ops: 2}, nil)
	if strings.Join(a.Trace, "\n") != strings.Join(b.Trace, "\n") {
		for i := range a.Trace {
			if i < len(b.Trace) && a.Trace[i] != b.Trace[i] {
				t.Errorf("trace line %d diverged:\n  %s\n  %s", i, a.Trace[i], b.Trace[i])
			}
		}
		t.Fatal("sweep trace is not deterministic")
	}
	// Different seeds must visibly change the trace (checksums differ).
	c := RunFleetSweep(FleetSweepConfig{Seeds: []uint64{2}, Clients: 400, Ops: 2}, nil)
	if a.Trace[0][strings.Index(a.Trace[0], "sum="):] == c.Trace[0][strings.Index(c.Trace[0], "sum="):] {
		t.Fatal("different seeds produced identical clean-run checksums")
	}
}

// fleetReplaySeeds is the fleet regression table: replay keys distilled from
// failure classes fixed while building the fleet. Each line is a complete
// repro (go run ./cmd/ftvm-sim -replay "<key>").
var fleetReplaySeeds = []struct {
	class string
	key   string
}{
	{
		// Promotion replay diverged when a fresh op executed while an earlier
		// op's frame was still unacked; fixed by the head-of-line pending
		// barrier (stop-and-wait admits one in-flight op per shard).
		class: "framedrop-pending-barrier",
		key:   "seed=3,nodes=4,shards=8,clients=1000,ops=3,ka=3@250,kb=0@0,fault=framedrop/13,inject=0",
	},
	{
		// A record was logged twice when recruitment state transfer copied an
		// unacked record that the primary then retransmitted; fixed by
		// counting the transfer itself as the commit.
		class: "ackdrop-transfer-commits-pending",
		key:   "seed=3,nodes=4,shards=8,clients=1000,ops=3,ka=3@250,kb=0@0,fault=ackdrop/13,inject=0",
	},
	{
		// A committed op's lost reply must be answered from the promoted
		// replica's replayed dedup table, not re-executed.
		class: "replydrop-failover-dedup",
		key:   "seed=3,nodes=4,shards=8,clients=1000,ops=3,ka=3@250,kb=0@0,fault=replydrop/13,inject=0",
	},
	{
		// Two kills force a second round of reseats including shards already
		// running on a recruited backup's transferred state.
		class: "double-kill-rebalance",
		key:   "seed=11,nodes=4,shards=8,clients=1000,ops=3,ka=1@200,kb=2@700,fault=none/0,inject=0",
	},
	{
		// A deposed configuration's frame probed at a reseated shard must be
		// dropped by the epoch gate, never logged.
		class: "stale-epoch-straggler",
		key:   "seed=7,nodes=4,shards=8,clients=800,ops=3,ka=2@200,kb=0@0,fault=none/0,inject=1",
	},
	{
		// Larger population: sampling path + route-cache staleness at scale.
		class: "scale-sampled-verify",
		key:   "seed=5,nodes=5,shards=16,clients=10000,ops=2,ka=2@400,kb=0@0,fault=none/0,inject=0",
	},
}

// TestFleetReplaySeeds replays the fleet regression table. A failure here
// means a fleet failure class fixed in this PR has reopened; the table line
// is the repro.
func TestFleetReplaySeeds(t *testing.T) {
	for _, rs := range fleetReplaySeeds {
		t.Run(rs.class, func(t *testing.T) {
			cb, err := ParseFleetCombo(rs.key)
			if err != nil {
				t.Fatalf("table entry %q: %v", rs.key, err)
			}
			out := RunFleetCombo(cb)
			if out.Failed() {
				t.Fatalf("regression in %q:\n%s\nreplay: %s", rs.class, out.TraceLine(), out.ReplayCommand())
			}
			t.Logf("%s", out.TraceLine())
		})
	}
}

// TestFleetComboTraceStable pins one combo's full trace line, so an
// unintentional change to the deterministic execution (RNG derivation, cost
// model, histogram) shows up as a diff here rather than silently changing
// every committed benchmark.
func TestFleetComboTraceStable(t *testing.T) {
	cb, err := ParseFleetCombo("seed=1,nodes=4,shards=8,clients=400,ops=2,ka=0@0,kb=0@0,fault=none/0,inject=0")
	if err != nil {
		t.Fatal(err)
	}
	a := RunFleetCombo(cb).TraceLine()
	b := RunFleetCombo(cb).TraceLine()
	if a != b {
		t.Fatalf("trace line not reproducible:\n%s\n%s", a, b)
	}
	if !strings.HasSuffix(a, " ok") {
		t.Fatalf("pinned combo failed: %s", a)
	}
	if !strings.Contains(a, "retries=0") || !strings.Contains(a, "oks=800") {
		t.Fatalf("clean combo trace unexpected: %s", a)
	}
}
