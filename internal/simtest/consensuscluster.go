package simtest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	ftvm "repro"
	"repro/internal/consensus"
	"repro/internal/env"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
	"repro/internal/vm"
	"repro/internal/wire"
)

// ConsensusClusterConfig describes one simulated consensus-backed run: a VM
// colocated with the elected leader of a 3-replica replicated log, every
// inter-replica link a seeded simnet channel, and a fault schedule positioned
// in exact message counts — kill the leader (taking the VM with it) or a
// follower at the Nth protocol send, suppress a window of leader appends (an
// asymmetric partition that heals), wrap one link in a transport fault, or
// inject a stale-term frame.
type ConsensusClusterConfig struct {
	// Program is the compiled workload (required).
	Program *ftvm.Program
	// Mode is the replica-coordination mode (required).
	Mode ftvm.Mode

	// EnvSeed / PolicySeed / RecoverSeed mirror ClusterConfig (defaults
	// 1234 / 77 / 4242).
	EnvSeed, PolicySeed, RecoverSeed int64
	MinQuantum, MaxQuantum           uint64
	RecoverMinQ, RecoverMaxQ         uint64
	// FlushEvery batches log records per proposed entry (default 4).
	FlushEvery int

	// ConsensusSeed pins the cluster's election timeout streams (the eseed
	// axis; default 1).
	ConsensusSeed uint64

	// Net shapes every inter-replica link; each link forks its own seeded
	// lanes from Net.Seed so the three channels draw distinct delays.
	Net simnet.Config
	// Fault optionally wraps replica 0's endpoints toward both peers, so the
	// fault always sits on a leader-facing lane no matter where the election
	// puts the roles (an append stream or a response stream misbehaves
	// depending on who won). Each lane's fault counter is independent.
	Fault     transport.FaultPlan
	FaultSeed int64

	// KillAtSend > 0 fail-stops the victim at its KillAtSend-th protocol
	// message offered toward its lowest-id peer (1-based). KillLeader picks
	// the victim: the elected leader (the VM dies with it — the §4 crash the
	// survivors must recover from) or the lowest-id follower (the run must
	// complete through the remaining majority). KillDeliver lets the
	// triggering message escape onto the wire.
	KillAtSend  int
	KillLeader  bool
	KillDeliver bool

	// PartitionLen > 0 suppresses sends n in [PartitionAt, PartitionAt+
	// PartitionLen) on the leader's lane toward its lowest-id follower: a
	// one-way partition that heals, which commit flow must survive through
	// the other follower and retransmission must repair afterwards.
	PartitionAt, PartitionLen int

	// InjectStale injects a term-0 AppendEntries into the lowest-id follower
	// after the election settles; the replica must reject and count it.
	InjectStale bool

	// AckTimeout bounds each output-commit wait (default 2s virtual).
	AckTimeout time.Duration
	// MaxInstructions bounds every execution (default 50M).
	MaxInstructions uint64
	// WallLimit is the real-time watchdog (default 30s).
	WallLimit time.Duration
}

func (c *ConsensusClusterConfig) fill() error {
	if c.Program == nil {
		return errors.New("simtest: nil program")
	}
	if c.EnvSeed == 0 {
		c.EnvSeed = 1234
	}
	if c.PolicySeed == 0 {
		c.PolicySeed = 77
	}
	if c.RecoverSeed == 0 {
		c.RecoverSeed = 4242
	}
	if c.MinQuantum == 0 {
		c.MinQuantum = 64
	}
	if c.MaxQuantum < c.MinQuantum {
		c.MaxQuantum = c.MinQuantum * 8
	}
	if c.RecoverMinQ == 0 {
		c.RecoverMinQ = 100
	}
	if c.RecoverMaxQ < c.RecoverMinQ {
		c.RecoverMaxQ = c.RecoverMinQ * 9
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 4
	}
	if c.ConsensusSeed == 0 {
		c.ConsensusSeed = 1
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 50_000_000
	}
	if c.WallLimit == 0 {
		c.WallLimit = 30 * time.Second
	}
	return nil
}

// ConsensusClusterResult reports what one simulated consensus schedule did.
// Every field is a function of the config (VirtualElapsed is simulated time),
// so whole-sweep traces compare byte-for-byte.
type ConsensusClusterResult struct {
	// Killed reports the victim kill landed before clean completion;
	// Recovered that the committed log was re-executed at a cold replica.
	Killed    bool
	Recovered bool
	// Console is the observable output after the schedule fully played out.
	Console []string
	// RecordsLogged is the committed record count read back from the final
	// leader's log.
	RecordsLogged int
	// FirstLeader / FinalLeader are the replica ids holding leadership at VM
	// start and at log read-back; FinalTerm is the final leader's term.
	FirstLeader, FinalLeader int
	FinalTerm                uint64
	// StaleTerms / Malformed aggregate the replicas' rejection counters.
	StaleTerms, Malformed uint64
	// PrimaryErr is the VM run's error verbatim (ErrBackupLost is expected
	// whenever the schedule deposes or kills the leader mid-run).
	PrimaryErr error
	// Recovery is the replay report when Recovered.
	Recovery *replication.RecoveryReport
	// VirtualElapsed is total simulated time, VM start to recovery end.
	VirtualElapsed time.Duration

	// Replicas are the final per-replica protocol snapshots.
	Replicas []consensus.Stats
}

// RunConsensusCluster plays one consensus schedule to completion on a fresh
// virtual clock. An error means the harness or the protocol contract broke
// (survivors failed to elect, committed log undecodable, recovery failed) —
// not merely that the injected failure fired.
func RunConsensusCluster(cfg ConsensusClusterConfig) (*ConsensusClusterResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	clk := clock.NewVirtual()
	defer clk.Watchdog(cfg.WallLimit)()

	var (
		res *ConsensusClusterResult
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		res, err = runConsensusCluster(clk, &cfg)
	})
	wg.Wait()
	return res, err
}

func runConsensusCluster(clk *clock.Virtual, cfg *ConsensusClusterConfig) (*ConsensusClusterResult, error) {
	environ := env.New(cfg.EnvSeed)

	// Full mesh over simnet: raw[i][j] is replica i's endpoint toward j,
	// kept so schedule hooks can be installed once roles are known. Each
	// link forks its own lane seeds from Net.Seed.
	const n = 3
	var raw [n][n]*simnet.Endpoint
	link := func(i, j int) (transport.Endpoint, transport.Endpoint) {
		net := cfg.Net
		net.Seed = cfg.Net.Seed + int64(i*7+j*13)
		a, b := simnet.Link(clk, net)
		raw[i][j], raw[j][i] = a, b
		var ea transport.Endpoint = a
		if cfg.Fault.Kind != transport.FaultNone && i == 0 {
			ea = transport.NewFaultyClock(a, cfg.Fault, cfg.FaultSeed, clk)
		}
		return ea, b
	}
	cluster, err := consensus.NewCluster(consensus.Config{
		Replicas: n,
		Seed:     cfg.ConsensusSeed,
		Clock:    clk,
		Link:     link,
	})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()
	leader, err := cluster.WaitLeader(10 * time.Second)
	if err != nil {
		return nil, fmt.Errorf("initial election: %w", err)
	}
	leaderID := leader.ID()

	// lowestPeer returns the lowest replica id that is not `of`.
	lowestPeer := func(of int) int {
		for i := 0; i < n; i++ {
			if i != of {
				return i
			}
		}
		return -1
	}

	be := consensus.NewBackend(leader, cfg.AckTimeout)
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:       cfg.Mode,
		Backend:    be,
		Policy:     vm.NewSeededPolicy(cfg.PolicySeed, cfg.MinQuantum, cfg.MaxQuantum),
		FlushEvery: cfg.FlushEvery,
		Clock:      clk,
	})
	if err != nil {
		return nil, err
	}
	machine, err := vm.New(vm.Config{
		Program:         cfg.Program,
		Env:             environ,
		Coordinator:     primary,
		MaxInstructions: cfg.MaxInstructions,
		TrackProgress:   cfg.Mode == ftvm.ModeSched,
	})
	if err != nil {
		return nil, err
	}

	// Schedule hooks. Send hooks run under the link lock and only count,
	// flip atomics, and suppress delivery; the replica fail-stop itself runs
	// in a poller actor (simnet endpoint close takes the same link lock a
	// hook already holds).
	runDone := clock.NewFlag(clk)
	killDone := clock.NewFlag(clk)
	victim := -1
	if cfg.KillAtSend > 0 {
		victim = leaderID
		if !cfg.KillLeader {
			victim = lowestPeer(leaderID)
		}
		probe := lowestPeer(victim)
		var killFlag atomic.Bool
		deliver, isLeader := cfg.KillDeliver, victim == leaderID
		// Positions count from hook installation, not link creation — the
		// election's own traffic must not consume the schedule's indices.
		at := cfg.KillAtSend + raw[victim][probe].Sends()
		for p := 0; p < n; p++ {
			if p == victim {
				continue
			}
			p := p
			raw[victim][p].SetSendHook(func(sn int, _ []byte) bool {
				if killFlag.Load() {
					return false // dead processes send nothing
				}
				if p != probe {
					return true // only the probe lane counts the schedule
				}
				if sn < at {
					return true
				}
				if sn == at {
					killFlag.Store(true)
					if isLeader {
						machine.Kill() // atomic flag; safe under the link lock
					}
					return deliver
				}
				return false
			})
		}
		clk.Go(func() {
			defer killDone.Set()
			for !runDone.IsSet() {
				if killFlag.Load() {
					cluster.Kill(victim)
					return
				}
				clk.Sleep(200 * time.Microsecond)
			}
		})
	} else {
		killDone.Set()
	}
	if cfg.PartitionLen > 0 {
		lane := raw[leaderID][lowestPeer(leaderID)]
		from := cfg.PartitionAt + lane.Sends()
		until := from + cfg.PartitionLen
		lane.SetSendHook(func(sn int, _ []byte) bool {
			return sn < from || sn >= until
		})
	}
	if cfg.InjectStale {
		cluster.Replica(lowestPeer(leaderID)).Inject(consensus.StaleProbe(leaderID))
	}

	t0 := clk.Now()
	runErr := machine.Run()
	runDone.Set()
	killDone.Wait()

	res := &ConsensusClusterResult{
		Killed:      machine.Killed(),
		Console:     environ.Console().Lines(),
		FirstLeader: leaderID,
		PrimaryErr:  runErr,
	}
	for i := 0; i < n; i++ {
		s := cluster.Replica(i).Snapshot()
		res.Replicas = append(res.Replicas, s)
		res.StaleTerms += s.StaleTerms
		res.Malformed += s.Malformed
	}

	// Read the committed log back from the final leader — after a leader
	// kill that means waiting out the survivors' election, whose barrier
	// commit fences every surviving entry.
	source := leader
	if source.Stopped() {
		source, err = cluster.WaitLeader(10 * time.Second)
		if err != nil {
			return res, fmt.Errorf("post-kill election: %w", err)
		}
	}
	res.FinalLeader = source.ID()
	res.FinalTerm = source.Term()
	recs, err := cluster.CommittedRecords(source.ID())
	if err != nil {
		return res, fmt.Errorf("committed log: %w", err)
	}
	res.RecordsLogged = len(recs)
	halted := false
	for _, r := range recs {
		if _, ok := r.(*wire.Halt); ok {
			halted = true
		}
	}

	if runErr != nil && !machine.Killed() && !errors.Is(runErr, replication.ErrBackupLost) {
		return res, fmt.Errorf("primary run: %w", runErr)
	}
	if !machine.Killed() && runErr == nil {
		// Clean completion (no kill, or a follower kill the majority rode
		// out): the committed log must hold the halt.
		if !halted {
			return res, errors.New("clean run without a committed halt")
		}
		res.VirtualElapsed = clk.Since(t0)
		return res, nil
	}
	if halted {
		// Kill or deposition raced clean completion: every output commit
		// made it, the console is complete.
		res.VirtualElapsed = clk.Since(t0)
		return res, nil
	}

	// Recovery: load the survivors' committed prefix into a cold backup and
	// re-execute log-gated against the same environment.
	res.Recovered = true
	idle, _ := transport.Pipe(1) // never spoken on; Recover reads only the log
	replay, err := replication.NewBackup(replication.BackupConfig{Mode: cfg.Mode, Endpoint: idle, Clock: clk})
	if err != nil {
		return res, err
	}
	if err := replay.LoadRecords(recs); err != nil {
		return res, fmt.Errorf("recovery load: %w", err)
	}
	_, report, err := replay.Recover(replication.RecoverConfig{
		Program:         cfg.Program,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(cfg.RecoverSeed, cfg.RecoverMinQ, cfg.RecoverMaxQ),
		MaxInstructions: cfg.MaxInstructions,
	})
	res.VirtualElapsed = clk.Since(t0)
	res.Recovery = report
	res.Console = environ.Console().Lines()
	if err != nil {
		return res, fmt.Errorf("recovery: %w", err)
	}
	return res, nil
}
