package simtest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	ftvm "repro"
	"repro/internal/fuzzgen"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
)

// ConsensusCombo is one point of the consensus sweep: a generated program, a
// mode, and a fault schedule over the 3-replica replicated log — who dies at
// which exact protocol send, which leader lane partitions for how long, which
// link misbehaves, whether a stale-term frame probes a follower, and which
// election seed times the campaigns. Its Key() round-trips through
// ParseConsensusCombo, so any failing combo replays from a single string:
//
//	go run ./cmd/ftvm-sim -replay "prog=7,size=small,mode=sched,who=leader,kill=12,deliver=1,part=0+0,inject=0,fault=none@0,eseed=1,net=3,reorder=1/8"
type ConsensusCombo struct {
	ProgSeed    uint64
	Size        fuzzgen.Size
	Mode        ftvm.Mode
	KillLeader  bool // victim when KillAtSend > 0: elected leader vs follower
	KillAtSend  int  // 0 = no kill
	KillDeliver bool
	PartAt      int // leader-lane partition window [PartAt, PartAt+PartLen)
	PartLen     int // 0 = no partition
	InjectStale bool
	FaultKind   transport.FaultKind // on replica 0's endpoint toward 1
	FaultAt     int
	ESeed       uint64 // election timeout seed (consensus.Config.Seed)
	NetSeed     int64
	ReorderNum  int
	ReorderDen  int
}

// Key renders the combo as its canonical replay string. The "who=" field is
// what distinguishes a consensus replay from pair, view, and fleet replays.
func (cb ConsensusCombo) Key() string {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	who := "follower"
	if cb.KillLeader {
		who = "leader"
	}
	return fmt.Sprintf("prog=%d,size=%s,mode=%s,who=%s,kill=%d,deliver=%d,part=%d+%d,inject=%d,fault=%s@%d,eseed=%d,net=%d,reorder=%d/%d",
		cb.ProgSeed, cb.Size, cb.Mode, who,
		cb.KillAtSend, b2i(cb.KillDeliver), cb.PartAt, cb.PartLen, b2i(cb.InjectStale),
		cb.FaultKind, cb.FaultAt, cb.ESeed, cb.NetSeed, cb.ReorderNum, cb.ReorderDen)
}

// IsConsensusKey reports whether a replay string denotes a well-formed
// consensus combo (ParseConsensusCombo) rather than a pair, view, or fleet
// combo.
func IsConsensusKey(key string) bool {
	k, err := ClassifyReplayKey(key)
	return err == nil && k == ReplayConsensus
}

// ParseConsensusCombo parses a Key()-formatted replay string.
func ParseConsensusCombo(key string) (ConsensusCombo, error) {
	var cb ConsensusCombo
	for _, field := range strings.Split(key, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cb, fmt.Errorf("combo field %q is not key=value", field)
		}
		var err error
		switch k {
		case "prog":
			cb.ProgSeed, err = strconv.ParseUint(v, 0, 64)
		case "size":
			cb.Size, err = fuzzgen.SizeByName(v)
		case "mode":
			cb.Mode, err = modeByName(v)
		case "who":
			switch v {
			case "leader":
				cb.KillLeader = true
			case "follower":
				cb.KillLeader = false
			default:
				err = fmt.Errorf("who %q is neither leader nor follower", v)
			}
		case "kill":
			cb.KillAtSend, err = strconv.Atoi(v)
		case "deliver":
			cb.KillDeliver = v == "1" || v == "true"
		case "part":
			at, length, ok := strings.Cut(v, "+")
			if !ok {
				return cb, fmt.Errorf("part %q is not at+len", v)
			}
			if cb.PartAt, err = strconv.Atoi(at); err == nil {
				cb.PartLen, err = strconv.Atoi(length)
			}
		case "inject":
			cb.InjectStale = v == "1" || v == "true"
		case "fault":
			kind, at, ok := strings.Cut(v, "@")
			if !ok {
				return cb, fmt.Errorf("fault %q is not kind@index", v)
			}
			if cb.FaultKind, err = faultKindByName(kind); err == nil {
				cb.FaultAt, err = strconv.Atoi(at)
			}
		case "eseed":
			cb.ESeed, err = strconv.ParseUint(v, 0, 64)
		case "net":
			cb.NetSeed, err = strconv.ParseInt(v, 0, 64)
		case "reorder":
			num, den, ok := strings.Cut(v, "/")
			if !ok {
				return cb, fmt.Errorf("reorder %q is not num/den", v)
			}
			if cb.ReorderNum, err = strconv.Atoi(num); err == nil {
				cb.ReorderDen, err = strconv.Atoi(den)
			}
		default:
			return cb, fmt.Errorf("unknown consensus combo field %q", k)
		}
		if err != nil {
			return cb, fmt.Errorf("consensus combo field %q: %w", field, err)
		}
	}
	return cb, nil
}

// consensusClusterConfig expands the combo into its cluster configuration
// (same seed derivation as the pair sweep, so a program keeps its environment
// and schedules across all four harnesses).
func (cb ConsensusCombo) consensusClusterConfig(prog *ftvm.Program) ConsensusClusterConfig {
	envSeed, polRef, polRec := deriveSeeds(cb.ProgSeed)
	return ConsensusClusterConfig{
		Program:       prog,
		Mode:          cb.Mode,
		EnvSeed:       envSeed,
		PolicySeed:    polRef,
		RecoverSeed:   polRec,
		ConsensusSeed: cb.ESeed,
		Net: simnet.Config{
			Seed:       cb.NetSeed,
			ReorderNum: cb.ReorderNum,
			ReorderDen: cb.ReorderDen,
		},
		Fault:        transport.FaultPlan{Kind: cb.FaultKind, At: cb.FaultAt},
		FaultSeed:    cb.NetSeed ^ 0x0F0F0F0F,
		KillAtSend:   cb.KillAtSend,
		KillLeader:   cb.KillLeader,
		KillDeliver:  cb.KillDeliver,
		PartitionAt:  cb.PartAt,
		PartitionLen: cb.PartLen,
		InjectStale:  cb.InjectStale,
	}
}

// ConsensusComboOutcome is one consensus combo's deterministic result plus
// the comparison verdict against the failure-free reference.
type ConsensusComboOutcome struct {
	Combo   ConsensusCombo
	Result  *ConsensusClusterResult
	Detail  string // "" when the output matched the reference
	Err     error
	Ref     []string
	Console []string
}

// Failed reports whether the combo diverged or errored.
func (o *ConsensusComboOutcome) Failed() bool { return o.Err != nil || o.Detail != "" }

// TraceLine renders the combo's structural outcome from deterministic fields
// only, so a whole sweep's trace is byte-identical across runs.
func (o *ConsensusComboOutcome) TraceLine() string {
	var sb strings.Builder
	sb.WriteString(o.Combo.Key())
	sb.WriteString(" -> ")
	if o.Err != nil {
		fmt.Fprintf(&sb, "ERROR %v", o.Err)
		return sb.String()
	}
	r := o.Result
	fmt.Fprintf(&sb, "killed=%t recovered=%t leader=%d->%d term=%d records=%d stale=%d malformed=%d vtime=%s console=%d",
		r.Killed, r.Recovered, r.FirstLeader, r.FinalLeader, r.FinalTerm,
		r.RecordsLogged, r.StaleTerms, r.Malformed, r.VirtualElapsed, len(r.Console))
	if o.Detail != "" {
		fmt.Fprintf(&sb, " DIVERGE %s", o.Detail)
	} else {
		sb.WriteString(" ok")
	}
	return sb.String()
}

// ReplayCommand renders the shell command that reproduces this combo alone.
func (o *ConsensusComboOutcome) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/ftvm-sim -replay %q", o.Combo.Key())
}

// RunConsensusCombo plays the combo's schedule on the simulated consensus
// cluster and compares the surviving output against the failure-free
// reference. Beyond output equality it asserts the stale-term contract: an
// injected stale frame must be rejected and counted, never acted on.
func RunConsensusCombo(cb ConsensusCombo, prog *ftvm.Program, ref []string) *ConsensusComboOutcome {
	out := &ConsensusComboOutcome{Combo: cb}
	if prog == nil {
		var err error
		prog, ref, err = comboProgram(Combo{ProgSeed: cb.ProgSeed, Size: cb.Size})
		if err != nil {
			out.Err = err
			return out
		}
	}
	out.Ref = ref

	res, err := RunConsensusCluster(cb.consensusClusterConfig(prog))
	out.Result = res
	if err != nil {
		out.Err = err
		return out
	}
	out.Console = res.Console
	if detail, ok := fuzzgen.CompareFrames(ref, res.Console); !ok {
		out.Detail = detail
	}
	if cb.InjectStale && res.StaleTerms == 0 {
		out.Detail = strings.TrimSpace(out.Detail +
			" stale-term frame was injected but never rejected (follower acted on old-term traffic?)")
	}
	return out
}

// ConsensusSweepConfig enumerates the consensus schedule space: for every
// program seed × mode × network seed × election seed, one clean run, leader
// and follower kills per position, healing partition windows on the leader
// lane, one run per link fault, and a stale-injection run.
type ConsensusSweepConfig struct {
	// ProgSeeds are the generated-program seeds (required).
	ProgSeeds []uint64
	// Size is the generated-program size tier (default SizeSmall).
	Size fuzzgen.Size
	// Modes defaults to all three replica-coordination modes.
	Modes []ftvm.Mode
	// KillSends are crash positions in victim protocol sends (default
	// 2, 5, 12 — first appends through mid-stream).
	KillSends []int
	// Partitions are leader-lane suppression windows (default 3+4 and 8+2).
	Partitions [][2]int
	// Faults are link-fault plans for replica 0's endpoints (default a
	// dropped append and a corrupted receive).
	Faults []transport.FaultPlan
	// ESeeds vary the election timeout streams (default {1}).
	ESeeds []uint64
	// NetSeeds vary latency/reorder draws (default {1}).
	NetSeeds []int64
	// ReorderNum/ReorderDen give every link its reorder chance (default 1/8).
	ReorderNum, ReorderDen int
}

func (c *ConsensusSweepConfig) fill() {
	if len(c.Modes) == 0 {
		c.Modes = []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	}
	if len(c.KillSends) == 0 {
		c.KillSends = []int{2, 5, 12}
	}
	if len(c.Partitions) == 0 {
		c.Partitions = [][2]int{{3, 4}, {8, 2}}
	}
	if len(c.Faults) == 0 {
		c.Faults = []transport.FaultPlan{
			{Kind: transport.FaultDropSend, At: 3},
			{Kind: transport.FaultCorruptRecv, At: 2},
		}
	}
	if len(c.ESeeds) == 0 {
		c.ESeeds = []uint64{1}
	}
	if len(c.NetSeeds) == 0 {
		c.NetSeeds = []int64{1}
	}
	if c.ReorderDen == 0 {
		c.ReorderNum, c.ReorderDen = 1, 8
	}
}

// Combos expands the configuration into the full deterministic schedule list.
func (c *ConsensusSweepConfig) Combos() []ConsensusCombo {
	c.fill()
	var out []ConsensusCombo
	for _, prog := range c.ProgSeeds {
		for _, mode := range c.Modes {
			for _, net := range c.NetSeeds {
				for _, es := range c.ESeeds {
					base := ConsensusCombo{
						ProgSeed: prog, Size: c.Size, Mode: mode,
						ESeed: es, NetSeed: net,
						ReorderNum: c.ReorderNum, ReorderDen: c.ReorderDen,
					}
					out = append(out, base) // clean run
					inj := base
					inj.InjectStale = true
					out = append(out, inj)
					for i, kill := range c.KillSends {
						lk := base
						lk.KillLeader = true
						lk.KillAtSend = kill
						lk.KillDeliver = i%2 == 1
						out = append(out, lk)
						fk := base
						fk.KillAtSend = kill
						fk.KillDeliver = i%2 == 0
						out = append(out, fk)
					}
					for _, p := range c.Partitions {
						pc := base
						pc.PartAt, pc.PartLen = p[0], p[1]
						out = append(out, pc)
					}
					for _, f := range c.Faults {
						fc := base
						fc.FaultKind, fc.FaultAt = f.Kind, f.At
						out = append(out, fc)
					}
				}
			}
		}
	}
	return out
}

// ConsensusSweepResult is the outcome of a full consensus sweep.
type ConsensusSweepResult struct {
	Combos   int
	Failures []*ConsensusComboOutcome
	Trace    []string
	Elapsed  time.Duration // wall time (reporting only; never in the trace)
}

// RunConsensusSweep plays every combo in order, emitting one trace line per
// combo via logf (nil = collect only). The trace is a pure function of the
// configuration.
func RunConsensusSweep(cfg ConsensusSweepConfig, logf func(string)) *ConsensusSweepResult {
	combos := cfg.Combos()
	res := &ConsensusSweepResult{Combos: len(combos)}
	t0 := clock.Real.Now()

	type cached struct {
		prog *ftvm.Program
		ref  []string
		err  error
	}
	progs := map[uint64]*cached{}
	for _, cb := range combos {
		ca := progs[cb.ProgSeed]
		if ca == nil {
			ca = &cached{}
			ca.prog, ca.ref, ca.err = comboProgram(Combo{ProgSeed: cb.ProgSeed, Size: cb.Size})
			progs[cb.ProgSeed] = ca
		}
		var out *ConsensusComboOutcome
		if ca.err != nil {
			out = &ConsensusComboOutcome{Combo: cb, Err: ca.err}
		} else {
			out = RunConsensusCombo(cb, ca.prog, ca.ref)
		}
		line := out.TraceLine()
		res.Trace = append(res.Trace, line)
		if logf != nil {
			logf(line)
		}
		if out.Failed() {
			res.Failures = append(res.Failures, out)
		}
	}
	res.Elapsed = clock.Real.Since(t0)
	return res
}
