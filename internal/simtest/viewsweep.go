package simtest

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	ftvm "repro"
	"repro/internal/fuzzgen"
	"repro/internal/simtest/clock"
	"repro/internal/simtest/simnet"
	"repro/internal/transport"
)

// ViewCombo is one point of the three-node sweep: a generated program, a
// mode, and a two-stage fault schedule — where the first primary dies, where
// the promoted one dies, what the new pair's channel does, and whether a
// stale-epoch straggler probes the recruit. Its Key() round-trips through
// ParseViewCombo, so any failing combo replays from a single string:
//
//	go run ./cmd/ftvm-sim -replay "prog=7,size=small,mode=sched,kill1=3,d1=0,kill2=5,d2=1,fault=none@0,inject=1,net=3,reorder=1/8"
type ViewCombo struct {
	ProgSeed     uint64
	Size         fuzzgen.Size
	Mode         ftvm.Mode
	Kill1AtSend  int // 0 = first primary never killed (clean pair run)
	Kill1Deliver bool
	Kill2AtSend  int // 0 = promoted primary never killed
	Kill2Deliver bool
	FaultKind    transport.FaultKind // on the promoted pair's channel
	FaultAt      int
	InjectStale  bool
	NetSeed      int64
	ReorderNum   int
	ReorderDen   int
}

// Key renders the combo as its canonical replay string. The "kill1=" field
// is what distinguishes a view-cluster replay from a pair replay.
func (cb ViewCombo) Key() string {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("prog=%d,size=%s,mode=%s,kill1=%d,d1=%d,kill2=%d,d2=%d,fault=%s@%d,inject=%d,net=%d,reorder=%d/%d",
		cb.ProgSeed, cb.Size, cb.Mode,
		cb.Kill1AtSend, b2i(cb.Kill1Deliver), cb.Kill2AtSend, b2i(cb.Kill2Deliver),
		cb.FaultKind, cb.FaultAt, b2i(cb.InjectStale),
		cb.NetSeed, cb.ReorderNum, cb.ReorderDen)
}

// IsViewKey reports whether a replay string denotes a well-formed
// view-cluster combo (ParseViewCombo) rather than a pair combo (ParseCombo).
func IsViewKey(key string) bool {
	k, err := ClassifyReplayKey(key)
	return err == nil && k == ReplayView
}

// ParseViewCombo parses a Key()-formatted replay string.
func ParseViewCombo(key string) (ViewCombo, error) {
	var cb ViewCombo
	for _, field := range strings.Split(key, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cb, fmt.Errorf("combo field %q is not key=value", field)
		}
		var err error
		switch k {
		case "prog":
			cb.ProgSeed, err = strconv.ParseUint(v, 0, 64)
		case "size":
			cb.Size, err = fuzzgen.SizeByName(v)
		case "mode":
			cb.Mode, err = modeByName(v)
		case "kill1":
			cb.Kill1AtSend, err = strconv.Atoi(v)
		case "d1":
			cb.Kill1Deliver = v == "1" || v == "true"
		case "kill2":
			cb.Kill2AtSend, err = strconv.Atoi(v)
		case "d2":
			cb.Kill2Deliver = v == "1" || v == "true"
		case "fault":
			kind, at, ok := strings.Cut(v, "@")
			if !ok {
				return cb, fmt.Errorf("fault %q is not kind@index", v)
			}
			if cb.FaultKind, err = faultKindByName(kind); err == nil {
				cb.FaultAt, err = strconv.Atoi(at)
			}
		case "inject":
			cb.InjectStale = v == "1" || v == "true"
		case "net":
			cb.NetSeed, err = strconv.ParseInt(v, 0, 64)
		case "reorder":
			num, den, ok := strings.Cut(v, "/")
			if !ok {
				return cb, fmt.Errorf("reorder %q is not num/den", v)
			}
			if cb.ReorderNum, err = strconv.Atoi(num); err == nil {
				cb.ReorderDen, err = strconv.Atoi(den)
			}
		default:
			return cb, fmt.Errorf("unknown view combo field %q", k)
		}
		if err != nil {
			return cb, fmt.Errorf("view combo field %q: %w", field, err)
		}
	}
	return cb, nil
}

// viewClusterConfig expands the combo into the cluster configuration it
// denotes (same seed derivation as the pair sweep, so a program keeps its
// environment and schedules across both harnesses).
func (cb ViewCombo) viewClusterConfig(prog *ftvm.Program) ViewClusterConfig {
	envSeed, polRef, polRec := deriveSeeds(cb.ProgSeed)
	return ViewClusterConfig{
		Program:     prog,
		Mode:        cb.Mode,
		EnvSeed:     envSeed,
		PolicySeed:  polRef,
		RecoverSeed: polRec,
		Net: simnet.Config{
			Seed:       cb.NetSeed,
			ReorderNum: cb.ReorderNum,
			ReorderDen: cb.ReorderDen,
		},
		Fault:        transport.FaultPlan{Kind: cb.FaultKind, At: cb.FaultAt},
		FaultSeed:    cb.NetSeed ^ 0x0F0F0F0F,
		Kill1AtSend:  cb.Kill1AtSend,
		Kill1Deliver: cb.Kill1Deliver,
		Kill2AtSend:  cb.Kill2AtSend,
		Kill2Deliver: cb.Kill2Deliver,
		InjectStale:  cb.InjectStale,
	}
}

// ViewComboOutcome is one view combo's deterministic result plus the
// comparison verdict against the failure-free reference.
type ViewComboOutcome struct {
	Combo   ViewCombo
	Result  *ViewClusterResult
	Detail  string // "" when the output matched the reference
	Err     error
	Ref     []string
	Console []string
}

// Failed reports whether the combo diverged or errored.
func (o *ViewComboOutcome) Failed() bool { return o.Err != nil || o.Detail != "" }

// TraceLine renders the combo's structural outcome from deterministic fields
// only, so a whole sweep's trace is byte-identical across runs.
func (o *ViewComboOutcome) TraceLine() string {
	var sb strings.Builder
	sb.WriteString(o.Combo.Key())
	sb.WriteString(" -> ")
	if o.Err != nil {
		fmt.Fprintf(&sb, "ERROR %v", o.Err)
		return sb.String()
	}
	r := o.Result
	fmt.Fprintf(&sb, "view=%d killed1=%t promoted=%t killed2=%t takeover2=%t records2=%d records3=%d stale=%d vtime=%s console=%d",
		r.FinalView.Num, r.Killed1, r.Promoted, r.Killed2, r.SecondTakeover,
		r.Records2, r.Records3, r.StaleEpochs, r.VirtualElapsed, len(r.Console))
	if o.Detail != "" {
		fmt.Fprintf(&sb, " DIVERGE %s", o.Detail)
	} else {
		sb.WriteString(" ok")
	}
	return sb.String()
}

// ReplayCommand renders the shell command that reproduces this combo alone.
func (o *ViewComboOutcome) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/ftvm-sim -replay %q", o.Combo.Key())
}

// RunViewCombo plays the combo's schedule on the simulated three-node
// cluster and compares the surviving output against the failure-free
// reference. Beyond output equality it asserts the epoch contract: when a
// stale frame was injected into a promoted configuration, the recruit must
// have dropped at least one stale-epoch frame.
func RunViewCombo(cb ViewCombo, prog *ftvm.Program, ref []string) *ViewComboOutcome {
	out := &ViewComboOutcome{Combo: cb}
	if prog == nil {
		var err error
		prog, ref, err = comboProgram(Combo{ProgSeed: cb.ProgSeed, Size: cb.Size})
		if err != nil {
			out.Err = err
			return out
		}
	}
	out.Ref = ref

	res, err := RunViewCluster(cb.viewClusterConfig(prog))
	out.Result = res
	if err != nil {
		out.Err = err
		return out
	}
	out.Console = res.Console
	if detail, ok := fuzzgen.CompareFrames(ref, res.Console); !ok {
		out.Detail = detail
	}
	if res.StaleInjected && res.StaleEpochs == 0 {
		out.Detail = strings.TrimSpace(out.Detail +
			" stale-epoch frame was injected but never dropped (recruit acked old-epoch traffic?)")
	}
	return out
}

// ViewSweepConfig enumerates the two-stage schedule space: for every program
// seed × mode × network seed, one clean run, then for each first-kill
// position a promotion-only run, a stale-injection run, one run per
// second-kill position, and one per channel fault on the promoted pair.
type ViewSweepConfig struct {
	// ProgSeeds are the generated-program seeds (required).
	ProgSeeds []uint64
	// Size is the generated-program size tier (default SizeSmall).
	Size fuzzgen.Size
	// Modes defaults to all three replica-coordination modes.
	Modes []ftvm.Mode
	// Kill1Sends are first-primary crash positions (default 1, 3, 8).
	Kill1Sends []int
	// Kill2Sends are promoted-primary crash positions, counted on the new
	// pair's link where snapshot frames come first (default 1, 2, 6 —
	// mid-transfer through mid-tail).
	Kill2Sends []int
	// Faults are channel-fault plans for the promoted pair (default a
	// corrupted ack during transfer and a partition mid-tail).
	Faults []transport.FaultPlan
	// NetSeeds vary latency/reorder draws (default {1}).
	NetSeeds []int64
	// ReorderNum/ReorderDen give every link its reorder chance (default 1/8).
	ReorderNum, ReorderDen int
}

func (c *ViewSweepConfig) fill() {
	if len(c.Modes) == 0 {
		c.Modes = []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	}
	if len(c.Kill1Sends) == 0 {
		c.Kill1Sends = []int{1, 3, 8}
	}
	if len(c.Kill2Sends) == 0 {
		c.Kill2Sends = []int{1, 2, 6}
	}
	if len(c.Faults) == 0 {
		c.Faults = []transport.FaultPlan{
			{Kind: transport.FaultCorruptRecv, At: 1},
			{Kind: transport.FaultPartitionSend, At: 4},
		}
	}
	if len(c.NetSeeds) == 0 {
		c.NetSeeds = []int64{1}
	}
	if c.ReorderDen == 0 {
		c.ReorderNum, c.ReorderDen = 1, 8
	}
}

// Combos expands the configuration into the full deterministic schedule list.
func (c *ViewSweepConfig) Combos() []ViewCombo {
	c.fill()
	var out []ViewCombo
	for _, prog := range c.ProgSeeds {
		for _, mode := range c.Modes {
			for _, net := range c.NetSeeds {
				base := ViewCombo{
					ProgSeed: prog, Size: c.Size, Mode: mode, NetSeed: net,
					ReorderNum: c.ReorderNum, ReorderDen: c.ReorderDen,
				}
				out = append(out, base) // clean run, no view change
				for i, k1 := range c.Kill1Sends {
					v := base
					v.Kill1AtSend = k1
					v.Kill1Deliver = i%2 == 1
					out = append(out, v) // promotion + transfer, no second failure
					inj := v
					inj.InjectStale = true
					out = append(out, inj)
					for j, k2 := range c.Kill2Sends {
						vv := v
						vv.Kill2AtSend = k2
						vv.Kill2Deliver = j%2 == 0
						vv.InjectStale = j%2 == 1 // stale straggler racing a dying promoted primary
						out = append(out, vv)
					}
					for _, f := range c.Faults {
						vf := v
						vf.FaultKind, vf.FaultAt = f.Kind, f.At
						out = append(out, vf)
					}
				}
			}
		}
	}
	return out
}

// ViewSweepResult is the outcome of a full three-node sweep.
type ViewSweepResult struct {
	Combos   int
	Failures []*ViewComboOutcome
	Trace    []string
	Elapsed  time.Duration // wall time (reporting only; never in the trace)
}

// RunViewSweep plays every combo in order, emitting one trace line per combo
// via logf (nil = collect only). The trace is a pure function of the
// configuration.
func RunViewSweep(cfg ViewSweepConfig, logf func(string)) *ViewSweepResult {
	combos := cfg.Combos()
	res := &ViewSweepResult{Combos: len(combos)}
	t0 := clock.Real.Now()

	type cached struct {
		prog *ftvm.Program
		ref  []string
		err  error
	}
	progs := map[uint64]*cached{}
	for _, cb := range combos {
		ca := progs[cb.ProgSeed]
		if ca == nil {
			ca = &cached{}
			ca.prog, ca.ref, ca.err = comboProgram(Combo{ProgSeed: cb.ProgSeed, Size: cb.Size})
			progs[cb.ProgSeed] = ca
		}
		var out *ViewComboOutcome
		if ca.err != nil {
			out = &ViewComboOutcome{Combo: cb, Err: ca.err}
		} else {
			out = RunViewCombo(cb, ca.prog, ca.ref)
		}
		line := out.TraceLine()
		res.Trace = append(res.Trace, line)
		if logf != nil {
			logf(line)
		}
		if out.Failed() {
			res.Failures = append(res.Failures, out)
		}
	}
	res.Elapsed = clock.Real.Since(t0)
	return res
}
