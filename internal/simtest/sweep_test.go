package simtest

import (
	"strings"
	"testing"
	"time"

	ftvm "repro"
	"repro/internal/fuzzgen"
)

// TestSweepTraceDeterminism is the harness's core promise: the same sweep
// configuration produces a byte-identical trace on every run — outcomes,
// record counts, and simulated timestamps included. Any wall-clock leak into
// the schedule (a real timer racing a virtual one, an unseeded draw) shows up
// here as a diff.
func TestSweepTraceDeterminism(t *testing.T) {
	cfg := SweepConfig{
		ProgSeeds: []uint64{1, 2},
		Size:      fuzzgen.SizeSmall,
		Modes:     []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched},
		KillSends: []int{1, 4},
		NetSeeds:  []int64{3},
	}
	first := RunSweep(cfg, nil)
	if first.Combos == 0 {
		t.Fatal("empty sweep")
	}
	for _, f := range first.Failures {
		t.Errorf("combo failed: %s\nreplay: %s", f.TraceLine(), f.ReplayCommand())
	}
	second := RunSweep(cfg, nil)
	a, b := strings.Join(first.Trace, "\n"), strings.Join(second.Trace, "\n")
	if a != b {
		t.Fatalf("sweep trace not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSweepBroad runs the full default schedule space — kill points × channel
// faults × modes × network seeds over several generated programs, more than
// 200 combos — and requires every schedule to reproduce the reference output.
// The whole sweep must finish far inside a minute of wall time: that budget
// is the point of simulating, so it is asserted, not hoped for.
func TestSweepBroad(t *testing.T) {
	cfg := SweepConfig{
		ProgSeeds: []uint64{1, 2, 3, 4},
		Size:      fuzzgen.SizeSmall,
		NetSeeds:  []int64{1, 2},
	}
	combos := cfg.Combos()
	if len(combos) < 200 {
		t.Fatalf("default sweep enumerates only %d combos, want >= 200", len(combos))
	}
	res := RunSweep(cfg, nil)
	for _, f := range res.Failures {
		t.Errorf("combo failed: %s\nreplay: %s", f.TraceLine(), f.ReplayCommand())
	}
	if res.Elapsed > 60*time.Second {
		t.Fatalf("sweep of %d combos took %v wall time, want < 60s", res.Combos, res.Elapsed)
	}
	t.Logf("%d combos in %v wall", res.Combos, res.Elapsed.Round(time.Millisecond))
}

// TestComboKeyRoundTrip pins the replay-string format: every enumerated combo
// parses back to itself, so the single line the sweep prints on failure is
// always sufficient to reproduce the run.
func TestComboKeyRoundTrip(t *testing.T) {
	cfg := SweepConfig{ProgSeeds: []uint64{7}, Size: fuzzgen.SizeMedium, NetSeeds: []int64{-4}}
	for _, cb := range cfg.Combos() {
		parsed, err := ParseCombo(cb.Key())
		if err != nil {
			t.Fatalf("ParseCombo(%q): %v", cb.Key(), err)
		}
		if parsed != cb {
			t.Fatalf("round trip changed combo: %q -> %q", cb.Key(), parsed.Key())
		}
	}
	// The dispatch field renders only when non-default and round-trips.
	sw := Combo{ProgSeed: 7, Size: fuzzgen.SizeSmall, Mode: ftvm.ModeSched,
		ReorderDen: 8, Dispatch: ftvm.DispatchSwitch}
	if !strings.Contains(sw.Key(), "dispatch=switch") {
		t.Fatalf("switch-engine combo key %q does not carry the dispatch field", sw.Key())
	}
	if parsed, err := ParseCombo(sw.Key()); err != nil || parsed != sw {
		t.Fatalf("dispatch round trip: %q -> %q (%v)", sw.Key(), parsed.Key(), err)
	}
	if _, err := ParseCombo("prog=1,bogus=2"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseCombo("mode=warp"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestFuzzReplayKeyParses pins the bridge from the live fuzzer: the
// `ftvm-sim -replay` string that ftvm-fuzz prints for a failing seed must be
// accepted by ParseCombo and name the same generated program.
func TestFuzzReplayKeyParses(t *testing.T) {
	f := &fuzzgen.Failure{Seed: 8241, Size: fuzzgen.SizeMedium, Stage: fuzzgen.StageFailover}
	key := fuzzgen.SimReplayKey(f)
	cb, err := ParseCombo(key)
	if err != nil {
		t.Fatalf("ParseCombo(%q): %v", key, err)
	}
	if cb.ProgSeed != f.Seed || cb.Size != f.Size {
		t.Fatalf("combo %q lost the program identity (seed %d size %s)", key, f.Seed, f.Size)
	}
	if cb.KillAtSend == 0 && cb.FaultKind == 0 {
		t.Fatalf("combo %q carries no failure schedule", key)
	}
}
