package simtest

import (
	"testing"

	ftvm "repro"
	"repro/internal/fuzzgen"
)

// TestPromotionTransferSurvivesKillAtEveryTailPosition is the state-transfer
// durability table: after the first primary dies and the promoted n2 recruits
// n3 through a snapshot + live-tail transfer, n2 itself is killed at every
// position of the second link — the 1st message (mid-snapshot) through far
// past the tail (kill never lands) — with the final frame both swallowed and
// delivered. At every position the recruit must run the final recovery to the
// failure-free reference output. PR 6 checked a couple of fixed two-kill
// schedules; this sweeps the whole position space for a fixed workload.
func TestPromotionTransferSurvivesKillAtEveryTailPosition(t *testing.T) {
	const progSeed = 5
	prog, ref, err := comboProgram(Combo{ProgSeed: progSeed, Size: fuzzgen.SizeSmall})
	if err != nil {
		t.Fatal(err)
	}

	// The position space is discovered, not assumed: keep killing one send
	// later until the kill falls past the promoted primary's final message
	// (Killed2 = false for both deliver variants), so every position the
	// schedule can produce is covered exactly once.
	const positionCap = 400
	takeovers, landedEarly, landedLate, missed := 0, 0, 0, 0
	for _, mode := range []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched} {
		for k2 := 1; k2 <= positionCap; k2++ {
			pastEnd := true
			for _, deliver := range []bool{false, true} {
				cb := ViewCombo{
					ProgSeed: progSeed, Size: fuzzgen.SizeSmall, Mode: mode,
					Kill1AtSend: 3, Kill1Deliver: false,
					Kill2AtSend: k2, Kill2Deliver: deliver,
					NetSeed: 1, ReorderNum: 1, ReorderDen: 8,
				}
				out := RunViewCombo(cb, prog, ref)
				if out.Failed() {
					t.Errorf("tail position %d (deliver=%t, mode=%s):\n%s\nreplay: %s",
						k2, deliver, mode, out.TraceLine(), out.ReplayCommand())
					continue
				}
				r := out.Result
				switch {
				case !r.Killed2:
					missed++ // position past the schedule's last send
				case r.SecondTakeover:
					pastEnd = false
					takeovers++
					// Records3 < Records2 means n3 died holding a shorter log
					// than n2 shipped — the kill landed inside the transfer.
					if r.Records3 < r.Records2 {
						landedEarly++
					} else {
						landedLate++
					}
				default:
					pastEnd = false
				}
			}
			if pastEnd {
				break // both variants outlived the schedule: space exhausted
			}
		}
	}
	if takeovers == 0 {
		t.Fatal("no position actually killed the promoted primary")
	}
	if landedEarly == 0 || landedLate == 0 {
		t.Fatalf("table did not cover both transfer phases: %d mid-transfer, %d tail kills", landedEarly, landedLate)
	}
	if missed == 0 {
		t.Fatal("table never ran past the final send (position space too small to be exhaustive)")
	}
	t.Logf("%d second takeovers (%d mid-transfer, %d in the tail), %d positions past the end",
		takeovers, landedEarly, landedLate, missed)
}
