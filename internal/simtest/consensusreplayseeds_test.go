package simtest

import (
	"testing"
)

// consensusReplaySeeds pins the consensus backend's historical failure
// classes to exact, seed-reproducible schedules, mirroring replaySeeds for
// the pair path. Each key replays via `ftvm-sim -replay` and through
// `make replay-seeds`.
var consensusReplaySeeds = []struct {
	class string
	key   string
}{
	{
		// This PR: leader killed mid-commit — the kill lands between a
		// majority ack and output release, so recovery must rebuild from the
		// committed prefix and the new leader's barrier entry must carry the
		// surviving tail (the Raft no-op commit rule).
		"leader kill mid-commit",
		"prog=1,size=small,mode=lock,who=leader,kill=5,deliver=1,part=0+0,inject=0,fault=none@0,eseed=1,net=1,reorder=1/8",
	},
	{
		// This PR: stale-term frame — an AppendEntries from a dead term must
		// be rejected and counted, never folded into the log. The harness
		// injects a term-0 probe at a follower mid-run; the sweep asserts
		// StaleTerms > 0 on top of trace identity.
		"stale-term frame rejected",
		"prog=2,size=small,mode=sched,who=follower,kill=0,deliver=0,part=0+0,inject=1,fault=none@0,eseed=1,net=1,reorder=1/8",
	},
	{
		// This PR: split vote — election seed 7 makes two replicas campaign
		// simultaneously; the split must resolve through the third voter
		// without disturbing the output stream. (The original livelock was a
		// Weyl-lattice correlation in electionRNG: correlated timeout streams
		// re-split the vote forever.)
		"split vote resolves via third voter",
		"prog=3,size=small,mode=lock,who=follower,kill=0,deliver=0,part=0+0,inject=0,fault=none@0,eseed=7,net=1,reorder=1/8",
	},
	{
		// Contested election AND a leader kill: the term-1 leader that won a
		// split vote dies mid-run, forcing a second, uncontested election on
		// already-perturbed timeout streams.
		"leader kill after a contested election",
		"prog=1,size=small,mode=lock,who=leader,kill=3,deliver=0,part=0+0,inject=0,fault=none@0,eseed=7,net=1,reorder=1/8",
	},
	{
		// A finite partition window on a follower link: the follower falls
		// behind, then catches up via the leader's nextIndex backoff; commit
		// progress must continue on the unaffected majority throughout.
		"follower partition heals by log catch-up",
		"prog=2,size=small,mode=lockint,who=follower,kill=0,deliver=0,part=3+4,inject=0,fault=none@0,eseed=1,net=1,reorder=1/8",
	},
	{
		// Link fault plus follower kill: a corrupting link exercises the
		// malformed-message drop path while a follower dies, leaving exactly
		// a bare majority to carry the run.
		"corrupt link with a follower kill",
		"prog=4,size=small,mode=lock,who=follower,kill=4,deliver=0,part=0+0,inject=0,fault=corrupt-recv@2,eseed=1,net=2,reorder=1/8",
	},
}

// TestConsensusReplaySeeds replays the consensus regression table. A failure
// here means a previously-fixed failure class has reopened; the table line
// is the repro.
func TestConsensusReplaySeeds(t *testing.T) {
	for _, rs := range consensusReplaySeeds {
		t.Run(rs.class, func(t *testing.T) {
			cb, err := ParseConsensusCombo(rs.key)
			if err != nil {
				t.Fatalf("table entry %q: %v", rs.key, err)
			}
			out := RunConsensusCombo(cb, nil, nil)
			if out.Failed() {
				t.Fatalf("regression in %q:\n%s\nreplay: %s", rs.class, out.TraceLine(), out.ReplayCommand())
			}
			t.Logf("%s", out.TraceLine())
		})
	}
}
