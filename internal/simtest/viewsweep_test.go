package simtest

import (
	"strings"
	"testing"

	ftvm "repro"
	"repro/internal/fuzzgen"
	"repro/internal/transport"
)

// TestViewComboKeyRoundTrip: every field of a view combo survives
// Key -> ParseViewCombo, so a printed trace line is a complete repro.
func TestViewComboKeyRoundTrip(t *testing.T) {
	in := ViewCombo{
		ProgSeed: 42, Size: fuzzgen.SizeSmall, Mode: ftvm.ModeSched,
		Kill1AtSend: 7, Kill1Deliver: true,
		Kill2AtSend: 2, Kill2Deliver: false,
		FaultKind: transport.FaultCorruptRecv, FaultAt: 1,
		InjectStale: true,
		NetSeed:     9, ReorderNum: 1, ReorderDen: 4,
	}
	out, err := ParseViewCombo(in.Key())
	if err != nil {
		t.Fatalf("parse %q: %v", in.Key(), err)
	}
	if out != in {
		t.Fatalf("round trip changed the combo:\n in: %+v\nout: %+v\nkey: %s", in, out, in.Key())
	}
	if !IsViewKey(in.Key()) {
		t.Fatalf("IsViewKey(%q) = false", in.Key())
	}
	if IsViewKey("prog=1,size=small,mode=lock,kill=5,deliver=1,fault=none@0,net=1,reorder=1/8") {
		t.Fatal("IsViewKey matched a pair-combo key")
	}
}

// TestViewSweepTraceDeterminism: the same view sweep run twice yields a
// byte-identical trace — virtual time, record counts and view numbers
// included — and no combo fails.
func TestViewSweepTraceDeterminism(t *testing.T) {
	cfg := ViewSweepConfig{
		ProgSeeds:  []uint64{3},
		Modes:      []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched},
		Kill1Sends: []int{3},
		Kill2Sends: []int{1, 6},
		NetSeeds:   []int64{5},
	}
	first := RunViewSweep(cfg, nil)
	second := RunViewSweep(cfg, nil)
	if len(first.Failures) != 0 {
		t.Fatalf("sweep failed:\n%s\nreplay: %s",
			first.Failures[0].TraceLine(), first.Failures[0].ReplayCommand())
	}
	a, b := strings.Join(first.Trace, "\n"), strings.Join(second.Trace, "\n")
	if a != b {
		t.Fatalf("same sweep, different traces:\n--- first\n%s\n--- second\n%s", a, b)
	}
	t.Logf("%d view combos, trace stable", first.Combos)
}

// TestViewSweepSmoke runs the default schedule space over one program in all
// three modes — every combo must hold the exactly-once contract whatever the
// two-stage fault schedule does.
func TestViewSweepSmoke(t *testing.T) {
	cfg := ViewSweepConfig{ProgSeeds: []uint64{3}, NetSeeds: []int64{5}}
	res := RunViewSweep(cfg, nil)
	for _, f := range res.Failures {
		t.Errorf("%s\nreplay: %s", f.TraceLine(), f.ReplayCommand())
	}
	if res.Combos < 20 {
		t.Fatalf("smoke sweep covered only %d combos", res.Combos)
	}
	t.Logf("%d view combos ok in %v", res.Combos, res.Elapsed)
}

// viewReplaySeeds pins the failure classes closed by this PR's view-change
// work, one exact replay string per class (same workflow as replaySeeds:
// `ftvm-sim -replay` takes these strings verbatim).
var viewReplaySeeds = []struct {
	class string
	key   string
}{
	{
		// Split-brain probe: a deposed primary's epoch-1 frame delivered to
		// the recruit right after the state transfer must be dropped without
		// an ack (epoch gate ahead of the sequence gate).
		"stale-epoch frame after promotion",
		"prog=3,size=small,mode=lock,kill1=4,d1=0,kill2=0,d2=0,fault=none@0,inject=1,net=5,reorder=1/8",
	},
	{
		// Ack-loop desync on the new pair: the transfer's first ack arrives
		// corrupted, the promoted primary must refuse it (ErrProtocolDesync)
		// and the recruit finishes the job from its logged prefix.
		"corrupt ack during state transfer",
		"prog=3,size=small,mode=lock,kill1=3,d1=0,kill2=0,d2=0,fault=corrupt-recv@1,inject=0,net=5,reorder=1/8",
	},
	{
		// n−1 survival with the double-takeover guard in the path: two
		// sequential promotions, each acquiring its view exactly once.
		"sequential failures through two promotions",
		"prog=3,size=small,mode=sched,kill1=3,d1=0,kill2=6,d2=1,fault=none@0,inject=0,net=5,reorder=1/8",
	},
	{
		// The promoted primary dies on the transfer's first frame: the
		// recruit holds at most a partial prefix and must still reproduce
		// the reference exactly once.
		"death on the first transfer frame",
		"prog=3,size=small,mode=lockint,kill1=4,d1=0,kill2=1,d2=0,fault=none@0,inject=0,net=5,reorder=1/8",
	},
	{
		// Partition on the new pair mid-tail: the promoted primary loses its
		// recruit and the recruit's takeover closes the chain.
		"partition between promoted primary and recruit",
		"prog=3,size=small,mode=lock,kill1=3,d1=1,kill2=0,d2=0,fault=partition-send@4,inject=0,net=5,reorder=1/8",
	},
}

// TestViewReplaySeeds replays the view regression table. A failure means a
// view-change failure class fixed in this PR has reopened.
func TestViewReplaySeeds(t *testing.T) {
	for _, rs := range viewReplaySeeds {
		t.Run(rs.class, func(t *testing.T) {
			cb, err := ParseViewCombo(rs.key)
			if err != nil {
				t.Fatalf("table entry %q: %v", rs.key, err)
			}
			out := RunViewCombo(cb, nil, nil)
			if out.Failed() {
				t.Fatalf("regression in %q:\n%s\nreplay: %s", rs.class, out.TraceLine(), out.ReplayCommand())
			}
			t.Logf("%s", out.TraceLine())
		})
	}
}
