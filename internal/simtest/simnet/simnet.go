// Package simnet is the simulated replication link for deterministic
// simulation tests: an in-process duplex message channel whose delivery
// schedule is drawn from a seeded PRNG and whose waits run on a virtual
// clock. It implements transport.Endpoint, so a primary/backup pair wired
// through it behaves exactly as over the real pipe — except that latency,
// ordering, and timeout interleavings are a pure function of the seed, and a
// whole fault schedule executes in microseconds of wall time.
//
// Message loss, duplication, partitions, and mid-write closes are NOT
// simnet's job: wrap an endpoint in transport.Faulty (with the same virtual
// clock) to inject those at deterministic operation indices. simnet supplies
// the substrate — seeded latency, optional reordering, drain-on-close pipe
// semantics, and a per-send hook for positioning crashes.
package simnet

import (
	"sync"
	"time"

	frand "repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
)

// Config shapes one duplex link. Latency for every message is an independent
// draw in [MinDelay, MaxDelay] from the lane's seeded RNG; by default
// deliveries are FIFO-clamped (a fast draw cannot overtake an earlier slow
// one, like a TCP stream). ReorderNum/ReorderDen give the per-message chance
// that the clamp is skipped, letting that message arrive before its
// predecessors — the "ordered transport momentarily isn't" schedule that
// exercises the backup's SeqGate gap handling.
type Config struct {
	Seed       int64
	MinDelay   time.Duration // zero ⇒ 50µs virtual
	MaxDelay   time.Duration // zero ⇒ 10×MinDelay
	ReorderNum int           // chance a message skips FIFO clamping...
	ReorderDen int           // ...as ReorderNum in ReorderDen (0 den ⇒ never)
}

// Link returns the two ends of a simulated duplex channel scheduled on clk.
func Link(clk *clock.Virtual, cfg Config) (a, b *Endpoint) {
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 50 * time.Microsecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = 10 * cfg.MinDelay
	}
	root := frand.New(uint64(cfg.Seed))
	l := &link{clk: clk, cfg: cfg}
	ab := &lane{rng: root.Fork(), slot: clk.NewWaitSlot()}
	ba := &lane{rng: root.Fork(), slot: clk.NewWaitSlot()}
	a = &Endpoint{link: l, out: ab, in: ba}
	b = &Endpoint{link: l, out: ba, in: ab}
	a.peer, b.peer = b, a
	return a, b
}

// link is the shared state of one duplex channel. One mutex guards both
// lanes and both ends' closed flags: sender and receiver of a lane are
// different goroutines on different endpoints, so per-endpoint locking would
// race. The lock order is always link.mu → clock internals (clock event
// callbacks touch only wait-slot state, never the link).
type link struct {
	clk *clock.Virtual
	cfg Config
	mu  sync.Mutex
}

// lane is one one-way direction: a queue of in-flight messages stamped with
// virtual delivery times, and the receiver's wait slot. Messages are
// enqueued at send time; the clock event scheduled for deliverAt only
// signals the slot, which is why delivery callbacks never need link.mu.
// Guarded by link.mu.
type lane struct {
	rng  *frand.RNG
	slot clock.WaitSlot

	queue  []inflight
	lastAt time.Time // FIFO clamp: latest delivery stamp issued so far
	sends  int       // messages offered on this lane (1-based hook index)
	hook   func(n int, msg []byte) (deliver bool)
}

type inflight struct {
	data []byte
	at   time.Time
}

// Endpoint is one end of the link. It satisfies transport.Endpoint.
type Endpoint struct {
	link *link
	out  *lane // lane this end sends on
	in   *lane // lane this end receives on
	peer *Endpoint

	closed bool // guarded by link.mu
}

var _ transport.Endpoint = (*Endpoint)(nil)

// SetSendHook installs fn on this end's outgoing lane, called synchronously
// on the sender's goroutine for each Send with the 1-based send index,
// before the message is enqueued. Returning false suppresses delivery (the
// message is lost in flight). The simulation harness uses it to position
// crashes at exact frame counts — kill at the Nth send, with or without the
// frame escaping — which is what makes kill points schedule-exact rather
// than poll-approximate. fn runs under the link lock and must not call back
// into the endpoint.
func (e *Endpoint) SetSendHook(fn func(n int, msg []byte) (deliver bool)) {
	e.link.mu.Lock()
	defer e.link.mu.Unlock()
	e.out.hook = fn
}

// Send implements transport.Endpoint. It never blocks (the lane buffer is
// unbounded; replication's ack flow keeps it shallow) and stamps the message
// with a seeded delivery time.
func (e *Endpoint) Send(msg []byte) error {
	l := e.link
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.closed || e.peer.closed {
		return transport.ErrClosed
	}
	out := e.out
	out.sends++
	if out.hook != nil && !out.hook(out.sends, msg) {
		return nil // swallowed in flight; the sender cannot tell
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)

	now := l.clk.Now()
	at := now.Add(l.cfg.MinDelay + time.Duration(out.rng.Range(0, int(l.cfg.MaxDelay-l.cfg.MinDelay))))
	reordered := l.cfg.ReorderDen > 0 && out.rng.Chance(l.cfg.ReorderNum, l.cfg.ReorderDen)
	if !reordered && at.Before(out.lastAt) {
		at = out.lastAt
	}
	if at.After(out.lastAt) {
		out.lastAt = at
	}
	out.queue = append(out.queue, inflight{data: cp, at: at})
	l.clk.ScheduleSignal(at, out.slot)
	return nil
}

// Recv implements transport.Endpoint. The wait is entirely clock-visible:
// the receiver parks on the lane's slot and is woken by delivery events or
// the virtual timeout, so "ack arrives just before/after the deadline" is a
// deterministic consequence of the seed. After either end closes, anything
// already in flight is drained before ErrClosed — the pipe's contract.
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, error) {
	l := e.link
	var deadline time.Time
	if timeout > 0 {
		deadline = l.clk.Now().Add(timeout)
	}
	for {
		l.mu.Lock()
		if msg, ok := e.popLocked(); ok {
			l.mu.Unlock()
			return msg, nil
		}
		if (e.closed || e.peer.closed) && len(e.in.queue) == 0 {
			l.mu.Unlock()
			return nil, transport.ErrClosed
		}
		slot := e.in.slot
		l.mu.Unlock()

		wait := time.Duration(0) // no caller timeout: park until signalled
		if timeout > 0 {
			wait = deadline.Sub(l.clk.Now())
			if wait <= 0 {
				return nil, transport.ErrTimeout
			}
		}
		if slot.Park(wait) {
			return nil, transport.ErrTimeout
		}
	}
}

// popLocked removes and returns the next deliverable message on e's inbound
// lane: the ripe message with the earliest delivery stamp (send order breaks
// ties; reordered messages can be ripe behind an unripe head). After closure
// everything buffered is deliverable immediately, ripe or not — drain
// semantics — but still in stamp order, so a reordered schedule stays
// reordered when the sender dies.
func (e *Endpoint) popLocked() ([]byte, bool) {
	in := e.in
	if len(in.queue) == 0 {
		return nil, false
	}
	closed := e.closed || e.peer.closed
	now := e.link.clk.Now()
	idx := -1
	for i := range in.queue {
		if !closed && in.queue[i].at.After(now) {
			continue
		}
		if idx < 0 || in.queue[i].at.Before(in.queue[idx].at) {
			idx = i
		}
	}
	if idx < 0 {
		return nil, false
	}
	msg := in.queue[idx].data
	in.queue = append(in.queue[:idx], in.queue[idx+1:]...)
	return msg, true
}

// Close implements transport.Endpoint: idempotent, wakes both receivers so
// they observe closure (after draining whatever was already in flight).
func (e *Endpoint) Close() error {
	l := e.link
	l.mu.Lock()
	if e.closed {
		l.mu.Unlock()
		return nil
	}
	e.closed = true
	in, peerIn := e.in.slot, e.peer.in.slot
	l.mu.Unlock()
	in.Signal()
	peerIn.Signal()
	return nil
}

// Sends returns how many messages have been offered on this end's outgoing
// lane (including hook-suppressed ones) — the coordinate system for
// positioning kill points.
func (e *Endpoint) Sends() int {
	e.link.mu.Lock()
	defer e.link.mu.Unlock()
	return e.out.sends
}
