package simnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/transport"
)

// TestDeliveryAndLatency: a message crosses the link within the configured
// virtual latency band, with zero wall-clock waiting.
func TestDeliveryAndLatency(t *testing.T) {
	v := clock.NewVirtual()
	cfg := Config{Seed: 1, MinDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	a, b := Link(v, cfg)
	var done sync.WaitGroup
	done.Add(2)
	v.Go(func() {
		defer done.Done()
		if err := a.Send([]byte("hello")); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	var got []byte
	var err error
	v.Go(func() {
		defer done.Done()
		got, err = b.Recv(0)
	})
	done.Wait()
	if err != nil || string(got) != "hello" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	if e := v.Elapsed(); e < cfg.MinDelay || e > cfg.MaxDelay {
		t.Fatalf("delivered at %v, want within [%v, %v]", e, cfg.MinDelay, cfg.MaxDelay)
	}
}

// TestFIFO: without reordering enabled, messages arrive in send order even
// though each draws an independent latency.
func TestFIFO(t *testing.T) {
	v := clock.NewVirtual()
	a, b := Link(v, Config{Seed: 7})
	const n = 50
	var done sync.WaitGroup
	done.Add(2)
	v.Go(func() {
		defer done.Done()
		for i := 0; i < n; i++ {
			if err := a.Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return
			}
		}
	})
	var order []string
	v.Go(func() {
		defer done.Done()
		for i := 0; i < n; i++ {
			msg, err := b.Recv(0)
			if err != nil {
				t.Errorf("Recv %d: %v", i, err)
				return
			}
			order = append(order, string(msg))
		}
	})
	done.Wait()
	for i, m := range order {
		if m != fmt.Sprintf("m%02d", i) {
			t.Fatalf("position %d got %s; FIFO clamp violated", i, m)
		}
	}
}

// TestRecvTimeout: a Recv deadline on a silent link expires at exactly the
// virtual timeout.
func TestRecvTimeout(t *testing.T) {
	v := clock.NewVirtual()
	_, b := Link(v, Config{Seed: 3})
	var done sync.WaitGroup
	done.Add(1)
	var err error
	v.Go(func() {
		defer done.Done()
		_, err = b.Recv(75 * time.Millisecond)
	})
	done.Wait()
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := v.Elapsed(); got != 75*time.Millisecond {
		t.Fatalf("timed out at %v, want exactly 75ms", got)
	}
}

// TestDrainOnClose: messages in flight when the sender closes are still
// delivered before ErrClosed — the same contract as the in-process pipe,
// which the backup's failure detector depends on to see the final frames of
// a crashing primary.
func TestDrainOnClose(t *testing.T) {
	v := clock.NewVirtual()
	a, b := Link(v, Config{Seed: 9})
	var done sync.WaitGroup
	done.Add(2)
	v.Go(func() {
		defer done.Done()
		_ = a.Send([]byte("one"))
		_ = a.Send([]byte("two"))
		_ = a.Close()
	})
	var got []string
	var finalErr error
	v.Go(func() {
		defer done.Done()
		for {
			msg, err := b.Recv(0)
			if err != nil {
				finalErr = err
				return
			}
			got = append(got, string(msg))
		}
	})
	done.Wait()
	if strings.Join(got, ",") != "one,two" {
		t.Fatalf("drained %v, want [one two]", got)
	}
	if !errors.Is(finalErr, transport.ErrClosed) {
		t.Fatalf("final err = %v, want ErrClosed", finalErr)
	}
}

// TestSendHook: the hook sees 1-based send indices and can suppress exactly
// one message — the kill-point positioning mechanism.
func TestSendHook(t *testing.T) {
	v := clock.NewVirtual()
	a, b := Link(v, Config{Seed: 11})
	a.SetSendHook(func(n int, msg []byte) bool { return n != 2 })
	var done sync.WaitGroup
	done.Add(2)
	v.Go(func() {
		defer done.Done()
		for _, m := range []string{"first", "second", "third"} {
			_ = a.Send([]byte(m))
		}
		_ = a.Close()
	})
	var got []string
	v.Go(func() {
		defer done.Done()
		for {
			msg, err := b.Recv(0)
			if err != nil {
				return
			}
			got = append(got, string(msg))
		}
	})
	done.Wait()
	if strings.Join(got, ",") != "first,third" {
		t.Fatalf("got %v, want the hook to swallow only send #2", got)
	}
	if a.Sends() != 3 {
		t.Fatalf("Sends = %d, want 3 (suppressed sends still count)", a.Sends())
	}
}

// TestReorder: with the FIFO clamp always skipped, some pair of messages
// arrives out of send order (seed chosen so the latency draws cross).
func TestReorder(t *testing.T) {
	v := clock.NewVirtual()
	a, b := Link(v, Config{Seed: 5, MinDelay: 10 * time.Microsecond, MaxDelay: 5 * time.Millisecond, ReorderNum: 1, ReorderDen: 1})
	const n = 20
	var done sync.WaitGroup
	done.Add(2)
	v.Go(func() {
		defer done.Done()
		for i := 0; i < n; i++ {
			_ = a.Send([]byte(fmt.Sprintf("m%02d", i)))
		}
		_ = a.Close()
	})
	var order []string
	v.Go(func() {
		defer done.Done()
		for {
			msg, err := b.Recv(0)
			if err != nil {
				return
			}
			order = append(order, string(msg))
		}
	})
	done.Wait()
	if len(order) != n {
		t.Fatalf("received %d messages, want %d", len(order), n)
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("all %d messages arrived in send order with reordering forced on", n)
	}
}

// TestDeterminism: the same seed yields a byte-identical delivery transcript
// (payload and virtual timestamp of every receive) across runs.
func TestDeterminism(t *testing.T) {
	run := func() string {
		v := clock.NewVirtual()
		a, b := Link(v, Config{Seed: 42, ReorderNum: 1, ReorderDen: 4})
		var done sync.WaitGroup
		done.Add(2)
		v.Go(func() {
			defer done.Done()
			for i := 0; i < 25; i++ {
				_ = a.Send([]byte(fmt.Sprintf("m%02d", i)))
				if i%5 == 4 {
					v.Sleep(300 * time.Microsecond)
				}
			}
			_ = a.Close()
		})
		var log []string
		v.Go(func() {
			defer done.Done()
			for {
				msg, err := b.Recv(2 * time.Millisecond)
				if errors.Is(err, transport.ErrTimeout) {
					log = append(log, fmt.Sprintf("timeout@%v", v.Elapsed()))
					continue
				}
				if err != nil {
					return
				}
				log = append(log, fmt.Sprintf("%s@%v", msg, v.Elapsed()))
			}
		})
		done.Wait()
		return strings.Join(log, "\n")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("transcript diverged on rerun %d:\n--- first\n%s\n--- got\n%s", i+2, first, got)
		}
	}
	if !strings.Contains(first, "@") || len(first) == 0 {
		t.Fatal("empty transcript")
	}
}
