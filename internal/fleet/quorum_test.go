package fleet

import (
	"testing"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/wire"
)

// quorumFleet builds a quorum-backend fleet with enough nodes to seat a
// witness per shard.
func quorumFleet(t *testing.T, cfg Config) (*Fleet, *clock.Virtual) {
	t.Helper()
	cfg.Backend = BackendQuorum
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []string{"n1", "n2", "n3", "n4"}
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	return newTestFleet(t, cfg)
}

// shardPeers returns shard's live backup and witness replicas.
func shardPeers(f *Fleet, shard int) (bak, wit *replica) {
	v := f.dir.Shard(shard)
	if v.Backup != "" {
		bak = f.nodes[v.Backup].replicas[shard]
	}
	wit, _ = f.findWitness(shard)
	return bak, wit
}

func TestQuorumSeatsWitnessPerShard(t *testing.T) {
	f, _ := quorumFleet(t, Config{})
	for shard := 0; shard < f.NumShards(); shard++ {
		bak, wit := shardPeers(f, shard)
		if bak == nil || wit == nil {
			t.Fatalf("shard %d: backup %v witness %v, want both seated", shard, bak != nil, wit != nil)
		}
		v := f.dir.Shard(shard)
		pri := f.nodes[v.Primary].replicas[shard]
		if len(pri.links) != 2 {
			t.Fatalf("shard %d primary has %d links, want 2", shard, len(pri.links))
		}
	}
}

// TestQuorumCommitsThroughFrameDrop is the availability win over the pair:
// a frame lost toward one peer does not stall the shard — the op commits
// through the other peer, and the lagging one is repaired by the next
// operation's suffix catch-up.
func TestQuorumCommitsThroughFrameDrop(t *testing.T) {
	f, _ := quorumFleet(t, Config{Shards: 1, Fault: FaultFrameDrop, FaultEvery: 3})
	var obs []Observation
	for req := uint64(1); req <= 9; req++ {
		out := f.Submit(&wire.Request{Client: 1, Req: req, Tenant: 0, Op: wire.OpAdd, Arg: 1})
		r := mustOK(t, out)
		obs = append(obs, Observation{1, req, r.Value})
	}
	c := f.Counters()
	if c.FramesDropped == 0 {
		t.Fatal("fault schedule never struck — the test exercised nothing")
	}
	if c.Resent != 0 {
		t.Fatalf("%d stop-and-wait resends; quorum commits should never have stalled", c.Resent)
	}
	// One more op flushes every suffix; then both peers must hold the log.
	mustOK(t, f.Submit(&wire.Request{Client: 1, Req: 10, Tenant: 0, Op: wire.OpGet}))
	v := f.dir.Shard(0)
	pri := f.nodes[v.Primary].replicas[0]
	bak, wit := shardPeers(f, 0)
	if bak.logged != pri.logged || wit.logged != pri.logged {
		t.Fatalf("peers lag after catch-up: primary %d, backup %d, witness %d",
			pri.logged, bak.logged, wit.logged)
	}
	if err := f.Verify(obs); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumAckDropRepairsLink: a lost ack leaves the link's view behind the
// peer's actual log; the record-high-water ack protocol must repair the view
// on the next ship instead of double-logging or desyncing.
func TestQuorumAckDropRepairsLink(t *testing.T) {
	f, _ := quorumFleet(t, Config{Shards: 1, Fault: FaultAckDrop, FaultEvery: 2})
	var obs []Observation
	for req := uint64(1); req <= 8; req++ {
		out := f.Submit(&wire.Request{Client: 3, Req: req, Tenant: 0, Op: wire.OpAdd, Arg: 2})
		if out.Reply == nil {
			// Both acks struck: the op is pending; the retry commits it.
			out = f.Submit(&wire.Request{Client: 3, Req: req, Tenant: 0, Op: wire.OpAdd, Arg: 2})
		}
		r := mustOK(t, out)
		obs = append(obs, Observation{3, req, r.Value})
	}
	if c := f.Counters(); c.AcksDropped == 0 {
		t.Fatal("fault schedule never struck an ack")
	}
	if err := f.Verify(obs); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumMaxLogPromotion kills a primary whose backup missed a committed
// operation (the witness carried the commit). Promotion must adopt the
// witness's longer log, or the committed op would vanish from the authority.
func TestQuorumMaxLogPromotion(t *testing.T) {
	// FaultEvery=3 strikes the 3rd replication attempt: op1 ships to backup
	// (1) and witness (2); op2's ship to the backup (3) is struck and commits
	// through the witness alone.
	f, clk := quorumFleet(t, Config{Shards: 1, Fault: FaultFrameDrop, FaultEvery: 3})
	clk.Attach()
	defer clk.Detach()
	mustOK(t, f.Submit(&wire.Request{Client: 5, Req: 1, Tenant: 0, Op: wire.OpSet, Arg: 10}))
	r2 := mustOK(t, f.Submit(&wire.Request{Client: 5, Req: 2, Tenant: 0, Op: wire.OpAdd, Arg: 7}))
	if r2.Value != 17 {
		t.Fatalf("add = %d, want 17", r2.Value)
	}
	bak, wit := shardPeers(f, 0)
	if bak.logged != 1 || wit.logged != 2 {
		t.Fatalf("setup: backup %d, witness %d records, want 1/2", bak.logged, wit.logged)
	}
	v := f.dir.Shard(0)
	if _, err := f.Kill(v.Primary); err != nil {
		t.Fatal(err)
	}
	if got := f.TenantValue(0); got != 17 {
		t.Fatalf("after max-log promotion tenant 0 = %d, want 17", got)
	}
	if err := f.Verify([]Observation{{5, 1, 10}, {5, 2, 17}}); err != nil {
		t.Fatal(err)
	}
	// The dedup table must have come back too: the committed op answers from
	// cache, not by re-execution.
	clk.Sleep(time.Second) // let the replay window pass
	r2b := mustOK(t, f.Submit(&wire.Request{Client: 5, Req: 2, Tenant: 0, Op: wire.OpAdd, Arg: 7}))
	if r2b.Value != 17 {
		t.Fatalf("retry after promotion = %d, want cached 17", r2b.Value)
	}
}

// TestQuorumWitnessDeathRerecruits kills the node hosting a shard's witness
// (no directory seat involved) and expects a replacement seated by snapshot.
func TestQuorumWitnessDeathRerecruits(t *testing.T) {
	f, _ := quorumFleet(t, Config{Shards: 1, Nodes: []string{"n1", "n2", "n3", "n4"}})
	mustOK(t, f.Submit(&wire.Request{Client: 2, Req: 1, Tenant: 0, Op: wire.OpSet, Arg: 4}))
	_, witNode := f.findWitness(0)
	if witNode == "" {
		t.Fatal("no witness seated")
	}
	before := f.Counters().Transfers
	if _, err := f.Kill(witNode); err != nil {
		t.Fatal(err)
	}
	wit, newNode := f.findWitness(0)
	if wit == nil || newNode == witNode {
		t.Fatalf("witness not re-recruited (node %q)", newNode)
	}
	v := f.dir.Shard(0)
	pri := f.nodes[v.Primary].replicas[0]
	if wit.logged != pri.logged {
		t.Fatalf("recruit snapshot has %d records, primary %d", wit.logged, pri.logged)
	}
	if f.Counters().Transfers != before+1 {
		t.Fatalf("transfers %d -> %d, want one snapshot", before, f.Counters().Transfers)
	}
	mustOK(t, f.Submit(&wire.Request{Client: 2, Req: 2, Tenant: 0, Op: wire.OpAdd, Arg: 1}))
	if err := f.Verify([]Observation{{2, 1, 4}, {2, 2, 5}}); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumWitnessConvertsToBackup: with exactly three nodes, killing the
// backup forces the directory to seat the new backup on the witness's node —
// the witness must convert in place and a fresh witness is impossible.
func TestQuorumWitnessConvertsToBackup(t *testing.T) {
	f, _ := quorumFleet(t, Config{Shards: 1, Nodes: []string{"n1", "n2", "n3"}})
	mustOK(t, f.Submit(&wire.Request{Client: 9, Req: 1, Tenant: 0, Op: wire.OpSet, Arg: 30}))
	v := f.dir.Shard(0)
	_, witNode := f.findWitness(0)
	if _, err := f.Kill(v.Backup); err != nil {
		t.Fatal(err)
	}
	nv := f.dir.Shard(0)
	if nv.Backup != witNode {
		t.Fatalf("new backup on %s, want the witness node %s", nv.Backup, witNode)
	}
	bak := f.nodes[nv.Backup].replicas[0]
	if bak.role != roleBackup {
		t.Fatalf("witness did not convert: role %d", bak.role)
	}
	if w, _ := f.findWitness(0); w != nil {
		t.Fatal("a witness exists with every live node already holding the shard")
	}
	mustOK(t, f.Submit(&wire.Request{Client: 9, Req: 2, Tenant: 0, Op: wire.OpAdd, Arg: 3}))
	if err := f.Verify([]Observation{{9, 1, 30}, {9, 2, 33}}); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumStaleFrameRejected: the epoch gate guards the quorum receive
// path exactly as it guards the pair's.
func TestQuorumStaleFrameRejected(t *testing.T) {
	f, _ := quorumFleet(t, Config{Shards: 1})
	mustOK(t, f.Submit(&wire.Request{Client: 4, Req: 1, Tenant: 0, Op: wire.OpSet, Arg: 2}))
	v := f.dir.Shard(0)
	if _, err := f.Kill(v.Primary); err != nil {
		t.Fatal(err)
	}
	if logged := f.InjectStaleFrame(0, v.Num); logged {
		t.Fatal("stale-epoch frame reached a quorum peer's log")
	}
	if c := f.Counters(); c.StaleFrames == 0 {
		t.Fatal("stale frame not counted")
	}
	if err := f.Verify([]Observation{{4, 1, 2}}); err != nil {
		t.Fatal(err)
	}
}
