// Package loadgen drives a fleet.Fleet with an open-loop, seeded,
// million-client workload on the injected clock. Under a virtual clock the
// whole run — arrivals, retries, node kills, promotion windows — executes as
// a single-actor discrete-event simulation: millions of simulated requests
// complete in seconds of wall time, and every run with the same (config,
// seed) produces a byte-identical trace.
//
// Clients are sessions: each client's start time is drawn over the arrival
// window (open-loop — arrivals do not depend on completions), and within a
// session the client issues its requests sequentially with monotonically
// increasing request ids, retrying the same id until it observes a reply.
// The per-request operation is a pure function of (client seed, request id),
// so a retry always re-sends byte-identical work — the property the server's
// dedup table depends on.
//
// Each client caches the node it believes leads its tenant's shard. A kill
// leaves those caches stale: affected clients time out against the dead
// node, refresh their route, and retry — the client half of the failover
// blast radius the stats report.
package loadgen

import (
	"container/heap"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/fleet"
	"repro/internal/fuzzgen/rand"
	"repro/internal/simtest/clock"
	"repro/internal/wire"
)

// Kill schedules one node fail-stop.
type Kill struct {
	At   time.Duration // offset from the run start
	Node string
}

// Config parameterises a run.
type Config struct {
	Clients      int
	OpsPerClient int
	Tenants      uint64        // tenant id space (default max(Clients/16, 16))
	Seed         uint64        // master seed; every random choice derives from it
	Window       time.Duration // arrival window for client start times (default 1s)
	ReqTimeout   time.Duration // silence → retry after this (default 20ms)
	Backoff      time.Duration // base retry backoff on Unavailable (default 2ms)
	MaxTries     int           // per request, before the run fails (default 64)
	Kills        []Kill
	// SampleEvery records observations (for fleet.Verify) from every Nth
	// client; 0 records every client. Large runs sample to bound memory.
	SampleEvery int
}

func (c *Config) fill() error {
	if c.Clients < 1 || c.OpsPerClient < 1 {
		return fmt.Errorf("loadgen: need >= 1 client and >= 1 op, have %d/%d", c.Clients, c.OpsPerClient)
	}
	if c.Tenants == 0 {
		c.Tenants = uint64(c.Clients / 16)
		if c.Tenants < 16 {
			c.Tenants = 16
		}
	}
	if c.Window == 0 {
		c.Window = time.Second
	}
	if c.ReqTimeout == 0 {
		c.ReqTimeout = 20 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 2 * time.Millisecond
	}
	if c.MaxTries == 0 {
		c.MaxTries = 64
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	return nil
}

// Stats summarises a run. Every field is deterministic per (config, seed).
type Stats struct {
	Clients     int
	Requests    uint64 // unique (client, req) pairs issued
	OKs         uint64
	Retries     uint64 // re-sends of an already-issued request id
	NotOwner    uint64
	Unavailable uint64
	Silent      uint64 // timeouts: dead node, dropped frame/ack/reply
	Elapsed     time.Duration
	Throughput  float64 // OK replies per virtual second
	P50, P99    time.Duration
	// BlastRadius is the fraction of active tenants that observed at least
	// one failover symptom (silence against a dead primary, or a promotion-
	// window Unavailable). Bounded by the killed nodes' primary-seat share,
	// and usually far under it: only tenants actually issuing during the
	// outage window are touched.
	BlastRadius    float64
	TenantsActive  int
	TenantsBlasted int
	Fleet          fleet.Counters
	Checksum       uint64
}

// client is one session's state. Kept to one cache line: a million of these
// is the generator's dominant allocation.
type client struct {
	tenant uint64
	seed   uint64
	issued int64  // virtual ns when the current request id was first sent
	req    uint32 // current request id, 1-based
	tries  uint32
	node   int32 // cached primary node index, -1 = consult the router
}

// event is one scheduled step: a client (re)sending, or a kill (client < 0).
type event struct {
	at     int64 // virtual ns from run start
	seq    uint64
	client int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // schedule order breaks ties: fully deterministic
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// reqOp derives the operation for (seed, req) — a pure function, so retries
// re-send identical work.
func reqOp(seed uint64, req uint32) (op uint8, arg int64) {
	r := rand.New(seed ^ uint64(req)*0x9e3779b97f4a7c15)
	op = uint8(r.Intn(int(wire.OpKinds())))
	arg = int64(r.Range(-1000, 1000))
	return op, arg
}

// Run executes the workload against f on clk. Call from a clock-attached
// goroutine when clk is virtual; the run is the sole driver of simulated
// time. Returns the stats, the sampled observations already verified against
// the fleet's model (Run calls f.Verify itself), and the first error.
func Run(f *fleet.Fleet, clk clock.Clock, cfg Config) (*Stats, []fleet.Observation, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	clk = clock.Or(clk)
	master := rand.New(cfg.Seed)
	arrival := master.Fork()
	seeds := master.Fork()

	nodes := f.Nodes()
	nodeIdx := make(map[string]int32, len(nodes))
	for i, n := range nodes {
		nodeIdx[n] = int32(i)
	}

	clients := make([]client, cfg.Clients)
	h := make(eventHeap, 0, cfg.Clients+len(cfg.Kills))
	var seq uint64
	push := func(at int64, cl int32) {
		seq++
		heap.Push(&h, event{at: at, seq: seq, client: cl})
	}
	for i := range clients {
		clients[i] = client{
			tenant: uint64(arrival.Intn(int(cfg.Tenants))),
			seed:   seeds.Next(),
			req:    1,
			node:   -1,
		}
		push(int64(arrival.Intn(int(cfg.Window))), int32(i))
	}
	for ki, k := range cfg.Kills {
		push(int64(k.At), int32(-1-ki))
	}

	var st Stats
	st.Clients = cfg.Clients
	activeTenants := make(map[uint64]struct{})
	blasted := make(map[uint64]struct{})
	var hist histogram
	var obs []fleet.Observation

	start := clk.Now()
	var now int64
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.at > now {
			clk.Sleep(time.Duration(ev.at - now))
			now = ev.at
		}
		if ev.client < 0 {
			k := cfg.Kills[-1-ev.client]
			if _, err := f.Kill(k.Node); err != nil {
				return nil, nil, fmt.Errorf("loadgen: kill %s at %v: %w", k.Node, k.At, err)
			}
			continue
		}
		c := &clients[ev.client]
		if c.tries == 0 {
			c.issued = now
			st.Requests++
			activeTenants[c.tenant] = struct{}{}
		} else {
			st.Retries++
		}
		c.tries++
		if int(c.tries) > cfg.MaxTries {
			return nil, nil, fmt.Errorf("loadgen: client %d req %d exceeded %d tries", ev.client, c.req, cfg.MaxTries)
		}
		if c.node < 0 {
			node, _, _ := f.Route(c.tenant)
			c.node = nodeIdx[node]
		}
		op, arg := reqOp(c.seed, c.req)
		req := &wire.Request{Client: uint64(ev.client) + 1, Req: uint64(c.req), Tenant: c.tenant, Op: op, Arg: arg}
		out := f.SubmitTo(req, nodes[c.node])
		cost := int64(out.Cost)
		switch {
		case out.Reply == nil:
			// Silence: dead node, lost frame/ack, or lost reply. Wait out
			// the client timeout, refresh the route, retry the same id.
			st.Silent++
			if !f.IsAlive(nodes[c.node]) {
				blasted[c.tenant] = struct{}{}
			}
			c.node = -1
			wait := cost
			if t := int64(cfg.ReqTimeout); t > wait {
				wait = t
			}
			push(now+wait+jitter(c.seed, c.req, c.tries, cfg.Backoff), ev.client)
		case out.Reply.Status == wire.StatusOK:
			st.OKs++
			hist.add(time.Duration(now + cost - c.issued))
			if int(ev.client)%cfg.SampleEvery == 0 {
				obs = append(obs, fleet.Observation{Client: req.Client, Req: req.Req, Value: out.Reply.Value})
			}
			c.req++
			c.tries = 0
			if int(c.req) <= cfg.OpsPerClient {
				push(now+cost, ev.client)
			}
		case out.Reply.Status == wire.StatusNotOwner:
			// Stale route: refresh and resend immediately (the reply's
			// round-trip already cost us `cost`).
			st.NotOwner++
			c.node = -1
			push(now+cost, ev.client)
		case out.Reply.Status == wire.StatusUnavailable:
			// Mid-promotion: back off and retry.
			st.Unavailable++
			blasted[c.tenant] = struct{}{}
			push(now+cost+jitter(c.seed, c.req, c.tries, cfg.Backoff), ev.client)
		default:
			return nil, nil, fmt.Errorf("loadgen: client %d req %d got %s", ev.client, c.req, wire.StatusName(out.Reply.Status))
		}
	}

	st.Elapsed = clk.Now().Sub(start)
	if s := st.Elapsed.Seconds(); s > 0 {
		st.Throughput = float64(st.OKs) / s
	}
	st.P50 = hist.quantile(0.50)
	st.P99 = hist.quantile(0.99)
	st.TenantsActive = len(activeTenants)
	st.TenantsBlasted = len(blasted)
	if st.TenantsActive > 0 {
		st.BlastRadius = float64(st.TenantsBlasted) / float64(st.TenantsActive)
	}
	st.Fleet = f.Counters()
	st.Checksum = f.Checksum()
	if err := f.Verify(obs); err != nil {
		return &st, obs, fmt.Errorf("loadgen: model verification: %w", err)
	}
	return &st, obs, nil
}

// jitter derives a deterministic retry backoff in (0, base] from the retry
// identity, de-synchronising colliding retries without wall randomness.
func jitter(seed uint64, req, tries uint32, base time.Duration) int64 {
	if base <= 0 {
		return 0
	}
	r := rand.New(seed ^ uint64(req)<<32 ^ uint64(tries))
	return 1 + int64(r.Intn(int(base)))
}

// histogram is an HDR-lite latency histogram: exact µs buckets below 16µs,
// then 8 sub-buckets per octave. Deterministic quantiles at ~6% resolution.
type histogram struct {
	buckets [1040]uint64
	total   uint64
}

func (h *histogram) index(v uint64) int {
	if v < 16 {
		return int(v)
	}
	sh := bits.Len64(v) - 4 // v>>sh in [8, 15]
	idx := 16*sh + int(v>>sh)
	if idx >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return idx
}

func (h *histogram) add(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[h.index(us)]++
	h.total++
}

// quantile returns the representative latency at quantile q.
func (h *histogram) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for idx, n := range h.buckets {
		seen += n
		if seen >= target {
			return bucketRep(idx)
		}
	}
	return bucketRep(len(h.buckets) - 1)
}

// bucketRep maps a bucket index back to its midpoint value in µs.
func bucketRep(idx int) time.Duration {
	if idx < 16 {
		return time.Duration(idx) * time.Microsecond
	}
	sh := idx / 16
	m := uint64(idx % 16)
	lo := m << sh
	return time.Duration(lo+(uint64(1)<<sh)/2) * time.Microsecond
}
