package loadgen

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/simtest/clock"
)

// runOnce builds a fresh fleet + virtual clock and drives one workload.
func runOnce(t *testing.T, fcfg fleet.Config, lcfg Config) (*Stats, []fleet.Observation) {
	t.Helper()
	clk := clock.NewVirtual()
	defer clk.Watchdog(60 * time.Second)()
	fcfg.Clock = clk
	if len(fcfg.Nodes) == 0 {
		fcfg.Nodes = []string{"n1", "n2", "n3", "n4"}
	}
	if fcfg.Shards == 0 {
		fcfg.Shards = 8
	}
	f, err := fleet.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	clk.Attach()
	defer clk.Detach()
	st, obs, err := Run(f, clk, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, obs
}

func TestCleanRunCompletes(t *testing.T) {
	st, obs := runOnce(t, fleet.Config{}, Config{Clients: 500, OpsPerClient: 3, Seed: 1})
	if st.OKs != 1500 || st.Requests != 1500 {
		t.Fatalf("OKs %d Requests %d, want 1500 each", st.OKs, st.Requests)
	}
	if st.Retries != 0 || st.Silent != 0 || st.Unavailable != 0 {
		t.Fatalf("clean run had failures: %+v", st)
	}
	if st.Fleet.Executed != 1500 {
		t.Fatalf("fleet executed %d", st.Fleet.Executed)
	}
	if len(obs) != 1500 {
		t.Fatalf("observations %d", len(obs))
	}
	if st.Throughput <= 0 || st.P99 < st.P50 || st.P50 == 0 {
		t.Fatalf("stats: tput %.0f p50 %v p99 %v", st.Throughput, st.P50, st.P99)
	}
}

// TestDeterministicPerSeed: the full stats block — counters, checksum,
// quantiles, blast radius — is identical across runs with the same seed and
// differs across seeds.
func TestDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		Clients: 800, OpsPerClient: 3, Seed: 7,
		Kills: []Kill{{At: 200 * time.Millisecond, Node: "n2"}},
	}
	a, _ := runOnce(t, fleet.Config{Fault: fleet.FaultAckDrop, FaultEvery: 37}, cfg)
	b, _ := runOnce(t, fleet.Config{Fault: fleet.FaultAckDrop, FaultEvery: 37}, cfg)
	sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if sa != sb {
		t.Fatalf("same seed diverged:\n%s\n%s", sa, sb)
	}
	cfg.Seed = 8
	c, _ := runOnce(t, fleet.Config{Fault: fleet.FaultAckDrop, FaultEvery: 37}, cfg)
	if c.Checksum == a.Checksum {
		t.Fatal("different seeds collided on checksum")
	}
}

// TestKillMidRun: a primary kill mid-window. Every request still completes
// exactly once (Run verifies against the model), the blast stays under the
// killed node's share of the fleet, and clients with stale routes observed
// the failure path.
func TestKillMidRun(t *testing.T) {
	st, _ := runOnce(t, fleet.Config{}, Config{
		Clients: 2000, OpsPerClient: 3, Seed: 11,
		Kills: []Kill{{At: 300 * time.Millisecond, Node: "n1"}},
	})
	if st.OKs != 6000 {
		t.Fatalf("OKs %d, want 6000", st.OKs)
	}
	if st.Fleet.Promotions == 0 {
		t.Fatal("kill caused no promotions")
	}
	if st.Silent == 0 && st.Unavailable == 0 {
		t.Fatal("kill mid-window left no client-visible trace")
	}
	if st.BlastRadius <= 0 || st.BlastRadius >= 0.25 {
		t.Fatalf("blast radius %.4f, want in (0, 1/nodes)", st.BlastRadius)
	}
	if st.Fleet.Executed != st.Requests {
		t.Fatalf("executed %d != unique requests %d (at-most-once broken somewhere)", st.Fleet.Executed, st.Requests)
	}
}

// TestFaultsStillAtMostOnce: every fault kind, with a kill layered on top,
// preserves exactly-once execution per request id.
func TestFaultsStillAtMostOnce(t *testing.T) {
	for _, kind := range []string{fleet.FaultFrameDrop, fleet.FaultAckDrop, fleet.FaultReplyDrop} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			st, _ := runOnce(t,
				fleet.Config{Fault: kind, FaultEvery: 13},
				Config{
					Clients: 1000, OpsPerClient: 3, Seed: 3,
					Kills: []Kill{{At: 250 * time.Millisecond, Node: "n3"}},
				})
			if st.OKs != 3000 {
				t.Fatalf("OKs %d, want 3000", st.OKs)
			}
			if st.Retries == 0 || st.Silent == 0 {
				t.Fatalf("fault %s injected nothing: %+v", kind, st)
			}
			// Executed can exceed unique requests by the handful of ops
			// whose only (uncommitted, unreplied) execution died with the
			// killed primary — the retry's re-execution is the single one
			// that survives, which Run's model verification already proved.
			if st.Fleet.Executed < st.Requests {
				t.Fatalf("executed %d < requests %d: some request never ran", st.Fleet.Executed, st.Requests)
			}
			if st.Fleet.Executed > st.Requests+st.Fleet.Promotions*4 {
				t.Fatalf("executed %d for %d requests: re-executions beyond kill losses", st.Fleet.Executed, st.Requests)
			}
		})
	}
}

// TestScaleSmoke: a hundred-thousand-client run completes in bounded wall
// time on the virtual clock. (The full million-client run lives in
// cmd/ftvm-fleet, whose output is committed as BENCH_PR7.json.)
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	start := time.Now()
	st, _ := runOnce(t,
		fleet.Config{Nodes: []string{"n1", "n2", "n3", "n4", "n5"}, Shards: 16},
		Config{
			Clients: 100_000, OpsPerClient: 2, Seed: 5,
			Window:      2 * time.Second,
			SampleEvery: 64,
			Kills:       []Kill{{At: 800 * time.Millisecond, Node: "n2"}},
		})
	if st.OKs != 200_000 {
		t.Fatalf("OKs %d, want 200000", st.OKs)
	}
	if st.Fleet.Executed != st.Requests {
		t.Fatalf("executed %d != requests %d", st.Fleet.Executed, st.Requests)
	}
	if st.BlastRadius >= 1.0/5 {
		t.Fatalf("blast radius %.4f, want under 1/nodes", st.BlastRadius)
	}
	if wall := time.Since(start); wall > 2*time.Minute {
		t.Fatalf("100k-client sim took %v wall", wall)
	}
	t.Logf("100k clients: %.0f ops/s virtual, p50 %v p99 %v, blast %.4f, %v wall",
		st.Throughput, st.P50, st.P99, st.BlastRadius, time.Since(start))
}
