package fleet

import (
	"bytes"
	"fmt"

	"repro/internal/wire"
)

// Observation is one OK reply a client actually observed. The load generator
// collects these; Verify checks every one against the authoritative logs.
type Observation struct {
	Client uint64
	Req    uint64
	Value  int64
}

// Verify checks the fleet's end state against the at-most-once model:
//
//  1. Every shard's authoritative log (its current primary's) executes
//     cleanly through the tenant state machine with no duplicate
//     (client, req) — each request ran at most once, fleet-wide.
//  2. Replaying each log reproduces the live primary's tenant state exactly —
//     the state clients will be served from is the state the log proves.
//  3. Every observed OK reply matches the logged result for its (client, req)
//     — output commit held: nothing was answered that failover could lose,
//     and retries never saw a second execution's differing result.
//
// Because the primary replies only after the backup acks the logged record,
// every observation must appear in the surviving authority even when the
// replica that produced it was killed immediately afterwards.
func (f *Fleet) Verify(obs []Observation) error {
	type key struct{ client, req uint64 }
	logged := make(map[key]int64)
	for shard, pri := range f.shardPrimaries() {
		if pri == nil {
			return fmt.Errorf("fleet: shard %d has no primary replica", shard)
		}
		recs, err := wire.DecodeAll(pri.log)
		if err != nil {
			return fmt.Errorf("fleet: shard %d log undecodable: %w", shard, err)
		}
		model := make(map[uint64]int64)
		for i, rec := range recs {
			op, ok := rec.(*wire.ClientOp)
			if !ok {
				return fmt.Errorf("fleet: shard %d log[%d] is %T, want ClientOp", shard, i, rec)
			}
			if f.ShardOf(op.Tenant) != shard {
				return fmt.Errorf("fleet: shard %d log[%d] holds tenant %d of shard %d", shard, i, op.Tenant, f.ShardOf(op.Tenant))
			}
			k := key{op.Client, op.Req}
			if _, dup := logged[k]; dup {
				return fmt.Errorf("fleet: (client %d, req %d) executed twice", op.Client, op.Req)
			}
			got := apply(model, op.Tenant, op.Op, op.Arg)
			if got != op.Result {
				return fmt.Errorf("fleet: shard %d log[%d]: model result %d, logged %d", shard, i, got, op.Result)
			}
			logged[k] = op.Result
		}
		// Quorum backend: every peer's log must be a byte prefix of the
		// primary's — the single-writer append order means a peer that holds
		// anything else was fed records outside the protocol.
		if f.cfg.Backend == BackendQuorum {
			for _, name := range f.order {
				n := f.nodes[name]
				if !n.Alive {
					continue
				}
				r := n.replicas[shard]
				if r == nil || r == pri {
					continue
				}
				if len(r.log) > len(pri.log) || !bytes.Equal(r.log, pri.log[:len(r.log)]) {
					return fmt.Errorf("fleet: shard %d peer on %s holds a log that is not a prefix of the primary's (%d vs %d bytes)",
						shard, name, len(r.log), len(pri.log))
				}
			}
		}
		// The live state a primary serves must equal its log's replay.
		if pri.state != nil {
			if len(model) != len(pri.state) {
				return fmt.Errorf("fleet: shard %d live state has %d tenants, log replay %d", shard, len(pri.state), len(model))
			}
			for _, t := range sortedTenants(model) {
				if pri.state[t] != model[t] {
					return fmt.Errorf("fleet: shard %d tenant %d live %d != replayed %d", shard, t, pri.state[t], model[t])
				}
			}
		}
	}
	for _, o := range obs {
		want, ok := logged[key{o.Client, o.Req}]
		if !ok {
			return fmt.Errorf("fleet: client %d observed OK for req %d never present in any surviving log", o.Client, o.Req)
		}
		if want != o.Value {
			return fmt.Errorf("fleet: client %d req %d observed %d, log says %d", o.Client, o.Req, o.Value, want)
		}
	}
	return nil
}

// Checksum folds every shard's replayed model state (shard-ordered, tenant-
// ordered) and log length into one FNV-1a hash — the per-seed fingerprint the
// deterministic traces compare byte-for-byte.
func (f *Fleet) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for shard, pri := range f.shardPrimaries() {
		if pri == nil {
			mix(^uint64(0))
			continue
		}
		mix(uint64(shard))
		mix(uint64(pri.logged))
		mix(pri.epoch)
		recs, err := wire.DecodeAll(pri.log)
		if err != nil {
			panic(fmt.Sprintf("fleet: checksum over undecodable shard %d log: %v", shard, err))
		}
		model := make(map[uint64]int64)
		for _, rec := range recs {
			if op, ok := rec.(*wire.ClientOp); ok {
				apply(model, op.Tenant, op.Op, op.Arg)
			}
		}
		for _, t := range sortedTenants(model) {
			mix(t)
			mix(uint64(model[t]))
		}
	}
	return h
}
