package fleet

import (
	"testing"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/wire"
)

func newTestFleet(t *testing.T, cfg Config) (*Fleet, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual()
	cfg.Clock = clk
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []string{"n1", "n2", "n3"}
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, clk
}

func mustOK(t *testing.T, out Outcome) *wire.Reply {
	t.Helper()
	if out.Reply == nil {
		t.Fatal("silent outcome, want OK reply")
	}
	if out.Reply.Status != wire.StatusOK {
		t.Fatalf("status %s, want ok", wire.StatusName(out.Reply.Status))
	}
	return out.Reply
}

func TestServeAndDedup(t *testing.T) {
	f, _ := newTestFleet(t, Config{})
	req := &wire.Request{Client: 7, Req: 1, Tenant: 10, Op: wire.OpAdd, Arg: 5}
	r1 := mustOK(t, f.Submit(req))
	if r1.Value != 5 {
		t.Fatalf("add 5 = %d", r1.Value)
	}
	// Retrying the same (client, req) must not re-execute.
	r2 := mustOK(t, f.Submit(req))
	if r2.Value != 5 {
		t.Fatalf("dup retry = %d, want cached 5", r2.Value)
	}
	if c := f.Counters(); c.Executed != 1 || c.DupHits != 1 {
		t.Fatalf("executed %d dupHits %d, want 1/1", c.Executed, c.DupHits)
	}
	// The next request id executes fresh.
	r3 := mustOK(t, f.Submit(&wire.Request{Client: 7, Req: 2, Tenant: 10, Op: wire.OpAdd, Arg: 5}))
	if r3.Value != 10 {
		t.Fatalf("second add = %d, want 10", r3.Value)
	}
	// A regressed request id is rejected, not replayed.
	out := f.Submit(&wire.Request{Client: 7, Req: 1, Tenant: 10, Op: wire.OpAdd, Arg: 5})
	if out.Reply == nil || out.Reply.Status != wire.StatusStaleReq {
		t.Fatalf("regressed req: %+v, want StaleReq", out.Reply)
	}
	if err := f.Verify([]Observation{{7, 1, 5}, {7, 2, 10}}); err != nil {
		t.Fatal(err)
	}
}

func TestNotOwnerRouting(t *testing.T) {
	f, _ := newTestFleet(t, Config{})
	node, shard, epoch := f.Route(0)
	if shard != 0 {
		t.Fatalf("tenant 0 on shard %d", shard)
	}
	// Address a node that is not tenant 0's primary.
	wrong := ""
	for _, n := range f.Nodes() {
		if n != node {
			wrong = n
			break
		}
	}
	out := f.SubmitTo(&wire.Request{Client: 1, Req: 1, Tenant: 0, Op: wire.OpGet}, wrong)
	if out.Reply == nil || out.Reply.Status != wire.StatusNotOwner {
		t.Fatalf("wrong node: %+v, want NotOwner", out.Reply)
	}
	if out.Reply.Epoch != epoch {
		t.Fatalf("NotOwner hint epoch %d, want %d", out.Reply.Epoch, epoch)
	}
}

// TestFailoverDedupFromReplayedLog is the at-most-once-across-failover story:
// an op commits (logged + acked) but its reply is lost; the primary dies; the
// client's retry lands on the promoted backup and must be answered from the
// replayed log without a second execution.
func TestFailoverDedupFromReplayedLog(t *testing.T) {
	f, clk := newTestFleet(t, Config{Fault: FaultReplyDrop, FaultEvery: 1})
	clk.Attach()
	defer clk.Detach()

	req := &wire.Request{Client: 42, Req: 1, Tenant: 0, Op: wire.OpAdd, Arg: 9}
	out := f.Submit(req)
	if out.Reply != nil {
		t.Fatalf("reply-drop fault delivered a reply: %+v", out.Reply)
	}
	if c := f.Counters(); c.Executed != 1 || c.RepliesLost != 1 {
		t.Fatalf("executed %d repliesLost %d", c.Executed, c.RepliesLost)
	}

	// Kill the shard's primary before any retry.
	oldPri, shard, oldEpoch := f.Route(0)
	if _, err := f.Kill(oldPri); err != nil {
		t.Fatal(err)
	}
	newPri, _, newEpoch := f.Route(0)
	if newPri == oldPri || newEpoch <= oldEpoch {
		t.Fatalf("no reseat: %s@%d -> %s@%d", oldPri, oldEpoch, newPri, newEpoch)
	}

	// Mid-promotion the shard refuses service.
	out = f.Submit(req)
	if out.Reply == nil || out.Reply.Status != wire.StatusUnavailable {
		t.Fatalf("mid-promotion: %+v, want Unavailable", out.Reply)
	}
	clk.Sleep(time.Second) // let the replay window pass

	// The retry: answered from the promoted replica's replayed log.
	f.cfg.Fault = FaultNone
	r := mustOK(t, f.Submit(req))
	if r.Value != 9 {
		t.Fatalf("retry after failover = %d, want original 9", r.Value)
	}
	if r.Epoch != newEpoch {
		t.Fatalf("retry epoch %d, want %d", r.Epoch, newEpoch)
	}
	if c := f.Counters(); c.Executed != 1 {
		t.Fatalf("executed %d after failover retry, want still 1", c.Executed)
	}
	if err := f.Verify([]Observation{{42, 1, 9}}); err != nil {
		t.Fatal(err)
	}
	_ = shard
}

// TestAckDropRetransmitsSameSeq: a lost ack leaves the op logged on the
// backup but uncommitted on the primary; the retry retransmits under the
// same stop-and-wait sequence, classifies as a duplicate at the SeqGate, and
// commits without a second log entry or execution.
func TestAckDropRetransmitsSameSeq(t *testing.T) {
	f, _ := newTestFleet(t, Config{Fault: FaultAckDrop, FaultEvery: 1})
	req := &wire.Request{Client: 5, Req: 1, Tenant: 1, Op: wire.OpSet, Arg: 77}
	out := f.Submit(req)
	if out.Reply != nil {
		t.Fatalf("ack-drop delivered a reply: %+v", out.Reply)
	}
	f.cfg.Fault = FaultNone
	r := mustOK(t, f.Submit(req))
	if r.Value != 77 {
		t.Fatalf("retry = %d", r.Value)
	}
	c := f.Counters()
	if c.Executed != 1 || c.Resent != 1 || c.AcksDropped != 1 {
		t.Fatalf("counters %+v, want 1 executed / 1 resent / 1 ack dropped", c)
	}
	// Exactly one copy in the backup log despite two transmissions.
	shard := f.ShardOf(1)
	v := f.Shard(shard)
	bak := f.nodes[v.Backup].replicas[shard]
	if bak.logged != 1 {
		t.Fatalf("backup logged %d records, want 1", bak.logged)
	}
	if err := f.Verify([]Observation{{5, 1, 77}}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameDropRetransmits: a lost frame never reaches the backup; the retry
// ships the same sequence fresh and commits.
func TestFrameDropRetransmits(t *testing.T) {
	f, _ := newTestFleet(t, Config{Fault: FaultFrameDrop, FaultEvery: 1})
	req := &wire.Request{Client: 5, Req: 1, Tenant: 1, Op: wire.OpAdd, Arg: 3}
	if out := f.Submit(req); out.Reply != nil {
		t.Fatalf("frame-drop delivered a reply: %+v", out.Reply)
	}
	f.cfg.Fault = FaultNone
	r := mustOK(t, f.Submit(req))
	if r.Value != 3 {
		t.Fatalf("retry = %d", r.Value)
	}
	if c := f.Counters(); c.Executed != 1 || c.FramesDropped != 1 {
		t.Fatalf("counters %+v", c)
	}
	if err := f.Verify(nil); err != nil {
		t.Fatal(err)
	}
}

// TestStaleEpochFrameRejected: a frame stamped with a deposed configuration's
// epoch is dropped silently by the backup — the split-brain gate at fleet
// scale.
func TestStaleEpochFrameRejected(t *testing.T) {
	f, clk := newTestFleet(t, Config{Nodes: []string{"n1", "n2", "n3", "n4"}, Shards: 4})
	clk.Attach()
	defer clk.Detach()
	mustOK(t, f.Submit(&wire.Request{Client: 1, Req: 1, Tenant: 0, Op: wire.OpAdd, Arg: 1}))
	oldPri, shard, oldEpoch := f.Route(0)
	if _, err := f.Kill(oldPri); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(time.Second)
	if logged := f.InjectStaleFrame(shard, oldEpoch); logged {
		t.Fatal("stale-epoch frame was logged")
	}
	if c := f.Counters(); c.StaleFrames != 1 {
		t.Fatalf("staleFrames = %d, want 1", c.StaleFrames)
	}
	// The shard still serves correctly afterwards.
	r := mustOK(t, f.Submit(&wire.Request{Client: 1, Req: 2, Tenant: 0, Op: wire.OpGet}))
	if r.Value != 1 {
		t.Fatalf("post-injection get = %d, want 1", r.Value)
	}
	if err := f.Verify([]Observation{{1, 1, 1}, {1, 2, 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceAfterKill: a kill reseats every affected shard, recruits
// backups by state transfer, and the whole fleet keeps serving every tenant
// with state intact.
func TestRebalanceAfterKill(t *testing.T) {
	f, clk := newTestFleet(t, Config{Nodes: []string{"n1", "n2", "n3", "n4"}, Shards: 8})
	clk.Attach()
	defer clk.Detach()
	// Populate every shard.
	for tenant := uint64(0); tenant < 16; tenant++ {
		mustOK(t, f.Submit(&wire.Request{Client: 100 + tenant, Req: 1, Tenant: tenant, Op: wire.OpSet, Arg: int64(tenant * 10)}))
	}
	changes, err := f.Kill("n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("kill reseated nothing")
	}
	for _, ch := range changes {
		if ch.New.Primary == "n2" || ch.New.Backup == "n2" {
			t.Fatalf("shard %d still seats dead node: %+v", ch.Shard, ch.New)
		}
		if ch.New.Backup == "" {
			t.Fatalf("shard %d recruited no backup with 3 live nodes", ch.Shard)
		}
	}
	clk.Sleep(time.Second)
	// Every tenant's state survived, including on reseated shards, and the
	// recruited backups replicate (second round of writes commits).
	for tenant := uint64(0); tenant < 16; tenant++ {
		r := mustOK(t, f.Submit(&wire.Request{Client: 100 + tenant, Req: 2, Tenant: tenant, Op: wire.OpAdd, Arg: 1}))
		if r.Value != int64(tenant*10)+1 {
			t.Fatalf("tenant %d after failover = %d, want %d", tenant, r.Value, tenant*10+1)
		}
	}
	if err := f.Verify(nil); err != nil {
		t.Fatal(err)
	}
	if c := f.Counters(); c.Promotions == 0 || c.Transfers == 0 {
		t.Fatalf("counters %+v, want promotions and transfers", c)
	}
}

// TestChecksumDeterminism: identical request sequences yield identical
// checksums; different sequences yield different ones.
func TestChecksumDeterminism(t *testing.T) {
	run := func(arg int64) uint64 {
		f, _ := newTestFleet(t, Config{})
		for i := uint64(1); i <= 20; i++ {
			mustOK(t, f.Submit(&wire.Request{Client: i, Req: 1, Tenant: i % 7, Op: wire.OpAdd, Arg: arg}))
		}
		return f.Checksum()
	}
	a, b, c := run(3), run(3), run(4)
	if a != b {
		t.Fatalf("identical runs: %x != %x", a, b)
	}
	if a == c {
		t.Fatal("different workloads collided")
	}
}
