package fleet

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

type role uint8

const (
	rolePrimary role = iota
	roleBackup
	// roleWitness is the quorum backend's third log holder: it consumes
	// frames exactly like a backup but is never seated by the directory and
	// never promotes directly — at most it converts to roleBackup when the
	// directory reseats the backup chair onto its node.
	roleWitness
)

// peerLink is the primary's shipping state toward one log-holding peer. The
// quorum link speaks record high-water marks rather than per-frame
// stop-and-wait: each frame's Seq is the absolute index of its first record,
// the peer appends only the tail beyond what it holds, and the ack's
// sequence field carries the records now held — so a retransmission after a
// lost ack advances the link instead of desyncing it, and a lagging peer is
// repaired by one catch-up frame carrying its missing suffix.
type peerLink struct {
	rep  *replica
	recs int // records the peer held at its last ack
}

// dedupEntry is one client's at-most-once state: the highest request id seen,
// its result, and whether the output-commit completed (the backup acked the
// logged record). An uncommitted entry answers a retry by retransmitting the
// record, never by re-executing it.
type dedupEntry struct {
	req       uint64
	result    int64
	committed bool
	rec       *wire.ClientOp
}

// replica is one copy of one shard. A primary holds live tenant state and the
// dedup table; a backup holds only the encoded log (plus the SeqGate guarding
// the channel) and materialises state exclusively by replay at promotion —
// the same division of labour as the full VM pair, where the backup consumes
// the log without executing until takeover.
type replica struct {
	shard int
	role  role
	epoch uint64
	peer  *replica // nil while the shard runs degraded without a backup

	// Primary side.
	seq   uint64 // last acknowledged stop-and-wait sequence (pair backend)
	state map[uint64]int64
	dedup map[uint64]*dedupEntry
	// links are the quorum backend's per-peer shipping channels (backup
	// first, then witness; empty in pair mode and when fully degraded).
	links []*peerLink
	// recOffsets[i] is record i's byte offset in log, kept so a lagging
	// link's missing suffix can be cut without re-decoding (quorum backend).
	recOffsets []int
	// pending is the shard's head-of-line executed-and-logged-but-unacked
	// entry. Stop-and-wait admits at most one: a fresh operation must flush
	// it (retransmit until acked) before executing, or the shard stalls.
	// Without this ordering barrier the backup's log could omit an op whose
	// effect is already baked into later logged results — replay would
	// diverge from the state the primary actually served.
	pending     *dedupEntry
	availableAt time.Time // promotion replay completes at this instant

	// Both sides: the encoded ClientOp log. On the primary it is the
	// snapshot shipped to a recruit; on the backup it is the authority the
	// promotion replays.
	log    []byte
	logged int
	enc    wire.Buffer
	gate   wire.SeqGate
}

func newReplica(shard int, epoch uint64, r role) *replica {
	rep := &replica{shard: shard, role: r, epoch: epoch}
	if r == rolePrimary {
		rep.state = make(map[uint64]int64)
		rep.dedup = make(map[uint64]*dedupEntry)
	}
	return rep
}

// appendLog encodes rec onto the replica's log.
func (r *replica) appendLog(rec *wire.ClientOp) {
	r.enc.Reset()
	if err := r.enc.Append(rec); err != nil {
		panic(fmt.Sprintf("fleet: encode log record: %v", err))
	}
	r.recOffsets = append(r.recOffsets, len(r.log))
	r.log = append(r.log, r.enc.Bytes()...)
	r.logged++
}

// rebuildOffsets recomputes recOffsets from the log bytes by re-encoding each
// decoded record (the encoding is deterministic, so the lengths match the
// stored bytes). A replica needs offsets only once it serves as primary; logs
// adopted at promotion arrive without them.
func (r *replica) rebuildOffsets() {
	recs, err := wire.DecodeAll(r.log)
	if err != nil {
		panic(fmt.Sprintf("fleet: rebuilding offsets over undecodable shard %d log: %v", r.shard, err))
	}
	r.recOffsets = r.recOffsets[:0]
	off := 0
	for _, rec := range recs {
		r.recOffsets = append(r.recOffsets, off)
		r.enc.Reset()
		if err := r.enc.Append(rec); err != nil {
			panic(fmt.Sprintf("fleet: re-encode log record: %v", err))
		}
		off += len(r.enc.Bytes())
	}
	if off != len(r.log) {
		panic(fmt.Sprintf("fleet: shard %d offset rebuild covered %d of %d log bytes", r.shard, off, len(r.log)))
	}
}

// suffixFrom returns the encoded records from index rec onward — the catch-up
// payload for a link whose peer last acked holding rec records.
func (r *replica) suffixFrom(rec int) []byte {
	if rec >= r.logged {
		return nil
	}
	return r.log[r.recOffsets[rec]:]
}

// deliverFrame is the backup's receive path: decode the frame, gate it on the
// epoch, classify its sequence, log fresh records, and ack. A frame from a
// stale epoch is dropped without an ack — the silence that starves a deposed
// primary's output commit. Returns the ack bytes (nil for silence) and
// whether anything was appended to the log.
func (r *replica) deliverFrame(f *Fleet, b []byte) (ack []byte, logged bool) {
	frame, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, false
	}
	if frame.Epoch != r.epoch {
		f.counters.StaleFrames++
		return nil, false
	}
	dup, gap := r.gate.Admit(frame.Seq)
	if gap {
		return nil, false
	}
	if dup {
		// Already logged (the ack was lost): re-ack without re-logging.
		if frame.AckWanted {
			return wire.EncodeAck(r.epoch, r.gate.Last()), false
		}
		return nil, false
	}
	r.log = append(r.log, frame.Payload...)
	recs, err := wire.DecodeAll(frame.Payload)
	if err != nil {
		panic(fmt.Sprintf("fleet: backup logged undecodable payload: %v", err))
	}
	r.logged += len(recs)
	if frame.AckWanted {
		return wire.EncodeAck(r.epoch, frame.Seq), true
	}
	return nil, true
}

// deliverQuorumFrame is the quorum peer's receive path: gate on the epoch,
// then treat frame.Seq as the absolute index of the payload's first record
// and append only the records beyond the log's high-water mark. Acks carry
// the record count now held. A frame starting past the high-water mark is a
// gap a correct primary never produces; it is dropped in silence.
func (r *replica) deliverQuorumFrame(f *Fleet, b []byte) (ack []byte, logged bool) {
	frame, err := wire.DecodeFrame(b)
	if err != nil {
		return nil, false
	}
	if frame.Epoch != r.epoch {
		f.counters.StaleFrames++
		return nil, false
	}
	first := int(frame.Seq)
	if first > r.logged {
		return nil, false
	}
	recs, err := wire.DecodeAll(frame.Payload)
	if err != nil {
		panic(fmt.Sprintf("fleet: quorum peer offered undecodable payload: %v", err))
	}
	appended := false
	for _, rec := range recs[min(r.logged-first, len(recs)):] {
		op, ok := rec.(*wire.ClientOp)
		if !ok {
			panic(fmt.Sprintf("fleet: foreign record %T in quorum frame", rec))
		}
		r.appendLog(op)
		appended = true
	}
	if frame.AckWanted {
		return wire.EncodeAck(r.epoch, uint64(r.logged)), appended
	}
	return nil, appended
}

// promote turns a backup into the shard's primary under epoch: replay the
// whole log through the same apply + dedup path the live primary uses, so
// tenant state and the at-most-once table come back exactly as the old
// primary would have them for every committed operation. Replay tolerates
// duplicate (client, req) records (none arise under stop-and-wait, but the
// guard is the protocol, not the transport).
func (r *replica) promote(epoch uint64) {
	if r.role != roleBackup {
		panic(fmt.Sprintf("fleet: promoting a non-backup replica of shard %d", r.shard))
	}
	r.role = rolePrimary
	r.epoch = epoch
	r.seq = 0
	r.pending = nil
	r.links = nil
	r.gate = wire.SeqGate{}
	r.state = make(map[uint64]int64)
	r.dedup = make(map[uint64]*dedupEntry)
	r.rebuildOffsets()
	recs, err := wire.DecodeAll(r.log)
	if err != nil {
		panic(fmt.Sprintf("fleet: replaying shard %d log: %v", r.shard, err))
	}
	for _, rec := range recs {
		op, ok := rec.(*wire.ClientOp)
		if !ok {
			panic(fmt.Sprintf("fleet: foreign record %T in shard %d log", rec, r.shard))
		}
		if ent := r.dedup[op.Client]; ent != nil && op.Req <= ent.req {
			continue // duplicate: the dedup table, not the transport, is the guard
		}
		got := apply(r.state, op.Tenant, op.Op, op.Arg)
		if got != op.Result {
			panic(fmt.Sprintf("fleet: shard %d replay diverged: (%d,%d) got %d, logged %d",
				r.shard, op.Client, op.Req, got, op.Result))
		}
		// Logged means acked means replicated: committed from the new
		// primary's point of view.
		r.dedup[op.Client] = &dedupEntry{req: op.Req, result: op.Result, committed: true, rec: op}
	}
}

// apply executes one tenant operation against state and returns the result.
// This single function is the tenant state machine: the live path, promotion
// replay, and the model verifier all run it, so "executed exactly once" is
// checkable by replaying logs through it.
func apply(state map[uint64]int64, tenant uint64, op uint8, arg int64) int64 {
	switch op {
	case wire.OpGet:
		return state[tenant]
	case wire.OpAdd:
		state[tenant] += arg
		return state[tenant]
	case wire.OpSet:
		state[tenant] = arg
		return arg
	default:
		panic(fmt.Sprintf("fleet: unknown op %d", op))
	}
}
