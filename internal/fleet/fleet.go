// Package fleet scales the single replicated-VM pair out to a sharded,
// multi-tenant serving fleet with an at-most-once client protocol.
//
// Tenants are lightweight deterministic state machines (an int64 accumulator
// per tenant: get/add/set), partitioned across shards by tenant id. Every
// shard is a primary/backup pair seated by a viewsvc.ShardDirectory, and the
// pair replicates exactly the way the full VM pair does: the primary encodes
// each executed operation as a wire.ClientOp record, ships it in a real
// wire.Frame (epoch-stamped, sequence-numbered, ack-wanted) to the backup,
// and counts the operation committed — eligible to answer the client — only
// after the backup's ack returns under the current epoch. The backup keeps
// the encoded log without applying it; promotion replays the log to rebuild
// both the tenant state and the dedup table, so at-most-once survives
// failover for free: a client retrying across a primary kill hits the dedup
// entry the replay reconstructed and receives the original result without
// re-execution.
//
// Frame shipping is stop-and-wait per operation: the primary retransmits an
// unacknowledged operation under the same sequence number, so a dropped
// frame is repaired by the retry and a dropped ack classifies as a duplicate
// at the backup's SeqGate (re-acked, not re-logged). The log therefore never
// holds two copies of one (client, req) — though replay still guards against
// duplicates, because the guard is the same dedup check the live path uses.
//
// Everything is clock-injected; under a virtual clock a whole fleet run —
// including node kills, promotions, recruitment state transfer, and the
// load generator in fleet/loadgen — is a pure function of (config, seed).
package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simtest/clock"
	"repro/internal/viewsvc"
	"repro/internal/wire"
)

// Fault kinds injected on the replication hop. Faults strike every
// Config.FaultEvery-th replication attempt, deterministically.
const (
	FaultNone      = "none"
	FaultFrameDrop = "framedrop" // frame lost: backup never logs, primary times out
	FaultAckDrop   = "ackdrop"   // backup logs, ack lost: primary times out uncommitted
	FaultReplyDrop = "replydrop" // committed, but the reply to the client is lost
)

// FaultKinds lists every valid Config.Fault value.
var FaultKinds = []string{FaultNone, FaultFrameDrop, FaultAckDrop, FaultReplyDrop}

// Coordination backends selectable per fleet (Config.Backend) — the fleet
// face of the replication.CoordinationBackend split: the same client
// protocol and verifier run over either commit rule.
const (
	// BackendPair is the paper's pair per shard: one backup, commit = its ack.
	BackendPair = "pair"
	// BackendQuorum seats a third, fleet-managed witness replica per shard and
	// commits an operation once the primary plus any one peer hold it (2 of
	// 3). A frame lost toward one peer no longer stalls the shard: the op
	// commits through the other, and the lagging peer is repaired by shipping
	// it the missing record suffix on the next operation (per-peer catch-up).
	// Promotion adopts the longest surviving peer log, which by the commit
	// rule contains every committed operation.
	BackendQuorum = "quorum"
)

// Backends lists every valid Config.Backend value.
var Backends = []string{BackendPair, BackendQuorum}

// Config describes a fleet.
type Config struct {
	Clock  clock.Clock
	Nodes  []string // node names, join order; need >= 2
	Shards int      // shard count; tenant t lives on shard t % Shards
	// Backend selects the per-shard coordination path (default BackendPair).
	// BackendQuorum needs a third live node per shard to seat its witness;
	// with none available the shard runs on whatever peers exist.
	Backend string
	// Fault and FaultEvery inject one fault kind on every FaultEvery-th
	// replication attempt (0 = no faults).
	Fault      string
	FaultEvery uint64

	// Simulated costs. Zero fields take the defaults below.
	NetDelay     time.Duration // one-way client <-> node
	RepDelay     time.Duration // one-way primary <-> backup
	OpCost       time.Duration // executing one tenant op
	AckTimeout   time.Duration // primary gives up waiting for an ack
	PromoteBase  time.Duration // fixed promotion cost on takeover
	PromotePerOp time.Duration // per logged record replay cost on takeover
}

func (c *Config) fill() {
	if c.NetDelay == 0 {
		c.NetDelay = 200 * time.Microsecond
	}
	if c.RepDelay == 0 {
		c.RepDelay = 100 * time.Microsecond
	}
	if c.OpCost == 0 {
		c.OpCost = 10 * time.Microsecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Millisecond
	}
	if c.PromoteBase == 0 {
		c.PromoteBase = 2 * time.Millisecond
	}
	if c.PromotePerOp == 0 {
		c.PromotePerOp = time.Microsecond
	}
	if c.Fault == "" {
		c.Fault = FaultNone
	}
	if c.Backend == "" {
		c.Backend = BackendPair
	}
}

// Counters aggregates fleet-side event counts; every field is deterministic
// under a virtual clock.
type Counters struct {
	Executed      uint64 // operations applied to tenant state (first executions)
	DupHits       uint64 // requests answered from the dedup table
	Resent        uint64 // stop-and-wait retransmissions of an uncommitted op
	FramesDropped uint64
	AcksDropped   uint64
	RepliesLost   uint64
	StaleFrames   uint64 // frames rejected by the backup's epoch gate
	Promotions    uint64
	Transfers     uint64 // recruit state transfers
}

// Outcome reports one Submit call.
type Outcome struct {
	// Reply is nil when the client observes silence (dead node, lost frame
	// or ack, lost reply) and must retry after its timeout.
	Reply *wire.Reply
	// Cost is the simulated latency until the client observes the reply —
	// or, with a nil Reply, until the primary gave up (the client's own
	// timeout still applies on top).
	Cost time.Duration
}

// Fleet is a set of nodes hosting shard replica pairs.
type Fleet struct {
	cfg        Config
	clk        clock.Clock
	dir        *viewsvc.ShardDirectory
	nodes      map[string]*Node
	order      []string
	repAttempt uint64 // replication attempts, for deterministic fault striking
	counters   Counters
}

// Node hosts one replica per shard it is seated on.
type Node struct {
	Name     string
	Alive    bool
	replicas map[int]*replica
}

// New builds a fleet: every node joins the directory, shards form round-robin,
// and each shard's pair of replicas is seeded empty under the formation epoch.
func New(cfg Config) (*Fleet, error) {
	cfg.fill()
	validFault := false
	for _, k := range FaultKinds {
		if cfg.Fault == k {
			validFault = true
		}
	}
	if !validFault {
		return nil, fmt.Errorf("fleet: unknown fault kind %q", cfg.Fault)
	}
	validBackend := false
	for _, k := range Backends {
		if cfg.Backend == k {
			validBackend = true
		}
	}
	if !validBackend {
		return nil, fmt.Errorf("fleet: unknown backend %q", cfg.Backend)
	}
	if len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("fleet: need >= 2 nodes, have %d", len(cfg.Nodes))
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: need >= 1 shard")
	}
	clk := clock.Or(cfg.Clock)
	f := &Fleet{
		cfg:   cfg,
		clk:   clk,
		dir:   viewsvc.NewShardDirectory(viewsvc.Config{Clock: clk}),
		nodes: make(map[string]*Node, len(cfg.Nodes)),
	}
	for _, name := range cfg.Nodes {
		f.dir.Join(name)
		f.nodes[name] = &Node{Name: name, Alive: true, replicas: make(map[int]*replica)}
		f.order = append(f.order, name)
	}
	views, err := f.dir.Form(cfg.Shards)
	if err != nil {
		return nil, err
	}
	for i, v := range views {
		pri := newReplica(i, v.Num, rolePrimary)
		bak := newReplica(i, v.Num, roleBackup)
		pri.peer, bak.peer = bak, pri
		f.nodes[v.Primary].replicas[i] = pri
		f.nodes[v.Backup].replicas[i] = bak
	}
	if cfg.Backend == BackendQuorum {
		for i, v := range views {
			pri := f.nodes[v.Primary].replicas[i]
			wit := f.recruitWitness(pri, v.Num)
			setLinks(pri, f.nodes[v.Backup].replicas[i], wit)
		}
	}
	return f, nil
}

// witnessNode picks the node to seat a witness for shard on: alive, hosting
// no replica of this shard already, carrying the fewest replicas overall
// (ties resolve in join order). "" when every live node already holds the
// shard.
func (f *Fleet) witnessNode(shard int) string {
	best, bestLoad := "", 0
	for _, name := range f.order {
		n := f.nodes[name]
		if !n.Alive || n.replicas[shard] != nil {
			continue
		}
		if best == "" || len(n.replicas) < bestLoad {
			best, bestLoad = name, len(n.replicas)
		}
	}
	return best
}

// recruitWitness seats a fresh witness for pri's shard under epoch, seeded
// with a snapshot of the primary's log. Nil when no node can host one — the
// shard then runs on whatever peers remain.
func (f *Fleet) recruitWitness(pri *replica, epoch uint64) *replica {
	name := f.witnessNode(pri.shard)
	if name == "" {
		return nil
	}
	w := newReplica(pri.shard, epoch, roleWitness)
	w.log = append(w.log, pri.log...)
	w.logged = pri.logged
	f.nodes[name].replicas[pri.shard] = w
	if pri.logged > 0 {
		f.counters.Transfers++
	}
	return w
}

// findWitness returns shard's live witness replica and its host node.
func (f *Fleet) findWitness(shard int) (*replica, string) {
	for _, name := range f.order {
		n := f.nodes[name]
		if !n.Alive {
			continue
		}
		if r := n.replicas[shard]; r != nil && r.role == roleWitness {
			return r, name
		}
	}
	return nil, ""
}

// setLinks rebuilds pri's quorum shipping channels (backup first, witness
// second). Every link restarts under the primary's epoch and records what its
// peer already holds, so a surviving or snapshot-seeded peer needs no special
// handshake — the next ship carries exactly its missing suffix.
func setLinks(pri *replica, peers ...*replica) {
	pri.links = pri.links[:0]
	for _, p := range peers {
		if p == nil {
			continue
		}
		p.epoch = pri.epoch
		pri.links = append(pri.links, &peerLink{rep: p, recs: p.logged})
	}
}

// NumShards returns the shard count.
func (f *Fleet) NumShards() int { return f.cfg.Shards }

// Nodes returns the node names in join order.
func (f *Fleet) Nodes() []string { return append([]string(nil), f.order...) }

// Counters returns a snapshot of the fleet-side counters.
func (f *Fleet) Counters() Counters { return f.counters }

// Shard returns shard i's current view (the router's lookup).
func (f *Fleet) Shard(i int) viewsvc.View { return f.dir.Shard(i) }

// ShardOf maps a tenant to its shard.
func (f *Fleet) ShardOf(tenant uint64) int { return int(tenant % uint64(f.cfg.Shards)) }

// Route returns the node currently seated primary for tenant's shard, with
// the epoch the client should expect on replies.
func (f *Fleet) Route(tenant uint64) (node string, shard int, epoch uint64) {
	shard = f.ShardOf(tenant)
	v := f.dir.Shard(shard)
	return v.Primary, shard, v.Num
}

// Submit delivers one client request to node `to` and runs it to its outcome.
// The request executes atomically at the current virtual instant; Outcome.Cost
// is the latency the client observes. A nil Outcome.Reply is silence — the
// addressed node is dead, the shard's replication stalled on a fault, or the
// reply itself was lost — and the client must retry the same request id.
func (f *Fleet) Submit(req *wire.Request) Outcome {
	return f.SubmitTo(req, "")
}

// SubmitTo is Submit with an explicit destination node ("" routes to the
// current primary). Sending to a stale primary exercises the NotOwner path.
func (f *Fleet) SubmitTo(req *wire.Request, to string) Outcome {
	shard := f.ShardOf(req.Tenant)
	view := f.dir.Shard(shard)
	if to == "" {
		to = view.Primary
	}
	rtt := 2 * f.cfg.NetDelay
	n := f.nodes[to]
	if n == nil || !n.Alive {
		// Dead or unknown node: silence.
		return Outcome{Cost: f.cfg.NetDelay + f.cfg.AckTimeout}
	}
	r := n.replicas[shard]
	if r == nil || r.role != rolePrimary || view.Primary != to {
		return Outcome{
			Reply: &wire.Reply{Client: req.Client, Req: req.Req, Status: wire.StatusNotOwner, Epoch: view.Num},
			Cost:  rtt,
		}
	}
	if f.clk.Now().Before(r.availableAt) {
		// Mid-promotion: the replica exists but is still replaying its log.
		return Outcome{
			Reply: &wire.Reply{Client: req.Client, Req: req.Req, Status: wire.StatusUnavailable, Epoch: view.Num},
			Cost:  rtt,
		}
	}
	return f.serve(r, req, rtt)
}

// serve runs the primary-side protocol: dedup, execute, replicate, reply.
func (f *Fleet) serve(r *replica, req *wire.Request, rtt time.Duration) Outcome {
	if req.Op >= wire.OpKinds() {
		return Outcome{
			Reply: &wire.Reply{Client: req.Client, Req: req.Req, Status: wire.StatusStaleReq, Epoch: r.epoch},
			Cost:  rtt,
		}
	}
	ent := r.dedup[req.Client]
	switch {
	case ent != nil && req.Req < ent.req:
		// A request id below the client's high-water mark: the client moved
		// on; the old result is gone. Well-behaved clients never do this.
		return Outcome{
			Reply: &wire.Reply{Client: req.Client, Req: req.Req, Status: wire.StatusStaleReq, Epoch: r.epoch},
			Cost:  rtt,
		}
	case ent != nil && req.Req == ent.req:
		f.counters.DupHits++
		if !ent.committed {
			// Executed and logged locally, but never acknowledged: the
			// output-commit rule forbids replying until the backup holds it.
			// Retransmit under the same sequence number (stop-and-wait).
			if !f.flushPending(r) {
				return Outcome{Cost: f.cfg.NetDelay + f.cfg.AckTimeout}
			}
			return Outcome{Reply: f.reply(r, req, ent), Cost: rtt + 2*f.cfg.RepDelay}
		}
		return Outcome{Reply: f.reply(r, req, ent), Cost: rtt}
	}
	// Head-of-line: an earlier op is still unacknowledged. Its effect is in
	// the live state, so nothing later may reach the log before it — flush
	// it or stall the shard (the client retries into the repaired channel).
	if r.pending != nil && !f.flushPending(r) {
		return Outcome{Cost: f.cfg.NetDelay + f.cfg.AckTimeout}
	}
	// Fresh request: execute, log, replicate, then reply.
	result := apply(r.state, req.Tenant, req.Op, req.Arg)
	rec := &wire.ClientOp{Client: req.Client, Req: req.Req, Tenant: req.Tenant, Op: req.Op, Arg: req.Arg, Result: result}
	f.counters.Executed++
	ent = &dedupEntry{req: req.Req, result: result, rec: rec}
	r.dedup[req.Client] = ent
	r.appendLog(rec)
	cost, ok := f.replicate(r, rec, true)
	if !ok {
		r.pending = ent
		return Outcome{Cost: f.cfg.NetDelay + cost}
	}
	ent.committed = true
	return Outcome{Reply: f.reply(r, req, ent), Cost: rtt + f.cfg.OpCost + cost}
}

// flushPending retransmits the shard's head-of-line unacknowledged record
// under its original stop-and-wait sequence. True means the shard's log is
// fully acknowledged again.
func (f *Fleet) flushPending(r *replica) bool {
	if r.pending == nil {
		return true
	}
	f.counters.Resent++
	if _, ok := f.replicate(r, r.pending.rec, false); !ok {
		return false
	}
	r.pending.committed = true
	r.pending = nil
	return true
}

// reply builds the client reply for a committed entry, or loses it when the
// fault schedule says so.
func (f *Fleet) reply(r *replica, req *wire.Request, ent *dedupEntry) *wire.Reply {
	if f.cfg.Fault == FaultReplyDrop && f.strike() {
		f.counters.RepliesLost++
		return nil
	}
	return &wire.Reply{Client: req.Client, Req: req.Req, Status: wire.StatusOK, Value: ent.result, Epoch: r.epoch}
}

// strike reports whether the current replication attempt is fault-struck.
// The counter increments on every call, so the schedule is a pure function
// of the request sequence.
func (f *Fleet) strike() bool {
	if f.cfg.FaultEvery == 0 {
		return false
	}
	f.repAttempt++
	return f.repAttempt%f.cfg.FaultEvery == 0
}

// replicate ships rec to r's backup as a real encoded frame and waits for the
// ack. fresh marks a first transmission (advancing the stop-and-wait sequence
// only on acknowledgement keeps retransmissions under the same number).
// Returns the simulated cost and whether the op committed. A shard currently
// running without a backup (recruitment found no live node) degrades to
// primary-only: the op commits locally, like the paper's degraded mode.
func (f *Fleet) replicate(r *replica, rec *wire.ClientOp, fresh bool) (time.Duration, bool) {
	if f.cfg.Backend == BackendQuorum {
		return f.replicateQuorum(r)
	}
	bak := r.peer
	if bak == nil {
		return f.cfg.OpCost, true
	}
	var payload wire.Buffer
	if err := payload.Append(rec); err != nil {
		panic(fmt.Sprintf("fleet: encode op: %v", err))
	}
	frame := &wire.Frame{Seq: r.seq + 1, Epoch: r.epoch, AckWanted: true, Payload: payload.Bytes()}
	b := wire.EncodeFrame(frame)
	if f.cfg.Fault == FaultFrameDrop && f.strike() {
		f.counters.FramesDropped++
		return f.cfg.AckTimeout, false
	}
	ack, _ := bak.deliverFrame(f, b)
	if ack == nil {
		// Epoch-gated or gap: the backup stayed silent; primary times out.
		return f.cfg.AckTimeout, false
	}
	if f.cfg.Fault == FaultAckDrop && f.strike() {
		f.counters.AcksDropped++
		return f.cfg.AckTimeout, false
	}
	epoch, seq, err := wire.DecodeAck(ack)
	if err != nil || epoch != r.epoch || seq != r.seq+1 {
		return f.cfg.AckTimeout, false
	}
	r.seq = seq
	return 2 * f.cfg.RepDelay, true
}

// replicateQuorum ships every link its missing log suffix and reports commit
// under the 2-of-3 rule: the operation commits once any peer acks holding the
// full log (the primary is the second copy). The record to replicate is
// already appended to r.log — the log, not the argument, is the authority, so
// the same path serves fresh operations and head-of-line retransmissions.
// With no links at all the shard is fully degraded and commits locally, like
// the pair's degraded mode.
func (f *Fleet) replicateQuorum(r *replica) (time.Duration, bool) {
	if len(r.links) == 0 {
		return f.cfg.OpCost, true
	}
	acked := 0
	for _, ln := range r.links {
		if ln.recs >= r.logged {
			acked++
			continue
		}
		frame := &wire.Frame{Seq: uint64(ln.recs), Epoch: r.epoch, AckWanted: true, Payload: r.suffixFrom(ln.recs)}
		b := wire.EncodeFrame(frame)
		if f.cfg.Fault == FaultFrameDrop && f.strike() {
			f.counters.FramesDropped++
			continue
		}
		ack, _ := ln.rep.deliverQuorumFrame(f, b)
		if ack == nil {
			continue
		}
		if f.cfg.Fault == FaultAckDrop && f.strike() {
			f.counters.AcksDropped++
			continue
		}
		epoch, held, err := wire.DecodeAck(ack)
		if err != nil || epoch != r.epoch {
			continue
		}
		if int(held) > ln.recs {
			ln.recs = int(held)
		}
		if ln.recs >= r.logged {
			acked++
		}
	}
	if acked == 0 {
		return f.cfg.AckTimeout, false
	}
	return 2 * f.cfg.RepDelay, true
}

// Kill fail-stops a node: the directory reseats every shard it was seated on,
// promotions replay backup logs under fresh epochs (taking PromoteBase +
// PromotePerOp per record of simulated unavailability), and vacancies are
// refilled by state transfer to the least-loaded live node. The returned
// changes list every reconfiguration in shard order.
func (f *Fleet) Kill(name string) ([]viewsvc.ShardChange, error) {
	n := f.nodes[name]
	if n == nil {
		return nil, fmt.Errorf("fleet: unknown node %s", name)
	}
	if !n.Alive {
		return nil, nil
	}
	n.Alive = false
	reporter := ""
	for _, o := range f.order {
		if o != name && f.nodes[o].Alive {
			reporter = o
			break
		}
	}
	if reporter == "" {
		return nil, fmt.Errorf("fleet: no live node left to report %s dead", name)
	}
	changes, err := f.dir.ReportFailure(reporter, name)
	if err != nil {
		return nil, err
	}
	now := f.clk.Now()
	for _, ch := range changes {
		f.reseat(ch, name, now)
	}
	if f.cfg.Backend == BackendQuorum {
		f.rewitness(name)
	}
	return changes, nil
}

// rewitness replaces every witness the dead node hosted for shards whose
// directory seats survived (reseat already rebuilt the reconfigured ones).
// Shards are swept in order so the replacement seating is deterministic.
func (f *Fleet) rewitness(dead string) {
	n := f.nodes[dead]
	for shard := 0; shard < f.cfg.Shards; shard++ {
		r := n.replicas[shard]
		if r == nil || r.role != roleWitness {
			continue
		}
		delete(n.replicas, shard)
		v := f.dir.Shard(shard)
		pri := f.nodes[v.Primary].replicas[shard]
		setLinks(pri, pri.peer, f.recruitWitness(pri, pri.epoch))
	}
}

// reseat applies one directory reconfiguration to the replica seating.
func (f *Fleet) reseat(ch viewsvc.ShardChange, dead string, now time.Time) {
	shard := ch.Shard
	delete(f.nodes[dead].replicas, shard)
	quorum := f.cfg.Backend == BackendQuorum
	var wit *replica
	var witNode string
	if quorum {
		wit, witNode = f.findWitness(shard)
	}
	var pri *replica
	if ch.Old.Primary == dead {
		// The backup promotes: acquire the exactly-once license for the new
		// epoch, then replay the shipped log into live state. The shard is
		// unavailable while the replay runs.
		pri = f.nodes[ch.Old.Backup].replicas[shard]
		if pri == nil {
			panic(fmt.Sprintf("fleet: shard %d backup %s has no replica", shard, ch.Old.Backup))
		}
		if wit != nil && wit.logged > pri.logged {
			// Max-log promotion: the witness out-logged the backup, so it
			// holds committed operations the backup missed. Peer logs are
			// byte-prefixes of the dead primary's, so adopting the longer one
			// is a merge.
			pri.log = append(pri.log[:0], wit.log...)
			pri.logged = wit.logged
		}
		if err := f.dir.AcquirePromotion(ch.New.Primary, shard, ch.New.Num); err != nil {
			panic(fmt.Sprintf("fleet: promotion license for shard %d: %v", shard, err))
		}
		pri.promote(ch.New.Num)
		pri.availableAt = now.Add(f.cfg.PromoteBase + time.Duration(pri.logged)*f.cfg.PromotePerOp)
		f.counters.Promotions++
	} else {
		// The backup died; the primary keeps serving under the new epoch.
		pri = f.nodes[ch.Old.Primary].replicas[shard]
		if pri == nil {
			panic(fmt.Sprintf("fleet: shard %d primary %s has no replica", shard, ch.Old.Primary))
		}
		pri.epoch = ch.New.Num
		pri.seq = 0
	}
	pri.peer = nil
	var bak *replica
	if ch.New.Backup != "" {
		if quorum && witNode == ch.New.Backup {
			// The directory seated the backup chair on the witness's node:
			// the witness converts in place — it already holds a log prefix,
			// so the link repairs it by suffix instead of a snapshot.
			wit.role = roleBackup
			bak = wit
			wit, witNode = nil, ""
		} else {
			// Recruit by state transfer: the new backup receives a snapshot
			// of the primary's full log (its replay-equivalent state) and
			// starts its gate fresh under the new epoch.
			bak = newReplica(shard, ch.New.Num, roleBackup)
			bak.log = append(bak.log, pri.log...)
			bak.logged = pri.logged
			f.nodes[ch.New.Backup].replicas[shard] = bak
			f.counters.Transfers++
		}
		bak.peer = pri
		pri.peer = bak
	}
	if quorum {
		if wit == nil {
			wit = f.recruitWitness(pri, ch.New.Num)
		}
		setLinks(pri, bak, wit)
	}
	// The snapshot transfer (or, with no recruit, the degraded local-only
	// mode) leaves every logged record replicated as far as the new
	// configuration replicates anything — including a head-of-line record
	// whose ack the old configuration lost. Retransmitting it would log it
	// twice on a recruit that already holds the snapshot; mark it committed
	// instead.
	if pri.pending != nil {
		pri.pending.committed = true
		pri.pending = nil
	}
}

// InjectStaleFrame builds a frame stamped with a pre-reconfiguration epoch
// and delivers it to shard's current backup, modelling a deposed primary
// that missed its own death. The backup's epoch gate must reject it; the
// return value reports whether anything was logged (it must never be).
func (f *Fleet) InjectStaleFrame(shard int, staleEpoch uint64) bool {
	v := f.dir.Shard(shard)
	if v.Backup == "" {
		return false
	}
	bak := f.nodes[v.Backup].replicas[shard]
	if bak == nil || bak.role != roleBackup {
		return false
	}
	rec := &wire.ClientOp{Client: ^uint64(0), Req: 1, Tenant: uint64(shard), Op: wire.OpSet, Arg: -1, Result: -1}
	var payload wire.Buffer
	if err := payload.Append(rec); err != nil {
		panic(err)
	}
	if f.cfg.Backend == BackendQuorum {
		b := wire.EncodeFrame(&wire.Frame{Seq: uint64(bak.logged), Epoch: staleEpoch, AckWanted: true, Payload: payload.Bytes()})
		_, logged := bak.deliverQuorumFrame(f, b)
		return logged
	}
	b := wire.EncodeFrame(&wire.Frame{Seq: bak.gate.Last() + 1, Epoch: staleEpoch, AckWanted: true, Payload: payload.Bytes()})
	_, logged := bak.deliverFrame(f, b)
	return logged
}

// TenantValue reads tenant's committed value from its shard's current
// primary (0 if never written).
func (f *Fleet) TenantValue(tenant uint64) int64 {
	v := f.dir.Shard(f.ShardOf(tenant))
	r := f.nodes[v.Primary].replicas[f.ShardOf(tenant)]
	if r == nil {
		return 0
	}
	return r.state[tenant]
}

// shardPrimaries returns shard -> current primary replica, shard-ordered.
func (f *Fleet) shardPrimaries() []*replica {
	out := make([]*replica, f.cfg.Shards)
	for i := range out {
		v := f.dir.Shard(i)
		if n := f.nodes[v.Primary]; n != nil {
			out[i] = n.replicas[i]
		}
	}
	return out
}

// IsAlive reports whether node name is alive.
func (f *Fleet) IsAlive(name string) bool {
	n := f.nodes[name]
	return n != nil && n.Alive
}

// LiveNodes returns the alive node names in join order.
func (f *Fleet) LiveNodes() []string {
	var out []string
	for _, name := range f.order {
		if f.nodes[name].Alive {
			out = append(out, name)
		}
	}
	return out
}

// SeatCounts exposes the directory's per-node seat balance.
func (f *Fleet) SeatCounts() (names []string, primaries, backups []int) {
	return f.dir.SeatCounts()
}

// sortedTenants returns the sorted tenant ids present in m.
func sortedTenants(m map[uint64]int64) []uint64 {
	out := make([]uint64, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
