package fuzzgen

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	ftvm "repro"
	"repro/internal/env"
	frand "repro/internal/fuzzgen/rand"
	"repro/internal/replication"
	"repro/internal/simtest/clock"
	"repro/internal/transport"
	"repro/internal/vm"
)

// Stages of the differential check. Each runs the same program a different
// way; all of them must observably agree with the standalone reference run.
const (
	StageStandalone = "standalone" // re-run under a different schedule
	StageReplicated = "replicated" // primary+backup, full-log replay compared
	StageFailover   = "failover"   // primary killed / channel fault, backup finishes
	StageConsensus  = "consensus"  // consensus-backed run + committed-log replay compared
	StageDispatch   = "dispatch"   // switch vs threaded engine, byte-identical console + stats
)

// AllStages returns the five stages in check order.
func AllStages() []string {
	return []string{StageStandalone, StageReplicated, StageFailover, StageConsensus, StageDispatch}
}

// Config drives the differential harness.
type Config struct {
	// Size selects the generated-program size tier.
	Size Size
	// MaxInstructions bounds every run (default 50M) so generator bugs
	// surface as errors instead of hangs.
	MaxInstructions uint64
	// ArtifactDir, when non-empty, receives minimized repro artifacts for
	// every failure (see WriteArtifact).
	ArtifactDir string

	// tamper, when set, rewrites a stage's observed output before
	// comparison. It exists so tests can inject a divergence and watch the
	// shrinker and artifact writer do their jobs.
	tamper func(stage string, lines []string) []string
}

func (c *Config) maxInstructions() uint64 {
	if c.MaxInstructions == 0 {
		return 50_000_000
	}
	return c.MaxInstructions
}

// Failure describes one divergence or execution error. Err != nil means the
// stage failed to run (compile error, VM error, deadlock); Err == nil means
// it ran and diverged from the reference output.
type Failure struct {
	Seed   uint64
	Size   Size
	Stage  string
	Err    error
	Detail string   // which stream/frame diverged
	Ref    []string // reference console
	Got    []string // diverging console
	Source string   // program source at detection time
}

// Error implements error.
func (f *Failure) Error() string {
	if f.Err != nil {
		return fmt.Sprintf("seed %d stage %s: %v", f.Seed, f.Stage, f.Err)
	}
	return fmt.Sprintf("seed %d stage %s: output divergence: %s", f.Seed, f.Stage, f.Detail)
}

// params are the seed-derived check parameters. They depend only on the seed
// — never on program content — so shrunken candidates replay the identical
// schedule seeds, replication mode, and fault plan.
type params struct {
	envSeed        int64
	polRef         int64 // reference + primary scheduling seed
	polAlt         int64 // second-schedule + recovery scheduling seed
	repMode        ftvm.Mode
	killAt         int
	useFault       bool
	faultKind      transport.FaultKind
	faultAt        int
	faultSeed      int64
	minQ, maxQ     uint64
	altQlo, altQhi uint64
	consSeed       uint64 // consensus election-schedule seed
	polDisp        int64  // dispatch-column scheduling seed
	dispQlo        uint64 // dispatch-column quantum range
	dispQhi        uint64
}

func (c *Config) derive(seed uint64) params {
	drv := frand.New(seed ^ 0xD1F5C0DE)
	modes := []ftvm.Mode{ftvm.ModeLock, ftvm.ModeSched, ftvm.ModeLockInterval}
	kinds := []transport.FaultKind{
		transport.FaultDropSend, transport.FaultDelaySend, transport.FaultDuplicateSend,
		transport.FaultPartialSend, transport.FaultCloseAtSend, transport.FaultCloseAtRecv,
		transport.FaultPartitionSend, transport.FaultPartitionRecv,
	}
	pr := params{
		envSeed:   int64(drv.Next()>>2) | 1,
		polRef:    int64(drv.Next()>>2) | 1,
		polAlt:    int64(drv.Next()>>2) | 1,
		repMode:   modes[drv.Intn(len(modes))],
		killAt:    1 + drv.Intn(80),
		useFault:  drv.Chance(1, 3),
		faultKind: kinds[drv.Intn(len(kinds))],
		faultAt:   1 + drv.Intn(30),
		faultSeed: int64(drv.Next()>>2) | 1,
		// Small quanta stress interleavings far more than the defaults.
		minQ: 64, maxQ: 512,
		altQlo: 100, altQhi: 900,
	}
	// Drawn after every pre-existing parameter so older seeds keep their
	// exact schedules, modes, and fault plans.
	pr.consSeed = drv.Next() | 1
	// Dispatch-column draws come after consSeed for the same reason: the
	// engine cross-check gets its own schedule without perturbing any
	// parameter an older seed already pinned.
	pr.polDisp = int64(drv.Next()>>2) | 1
	pr.dispQlo = 32 + uint64(drv.Intn(96))
	pr.dispQhi = pr.dispQlo + 64 + uint64(drv.Intn(1024))
	return pr
}

// SimReplayKey renders the deterministic-simulation replay string for a
// failure: the same generated program (seed and size) and the seed-derived
// replication mode and fault schedule, replayed under internal/simtest's
// virtual-clock single-process cluster (`ftvm-sim -replay`). The crash
// position carries over by index — frame sends in the simulator versus
// logged records in the live harness — so the schedule is analogous rather
// than identical; the value is a fully deterministic reproduction vehicle
// for the same program, mode, and fault family. The format is parsed by
// simtest.ParseCombo (pinned by a round-trip test there).
func SimReplayKey(f *Failure) string {
	pr := (&Config{}).derive(f.Seed)
	kill, fault, at := pr.killAt, "none", 0
	if pr.useFault {
		kill = 0
		fault, at = pr.faultKind.String(), pr.faultAt
	}
	return fmt.Sprintf("prog=%d,size=%s,mode=%s,kill=%d,deliver=0,fault=%s@%d,net=1,reorder=1/8",
		f.Seed, f.Size, pr.repMode, kill, fault, at)
}

// CheckSeed generates the program for seed and checks the given stages
// (all three when stages is nil). A nil return means full agreement.
func (c *Config) CheckSeed(seed uint64, stages []string) *Failure {
	return c.CheckProg(Generate(seed, c.Size), stages)
}

// CheckProg runs the differential check on an explicit program IR (the
// shrinker re-checks candidates through this).
func (c *Config) CheckProg(p *Prog, stages []string) *Failure {
	if stages == nil {
		stages = AllStages()
	}
	src := p.Render()
	pr := c.derive(p.Seed)
	fail := func(stage string, err error, detail string, ref, got []string) *Failure {
		return &Failure{Seed: p.Seed, Size: p.Size, Stage: stage, Err: err, Detail: detail,
			Ref: ref, Got: got, Source: src}
	}

	prog, err := ftvm.CompileSource(fmt.Sprintf("fuzz-%d", p.Seed), src)
	if err != nil {
		return fail("compile", err, "", nil, nil)
	}

	// Reference: one standalone run under the primary's scheduling seed.
	refRes, err := ftvm.Run(prog, ftvm.Options{
		EnvSeed: pr.envSeed, PolicySeed: pr.polRef,
		MinQuantum: pr.minQ, MaxQuantum: pr.maxQ,
		MaxInstructions: c.maxInstructions(),
	})
	if err != nil {
		return fail(StageStandalone, err, "reference run", nil, nil)
	}
	ref := refRes.Console

	compare := func(stage string, got []string) *Failure {
		if c.tamper != nil {
			got = c.tamper(stage, got)
		}
		if detail, ok := compareFrames(ref, got); !ok {
			return fail(stage, nil, detail, ref, got)
		}
		return nil
	}

	for _, stage := range stages {
		switch stage {
		case StageStandalone:
			// Same program, different schedule: output must be a pure
			// function of the program text.
			res, err := ftvm.Run(prog, ftvm.Options{
				EnvSeed: pr.envSeed, PolicySeed: pr.polAlt,
				MinQuantum: pr.altQlo, MaxQuantum: pr.altQhi,
				MaxInstructions: c.maxInstructions(),
			})
			if err != nil {
				return fail(stage, err, "alternate-schedule run", nil, nil)
			}
			if f := compare(stage, res.Console); f != nil {
				return f
			}

		case StageReplicated:
			var envs []*env.Env
			res, _, err := ftvm.MeasureReplay(prog, pr.repMode, ftvm.Options{
				EnvSeed: pr.envSeed, PolicySeed: pr.polRef,
				MinQuantum: pr.minQ, MaxQuantum: pr.maxQ,
				FlushEvery:      4,
				MaxInstructions: c.maxInstructions(),
			}, func() *env.Env {
				e := env.New(pr.envSeed)
				envs = append(envs, e)
				return e
			})
			if err != nil {
				return fail(stage, err, "replicated run", nil, nil)
			}
			if f := compare(stage, res.Console); f != nil {
				f.Detail = "primary: " + f.Detail
				return f
			}
			// The backup replayed the complete log over a fresh environment
			// (envs[1]); its reconstructed console is the frame-by-frame
			// comparison target.
			if len(envs) != 2 {
				return fail(stage, fmt.Errorf("expected 2 environments, got %d", len(envs)), "", nil, nil)
			}
			if f := compare(stage, envs[1].Console().Lines()); f != nil {
				f.Detail = "backup replay: " + f.Detail
				return f
			}

		case StageFailover:
			var got []string
			var err error
			if pr.useFault {
				got, err = c.runFaultyPair(prog, pr)
			} else {
				var res *ftvm.ReplicatedResult
				res, err = ftvm.RunWithFailover(prog, pr.repMode,
					ftvm.KillAfterRecords(pr.killAt), ftvm.Options{
						EnvSeed: pr.envSeed, PolicySeed: pr.polRef,
						MinQuantum: pr.minQ, MaxQuantum: pr.maxQ,
						FlushEvery:      4,
						MaxInstructions: c.maxInstructions(),
					})
				if res != nil {
					got = res.Console
				}
			}
			if err != nil {
				return fail(stage, err, "failover run", nil, nil)
			}
			if f := compare(stage, got); f != nil {
				return f
			}

		case StageConsensus:
			// The fourth column: the same program over the consensus-backed
			// coordination path, on its own virtual clock so elections and
			// commit waits cost no wall time. Both the leader-side console and
			// the committed-log replay must match the reference streams.
			vclk := clock.NewVirtual()
			stopDog := vclk.Watchdog(time.Minute)
			var envs []*env.Env
			var res *ftvm.ReplicatedResult
			var runErr error
			var wg sync.WaitGroup
			wg.Add(1)
			vclk.Go(func() {
				defer wg.Done()
				res, _, runErr = ftvm.MeasureReplay(prog, pr.repMode, ftvm.Options{
					EnvSeed: pr.envSeed, PolicySeed: pr.polRef,
					MinQuantum: pr.minQ, MaxQuantum: pr.maxQ,
					FlushEvery:      4,
					MaxInstructions: c.maxInstructions(),
					Backend:         ftvm.BackendConsensus,
					ConsensusSeed:   pr.consSeed,
					Clock:           vclk,
				}, func() *env.Env {
					e := env.New(pr.envSeed)
					envs = append(envs, e)
					return e
				})
			})
			wg.Wait()
			stopDog()
			if runErr != nil {
				return fail(stage, runErr, "consensus run", nil, nil)
			}
			if f := compare(stage, res.Console); f != nil {
				f.Detail = "leader: " + f.Detail
				return f
			}
			if len(envs) != 2 {
				return fail(stage, fmt.Errorf("expected 2 environments, got %d", len(envs)), "", nil, nil)
			}
			if f := compare(stage, envs[1].Console().Lines()); f != nil {
				f.Detail = "committed-log replay: " + f.Detail
				return f
			}

		case StageDispatch:
			// The fifth column: the same program, the same fresh schedule,
			// once per interpreter engine. Unlike the other columns — which
			// compare per-writer frame streams because cross-writer
			// interleaving is legally schedule-dependent — the two engines
			// here run the *identical* schedule, so the full console must
			// match byte for byte and the Stats counters exactly.
			runWith := func(d ftvm.Dispatch) (*ftvm.Result, error) {
				return ftvm.Run(prog, ftvm.Options{
					EnvSeed: pr.envSeed, PolicySeed: pr.polDisp,
					MinQuantum: pr.dispQlo, MaxQuantum: pr.dispQhi,
					MaxInstructions: c.maxInstructions(),
					Dispatch:        d,
				})
			}
			swRes, err := runWith(ftvm.DispatchSwitch)
			if err != nil {
				return fail(stage, err, "switch-engine run", nil, nil)
			}
			thRes, err := runWith(ftvm.DispatchThreaded)
			if err != nil {
				return fail(stage, err, "threaded-engine run", nil, nil)
			}
			got := thRes.Console
			if c.tamper != nil {
				got = c.tamper(stage, got)
			}
			for i := 0; i < len(swRes.Console) || i < len(got); i++ {
				var s, g string
				if i < len(swRes.Console) {
					s = swRes.Console[i]
				}
				if i < len(got) {
					g = got[i]
				}
				if s != g {
					return fail(stage, nil,
						fmt.Sprintf("engines diverged at console line %d: switch %q vs threaded %q", i, s, g),
						swRes.Console, got)
				}
			}
			if c.tamper == nil && swRes.Stats != thRes.Stats {
				return fail(stage, nil,
					fmt.Sprintf("engines diverged on stats: switch %+v vs threaded %+v", swRes.Stats, thRes.Stats),
					swRes.Console, got)
			}

		default:
			return fail(stage, fmt.Errorf("unknown stage %q", stage), "", nil, nil)
		}
	}
	return nil
}

// runFaultyPair reuses the channel-fault machinery: the primary's endpoint is
// wrapped with a seeded transport fault, both failure detectors are armed,
// and whatever the channel does the pair must either complete or detect the
// failure and recover at the backup — with the reference output either way.
func (c *Config) runFaultyPair(prog *ftvm.Program, pr params) ([]string, error) {
	environ := env.New(pr.envSeed)
	pa, pb := transport.Pipe(4096)
	faulty := transport.NewFaulty(pa, transport.FaultPlan{Kind: pr.faultKind, At: pr.faultAt}, pr.faultSeed)
	primary, err := replication.NewPrimary(replication.PrimaryConfig{
		Mode:       pr.repMode,
		Endpoint:   faulty,
		Policy:     vm.NewSeededPolicy(pr.polRef, pr.minQ, pr.maxQ),
		FlushEvery: 4,
		AckTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	pvm, err := vm.New(vm.Config{
		Program: prog, Env: environ, Coordinator: primary,
		MaxInstructions: c.maxInstructions(),
		TrackProgress:   pr.repMode == ftvm.ModeSched,
	})
	if err != nil {
		return nil, err
	}
	backup, err := replication.NewBackup(replication.BackupConfig{
		Mode:           pr.repMode,
		Endpoint:       pb,
		FailureTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	var outcome replication.ServeOutcome
	go func() {
		defer close(done)
		outcome, _ = backup.Serve()
		if outcome.Failed() {
			// A real failover tears the channel down; this also unblocks a
			// primary still waiting on an ack.
			_ = pb.Close()
		}
	}()
	runErr := pvm.Run()
	<-done

	if outcome == replication.OutcomePrimaryCompleted {
		// The halt marker only ships after every output commit succeeded, so
		// the console is complete. runErr may still be ErrBackupLost when the
		// fault ate the final halt-sync ack (the classic last-ack window):
		// both sides finished, only the goodbye was lost — not a divergence.
		if runErr != nil && !errors.Is(runErr, replication.ErrBackupLost) {
			return nil, fmt.Errorf("backup saw clean halt but primary failed: %w", runErr)
		}
		return environ.Console().Lines(), nil
	}
	// The fault surfaced as a primary failure: recover on the backup under a
	// deliberately different scheduling policy.
	if _, _, err := backup.Recover(replication.RecoverConfig{
		Program:         prog,
		Env:             environ,
		Policy:          vm.NewSeededPolicy(pr.polAlt, pr.altQlo, pr.altQhi),
		MaxInstructions: c.maxInstructions(),
	}); err != nil {
		return nil, fmt.Errorf("recover after %v: %w", outcome, err)
	}
	return environ.Console().Lines(), nil
}

// CompareFrames reports the first per-writer frame difference between two
// consoles ("" and true when they agree). Exported for the deterministic
// simulation sweep (internal/simtest), which checks simulated-cluster output
// against the same reference streams the fuzz harness uses.
func CompareFrames(ref, got []string) (detail string, ok bool) {
	return compareFrames(ref, got)
}

// frames splits console lines into per-writer streams using the generated
// "<stream>|<payload>" tags. Cross-writer interleaving is legally
// schedule-dependent; each writer's own subsequence is not.
func frames(lines []string) map[string][]string {
	out := make(map[string][]string)
	for _, ln := range lines {
		stream := "?"
		if i := strings.IndexByte(ln, '|'); i >= 0 {
			stream = ln[:i]
		}
		out[stream] = append(out[stream], ln)
	}
	return out
}

// compareFrames reports the first frame-by-frame difference between the
// per-writer streams of ref and got ("" and true when identical).
func compareFrames(ref, got []string) (string, bool) {
	rf, gf := frames(ref), frames(got)
	var streams []string
	for s := range rf {
		streams = append(streams, s)
	}
	for s := range gf {
		if _, ok := rf[s]; !ok {
			streams = append(streams, s)
		}
	}
	sort.Strings(streams)
	for _, s := range streams {
		r, g := rf[s], gf[s]
		n := len(r)
		if len(g) < n {
			n = len(g)
		}
		for i := 0; i < n; i++ {
			if r[i] != g[i] {
				return fmt.Sprintf("stream %q frame %d: ref %q vs got %q", s, i, r[i], g[i]), false
			}
		}
		if len(r) != len(g) {
			return fmt.Sprintf("stream %q: ref has %d frames, got %d", s, len(r), len(g)), false
		}
	}
	return "", true
}
