package fuzzgen

import (
	"fmt"
	"strings"
)

// Render turns the IR into minilang source. Print lines are tagged with a
// per-thread stream prefix ("m" for main, "w<self>" for workers) so the
// harness can compare per-writer subsequences exactly even though the
// cross-thread interleaving is legally schedule-dependent.
func (p *Prog) Render() string {
	r := &renderer{p: p}
	var b strings.Builder
	fmt.Fprintf(&b, "// fuzzgen seed=%d size=%s\n", p.Seed, p.Size)
	b.WriteString("class Cell { n int; }\n")
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "var %s int = %s;\n", g.Name, lit(g.Init))
	}
	for i := 0; i < p.NLocks; i++ {
		fmt.Fprintf(&b, "var lk%d Cell;\n", i)
	}
	if p.Gate {
		b.WriteString("var gate Cell;\n")
	}
	if p.Slots {
		b.WriteString("var slots []int;\n")
	}
	b.WriteString("func mix(a int, b int) int { return a * 31 + b; }\n")

	used := make(map[int]bool)
	for _, wi := range p.Spawns {
		used[wi] = true
	}
	for wi, w := range p.Workers {
		if !used[wi] {
			continue
		}
		fmt.Fprintf(&b, "func %s(self int) {\n", w.Name)
		b.WriteString("\tvar junk int = 0;\n")
		b.WriteString("\tjunk = junk;\n")
		r.stream = `"w" + itoa(self) + "|`
		r.slotIndex = "self"
		r.stmts(&b, w.Body, 1)
		b.WriteString("}\n")
	}

	b.WriteString("func main() {\n")
	b.WriteString("\tvar junk int = 0;\n")
	b.WriteString("\tjunk = junk;\n")
	for i := 0; i < p.NLocks; i++ {
		fmt.Fprintf(&b, "\tlk%d = new Cell;\n", i)
	}
	if p.Gate {
		b.WriteString("\tgate = new Cell;\n")
	}
	if p.Slots {
		fmt.Fprintf(&b, "\tslots = new [%d]int;\n", len(p.Spawns)+1)
	}
	r.stream = `"m|`
	r.slotIndex = fmt.Sprintf("%d", len(p.Spawns))
	b.WriteString("\tprint(\"m|start\");\n")
	for si, wi := range p.Spawns {
		fmt.Fprintf(&b, "\tvar t%d thread = spawn %s(%d);\n", si, p.Workers[wi].Name, si)
	}
	r.stmts(&b, p.MainMid, 1)
	for si := range p.Spawns {
		fmt.Fprintf(&b, "\tjoin(t%d);\n", si)
	}
	r.stmts(&b, p.Epi, 1)
	b.WriteString("}\n")
	return b.String()
}

type renderer struct {
	p         *Prog
	stream    string // open-quoted stream prefix, e.g. `"m|`
	slotIndex string // this thread's owned slot index expression
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte('\t')
	}
}

func (r *renderer) stmts(b *strings.Builder, ss []Stmt, depth int) {
	for _, s := range ss {
		r.stmt(b, s, depth)
	}
}

func (r *renderer) stmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *DeclStmt:
		fmt.Fprintf(b, "var %s int = %s;\n", st.Name, renderExpr(st.E))
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", st.Name, renderExpr(st.E))
	case *ForStmt:
		fmt.Fprintf(b, "for (var %s int = 0; %s < %d; %s = %s + 1) {\n",
			st.Var, st.Var, st.N, st.Var, st.Var)
		r.stmts(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *IfStmt:
		fmt.Fprintf(b, "if (%s != 0) {\n", renderExpr(st.Cond))
		r.stmts(b, st.Then, depth+1)
		indent(b, depth)
		if st.Else != nil {
			b.WriteString("} else {\n")
			r.stmts(b, st.Else, depth+1)
			indent(b, depth)
		}
		b.WriteString("}\n")
	case *LockStmt:
		fmt.Fprintf(b, "lock (lk%d) {\n", st.Lock)
		r.stmts(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *UpdStmt:
		fmt.Fprintf(b, "%s = %s %s (%s);\n",
			st.Global.Name, st.Global.Name, st.Global.Op, renderExpr(st.E))
	case *PrintStmt:
		fmt.Fprintf(b, "print(%s%s=\" + itoa(%s));\n", r.stream, st.Key, renderExpr(st.E))
	case *MarkerStmt:
		fmt.Fprintf(b, "print(%s%s\");\n", r.stream, st.Text)
	case *PrintGlobalStmt:
		fmt.Fprintf(b, "print(%s%s=\" + itoa(%s));\n", r.stream, st.Global.Name, st.Global.Name)
	case *SlotWriteStmt:
		fmt.Fprintf(b, "slots[%s] = %s;\n", r.slotIndex, renderExpr(st.E))
	case *SlotDumpStmt:
		n := len(r.p.Spawns) + 1
		fmt.Fprintf(b, "for (var di int = 0; di < %d; di = di + 1) {\n", n)
		indent(b, depth+1)
		fmt.Fprintf(b, "print(%sslot\" + itoa(di) + \"=\" + itoa(slots[di]));\n", r.stream)
		indent(b, depth)
		b.WriteString("}\n")
	case *NativeStmt:
		switch st.Kind {
		case NativeRand:
			b.WriteString("junk = rand();\n")
		case NativeClock:
			b.WriteString("junk = junk ^ clock();\n")
		case NativeYield:
			b.WriteString("yield;\n")
		default:
			fmt.Fprintf(b, "locktouch(lk%d);\n", st.Lock)
		}
	case *BumpStmt:
		b.WriteString("lock (gate) { gate.n = gate.n + 1; notifyall(gate); }\n")
	case *AwaitStmt:
		fmt.Fprintf(b, "lock (gate) { while (gate.n < %d) { wait(gate); } }\n", len(r.p.Spawns))
	default:
		panic(fmt.Sprintf("fuzzgen: unknown statement %T", s))
	}
}

// lit renders an int literal; negatives go through (0 - n) because minilang
// literals are unsigned tokens and "- -" sequences would be ambiguous.
func lit(v int64) string {
	if v < 0 {
		return fmt.Sprintf("(0 - %d)", -v)
	}
	return fmt.Sprintf("%d", v)
}

func renderExpr(e Expr) string {
	switch ex := e.(type) {
	case *Lit:
		return lit(ex.V)
	case *VarExpr:
		return ex.Name
	case *BinExpr:
		return "(" + renderExpr(ex.X) + " " + ex.Op + " " + renderExpr(ex.Y) + ")"
	case *UnExpr:
		return "(" + ex.Op + renderExpr(ex.X) + ")"
	case *MixExpr:
		return "mix(" + renderExpr(ex.A) + ", " + renderExpr(ex.B) + ")"
	default:
		panic(fmt.Sprintf("fuzzgen: unknown expression %T", e))
	}
}
